// Package flattree is a from-scratch implementation of the flat-tree
// convertible data center network architecture (Xia et al., SIGCOMM 2017),
// together with every substrate its evaluation depends on: topology
// builders, k-shortest-path routing with MPTCP and ECMP models, the
// flat-tree addressing scheme and source routing, multi-commodity-flow LP
// approximations, a flow-level network simulator, traffic generators, a
// conversion control plane, and an emulated 20-switch/24-server testbed.
//
// This package is the public facade. A Network couples a flat-tree layout
// (Clos parameters plus converter-switch blades) with its controller, so a
// user can build a convertible network, switch it between Clos, local
// random graph, and global random graph modes (or per-pod hybrids), route
// on the realized topology, and measure it:
//
//	nw, err := flattree.NewNetwork(flattree.Example(), flattree.Options{N: 1, M: 1})
//	rep, err := nw.Convert(flattree.ModeGlobal)   // rewire at run time
//	topo := nw.Topology()                          // realized topology
//	paths := nw.Routes().ServerPaths(src, dst)     // k-shortest paths
//
// The internal packages carry the full machinery; the experiment harness
// (cmd/flatsim, cmd/benchtables) regenerates every table and figure of the
// paper. See DESIGN.md for the system inventory and EXPERIMENTS.md for
// paper-versus-measured results.
package flattree

import (
	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// Mode is a flat-tree operation mode (§3.5 of the paper).
type Mode = core.Mode

// Operation modes: Clos (default wiring), local (two-stage random graph
// approximation), global (network-wide random graph approximation).
const (
	ModeClos   = core.ModeClos
	ModeLocal  = core.ModeLocal
	ModeGlobal = core.ModeGlobal
)

// ClosParams describes the underlying Clos layout (Table 2
// parameterization).
type ClosParams = topo.ClosParams

// Options configure the converter blades: N 4-port and M 6-port converter
// switches per edge-aggregation pair, the pod-core wiring pattern, and the
// inter-pod side-wiring shape.
type Options = core.Options

// Wiring patterns for pod-core connectors (§3.2).
const (
	Pattern1 = core.Pattern1
	Pattern2 = core.Pattern2
)

// ConversionReport breaks down one topology conversion: converter switches
// reconfigured, OpenFlow rules deleted/installed, and the latency of each
// step (Table 3).
type ConversionReport = control.ConversionReport

// Topology is a realized network: a capacitated multigraph with node roles
// and server attachments.
type Topology = topo.Topology

// RouteTable holds k-shortest paths between all ingress/egress switches
// and expands them to server-level paths.
type RouteTable = routing.Table

// Network is a convertible flat-tree network under controller management.
type Network struct {
	ctrl *control.Controller
}

// NewNetwork validates the layout and brings the network up in Clos mode
// with k=4 routing in every mode. Use NewNetworkK for per-mode k.
func NewNetwork(clos ClosParams, opt Options) (*Network, error) {
	return NewNetworkK(clos, opt, nil)
}

// NewNetworkK brings the network up with an explicit concurrent-path count
// per mode (missing modes default to 4, matching the testbed).
func NewNetworkK(clos ClosParams, opt Options, kByMode map[Mode]int) (*Network, error) {
	nw, err := core.New(clos, opt)
	if err != nil {
		return nil, err
	}
	ctrl, err := control.NewController(nw, control.TestbedDelayModel(), kByMode)
	if err != nil {
		return nil, err
	}
	return &Network{ctrl: ctrl}, nil
}

// Example returns the paper's running example layout (Figure 2): 4 pods,
// 20 switches, 24 servers.
func Example() ClosParams { return core.ExampleClos() }

// Table2 returns the six evaluation topologies of the paper's Table 2.
func Table2() []ClosParams { return topo.Table2() }

// FatTree returns the k-ary fat-tree parameterization.
func FatTree(k int) ClosParams { return topo.FatTree(k) }

// Convert switches every pod to the given mode, reconfiguring converter
// switches and reinstalling routing state; the report carries the latency
// breakdown.
func (n *Network) Convert(m Mode) (*ConversionReport, error) {
	return n.ctrl.Convert(m)
}

// ConvertPods sets per-pod modes for hybrid operation (§3.5): zones of
// different topologies in one network.
func (n *Network) ConvertPods(modes []Mode) (*ConversionReport, error) {
	return n.ctrl.ConvertPods(modes)
}

// Mode returns the uniform network mode, or ok=false in hybrid operation.
func (n *Network) Mode() (Mode, bool) { return n.ctrl.Network().Mode() }

// PodModes returns the per-pod mode assignment.
func (n *Network) PodModes() []Mode { return n.ctrl.Network().PodModes() }

// Topology returns the realized topology for the current configuration.
func (n *Network) Topology() *Topology { return n.ctrl.Realization().Topo }

// Routes returns the installed k-shortest-path route table.
func (n *Network) Routes() *RouteTable { return n.ctrl.Table() }

// MaxRulesPerSwitch reports the largest per-switch OpenFlow rule count
// under prefix aggregation — the §5.3 figure of merit.
func (n *Network) MaxRulesPerSwitch() int { return n.ctrl.MaxRulesPerSwitch() }

// Clos returns the underlying Clos parameterization.
func (n *Network) Clos() ClosParams { return n.ctrl.Network().Clos() }

// Servers returns the realized server node IDs in stable global order
// (invariant across conversions).
func (n *Network) Servers() []int { return n.Topology().Servers() }
