package flattree_test

import (
	"testing"

	"flattree"
)

func TestPublicAPIRoundTrip(t *testing.T) {
	nw, err := flattree.NewNetwork(flattree.Example(), flattree.Options{N: 1, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m, ok := nw.Mode(); !ok || m != flattree.ModeClos {
		t.Fatalf("initial mode %v ok=%v", m, ok)
	}
	rep, err := nw.Convert(flattree.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvertersReconfigured == 0 || rep.Total <= 0 {
		t.Fatalf("empty conversion report: %+v", rep)
	}
	tp := nw.Topology()
	if got := len(tp.Servers()); got != 24 {
		t.Fatalf("servers = %d, want 24", got)
	}
	servers := nw.Servers()
	paths := nw.Routes().ServerPaths(servers[0], servers[12])
	if len(paths) == 0 {
		t.Fatal("no routes between servers")
	}
	if nw.MaxRulesPerSwitch() <= 0 {
		t.Fatal("no rules installed")
	}
	if nw.Clos().TotalServers() != 24 {
		t.Fatal("Clos params lost")
	}
}

func TestPublicAPIHybrid(t *testing.T) {
	nw, err := flattree.NewNetworkK(flattree.Example(), flattree.Options{N: 1, M: 1},
		map[flattree.Mode]int{flattree.ModeGlobal: 8})
	if err != nil {
		t.Fatal(err)
	}
	modes := []flattree.Mode{flattree.ModeGlobal, flattree.ModeGlobal, flattree.ModeClos, flattree.ModeLocal}
	if _, err := nw.ConvertPods(modes); err != nil {
		t.Fatal(err)
	}
	if _, uniform := nw.Mode(); uniform {
		t.Fatal("hybrid network reported uniform")
	}
	got := nw.PodModes()
	for i := range modes {
		if got[i] != modes[i] {
			t.Fatalf("pod %d mode %v, want %v", i, got[i], modes[i])
		}
	}
}

func TestTableAndFatTreeConstructors(t *testing.T) {
	if got := len(flattree.Table2()); got != 6 {
		t.Fatalf("Table2 = %d topologies", got)
	}
	ft := flattree.FatTree(8)
	if ft.TotalServers() != 128 {
		t.Fatalf("fat-tree k=8 servers = %d", ft.TotalServers())
	}
}
