package flattree_test

// Benchmarks: one per paper table and figure, plus one per ablation, each
// regenerating its artifact at reduced scale per iteration. These are the
// `go test -bench=.` targets referenced by DESIGN.md's per-experiment
// index; cmd/benchtables prints the actual tables, and -full on
// cmd/flatsim runs paper scale.

import (
	"testing"

	"flattree"
	"flattree/internal/core"
	"flattree/internal/experiments"
	"flattree/internal/traffic"
)

// benchConfig keeps per-iteration cost bounded on one core.
func benchConfig() experiments.Config {
	return experiments.Config{Seed: 1, Epsilon: 0.35}
}

func BenchmarkTable1(b *testing.B) {
	cfg := benchConfig()
	params := experiments.Table1Params{
		Clos:         experiments.MiniTable2()[1], // 64 servers
		ClusterSizes: []int{2, 12, 48},
	}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Table1With(params); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Table2(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Table3(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig5(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	cfg := benchConfig()
	cases := []experiments.Fig6Case{{Topology: "mini-2", Mode: core.ModeGlobal}}
	methods := []experiments.Method{experiments.LPMin, experiments.LPAvg, experiments.MPTCP8}
	patterns := []traffic.SyntheticPattern{traffic.PatternPermutation, traffic.PatternManyToMany}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig6With(cases, methods, patterns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure7(b *testing.B) {
	// Figure 7 shares Figure 6's machinery: per-flow distributions of
	// MPTCP vs the LP bounds on one pattern.
	cfg := benchConfig()
	cases := []experiments.Fig6Case{{Topology: "mini-2", Mode: core.ModeGlobal}}
	methods := []experiments.Method{experiments.LPMin, experiments.LPAvg, experiments.MPTCP8}
	patterns := []traffic.SyntheticPattern{traffic.PatternPodStride}
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig6With(cases, methods, patterns); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure8(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig8With([]string{"cache"},
			[]experiments.Fig8Network{experiments.FTGlobal, experiments.FTClosKSP}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure10(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig10(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure11(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Fig11(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRules(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Rules(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkProps(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.Props(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationWiring(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationWiring(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationProfile(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationProfile(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationSideWiring(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationSideWiring(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationK(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationK(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkConvert measures a bare topology conversion on the testbed
// network through the public API — the control-plane hot path.
func BenchmarkConvert(b *testing.B) {
	nw, err := flattree.NewNetwork(flattree.Example(), flattree.Options{N: 1, M: 1})
	if err != nil {
		b.Fatal(err)
	}
	modes := []flattree.Mode{flattree.ModeGlobal, flattree.ModeLocal, flattree.ModeClos}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := nw.Convert(modes[i%len(modes)]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridPlacement(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.HybridPlacement(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationFailures(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationFailures(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationPacket(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationPacket(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationGradual(b *testing.B) {
	cfg := benchConfig()
	for i := 0; i < b.N; i++ {
		if _, err := cfg.AblationGradual(); err != nil {
			b.Fatal(err)
		}
	}
}
