// Testbedrun: the Figure 10 experiment on the emulated 20-switch/24-server
// testbed — persistent iPerf traffic to pod counterparts while the topology
// converts Clos -> global -> local, printing the core-bandwidth timeline
// as an ASCII strip chart.
package main

import (
	"fmt"
	"log"
	"strings"

	"flattree/internal/core"
	"flattree/internal/testbed"
)

func main() {
	tb, err := testbed.New()
	if err != nil {
		log.Fatal(err)
	}
	schedule := []testbed.ScheduleEntry{
		{At: 20, Mode: core.ModeGlobal},
		{At: 40, Mode: core.ModeLocal},
	}
	samples, events, err := tb.RunIPerf(schedule, 60, 0.5)
	if err != nil {
		log.Fatal(err)
	}

	// Strip chart: one row per 2 seconds, bar proportional to bandwidth.
	maxBW := 0.0
	for _, s := range samples {
		if s.CoreBandwidth > maxBW {
			maxBW = s.CoreBandwidth
		}
	}
	fmt.Println("t(s)   core bandwidth (Gbps)")
	for i := 0; i < len(samples); i += 4 {
		s := samples[i]
		bar := int(s.CoreBandwidth / maxBW * 50)
		fmt.Printf("%5.1f  %-50s %6.1f\n", s.T, strings.Repeat("#", bar), s.CoreBandwidth)
	}
	fmt.Println()
	for _, e := range events {
		to := e.Report.To[0]
		fmt.Printf("conversion at t=%.0fs to %-6s: OCS %.0f ms + delete %.0f ms + add %.0f ms = %.0f ms; traffic back to max by t=%.1fs\n",
			e.At, to, e.Report.OCSTime*1000, e.Report.DeleteTime*1000,
			e.Report.AddTime*1000, e.Report.Total*1000, e.RecoverAt)
	}
}
