// Hybrid: the paper's zoned operation (§3.5, §5.2) — a multi-tenant
// network where a rack-local tenant lives in a Clos zone while a
// network-wide tenant lives in a global zone, each getting the topology
// that suits its traffic. The example measures both tenants' throughput
// with zones matched and mismatched.
package main

import (
	"fmt"
	"log"
	"math"

	"flattree"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

const k = 4

func main() {
	clos := flattree.ClosParams{
		Name: "hybrid", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4,
		ServersPerEdge: 8, EdgeUplinks: 4, AggUplinks: 4, Cores: 16,
	}
	nw, err := flattree.NewNetwork(clos, flattree.Options{N: 1, M: 3})
	if err != nil {
		log.Fatal(err)
	}
	perPod := clos.EdgesPerPod * clos.ServersPerEdge

	// Tenant A: rack-local all-to-all clusters inside pods 0-1.
	var tenantA []traffic.Pair
	for _, p := range traffic.ClusteredAllToAll(2*perPod, clos.ServersPerEdge) {
		tenantA = append(tenantA, p)
	}
	// Tenant B: uniform all-to-all across pods 2-3.
	var tenantB []traffic.Pair
	for _, p := range traffic.Permutation(2*perPod, 99) {
		tenantB = append(tenantB, traffic.Pair{Src: p.Src + 2*perPod, Dst: p.Dst + 2*perPod})
	}

	tbl := &metrics.Table{Header: []string{"zoning", "tenant A avg (Gbps)", "tenant B avg (Gbps)"}}
	for _, z := range []struct {
		name  string
		modes []flattree.Mode
	}{
		{"matched: A in Clos zone, B in global zone",
			[]flattree.Mode{flattree.ModeClos, flattree.ModeClos, flattree.ModeGlobal, flattree.ModeGlobal}},
		{"uniform Clos everywhere",
			[]flattree.Mode{flattree.ModeClos, flattree.ModeClos, flattree.ModeClos, flattree.ModeClos}},
		{"mismatched: A in global zone, B in Clos zone",
			[]flattree.Mode{flattree.ModeGlobal, flattree.ModeGlobal, flattree.ModeClos, flattree.ModeClos}},
	} {
		if _, err := nw.ConvertPods(z.modes); err != nil {
			log.Fatal(err)
		}
		a, err := throughput(nw, tenantA)
		if err != nil {
			log.Fatal(err)
		}
		b, err := throughput(nw, tenantB)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Add(z.name, a, b)
	}
	fmt.Println("hybrid-mode tenant placement (tenant A: rack-local; tenant B: uniform):")
	fmt.Print(tbl.String())
}

// throughput computes the mean steady-state MPTCP rate of the tenant's
// flows (both tenants active simultaneously would couple them; each is
// measured alone for clarity).
func throughput(nw *flattree.Network, pairs []traffic.Pair) (float64, error) {
	t := nw.Topology()
	table := nw.Routes()
	servers := t.Servers()
	specs := make([]flowsim.ConnSpec, 0, len(pairs))
	for _, pr := range pairs {
		paths := table.ServerPaths(servers[pr.Src], servers[pr.Dst])
		if len(paths) > k {
			paths = paths[:k]
		}
		dp := make([][]int, len(paths))
		for i, p := range paths {
			dp[i] = routing.DirectedLinkIDs(t.G, p)
		}
		specs = append(specs, flowsim.ConnSpec{Paths: dp, Bits: math.Inf(1)})
	}
	rates, err := flowsim.StaticRates(routing.DirectedCaps(t.G), specs, 10)
	if err != nil {
		return 0, err
	}
	return metrics.Mean(rates), nil
}
