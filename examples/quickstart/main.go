// Quickstart: build the paper's example flat-tree network (Figure 2),
// convert it between its three modes at run time, and inspect what changes
// — server placement, path lengths, rule counts, and conversion latency.
package main

import (
	"fmt"
	"log"

	"flattree"
)

func main() {
	// The Figure 2 network: 4 pods, 20 switches, 24 servers, one 4-port
	// and one 6-port converter switch per edge-aggregation pair.
	nw, err := flattree.NewNetwork(flattree.Example(), flattree.Options{N: 1, M: 1})
	if err != nil {
		log.Fatal(err)
	}

	for _, mode := range []flattree.Mode{flattree.ModeClos, flattree.ModeLocal, flattree.ModeGlobal} {
		rep, err := nw.Convert(mode)
		if err != nil {
			log.Fatal(err)
		}
		t := nw.Topology()
		// Where do servers live now?
		onEdge, onAgg, onCore := 0, 0, 0
		for _, s := range t.Servers() {
			switch sw := t.AttachedSwitch(s); t.Nodes[sw].Kind.String() {
			case "edge":
				onEdge++
			case "agg":
				onAgg++
			case "core":
				onCore++
			}
		}
		fmt.Printf("== %s mode ==\n", mode)
		fmt.Printf("  servers on edge/agg/core: %d/%d/%d\n", onEdge, onAgg, onCore)
		fmt.Printf("  avg path length: %.2f switch hops\n", nw.Routes().AveragePathLength())
		fmt.Printf("  max rules per switch: %d\n", nw.MaxRulesPerSwitch())
		fmt.Printf("  conversion: %d converters reconfigured, %.0f ms total\n\n",
			rep.ConvertersReconfigured, rep.Total*1000)
	}

	// Hybrid operation: different zones for different workloads.
	modes := []flattree.Mode{flattree.ModeGlobal, flattree.ModeGlobal, flattree.ModeLocal, flattree.ModeClos}
	if _, err := nw.ConvertPods(modes); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("hybrid pod modes: %v\n", nw.PodModes())
}
