// Trafficstudy: a miniature of the paper's §5.2 experiment — replay a
// pod-local "cache"-style trace on flat-tree in global, local, and Clos
// modes and compare flow completion times, demonstrating that the right
// topology depends on the workload's locality.
package main

import (
	"fmt"
	"log"
	"math"

	"flattree"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

const k = 8 // concurrent paths for MPTCP

func main() {
	clos := flattree.ClosParams{
		Name: "study", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4,
		ServersPerEdge: 8, EdgeUplinks: 4, AggUplinks: 4, Cores: 16,
	}
	nw, err := flattree.NewNetworkK(clos, flattree.Options{N: 1, M: 3},
		map[flattree.Mode]int{flattree.ModeClos: k, flattree.ModeLocal: k, flattree.ModeGlobal: k})
	if err != nil {
		log.Fatal(err)
	}

	// A pod-local workload (88% intra-pod as in Facebook's cache tier).
	spec, err := traffic.FacebookSpec("cache", clos.TotalServers(), clos.ServersPerEdge,
		clos.EdgesPerPod, 1200, 42)
	if err != nil {
		log.Fatal(err)
	}
	spec.Duration = 2.0
	spec.SizeMedianGbit *= 40 // saturate 10G links at this reduced scale
	flows, err := traffic.Generate(spec)
	if err != nil {
		log.Fatal(err)
	}

	tbl := &metrics.Table{Header: []string{"mode", "median FCT (ms)", "p99 FCT (ms)", "mean (ms)"}}
	for _, mode := range []flattree.Mode{flattree.ModeGlobal, flattree.ModeLocal, flattree.ModeClos} {
		if _, err := nw.Convert(mode); err != nil {
			log.Fatal(err)
		}
		fcts, err := replay(nw, flows)
		if err != nil {
			log.Fatal(err)
		}
		tbl.Add(mode.String(),
			metrics.Percentile(fcts, 0.5), metrics.Percentile(fcts, 0.99), metrics.Mean(fcts))
	}
	fmt.Println("cache-style trace (88% intra-pod), 1200 flows, MPTCP k=8:")
	fmt.Print(tbl.String())
	fmt.Println("\nexpected shape (paper Fig. 8d): local best, then global, then Clos")
}

// replay runs the trace as MPTCP connections on the network's current
// topology and returns per-flow completion times in milliseconds.
func replay(nw *flattree.Network, flows []traffic.Flow) ([]float64, error) {
	t := nw.Topology()
	table := nw.Routes()
	servers := t.Servers()
	caps := routing.DirectedCaps(t.G)
	specs := make([]flowsim.ConnSpec, 0, len(flows))
	for _, f := range flows {
		paths := table.ServerPaths(servers[f.Src], servers[f.Dst])
		if len(paths) > k {
			paths = paths[:k]
		}
		dp := make([][]int, len(paths))
		for i, p := range paths {
			dp[i] = routing.DirectedLinkIDs(t.G, p)
		}
		specs = append(specs, flowsim.ConnSpec{Paths: dp, Bits: f.Bits, Arrival: f.Arrival})
	}
	results, err := flowsim.NewSim(caps, specs).Run()
	if err != nil {
		return nil, err
	}
	fcts := make([]float64, 0, len(results))
	for _, r := range results {
		if !math.IsInf(r.Finish, 1) {
			fcts = append(fcts, r.FCT()*1000)
		}
	}
	return fcts, nil
}
