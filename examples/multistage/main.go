// Multistage: the §2.2 extension the paper leaves to future work — a
// two-stage flat-tree where the lower pods treat upper-pod edge switches
// as their core, and both layers convert independently. The example shows
// server placement migrating through the hierarchy as each layer
// flattens, and the resulting path-length gains.
package main

import (
	"fmt"
	"log"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/topo"
)

func main() {
	ms, err := core.ExampleMultiStage()
	if err != nil {
		log.Fatal(err)
	}

	tbl := &metrics.Table{Header: []string{
		"lower mode", "upper mode", "servers @ lower edge/agg", "@ upper switches", "@ true core", "server APL",
	}}
	for _, modes := range [][2]core.Mode{
		{core.ModeClos, core.ModeClos},
		{core.ModeGlobal, core.ModeClos},
		{core.ModeClos, core.ModeGlobal},
		{core.ModeGlobal, core.ModeGlobal},
	} {
		ms.Lower().SetMode(modes[0])
		ms.Upper().SetMode(modes[1])
		r := ms.Realize()
		if err := r.Topo.Validate(); err != nil {
			log.Fatal(err)
		}

		trueCore := map[int]bool{}
		for _, c := range r.TrueCoreID {
			trueCore[c] = true
		}
		lower, upper, tc := 0, 0, 0
		for _, s := range r.Topo.Servers() {
			sw := r.Topo.AttachedSwitch(s)
			switch {
			case trueCore[sw]:
				tc++
			case r.Topo.Nodes[sw].Kind == topo.Core:
				upper++
			default:
				lower++
			}
		}
		tbl.Add(modes[0].String(), modes[1].String(),
			lower, upper, tc, serverAPL(r.Topo))
	}
	fmt.Println("two-stage flat-tree: 24 servers, 16 lower switches, 8 upper switches, 4 true cores")
	fmt.Print(tbl.String())
	fmt.Println("\nwith both layers global, relocated servers surface at every level —")
	fmt.Println("the recursive flattening §2.2 describes.")
}

func serverAPL(t *topo.Topology) float64 {
	var total float64
	var count int
	servers := t.Servers()
	for _, a := range servers {
		dist := t.G.BFSDistances(t.AttachedSwitch(a))
		for _, b := range servers {
			if a != b {
				total += float64(dist[t.AttachedSwitch(b)])
				count++
			}
		}
	}
	return total / float64(count)
}
