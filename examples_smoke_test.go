package flattree_test

// Smoke tests for the runnable examples: each is executed end-to-end via
// the Go toolchain and checked for the output markers that prove it did
// real work. These keep the examples from rotting as the library evolves.

import (
	"os/exec"
	"strings"
	"testing"
	"time"
)

func runExample(t *testing.T, dir string) string {
	t.Helper()
	cmd := exec.Command("go", "run", "./examples/"+dir)
	cmd.Dir = "."
	done := make(chan struct{})
	var out []byte
	var err error
	go func() {
		out, err = cmd.CombinedOutput()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(180 * time.Second):
		_ = cmd.Process.Kill()
		t.Fatalf("example %s timed out", dir)
	}
	if err != nil {
		t.Fatalf("example %s failed: %v\n%s", dir, err, out)
	}
	return string(out)
}

func TestExampleQuickstart(t *testing.T) {
	out := runExample(t, "quickstart")
	for _, want := range []string{
		"clos mode", "local mode", "global mode",
		"servers on edge/agg/core: 24/0/0",
		"servers on edge/agg/core: 8/8/8",
		"hybrid pod modes",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("quickstart output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleTrafficstudy(t *testing.T) {
	out := runExample(t, "trafficstudy")
	for _, want := range []string{"median FCT", "global", "local", "clos"} {
		if !strings.Contains(out, want) {
			t.Fatalf("trafficstudy output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleTestbedrun(t *testing.T) {
	out := runExample(t, "testbedrun")
	for _, want := range []string{"core bandwidth", "conversion at t=20s", "conversion at t=40s", "OCS"} {
		if !strings.Contains(out, want) {
			t.Fatalf("testbedrun output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleHybrid(t *testing.T) {
	out := runExample(t, "hybrid")
	for _, want := range []string{"matched", "mismatched", "tenant A", "tenant B"} {
		if !strings.Contains(out, want) {
			t.Fatalf("hybrid output missing %q:\n%s", want, out)
		}
	}
}

func TestExampleMultistage(t *testing.T) {
	out := runExample(t, "multistage")
	for _, want := range []string{"two-stage flat-tree", "true core", "recursive flattening"} {
		if !strings.Contains(out, want) {
			t.Fatalf("multistage output missing %q:\n%s", want, out)
		}
	}
}

func runCommand(t *testing.T, args ...string) string {
	t.Helper()
	cmd := exec.Command("go", append([]string{"run"}, args...)...)
	cmd.Dir = "."
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("go run %v failed: %v\n%s", args, err, out)
	}
	return string(out)
}

func TestFlatsimCLI(t *testing.T) {
	out := runCommand(t, "./cmd/flatsim", "-exp", "fig5")
	if !strings.Contains(out, "10.0.24.2") {
		t.Fatalf("flatsim fig5 output wrong:\n%s", out)
	}
	list := runCommand(t, "./cmd/flatsim", "-list")
	for _, want := range []string{"table1", "fig8", "ablation-packet", "cost", "hybrid-placement"} {
		if !strings.Contains(list, want) {
			t.Fatalf("flatsim -list missing %q:\n%s", want, list)
		}
	}
}

func TestTopobuildCLI(t *testing.T) {
	out := runCommand(t, "./cmd/topobuild", "-base", "example", "-mode", "global")
	for _, want := range []string{"edge switches", "servers", "avg path length"} {
		if !strings.Contains(out, want) {
			t.Fatalf("topobuild output missing %q:\n%s", want, out)
		}
	}
	rg := runCommand(t, "./cmd/topobuild", "-kind", "rg", "-base", "fat-tree-4")
	if !strings.Contains(rg, "links") {
		t.Fatalf("topobuild rg output wrong:\n%s", rg)
	}
}
