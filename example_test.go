package flattree_test

import (
	"fmt"

	"flattree"
)

// ExampleNewNetwork builds the paper's Figure 2 network and converts it to
// global mode, showing where the servers end up.
func ExampleNewNetwork() {
	nw, err := flattree.NewNetwork(flattree.Example(), flattree.Options{N: 1, M: 1})
	if err != nil {
		panic(err)
	}
	if _, err := nw.Convert(flattree.ModeGlobal); err != nil {
		panic(err)
	}
	t := nw.Topology()
	counts := map[string]int{}
	for _, s := range t.Servers() {
		counts[t.Nodes[t.AttachedSwitch(s)].Kind.String()]++
	}
	fmt.Printf("edge=%d agg=%d core=%d\n", counts["edge"], counts["agg"], counts["core"])
	// Output: edge=8 agg=8 core=8
}

// ExampleNetwork_ConvertPods runs the network in hybrid mode, one zone per
// topology (§3.5).
func ExampleNetwork_ConvertPods() {
	nw, err := flattree.NewNetwork(flattree.Example(), flattree.Options{N: 1, M: 1})
	if err != nil {
		panic(err)
	}
	modes := []flattree.Mode{flattree.ModeGlobal, flattree.ModeGlobal, flattree.ModeLocal, flattree.ModeClos}
	if _, err := nw.ConvertPods(modes); err != nil {
		panic(err)
	}
	_, uniform := nw.Mode()
	fmt.Println("uniform:", uniform)
	fmt.Println("pods:", nw.PodModes())
	// Output:
	// uniform: false
	// pods: [global global local clos]
}

// ExampleNetwork_Routes looks up the k-shortest paths between two servers.
func ExampleNetwork_Routes() {
	nw, err := flattree.NewNetwork(flattree.Example(), flattree.Options{N: 1, M: 1})
	if err != nil {
		panic(err)
	}
	servers := nw.Servers()
	paths := nw.Routes().ServerPaths(servers[0], servers[23])
	fmt.Println("paths:", len(paths))
	fmt.Println("shortest hops:", paths[0].Len())
	// Output:
	// paths: 4
	// shortest hops: 6
}

// ExampleTable2 lists the paper's evaluation topologies.
func ExampleTable2() {
	for _, p := range flattree.Table2() {
		fmt.Printf("%s: %d servers\n", p.Name, p.TotalServers())
	}
	// Output:
	// topo-1: 4096 servers
	// topo-2: 1728 servers
	// topo-3: 8192 servers
	// topo-4: 4096 servers
	// topo-5: 4096 servers
	// topo-6: 4096 servers
}
