package control

import (
	"testing"

	"flattree/internal/core"
)

func exampleController(t *testing.T) *Controller {
	t.Helper()
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewController(nw, TestbedDelayModel(), map[core.Mode]int{
		core.ModeClos: 4, core.ModeLocal: 4, core.ModeGlobal: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestControllerInitialState(t *testing.T) {
	c := exampleController(t)
	if c.Realization() == nil || c.Table() == nil {
		t.Fatal("controller missing state")
	}
	if got, uniform := c.Network().Mode(); !uniform || got != core.ModeClos {
		t.Fatalf("initial mode = %v (uniform=%v), want clos", got, uniform)
	}
	if c.MaxRulesPerSwitch() <= 0 {
		t.Fatal("no rules installed")
	}
}

func TestConvertReportsDelays(t *testing.T) {
	c := exampleController(t)
	rep, err := c.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvertersReconfigured == 0 {
		t.Fatal("no converters reconfigured on Clos->global")
	}
	// All 16 converters change: 8 four-port default->local, 8 six-port
	// default->side/cross.
	if rep.ConvertersReconfigured != 16 {
		t.Fatalf("reconfigured = %d, want 16", rep.ConvertersReconfigured)
	}
	if rep.RulesDeleted <= 0 || rep.RulesAdded <= 0 {
		t.Fatalf("rule churn: %d deleted, %d added", rep.RulesDeleted, rep.RulesAdded)
	}
	if rep.OCSTime != 0.160 {
		t.Fatalf("OCS time = %v", rep.OCSTime)
	}
	if rep.Total != rep.OCSTime+rep.DeleteTime+rep.AddTime {
		t.Fatal("total is not the sequential sum")
	}
	// Conversion should finish in roughly a second on the testbed scale
	// ("the network topology can be converted in roughly 1s", §5.3).
	if rep.Total < 0.2 || rep.Total > 3.0 {
		t.Fatalf("total conversion delay = %vs, outside plausible testbed range", rep.Total)
	}
}

func TestConvertNoChangeIsCheap(t *testing.T) {
	c := exampleController(t)
	rep, err := c.Convert(core.ModeClos) // already in Clos
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvertersReconfigured != 0 {
		t.Fatalf("reconfigured = %d converting to same mode", rep.ConvertersReconfigured)
	}
}

func TestRuleCountsOrderAcrossModes(t *testing.T) {
	// §5.3: max rules per switch differ per topology (242/180/76 on the
	// testbed) because the number of ingress/egress switches differs:
	// global (20 ingress) > local (16) > Clos (8). Verify the ordering.
	c := exampleController(t)
	counts := map[core.Mode]int{}
	ingress := map[core.Mode]int{}
	for _, m := range []core.Mode{core.ModeGlobal, core.ModeLocal, core.ModeClos} {
		if _, err := c.Convert(m); err != nil {
			t.Fatal(err)
		}
		counts[m] = c.MaxRulesPerSwitch()
		ingress[m] = len(c.Table().Ingress)
	}
	if ingress[core.ModeGlobal] != 20 || ingress[core.ModeClos] != 8 {
		t.Fatalf("ingress counts = %v", ingress)
	}
	if ingress[core.ModeLocal] != 16 {
		t.Fatalf("local ingress = %d, want 16 (8 edges + 8 aggs)", ingress[core.ModeLocal])
	}
	if !(counts[core.ModeGlobal] > counts[core.ModeLocal] && counts[core.ModeLocal] > counts[core.ModeClos]) {
		t.Fatalf("rule ordering violated: %v", counts)
	}
}

func TestConvertPodsHybrid(t *testing.T) {
	c := exampleController(t)
	modes := []core.Mode{core.ModeGlobal, core.ModeGlobal, core.ModeLocal, core.ModeClos}
	rep, err := c.ConvertPods(modes)
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConvertersReconfigured == 0 {
		t.Fatal("hybrid conversion reconfigured nothing")
	}
	got := c.Network().PodModes()
	for i, m := range modes {
		if got[i] != m {
			t.Fatalf("pod %d mode = %v, want %v", i, got[i], m)
		}
	}
	if _, err := c.ConvertPods([]core.Mode{core.ModeClos}); err == nil {
		t.Fatal("wrong mode count accepted")
	}
}

func TestParallelDelayModel(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	dm := TestbedDelayModel()
	dm.Parallel = true
	c, err := NewController(nw, dm, nil)
	if err != nil {
		t.Fatal(err)
	}
	repPar, err := c.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential baseline for the same conversion.
	nw2, _ := core.ExampleNetwork()
	c2, _ := NewController(nw2, TestbedDelayModel(), nil)
	repSeq, err := c2.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if repPar.Total >= repSeq.Total {
		t.Fatalf("parallel conversion (%v) not faster than sequential (%v)", repPar.Total, repSeq.Total)
	}
}

func TestShardEstimate(t *testing.T) {
	c := exampleController(t)
	rep, _ := c.Convert(core.ModeGlobal)
	one := c.ShardEstimate(rep, 1)
	four := c.ShardEstimate(rep, 4)
	if four >= one {
		t.Fatalf("sharding did not reduce delay: %v vs %v", four, one)
	}
	if four < rep.OCSTime {
		t.Fatal("sharded delay below the OCS floor")
	}
	if got := c.ShardEstimate(rep, 0); got != one {
		t.Fatal("nControllers<1 not clamped")
	}
}

func TestBadK(t *testing.T) {
	nw, _ := core.ExampleNetwork()
	if _, err := NewController(nw, TestbedDelayModel(), map[core.Mode]int{core.ModeClos: 0}); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestFailAndRepairLink(t *testing.T) {
	c := exampleController(t)
	if _, err := c.Convert(core.ModeGlobal); err != nil {
		t.Fatal(err)
	}
	// Fail one core-facing link: pick a switch-switch link.
	tp := c.Realization().Topo
	var a, b int
	found := false
	for _, l := range tp.G.Links() {
		na, nb := tp.Nodes[l.A], tp.Nodes[l.B]
		if na.Kind != 0 && nb.Kind != 0 { // not servers
			a, b = l.A, l.B
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no switch link found")
	}
	linksBefore := tp.G.NumLinks()
	if err := c.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	if got := c.Realization().Topo.G.NumLinks(); got != linksBefore-1 {
		t.Fatalf("links after failure = %d, want %d", got, linksBefore-1)
	}
	if len(c.FailedLinks()) != 1 {
		t.Fatalf("failed links = %v", c.FailedLinks())
	}
	// Routing still works on the degraded network.
	if c.MaxRulesPerSwitch() <= 0 {
		t.Fatal("no rules after failure")
	}
	// The failure persists across a conversion.
	if _, err := c.Convert(core.ModeClos); err != nil {
		t.Fatal(err)
	}
	if err := c.RepairLink(a, b); err != nil {
		t.Fatal(err)
	}
	if len(c.FailedLinks()) != 0 {
		t.Fatal("failure not cleared by repair")
	}
	if err := c.RepairLink(a, b); err == nil {
		t.Fatal("repairing a healthy link succeeded")
	}
}

func TestFailLinkValidation(t *testing.T) {
	c := exampleController(t)
	if err := c.FailLink(0, 0); err == nil {
		t.Fatal("self link failure accepted")
	}
	if err := c.FailLink(-1, 2); err == nil {
		t.Fatal("out-of-range node accepted")
	}
	// Failing a nonexistent adjacency errors.
	tp := c.Realization().Topo
	s := tp.Servers()
	if err := c.FailLink(s[0], s[1]); err == nil {
		t.Fatal("failing a nonexistent link succeeded")
	}
}

func TestFailLinkRefusesPartition(t *testing.T) {
	c := exampleController(t)
	// Severing a server's only uplink is not a fabric failure; pick a
	// server uplink indirectly: cut every link between an edge switch and
	// all its aggs to try to strand it — the controller must refuse the
	// final cut that partitions the fabric.
	tp := c.Realization().Topo
	edge := tp.Edges()[0]
	var cuts [][2]int
	for _, id := range tp.G.Incident(edge) {
		other := tp.G.Link(id).Other(edge)
		if tp.Nodes[other].Kind != 0 { // a switch
			cuts = append(cuts, [2]int{edge, other})
		}
	}
	var refused bool
	for _, cut := range cuts {
		if err := c.FailLink(cut[0], cut[1]); err != nil {
			refused = true
			break
		}
	}
	if !refused {
		t.Fatal("controller allowed partitioning the edge switch")
	}
	// The controller must still be functional after the refusal.
	if _, err := c.Convert(core.ModeGlobal); err != nil {
		t.Fatal(err)
	}
}

func TestGradualConvert(t *testing.T) {
	c := exampleController(t)
	steps, err := c.GradualConvert(core.ModeGlobal, 1)
	if err != nil {
		t.Fatal(err)
	}
	// 4 pods, batch 1 => 4 steps, each converting one pod.
	if len(steps) != 4 {
		t.Fatalf("steps = %d, want 4", len(steps))
	}
	for i, s := range steps {
		if len(s.Pods) != 1 || s.Pods[0] != i {
			t.Fatalf("step %d pods = %v", i, s.Pods)
		}
		// Intermediate states are valid hybrids: converted prefix global,
		// the rest still Clos.
		for p, m := range s.ModesAfter {
			want := core.ModeClos
			if p <= i {
				want = core.ModeGlobal
			}
			if m != want {
				t.Fatalf("step %d pod %d mode %v, want %v", i, p, m, want)
			}
		}
		// Every step is cheaper than a full conversion (fewer rules
		// change per step than in an atomic switch).
		if s.Report.Total <= s.Report.OCSTime {
			t.Fatalf("step %d total %v at the OCS floor", i, s.Report.Total)
		}
	}
	if m, uniform := c.Network().Mode(); !uniform || m != core.ModeGlobal {
		t.Fatalf("final mode %v uniform=%v", m, uniform)
	}
	if GradualTotalDelay(steps) <= 0 {
		t.Fatal("no total delay")
	}
	// Converting again gradually is a no-op (all batches skipped).
	again, err := c.GradualConvert(core.ModeGlobal, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) != 0 {
		t.Fatalf("idempotent gradual conversion produced %d steps", len(again))
	}
	if _, err := c.GradualConvert(core.ModeClos, 0); err == nil {
		t.Fatal("batch size 0 accepted")
	}
}

func TestGradualConvertBatches(t *testing.T) {
	c := exampleController(t)
	steps, err := c.GradualConvert(core.ModeLocal, 3)
	if err != nil {
		t.Fatal(err)
	}
	// 4 pods, batch 3 => steps of 3 and 1 pods.
	if len(steps) != 2 || len(steps[0].Pods) != 3 || len(steps[1].Pods) != 1 {
		t.Fatalf("batching wrong: %d steps", len(steps))
	}
}

func TestPrecomputeRoutes(t *testing.T) {
	c := exampleController(t)
	// Cold conversion computes routes.
	rep, err := c.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromCache {
		t.Fatal("cold conversion claimed a cache hit")
	}
	if rep.RouteComputeTime <= 0 {
		t.Fatal("no route computation time measured")
	}

	if err := c.PrecomputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Convert(core.ModeLocal)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FromCache || rep.RouteComputeTime != 0 {
		t.Fatalf("precomputed conversion missed the cache: %+v", rep)
	}
	// Routing state from the cache is fully functional.
	if c.MaxRulesPerSwitch() <= 0 || len(c.Table().Ingress) == 0 {
		t.Fatal("cached routing state empty")
	}

	// A link failure invalidates the cache.
	tp := c.Realization().Topo
	var a, b int
	for _, l := range tp.G.Links() {
		na, nb := tp.Nodes[l.A], tp.Nodes[l.B]
		if na.Kind != 0 && nb.Kind != 0 {
			a, b = l.A, l.B
			break
		}
	}
	if err := c.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	rep, err = c.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromCache {
		t.Fatal("cache served a degraded topology")
	}
	if err := c.PrecomputeRoutes(); err == nil {
		t.Fatal("precompute allowed with failed links")
	}
}

func TestHybridNeverCached(t *testing.T) {
	c := exampleController(t)
	if err := c.PrecomputeRoutes(); err != nil {
		t.Fatal(err)
	}
	rep, err := c.ConvertPods([]core.Mode{core.ModeGlobal, core.ModeClos, core.ModeClos, core.ModeClos})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FromCache {
		t.Fatal("hybrid mode served from the uniform-mode cache")
	}
}

func TestRepairLinkRollsBackOnError(t *testing.T) {
	// RepairLink must restore the failure record if reinstall fails, so
	// bookkeeping never diverges from installed state. Reinstall cannot
	// fail on the example network (repair only adds links back), so this
	// exercises the bookkeeping contract indirectly: a failed link stays
	// listed across conversions and repairs cleanly afterwards.
	c := exampleController(t)
	tp := c.Realization().Topo
	var a, b int
	for _, l := range tp.G.Links() {
		na, nb := tp.Nodes[l.A], tp.Nodes[l.B]
		if na.Kind != 0 && nb.Kind != 0 {
			a, b = l.A, l.B
			break
		}
	}
	if err := c.FailLink(a, b); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Convert(core.ModeGlobal); err != nil {
		t.Fatal(err)
	}
	if got := c.FailedLinks(); len(got) != 1 || got[0] != [3]int{a, b, 1} {
		t.Fatalf("failed links after conversion = %v", got)
	}
	if err := c.RepairLink(a, b); err != nil {
		t.Fatal(err)
	}
	if len(c.FailedLinks()) != 0 {
		t.Fatal("repair left a record behind")
	}
}

func TestFailedLinksSorted(t *testing.T) {
	c := exampleController(t)
	tp := c.Realization().Topo
	var cuts [][2]int
	for _, l := range tp.G.Links() {
		na, nb := tp.Nodes[l.A], tp.Nodes[l.B]
		if na.Kind != 0 && nb.Kind != 0 {
			cuts = append(cuts, [2]int{l.A, l.B})
			if len(cuts) == 3 {
				break
			}
		}
	}
	// Fail in reverse discovery order (skipping cuts the controller
	// refuses as partitioning); the listing must still come back
	// ascending, and identically on every call (the map-iteration bug).
	failed := 0
	for i := len(cuts) - 1; i >= 0; i-- {
		if err := c.FailLink(cuts[i][0], cuts[i][1]); err == nil {
			failed++
		}
	}
	if failed < 2 {
		t.Fatalf("only %d links failed, need at least 2 to observe ordering", failed)
	}
	first := c.FailedLinks()
	for i := 1; i < len(first); i++ {
		a, b := first[i-1], first[i]
		if a[0] > b[0] || (a[0] == b[0] && a[1] > b[1]) {
			t.Fatalf("FailedLinks not sorted: %v", first)
		}
	}
	for trial := 0; trial < 10; trial++ {
		if got := c.FailedLinks(); len(got) != len(first) {
			t.Fatalf("listing length changed: %v vs %v", got, first)
		} else {
			for i := range got {
				if got[i] != first[i] {
					t.Fatalf("listing order changed between calls: %v vs %v", got, first)
				}
			}
		}
	}
}

func TestDormantFailureReappliesAfterConversion(t *testing.T) {
	// §4.3: failures are identified by endpoint node IDs, stable across
	// conversions. A failure recorded on an adjacency only the global
	// mode realizes goes dormant in Clos mode (the broken cable is not in
	// use) and must re-apply when converting back.
	c := exampleController(t)

	// Baseline link counts of both clean modes.
	if _, err := c.Convert(core.ModeClos); err != nil {
		t.Fatal(err)
	}
	closLinks := c.Realization().Topo.G.NumLinks()
	if _, err := c.Convert(core.ModeGlobal); err != nil {
		t.Fatal(err)
	}
	globalTopo := c.Realization().Topo
	globalLinks := globalTopo.G.NumLinks()

	// Find an adjacency realized in global mode but not in Clos mode.
	closAdj := make(map[[2]int]bool)
	nw2, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw2.SetMode(core.ModeClos)
	ct := nw2.Realize().Topo
	for _, l := range ct.G.Links() {
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		closAdj[[2]int{a, b}] = true
	}
	var ga, gb int
	found := false
	for _, l := range globalTopo.G.Links() {
		na, nb := globalTopo.Nodes[l.A], globalTopo.Nodes[l.B]
		if na.Kind == 0 || nb.Kind == 0 {
			continue
		}
		a, b := l.A, l.B
		if a > b {
			a, b = b, a
		}
		if !closAdj[[2]int{a, b}] {
			ga, gb = l.A, l.B
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no global-only adjacency found")
	}

	if err := c.FailLink(ga, gb); err != nil {
		t.Fatal(err)
	}
	if got := c.Realization().Topo.G.NumLinks(); got != globalLinks-1 {
		t.Fatalf("links after failure = %d, want %d", got, globalLinks-1)
	}
	// Convert to Clos: the failure is dormant — the surviving Clos
	// realization is at full strength.
	if _, err := c.Convert(core.ModeClos); err != nil {
		t.Fatal(err)
	}
	if got := c.Realization().Topo.G.NumLinks(); got != closLinks {
		t.Fatalf("dormant failure pruned a Clos link: %d links, want %d", got, closLinks)
	}
	if got := c.FailedLinks(); len(got) != 1 {
		t.Fatalf("dormant failure dropped from the record: %v", got)
	}
	// Convert back: the mask re-applies.
	if _, err := c.Convert(core.ModeGlobal); err != nil {
		t.Fatal(err)
	}
	if got := c.Realization().Topo.G.NumLinks(); got != globalLinks-1 {
		t.Fatalf("mask did not re-apply after conversion back: %d links, want %d", got, globalLinks-1)
	}
	if err := c.RepairLink(ga, gb); err != nil {
		t.Fatal(err)
	}
	if got := c.Realization().Topo.G.NumLinks(); got != globalLinks {
		t.Fatalf("links after repair = %d, want %d", got, globalLinks)
	}
}
