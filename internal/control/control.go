// Package control implements the flat-tree control system of §4: a
// logically centralized controller that owns the converter switch
// configurations, converts the topology between modes, recomputes
// k-shortest-path routing, and accounts for the conversion delay — the OCS
// reconfiguration plus OpenFlow rule deletion and installation the testbed
// measures in Table 3.
package control

import (
	"fmt"
	"maps"
	"time"

	"flattree/internal/core"
	"flattree/internal/recorder"
	"flattree/internal/routing"
	"flattree/internal/telemetry"
)

// DelayModel captures the testbed's conversion latency components. Times
// are in seconds.
type DelayModel struct {
	// OCSReconfig is the flat optical-circuit-switch reconfiguration time
	// (the testbed's 3D-MEMS OCS takes 160 ms regardless of how many
	// logical converter partitions change).
	OCSReconfig float64
	// PerRuleDelete and PerRuleAdd are per-OpenFlow-rule latencies; the
	// testbed's legacy switches process roughly a rule per millisecond
	// and are driven sequentially (§5.3).
	PerRuleDelete float64
	PerRuleAdd    float64
	// Parallel models the §5.3 improvement of configuring switches in
	// parallel: rule time is then driven by the busiest switch instead of
	// the total.
	Parallel bool
	// Ramp is the modeled time for transport throughput to regrow after
	// the new rules land (MPTCP slow-start recovery, Figure 10's 2–2.5 s
	// to maximum). It is reported in conversion traces and reports but is
	// not part of Total, which models only the data-plane update.
	Ramp float64
}

// TestbedDelayModel returns the delay constants calibrated to Table 3:
// with the example network's rule totals (≈1.2k Clos / 4.7k local / 7.2k
// global across all switches) and ≈0.1 ms per batched rule operation,
// conversions complete in roughly one second, matching §5.3.
func TestbedDelayModel() DelayModel {
	return DelayModel{OCSReconfig: 0.160, PerRuleDelete: 0.000090, PerRuleAdd: 0.000090, Ramp: 1.2}
}

// ConversionReport breaks down one topology conversion (Table 3's rows).
type ConversionReport struct {
	From, To []core.Mode
	// ConvertersReconfigured counts converter switches whose
	// configuration changed.
	ConvertersReconfigured int
	// RulesDeleted and RulesAdded count OpenFlow rules across switches.
	RulesDeleted, RulesAdded int
	// OCSTime, DeleteTime, AddTime, Total are the latency components in
	// seconds (Total = OCS + Delete + Add, sequential as on the testbed).
	OCSTime, DeleteTime, AddTime, Total float64
	// RampTime is the modeled transport-throughput regrow time after the
	// rules land (DelayModel.Ramp); reported but excluded from Total.
	RampTime float64
	// RouteComputeTime is the measured wall time spent computing the
	// k-shortest-path table for the new topology; zero when the table
	// came from the §4.3 precomputed store ("the paths and the resulting
	// network states can also be precomputed and stored into a table in
	// memory to save the computation time"). It is reported separately
	// and not part of Total, which models only the data-plane update.
	RouteComputeTime float64
	// FromCache reports whether the routing state was precomputed.
	FromCache bool
}

// Controller manages a flat-tree network's converter switches and routing
// state.
type Controller struct {
	nw    *core.Network
	delay DelayModel
	// K is the number of concurrent paths used per mode (§4.2.1 allows a
	// different k per topology mode).
	K map[core.Mode]int

	realization *core.Realization
	table       *routing.Table
	rules       map[int]int // current per-switch rule count
	configs     []core.Config
	// failed masks broken links by endpoint pair (§4.3 failure handling).
	failed map[[2]int]int
	// routeCache holds precomputed routing state per uniform mode (§4.3);
	// invalidated by link failures/repairs.
	routeCache map[core.Mode]*cachedRoutes
	// lastCompute and lastFromCache record the most recent reinstall's
	// route-computation cost for conversion reports.
	lastCompute   float64
	lastFromCache bool
	// rec, when set, receives each conversion's phase breakdown as
	// sim-time flight-recorder events; recClock positions them (see
	// SetRecordClock).
	rec      *recorder.Track
	recClock float64
}

// cachedRoutes is one mode's precomputed routing state.
type cachedRoutes struct {
	realization *core.Realization
	table       *routing.Table
	rules       map[int]int
}

// NewController initializes the controller in the network's current mode
// and installs its routing state. kByMode maps each mode to its k; missing
// modes default to 4.
func NewController(nw *core.Network, delay DelayModel, kByMode map[core.Mode]int) (*Controller, error) {
	c := &Controller{nw: nw, delay: delay, K: make(map[core.Mode]int),
		failed: make(map[[2]int]int), routeCache: make(map[core.Mode]*cachedRoutes)}
	for _, m := range []core.Mode{core.ModeClos, core.ModeLocal, core.ModeGlobal} {
		c.K[m] = 4
		if k, ok := kByMode[m]; ok {
			if k < 1 {
				return nil, fmt.Errorf("control: k=%d for mode %v", k, m)
			}
			c.K[m] = k
		}
	}
	if err := c.reinstall(); err != nil {
		return nil, err
	}
	return c, nil
}

// kForCurrent picks the routing k: the (maximum) k over the pod modes in
// use, so hybrid networks route with enough path diversity for their most
// demanding zone.
func (c *Controller) kForCurrent() int {
	k := 1
	for _, m := range c.nw.PodModes() {
		if c.K[m] > k {
			k = c.K[m]
		}
	}
	return k
}

// reinstall realizes the current converter configuration, masks failed
// links, and rebuilds routing state. It fails when the surviving topology
// is partitioned.
func (c *Controller) reinstall() error {
	c.lastCompute = 0
	c.lastFromCache = false
	// Uniform, failure-free modes can come from the precomputed store.
	if mode, uniform := c.nw.Mode(); uniform && len(c.failed) == 0 {
		if cached, ok := c.routeCache[mode]; ok {
			c.realization = cached.realization
			c.table = cached.table
			c.rules = cached.rules
			c.configs = configsOf(c.nw)
			c.lastFromCache = true
			telemetry.C("control_route_cache_hits_total").Inc()
			return nil
		}
	}
	telemetry.C("control_route_cache_misses_total").Inc()
	r := c.nw.Realize()
	pruned, err := pruneFailures(r.Topo, c.failed)
	if err != nil {
		return err
	}
	if pruned != r.Topo {
		degraded := *r
		degraded.Topo = pruned
		r = &degraded
	}
	c.realization = r
	start := time.Now()
	c.table = routing.BuildKShortest(c.realization.Topo, c.kForCurrent())
	c.lastCompute = time.Since(start).Seconds()
	telemetry.H("control_route_compute_seconds").Observe(c.lastCompute)
	c.rules = c.table.PrefixRulesPerSwitch()
	c.configs = configsOf(c.nw)
	return nil
}

// PrecomputeRoutes builds and stores the routing state of every uniform
// mode ahead of time (§4.3), so later conversions skip the k-shortest-path
// computation entirely. The cache is dropped on link failures and repairs,
// which change the graph.
func (c *Controller) PrecomputeRoutes() error {
	if len(c.failed) > 0 {
		return fmt.Errorf("control: cannot precompute with %d failed links", len(c.failed))
	}
	saved := c.nw.PodModes()
	for _, m := range []core.Mode{core.ModeClos, core.ModeLocal, core.ModeGlobal} {
		c.nw.SetMode(m)
		r := c.nw.Realize()
		table := routing.BuildKShortest(r.Topo, c.K[m])
		c.routeCache[m] = &cachedRoutes{
			realization: r, table: table, rules: table.PrefixRulesPerSwitch(),
		}
	}
	for pod, m := range saved {
		if err := c.nw.SetPodMode(pod, m); err != nil {
			return err
		}
	}
	return c.reinstall()
}

func configsOf(nw *core.Network) []core.Config {
	convs := nw.Converters()
	out := make([]core.Config, len(convs))
	for i, cv := range convs {
		out[i] = cv.Config
	}
	return out
}

// Network returns the managed network.
func (c *Controller) Network() *core.Network { return c.nw }

// Realization returns the currently installed topology.
func (c *Controller) Realization() *core.Realization { return c.realization }

// Table returns the currently installed route table.
func (c *Controller) Table() *routing.Table { return c.table }

// RulesPerSwitch returns the installed per-switch rule counts.
func (c *Controller) RulesPerSwitch() map[int]int {
	out := make(map[int]int, len(c.rules))
	maps.Copy(out, c.rules)
	return out
}

// MaxRulesPerSwitch returns the largest per-switch rule count — the §5.3
// figure of merit (242/180/76 on the testbed).
func (c *Controller) MaxRulesPerSwitch() int {
	max := 0
	//flatvet:ordered integer max over values is order-independent
	for _, v := range c.rules {
		if v > max {
			max = v
		}
	}
	return max
}

// Convert switches the whole network to the given mode, returning the
// delay breakdown.
func (c *Controller) Convert(mode core.Mode) (*ConversionReport, error) {
	modes := make([]core.Mode, c.nw.Clos().Pods)
	for i := range modes {
		modes[i] = mode
	}
	return c.ConvertPods(modes)
}

// ConvertPods switches per-pod modes (hybrid operation) and returns the
// delay breakdown.
func (c *Controller) ConvertPods(modes []core.Mode) (*ConversionReport, error) {
	if len(modes) != c.nw.Clos().Pods {
		return nil, fmt.Errorf("control: %d modes for %d pods", len(modes), c.nw.Clos().Pods)
	}
	sp := telemetry.StartSpan("conversion", telemetry.Str("to", modesLabel(modes)))
	defer sp.End()
	from := c.nw.PodModes()
	oldConfigs := c.configs
	oldRules := c.rules

	for pod, m := range modes {
		if err := c.nw.SetPodMode(pod, m); err != nil {
			return nil, err
		}
	}
	if err := c.reinstall(); err != nil {
		// Roll back: the requested modes partition under the recorded
		// failures; restore the previous configuration.
		for pod, m := range from {
			if rerr := c.nw.SetPodMode(pod, m); rerr != nil {
				return nil, fmt.Errorf("control: conversion failed (%v) and rollback of pod %d failed (%v)", err, pod, rerr)
			}
		}
		if rerr := c.reinstall(); rerr != nil {
			return nil, fmt.Errorf("control: conversion failed (%v) and rollback failed (%v)", err, rerr)
		}
		return nil, err
	}

	rep := &ConversionReport{From: from, To: append([]core.Mode(nil), modes...)}
	for i, cfg := range c.configs {
		if cfg != oldConfigs[i] {
			rep.ConvertersReconfigured++
		}
	}
	// Rule churn: the old topology's rules are deleted, the new ones
	// added (the testbed deletes and reinstalls; unchanged rules between
	// modes are rare because paths shift with the topology).
	if c.delay.Parallel {
		//flatvet:ordered integer max over values is order-independent
		for _, n := range oldRules {
			if n > rep.RulesDeleted {
				rep.RulesDeleted = n
			}
		}
		//flatvet:ordered integer max over values is order-independent
		for _, n := range c.rules {
			if n > rep.RulesAdded {
				rep.RulesAdded = n
			}
		}
	} else {
		//flatvet:ordered integer sum is order-independent
		for _, n := range oldRules {
			rep.RulesDeleted += n
		}
		//flatvet:ordered integer sum is order-independent
		for _, n := range c.rules {
			rep.RulesAdded += n
		}
	}
	rep.OCSTime = c.delay.OCSReconfig
	rep.DeleteTime = float64(rep.RulesDeleted) * c.delay.PerRuleDelete
	rep.AddTime = float64(rep.RulesAdded) * c.delay.PerRuleAdd
	rep.Total = rep.OCSTime + rep.DeleteTime + rep.AddTime
	rep.RampTime = c.delay.Ramp
	rep.RouteComputeTime = c.lastCompute
	rep.FromCache = c.lastFromCache

	// Table 3 as a trace: one modeled-duration child span per conversion
	// phase, rule churn attached where it drives the phase length.
	sp.SetAttr(
		telemetry.Str("from", modesLabel(from)),
		telemetry.Int("converters_reconfigured", rep.ConvertersReconfigured),
		telemetry.Float("modeled_total_seconds", rep.Total),
	)
	sp.Record("ocs", rep.OCSTime)
	sp.Record("rule-delete", rep.DeleteTime, telemetry.Int("rules_deleted", rep.RulesDeleted))
	sp.Record("rule-add", rep.AddTime, telemetry.Int("rules_added", rep.RulesAdded))
	sp.Record("ramp", rep.RampTime)
	c.recordPhases(rep)
	telemetry.C("control_conversions_total").Inc()
	telemetry.C("control_rules_deleted_total").Add(int64(rep.RulesDeleted))
	telemetry.C("control_rules_added_total").Add(int64(rep.RulesAdded))
	return rep, nil
}

// SetRecorder directs each conversion's phase breakdown onto a flight-
// recorder track. Concurrent controllers must use distinct tracks; a nil
// track disables emission.
func (c *Controller) SetRecorder(tr *recorder.Track) { c.rec = tr }

// SetRecordClock positions the NEXT conversion's phases at sim time t.
// The controller has no clock of its own — conversions are priced, not
// scheduled — so the caller that knows when a conversion fires (the
// testbed's iperf schedule, an experiment loop) supplies the instant.
// Without a call, conversions stack back to back from zero.
func (c *Controller) SetRecordClock(t float64) { c.recClock = t }

// recordPhases emits the conversion's four phases as modeled slices at
// the record clock and advances the clock past the ramp.
func (c *Controller) recordPhases(rep *ConversionReport) {
	if c.rec == nil {
		return
	}
	t := c.recClock
	phases := []struct {
		label string
		dur   float64
		a     int64
	}{
		{"ocs", rep.OCSTime, int64(rep.ConvertersReconfigured)},
		{"rule_delete", rep.DeleteTime, int64(rep.RulesDeleted)},
		{"rule_add", rep.AddTime, int64(rep.RulesAdded)},
		{"ramp", rep.RampTime, 0},
	}
	for _, ph := range phases {
		c.rec.Emit(recorder.Event{T: t, Kind: recorder.ConversionPhase, V: ph.dur, A: ph.a, Label: ph.label})
		t += ph.dur
	}
	c.recClock = t
}

// modesLabel renders a pod-mode vector compactly: the single mode name
// when uniform, otherwise the per-pod list.
func modesLabel(modes []core.Mode) string {
	if len(modes) == 0 {
		return ""
	}
	uniform := true
	for _, m := range modes[1:] {
		if m != modes[0] {
			uniform = false
			break
		}
	}
	if uniform {
		return modes[0].String()
	}
	out := ""
	for i, m := range modes {
		if i > 0 {
			out += ","
		}
		out += m.String()
	}
	return out
}

// ShardEstimate models the distributed-controller option of §4.3: with the
// state distribution spread over nControllers, the rule install time
// shrinks proportionally (path computation parallelizes trivially).
func (c *Controller) ShardEstimate(rep *ConversionReport, nControllers int) float64 {
	if nControllers < 1 {
		nControllers = 1
	}
	return rep.OCSTime + (rep.DeleteTime+rep.AddTime)/float64(nControllers)
}
