package control

import (
	"fmt"
	"maps"
	"sort"

	"flattree/internal/core"
	"flattree/internal/topo"
)

// Link-failure handling (§4.3): the logically centralized controller
// "observes link failures and updates the graph, which happens
// infrequently and does not cause heavy burden". Failures are identified
// by their endpoint node IDs — stable across conversions because
// realizations enumerate nodes identically in every mode — so a failure
// recorded in one mode stays masked after converting to another when the
// same physical cable is still in use.

// FailLink records the failure of one link between nodes a and b on the
// current realization and reinstalls routing state on the surviving
// topology. Parallel links fail one at a time (each call masks one more).
func (c *Controller) FailLink(a, b int) error {
	live, err := c.liveLinksBetween(a, b)
	if err != nil {
		return err
	}
	if live == 0 {
		return fmt.Errorf("control: no surviving link between %d and %d", a, b)
	}
	key := linkKey(a, b)
	c.failed[key]++
	c.routeCache = make(map[core.Mode]*cachedRoutes) // graph changed
	if err := c.reinstall(); err != nil {
		c.failed[key]--
		return fmt.Errorf("control: failing link %d-%d would partition the network: %w", a, b, err)
	}
	return nil
}

// RepairLink clears one recorded failure between a and b and reinstalls.
// On reinstall failure the record is restored, symmetric with FailLink, so
// the controller's failure bookkeeping always matches its installed state.
func (c *Controller) RepairLink(a, b int) error {
	key := linkKey(a, b)
	if c.failed[key] == 0 {
		return fmt.Errorf("control: no recorded failure between %d and %d", a, b)
	}
	c.failed[key]--
	if c.failed[key] == 0 {
		delete(c.failed, key)
	}
	c.routeCache = make(map[core.Mode]*cachedRoutes) // graph changed
	if err := c.reinstall(); err != nil {
		c.failed[key]++
		return fmt.Errorf("control: repairing link %d-%d: %w", a, b, err)
	}
	return nil
}

// FailedLinks lists recorded failures as (a, b, count) triples, sorted by
// (a, b) ascending so output is deterministic across runs.
func (c *Controller) FailedLinks() [][3]int {
	var out [][3]int
	for k, n := range c.failed {
		out = append(out, [3]int{k[0], k[1], n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// liveLinksBetween counts surviving links between two nodes on the
// current (pruned) topology.
func (c *Controller) liveLinksBetween(a, b int) (int, error) {
	t := c.realization.Topo
	if a < 0 || a >= len(t.Nodes) || b < 0 || b >= len(t.Nodes) {
		return 0, fmt.Errorf("control: node out of range")
	}
	n := 0
	for _, id := range t.G.Incident(a) {
		if t.G.Link(id).Other(a) == b {
			n++
		}
	}
	return n, nil
}

func linkKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

// pruneFailures rebuilds a topology without the masked links. A recorded
// failure whose adjacency the current mode does not realize is dormant:
// the broken cable is simply not in use until a conversion brings it back.
// Pruning errors only when the surviving network no longer validates
// (partition).
func pruneFailures(t *topo.Topology, failed map[[2]int]int) (*topo.Topology, error) {
	if len(failed) == 0 {
		return t, nil
	}
	remaining := make(map[[2]int]int, len(failed))
	maps.Copy(remaining, failed)
	out := topo.NewTopology(t.Name + "-degraded")
	out.SetNumPods(t.NumPods())
	for _, n := range t.Nodes {
		id := out.AddNode(n.Kind, n.Pod)
		if id != n.ID {
			return nil, fmt.Errorf("control: node renumbering during prune")
		}
		out.Nodes[id].LocalIndex = n.LocalIndex
	}
	for _, l := range t.G.Links() {
		na, nb := t.Nodes[l.A], t.Nodes[l.B]
		if na.Kind != topo.Server && nb.Kind != topo.Server {
			key := linkKey(l.A, l.B)
			if remaining[key] > 0 {
				remaining[key]--
				continue // masked
			}
			out.AddLink(l.A, l.B)
		}
	}
	for _, s := range t.Servers() {
		out.AttachServer(s, t.AttachedSwitch(s))
	}
	if err := out.Validate(); err != nil {
		return nil, err
	}
	return out, nil
}
