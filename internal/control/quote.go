package control

import (
	"flattree/internal/core"
	"flattree/internal/routing"
)

// Quote prices a what-if topology conversion without touching any live
// state: the Table 3 delay breakdown plus the exact per-switch rule churn
// the conversion would cause. The testbed's controller deletes the old
// mode's rules and installs the new mode's (§5.3), so the delta's Dels are
// the pre-conversion per-switch rule counts and its Adds the
// post-conversion counts.
type Quote struct {
	Report ConversionReport
	Delta  routing.RuleDelta
}

// QuotePodModes prices converting the network to the given per-pod modes
// on a private clone, leaving the caller's network and any installed
// routing state untouched — the online what-if entry point flatd's
// /quote/convert serves. The quote prices the healthy fabric: transient
// link failures are a routing-layer concern (priced per event by
// routing.IncrementalTable) and do not change the conversion's rule churn
// model. Wall-clock route-computation time is zeroed so identical inputs
// always produce identical quotes.
func QuotePodModes(nw *core.Network, delay DelayModel, kByMode map[core.Mode]int, modes []core.Mode) (*Quote, error) {
	c, err := NewController(nw.Clone(), delay, kByMode)
	if err != nil {
		return nil, err
	}
	before := c.RulesPerSwitch()
	rep, err := c.ConvertPods(modes)
	if err != nil {
		return nil, err
	}
	rep.RouteComputeTime = 0
	after := c.RulesPerSwitch()
	return &Quote{Report: *rep, Delta: routing.RuleDelta{Adds: after, Dels: before}}, nil
}
