package control

import (
	"fmt"

	"flattree/internal/core"
)

// Gradual conversion (§4.3): "Network operators can plan when conversions
// should happen ... They can convert the topology gradually involving some
// of the network devices, so converter switches need not be coordinated to
// react all at the same time. Existing methods for updating or replacing a
// switch in the network, e.g. draining parts of the network incrementally
// before making the changes, can be used to avoid traffic disruption."
//
// GradualConvert realizes that: pods convert in batches, each batch its
// own (short) reconfiguration, while the rest of the network keeps its old
// mode and keeps carrying traffic. The intermediate states are exactly the
// hybrid modes of §3.5, so routing stays valid throughout.

// GradualStep is one batch of a gradual conversion.
type GradualStep struct {
	// Pods converted in this step.
	Pods []int
	// Report is the step's conversion accounting (rules and latency for
	// this batch only).
	Report *ConversionReport
	// ModesAfter is the pod-mode vector once the step completes.
	ModesAfter []core.Mode
}

// GradualConvert converts the network to the target mode batchSize pods at
// a time, returning the per-step reports. The network remains connected
// and routed between steps; callers drain traffic from each batch's pods
// before invoking the next step if they want zero loss, per §4.3.
func (c *Controller) GradualConvert(target core.Mode, batchSize int) ([]GradualStep, error) {
	if batchSize < 1 {
		return nil, fmt.Errorf("control: batch size %d", batchSize)
	}
	pods := c.nw.Clos().Pods
	var steps []GradualStep
	for start := 0; start < pods; start += batchSize {
		end := start + batchSize
		if end > pods {
			end = pods
		}
		modes := c.nw.PodModes()
		var batch []int
		changed := false
		for p := start; p < end; p++ {
			if modes[p] != target {
				changed = true
			}
			modes[p] = target
			batch = append(batch, p)
		}
		if !changed {
			continue // batch already in the target mode
		}
		rep, err := c.ConvertPods(modes)
		if err != nil {
			return steps, fmt.Errorf("control: gradual step at pod %d: %w", start, err)
		}
		steps = append(steps, GradualStep{
			Pods: batch, Report: rep, ModesAfter: append([]core.Mode(nil), modes...),
		})
	}
	return steps, nil
}

// GradualTotalDelay sums the step latencies — the serialized cost of a
// gradual conversion (each step is cheaper than a full conversion but
// there are more of them; rule churn is what dominates either way).
func GradualTotalDelay(steps []GradualStep) float64 {
	var total float64
	for _, s := range steps {
		total += s.Report.Total
	}
	return total
}
