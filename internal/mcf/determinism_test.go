package mcf

import (
	"testing"

	"flattree/internal/graph"
	"flattree/internal/parallel"
)

// mcfFabric builds a two-tier fabric with enough commodities per source
// to push traceAll over parallelTraceThreshold.
func mcfFabric() (*graph.Graph, []Commodity) {
	const leaves, spines = 24, 4
	g := graph.New(leaves + spines)
	for l := 0; l < leaves; l++ {
		for s := 0; s < spines; s++ {
			g.AddLink(l, leaves+s, 10)
		}
	}
	var comms []Commodity
	for src := 0; src < 2; src++ {
		for dst := 0; dst < leaves; dst++ {
			if dst != src {
				comms = append(comms, Commodity{Src: src, Dst: dst, Demand: 1})
			}
		}
	}
	return g, comms
}

// TestSolveDeterministicAcrossWorkerCounts pins the hard requirement that
// the GK solves produce bit-identical results whatever the pool size: the
// parallel pieces (connectivity prepass, per-source trace fan-out) are
// read-only and index-collected.
func TestSolveDeterministicAcrossWorkerCounts(t *testing.T) {
	g, comms := mcfFabric()
	run := func(workers int) (Result, Result) {
		parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(0)
		conc, err := MaxConcurrent(g, comms, Options{Epsilon: 0.2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		tot, err := MaxTotal(g, comms, Options{Epsilon: 0.2})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return conc, tot
	}
	c1, t1 := run(1)
	c8, t8 := run(8)
	if c1.Lambda != c8.Lambda || c1.Total != c8.Total {
		t.Fatalf("MaxConcurrent differs across worker counts: %+v vs %+v", c1, c8)
	}
	if t1.Total != t8.Total {
		t.Fatalf("MaxTotal differs across worker counts: %v vs %v", t1.Total, t8.Total)
	}
	for j := range c1.PerFlow {
		if c1.PerFlow[j] != c8.PerFlow[j] {
			t.Fatalf("MaxConcurrent PerFlow[%d] differs: %v vs %v", j, c1.PerFlow[j], c8.PerFlow[j])
		}
		if t1.PerFlow[j] != t8.PerFlow[j] {
			t.Fatalf("MaxTotal PerFlow[%d] differs: %v vs %v", j, t1.PerFlow[j], t8.PerFlow[j])
		}
	}
}

// TestDisconnectedReportsLowestCommodity pins the prepass error contract:
// with several disconnected commodities, the reported one is always the
// lowest-index, matching what a serial scan would say.
func TestDisconnectedReportsLowestCommodity(t *testing.T) {
	g := graph.New(6)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 3, 1)
	// 4 and 5 are isolated.
	comms := []Commodity{
		{Src: 0, Dst: 1, Demand: 1},
		{Src: 0, Dst: 4, Demand: 1}, // first disconnected
		{Src: 2, Dst: 5, Demand: 1}, // also disconnected
	}
	for _, workers := range []int{1, 8} {
		parallel.SetDefaultWorkers(workers)
		_, err := MaxConcurrent(g, comms, Options{})
		parallel.SetDefaultWorkers(0)
		if err == nil {
			t.Fatalf("workers=%d: disconnected commodities accepted", workers)
		}
		const want = "mcf: commodity 1 (0->4) disconnected"
		if err.Error() != want {
			t.Fatalf("workers=%d: err = %q, want %q", workers, err, want)
		}
	}
}
