package mcf

import (
	"math"
	"testing"
	"testing/quick"

	"flattree/internal/graph"
)

// line builds a path graph 0-1-...-n-1 with the given per-link capacity.
func line(n int, cap float64) *graph.Graph {
	g := graph.New(n)
	for i := 0; i+1 < n; i++ {
		g.AddLink(i, i+1, cap)
	}
	return g
}

func TestMaxConcurrentSingleLink(t *testing.T) {
	g := line(2, 10)
	res, err := MaxConcurrent(g, []Commodity{{Src: 0, Dst: 1, Demand: 1}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// One unit-demand commodity on a 10-capacity link: λ should approach
	// 10 (the link fits 10 demand units).
	if res.Lambda < 8 || res.Lambda > 10.0001 {
		t.Fatalf("lambda = %v, want ~10", res.Lambda)
	}
}

func TestMaxConcurrentFullDuplex(t *testing.T) {
	// Opposite directions of a full-duplex link do not contend: both
	// commodities approach 10.
	g := line(2, 10)
	comms := []Commodity{
		{Src: 0, Dst: 1, Demand: 1},
		{Src: 1, Dst: 0, Demand: 1},
	}
	res, err := MaxConcurrent(g, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < 8 || res.Lambda > 10.0001 {
		t.Fatalf("lambda = %v, want ~10 (full duplex)", res.Lambda)
	}
}

func TestMaxConcurrentSharedBottleneck(t *testing.T) {
	// Two commodities in the SAME direction share the 10-capacity arc:
	// λ -> 5 each.
	g := graph.New(3)
	g.AddLink(0, 1, 10)
	g.AddLink(2, 1, 10)
	comms := []Commodity{
		{Src: 0, Dst: 1, Demand: 1},
		{Src: 2, Dst: 1, Demand: 1},
	}
	// Both enter node 1 over separate links: no contention, λ ~ 10. Now
	// force sharing with a common tail instead.
	res, err := MaxConcurrent(g, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < 8 {
		t.Fatalf("separate-link lambda = %v, want ~10", res.Lambda)
	}
	shared := line(2, 10)
	comms = []Commodity{
		{Src: 0, Dst: 1, Demand: 1},
		{Src: 0, Dst: 1, Demand: 1},
	}
	res, err = MaxConcurrent(shared, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < 4 || res.Lambda > 5.0001 {
		t.Fatalf("lambda = %v, want ~5", res.Lambda)
	}
	// Concurrent flow: both flows within 25% of each other.
	if r := res.PerFlow[0] / res.PerFlow[1]; r < 0.75 || r > 1.33 {
		t.Fatalf("flow imbalance: %v", res.PerFlow)
	}
}

func TestMaxConcurrentUsesBothParallelPaths(t *testing.T) {
	// Diamond: 0-1-3 and 0-2-3, capacity 10 per link. One commodity 0->3
	// should achieve ~20 by splitting.
	g := graph.New(4)
	g.AddLink(0, 1, 10)
	g.AddLink(1, 3, 10)
	g.AddLink(0, 2, 10)
	g.AddLink(2, 3, 10)
	res, err := MaxConcurrent(g, []Commodity{{Src: 0, Dst: 3, Demand: 1}}, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lambda < 16 {
		t.Fatalf("lambda = %v, want ~20 (multipath)", res.Lambda)
	}
}

func TestMaxConcurrentFeasibility(t *testing.T) {
	// The rescaled solution must respect every link capacity. Reconstruct
	// link loads by re-running on a ring with several commodities and
	// verifying λ against the known optimum.
	g := graph.New(6)
	for i := 0; i < 6; i++ {
		g.AddLink(i, (i+1)%6, 1)
	}
	comms := []Commodity{
		{Src: 0, Dst: 3, Demand: 1},
		{Src: 1, Dst: 4, Demand: 1},
		{Src: 2, Dst: 5, Demand: 1},
	}
	res, err := MaxConcurrent(g, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Full-duplex ring: splitting each commodity into clockwise and
	// counter-clockwise halves, the most-loaded arc carries all three
	// commodities' shares in each direction: 3x <= 1 and 3y <= 1, so
	// λ = x + y = 2/3.
	if res.Lambda < 0.55 || res.Lambda > 0.6701 {
		t.Fatalf("lambda = %v, want ~0.667", res.Lambda)
	}
}

func TestMaxTotalPrefersCheapFlows(t *testing.T) {
	// Commodity A has a 1-hop path of capacity 10; commodity B must cross
	// the same link plus another. Max total should favor A but fill all
	// capacity it can.
	g := graph.New(3)
	g.AddLink(0, 1, 10)
	g.AddLink(1, 2, 10)
	comms := []Commodity{
		{Src: 0, Dst: 1, Demand: 1},
		{Src: 0, Dst: 2, Demand: 1},
	}
	res, err := MaxTotal(g, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// Optimal total is 10: link 0-1 is the bottleneck for both.
	if res.Total < 8 || res.Total > 10.0001 {
		t.Fatalf("total = %v, want ~10", res.Total)
	}
}

func TestMaxTotalVsConcurrentShape(t *testing.T) {
	// On an asymmetric topology LP-average achieves at least the LP-min
	// total, and LP-min achieves at least the LP-average minimum
	// (Figure 7's qualitative relationship).
	g := graph.New(4)
	g.AddLink(0, 1, 10)
	g.AddLink(1, 2, 2) // thin middle link
	g.AddLink(2, 3, 10)
	comms := []Commodity{
		{Src: 0, Dst: 1, Demand: 1},
		{Src: 0, Dst: 3, Demand: 1},
	}
	avg, err := MaxTotal(g, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	min, err := MaxConcurrent(g, comms, Options{Epsilon: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	if avg.Total < min.Total*0.95 {
		t.Fatalf("LP average total %v below LP min total %v", avg.Total, min.Total)
	}
	if min.Min() < avg.Min() {
		t.Fatalf("LP min minimum %v below LP average minimum %v", min.Min(), avg.Min())
	}
}

func TestCommodityValidation(t *testing.T) {
	g := line(3, 1)
	bad := [][]Commodity{
		{{Src: 0, Dst: 0, Demand: 1}},
		{{Src: 0, Dst: 9, Demand: 1}},
		{{Src: 0, Dst: 1, Demand: 0}},
		{{Src: -1, Dst: 1, Demand: 1}},
	}
	for _, comms := range bad {
		if _, err := MaxConcurrent(g, comms, Options{}); err == nil {
			t.Errorf("commodities %v accepted", comms)
		}
		if _, err := MaxTotal(g, comms, Options{}); err == nil {
			t.Errorf("commodities %v accepted by MaxTotal", comms)
		}
	}
}

func TestDisconnectedCommodity(t *testing.T) {
	g := graph.New(4)
	g.AddLink(0, 1, 1)
	g.AddLink(2, 3, 1)
	if _, err := MaxConcurrent(g, []Commodity{{Src: 0, Dst: 3, Demand: 1}}, Options{}); err == nil {
		t.Fatal("disconnected commodity accepted by MaxConcurrent")
	}
	// MaxTotal tolerates it: the flow simply gets zero.
	res, err := MaxTotal(g, []Commodity{
		{Src: 0, Dst: 1, Demand: 1},
		{Src: 0, Dst: 3, Demand: 1},
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerFlow[1] != 0 {
		t.Fatalf("disconnected flow got %v", res.PerFlow[1])
	}
	if res.PerFlow[0] <= 0 {
		t.Fatal("connected flow got nothing")
	}
}

// Property: MaxConcurrent's reported allocation is always feasible — we
// verify by checking Lambda and PerFlow are finite, nonnegative, and the
// per-flow minimum matches Lambda within tolerance.
func TestMaxConcurrentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		n := 4 + next(5)
		g := graph.New(n)
		for i := 1; i < n; i++ {
			g.AddLink(i, next(i), 1+float64(next(10)))
		}
		for e := 0; e < n; e++ {
			a, b := next(n), next(n)
			if a != b {
				g.AddLink(a, b, 1+float64(next(10)))
			}
		}
		var comms []Commodity
		for c := 0; c < 1+next(4); c++ {
			a, b := next(n), next(n)
			if a == b {
				b = (b + 1) % n
			}
			comms = append(comms, Commodity{Src: a, Dst: b, Demand: 1})
		}
		res, err := MaxConcurrent(g, comms, Options{Epsilon: 0.15})
		if err != nil {
			return false
		}
		if math.IsNaN(res.Lambda) || res.Lambda <= 0 {
			return false
		}
		for _, f := range res.PerFlow {
			if f < res.Lambda-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
