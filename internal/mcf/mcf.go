// Package mcf approximates the two multi-commodity-flow linear programs the
// paper uses as throughput baselines (§5.1):
//
//   - "LP minimum": maximize the minimum flow throughput — the maximum
//     concurrent flow LP;
//   - "LP average": maximize the total (equivalently average) flow
//     throughput — the maximum multicommodity flow LP.
//
// Both are solved with the Garg–Könemann fully polynomial approximation
// scheme in Fleischer's phase formulation, followed by an exact feasibility
// rescale so the reported allocation never violates a capacity. The
// approximation replaces the paper's black-box LP solver; with the default
// ε the relative ordering of topologies — what the evaluation compares —
// is preserved.
//
// Links are full duplex: every undirected graph link becomes two directed
// arcs, each with the link's full capacity, matching real data center
// hardware and the paper's LP formulation.
package mcf

import (
	"container/heap"
	"fmt"
	"math"
	"time"

	"flattree/internal/graph"
	"flattree/internal/parallel"
	"flattree/internal/telemetry"
)

// Commodity is one source-destination demand. Demand is in the same units
// as link capacity; the evaluation uses unit demands.
type Commodity struct {
	Src, Dst int
	Demand   float64
}

// Result reports the approximate LP solution.
type Result struct {
	// Lambda is the concurrent-flow fraction: every commodity j is
	// guaranteed PerFlow[j] >= Lambda * Demand[j] for MaxConcurrent.
	Lambda float64
	// Total is the summed throughput of all commodities.
	Total float64
	// PerFlow is each commodity's throughput.
	PerFlow []float64
}

// Avg returns the mean per-flow throughput.
func (r Result) Avg() float64 {
	if len(r.PerFlow) == 0 {
		return 0
	}
	return r.Total / float64(len(r.PerFlow))
}

// Min returns the minimum per-flow throughput.
func (r Result) Min() float64 {
	if len(r.PerFlow) == 0 {
		return 0
	}
	min := math.Inf(1)
	for _, f := range r.PerFlow {
		if f < min {
			min = f
		}
	}
	return min
}

// Options tune the approximation.
type Options struct {
	// Epsilon is the FPTAS accuracy parameter; 0 defaults to 0.1.
	Epsilon float64
	// MaxPhases caps the number of phases as a safety valve; 0 means no
	// cap beyond the scheme's natural termination.
	MaxPhases int
}

func (o *Options) setDefaults() {
	if o.Epsilon <= 0 {
		o.Epsilon = 0.1
	}
}

// solver holds the directed-arc expansion and the GK state. Arc 2*l is the
// A->B direction of link l; arc 2*l+1 is B->A.
type solver struct {
	nodes int
	// out[u] lists (arc, to) pairs leaving u.
	outArc [][]int32
	outTo  [][]int32
	cap    []float64
	tails  []int32 // tails[a] = tail node of arc a
	comms  []Commodity
	eps    float64

	length  []float64 // per-arc dual length
	flow    []float64 // per-arc accumulated (unscaled) flow
	per     []float64 // per-commodity accumulated (unscaled) flow
	dualVal float64   // running D(l) = sum c_a * l_a

	// Reusable Dijkstra buffers.
	dist    []float64
	prevArc []int32
	done    []bool
	pq      arcHeap
}

func newSolver(g *graph.Graph, comms []Commodity, eps float64) *solver {
	n := g.NumNodes()
	m := 2 * g.NumLinks()
	s := &solver{
		nodes:   n,
		outArc:  make([][]int32, n),
		outTo:   make([][]int32, n),
		cap:     make([]float64, m),
		tails:   make([]int32, m),
		comms:   comms,
		eps:     eps,
		length:  make([]float64, m),
		flow:    make([]float64, m),
		per:     make([]float64, len(comms)),
		dist:    make([]float64, n),
		prevArc: make([]int32, n),
		done:    make([]bool, n),
	}
	for _, l := range g.Links() {
		s.cap[2*l.ID] = l.Capacity
		s.cap[2*l.ID+1] = l.Capacity
		s.tails[2*l.ID] = int32(l.A)
		s.tails[2*l.ID+1] = int32(l.B)
		s.outArc[l.A] = append(s.outArc[l.A], int32(2*l.ID))
		s.outTo[l.A] = append(s.outTo[l.A], int32(l.B))
		s.outArc[l.B] = append(s.outArc[l.B], int32(2*l.ID+1))
		s.outTo[l.B] = append(s.outTo[l.B], int32(l.A))
	}
	delta := s.delta()
	for a := range s.length {
		s.length[a] = delta / s.cap[a]
		s.dualVal += s.cap[a] * s.length[a]
	}
	return s
}

// delta is the standard GK starting length scale: (m/(1-ε))^(-1/ε) where m
// is the number of arcs.
func (s *solver) delta() float64 {
	m := float64(len(s.cap))
	return math.Pow(m/(1-s.eps), -1/s.eps)
}

// dual returns D(l) = Σ c_a l_a, the termination witness, maintained
// incrementally by route.
func (s *solver) dual() float64 { return s.dualVal }

// shortestPath runs Dijkstra under the current length function and returns
// the arc list of a shortest src->dst path and its length.
func (s *solver) shortestPath(src, dst int) ([]int32, float64, bool) {
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.prevArc[i] = -1
		s.done[i] = false
	}
	s.dist[src] = 0
	s.pq = s.pq[:0]
	heap.Push(&s.pq, arcItem{node: int32(src), dist: 0})
	for s.pq.Len() > 0 {
		it := heap.Pop(&s.pq).(arcItem)
		u := int(it.node)
		if s.done[u] {
			continue
		}
		s.done[u] = true
		if u == dst {
			break
		}
		arcs := s.outArc[u]
		tos := s.outTo[u]
		du := s.dist[u]
		for i, a := range arcs {
			v := tos[i]
			if s.done[v] {
				continue
			}
			nd := du + s.length[a]
			if nd < s.dist[v] {
				s.dist[v] = nd
				s.prevArc[v] = a
				heap.Push(&s.pq, arcItem{node: v, dist: nd})
			}
		}
	}
	if math.IsInf(s.dist[dst], 1) {
		return nil, 0, false
	}
	var arcs []int32
	for at := dst; at != src; {
		a := s.prevArc[at]
		arcs = append(arcs, a)
		at = int(s.tails[a])
	}
	// Reverse to src->dst order.
	for i, j := 0, len(arcs)-1; i < j; i, j = i+1, j-1 {
		arcs[i], arcs[j] = arcs[j], arcs[i]
	}
	return arcs, s.dist[dst], true
}

// sssp runs full Dijkstra from src, filling dist/prevArc for every node.
func (s *solver) sssp(src int) {
	for i := range s.dist {
		s.dist[i] = math.Inf(1)
		s.prevArc[i] = -1
		s.done[i] = false
	}
	s.dist[src] = 0
	s.pq = s.pq[:0]
	heap.Push(&s.pq, arcItem{node: int32(src), dist: 0})
	for s.pq.Len() > 0 {
		it := heap.Pop(&s.pq).(arcItem)
		u := int(it.node)
		if s.done[u] {
			continue
		}
		s.done[u] = true
		arcs := s.outArc[u]
		tos := s.outTo[u]
		du := s.dist[u]
		for i, a := range arcs {
			v := tos[i]
			if s.done[v] {
				continue
			}
			nd := du + s.length[a]
			if nd < s.dist[v] {
				s.dist[v] = nd
				s.prevArc[v] = a
				heap.Push(&s.pq, arcItem{node: v, dist: nd})
			}
		}
	}
}

// traceArcs reconstructs the src->dst arc path after sssp.
func (s *solver) traceArcs(src, dst int) []int32 {
	var arcs []int32
	for at := dst; at != src; {
		a := s.prevArc[at]
		arcs = append(arcs, a)
		at = int(s.tails[a])
	}
	for i, j := 0, len(arcs)-1; i < j; i, j = i+1, j-1 {
		arcs[i], arcs[j] = arcs[j], arcs[i]
	}
	return arcs
}

// route sends u units along the arc path, updating flows and lengths.
func (s *solver) route(j int, arcs []int32, u float64) {
	s.per[j] += u
	for _, a := range arcs {
		s.flow[a] += u
		old := s.length[a]
		s.length[a] = old * (1 + s.eps*u/s.cap[a])
		s.dualVal += s.cap[a] * (s.length[a] - old)
	}
}

// bottleneck returns the minimum capacity along the arc path.
func (s *solver) bottleneck(arcs []int32) float64 {
	u := math.Inf(1)
	for _, a := range arcs {
		if s.cap[a] < u {
			u = s.cap[a]
		}
	}
	return u
}

// rescale converts the accumulated (capacity-violating) flow into an
// exactly feasible allocation by dividing every flow by the maximum arc
// overuse factor.
func (s *solver) rescale() Result {
	worst := 1.0
	for a, c := range s.cap {
		if u := s.flow[a] / c; u > worst {
			worst = u
		}
	}
	res := Result{PerFlow: make([]float64, len(s.comms))}
	res.Lambda = math.Inf(1)
	for j := range s.comms {
		f := s.per[j] / worst
		res.PerFlow[j] = f
		res.Total += f
		if lam := f / s.comms[j].Demand; lam < res.Lambda {
			res.Lambda = lam
		}
	}
	if len(s.comms) == 0 {
		res.Lambda = 0
	}
	return res
}

// checkConnectivity verifies every commodity's destination is reachable
// from its source before the solve starts. The per-source searches are
// independent and run on the shared bounded pool; the reported error is
// always the lowest-index disconnected commodity, so the error is
// deterministic for any worker count.
func (s *solver) checkConnectivity(comms []Commodity, srcs []int, bySrc map[int][]int) error {
	reach, _ := parallel.Map(parallel.Default(), len(srcs), func(i int) ([]bool, error) {
		// Lengths are uniformly positive, so plain BFS over the arc
		// adjacency decides reachability; each task owns its visited set.
		visited := make([]bool, s.nodes)
		visited[srcs[i]] = true
		queue := []int{srcs[i]}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for _, v := range s.outTo[u] {
				if !visited[v] {
					visited[v] = true
					queue = append(queue, int(v))
				}
			}
		}
		return visited, nil
	})
	telemetry.C("mcf_connectivity_checks_total").Add(int64(len(srcs)))
	for i, src := range srcs {
		for _, j := range bySrc[src] {
			if !reach[i][comms[j].Dst] {
				return fmt.Errorf("mcf: commodity %d (%d->%d) disconnected", j, comms[j].Src, comms[j].Dst)
			}
		}
	}
	return nil
}

// parallelTraceThreshold is the commodity count per source above which the
// post-Dijkstra path traces fan out on the pool. Tracing reads only the
// frozen shortest-path tree (prevArc/tails), so parallel traces are
// byte-identical to serial ones; below the threshold, goroutine handoff
// costs more than the traces themselves.
const parallelTraceThreshold = 16

// traceAll reconstructs the arc path for every commodity of one source
// from the current shortest-path tree, fanning out on the pool when the
// commodity count justifies it. Unreachable destinations (impossible
// after the connectivity prepass, but kept defensive) yield nil; the
// caller's reachability check reports them.
func (s *solver) traceAll(src int, js []int) [][]int32 {
	trace := func(j int) []int32 {
		if math.IsInf(s.dist[s.comms[j].Dst], 1) {
			return nil
		}
		return s.traceArcs(src, s.comms[j].Dst)
	}
	if len(js) < parallelTraceThreshold {
		out := make([][]int32, len(js))
		for i, j := range js {
			out[i] = trace(j)
		}
		return out
	}
	out, _ := parallel.Map(parallel.Default(), len(js), func(i int) ([]int32, error) {
		return trace(js[i]), nil
	})
	return out
}

// MaxConcurrent approximates the maximum concurrent flow ("LP minimum"):
// the largest λ such that every commodity can ship λ·demand concurrently.
// Every commodity's reported throughput is at least Lambda·Demand.
//
// The solve is deterministic: phases, sources, and commodities are
// processed in fixed order, and the only parallel pieces (the
// connectivity prepass and per-source path traces) are read-only fan-outs
// collected by index, so the result is bit-identical for any pool size.
func MaxConcurrent(g *graph.Graph, comms []Commodity, opt Options) (Result, error) {
	opt.setDefaults()
	if err := checkCommodities(g, comms); err != nil {
		return Result{}, err
	}
	start := time.Now()
	dijkstras := int64(0)
	s := newSolver(g, comms, opt.Epsilon)
	// Group commodities by source so one shortest-path tree per source
	// serves every commodity of that source within a phase. Routing a
	// unit of demand inflates the lengths on its path by at most a
	// (1+ε/c_min) factor, so tree paths stay within Fleischer's per-phase
	// length tolerance; the final rescale keeps the result exactly
	// feasible regardless.
	bySrc := make(map[int][]int)
	var srcs []int
	for j, c := range comms {
		if _, seen := bySrc[c.Src]; !seen {
			srcs = append(srcs, c.Src)
		}
		bySrc[c.Src] = append(bySrc[c.Src], j)
	}
	if err := s.checkConnectivity(comms, srcs, bySrc); err != nil {
		return Result{}, err
	}
	phases := 0
	for s.dual() < 1 {
		for _, src := range srcs {
			s.sssp(src)
			dijkstras++
			js := bySrc[src]
			arcsFor := s.traceAll(src, js)
			for ji, j := range js {
				c := comms[j]
				if math.IsInf(s.dist[c.Dst], 1) {
					return Result{}, fmt.Errorf("mcf: commodity %d (%d->%d) disconnected", j, c.Src, c.Dst)
				}
				arcs := arcsFor[ji]
				remaining := c.Demand
				for remaining > 1e-15 {
					u := remaining
					if b := s.bottleneck(arcs); b < u {
						u = b
					}
					s.route(j, arcs, u)
					remaining -= u
					if remaining > 1e-15 {
						// Rare: demand above the path bottleneck.
						// Recompute a fresh path for the remainder.
						var ok bool
						dijkstras++
						arcs, _, ok = s.shortestPath(c.Src, c.Dst)
						if !ok {
							return Result{}, fmt.Errorf("mcf: commodity %d (%d->%d) disconnected", j, c.Src, c.Dst)
						}
					}
				}
			}
			if s.dual() >= 1 {
				break
			}
		}
		phases++
		if opt.MaxPhases > 0 && phases >= opt.MaxPhases {
			break
		}
	}
	recordSolve("concurrent", phases, dijkstras, time.Since(start))
	return s.rescale(), nil
}

// recordSolve flushes one LP solve's telemetry: GK phase and Dijkstra
// totals plus wall time, labeled by objective.
func recordSolve(objective string, phases int, dijkstras int64, wall time.Duration) {
	telemetry.C("mcf_solves_total", "objective", objective).Inc()
	telemetry.C("mcf_phases_total", "objective", objective).Add(int64(phases))
	telemetry.C("mcf_dijkstras_total", "objective", objective).Add(dijkstras)
	telemetry.H("mcf_solve_seconds", "objective", objective).Observe(wall.Seconds())
}

// MaxTotal approximates the maximum total multicommodity flow ("LP
// average"): throughput is pushed wherever it is cheapest, so some flows
// may receive zero while others saturate — exactly the behaviour the paper
// notes for LP average in Figure 7.
func MaxTotal(g *graph.Graph, comms []Commodity, opt Options) (Result, error) {
	opt.setDefaults()
	if err := checkCommodities(g, comms); err != nil {
		return Result{}, err
	}
	start := time.Now()
	phases := 0
	dijkstras := int64(0)
	s := newSolver(g, comms, opt.Epsilon)
	// Fleischer's threshold scheme: sweep commodities, routing each while
	// its shortest path stays below the rising threshold α(1+ε). Arc
	// lengths only grow, so a commodity's last observed distance is a
	// permanent lower bound — commodities whose bound already exceeds the
	// threshold are skipped without a Dijkstra.
	lastLen := make([]float64, len(comms))
	reachable := make([]bool, len(comms))
	for i := range reachable {
		reachable[i] = true
	}
	for alpha := s.delta(); alpha < 1; alpha *= 1 + opt.Epsilon {
		phases++
		limit := alpha * (1 + opt.Epsilon)
		if limit > 1 {
			limit = 1
		}
		for j, c := range comms {
			if !reachable[j] || lastLen[j] >= limit {
				continue
			}
			for {
				dijkstras++
				arcs, d, ok := s.shortestPath(c.Src, c.Dst)
				if !ok {
					reachable[j] = false
					break
				}
				lastLen[j] = d
				if d >= limit {
					break
				}
				s.route(j, arcs, s.bottleneck(arcs))
			}
		}
	}
	recordSolve("total", phases, dijkstras, time.Since(start))
	return s.rescale(), nil
}

func checkCommodities(g *graph.Graph, comms []Commodity) error {
	for j, c := range comms {
		if c.Src < 0 || c.Src >= g.NumNodes() || c.Dst < 0 || c.Dst >= g.NumNodes() {
			return fmt.Errorf("mcf: commodity %d endpoints out of range", j)
		}
		if c.Src == c.Dst {
			return fmt.Errorf("mcf: commodity %d is a self-loop", j)
		}
		if c.Demand <= 0 {
			return fmt.Errorf("mcf: commodity %d has nonpositive demand", j)
		}
	}
	return nil
}

type arcItem struct {
	node int32
	dist float64
}

type arcHeap []arcItem

func (h arcHeap) Len() int            { return len(h) }
func (h arcHeap) Less(i, j int) bool  { return h[i].dist < h[j].dist }
func (h arcHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *arcHeap) Push(x interface{}) { *h = append(*h, x.(arcItem)) }
func (h *arcHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
