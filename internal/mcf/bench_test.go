package mcf

import (
	"testing"

	"flattree/internal/graph"
)

// Benchmark for the LP approximation: a mini-Clos-shaped fabric with a
// permutation commodity set.

func BenchmarkMaxConcurrentPermutation(b *testing.B) {
	g := graph.New(48)
	for pod := 0; pod < 4; pod++ {
		for e := 0; e < 4; e++ {
			for a := 0; a < 4; a++ {
				g.AddLink(pod*8+e, pod*8+4+a, 10)
			}
		}
	}
	for c := 0; c < 16; c++ {
		for pod := 0; pod < 4; pod++ {
			g.AddLink(pod*8+4+(c%4), 32+c, 10)
		}
	}
	var comms []Commodity
	for i := 0; i < 16; i++ {
		comms = append(comms, Commodity{Src: (i * 8) % 32, Dst: (i*8 + 17) % 32, Demand: 1})
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MaxConcurrent(g, comms, Options{Epsilon: 0.3}); err != nil {
			b.Fatal(err)
		}
	}
}
