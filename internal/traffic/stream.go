package traffic

import (
	"fmt"
	"math"
	"math/rand"
)

// Streaming trace generation: the 10M+ flow runs of the fbmix_large
// experiment pull flows one at a time instead of materializing the whole
// trace (a 10M-flow []Flow is ~400 MB before the simulator sees it).
// Each stream consumes its seeded RNG in exactly the order the batch
// generator does, so Generate(spec) and draining NewStream(spec) produce
// identical flows — a property the tests pin.

// Stream draws a TraceSpec's flows one at a time in arrival order.
type Stream struct {
	spec         TraceSpec
	rng          *rand.Rand
	perPod, pods int
	rate         float64
	t            float64
	i            int
}

// NewStream validates the spec and positions the stream at the first
// flow.
func NewStream(s TraceSpec) (*Stream, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	perPod := s.ServersPerRack * s.RacksPerPod
	return &Stream{
		spec:   s,
		rng:    rand.New(rand.NewSource(s.Seed)),
		perPod: perPod,
		pods:   s.Servers / perPod,
		rate:   float64(s.Flows) / s.Duration,
	}, nil
}

// Next returns the next flow, or ok=false when the trace is exhausted.
// Arrivals are nondecreasing.
func (st *Stream) Next() (Flow, bool) {
	if st.i >= st.spec.Flows {
		return Flow{}, false
	}
	st.i++
	st.t += st.rng.ExpFloat64() / st.rate
	src := st.rng.Intn(st.spec.Servers)
	dst := drawDst(st.rng, st.spec, src, st.perPod, st.pods)
	size := st.spec.SizeMedianGbit * math.Exp(st.spec.SizeSigma*st.rng.NormFloat64())
	return Flow{Src: src, Dst: dst, Bits: size, Arrival: st.t}, true
}

// Len returns the total number of flows the stream will produce.
func (st *Stream) Len() int { return st.spec.Flows }

// Hadoop1Stream draws the Hadoop-1 coflow expansion one flow at a time;
// draining it equals Hadoop1Trace exactly.
type Hadoop1Stream struct {
	rng                   *rand.Rand
	serversPerRack, racks int
	coflows               int
	baseGbit, rate        float64
	t                     float64
	c                     int
	buf                   [hadoop1Expansion]Flow
	bufN                  int
}

const (
	hadoop1Expansion   = 8
	hadoop1VolumeScale = 10
)

// NewHadoop1Stream mirrors Hadoop1Trace's parameters and panics on the
// same malformed shapes.
func NewHadoop1Stream(servers, serversPerRack, coflows int, baseGbit, duration float64, seed int64) *Hadoop1Stream {
	if serversPerRack < 1 || servers%serversPerRack != 0 {
		panic(fmt.Sprintf("traffic: hadoop-1 with servers=%d per rack=%d", servers, serversPerRack))
	}
	racks := servers / serversPerRack
	if racks < 2 {
		panic("traffic: hadoop-1 needs at least 2 racks")
	}
	return &Hadoop1Stream{
		rng:            rand.New(rand.NewSource(seed)),
		serversPerRack: serversPerRack,
		racks:          racks,
		coflows:        coflows,
		baseGbit:       baseGbit,
		rate:           float64(coflows) / duration,
	}
}

// Next returns the next server flow, or ok=false after the last coflow's
// expansion.
func (h *Hadoop1Stream) Next() (Flow, bool) {
	if h.bufN == 0 {
		if h.c >= h.coflows {
			return Flow{}, false
		}
		h.c++
		h.t += h.rng.ExpFloat64() / h.rate
		srcRack := h.rng.Intn(h.racks)
		dstRack := h.rng.Intn(h.racks - 1)
		if dstRack >= srcRack {
			dstRack++
		}
		// Heavy-tailed rack-to-rack volume: exponential mixture.
		vol := h.baseGbit * (0.5 + h.rng.ExpFloat64())
		for f := 0; f < hadoop1Expansion; f++ {
			src := srcRack*h.serversPerRack + h.rng.Intn(h.serversPerRack)
			dst := dstRack*h.serversPerRack + h.rng.Intn(h.serversPerRack)
			h.buf[f] = Flow{
				Src:     src,
				Dst:     dst,
				Bits:    vol * hadoop1VolumeScale / hadoop1Expansion,
				Arrival: h.t,
			}
		}
		h.bufN = hadoop1Expansion
	}
	f := h.buf[hadoop1Expansion-h.bufN]
	h.bufN--
	return f, true
}

// Len returns the total number of flows the stream will produce.
func (h *Hadoop1Stream) Len() int { return h.coflows * hadoop1Expansion }
