package traffic

import (
	"encoding/json"
	"fmt"
	"io"
)

// Trace persistence: flows serialize to JSON lines so external tools (or
// real captured traces converted offline) can be replayed through the
// simulators.

// SaveFlows writes flows as a JSON array.
func SaveFlows(w io.Writer, flows []Flow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(flows)
}

// LoadFlows reads a JSON array of flows and validates it against the
// server count.
func LoadFlows(r io.Reader, servers int) ([]Flow, error) {
	var flows []Flow
	if err := json.NewDecoder(r).Decode(&flows); err != nil {
		return nil, fmt.Errorf("traffic: decoding flows: %w", err)
	}
	last := 0.0
	for i, f := range flows {
		if f.Src < 0 || f.Src >= servers || f.Dst < 0 || f.Dst >= servers {
			return nil, fmt.Errorf("traffic: flow %d endpoints (%d, %d) outside %d servers", i, f.Src, f.Dst, servers)
		}
		if f.Src == f.Dst {
			return nil, fmt.Errorf("traffic: flow %d is a self-flow", i)
		}
		if f.Bits <= 0 {
			return nil, fmt.Errorf("traffic: flow %d has size %v", i, f.Bits)
		}
		if f.Arrival < last {
			return nil, fmt.Errorf("traffic: flow %d arrivals not sorted", i)
		}
		last = f.Arrival
	}
	return flows, nil
}
