package traffic

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPermutationIsDerangement(t *testing.T) {
	pairs := Permutation(64, 1)
	if len(pairs) != 64 {
		t.Fatalf("pairs = %d, want 64", len(pairs))
	}
	seenDst := map[int]bool{}
	for _, p := range pairs {
		if p.Src == p.Dst {
			t.Fatalf("fixed point at %d", p.Src)
		}
		if seenDst[p.Dst] {
			t.Fatalf("destination %d reused", p.Dst)
		}
		seenDst[p.Dst] = true
	}
}

func TestPermutationDeterministic(t *testing.T) {
	a := Permutation(32, 9)
	b := Permutation(32, 9)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different permutations")
		}
	}
	c := Permutation(32, 10)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical permutations")
	}
}

func TestPodStride(t *testing.T) {
	pairs := PodStride(24, 6)
	for i, p := range pairs {
		if p.Src != i {
			t.Fatalf("src %d, want %d", p.Src, i)
		}
		wantPod := (i/6 + 1) % 4
		if p.Dst/6 != wantPod {
			t.Fatalf("server %d: dst pod %d, want %d", i, p.Dst/6, wantPod)
		}
		if p.Dst%6 != i%6 {
			t.Fatalf("server %d: not the counterpart (%d)", i, p.Dst)
		}
	}
}

func TestHotSpot(t *testing.T) {
	pairs := HotSpot(250, 100)
	// Two full clusters of 100; 50 idle servers.
	if len(pairs) != 2*99 {
		t.Fatalf("pairs = %d, want 198", len(pairs))
	}
	for _, p := range pairs {
		if p.Src != 0 && p.Src != 100 {
			t.Fatalf("broadcast source %d unexpected", p.Src)
		}
		if p.Src/100 != p.Dst/100 {
			t.Fatal("broadcast escaped its cluster")
		}
	}
}

func TestClusteredAllToAll(t *testing.T) {
	pairs := ClusteredAllToAll(16, 4)
	if len(pairs) != 4*4*3 {
		t.Fatalf("pairs = %d, want 48", len(pairs))
	}
	for _, p := range pairs {
		if p.Src/4 != p.Dst/4 || p.Src == p.Dst {
			t.Fatalf("bad pair %v", p)
		}
	}
}

func TestSyntheticDispatch(t *testing.T) {
	for _, pat := range []SyntheticPattern{PatternPermutation, PatternPodStride, PatternHotSpot, PatternManyToMany} {
		pairs := Synthetic(pat, 40, 10, 3)
		if len(pairs) == 0 {
			t.Fatalf("%v produced no pairs", pat)
		}
		for _, p := range pairs {
			if p.Src < 0 || p.Src >= 40 || p.Dst < 0 || p.Dst >= 40 || p.Src == p.Dst {
				t.Fatalf("%v: bad pair %v", pat, p)
			}
		}
	}
	if PatternPermutation.String() != "traffic-1" || PatternManyToMany.String() != "traffic-4" {
		t.Fatal("pattern names wrong")
	}
}

func TestGenerateLocalityMix(t *testing.T) {
	spec := TraceSpec{
		Name: "mix", Servers: 512, ServersPerRack: 8, RacksPerPod: 8,
		FracIntraRack: 0.6, FracIntraPod: 0.3,
		Flows: 20000, Duration: 10, SizeMedianGbit: 1e6, SizeSigma: 1.0, Seed: 4,
	}
	flows, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(flows) != 20000 {
		t.Fatalf("flows = %d", len(flows))
	}
	counts := map[Locality]int{}
	for _, f := range flows {
		counts[spec.LocalityOf(Pair{f.Src, f.Dst})]++
		if f.Src == f.Dst {
			t.Fatal("self flow")
		}
	}
	tot := float64(len(flows))
	if r := float64(counts[IntraRack]) / tot; math.Abs(r-0.6) > 0.02 {
		t.Fatalf("intra-rack fraction %v, want ~0.6", r)
	}
	if r := float64(counts[IntraPod]) / tot; math.Abs(r-0.3) > 0.02 {
		t.Fatalf("intra-pod fraction %v, want ~0.3", r)
	}
}

func TestGenerateArrivalsMonotone(t *testing.T) {
	spec := TraceSpec{
		Name: "arr", Servers: 64, ServersPerRack: 4, RacksPerPod: 4,
		FracIntraRack: 0.2, FracIntraPod: 0.2,
		Flows: 500, Duration: 5, SizeMedianGbit: 1e6, SizeSigma: 1.5, Seed: 7,
	}
	flows, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for _, f := range flows {
		if f.Arrival < last {
			t.Fatal("arrivals not monotone")
		}
		last = f.Arrival
		if f.Bits <= 0 {
			t.Fatal("nonpositive flow size")
		}
	}
}

func TestTraceSpecValidation(t *testing.T) {
	good := TraceSpec{Name: "g", Servers: 64, ServersPerRack: 4, RacksPerPod: 4,
		FracIntraRack: 0.5, FracIntraPod: 0.3, Flows: 10, Duration: 1,
		SizeMedianGbit: 1, SizeSigma: 1}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []TraceSpec{
		{Name: "b1", Servers: 1, ServersPerRack: 1, RacksPerPod: 1, Flows: 1, Duration: 1, SizeMedianGbit: 1},
		{Name: "b2", Servers: 63, ServersPerRack: 4, RacksPerPod: 4, Flows: 1, Duration: 1, SizeMedianGbit: 1},
		{Name: "b3", Servers: 64, ServersPerRack: 4, RacksPerPod: 4, FracIntraRack: 0.8, FracIntraPod: 0.4, Flows: 1, Duration: 1, SizeMedianGbit: 1},
		{Name: "b4", Servers: 64, ServersPerRack: 4, RacksPerPod: 4, Flows: 0, Duration: 1, SizeMedianGbit: 1},
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %s accepted", s.Name)
		}
	}
}

func TestFacebookSpecs(t *testing.T) {
	for _, name := range []string{"hadoop-2", "web", "cache"} {
		spec, err := FacebookSpec(name, 512, 8, 8, 5000, 11)
		if err != nil {
			t.Fatal(err)
		}
		flows, err := Generate(spec)
		if err != nil {
			t.Fatal(err)
		}
		vol := VolumeByLocality(spec, flows)
		total := vol[IntraRack] + vol[IntraPod] + vol[InterPod]
		gotRack := vol[IntraRack] / total
		gotPod := vol[IntraPod] / total
		// Volume fractions track the flow-count fractions loosely (sizes
		// are iid across classes) — allow 10 points.
		if math.Abs(gotRack-spec.FracIntraRack) > 0.10 {
			t.Errorf("%s: intra-rack volume %v, want ~%v", name, gotRack, spec.FracIntraRack)
		}
		if math.Abs(gotPod-spec.FracIntraPod) > 0.10 {
			t.Errorf("%s: intra-pod volume %v, want ~%v", name, gotPod, spec.FracIntraPod)
		}
	}
	if _, err := FacebookSpec("nope", 512, 8, 8, 10, 1); err == nil {
		t.Fatal("unknown workload accepted")
	}
}

func TestHadoop1Trace(t *testing.T) {
	flows := Hadoop1Trace(96, 8, 50, 1e6, 10, 13)
	if len(flows) != 50*8 {
		t.Fatalf("flows = %d, want 400 (8 per coflow)", len(flows))
	}
	for i := 0; i < len(flows); i += 8 {
		group := flows[i : i+8]
		srcRack := group[0].Src / 8
		dstRack := group[0].Dst / 8
		if srcRack == dstRack {
			t.Fatal("hadoop-1 coflow stayed intra-rack")
		}
		for _, f := range group {
			if f.Src/8 != srcRack || f.Dst/8 != dstRack {
				t.Fatal("coflow expansion escaped its racks")
			}
			if f.Bits != group[0].Bits {
				t.Fatal("coflow flows unequal after 10x/8 split")
			}
		}
	}
}

// Property: generated destinations always differ from sources and stay in
// range, for arbitrary locality mixes.
func TestGenerateProperty(t *testing.T) {
	f := func(fr, fp uint8, seed int64) bool {
		fracRack := float64(fr%100) / 100 * 0.7
		fracPod := float64(fp%100) / 100 * (1 - fracRack)
		spec := TraceSpec{
			Name: "p", Servers: 128, ServersPerRack: 4, RacksPerPod: 8,
			FracIntraRack: fracRack, FracIntraPod: fracPod,
			Flows: 200, Duration: 1, SizeMedianGbit: 1e5, SizeSigma: 1, Seed: seed,
		}
		flows, err := Generate(spec)
		if err != nil {
			return false
		}
		for _, fl := range flows {
			if fl.Src == fl.Dst || fl.Dst < 0 || fl.Dst >= 128 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestFlowPersistenceRoundTrip(t *testing.T) {
	spec := TraceSpec{
		Name: "rt", Servers: 64, ServersPerRack: 4, RacksPerPod: 4,
		FracIntraRack: 0.3, FracIntraPod: 0.3,
		Flows: 200, Duration: 1, SizeMedianGbit: 0.01, SizeSigma: 1, Seed: 5,
	}
	flows, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := SaveFlows(&buf, flows); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFlows(&buf, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(flows) {
		t.Fatalf("loaded %d flows, want %d", len(back), len(flows))
	}
	for i := range flows {
		if back[i] != flows[i] {
			t.Fatalf("flow %d changed: %+v vs %+v", i, back[i], flows[i])
		}
	}
}

func TestLoadFlowsValidation(t *testing.T) {
	cases := []string{
		`[{"Src":0,"Dst":99,"Bits":1,"Arrival":0}]`,
		`[{"Src":1,"Dst":1,"Bits":1,"Arrival":0}]`,
		`[{"Src":0,"Dst":1,"Bits":0,"Arrival":0}]`,
		`[{"Src":0,"Dst":1,"Bits":1,"Arrival":5},{"Src":0,"Dst":1,"Bits":1,"Arrival":1}]`,
		`{bad json`,
	}
	for _, c := range cases {
		if _, err := LoadFlows(strings.NewReader(c), 10); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}
