package traffic

import (
	"fmt"
)

// The four Facebook data center workloads of §5.2, reproduced from the
// published statistics the paper itself used:
//
//	Hadoop-1: Coflow-benchmark shuffle trace — no locality; one-to-many,
//	          many-to-one and many-to-many traffic network-wide. The paper
//	          expands each rack-to-rack flow into 8 server flows at 10x
//	          volume; Hadoop1Trace does the same.
//	Hadoop-2: 75.7% intra-rack, almost all the rest intra-pod.
//	Web:      tiny intra-rack, ~77% intra-pod, rest inter-pod.
//	Cache:    almost zero intra-rack, ~88% intra-pod, rest inter-pod.

// FacebookSpec returns the TraceSpec for one of the named workloads on a
// network of the given shape. Scale sets the flow count; load and size
// parameters follow the measured heavy-tailed distributions in spirit.
func FacebookSpec(name string, servers, serversPerRack, racksPerPod, flows int, seed int64) (TraceSpec, error) {
	base := TraceSpec{
		Name:           name,
		Servers:        servers,
		ServersPerRack: serversPerRack,
		RacksPerPod:    racksPerPod,
		Flows:          flows,
		Duration:       1.0,
		Seed:           seed,
	}
	switch name {
	case "hadoop-2":
		base.FracIntraRack = 0.757
		base.FracIntraPod = 0.233 // "almost all the remaining traffic is intra-Pod"
		base.SizeMedianGbit = 200 * KB
		base.SizeSigma = 1.8
	case "web":
		base.FracIntraRack = 0.01 // "a tiny amount of intra-rack traffic"
		base.FracIntraPod = 0.77
		base.SizeMedianGbit = 50 * KB
		base.SizeSigma = 1.6
	case "cache":
		base.FracIntraRack = 0.0 // "almost zero intra-rack traffic"
		base.FracIntraPod = 0.88
		base.SizeMedianGbit = 500 * KB
		base.SizeSigma = 1.7
	default:
		return TraceSpec{}, fmt.Errorf("traffic: unknown Facebook workload %q", name)
	}
	return base, nil
}

// Hadoop1Trace reproduces the Hadoop-1 methodology: rack-level shuffle
// coflows with no locality. For each of coflows rack-to-rack transfers, 8
// server flows are created between servers under the source and destination
// racks, each carrying 10x the per-flow base volume (the paper's bandwidth
// adjustment from the 1 Gbps original fabric to 10 Gbps links).
func Hadoop1Trace(servers, serversPerRack, coflows int, baseGbit float64, duration float64, seed int64) []Flow {
	st := NewHadoop1Stream(servers, serversPerRack, coflows, baseGbit, duration, seed)
	flows := make([]Flow, 0, st.Len())
	for {
		f, ok := st.Next()
		if !ok {
			return flows
		}
		flows = append(flows, f)
	}
}

// VolumeByLocality sums trace volume per locality class; used to verify
// generated traces match the published mixes.
func VolumeByLocality(spec TraceSpec, flows []Flow) map[Locality]float64 {
	out := make(map[Locality]float64)
	for _, f := range flows {
		out[spec.LocalityOf(Pair{Src: f.Src, Dst: f.Dst})] += f.Bits
	}
	return out
}
