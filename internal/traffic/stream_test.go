package traffic

import (
	"testing"
)

// The streaming generators must replay the batch generators bit for bit:
// fbmix_large relies on NewStream/NewHadoop1Stream producing exactly the
// flows Generate/Hadoop1Trace would, just without the slice.

func TestStreamMatchesGenerate(t *testing.T) {
	spec, err := FacebookSpec("web", 128, 4, 4, 5000, 42)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Len() != len(batch) {
		t.Fatalf("stream Len %d, batch %d", st.Len(), len(batch))
	}
	for i := range batch {
		f, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended at flow %d of %d", i, len(batch))
		}
		if f != batch[i] {
			t.Fatalf("flow %d: stream %+v, batch %+v", i, f, batch[i])
		}
	}
	if f, ok := st.Next(); ok {
		t.Fatalf("stream overruns batch: extra flow %+v", f)
	}
}

func TestStreamRejectsBadSpec(t *testing.T) {
	if _, err := NewStream(TraceSpec{Name: "bad"}); err == nil {
		t.Fatal("invalid spec accepted")
	}
}

func TestHadoop1StreamMatchesTrace(t *testing.T) {
	const (
		servers, perRack = 96, 4
		coflows          = 700
		baseGbit         = 0.5
		duration         = 1.0
		seed             = 7
	)
	batch := Hadoop1Trace(servers, perRack, coflows, baseGbit, duration, seed)
	st := NewHadoop1Stream(servers, perRack, coflows, baseGbit, duration, seed)
	if st.Len() != len(batch) {
		t.Fatalf("stream Len %d, batch %d", st.Len(), len(batch))
	}
	for i := range batch {
		f, ok := st.Next()
		if !ok {
			t.Fatalf("stream ended at flow %d of %d", i, len(batch))
		}
		if f != batch[i] {
			t.Fatalf("flow %d: stream %+v, batch %+v", i, f, batch[i])
		}
	}
	if f, ok := st.Next(); ok {
		t.Fatalf("stream overruns batch: extra flow %+v", f)
	}
}

func TestStreamArrivalsNondecreasing(t *testing.T) {
	spec, err := FacebookSpec("cache", 64, 4, 4, 2000, 3)
	if err != nil {
		t.Fatal(err)
	}
	st, err := NewStream(spec)
	if err != nil {
		t.Fatal(err)
	}
	last := 0.0
	for {
		f, ok := st.Next()
		if !ok {
			break
		}
		if f.Arrival < last {
			t.Fatalf("arrival %v after %v", f.Arrival, last)
		}
		last = f.Arrival
	}
}
