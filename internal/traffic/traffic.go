// Package traffic generates the workloads of the paper's evaluation: the
// four synthetic patterns of §5.1 (permutation, pod stride, hot spot,
// many-to-many), the clustered all-to-all traffic of Table 1, and seeded
// trace generators reproducing the locality statistics of the four Facebook
// data centers in §5.2 (Hadoop-1, Hadoop-2, Web, Cache).
//
// All generators address servers by their stable global index (pod-major,
// then edge switch, then slot), which is invariant across flat-tree mode
// conversions.
package traffic

import (
	"fmt"
	"math/rand"
)

// Pair is one source-destination demand between two servers, identified by
// global server index.
type Pair struct{ Src, Dst int }

// Permutation returns the §5.1 "traffic-1" pattern: every server sends one
// flow to a unique other server, chosen as a uniform random derangement.
func Permutation(n int, seed int64) []Pair {
	rng := rand.New(rand.NewSource(seed))
	perm := derangement(n, rng)
	out := make([]Pair, n)
	for i, d := range perm {
		out[i] = Pair{Src: i, Dst: d}
	}
	return out
}

// derangement draws a uniform permutation with no fixed points by
// rejection sampling (expected ~e attempts).
func derangement(n int, rng *rand.Rand) []int {
	if n < 2 {
		panic(fmt.Sprintf("traffic: derangement needs n >= 2, got %d", n))
	}
	for {
		p := rng.Perm(n)
		ok := true
		for i, v := range p {
			if i == v {
				ok = false
				break
			}
		}
		if ok {
			return p
		}
	}
}

// PodStride returns the §5.1 "traffic-2" pattern: every server sends a
// single flow to its counterpart in the next pod, stressing the network
// core. serversPerPod must divide n.
func PodStride(n, serversPerPod int) []Pair {
	if serversPerPod <= 0 || n%serversPerPod != 0 {
		panic(fmt.Sprintf("traffic: pod stride with n=%d, serversPerPod=%d", n, serversPerPod))
	}
	out := make([]Pair, n)
	for i := 0; i < n; i++ {
		out[i] = Pair{Src: i, Dst: (i + serversPerPod) % n}
	}
	return out
}

// HotSpot returns the §5.1 "traffic-3" pattern: every clusterSize servers
// form a cluster in which the first server broadcasts to all the others
// (the multicast phase of machine-learning jobs). Trailing servers that do
// not fill a cluster are idle.
func HotSpot(n, clusterSize int) []Pair {
	var out []Pair
	for base := 0; base+clusterSize <= n; base += clusterSize {
		for i := 1; i < clusterSize; i++ {
			out = append(out, Pair{Src: base, Dst: base + i})
		}
	}
	return out
}

// ManyToMany returns the §5.1 "traffic-4" pattern: every clusterSize
// servers form a cluster with all-to-all traffic (the shuffle phase of
// MapReduce jobs).
func ManyToMany(n, clusterSize int) []Pair {
	return ClusteredAllToAll(n, clusterSize)
}

// ClusteredAllToAll packs consecutive servers into clusters of the given
// size and creates all-to-all traffic within each cluster (Table 1's
// intra-tenant workload). Trailing servers that do not fill a cluster are
// idle.
func ClusteredAllToAll(n, clusterSize int) []Pair {
	if clusterSize < 2 {
		panic(fmt.Sprintf("traffic: cluster size %d", clusterSize))
	}
	var out []Pair
	for base := 0; base+clusterSize <= n; base += clusterSize {
		for i := 0; i < clusterSize; i++ {
			for j := 0; j < clusterSize; j++ {
				if i != j {
					out = append(out, Pair{Src: base + i, Dst: base + j})
				}
			}
		}
	}
	return out
}

// SyntheticPattern names one of the §5.1 patterns.
type SyntheticPattern int

const (
	// PatternPermutation is traffic-1.
	PatternPermutation SyntheticPattern = iota + 1
	// PatternPodStride is traffic-2.
	PatternPodStride
	// PatternHotSpot is traffic-3 (100-server clusters).
	PatternHotSpot
	// PatternManyToMany is traffic-4 (20-server clusters).
	PatternManyToMany
)

func (p SyntheticPattern) String() string {
	switch p {
	case PatternPermutation:
		return "traffic-1"
	case PatternPodStride:
		return "traffic-2"
	case PatternHotSpot:
		return "traffic-3"
	case PatternManyToMany:
		return "traffic-4"
	}
	return fmt.Sprintf("SyntheticPattern(%d)", int(p))
}

// Synthetic materializes a named pattern for n servers. The cluster sizes
// follow the paper (100 for hot spot, 20 for many-to-many) but are clamped
// to n to keep reduced-scale runs meaningful.
func Synthetic(p SyntheticPattern, n, serversPerPod int, seed int64) []Pair {
	switch p {
	case PatternPermutation:
		return Permutation(n, seed)
	case PatternPodStride:
		return PodStride(n, serversPerPod)
	case PatternHotSpot:
		return HotSpot(n, clamp(100, n))
	case PatternManyToMany:
		return ManyToMany(n, clamp(20, n))
	}
	panic(fmt.Sprintf("traffic: unknown pattern %d", int(p)))
}

func clamp(v, max int) int {
	if v > max {
		return max
	}
	return v
}

// Flow sizes are expressed in Gbit throughout this repository, matching
// the Gbps link capacities (so size/rate is seconds). These constants
// convert common byte quantities to Gbit.
const (
	KB = 8.0 * 1024 / 1e9
	MB = 8.0 * 1024 * 1024 / 1e9
	GB = 8.0 * 1024 * 1024 * 1024 / 1e9
)

// Flow is one finite transfer in a trace.
type Flow struct {
	Src, Dst int     // global server indices
	Bits     float64 // flow size in Gbit
	Arrival  float64 // seconds from trace start
}

// Locality classifies where a flow's destination lives relative to its
// source.
type Locality int

const (
	// IntraRack destinations share the source's edge switch.
	IntraRack Locality = iota
	// IntraPod destinations share the pod but not the rack.
	IntraPod
	// InterPod destinations are in a different pod.
	InterPod
)

// TraceSpec parameterizes a synthetic trace with controlled locality and
// flow size distribution, standing in for the unreleased Facebook traces
// (the paper itself reverse-engineered three of its four traces from the
// same published statistics).
type TraceSpec struct {
	Name           string
	Servers        int
	ServersPerRack int
	RacksPerPod    int
	// Fractions of traffic volume per locality class; must sum to <= 1,
	// the remainder is inter-pod.
	FracIntraRack float64
	FracIntraPod  float64
	// Flows and Duration set the Poisson arrival process.
	Flows    int
	Duration float64
	// SizeMedianGbit and SizeSigma parameterize the log-normal flow size
	// distribution.
	SizeMedianGbit float64
	SizeSigma      float64
	Seed           int64
}

// Validate checks spec consistency.
func (s TraceSpec) Validate() error {
	if s.Servers < 2 || s.ServersPerRack < 1 || s.RacksPerPod < 1 {
		return fmt.Errorf("traffic %q: bad shape", s.Name)
	}
	if s.Servers%(s.ServersPerRack*s.RacksPerPod) != 0 {
		return fmt.Errorf("traffic %q: servers %d not divisible by pod size %d",
			s.Name, s.Servers, s.ServersPerRack*s.RacksPerPod)
	}
	if s.FracIntraRack < 0 || s.FracIntraPod < 0 || s.FracIntraRack+s.FracIntraPod > 1 {
		return fmt.Errorf("traffic %q: bad locality fractions", s.Name)
	}
	if s.Flows < 1 || s.Duration <= 0 || s.SizeMedianGbit <= 0 {
		return fmt.Errorf("traffic %q: bad volume parameters", s.Name)
	}
	return nil
}

// Generate draws the trace: flow arrivals are Poisson over Duration,
// sources uniform, destinations drawn per the locality mix, sizes
// log-normal. It materializes the whole trace; large runs should drain
// NewStream instead, which produces the identical flow sequence.
func Generate(s TraceSpec) ([]Flow, error) {
	st, err := NewStream(s)
	if err != nil {
		return nil, err
	}
	flows := make([]Flow, 0, s.Flows)
	for {
		f, ok := st.Next()
		if !ok {
			return flows, nil
		}
		flows = append(flows, f)
	}
}

// drawDst picks a destination according to the locality fractions.
func drawDst(rng *rand.Rand, s TraceSpec, src, perPod, pods int) int {
	rack := src / s.ServersPerRack
	pod := src / perPod
	u := rng.Float64()
	switch {
	case u < s.FracIntraRack && s.ServersPerRack > 1:
		// Same rack, different server.
		for {
			d := rack*s.ServersPerRack + rng.Intn(s.ServersPerRack)
			if d != src {
				return d
			}
		}
	case u < s.FracIntraRack+s.FracIntraPod && s.RacksPerPod > 1:
		// Same pod, different rack.
		for {
			d := pod*perPod + rng.Intn(perPod)
			if d/s.ServersPerRack != rack {
				return d
			}
		}
	default:
		if pods == 1 {
			// Degenerate single-pod network: fall back to any other.
			for {
				d := rng.Intn(s.Servers)
				if d != src {
					return d
				}
			}
		}
		for {
			d := rng.Intn(s.Servers)
			if d/perPod != pod {
				return d
			}
		}
	}
}

// LocalityOf classifies a pair under the spec's shape.
func (s TraceSpec) LocalityOf(p Pair) Locality {
	perPod := s.ServersPerRack * s.RacksPerPod
	switch {
	case p.Src/s.ServersPerRack == p.Dst/s.ServersPerRack:
		return IntraRack
	case p.Src/perPod == p.Dst/perPod:
		return IntraPod
	default:
		return InterPod
	}
}
