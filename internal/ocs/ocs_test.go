package ocs

import (
	"testing"

	"flattree/internal/core"
)

func testbed(t *testing.T) (*core.Network, *Switch) {
	t.Helper()
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	s, err := TestbedOCS(nw)
	if err != nil {
		t.Fatal(err)
	}
	return nw, s
}

func TestAllocationBudget(t *testing.T) {
	_, s := testbed(t)
	// 8 four-port + 8 six-port converters = 80 of 192 ports.
	if got := s.Ports() - s.FreePorts(); got != 80 {
		t.Fatalf("allocated ports = %d, want 80", got)
	}
}

func TestAllocateRejections(t *testing.T) {
	s, err := New(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(0, core.SixPort); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Allocate(0, core.FourPort); err == nil {
		t.Fatal("duplicate converter accepted")
	}
	if _, err := s.Allocate(1, core.FourPort); err == nil {
		t.Fatal("over-capacity allocation accepted")
	}
	if _, err := New(1); err == nil {
		t.Fatal("1-port OCS accepted")
	}
}

func TestProgramModesAndDiff(t *testing.T) {
	nw, s := testbed(t)

	nw.SetMode(core.ModeClos)
	first, err := s.Program(nw.Converters())
	if err != nil {
		t.Fatal(err)
	}
	// Initial program: every converter establishes 2 circuits (default
	// config) = 32 circuits made from nothing.
	if first != 32 {
		t.Fatalf("initial circuits changed = %d, want 32", first)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(s.Circuits()); got != 32 {
		t.Fatalf("circuits = %d, want 32", got)
	}

	// Reprogramming the same mode changes nothing.
	same, err := s.Program(nw.Converters())
	if err != nil {
		t.Fatal(err)
	}
	if same != 0 {
		t.Fatalf("idempotent reprogram changed %d circuits", same)
	}

	// Clos -> global rewires every converter: all 32 old circuits break
	// and the new ones (2 per 4-port local, 3 per 6-port side/cross)
	// form: diff counts every crosspoint that differs.
	nw.SetMode(core.ModeGlobal)
	diff, err := s.Program(nw.Converters())
	if err != nil {
		t.Fatal(err)
	}
	if diff == 0 {
		t.Fatal("mode change programmed no crosspoint changes")
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Global: 8 four-port x 2 + 8 six-port x 3 = 40 circuits.
	if got := len(s.Circuits()); got != 40 {
		t.Fatalf("global circuits = %d, want 40", got)
	}
}

func TestProgramUnallocatedConverter(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(192)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Program(nw.Converters()); err == nil {
		t.Fatal("programming unallocated converters succeeded")
	}
}

func TestCircuitsDisjointAcrossPartitions(t *testing.T) {
	nw, s := testbed(t)
	nw.SetMode(core.ModeGlobal)
	if _, err := s.Program(nw.Converters()); err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, c := range s.Circuits() {
		for _, p := range []int{c[0], c[1]} {
			if seen[p] {
				t.Fatalf("port %d in two circuits", p)
			}
			seen[p] = true
		}
	}
}
