// Package ocs models the optical circuit switch that physically hosts the
// converter switches on the paper's testbed: "The converter switches are
// logical partitions of the OCS" (§5.3, Figure 9 — a 192-port 3D-MEMS
// switch). Each converter's 4 or 6 logical ports map to disjoint physical
// ports; programming a flat-tree mode compiles every converter's circuit
// matching (core.CrossConnects) into one physical cross-connect set, and
// reconfiguration cost is the number of crosspoints that change.
package ocs

import (
	"fmt"
	"sort"

	"flattree/internal/core"
)

// Switch is an optical circuit switch with a port-to-port matching.
type Switch struct {
	ports int
	// mate[p] = q when a circuit connects ports p and q; -1 otherwise.
	mate []int
	// partitions maps converter index -> physical ports of its logical
	// ports (indexed by core.Port).
	partitions map[int]map[core.Port]int
	nextFree   int
}

// New returns an OCS with the given port count and no circuits.
func New(ports int) (*Switch, error) {
	if ports < 2 {
		return nil, fmt.Errorf("ocs: %d ports", ports)
	}
	s := &Switch{ports: ports, mate: make([]int, ports), partitions: map[int]map[core.Port]int{}}
	for i := range s.mate {
		s.mate[i] = -1
	}
	return s, nil
}

// Ports returns the port count.
func (s *Switch) Ports() int { return s.ports }

// Allocate reserves a partition of physical ports for one converter and
// returns the logical-to-physical port map. Converter indices must be
// unique.
func (s *Switch) Allocate(converter int, kind core.ConverterKind) (map[core.Port]int, error) {
	if _, dup := s.partitions[converter]; dup {
		return nil, fmt.Errorf("ocs: converter %d already allocated", converter)
	}
	need := 4
	maxPort := core.PortCore
	if kind == core.SixPort {
		need = 6
		maxPort = core.PortSide2
	}
	if s.nextFree+need > s.ports {
		return nil, fmt.Errorf("ocs: %d ports left, converter needs %d", s.ports-s.nextFree, need)
	}
	m := make(map[core.Port]int, need)
	for p := core.PortServer; p <= maxPort; p++ {
		m[p] = s.nextFree
		s.nextFree++
	}
	s.partitions[converter] = m
	return m, nil
}

// AllocateNetwork reserves partitions for every converter of a flat-tree
// network, in the network's deterministic converter order.
func (s *Switch) AllocateNetwork(nw *core.Network) error {
	for i, cv := range nw.Converters() {
		if _, err := s.Allocate(i, cv.Kind); err != nil {
			return fmt.Errorf("ocs: allocating converter %d: %w", i, err)
		}
	}
	return nil
}

// FreePorts returns the number of unallocated physical ports.
func (s *Switch) FreePorts() int { return s.ports - s.nextFree }

// Program compiles the converters' configurations into the physical
// cross-connect set, replacing the previous program, and returns how many
// crosspoints changed (made plus broken) — the quantity the 160 ms MEMS
// reconfiguration covers.
func (s *Switch) Program(convs []core.Converter) (changed int, err error) {
	want := make([]int, s.ports)
	for i := range want {
		want[i] = -1
	}
	for i, cv := range convs {
		part, ok := s.partitions[i]
		if !ok {
			return 0, fmt.Errorf("ocs: converter %d not allocated", i)
		}
		xcs, err := core.CrossConnects(cv.Kind, cv.Config)
		if err != nil {
			return 0, err
		}
		if err := core.ValidateMatching(cv.Kind, xcs); err != nil {
			return 0, err
		}
		for _, xc := range xcs {
			a, b := part[xc.A], part[xc.B]
			if want[a] != -1 || want[b] != -1 {
				return 0, fmt.Errorf("ocs: port conflict programming converter %d", i)
			}
			want[a], want[b] = b, a
		}
	}
	for p := range want {
		if s.mate[p] != want[p] {
			changed++
		}
	}
	// Every circuit touches two ports; count circuits, not port-ends.
	changed /= 2
	copy(s.mate, want)
	return changed, nil
}

// Circuits returns the current physical circuits as sorted port pairs.
func (s *Switch) Circuits() [][2]int {
	var out [][2]int
	for p, q := range s.mate {
		if q > p {
			out = append(out, [2]int{p, q})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i][0] < out[j][0] })
	return out
}

// Validate checks the matching invariant: mate is an involution with no
// fixed points among connected ports.
func (s *Switch) Validate() error {
	for p, q := range s.mate {
		if q == -1 {
			continue
		}
		if q < 0 || q >= s.ports {
			return fmt.Errorf("ocs: port %d mated out of range (%d)", p, q)
		}
		if q == p {
			return fmt.Errorf("ocs: port %d mated to itself", p)
		}
		if s.mate[q] != p {
			return fmt.Errorf("ocs: ports %d and %d disagree", p, q)
		}
	}
	return nil
}

// TestbedOCS returns the Figure 9 device: a 192-port OCS with the example
// network's 16 converters allocated (8 four-port + 8 six-port = 80 ports).
func TestbedOCS(nw *core.Network) (*Switch, error) {
	s, err := New(192)
	if err != nil {
		return nil, err
	}
	if err := s.AllocateNetwork(nw); err != nil {
		return nil, err
	}
	return s, nil
}
