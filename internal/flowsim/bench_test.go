package flowsim

import (
	"math"
	"testing"
)

// Benchmarks for the rate allocator — the inner loop of every throughput
// experiment and of each event in the FCT simulations.

func benchSubflows(nConns, k, nLinks int) ([]float64, []Subflow) {
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 10
	}
	var subs []Subflow
	for c := 0; c < nConns; c++ {
		for s := 0; s < k; s++ {
			subs = append(subs, Subflow{
				Conn:   c,
				Links:  []int{(c + s) % nLinks, (c + s + 7) % nLinks, (c + s + 13) % nLinks},
				Weight: 1 / float64(k),
			})
		}
	}
	return caps, subs
}

func BenchmarkMaxMinRates128x8(b *testing.B) {
	caps, subs := benchSubflows(128, 8, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMinRates(caps, subs); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimFCT(b *testing.B) {
	caps := make([]float64, 64)
	for i := range caps {
		caps[i] = 10
	}
	specs := make([]ConnSpec, 200)
	for i := range specs {
		specs[i] = ConnSpec{
			Paths:   [][]int{{i % 64, (i + 5) % 64}},
			Bits:    1 + math.Mod(float64(i)*0.37, 5),
			Arrival: float64(i) * 0.001,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSim(caps, specs).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
