package flowsim

import (
	"math"
	"math/rand"
	"testing"
)

// Benchmarks for the rate allocator — the inner loop of every throughput
// experiment and of each event in the FCT simulations.

func benchSubflows(nConns, k, nLinks int) ([]float64, []Subflow) {
	caps := make([]float64, nLinks)
	for i := range caps {
		caps[i] = 10
	}
	var subs []Subflow
	for c := 0; c < nConns; c++ {
		for s := 0; s < k; s++ {
			subs = append(subs, Subflow{
				Conn:   c,
				Links:  []int{(c + s) % nLinks, (c + s + 7) % nLinks, (c + s + 13) % nLinks},
				Weight: 1 / float64(k),
			})
		}
	}
	return caps, subs
}

func BenchmarkMaxMinRates128x8(b *testing.B) {
	caps, subs := benchSubflows(128, 8, 400)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := MaxMinRates(caps, subs); err != nil {
			b.Fatal(err)
		}
	}
}

// benchLargeAlloc is the PR's headline allocator scenario: 100k subflows
// over 16k links with heterogeneous capacities, so saturation staggers
// across many progressive-filling rounds. The seed core re-scans all of
// caps per round and rebuilds every per-link index per call; the SoA
// core touches only loaded links and compacts frozen ones out, which is
// where the gated ≥3x win comes from (see BENCH_pr7.json).
func benchLargeAlloc() ([]float64, []Subflow) {
	rng := rand.New(rand.NewSource(42))
	nLinks := 16_384
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = 1 + 99*rng.Float64()
	}
	const nSubs = 100_000
	subs := make([]Subflow, nSubs)
	for i := range subs {
		links := make([]int, 2+rng.Intn(3))
		for h := range links {
			links[h] = rng.Intn(nLinks)
		}
		w := 1.0
		if i%3 == 0 {
			w = 1.0 / float64(1+rng.Intn(8))
		}
		subs[i] = Subflow{Conn: i, Links: links, Weight: w}
	}
	return caps, subs
}

func BenchmarkAllocLarge(b *testing.B) {
	caps, subs := benchLargeAlloc()
	b.Run("soa", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := MaxMinRates(caps, subs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("ref", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := maxMinRatesRef(caps, subs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRunStream measures the streaming event loop end to end: 50k
// short flows pulled lazily, slots recycling through the free list.
func BenchmarkRunStream(b *testing.B) {
	caps := make([]float64, 64)
	for i := range caps {
		caps[i] = 10
	}
	const n = 50_000
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		j := 0
		err := NewSim(caps, nil).RunStream(
			func() (ConnSpec, bool) {
				if j >= n {
					return ConnSpec{}, false
				}
				sp := ConnSpec{
					Paths:   [][]int{{j % 64, (j + 5) % 64}},
					Bits:    0.02 + math.Mod(float64(j)*0.0037, 0.05),
					Arrival: float64(j) * 0.0005,
				}
				j++
				return sp, true
			},
			func(int, ConnResult) {})
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSimFCT(b *testing.B) {
	caps := make([]float64, 64)
	for i := range caps {
		caps[i] = 10
	}
	specs := make([]ConnSpec, 200)
	for i := range specs {
		specs[i] = ConnSpec{
			Paths:   [][]int{{i % 64, (i + 5) % 64}},
			Bits:    1 + math.Mod(float64(i)*0.37, 5),
			Arrival: float64(i) * 0.001,
		}
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := NewSim(caps, specs).Run(); err != nil {
			b.Fatal(err)
		}
	}
}
