package flowsim

import (
	"fmt"
	"math"
	"sort"

	"flattree/internal/recorder"
	"flattree/internal/telemetry"
)

// This file retains the seed simulator core verbatim as an unexported
// reference implementation. The exported Run/MaxMinRates entry points now
// execute on the struct-of-arrays core (soa.go, sim.go); the differential
// suite (differential_test.go, fuzz_test.go) pins the rewrite by requiring
// byte-identical ConnResult slices — rates, FCTs, stall times, reroute
// counts — between the two cores on seeded random workloads, churn traces
// and fuzz inputs. Nothing here is reachable from production call paths;
// it exists so "the refactor changed nothing but speed" is a property the
// test suite enforces rather than a claim in a commit message.

// sortedActive returns the active connection IDs in ascending order. Every
// per-event loop iterates this slice instead of the active map, so float
// accumulation order — and therefore output bytes — are independent of map
// layout.
func sortedActive(active map[int]bool) []int {
	ids := make([]int, 0, len(active))
	for c := range active {
		ids = append(ids, c)
	}
	sort.Ints(ids)
	return ids
}

// runReference executes the simulation on the seed (pre-SoA) core and
// returns per-connection results in spec order. It must stay byte-for-byte
// equivalent to the seed Run: the differential suite treats its output as
// ground truth.
func (s *Sim) runReference() ([]ConnResult, error) {
	n := len(s.specs)
	results := make([]ConnResult, n)
	remaining := make([]float64, n)
	paths := make([][][]int, n)
	order := make([]int, n)
	for i, sp := range s.specs {
		if len(sp.Paths) == 0 && !s.Graceful {
			return nil, fmt.Errorf("flowsim: connection %d has no paths", i)
		}
		if sp.Bits <= 0 {
			return nil, fmt.Errorf("flowsim: connection %d has size %v", i, sp.Bits)
		}
		results[i] = ConnResult{Start: sp.Arrival, Finish: math.Inf(1), Bits: sp.Bits}
		remaining[i] = sp.Bits
		paths[i] = sp.Paths
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.specs[order[a]].Arrival < s.specs[order[b]].Arrival
	})

	// Capacities are private: topology events mutate them mid-run.
	caps := append([]float64(nil), s.caps...)
	retryBase, retryMax := s.retryBounds()

	active := make(map[int]bool)
	stalled := make([]bool, n)  // parked: excluded from allocation
	retrying := make([]bool, n) // woken for a backoff probe this instant
	backoff := make([]float64, n)
	nextRetry := make([]float64, n)
	nextArrival := 0
	nextEvent := 0
	t := 0.0
	if n == 0 {
		return results, nil
	}
	// Handles are resolved once per run; nil (disabled) handles cost one
	// predictable branch per use.
	events := telemetry.C("flowsim_events_total")
	completed := telemetry.C("flowsim_flows_completed_total")
	fct := telemetry.H("flowsim_fct_seconds")
	stalls := telemetry.C("flowsim_stalls_total")
	reroutes := telemetry.C("flowsim_reroutes_total")
	disconnected := telemetry.C("flowsim_disconnected_total")
	stallHist := telemetry.H("flowsim_stall_seconds")

	// finish records stall histograms once and returns the results.
	finish := func() []ConnResult {
		for i := range results {
			if results[i].StallTime > 0 {
				stallHist.Observe(results[i].StallTime)
			}
		}
		return results
	}
	// stall parks connection c at time now: a fresh stall starts the
	// backoff at its base; a failed retry probe doubles it up to the cap.
	stall := func(c int, now float64) {
		if stalled[c] {
			return
		}
		stalled[c] = true
		if retrying[c] {
			backoff[c] *= 2
			if backoff[c] > retryMax {
				backoff[c] = retryMax
			}
		} else {
			backoff[c] = retryBase
			stalls.Inc()
			s.Rec.Emit(recorder.Event{T: now, Kind: recorder.FlowStall, ID: c})
		}
		retrying[c] = false
		nextRetry[c] = now + backoff[c]
	}

	for {
		events.Inc()
		// Apply topology events due at the current time, in schedule order.
		for nextEvent < len(s.events) && s.events[nextEvent].Time <= t+1e-12 {
			ev := s.events[nextEvent]
			nextEvent++
			//flatvet:ordered writes to distinct link slots; order-independent
			for id, cp := range ev.SetCaps {
				if id < 0 || id >= len(caps) {
					return nil, fmt.Errorf("flowsim: event at t=%v sets capacity of link %d of %d", ev.Time, id, len(caps))
				}
				caps[id] = cp
			}
			// Reroutes apply in ascending connection order (bookkeeping
			// only — path replacement is order-independent, counters are
			// not).
			recs := make([]int, 0, len(ev.Reroute))
			for c := range ev.Reroute {
				recs = append(recs, c)
			}
			sort.Ints(recs)
			for _, c := range recs {
				if c < 0 || c >= n {
					return nil, fmt.Errorf("flowsim: event at t=%v reroutes connection %d of %d", ev.Time, c, n)
				}
				if !math.IsInf(results[c].Finish, 1) {
					continue // already completed
				}
				paths[c] = ev.Reroute[c]
				results[c].Reroutes++
				reroutes.Inc()
				s.Rec.Emit(recorder.Event{T: ev.Time, Kind: recorder.FlowReroute, ID: c, A: int64(len(paths[c]))})
			}
		}
		// Admit arrivals at the current time.
		for nextArrival < n && s.specs[order[nextArrival]].Arrival <= t+1e-12 {
			c := order[nextArrival]
			active[c] = true
			nextArrival++
			s.Rec.Emit(recorder.Event{T: s.specs[c].Arrival, Kind: recorder.FlowStart, ID: c, A: int64(len(paths[c]))})
		}
		// Wake stalled connections whose retry timer fired; the allocation
		// below decides whether the probe succeeds.
		act := sortedActive(active)
		for _, c := range act {
			if stalled[c] && nextRetry[c] <= t+1e-12 {
				stalled[c] = false
				retrying[c] = true
			}
		}
		if len(active) == 0 {
			if nextArrival >= n {
				break
			}
			// Jump to whichever comes first: the next arrival or the next
			// topology event (events still apply with no flows running,
			// keeping capacities and path sets current for later
			// arrivals).
			jump := s.specs[order[nextArrival]].Arrival
			if nextEvent < len(s.events) && s.events[nextEvent].Time < jump {
				jump = s.events[nextEvent].Time
			}
			t = jump
			continue
		}
		// Allocate rates for the running (non-stalled) set.
		run := make([]int, 0, len(act))
		for _, c := range act {
			if !stalled[c] {
				run = append(run, c)
			}
		}
		connRates, err := s.allocateRef(caps, run, paths)
		if err != nil {
			return nil, err
		}
		s.Rec.Emit(recorder.Event{T: t, Kind: recorder.AllocRound, A: int64(len(run)), B: int64(len(act))})
		// Graceful degradation: finite connections at zero rate lost every
		// path. While future events could revive them they park and retry;
		// once no event or arrival remains, nothing can — park them for
		// good (infinite retry timer), so they accrue stall time for the
		// rest of the simulated span instead of burning retry probes.
		if s.Graceful {
			noFuture := nextArrival >= n && nextEvent >= len(s.events)
			starved := false
			for _, c := range run {
				if math.IsInf(remaining[c], 1) {
					continue
				}
				if connRates[c] <= 1e-15 {
					if noFuture {
						stalled[c] = true
						retrying[c] = false
						nextRetry[c] = math.Inf(1)
						disconnected.Inc()
						s.Rec.Emit(recorder.Event{T: t, Kind: recorder.FlowDisconnect, ID: c})
					} else {
						stall(c, t)
					}
					starved = true
					continue
				}
				retrying[c] = false // probe succeeded: connection resumed
			}
			if starved {
				continue // reallocate without the just-parked connections
			}
		}
		if s.Sample != nil {
			s.Sample(t, connRates)
		}
		// Next event: earliest completion, arrival, topology event, or
		// stall-retry probe.
		nextT := math.Inf(1)
		if nextArrival < n {
			nextT = s.specs[order[nextArrival]].Arrival
		}
		if nextEvent < len(s.events) && s.events[nextEvent].Time < nextT {
			nextT = s.events[nextEvent].Time
		}
		for _, c := range act {
			if stalled[c] && nextRetry[c] < nextT {
				nextT = nextRetry[c]
			}
		}
		completing := -1
		for _, c := range run {
			r := connRates[c]
			if math.IsInf(remaining[c], 1) || r <= 1e-15 {
				continue
			}
			if fin := t + remaining[c]/r; fin < nextT {
				nextT = fin
				completing = c
			}
		}
		if s.Horizon > 0 && nextT > s.Horizon {
			// Stop at the horizon; account progress (and stall) up to it.
			dt := s.Horizon - t
			for _, c := range run {
				remaining[c] -= connRates[c] * dt
			}
			for _, c := range act {
				if stalled[c] {
					results[c].StallTime += dt
				}
			}
			return finish(), nil
		}
		if math.IsInf(nextT, 1) {
			// Only persistent or starved flows remain.
			for _, c := range act {
				if connRates[c] <= 1e-15 && !math.IsInf(remaining[c], 1) && !stalled[c] {
					return nil, fmt.Errorf("flowsim: connection %d starved (disconnected path set?)", c)
				}
			}
			return finish(), nil
		}
		dt := nextT - t
		for _, c := range run {
			remaining[c] -= connRates[c] * dt
		}
		for _, c := range act {
			if stalled[c] {
				results[c].StallTime += dt
			}
		}
		t = nextT
		// Retire completed connections (the chosen one plus any that hit
		// zero within tolerance).
		for _, c := range run {
			if !active[c] {
				continue
			}
			if !math.IsInf(remaining[c], 1) && (c == completing || remaining[c] <= 1e-6) {
				results[c].Finish = t
				delete(active, c)
				completed.Inc()
				fct.Observe(results[c].FCT())
				s.Rec.Emit(recorder.Event{T: t, Kind: recorder.FlowRetire, ID: c,
					V: results[c].FCT(), A: int64(results[c].Reroutes)})
			}
		}
	}
	return finish(), nil
}

// allocateRef computes per-connection rates for the given connection IDs
// over the current capacities and path sets, on the reference allocator.
// IDs must be sorted ascending: the subflow build order fixes the
// allocator's float accumulation order.
func (s *Sim) allocateRef(caps []float64, ids []int, paths [][][]int) ([]float64, error) {
	var subs []Subflow
	for _, c := range ids {
		sp := s.specs[c]
		pl := paths[c]
		if len(pl) == 0 {
			continue // disconnected: no subflows, rate 0
		}
		w := sp.Weight
		if w == 0 {
			w = 1
		}
		per := w / float64(len(pl))
		for _, p := range pl {
			subs = append(subs, Subflow{Conn: c, Links: p, Weight: per})
		}
	}
	rates, err := maxMinRatesRef(caps, subs)
	if err != nil {
		return nil, err
	}
	return ConnRates(len(s.specs), subs, rates, s.LocalRate), nil
}

// maxMinRatesRef is the seed progressive-filling allocator: every round
// re-scans all of caps for the bottleneck and the drain. MaxMinRates must
// reproduce its output bit-for-bit (same float op order) while only
// touching loaded links.
func maxMinRatesRef(caps []float64, subs []Subflow) ([]float64, error) {
	rates := make([]float64, len(subs))
	if len(subs) == 0 {
		return rates, nil
	}
	remaining := append([]float64(nil), caps...)
	active := make([]bool, len(subs))
	// linkWeight[l] = total weight of active subflows crossing l;
	// linkCount[l] is the exact active-subflow count — the authoritative
	// emptiness test (accumulated floating-point residue in linkWeight
	// must never keep a link "loaded" after its subflows all froze).
	linkWeight := make([]float64, len(caps))
	linkCount := make([]int, len(caps))
	linkSubs := make([][]int, len(caps))
	nActive := 0
	for i, s := range subs {
		if s.Weight <= 0 {
			return nil, fmt.Errorf("flowsim: subflow %d has weight %v", i, s.Weight)
		}
		if len(s.Links) == 0 {
			// Loopback path: unconstrained by the fabric; the caller
			// grants these the local rate (see ConnRates).
			continue
		}
		active[i] = true
		nActive++
		for _, l := range s.Links {
			if l < 0 || l >= len(caps) {
				return nil, fmt.Errorf("flowsim: subflow %d references link %d of %d", i, l, len(caps))
			}
			linkWeight[l] += s.Weight
			linkCount[l]++
			linkSubs[l] = append(linkSubs[l], i)
		}
	}

	level := 0.0 // current water level (rate per unit weight)
	rounds := int64(0)
	for nActive > 0 {
		rounds++
		// Find the link that saturates next: smallest additional level
		// Δ = remaining[l] / linkWeight[l] over links with active load.
		bottleneck := -1
		best := math.Inf(1)
		for l := range caps {
			if linkCount[l] == 0 {
				continue
			}
			if d := remaining[l] / linkWeight[l]; d < best {
				best = d
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			break
		}
		level += best
		// Drain every loaded link by the growth of this round.
		for l := range caps {
			if linkCount[l] > 0 {
				remaining[l] -= best * linkWeight[l]
				if remaining[l] < 0 {
					remaining[l] = 0
				}
			}
		}
		// Freeze subflows crossing the bottleneck (and any other link
		// that just hit zero). Freezing the bottleneck's subflows is
		// unconditional, guaranteeing progress every round.
		frozeAny := false
		for l := range caps {
			if linkCount[l] == 0 {
				continue
			}
			if l != bottleneck && remaining[l] > 1e-12 {
				continue
			}
			for _, si := range linkSubs[l] {
				if !active[si] {
					continue
				}
				active[si] = false
				nActive--
				frozeAny = true
				rates[si] = subs[si].Weight * level
				for _, sl := range subs[si].Links {
					linkWeight[sl] -= subs[si].Weight
					linkCount[sl]--
					if linkCount[sl] == 0 {
						linkWeight[sl] = 0
					}
				}
			}
		}
		if !frozeAny {
			// Defensive: cannot happen (the bottleneck always freezes),
			// but never spin.
			break
		}
	}
	telemetry.C("flowsim_allocations_total").Inc()
	telemetry.C("flowsim_alloc_rounds_total").Add(rounds)
	return rates, nil
}
