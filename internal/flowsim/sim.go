package flowsim

import (
	"fmt"
	"math"
	"sort"

	"flattree/internal/telemetry"
)

// ConnSpec describes one connection entering the simulation.
type ConnSpec struct {
	// Paths are the connection's subflow paths as link-ID lists. MPTCP
	// connections pass k paths; TCP passes one.
	Paths [][]int
	// Bits is the transfer size; math.Inf(1) makes the connection
	// persistent (it never completes — iPerf-style).
	Bits float64
	// Arrival is the connection start time in seconds.
	Arrival float64
	// Weight is the connection's total fairness weight, split evenly
	// across subflows; zero defaults to 1.
	Weight float64
}

// ConnResult reports one connection's outcome.
type ConnResult struct {
	// Start and Finish bound the transfer; Finish is +Inf for persistent
	// connections and connections that never complete.
	Start, Finish float64
	// Bits echoes the transfer size.
	Bits float64
}

// FCT returns the flow completion time.
func (c ConnResult) FCT() float64 { return c.Finish - c.Start }

// Sim is an event-driven flow-level simulation over a fixed topology.
type Sim struct {
	caps  []float64
	specs []ConnSpec

	// LocalRate is the rate granted to loopback (same-host) paths;
	// defaults to 10 (link speed) if zero.
	LocalRate float64
	// Horizon stops the simulation at this time even if flows remain;
	// zero means run to completion of all finite flows.
	Horizon float64
	// Sample, when set, is called at every event boundary with the
	// current time and per-connection rates (valid until the next call).
	Sample func(t float64, connRates []float64)
}

// NewSim creates a simulation over links with the given capacities.
func NewSim(caps []float64, specs []ConnSpec) *Sim {
	return &Sim{caps: caps, specs: specs, LocalRate: 10}
}

// Run executes the simulation and returns per-connection results in spec
// order.
func (s *Sim) Run() ([]ConnResult, error) {
	n := len(s.specs)
	results := make([]ConnResult, n)
	remaining := make([]float64, n)
	order := make([]int, n)
	for i, sp := range s.specs {
		if len(sp.Paths) == 0 {
			return nil, fmt.Errorf("flowsim: connection %d has no paths", i)
		}
		if sp.Bits <= 0 {
			return nil, fmt.Errorf("flowsim: connection %d has size %v", i, sp.Bits)
		}
		results[i] = ConnResult{Start: sp.Arrival, Finish: math.Inf(1), Bits: sp.Bits}
		remaining[i] = sp.Bits
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.specs[order[a]].Arrival < s.specs[order[b]].Arrival
	})

	active := make(map[int]bool)
	nextArrival := 0
	t := 0.0
	if n == 0 {
		return results, nil
	}
	// Handles are resolved once per run; nil (disabled) handles cost one
	// predictable branch per use.
	events := telemetry.C("flowsim_events_total")
	completed := telemetry.C("flowsim_flows_completed_total")
	fct := telemetry.H("flowsim_fct_seconds")
	for {
		events.Inc()
		// Admit arrivals at the current time.
		for nextArrival < n && s.specs[order[nextArrival]].Arrival <= t+1e-12 {
			active[order[nextArrival]] = true
			nextArrival++
		}
		if len(active) == 0 {
			if nextArrival >= n {
				break
			}
			t = s.specs[order[nextArrival]].Arrival
			continue
		}
		// Allocate rates for the active set.
		connRates, err := s.allocate(active)
		if err != nil {
			return nil, err
		}
		if s.Sample != nil {
			s.Sample(t, connRates)
		}
		// Next event: earliest completion or next arrival.
		nextT := math.Inf(1)
		if nextArrival < n {
			nextT = s.specs[order[nextArrival]].Arrival
		}
		completing := -1
		for c := range active {
			r := connRates[c]
			if math.IsInf(remaining[c], 1) || r <= 1e-15 {
				continue
			}
			if fin := t + remaining[c]/r; fin < nextT {
				nextT = fin
				completing = c
			}
		}
		if s.Horizon > 0 && nextT > s.Horizon {
			// Stop at the horizon; account progress up to it.
			dt := s.Horizon - t
			for c := range active {
				remaining[c] -= connRates[c] * dt
			}
			return results, nil
		}
		if math.IsInf(nextT, 1) {
			// Only persistent or starved flows remain.
			for c := range active {
				if connRates[c] <= 1e-15 && !math.IsInf(remaining[c], 1) {
					return nil, fmt.Errorf("flowsim: connection %d starved (disconnected path set?)", c)
				}
			}
			return results, nil
		}
		dt := nextT - t
		for c := range active {
			remaining[c] -= connRates[c] * dt
		}
		t = nextT
		// Retire completed connections (the chosen one plus any that hit
		// zero within tolerance).
		for c := range active {
			if !math.IsInf(remaining[c], 1) && (c == completing || remaining[c] <= 1e-6) {
				results[c].Finish = t
				delete(active, c)
				completed.Inc()
				fct.Observe(results[c].FCT())
			}
		}
	}
	return results, nil
}

// allocate computes per-connection rates for the active set.
func (s *Sim) allocate(active map[int]bool) ([]float64, error) {
	var subs []Subflow
	for c := range active {
		sp := s.specs[c]
		w := sp.Weight
		if w == 0 {
			w = 1
		}
		per := w / float64(len(sp.Paths))
		for _, p := range sp.Paths {
			subs = append(subs, Subflow{Conn: c, Links: p, Weight: per})
		}
	}
	rates, err := MaxMinRates(s.caps, subs)
	if err != nil {
		return nil, err
	}
	return ConnRates(len(s.specs), subs, rates, s.LocalRate), nil
}

// StaticRates computes the steady-state connection rates if every
// connection were active simultaneously — the allocation used for the
// throughput experiments of §5.1 where all flows run concurrently.
func StaticRates(caps []float64, specs []ConnSpec, localRate float64) ([]float64, error) {
	s := NewSim(caps, specs)
	if localRate > 0 {
		s.LocalRate = localRate
	}
	active := make(map[int]bool, len(specs))
	for i, sp := range specs {
		if len(sp.Paths) == 0 {
			return nil, fmt.Errorf("flowsim: connection %d has no paths", i)
		}
		active[i] = true
	}
	return s.allocate(active)
}
