package flowsim

import (
	"fmt"
	"math"
	"sort"

	"flattree/internal/recorder"
	"flattree/internal/telemetry"
)

// ConnSpec describes one connection entering the simulation.
type ConnSpec struct {
	// Paths are the connection's subflow paths as link-ID lists. MPTCP
	// connections pass k paths; TCP passes one. An empty path list is
	// rejected unless the simulation runs gracefully (see Sim.Graceful),
	// where it marks a connection with no surviving route: it stalls on
	// arrival instead of transmitting.
	Paths [][]int
	// Bits is the transfer size; math.Inf(1) makes the connection
	// persistent (it never completes — iPerf-style).
	Bits float64
	// Arrival is the connection start time in seconds.
	Arrival float64
	// Weight is the connection's total fairness weight, split evenly
	// across subflows; zero defaults to 1.
	Weight float64
}

// ConnResult reports one connection's outcome.
type ConnResult struct {
	// Start and Finish bound the transfer; Finish is +Inf for persistent
	// connections and connections that never complete.
	Start, Finish float64
	// Bits echoes the transfer size.
	Bits float64
	// StallTime is the total time the connection spent with no usable
	// path (zero rate on every subflow) under graceful degradation.
	StallTime float64
	// Reroutes counts the path-set replacements applied to the connection
	// by topology events while it was outstanding.
	Reroutes int
}

// FCT returns the flow completion time.
func (c ConnResult) FCT() float64 { return c.Finish - c.Start }

// TopoEvent is one scheduled mid-run change to the simulated fabric: link
// failures drive capacities to zero the instant they happen (the data
// plane blackholes immediately), and the control plane's reaction arrives
// as a later reroute event — the churn engine compiles failure traces into
// exactly this pair.
type TopoEvent struct {
	// Time is when the change takes effect, in simulation seconds.
	Time float64
	// SetCaps overwrites the capacity of the given directed link slots
	// (see routing.DirectedLinkIDs); zero fails a direction. NaN and
	// negative values are rejected when the event applies.
	SetCaps map[int]float64
	// Reroute replaces the path sets of connections by index. The new set
	// applies to running connections and to ones that have not arrived
	// yet. An empty list disconnects the connection: it stalls until a
	// later event restores paths (or forever, reported as stall time).
	Reroute map[int][][]int
}

// Sim is an event-driven flow-level simulation over a fixed topology.
//
// The event loop and allocator run on a struct-of-arrays core (soa.go):
// dense per-connection and per-subflow arrays, a flat link arena, and
// per-link membership maintained incrementally across events. The seed
// implementation is retained in reference.go and the differential suite
// pins the two cores to byte-identical results, so Run's output is the
// seed's output — only faster.
type Sim struct {
	caps  []float64
	specs []ConnSpec

	// LocalRate is the rate granted to loopback (same-host) paths;
	// defaults to 10 (link speed) if zero.
	LocalRate float64
	// Horizon stops the simulation at this time even if flows remain;
	// zero means run to completion of all finite flows.
	Horizon float64
	// Sample, when set, is called at every event boundary with the
	// current time and per-connection rates (valid until the next call).
	Sample func(t float64, connRates []float64)

	// Graceful switches starved finite connections from erroring the run
	// to stalling: a connection whose every subflow sits at zero rate is
	// parked and retries with bounded exponential backoff, accruing
	// StallTime until a topology event revives it. Schedule sets this
	// automatically; it can also be enabled for static runs.
	Graceful bool
	// RetryBase and RetryMax bound the stall-retry backoff in seconds
	// (the RTO-style doubling of a transport that lost its path); zero
	// values default to 1 ms and 256 ms.
	RetryBase, RetryMax float64

	// Rec, when set, receives the run's sim-time flight-recorder events
	// (flow start/stall/reroute/retire/disconnect plus one event per
	// allocation round). Concurrent simulations must use distinct
	// tracks so each stream stays deterministic; nil costs one branch
	// per would-be event.
	Rec *recorder.Track

	events []TopoEvent
}

// NewSim creates a simulation over links with the given capacities.
// Capacities are validated when the simulation runs: NaN or negative
// entries fail Run with a descriptive error instead of propagating NaN
// rates through the allocator.
func NewSim(caps []float64, specs []ConnSpec) *Sim {
	return &Sim{caps: caps, specs: specs, LocalRate: 10}
}

// Schedule installs mid-run topology events, sorted by time (ties keep
// argument order), and enables graceful degradation — scheduled failures
// mean paths can die mid-run, which must stall flows rather than abort
// the whole experiment.
func (s *Sim) Schedule(events []TopoEvent) {
	s.events = append(s.events[:0:0], events...)
	sort.SliceStable(s.events, func(a, b int) bool { return s.events[a].Time < s.events[b].Time })
	s.Graceful = true
}

func (s *Sim) retryBounds() (base, max float64) {
	base, max = s.RetryBase, s.RetryMax
	if base <= 0 {
		base = 1e-3
	}
	if max <= 0 {
		max = 0.256
	}
	if max < base {
		max = base
	}
	return base, max
}

// validateSpec rejects the spec values the seed core silently accepted
// and then looped or NaN-poisoned on: NaN sizes and weights, negative
// weights, non-finite arrivals.
func validateSpec(i int, sp ConnSpec, graceful bool) error {
	if len(sp.Paths) == 0 && !graceful {
		return fmt.Errorf("flowsim: connection %d has no paths", i)
	}
	if math.IsNaN(sp.Bits) || sp.Bits <= 0 {
		return fmt.Errorf("flowsim: connection %d has size %v", i, sp.Bits)
	}
	if math.IsNaN(sp.Weight) || sp.Weight < 0 {
		return fmt.Errorf("flowsim: connection %d has weight %v", i, sp.Weight)
	}
	if math.IsNaN(sp.Arrival) || math.IsInf(sp.Arrival, 0) {
		return fmt.Errorf("flowsim: connection %d has arrival %v", i, sp.Arrival)
	}
	return nil
}

// mergeIDs merges sorted batch into sorted ids using scratch as the
// destination, returning the merged slice and the now-free old backing
// array. IDs are unique across the two inputs.
func mergeIDs(ids, batch, scratch []int32) (merged, free []int32) {
	out := scratch[:0]
	i, j := 0, 0
	for i < len(ids) && j < len(batch) {
		if ids[i] < batch[j] {
			out = append(out, ids[i])
			i++
		} else {
			out = append(out, batch[j])
			j++
		}
	}
	out = append(out, ids[i:]...)
	out = append(out, batch[j:]...)
	return out, ids[:0]
}

// Run executes the simulation and returns per-connection results in spec
// order.
func (s *Sim) Run() ([]ConnResult, error) {
	n := len(s.specs)
	results := make([]ConnResult, n)
	if err := validateCaps(s.caps); err != nil {
		return nil, err
	}
	remaining := make([]float64, n)
	paths := make([][][]int, n)
	order := make([]int, n)
	for i, sp := range s.specs {
		if err := validateSpec(i, sp, s.Graceful); err != nil {
			return nil, err
		}
		results[i] = ConnResult{Start: sp.Arrival, Finish: math.Inf(1), Bits: sp.Bits}
		remaining[i] = sp.Bits
		paths[i] = sp.Paths
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return s.specs[order[a]].Arrival < s.specs[order[b]].Arrival
	})

	// Capacities are private: topology events mutate them mid-run. The
	// allocator core aliases this slice, so SetCaps writes land without
	// a rebuild.
	caps := append([]float64(nil), s.caps...)
	retryBase, retryMax := s.retryBounds()
	st := newAllocState(caps, n)

	// Dense active set: sorted connection IDs plus a membership flag.
	// Arrivals merge in sorted batches, retirements compact in place —
	// no per-event re-sort, no map iteration anywhere.
	activeIDs := make([]int32, 0, 64)
	idScratch := make([]int32, 0, 64)
	admitBatch := make([]int32, 0, 16)
	isActive := make([]bool, n)
	run := make([]int32, 0, 64)
	runRates := make([]float64, 0, 64)
	var connRates []float64 // full per-connection vector, Sample only
	if s.Sample != nil {
		connRates = make([]float64, n)
	}
	stalled := make([]bool, n)  // parked: excluded from allocation
	retrying := make([]bool, n) // woken for a backoff probe this instant
	backoff := make([]float64, n)
	nextRetry := make([]float64, n)
	nextArrival := 0
	nextEvent := 0
	t := 0.0
	if n == 0 {
		return results, nil
	}
	// Handles are resolved once per run; nil (disabled) handles cost one
	// predictable branch per use.
	events := telemetry.C("flowsim_events_total")
	completed := telemetry.C("flowsim_flows_completed_total")
	fct := telemetry.H("flowsim_fct_seconds")
	stalls := telemetry.C("flowsim_stalls_total")
	reroutes := telemetry.C("flowsim_reroutes_total")
	disconnected := telemetry.C("flowsim_disconnected_total")
	stallHist := telemetry.H("flowsim_stall_seconds")

	// finish records stall histograms once and returns the results.
	finish := func() []ConnResult {
		for i := range results {
			if results[i].StallTime > 0 {
				stallHist.Observe(results[i].StallTime)
			}
		}
		return results
	}
	// stall parks connection c at time now: a fresh stall starts the
	// backoff at its base; a failed retry probe doubles it up to the cap.
	stall := func(c int32, now float64) {
		if stalled[c] {
			return
		}
		stalled[c] = true
		if retrying[c] {
			backoff[c] *= 2
			if backoff[c] > retryMax {
				backoff[c] = retryMax
			}
		} else {
			backoff[c] = retryBase
			stalls.Inc()
			s.Rec.Emit(recorder.Event{T: now, Kind: recorder.FlowStall, ID: int(c)})
		}
		retrying[c] = false
		nextRetry[c] = now + backoff[c]
	}

	for {
		events.Inc()
		// Apply topology events due at the current time, in schedule order.
		for nextEvent < len(s.events) && s.events[nextEvent].Time <= t+1e-12 {
			ev := s.events[nextEvent]
			nextEvent++
			//flatvet:ordered writes to distinct link slots; order-independent
			for id, cp := range ev.SetCaps {
				if id < 0 || id >= len(caps) {
					return nil, fmt.Errorf("flowsim: event at t=%v sets capacity of link %d of %d", ev.Time, id, len(caps))
				}
				if math.IsNaN(cp) || cp < 0 {
					return nil, fmt.Errorf("flowsim: event at t=%v sets link %d capacity %v (want >= 0)", ev.Time, id, cp)
				}
				caps[id] = cp
			}
			// Reroutes apply in ascending connection order (bookkeeping
			// only — path replacement is order-independent, counters are
			// not).
			recs := make([]int, 0, len(ev.Reroute))
			for c := range ev.Reroute {
				recs = append(recs, c)
			}
			sort.Ints(recs)
			for _, c := range recs {
				if c < 0 || c >= n {
					return nil, fmt.Errorf("flowsim: event at t=%v reroutes connection %d of %d", ev.Time, c, n)
				}
				if !math.IsInf(results[c].Finish, 1) {
					continue // already completed
				}
				paths[c] = ev.Reroute[c]
				if isActive[c] {
					if err := st.setPaths(c, c, s.specs[c].Weight, paths[c]); err != nil {
						return nil, err
					}
				}
				results[c].Reroutes++
				reroutes.Inc()
				s.Rec.Emit(recorder.Event{T: ev.Time, Kind: recorder.FlowReroute, ID: c, A: int64(len(paths[c]))})
			}
		}
		// Admit arrivals at the current time.
		admitBatch = admitBatch[:0]
		for nextArrival < n && s.specs[order[nextArrival]].Arrival <= t+1e-12 {
			c := order[nextArrival]
			if err := st.admit(c, c, s.specs[c].Weight, paths[c]); err != nil {
				return nil, err
			}
			isActive[c] = true
			admitBatch = append(admitBatch, int32(c))
			nextArrival++
			s.Rec.Emit(recorder.Event{T: s.specs[c].Arrival, Kind: recorder.FlowStart, ID: c, A: int64(len(paths[c]))})
		}
		if len(admitBatch) > 0 {
			// order is stable by arrival, not by ID: same-instant batches
			// can arrive out of ID order.
			sort.Slice(admitBatch, func(a, b int) bool { return admitBatch[a] < admitBatch[b] })
			activeIDs, idScratch = mergeIDs(activeIDs, admitBatch, idScratch)
		}
		// Wake stalled connections whose retry timer fired; the allocation
		// below decides whether the probe succeeds.
		for _, c := range activeIDs {
			if stalled[c] && nextRetry[c] <= t+1e-12 {
				stalled[c] = false
				retrying[c] = true
			}
		}
		if len(activeIDs) == 0 {
			if nextArrival >= n {
				break
			}
			// Jump to whichever comes first: the next arrival or the next
			// topology event (events still apply with no flows running,
			// keeping capacities and path sets current for later
			// arrivals).
			jump := s.specs[order[nextArrival]].Arrival
			if nextEvent < len(s.events) && s.events[nextEvent].Time < jump {
				jump = s.events[nextEvent].Time
			}
			t = jump
			continue
		}
		// Allocate rates for the running (non-stalled) set.
		run = run[:0]
		for _, c := range activeIDs {
			if !stalled[c] {
				run = append(run, c)
			}
		}
		st.allocate(run)
		runRates = runRates[:0]
		for _, c := range run {
			runRates = append(runRates, st.rate(int(c), s.LocalRate))
		}
		s.Rec.Emit(recorder.Event{T: t, Kind: recorder.AllocRound, A: int64(len(run)), B: int64(len(activeIDs))})
		// Graceful degradation: finite connections at zero rate lost every
		// path. While future events could revive them they park and retry;
		// once no event or arrival remains, nothing can — park them for
		// good (infinite retry timer), so they accrue stall time for the
		// rest of the simulated span instead of burning retry probes.
		if s.Graceful {
			noFuture := nextArrival >= n && nextEvent >= len(s.events)
			starved := false
			for ri, c := range run {
				if math.IsInf(remaining[c], 1) {
					continue
				}
				if runRates[ri] <= 1e-15 {
					if noFuture {
						stalled[c] = true
						retrying[c] = false
						nextRetry[c] = math.Inf(1)
						disconnected.Inc()
						s.Rec.Emit(recorder.Event{T: t, Kind: recorder.FlowDisconnect, ID: int(c)})
					} else {
						stall(c, t)
					}
					starved = true
					continue
				}
				retrying[c] = false // probe succeeded: connection resumed
			}
			if starved {
				continue // reallocate without the just-parked connections
			}
		}
		if s.Sample != nil {
			for i := range connRates {
				connRates[i] = 0
			}
			for ri, c := range run {
				connRates[c] = runRates[ri]
			}
			s.Sample(t, connRates)
		}
		// Next event: earliest completion, arrival, topology event, or
		// stall-retry probe.
		nextT := math.Inf(1)
		if nextArrival < n {
			nextT = s.specs[order[nextArrival]].Arrival
		}
		if nextEvent < len(s.events) && s.events[nextEvent].Time < nextT {
			nextT = s.events[nextEvent].Time
		}
		for _, c := range activeIDs {
			if stalled[c] && nextRetry[c] < nextT {
				nextT = nextRetry[c]
			}
		}
		completing := int32(-1)
		for ri, c := range run {
			r := runRates[ri]
			if math.IsInf(remaining[c], 1) || r <= 1e-15 {
				continue
			}
			if fin := t + remaining[c]/r; fin < nextT {
				nextT = fin
				completing = c
			}
		}
		if s.Horizon > 0 && nextT > s.Horizon {
			// Stop at the horizon; account progress (and stall) up to it.
			dt := s.Horizon - t
			for ri, c := range run {
				remaining[c] -= runRates[ri] * dt
			}
			for _, c := range activeIDs {
				if stalled[c] {
					results[c].StallTime += dt
				}
			}
			return finish(), nil
		}
		if math.IsInf(nextT, 1) {
			// Only persistent or starved flows remain. Stalled
			// connections sit at rate zero by construction, so the
			// starvation check only concerns the running set.
			for ri, c := range run {
				if runRates[ri] <= 1e-15 && !math.IsInf(remaining[c], 1) {
					return nil, fmt.Errorf("flowsim: connection %d starved (disconnected path set?)", c)
				}
			}
			return finish(), nil
		}
		dt := nextT - t
		for ri, c := range run {
			remaining[c] -= runRates[ri] * dt
		}
		for _, c := range activeIDs {
			if stalled[c] {
				results[c].StallTime += dt
			}
		}
		t = nextT
		// Retire completed connections (the chosen one plus any that hit
		// zero within tolerance).
		anyRetired := false
		for _, c := range run {
			if !isActive[c] {
				continue
			}
			if !math.IsInf(remaining[c], 1) && (c == completing || remaining[c] <= 1e-6) {
				results[c].Finish = t
				isActive[c] = false
				st.retire(int(c), int(c))
				anyRetired = true
				completed.Inc()
				fct.Observe(results[c].FCT())
				s.Rec.Emit(recorder.Event{T: t, Kind: recorder.FlowRetire, ID: int(c),
					V: results[c].FCT(), A: int64(results[c].Reroutes)})
			}
		}
		if anyRetired {
			kept := activeIDs[:0]
			for _, c := range activeIDs {
				if isActive[c] {
					kept = append(kept, c)
				}
			}
			activeIDs = kept
		}
	}
	return finish(), nil
}

// StaticRates computes the steady-state connection rates if every
// connection were active simultaneously — the allocation used for the
// throughput experiments of §5.1 where all flows run concurrently.
func StaticRates(caps []float64, specs []ConnSpec, localRate float64) ([]float64, error) {
	if err := validateCaps(caps); err != nil {
		return nil, err
	}
	if localRate <= 0 {
		localRate = 10
	}
	st := newAllocState(caps, len(specs))
	run := make([]int32, len(specs))
	for i, sp := range specs {
		if len(sp.Paths) == 0 {
			return nil, fmt.Errorf("flowsim: connection %d has no paths", i)
		}
		if err := st.admit(i, i, sp.Weight, sp.Paths); err != nil {
			return nil, err
		}
		run[i] = int32(i)
	}
	st.allocate(run)
	out := make([]float64, len(specs))
	for i := range specs {
		out[i] = st.rate(i, localRate)
	}
	return out, nil
}
