package flowsim

import (
	"testing"
)

// FuzzScheduleRun feeds byte-derived (ConnSpec list, TopoEvent list)
// scenarios — stalls, retries, reroutes, disconnects, repairs, horizon
// cutoffs, capacity zeroing, loopback and duplicate-link paths — through
// both simulator cores and requires identical outcomes. The decoder
// quantizes every value into the domain both cores define behavior for
// (finite sizes, non-negative capacities), so any divergence is a core
// bug, not an input-validation asymmetry. The seed corpus under
// testdata/fuzz covers each event kind; CI runs a randomized burst on
// top (see .github/workflows/ci.yml).

// fzReader draws bounded values from the fuzz input, treating exhausted
// input as zeros so every byte string decodes to a valid scenario.
type fzReader struct {
	data []byte
	i    int
}

func (f *fzReader) byte() byte {
	if f.i >= len(f.data) {
		return 0
	}
	b := f.data[f.i]
	f.i++
	return b
}

func (f *fzReader) intn(n int) int { return int(f.byte()) % n }

func (f *fzReader) decodePaths(nLinks int) [][]int {
	np := f.intn(4)
	paths := make([][]int, 0, np)
	for p := 0; p < np; p++ {
		hops := f.intn(4) // 0 hops = loopback subflow
		links := make([]int, hops)
		for h := range links {
			links[h] = f.intn(nLinks) // duplicates allowed
		}
		paths = append(paths, links)
	}
	return paths
}

// decodeScenario turns fuzz bytes into a runnable churn workload. Every
// scenario is scheduled (graceful mode), so empty path sets stall rather
// than error.
func decodeScenario(data []byte) diffScenario {
	f := &fzReader{data: data}
	nLinks := 1 + f.intn(12)
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = float64(f.intn(16)) // 0 is legal: a dead link
	}
	nConns := 1 + f.intn(16)
	specs := make([]ConnSpec, nConns)
	weights := [4]float64{0, 0.5, 1, 2}
	for i := range specs {
		specs[i] = ConnSpec{
			Paths:   f.decodePaths(nLinks),
			Bits:    0.25 * float64(1+f.intn(64)),
			Arrival: 0.25 * float64(f.intn(16)),
			Weight:  weights[f.intn(4)],
		}
	}
	sc := diffScenario{caps: caps, specs: specs}
	nEvents := f.intn(8)
	capVals := [4]float64{0, 0, 5, 10}
	for e := 0; e < nEvents; e++ {
		ev := TopoEvent{Time: 0.25 * float64(f.intn(24))}
		switch f.intn(3) {
		case 0, 1:
			ev.SetCaps = map[int]float64{}
			for k := 0; k < 1+f.intn(3); k++ {
				ev.SetCaps[f.intn(nLinks)] = capVals[f.intn(4)]
			}
		case 2:
			ev.Reroute = map[int][][]int{}
			for k := 0; k < 1+f.intn(3); k++ {
				ev.Reroute[f.intn(nConns)] = f.decodePaths(nLinks)
			}
		}
		sc.events = append(sc.events, ev)
	}
	if sc.events == nil {
		sc.events = []TopoEvent{} // still Schedule: graceful mode on
	}
	sc.horizon = [3]float64{0, 4, 8}[f.intn(3)]
	return sc
}

func FuzzScheduleRun(f *testing.F) {
	// One seed per behavior class: static multipath, failures with
	// repair, reroute/disconnect churn, horizon cutoff, dense mixed load.
	f.Add([]byte{})
	f.Add([]byte("\x05\x03\x07\x02\x01\x02\x00\x01\x08\x10\x01\x00"))
	f.Add([]byte("flat-tree convertible fabrics"))
	f.Add([]byte("\x0b\x0f\x00\x05\x08\x04\x02\x02\x01\x00\x03\x01\x02\x02\x06\x09\x01\x05\x02\x02\x00\x00\x02\x01\x01\x00\x02\x02\x01\x07"))
	f.Add([]byte("\x03\x00\x00\x00\x02\x01\x01\x00\x01\x01\x20\x04\x01\x06\x02\x00\x01\x02\x01\x01\x01\x03\x02\x01\x00\x02"))
	f.Fuzz(func(t *testing.T, data []byte) {
		sc := decodeScenario(data)
		got, gotErr := sc.sim().Run()
		want, wantErr := sc.sim().runReference()
		requireIdentical(t, 0, got, want, gotErr, wantErr)
	})
}
