package flowsim

import (
	"fmt"
	"math"
	"slices"

	"flattree/internal/parallel"
	"flattree/internal/telemetry"
)

// This file is the struct-of-arrays allocator core. The seed allocator
// (reference.go) rebuilt the subflow table and every per-link index on
// each call and re-scanned all of caps per progressive-filling round; at
// 10M flows those rebuilds dominate. The SoA core keeps connections in
// dense parallel arrays indexed by slot, subflow link lists in one flat
// arena, and per-link membership incrementally maintained across calls,
// so one allocation touches only the subflows that run and the links
// they load.
//
// Determinism contract: the core reproduces the reference allocator
// bit-for-bit. Every float operates in the reference's order — per-link
// weight sums accumulate over members in ascending (connection, subflow)
// order, the bottleneck is the first strict minimum of remaining/weight
// in ascending link order, drains are per-link independent, and freezes
// walk saturated links ascending with each subflow's own link list in
// path order. The sharded bottleneck search reduces per-shard first
// minima in ascending shard order preferring strictly smaller values,
// which equals the serial first-minimum for any shard count — output
// bytes are invariant across -workers.

// shardMinLinks is the loaded-link count at which one round's bottleneck
// search and drain fan out over the parallel pool. Below it the serial
// scan wins: a round over a few thousand links is cheaper than a batch
// dispatch.
const shardMinLinks = 4096

// member is one subflow's occurrence on a link, keyed for the reference
// iteration order: ascending external connection ID, then subflow index
// (which follows path order within a connection).
type member struct {
	id int32 // external connection ID
	sf int32 // subflow index into the sf* arrays
}

// allocState is the allocator's persistent state. Connections occupy
// integer slots (dense, reusable via a caller-held free list); each slot
// owns a contiguous range of subflows, and each subflow a contiguous
// range of the link arena. Per-call scratch (epoch marks, loaded-link
// list, shard minima) is pooled here so steady-state allocation does not
// allocate.
type allocState struct {
	caps []float64 // aliased from the caller; events mutate it in place

	// Per connection slot: owned subflow range (cnt live, cap reserved)
	// and owned arena range.
	subOff, subCnt, subCap []int32
	arenaOff, arenaCap     []int32

	// Per subflow, parallel arrays.
	sfW       []float64 // fair-share weight (connection weight / paths)
	sfRate    []float64 // allocated rate, valid after allocate for marked subflows
	sfMark    []uint64  // epoch: participates in the current allocate call
	sfFrozen  []uint64  // epoch: frozen (rate final) in the current call
	sfLinkOff []int32
	sfLinkCnt []int32

	// arena holds every subflow's link list back to back, preserving
	// path order (duplicates included — the reference decrements once
	// per occurrence).
	arena []int32

	// Per link: membership sorted by (id, sf) with occurrence order
	// preserved among equals, plus the round state the reference kept in
	// per-call slices.
	members    [][]member
	inMem      []bool
	memLinks   []int32 // links with (possibly stale) membership, sorted when !memDirty
	memDirty   bool
	linkWeight []float64
	linkCount  []int32
	remaining  []float64

	// Pooled round scratch.
	roundLoaded []int32
	roundSat    []int32
	shardBest   []float64
	shardLink   []int32
	shardDead   []int
	shardSat    [][]int32
	epoch       uint64

	// Abandoned-range accounting drives compaction in streaming runs.
	sfWaste, arenaWaste int

	allocs *telemetry.Counter
	rounds *telemetry.Counter
}

// newAllocState builds an empty core over the given capacities (aliased,
// not copied — topology events mutate the slice in place) with room for
// nSlots connection slots.
func newAllocState(caps []float64, nSlots int) *allocState {
	return &allocState{
		caps:       caps,
		subOff:     make([]int32, nSlots),
		subCnt:     make([]int32, nSlots),
		subCap:     make([]int32, nSlots),
		arenaOff:   make([]int32, nSlots),
		arenaCap:   make([]int32, nSlots),
		members:    make([][]member, len(caps)),
		inMem:      make([]bool, len(caps)),
		memLinks:   make([]int32, 0, 64),
		linkWeight: make([]float64, len(caps)),
		linkCount:  make([]int32, len(caps)),
		remaining:  make([]float64, len(caps)),
		allocs:     telemetry.C("flowsim_allocations_total"),
		rounds:     telemetry.C("flowsim_alloc_rounds_total"),
	}
}

// reserveBulk pre-sizes the dense arrays for a one-shot bulk admission of
// nSubs single-path subflows with nArena total link occurrences, occ[l] of
// them on link l. Per-link membership is carved out of one shared backing
// array at exact capacity, so the admission loop never reallocates. Only
// meaningful on a fresh state (MaxMinRates); long-lived Sim states grow
// organically instead.
func (a *allocState) reserveBulk(nSubs, nArena int, occ []int32) {
	a.sfW = make([]float64, 0, nSubs)
	a.sfRate = make([]float64, 0, nSubs)
	a.sfMark = make([]uint64, 0, nSubs)
	a.sfFrozen = make([]uint64, 0, nSubs)
	a.sfLinkOff = make([]int32, 0, nSubs)
	a.sfLinkCnt = make([]int32, 0, nSubs)
	a.arena = make([]int32, 0, nArena)
	backing := make([]member, nArena)
	pos, nLoaded := 0, 0
	for l, c := range occ {
		if c == 0 {
			continue
		}
		nLoaded++
		a.members[l] = backing[pos : pos : pos+int(c)]
		pos += int(c)
	}
	a.memLinks = make([]int32, 0, nLoaded)
	a.roundLoaded = make([]int32, 0, nLoaded)
}

// growSlots extends the per-slot arrays to hold at least n slots.
func (a *allocState) growSlots(n int) {
	for len(a.subOff) < n {
		a.subOff = append(a.subOff, 0)
		a.subCnt = append(a.subCnt, 0)
		a.subCap = append(a.subCap, 0)
		a.arenaOff = append(a.arenaOff, 0)
		a.arenaCap = append(a.arenaCap, 0)
	}
}

func memLess(x, y member) bool {
	return x.id < y.id || (x.id == y.id && x.sf < y.sf)
}

// insertMember adds one link occurrence, keeping members[l] sorted by
// (id, sf). Upper-bound insertion keeps equal keys (duplicate links in
// one path) in occurrence order, matching the reference's per-path
// decrement order.
//
//flatvet:hotpath runs once per link occurrence of every admitted connection
func (a *allocState) insertMember(l int32, m member) {
	if !a.inMem[l] {
		a.inMem[l] = true
		a.memLinks = append(a.memLinks, l)
		a.memDirty = true
	}
	mem := a.members[l]
	// Admissions overwhelmingly arrive in ascending ID order (bulk
	// MaxMinRates calls always, streaming runs nearly so), making the
	// upper-bound position the end of the list.
	if n := len(mem); n == 0 || !memLess(m, mem[n-1]) {
		a.members[l] = append(mem, m)
		return
	}
	lo, hi := 0, len(mem)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if memLess(m, mem[mid]) {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	mem = append(mem, member{})
	copy(mem[lo+1:], mem[lo:])
	mem[lo] = m
	a.members[l] = mem
}

// removeMember deletes the first occurrence equal to (id, sf) from l's
// membership. The link stays on memLinks until the next allocate sweeps
// it out.
//
//flatvet:hotpath runs once per link occurrence of every retired connection
func (a *allocState) removeMember(l, id, sf int32) {
	mem := a.members[l]
	m := member{id: id, sf: sf}
	lo, hi := 0, len(mem)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if memLess(mem[mid], m) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	copy(mem[lo:], mem[lo+1:])
	a.members[l] = mem[:len(mem)-1]
}

// admit installs connection id's path set into slot. The slot must be
// empty (fresh, or retired first). Weight follows ConnSpec: the total is
// split evenly across paths, zero defaults to 1. Empty path sets are
// legal (a disconnected connection holds no subflows).
func (a *allocState) admit(slot, id int, weight float64, paths [][]int) error {
	if weight == 0 {
		weight = 1
	}
	np := int32(len(paths))
	if np == 0 {
		a.subCnt[slot] = 0
		return nil
	}
	per := weight / float64(np)
	if !(per > 0) {
		return fmt.Errorf("flowsim: connection %d has subflow weight %v", id, per)
	}
	nl := 0
	for _, p := range paths {
		for _, l := range p {
			if l < 0 || l >= len(a.caps) {
				return fmt.Errorf("flowsim: connection %d references link %d of %d", id, l, len(a.caps))
			}
		}
		nl += len(p)
	}
	off := a.subOff[slot]
	if a.subCap[slot] < np {
		a.sfWaste += int(a.subCap[slot])
		off = int32(len(a.sfW))
		a.subOff[slot] = off
		a.subCap[slot] = np
		// Extend length only — the per-path loop below writes every
		// field of every new subflow, so no zeroing pass is needed.
		n := int(np)
		a.sfW = slices.Grow(a.sfW, n)[:len(a.sfW)+n]
		a.sfRate = slices.Grow(a.sfRate, n)[:len(a.sfRate)+n]
		a.sfMark = slices.Grow(a.sfMark, n)[:len(a.sfMark)+n]
		a.sfFrozen = slices.Grow(a.sfFrozen, n)[:len(a.sfFrozen)+n]
		a.sfLinkOff = slices.Grow(a.sfLinkOff, n)[:len(a.sfLinkOff)+n]
		a.sfLinkCnt = slices.Grow(a.sfLinkCnt, n)[:len(a.sfLinkCnt)+n]
	}
	a.subCnt[slot] = np
	pos := a.arenaOff[slot]
	if a.arenaCap[slot] < int32(nl) {
		a.arenaWaste += int(a.arenaCap[slot])
		pos = int32(len(a.arena))
		a.arenaOff[slot] = pos
		a.arenaCap[slot] = int32(nl)
		a.arena = slices.Grow(a.arena, nl)[:len(a.arena)+nl]
	}
	for pi, p := range paths {
		sf := off + int32(pi)
		a.sfW[sf] = per
		a.sfRate[sf] = 0
		a.sfMark[sf], a.sfFrozen[sf] = 0, 0
		a.sfLinkOff[sf] = pos
		a.sfLinkCnt[sf] = int32(len(p))
		for _, l := range p {
			a.arena[pos] = int32(l)
			pos++
			a.insertMember(int32(l), member{id: int32(id), sf: sf})
		}
	}
	return nil
}

// retire removes connection id's memberships and empties its slot. The
// slot keeps its reserved ranges for reuse by a later admit.
//
//flatvet:hotpath streaming retire path, once per finished flow in 10M-flow runs
func (a *allocState) retire(slot, id int) {
	off, cnt := a.subOff[slot], a.subCnt[slot]
	for j := int32(0); j < cnt; j++ {
		sf := off + j
		lo := a.sfLinkOff[sf]
		for _, l := range a.arena[lo : lo+a.sfLinkCnt[sf]] {
			a.removeMember(l, int32(id), sf)
		}
	}
	a.subCnt[slot] = 0
}

// setPaths replaces connection id's path set in place (a reroute event).
func (a *allocState) setPaths(slot, id int, weight float64, paths [][]int) error {
	a.retire(slot, id)
	return a.admit(slot, id, weight, paths)
}

// allocate computes weighted max-min fair rates for the given connection
// slots by progressive filling. Slots must be sorted by ascending
// external ID — the order that fixes every float accumulation. Rates are
// read back per slot with rate(); per-subflow values stay in sfRate
// (loopback subflows excluded — they are the caller's localRate).
//
//flatvet:hotpath the allocation round; steady state must not allocate
func (a *allocState) allocate(run []int32) {
	a.epoch++
	ep := a.epoch
	nActive := 0
	for _, slot := range run {
		off, cnt := a.subOff[slot], a.subCnt[slot]
		for j := int32(0); j < cnt; j++ {
			sf := off + j
			if a.sfLinkCnt[sf] == 0 {
				continue // loopback: unconstrained by the fabric
			}
			a.sfMark[sf] = ep
			a.sfRate[sf] = 0
			nActive++
		}
	}

	// Build the round state for loaded links only. memLinks is swept in
	// the same pass: links whose membership emptied since the last call
	// drop out here.
	if a.memDirty {
		slices.Sort(a.memLinks)
		a.memDirty = false
	}
	loaded := a.roundLoaded[:0]
	kept := a.memLinks[:0]
	for _, l := range a.memLinks {
		mem := a.members[l]
		if len(mem) == 0 {
			a.inMem[l] = false
			continue
		}
		kept = append(kept, l)
		w := 0.0
		cnt := int32(0)
		for i := range mem {
			if a.sfMark[mem[i].sf] == ep {
				w += a.sfW[mem[i].sf]
				cnt++
			}
		}
		if cnt == 0 {
			continue
		}
		a.linkWeight[l] = w
		a.linkCount[l] = cnt
		a.remaining[l] = a.caps[l]
		loaded = append(loaded, l)
	}
	a.memLinks = kept

	level := 0.0 // current water level (rate per unit weight)
	rounds := int64(0)
	for nActive > 0 {
		rounds++
		// Find the link that saturates next: smallest additional level
		// Δ = remaining[l] / linkWeight[l], first strict minimum in
		// ascending link order — loaded is sorted, and links whose load
		// froze are skipped by count, so this scan equals the
		// reference's walk over all of caps. The serial scan compacts
		// dead links (count zero) out of loaded as it goes; the sharded
		// scan counts them and compacts in a follow-up pass once they
		// dominate, so both keep later rounds touching only links still
		// filling.
		bottleneck := int32(-1)
		best := math.Inf(1)
		if len(loaded) >= shardMinLinks {
			best, bottleneck, loaded = a.shardedBottleneck(loaded)
		} else {
			kept := loaded[:0]
			for _, l := range loaded {
				if a.linkCount[l] == 0 {
					continue
				}
				kept = append(kept, l)
				if d := a.remaining[l] / a.linkWeight[l]; d < best {
					best = d
					bottleneck = l
				}
			}
			loaded = kept
		}
		if bottleneck < 0 {
			break
		}
		level += best
		// Drain every loaded link by the growth of this round, collecting
		// the links that just saturated (remaining at or under the 1e-12
		// threshold). Each link's update is independent, so sharding
		// cannot reorder any float operation, and per-shard saturation
		// lists concatenate in shard order — ascending link order either
		// way, since loaded is sorted.
		sat := a.roundSat[:0]
		if len(loaded) >= shardMinLinks {
			sat = a.shardedDrain(loaded, best, sat)
		} else {
			// The serial search above already compacted loaded, so every
			// entry has live members here.
			for _, l := range loaded {
				a.remaining[l] -= best * a.linkWeight[l]
				if a.remaining[l] < 0 {
					a.remaining[l] = 0
				}
				if a.remaining[l] <= 1e-12 {
					sat = append(sat, l)
				}
			}
		}
		// The bottleneck always freezes, whether or not the residual
		// subtraction left it within the threshold; splice it into its
		// ascending position.
		bi, found := slices.BinarySearch(sat, bottleneck)
		if !found {
			sat = append(sat, 0)
			copy(sat[bi+1:], sat[bi:])
			sat[bi] = bottleneck
		}
		// Freeze subflows crossing the saturated links, ascending link
		// order, members in (connection, subflow) order — exactly the
		// subset of the reference's full sweep that does any work. The
		// count guard re-checks at processing time: an earlier freeze in
		// this round may have emptied a later saturated link.
		frozeAny := false
		for _, l := range sat {
			if a.linkCount[l] == 0 {
				continue
			}
			mem := a.members[l]
			for i := range mem {
				sf := mem[i].sf
				if a.sfMark[sf] != ep || a.sfFrozen[sf] == ep {
					continue
				}
				a.sfFrozen[sf] = ep
				nActive--
				frozeAny = true
				w := a.sfW[sf]
				a.sfRate[sf] = w * level
				lo := a.sfLinkOff[sf]
				for _, sl := range a.arena[lo : lo+a.sfLinkCnt[sf]] {
					a.linkWeight[sl] -= w
					a.linkCount[sl]--
					if a.linkCount[sl] == 0 {
						a.linkWeight[sl] = 0
					}
				}
			}
		}
		a.roundSat = sat[:0]
		if !frozeAny {
			// Defensive: cannot happen (the bottleneck always freezes),
			// but never spin.
			break
		}
	}
	a.roundLoaded = loaded[:0]
	a.allocs.Inc()
	a.rounds.Add(rounds)
}

// shardCount splits n loaded links over the default pool, keeping shards
// at least 1024 links so the dispatch amortizes.
func shardCount(n int) int {
	shards := parallel.Default().Workers()
	if max := n / 1024; shards > max {
		shards = max
	}
	if shards < 1 {
		shards = 1
	}
	return shards
}

// shardedBottleneck is the fanned-out bottleneck search: each shard finds
// its first strict minimum, and the reduction walks shards in ascending
// index preferring strictly smaller values — exactly the serial first
// strict minimum, for any shard count and any worker count. Dead links
// (count zero) are tallied per shard and compacted out of loaded once
// they outnumber live ones; compaction moves no floats, so output bytes
// stay invariant across worker counts.
func (a *allocState) shardedBottleneck(loaded []int32) (float64, int32, []int32) {
	shards := shardCount(len(loaded))
	if shards == 1 {
		best, bottleneck := math.Inf(1), int32(-1)
		kept := loaded[:0]
		for _, l := range loaded {
			if a.linkCount[l] == 0 {
				continue
			}
			kept = append(kept, l)
			if d := a.remaining[l] / a.linkWeight[l]; d < best {
				best = d
				bottleneck = l
			}
		}
		return best, bottleneck, kept
	}
	for len(a.shardBest) < shards {
		a.shardBest = append(a.shardBest, 0)
		a.shardLink = append(a.shardLink, 0)
		a.shardDead = append(a.shardDead, 0)
	}
	chunk := (len(loaded) + shards - 1) / shards
	parallel.Default().ForEach(shards, func(si int) {
		lo := si * chunk
		hi := min(lo+chunk, len(loaded))
		b, bl := math.Inf(1), int32(-1)
		dead := 0
		for _, l := range loaded[lo:hi] {
			if a.linkCount[l] == 0 {
				dead++
				continue
			}
			if d := a.remaining[l] / a.linkWeight[l]; d < b {
				b = d
				bl = l
			}
		}
		a.shardBest[si], a.shardLink[si], a.shardDead[si] = b, bl, dead
	})
	best, bottleneck := math.Inf(1), int32(-1)
	dead := 0
	for si := 0; si < shards; si++ {
		dead += a.shardDead[si]
		if a.shardLink[si] >= 0 && a.shardBest[si] < best {
			best = a.shardBest[si]
			bottleneck = a.shardLink[si]
		}
	}
	if dead*2 > len(loaded) {
		kept := loaded[:0]
		for _, l := range loaded {
			if a.linkCount[l] > 0 {
				kept = append(kept, l)
			}
		}
		loaded = kept
	}
	return best, bottleneck, loaded
}

// shardedDrain fans the per-link drain out over the pool, appending links
// that just saturated to per-shard lists; every link's update reads and
// writes only that link's state, so the result is identical to the serial
// loop, and concatenating the shard lists in shard order reproduces the
// serial ascending collection order.
func (a *allocState) shardedDrain(loaded []int32, best float64, sat []int32) []int32 {
	shards := shardCount(len(loaded))
	for len(a.shardSat) < shards {
		a.shardSat = append(a.shardSat, nil)
	}
	chunk := (len(loaded) + shards - 1) / shards
	parallel.Default().ForEach(shards, func(si int) {
		lo := si * chunk
		hi := min(lo+chunk, len(loaded))
		ss := a.shardSat[si][:0]
		for _, l := range loaded[lo:hi] {
			if a.linkCount[l] > 0 {
				a.remaining[l] -= best * a.linkWeight[l]
				if a.remaining[l] < 0 {
					a.remaining[l] = 0
				}
				if a.remaining[l] <= 1e-12 {
					ss = append(ss, l)
				}
			}
		}
		a.shardSat[si] = ss
	})
	for si := 0; si < shards; si++ {
		sat = append(sat, a.shardSat[si]...)
	}
	return sat
}

// rate sums slot's subflow rates in path order — the accumulation order
// ConnRates used — granting loopback subflows localRate.
//
//flatvet:hotpath rate readback after every allocation round
func (a *allocState) rate(slot int, localRate float64) float64 {
	off, cnt := a.subOff[slot], a.subCnt[slot]
	r := 0.0
	for j := int32(0); j < cnt; j++ {
		sf := off + j
		if a.sfLinkCnt[sf] == 0 {
			r += localRate
		} else {
			r += a.sfRate[sf]
		}
	}
	return r
}

// maybeCompact rebuilds the arenas when abandoned ranges dominate; ids
// and slots list the live connections in ascending external-ID order.
// Streaming runs call this after retiring connections so memory stays
// bounded by the live set, not the total flow count.
func (a *allocState) maybeCompact(ids []int, slots []int32) {
	if len(a.arena) < 1<<16 {
		return
	}
	if a.arenaWaste*2 < len(a.arena) && a.sfWaste*2 < len(a.sfW) {
		return
	}
	a.compact(ids, slots)
}

// compact rebuilds every dense array from the live connections, ascending
// external ID. Weights and rates are copied, never recomputed, so the
// rebuild cannot perturb a single output bit.
func (a *allocState) compact(ids []int, slots []int32) {
	nSf, nAr := 0, 0
	for _, slot := range slots {
		off, cnt := a.subOff[slot], a.subCnt[slot]
		nSf += int(cnt)
		for j := int32(0); j < cnt; j++ {
			nAr += int(a.sfLinkCnt[off+j])
		}
	}
	newW := make([]float64, 0, nSf)
	newRate := make([]float64, 0, nSf)
	newMark := make([]uint64, nSf)
	newFrozen := make([]uint64, nSf)
	newLinkOff := make([]int32, 0, nSf)
	newLinkCnt := make([]int32, 0, nSf)
	newArena := make([]int32, 0, nAr)
	for l := range a.members {
		a.members[l] = a.members[l][:0]
		a.inMem[l] = false
	}
	a.memLinks = a.memLinks[:0]
	// Snapshot the slot tables: the zeroing below mutates them in place,
	// while the sf* arrays are replaced wholesale (old backing stays
	// readable through the old* aliases).
	oldOff := append([]int32(nil), a.subOff...)
	oldCnt := append([]int32(nil), a.subCnt...)
	oldLinkOff, oldLinkCnt := a.sfLinkOff, a.sfLinkCnt
	oldW, oldRate, oldArena := a.sfW, a.sfRate, a.arena
	a.sfLinkOff, a.sfLinkCnt = newLinkOff, newLinkCnt
	for i := range a.subCap {
		a.subOff[i], a.subCnt[i], a.subCap[i] = 0, 0, 0
		a.arenaOff[i], a.arenaCap[i] = 0, 0
	}
	a.sfW, a.sfRate = newW, newRate
	a.arena = newArena
	for si, slot := range slots {
		id := int32(ids[si])
		off, cnt := oldOff[slot], oldCnt[slot]
		a.subOff[slot] = int32(len(a.sfW))
		a.subCnt[slot], a.subCap[slot] = cnt, cnt
		a.arenaOff[slot] = int32(len(a.arena))
		for j := int32(0); j < cnt; j++ {
			sf := off + j
			nsf := int32(len(a.sfW))
			a.sfW = append(a.sfW, oldW[sf])
			a.sfRate = append(a.sfRate, oldRate[sf])
			a.sfLinkOff = append(a.sfLinkOff, int32(len(a.arena)))
			a.sfLinkCnt = append(a.sfLinkCnt, oldLinkCnt[sf])
			lo := oldLinkOff[sf]
			for _, l := range oldArena[lo : lo+oldLinkCnt[sf]] {
				a.arena = append(a.arena, l)
				a.insertMember(l, member{id: id, sf: nsf})
			}
		}
		a.arenaCap[slot] = int32(len(a.arena)) - a.arenaOff[slot]
	}
	a.sfMark, a.sfFrozen = newMark, newFrozen
	a.sfWaste, a.arenaWaste = 0, 0
}

// validateCaps rejects the capacities the seed core silently accepted:
// NaN and negative values propagate NaN or negative rates through the
// allocator and poison every downstream FCT.
func validateCaps(caps []float64) error {
	for l, c := range caps {
		if math.IsNaN(c) || c < 0 {
			return fmt.Errorf("flowsim: link %d has capacity %v (want >= 0)", l, c)
		}
	}
	return nil
}
