package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"flattree/internal/parallel"
	"flattree/internal/recorder"
)

// The differential suite pins the struct-of-arrays core (sim.go, soa.go)
// to the retained seed implementation (reference.go): same seeded
// workload in, byte-identical ConnResult slices out — rates (via finish
// times), FCTs, stall times, reroute counts. Scenarios cover the static
// case, churn traces with disconnect/repair events, the parallel-link
// topology of the convertible fabrics, and the sharded allocator at both
// 1 and 8 workers.

// diffScenario is one seeded workload both cores run.
type diffScenario struct {
	caps   []float64
	specs  []ConnSpec
	events []TopoEvent
	// horizon, retryBase, retryMax configure the Sim; graceful is set by
	// Schedule when events exist, or explicitly for stall scenarios.
	horizon  float64
	graceful bool
}

func (sc diffScenario) sim() *Sim {
	s := NewSim(sc.caps, sc.specs)
	if sc.events != nil {
		s.Schedule(sc.events)
	}
	s.Graceful = s.Graceful || sc.graceful
	s.Horizon = sc.horizon
	return s
}

// randomPaths draws a path set over nLinks: multipath with short link
// lists, occasionally a loopback (empty) path, occasionally a duplicate
// link inside one path — the reference charges one weight per occurrence
// and the SoA core must too.
func randomPaths(rng *rand.Rand, nLinks int) [][]int {
	np := 1 + rng.Intn(3)
	paths := make([][]int, 0, np)
	for p := 0; p < np; p++ {
		if rng.Intn(8) == 0 {
			paths = append(paths, []int{}) // loopback subflow
			continue
		}
		hops := 1 + rng.Intn(4)
		links := make([]int, 0, hops)
		for len(links) < hops {
			links = append(links, rng.Intn(nLinks))
		}
		if rng.Intn(10) == 0 && len(links) > 1 {
			links[1] = links[0] // duplicate occurrence on purpose
		}
		paths = append(paths, links)
	}
	return paths
}

// randomDiffScenario builds a seeded churn-style workload: random fabric,
// mixed TCP/MPTCP specs with staggered arrivals, and failure/repair
// events that zero capacities, reroute, disconnect (empty path set), and
// restore.
func randomDiffScenario(seed int64, withEvents bool) diffScenario {
	rng := rand.New(rand.NewSource(seed))
	nLinks := 8 + rng.Intn(24)
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = 1 + 9*rng.Float64()
	}
	nConns := 3 + rng.Intn(28)
	specs := make([]ConnSpec, nConns)
	horizon := 0.0
	if rng.Intn(2) == 0 {
		horizon = 6
	}
	for i := range specs {
		bits := 0.5 + 20*rng.Float64()
		if horizon > 0 && rng.Intn(10) == 0 {
			bits = math.Inf(1) // persistent, cut off by the horizon
		}
		w := 0.0 // default weight
		if rng.Intn(3) == 0 {
			w = 0.25 + 1.75*rng.Float64()
		}
		specs[i] = ConnSpec{
			Paths:   randomPaths(rng, nLinks),
			Bits:    bits,
			Arrival: 3 * rng.Float64(),
			Weight:  w,
		}
	}
	sc := diffScenario{caps: caps, specs: specs, horizon: horizon}
	if !withEvents {
		return sc
	}
	nEvents := 1 + rng.Intn(8)
	failed := make(map[int]float64)
	for e := 0; e < nEvents; e++ {
		ev := TopoEvent{Time: 4 * rng.Float64()}
		switch rng.Intn(3) {
		case 0: // failure: zero 1..3 link slots
			ev.SetCaps = map[int]float64{}
			for k := 0; k < 1+rng.Intn(3); k++ {
				l := rng.Intn(nLinks)
				if _, dead := failed[l]; !dead {
					failed[l] = caps[l]
				}
				ev.SetCaps[l] = 0
			}
		case 1: // repair: restore everything failed so far
			if len(failed) == 0 {
				continue
			}
			ev.SetCaps = map[int]float64{}
			for l, c := range failed {
				ev.SetCaps[l] = c
			}
			failed = make(map[int]float64)
		case 2: // control-plane reaction: reroute, sometimes disconnect
			ev.Reroute = map[int][][]int{}
			for k := 0; k < 1+rng.Intn(3); k++ {
				c := rng.Intn(nConns)
				if rng.Intn(3) == 0 {
					ev.Reroute[c] = nil // disconnected until a later reroute
				} else {
					ev.Reroute[c] = randomPaths(rng, nLinks)
				}
			}
		}
		sc.events = append(sc.events, ev)
	}
	// A final repair-and-reconnect pass so permanently-parked flows stay
	// a scenario choice, not a certainty.
	if rng.Intn(2) == 0 {
		last := TopoEvent{Time: 4.5, SetCaps: map[int]float64{}, Reroute: map[int][][]int{}}
		for l, c := range failed {
			last.SetCaps[l] = c
		}
		for c := 0; c < nConns; c++ {
			if rng.Intn(4) == 0 {
				last.Reroute[c] = randomPaths(rng, nLinks)
			}
		}
		sc.events = append(sc.events, last)
	}
	return sc
}

// requireIdentical fails unless both cores produced the same error state
// and bit-identical results.
func requireIdentical(t *testing.T, seed int64, got, want []ConnResult, gotErr, wantErr error) {
	t.Helper()
	if (gotErr != nil) != (wantErr != nil) {
		t.Fatalf("seed %d: SoA err %v, reference err %v", seed, gotErr, wantErr)
	}
	if gotErr != nil {
		return
	}
	if len(got) != len(want) {
		t.Fatalf("seed %d: %d results vs %d", seed, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("seed %d: connection %d diverged:\n  soa: %+v\n  ref: %+v", seed, i, got[i], want[i])
		}
	}
}

func TestRunDifferentialStatic(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sc := randomDiffScenario(seed, false)
		got, gotErr := sc.sim().Run()
		want, wantErr := sc.sim().runReference()
		requireIdentical(t, seed, got, want, gotErr, wantErr)
	}
}

func TestRunDifferentialChurn(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		sc := randomDiffScenario(seed, true)
		got, gotErr := sc.sim().Run()
		want, wantErr := sc.sim().runReference()
		requireIdentical(t, seed, got, want, gotErr, wantErr)
	}
}

// TestRunDifferentialParallelLinks exercises the parallel-link shape the
// churn engine produces for convertible fabrics: several identical link
// slots between the same switch pair, failed and repaired one slot at a
// time, with flows rerouted across the surviving siblings.
func TestRunDifferentialParallelLinks(t *testing.T) {
	// Slots 0..3 are parallel siblings A-B, slots 4..5 the access links.
	caps := []float64{10, 10, 10, 10, 10, 10}
	path := func(slot int) [][]int { return [][]int{{4, slot, 5}} }
	multi := func(slots ...int) [][]int {
		var ps [][]int
		for _, sl := range slots {
			ps = append(ps, []int{4, sl, 5})
		}
		return ps
	}
	specs := []ConnSpec{
		{Paths: multi(0, 1, 2, 3), Bits: 30},
		{Paths: path(0), Bits: 12, Arrival: 0.2},
		{Paths: path(1), Bits: 12, Arrival: 0.4},
		{Paths: multi(2, 3), Bits: 18, Arrival: 0.6, Weight: 2},
	}
	events := []TopoEvent{
		{Time: 0.5, SetCaps: map[int]float64{0: 0}},                           // fail slot 0
		{Time: 0.7, Reroute: map[int][][]int{0: multi(1, 2, 3), 1: path(1)}},  // reaction
		{Time: 1.0, SetCaps: map[int]float64{1: 0}},                           // fail slot 1
		{Time: 1.1, Reroute: map[int][][]int{0: multi(2, 3), 1: nil, 2: nil}}, // disconnects
		{Time: 1.6, SetCaps: map[int]float64{0: 10, 1: 10}},                   // repair both
		{Time: 1.7, Reroute: map[int][][]int{0: multi(0, 1, 2, 3), 1: path(0), 2: path(1)}},
	}
	sc := diffScenario{caps: caps, specs: specs, events: events, horizon: 20}
	got, gotErr := sc.sim().Run()
	want, wantErr := sc.sim().runReference()
	requireIdentical(t, 0, got, want, gotErr, wantErr)
	// The scenario must actually exercise churn machinery.
	if want[1].StallTime == 0 && want[2].StallTime == 0 {
		t.Fatalf("scenario lost its stall coverage: %+v", want)
	}
}

// TestRunDifferentialWorkers runs the same churn workloads with the
// process-wide pool pinned to 1 and to 8 workers: output bytes must not
// depend on the worker count, and both must match the reference.
func TestRunDifferentialWorkers(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	for seed := int64(1); seed <= 10; seed++ {
		sc := randomDiffScenario(seed, true)
		parallel.SetDefaultWorkers(1)
		one, oneErr := sc.sim().Run()
		parallel.SetDefaultWorkers(8)
		eight, eightErr := sc.sim().Run()
		parallel.SetDefaultWorkers(0)
		want, wantErr := sc.sim().runReference()
		requireIdentical(t, seed, one, want, oneErr, wantErr)
		requireIdentical(t, seed, eight, want, eightErr, wantErr)
	}
}

// TestRunDifferentialRecorder replays one churn scenario through both
// cores with recording on: the flight-recorder streams (flow lifecycle
// plus per-event allocation rounds) must be identical event for event.
func TestRunDifferentialRecorder(t *testing.T) {
	sc := randomDiffScenario(7, true)
	record := func(run func(*Sim) ([]ConnResult, error)) []recorder.TrackSnapshot {
		rec := recorder.New(1 << 16)
		s := sc.sim()
		s.Rec = rec.Track("sim")
		if _, err := run(s); err != nil {
			t.Fatalf("run: %v", err)
		}
		return rec.Snapshot()
	}
	got := record((*Sim).Run)
	want := record((*Sim).runReference)
	if len(got) != 1 || len(want) != 1 {
		t.Fatalf("want one track each, got %d and %d", len(got), len(want))
	}
	if len(got[0].Events) != len(want[0].Events) {
		t.Fatalf("SoA emitted %d events, reference %d", len(got[0].Events), len(want[0].Events))
	}
	for i := range got[0].Events {
		if got[0].Events[i] != want[0].Events[i] {
			t.Fatalf("event %d diverged:\n  soa: %+v\n  ref: %+v", i, got[0].Events[i], want[0].Events[i])
		}
	}
}

// TestStaticRatesDifferential pins the exported StaticRates path (the
// §5.1 throughput experiments) to the reference allocate+ConnRates
// composition.
func TestStaticRatesDifferential(t *testing.T) {
	for seed := int64(1); seed <= 20; seed++ {
		sc := randomDiffScenario(seed, false)
		for i := range sc.specs {
			if len(sc.specs[i].Paths) == 0 {
				sc.specs[i].Paths = [][]int{{0}}
			}
		}
		got, err := StaticRates(sc.caps, sc.specs, 0)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		ref := NewSim(sc.caps, sc.specs)
		ids := make([]int, len(sc.specs))
		paths := make([][][]int, len(sc.specs))
		for i, sp := range sc.specs {
			ids[i] = i
			paths[i] = sp.Paths
		}
		want, err := ref.allocateRef(sc.caps, ids, paths)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("seed %d: connection %d rate %.17g vs reference %.17g", seed, i, got[i], want[i])
			}
		}
	}
}

// TestMaxMinRatesDifferential pins the exported allocator entry point to
// the seed allocator bit-for-bit on the property suite's scenarios.
func TestMaxMinRatesDifferential(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		caps, subs := randomScenario(seed)
		got, err := MaxMinRates(caps, subs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		want, err := maxMinRatesRef(caps, subs)
		if err != nil {
			t.Fatalf("seed %d: reference: %v", seed, err)
		}
		for i := range got {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				t.Fatalf("seed %d: subflow %d rate %.17g vs reference %.17g", seed, i, got[i], want[i])
			}
		}
	}
}
