package flowsim

import (
	"math"
	"testing"
)

// TestSimEventCapacityChange checks mid-run capacity drops slow a flow:
// 100 bits at 10 for 2 s (80 left), then at 5 until done.
func TestSimEventCapacityChange(t *testing.T) {
	caps := []float64{10}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 100}}
	s := NewSim(caps, specs)
	s.Schedule([]TopoEvent{{Time: 2, SetCaps: map[int]float64{0: 5}}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if got := res[0].Finish; math.Abs(got-18) > 1e-9 {
		t.Fatalf("finish = %v, want 18", got)
	}
	if res[0].StallTime != 0 || res[0].Reroutes != 0 {
		t.Fatalf("unexpected stall/reroute: %+v", res[0])
	}
}

// TestSimStallAndReroute kills a flow's only link at t=1 and installs a
// replacement path at t=3: the flow must stall (not error), resume on its
// bounded-backoff retry, and report the stall and reroute.
func TestSimStallAndReroute(t *testing.T) {
	caps := []float64{10, 10}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 100}}
	s := NewSim(caps, specs)
	s.RetryBase, s.RetryMax = 0.5, 0.5 // probes at 1.5, 2.0, 2.5, 3.0
	s.Schedule([]TopoEvent{
		{Time: 1, SetCaps: map[int]float64{0: 0}},
		{Time: 3, Reroute: map[int][][]int{0: {{1}}}},
	})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// 10 bits sent by t=1; stalled 1..3 (reroute lands at 3, the probe at
	// 3.0 succeeds); 90 bits at 10 finish at 12.
	if got := res[0].Finish; math.Abs(got-12) > 1e-9 {
		t.Fatalf("finish = %v, want 12", got)
	}
	if got := res[0].StallTime; math.Abs(got-2) > 1e-9 {
		t.Fatalf("stall = %v, want 2", got)
	}
	if res[0].Reroutes != 1 {
		t.Fatalf("reroutes = %d, want 1", res[0].Reroutes)
	}
}

// TestSimRetryBackoffDelaysResume verifies the reroute is not picked up
// instantly: with a long backoff the flow resumes at its next probe after
// the paths return, not at the event time.
func TestSimRetryBackoffDelaysResume(t *testing.T) {
	caps := []float64{10, 10}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 100}}
	s := NewSim(caps, specs)
	s.RetryBase, s.RetryMax = 2, 2 // probes at 3, 5, ...
	s.Schedule([]TopoEvent{
		{Time: 1, SetCaps: map[int]float64{0: 0}},
		{Time: 3.5, Reroute: map[int][][]int{0: {{1}}}},
	})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Stall 1..5 (probe at 3 fails, probe at 5 finds the new path):
	// 90 bits at 10 finish at 14.
	if got := res[0].Finish; math.Abs(got-14) > 1e-9 {
		t.Fatalf("finish = %v, want 14", got)
	}
	if got := res[0].StallTime; math.Abs(got-4) > 1e-9 {
		t.Fatalf("stall = %v, want 4", got)
	}
}

// TestSimDisconnectedFlowReportsStall verifies a flow whose path dies for
// good does not abort the run: it parks, accrues stall time to the
// horizon, and is reported unfinished.
func TestSimDisconnectedFlowReportsStall(t *testing.T) {
	caps := []float64{10, 10}
	specs := []ConnSpec{
		{Paths: [][]int{{0}}, Bits: 1000},
		{Paths: [][]int{{1}}, Bits: 40},
	}
	s := NewSim(caps, specs)
	s.Horizon = 10
	s.Schedule([]TopoEvent{{Time: 2, SetCaps: map[int]float64{0: 0}}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res[0].Finish, 1) {
		t.Fatal("disconnected flow completed")
	}
	if got := res[0].StallTime; math.Abs(got-8) > 1e-9 {
		t.Fatalf("stall = %v, want 8 (t=2 to horizon)", got)
	}
	// The healthy flow is unaffected.
	if got := res[1].Finish; math.Abs(got-4) > 1e-9 {
		t.Fatalf("healthy flow finish = %v, want 4", got)
	}
}

// TestSimEmptyPathsStallOnArrival: a connection admitted with no surviving
// route (empty path list, graceful mode) stalls immediately and resumes
// when a reroute installs paths.
func TestSimEmptyPathsStallOnArrival(t *testing.T) {
	caps := []float64{10}
	specs := []ConnSpec{{Paths: nil, Bits: 50, Arrival: 1}}
	s := NewSim(caps, specs)
	s.RetryBase, s.RetryMax = 0.25, 0.25
	s.Schedule([]TopoEvent{{Time: 2, Reroute: map[int][][]int{0: {{0}}}}})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Stalled 1..2 (probe at 2.0 succeeds: 1 + 4*0.25), 50 bits at 10.
	if got := res[0].Finish; math.Abs(got-7) > 1e-9 {
		t.Fatalf("finish = %v, want 7", got)
	}
	if got := res[0].StallTime; math.Abs(got-1) > 1e-9 {
		t.Fatalf("stall = %v, want 1", got)
	}
}

// TestSimRepairRestoresCapacity drives a link to zero and back: the flow
// stalls during the outage and completes after repair with no reroute.
func TestSimRepairRestoresCapacity(t *testing.T) {
	caps := []float64{10}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 100}}
	s := NewSim(caps, specs)
	s.RetryBase, s.RetryMax = 0.5, 0.5
	s.Schedule([]TopoEvent{
		{Time: 1, SetCaps: map[int]float64{0: 0}},
		{Time: 2.25, SetCaps: map[int]float64{0: 10}},
	})
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	// Stall 1..2.5 (probes at 1.5 and 2.0 fail — link dead; 2.25 restores
	// it; the probe at 2.5 succeeds): 90 bits at 10 finish at 11.5.
	if got := res[0].Finish; math.Abs(got-11.5) > 1e-9 {
		t.Fatalf("finish = %v, want 11.5", got)
	}
	if res[0].Reroutes != 0 {
		t.Fatalf("reroutes = %d, want 0", res[0].Reroutes)
	}
}

// TestSimEventDeterminism runs a churn-heavy simulation many times and
// asserts bit-identical results — the map-iteration bug this PR fixes
// would make float accumulation order (and completion times) vary.
func TestSimEventDeterminism(t *testing.T) {
	build := func() ([]ConnResult, error) {
		caps := make([]float64, 8)
		for i := range caps {
			caps[i] = 10
		}
		var specs []ConnSpec
		for i := 0; i < 24; i++ {
			specs = append(specs, ConnSpec{
				Paths:   [][]int{{i % 8}, {(i + 3) % 8}},
				Bits:    float64(20 + i),
				Arrival: float64(i%5) * 0.1,
			})
		}
		s := NewSim(caps, specs)
		s.Schedule([]TopoEvent{
			{Time: 0.5, SetCaps: map[int]float64{2: 0, 3: 0}},
			{Time: 0.9, Reroute: map[int][][]int{2: {{4}}, 5: {{5}}, 10: {{6}}}},
			{Time: 1.4, SetCaps: map[int]float64{2: 10, 3: 10}},
		})
		return s.Run()
	}
	ref, err := build()
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 20; trial++ {
		got, err := build()
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("trial %d conn %d: %+v != %+v", trial, i, got[i], ref[i])
			}
		}
	}
}

// TestSimNonGracefulStillErrors: without Graceful, the legacy contract
// holds — a starved connection aborts the run.
func TestSimNonGracefulStillErrors(t *testing.T) {
	caps := []float64{0}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 10}}
	if _, err := NewSim(caps, specs).Run(); err == nil {
		t.Fatal("starved simulation did not error without Graceful")
	}
}
