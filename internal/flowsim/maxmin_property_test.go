package flowsim

import (
	"math"
	"math/rand"
	"testing"

	"flattree/internal/parallel"
)

// randomScenario builds a random fabric and subflow set. Everything is
// driven by the seed so failures reproduce exactly.
func randomScenario(seed int64) ([]float64, []Subflow) {
	rng := rand.New(rand.NewSource(seed))
	nLinks := 4 + rng.Intn(12)
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = 1 + 9*rng.Float64()
	}
	nSubs := 5 + rng.Intn(40)
	subs := make([]Subflow, nSubs)
	for i := range subs {
		hops := 1 + rng.Intn(4)
		links := make([]int, 0, hops)
		used := map[int]bool{}
		for len(links) < hops {
			l := rng.Intn(nLinks)
			if !used[l] {
				used[l] = true
				links = append(links, l)
			}
		}
		w := 1.0
		if rng.Intn(2) == 0 {
			w = 1.0 / float64(1+rng.Intn(8))
		}
		subs[i] = Subflow{Conn: i, Links: links, Weight: w}
	}
	return caps, subs
}

// TestMaxMinRatesPermutationInvariant is the progressive-filling max-min
// property test of the PR's test layer: the fair allocation is a property
// of the (links, subflows) set, not of the order subflows are listed in,
// so permuting the input must permute the output and nothing else.
// (The issue files this under the LP/mcf invariants; progressive filling
// lives here in flowsim, so the test does too.)
func TestMaxMinRatesPermutationInvariant(t *testing.T) {
	const tol = 1e-9
	for seed := int64(1); seed <= 30; seed++ {
		caps, subs := randomScenario(seed)
		base, err := MaxMinRates(caps, subs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		perm := rand.New(rand.NewSource(seed * 7919)).Perm(len(subs))
		shuffled := make([]Subflow, len(subs))
		for to, from := range perm {
			shuffled[to] = subs[from]
		}
		got, err := MaxMinRates(caps, shuffled)
		if err != nil {
			t.Fatalf("seed %d (shuffled): %v", seed, err)
		}
		for to, from := range perm {
			if math.Abs(got[to]-base[from]) > tol {
				t.Fatalf("seed %d: subflow %d rate %.15g, but %.15g after permutation",
					seed, from, base[from], got[to])
			}
		}
	}
}

// TestMaxMinRatesIsMaxMin checks the defining max-min properties on random
// scenarios: no link over capacity, and every unfrozen subflow is blocked
// by some saturated link where it holds at least its weighted fair share —
// i.e. no subflow's rate can grow without shrinking a share that is not
// larger than its own.
// largeScenario builds a fabric and subflow population big enough to
// engage the sharded allocator (loaded links >= shardMinLinks): 8k links
// with heterogeneous capacities so saturation staggers over many
// progressive-filling rounds, and 100k+ subflows of mixed weights.
func largeScenario(seed int64) ([]float64, []Subflow) {
	rng := rand.New(rand.NewSource(seed))
	nLinks := 2 * shardMinLinks
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = 1 + 99*rng.Float64()
	}
	nSubs := 100_000 + rng.Intn(20_000)
	subs := make([]Subflow, nSubs)
	for i := range subs {
		hops := 2 + rng.Intn(3)
		links := make([]int, hops)
		for h := range links {
			links[h] = rng.Intn(nLinks)
		}
		w := 1.0
		if i%3 == 0 {
			w = 1.0 / float64(1+rng.Intn(8))
		}
		subs[i] = Subflow{Conn: i, Links: links, Weight: w}
	}
	return caps, subs
}

// TestMaxMinLargeScaleInvariants checks the defining weighted max-min
// properties at 100k+ subflows with linear-time checkers: no link over
// capacity (bottleneck saturation is what the allocator's rounds drain
// toward), and every subflow is blocked by a saturated link on which its
// normalized level is maximal (Bertsekas–Gallager weighted fairness).
// The small-scenario test below does the same with an O(n^2) oracle;
// this one proves the invariants survive the scale the SoA core exists
// for — and, because 8k links stay loaded for thousands of rounds, it
// runs the sharded bottleneck search in anger.
func TestMaxMinLargeScaleInvariants(t *testing.T) {
	const tol = 1e-6
	caps, subs := largeScenario(1)
	rates, err := MaxMinRates(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	load := make([]float64, len(caps))
	maxLevel := make([]float64, len(caps))
	for i, s := range subs {
		level := rates[i] / s.Weight
		for _, l := range s.Links {
			load[l] += rates[i]
			if level > maxLevel[l] {
				maxLevel[l] = level
			}
		}
	}
	for l := range caps {
		if load[l] > caps[l]*(1+tol)+tol {
			t.Fatalf("link %d load %.12g exceeds capacity %.12g", l, load[l], caps[l])
		}
	}
	blockedCount := 0
	for i, s := range subs {
		level := rates[i] / s.Weight
		blocked := false
		for _, l := range s.Links {
			if load[l] >= caps[l]*(1-tol)-tol && level >= maxLevel[l]*(1-tol) {
				blocked = true
				break
			}
		}
		if !blocked {
			t.Fatalf("subflow %d (rate %.12g, level %.12g) has no bottleneck link", i, rates[i], level)
		}
		blockedCount++
	}
	if blockedCount != len(subs) {
		t.Fatalf("checked %d of %d subflows", blockedCount, len(subs))
	}
}

// TestMaxMinLargeScaleWorkerInvariance runs the sharded allocator on the
// large scenario with the process pool pinned to 1 and to 8 workers and
// requires bit-identical rates — the determinism contract of the sharded
// bottleneck search (first strict minimum, ascending shard reduction) —
// and pins both against the retained reference allocator. Runs under
// -race in CI, so the shard fan-out is also checked for data races.
func TestMaxMinLargeScaleWorkerInvariance(t *testing.T) {
	defer parallel.SetDefaultWorkers(0)
	caps, subs := largeScenario(2)
	parallel.SetDefaultWorkers(1)
	one, err := MaxMinRates(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetDefaultWorkers(8)
	eight, err := MaxMinRates(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	parallel.SetDefaultWorkers(0)
	want, err := maxMinRatesRef(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Float64bits(one[i]) != math.Float64bits(want[i]) {
			t.Fatalf("subflow %d: workers=1 rate %.17g, reference %.17g", i, one[i], want[i])
		}
		if math.Float64bits(eight[i]) != math.Float64bits(want[i]) {
			t.Fatalf("subflow %d: workers=8 rate %.17g, reference %.17g", i, eight[i], want[i])
		}
	}
}

func TestMaxMinRatesIsMaxMin(t *testing.T) {
	const tol = 1e-7
	for seed := int64(1); seed <= 30; seed++ {
		caps, subs := randomScenario(seed)
		rates, err := MaxMinRates(caps, subs)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		load := make([]float64, len(caps))
		for i, s := range subs {
			for _, l := range s.Links {
				load[l] += rates[i]
			}
		}
		for l := range caps {
			if load[l] > caps[l]+tol {
				t.Fatalf("seed %d: link %d load %.12g exceeds capacity %.12g", seed, l, load[l], caps[l])
			}
		}
		for i, s := range subs {
			if len(s.Links) == 0 {
				continue
			}
			// Normalized rate = rate/weight, the "water level" of the
			// subflow. Bertsekas–Gallager: the allocation is weighted
			// max-min fair iff every subflow has a bottleneck — a saturated
			// link on which its level is maximal, so growing it can only
			// take bandwidth from subflows no better off than itself.
			level := rates[i] / s.Weight
			blocked := false
			for _, l := range s.Links {
				if load[l] < caps[l]-tol {
					continue
				}
				maxLevel := 0.0
				for j, o := range subs {
					for _, ol := range o.Links {
						if ol == l {
							if lv := rates[j] / o.Weight; lv > maxLevel {
								maxLevel = lv
							}
						}
					}
				}
				if level >= maxLevel-tol {
					blocked = true
					break
				}
			}
			if !blocked {
				t.Fatalf("seed %d: subflow %d (rate %.12g, level %.12g) has no bottleneck link",
					seed, i, rates[i], level)
			}
		}
	}
}
