package flowsim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxMinSingleLink(t *testing.T) {
	caps := []float64{10}
	subs := []Subflow{
		{Conn: 0, Links: []int{0}, Weight: 1},
		{Conn: 1, Links: []int{0}, Weight: 1},
	}
	rates, err := MaxMinRates(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range rates {
		if math.Abs(r-5) > 1e-9 {
			t.Fatalf("rate[%d] = %v, want 5", i, r)
		}
	}
}

func TestMaxMinWeighted(t *testing.T) {
	caps := []float64{12}
	subs := []Subflow{
		{Conn: 0, Links: []int{0}, Weight: 2},
		{Conn: 1, Links: []int{0}, Weight: 1},
	}
	rates, err := MaxMinRates(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-8) > 1e-9 || math.Abs(rates[1]-4) > 1e-9 {
		t.Fatalf("rates = %v, want [8 4]", rates)
	}
}

func TestMaxMinTwoBottlenecks(t *testing.T) {
	// Classic: flow A on link0(cap 1), flow B on link0+link1(cap 10),
	// flow C on link1. A=B=0.5 at link0; C fills link1 to 9.5.
	caps := []float64{1, 10}
	subs := []Subflow{
		{Conn: 0, Links: []int{0}, Weight: 1},
		{Conn: 1, Links: []int{0, 1}, Weight: 1},
		{Conn: 2, Links: []int{1}, Weight: 1},
	}
	rates, err := MaxMinRates(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{0.5, 0.5, 9.5}
	for i := range want {
		if math.Abs(rates[i]-want[i]) > 1e-9 {
			t.Fatalf("rates = %v, want %v", rates, want)
		}
	}
}

func TestMaxMinMPTCPSubflows(t *testing.T) {
	// One MPTCP connection with 2 disjoint paths of cap 10 each gets 20;
	// a competing single-path TCP on one of them shares by weight: MPTCP
	// subflow weight 0.5 vs TCP weight 1 => TCP gets 2/3 of that link.
	caps := []float64{10, 10}
	subs := []Subflow{
		{Conn: 0, Links: []int{0}, Weight: 0.5},
		{Conn: 0, Links: []int{1}, Weight: 0.5},
		{Conn: 1, Links: []int{0}, Weight: 1},
	}
	rates, err := MaxMinRates(caps, subs)
	if err != nil {
		t.Fatal(err)
	}
	conn := ConnRates(2, subs, rates, 10)
	if math.Abs(rates[2]-10*2.0/3.0) > 1e-9 {
		t.Fatalf("TCP rate = %v, want 6.67", rates[2])
	}
	if math.Abs(conn[0]-(10.0/3.0+10)) > 1e-9 {
		t.Fatalf("MPTCP rate = %v, want 13.33", conn[0])
	}
}

func TestMaxMinValidation(t *testing.T) {
	if _, err := MaxMinRates([]float64{1}, []Subflow{{Links: []int{0}, Weight: 0}}); err == nil {
		t.Fatal("zero weight accepted")
	}
	if _, err := MaxMinRates([]float64{1}, []Subflow{{Links: []int{5}, Weight: 1}}); err == nil {
		t.Fatal("out-of-range link accepted")
	}
}

func TestMaxMinWorkConserving(t *testing.T) {
	// Property: no link is overloaded, and every subflow is bottlenecked
	// (its rate cannot grow without violating some link).
	f := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		nLinks := 2 + next(6)
		caps := make([]float64, nLinks)
		for i := range caps {
			caps[i] = float64(1 + next(10))
		}
		nSubs := 1 + next(8)
		subs := make([]Subflow, nSubs)
		for i := range subs {
			pl := 1 + next(3)
			if pl > nLinks {
				pl = nLinks
			}
			links := map[int]bool{}
			for len(links) < pl {
				links[next(nLinks)] = true
			}
			var ll []int
			for l := range links {
				ll = append(ll, l)
			}
			subs[i] = Subflow{Conn: i, Links: ll, Weight: float64(1+next(3)) / 2}
		}
		rates, err := MaxMinRates(caps, subs)
		if err != nil {
			return false
		}
		load := make([]float64, nLinks)
		for i, s := range subs {
			for _, l := range s.Links {
				load[l] += rates[i]
			}
		}
		for l := range caps {
			if load[l] > caps[l]+1e-6 {
				return false
			}
		}
		// Bottleneck property: each subflow crosses some saturated link.
		for i, s := range subs {
			saturated := false
			for _, l := range s.Links {
				if load[l] >= caps[l]-1e-6 {
					saturated = true
					break
				}
			}
			if !saturated && rates[i] > 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

func TestSimSingleFlowFCT(t *testing.T) {
	caps := []float64{10}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 100, Arrival: 0}}
	res, err := NewSim(caps, specs).Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].FCT()-10) > 1e-9 {
		t.Fatalf("FCT = %v, want 10", res[0].FCT())
	}
}

func TestSimSequentialSharing(t *testing.T) {
	// Two equal flows share a link: both take twice as long as alone,
	// but the first to arrive finishes earlier.
	caps := []float64{10}
	specs := []ConnSpec{
		{Paths: [][]int{{0}}, Bits: 100, Arrival: 0},
		{Paths: [][]int{{0}}, Bits: 100, Arrival: 5},
	}
	res, err := NewSim(caps, specs).Run()
	if err != nil {
		t.Fatal(err)
	}
	// Flow 0: 50 bits alone (5s), then shares: 50 left at 5 Gbps => +10s
	// ... flow 0 finishes at 15 minus the boost after flow1 could finish.
	// Compute exactly: t in [0,5): f0 rate 10, sends 50. t in [5,15):
	// both at 5; at t=15 f0 has sent 50+50=100 -> done. f1 has sent 50;
	// then alone at 10 => +5s => done at 20.
	if math.Abs(res[0].Finish-15) > 1e-6 {
		t.Fatalf("flow0 finish = %v, want 15", res[0].Finish)
	}
	if math.Abs(res[1].Finish-20) > 1e-6 {
		t.Fatalf("flow1 finish = %v, want 20", res[1].Finish)
	}
}

func TestSimPersistentAndHorizon(t *testing.T) {
	caps := []float64{10}
	specs := []ConnSpec{
		{Paths: [][]int{{0}}, Bits: math.Inf(1), Arrival: 0},
		{Paths: [][]int{{0}}, Bits: 25, Arrival: 0},
	}
	s := NewSim(caps, specs)
	var samples int
	s.Sample = func(t float64, rates []float64) { samples++ }
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res[0].Finish, 1) {
		t.Fatal("persistent flow completed")
	}
	// Finite flow: shares at 5 until done: 25/5 = 5s.
	if math.Abs(res[1].Finish-5) > 1e-6 {
		t.Fatalf("finite flow finish = %v, want 5", res[1].Finish)
	}
	if samples == 0 {
		t.Fatal("no samples observed")
	}
}

func TestSimHorizonStops(t *testing.T) {
	caps := []float64{1}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 1000, Arrival: 0}}
	s := NewSim(caps, specs)
	s.Horizon = 5
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(res[0].Finish, 1) {
		t.Fatal("flow completed despite horizon")
	}
}

func TestSimLoopbackPath(t *testing.T) {
	// Same-host connections use an empty link list and the LocalRate.
	caps := []float64{10}
	specs := []ConnSpec{{Paths: [][]int{{}}, Bits: 100, Arrival: 0}}
	s := NewSim(caps, specs)
	s.LocalRate = 50
	res, err := s.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res[0].FCT()-2) > 1e-9 {
		t.Fatalf("loopback FCT = %v, want 2", res[0].FCT())
	}
}

func TestSimStarvationError(t *testing.T) {
	// A connection whose only path crosses a zero-capacity link starves.
	caps := []float64{0}
	specs := []ConnSpec{{Paths: [][]int{{0}}, Bits: 10, Arrival: 0}}
	if _, err := NewSim(caps, specs).Run(); err == nil {
		t.Fatal("starved simulation did not error")
	}
}

func TestSimValidation(t *testing.T) {
	if _, err := NewSim([]float64{1}, []ConnSpec{{Paths: nil, Bits: 1}}).Run(); err == nil {
		t.Fatal("pathless conn accepted")
	}
	if _, err := NewSim([]float64{1}, []ConnSpec{{Paths: [][]int{{0}}, Bits: 0}}).Run(); err == nil {
		t.Fatal("zero-size conn accepted")
	}
}

func TestStaticRates(t *testing.T) {
	caps := []float64{10, 10}
	specs := []ConnSpec{
		{Paths: [][]int{{0}, {1}}, Bits: 1, Weight: 1}, // MPTCP, 2 paths
		{Paths: [][]int{{0}}, Bits: 1},                 // TCP on link 0
	}
	rates, err := StaticRates(caps, specs, 10)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(rates[0]-(10.0/3.0+10)) > 1e-9 || math.Abs(rates[1]-20.0/3.0) > 1e-9 {
		t.Fatalf("rates = %v", rates)
	}
}

func TestSimConservation(t *testing.T) {
	// Property: total bits delivered equals sum of flow sizes (all flows
	// complete), and FCTs are at least size/capacity.
	f := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		caps := []float64{10, 10, 10}
		var specs []ConnSpec
		nf := 2 + next(6)
		for i := 0; i < nf; i++ {
			specs = append(specs, ConnSpec{
				Paths:   [][]int{{next(3)}},
				Bits:    float64(10 + next(100)),
				Arrival: float64(next(10)),
			})
		}
		res, err := NewSim(caps, specs).Run()
		if err != nil {
			return false
		}
		for i, r := range res {
			if math.IsInf(r.Finish, 1) {
				return false
			}
			if r.FCT() < specs[i].Bits/10-1e-6 {
				return false // faster than line rate
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
