package flowsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// RunStream must be Run with the spec slice factored out: on any workload
// both can express (arrival-sorted specs, capacity-only events) the two
// produce byte-identical ConnResults. These tests pin that, plus the
// stream-only machinery — slot recycling, arena compaction, the
// nondecreasing-arrival contract, and the unsupported-feature errors.

// streamScenario builds a seeded capacity-churn workload with specs
// pre-sorted by arrival, the one ordering constraint RunStream adds.
func streamScenario(seed int64, withEvents bool) diffScenario {
	rng := rand.New(rand.NewSource(seed))
	nLinks := 8 + rng.Intn(24)
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = 1 + 9*rng.Float64()
	}
	nConns := 3 + rng.Intn(28)
	specs := make([]ConnSpec, nConns)
	horizon := 0.0
	if rng.Intn(2) == 0 {
		horizon = 6
	}
	for i := range specs {
		bits := 0.5 + 20*rng.Float64()
		if horizon > 0 && rng.Intn(10) == 0 {
			bits = math.Inf(1)
		}
		w := 0.0
		if rng.Intn(3) == 0 {
			w = 0.25 + 1.75*rng.Float64()
		}
		specs[i] = ConnSpec{
			Paths:   randomPaths(rng, nLinks),
			Bits:    bits,
			Arrival: 3 * rng.Float64(),
			Weight:  w,
		}
	}
	sort.SliceStable(specs, func(a, b int) bool { return specs[a].Arrival < specs[b].Arrival })
	sc := diffScenario{caps: caps, specs: specs, horizon: horizon}
	if !withEvents {
		sc.graceful = rng.Intn(2) == 0
		return sc
	}
	// Capacity churn only: fail links mid-run, repair some later. Links
	// left at zero exercise the stall/disconnect path.
	nEvents := 1 + rng.Intn(4)
	for e := 0; e < nEvents; e++ {
		down := map[int]float64{}
		for k := 0; k < 1+rng.Intn(3); k++ {
			down[rng.Intn(nLinks)] = 0
		}
		at := 0.5 + 4*rng.Float64()
		sc.events = append(sc.events, TopoEvent{Time: at, SetCaps: down})
		if rng.Intn(2) == 0 {
			up := map[int]float64{}
			for l := range down {
				up[l] = 1 + 9*rng.Float64()
			}
			sc.events = append(sc.events, TopoEvent{Time: at + 0.5 + 2*rng.Float64(), SetCaps: up})
		}
	}
	return sc
}

// runStreamed drives RunStream over the scenario's specs and reassembles
// a Run-shaped result slice from the sink callbacks.
func runStreamed(t *testing.T, seed int64, sc diffScenario) ([]ConnResult, error) {
	t.Helper()
	got := make([]ConnResult, len(sc.specs))
	seen := make([]bool, len(sc.specs))
	i := 0
	err := sc.sim().RunStream(
		func() (ConnSpec, bool) {
			if i >= len(sc.specs) {
				return ConnSpec{}, false
			}
			sp := sc.specs[i]
			i++
			return sp, true
		},
		func(id int, res ConnResult) {
			if id < 0 || id >= len(seen) || seen[id] {
				t.Fatalf("seed %d: sink saw id %d (dup or out of range)", seed, id)
			}
			seen[id] = true
			got[id] = res
		})
	if err != nil {
		return nil, err
	}
	for id, ok := range seen {
		if !ok {
			t.Fatalf("seed %d: connection %d never reached the sink", seed, id)
		}
	}
	return got, nil
}

func TestRunStreamDifferentialStatic(t *testing.T) {
	for seed := int64(1); seed <= 40; seed++ {
		sc := streamScenario(seed, false)
		want, wantErr := sc.sim().Run()
		got, gotErr := runStreamed(t, seed, sc)
		requireIdentical(t, seed, got, want, gotErr, wantErr)
	}
}

func TestRunStreamDifferentialCapacityChurn(t *testing.T) {
	for seed := int64(1); seed <= 60; seed++ {
		sc := streamScenario(seed, true)
		want, wantErr := sc.sim().Run()
		got, gotErr := runStreamed(t, seed, sc)
		requireIdentical(t, seed, got, want, gotErr, wantErr)
	}
}

// TestRunStreamSlotRecycling runs 20k short-lived flows through a tiny
// fabric so slots recycle thousands of times (the offered load keeps a
// handful of flows concurrent); results must still match Run exactly.
func TestRunStreamSlotRecycling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	nLinks := 16
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = 5 + 5*rng.Float64()
	}
	const n = 20_000
	specs := make([]ConnSpec, n)
	for i := range specs {
		specs[i] = ConnSpec{
			Paths:   randomPaths(rng, nLinks),
			Bits:    0.005 + 0.015*rng.Float64(),
			Arrival: float64(i) * 5e-4,
		}
	}
	sc := diffScenario{caps: caps, specs: specs}
	want, wantErr := sc.sim().Run()
	got, gotErr := runStreamed(t, 99, sc)
	requireIdentical(t, 99, got, want, gotErr, wantErr)
}

// TestCompactPreservesAllocation drives the arena compactor directly:
// admit a churned population, retire every other connection, compact,
// and require the post-compaction allocation to match a fresh core
// admitted with only the survivors, bit for bit. (Organic runs rarely
// compact — slot range reuse ratchets capacities until waste stops
// accruing — so the rebuild is pinned white-box.)
func TestCompactPreservesAllocation(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	nLinks := 24
	caps := make([]float64, nLinks)
	for l := range caps {
		caps[l] = 1 + 9*rng.Float64()
	}
	const n = 400
	paths := make([][][]int, n)
	weights := make([]float64, n)
	st := newAllocState(caps, n)
	for i := 0; i < n; i++ {
		paths[i] = randomPaths(rng, nLinks)
		weights[i] = 0.25 + 1.75*rng.Float64()
		if err := st.admit(i, i, weights[i], paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	var ids []int
	var slots []int32
	for i := 0; i < n; i++ {
		if i%2 == 1 {
			st.retire(i, i)
			continue
		}
		ids = append(ids, i)
		slots = append(slots, int32(i))
	}
	st.compact(ids, slots)
	st.allocate(slots)

	fresh := newAllocState(append([]float64(nil), caps...), n)
	for _, i := range ids {
		if err := fresh.admit(i, i, weights[i], paths[i]); err != nil {
			t.Fatal(err)
		}
	}
	fresh.allocate(slots)
	for _, i := range ids {
		got := st.rate(i, 10)
		want := fresh.rate(i, 10)
		if math.Float64bits(got) != math.Float64bits(want) {
			t.Fatalf("connection %d: compacted rate %.17g, fresh %.17g", i, got, want)
		}
	}
}

func TestRunStreamRejectsUnsupported(t *testing.T) {
	s := NewSim([]float64{10}, nil)
	s.Sample = func(float64, []float64) {}
	err := s.RunStream(func() (ConnSpec, bool) { return ConnSpec{}, false }, func(int, ConnResult) {})
	if err == nil {
		t.Fatal("Sample accepted")
	}
	s = NewSim([]float64{10}, nil)
	s.Schedule([]TopoEvent{{Time: 1, Reroute: map[int][][]int{0: {{0}}}}})
	err = s.RunStream(func() (ConnSpec, bool) { return ConnSpec{}, false }, func(int, ConnResult) {})
	if err == nil {
		t.Fatal("Reroute event accepted")
	}
}

func TestRunStreamRejectsUnsortedArrivals(t *testing.T) {
	specs := []ConnSpec{
		{Paths: [][]int{{0}}, Bits: 1, Arrival: 2},
		{Paths: [][]int{{0}}, Bits: 1, Arrival: 1},
	}
	i := 0
	err := NewSim([]float64{10}, nil).RunStream(
		func() (ConnSpec, bool) {
			if i >= len(specs) {
				return ConnSpec{}, false
			}
			sp := specs[i]
			i++
			return sp, true
		},
		func(int, ConnResult) {})
	if err == nil {
		t.Fatal("out-of-order arrivals accepted")
	}
}

func TestRunStreamEmpty(t *testing.T) {
	err := NewSim([]float64{10}, nil).RunStream(
		func() (ConnSpec, bool) { return ConnSpec{}, false },
		func(int, ConnResult) { t.Fatal("sink called on empty stream") })
	if err != nil {
		t.Fatal(err)
	}
}
