package flowsim

import (
	"math"
	"strings"
	"testing"
)

// The seed core silently accepted NaN and negative capacities — NaN
// remaining/weight quotients then propagated NaN rates and FCTs through
// every downstream table. These regressions pin the descriptive errors
// the core now returns instead.

func oneFlow() []ConnSpec {
	return []ConnSpec{{Paths: [][]int{{0}}, Bits: 1}}
}

func TestRunRejectsBadCaps(t *testing.T) {
	for _, bad := range []float64{math.NaN(), -1, math.Inf(-1)} {
		_, err := NewSim([]float64{10, bad}, oneFlow()).Run()
		if err == nil || !strings.Contains(err.Error(), "link 1 has capacity") {
			t.Fatalf("caps[1]=%v: want capacity error, got %v", bad, err)
		}
	}
	if _, err := NewSim([]float64{10, 10}, oneFlow()).Run(); err != nil {
		t.Fatalf("valid caps rejected: %v", err)
	}
}

func TestSetCapsRejectsBadValues(t *testing.T) {
	for _, bad := range []float64{math.NaN(), -2} {
		s := NewSim([]float64{10}, []ConnSpec{{Paths: [][]int{{0}}, Bits: 100}})
		s.Schedule([]TopoEvent{{Time: 0.5, SetCaps: map[int]float64{0: bad}}})
		_, err := s.Run()
		if err == nil || !strings.Contains(err.Error(), "sets link 0 capacity") {
			t.Fatalf("SetCaps=%v: want capacity error, got %v", bad, err)
		}
	}
	// Zero stays legal: it is how link failures blackhole a direction.
	s := NewSim([]float64{10, 10}, []ConnSpec{{Paths: [][]int{{0}, {1}}, Bits: 5}})
	s.Schedule([]TopoEvent{{Time: 0.1, SetCaps: map[int]float64{0: 0}}})
	if _, err := s.Run(); err != nil {
		t.Fatalf("SetCaps=0 rejected: %v", err)
	}
}

func TestMaxMinRatesRejectsBadCaps(t *testing.T) {
	subs := []Subflow{{Conn: 0, Links: []int{0}, Weight: 1}}
	for _, bad := range []float64{math.NaN(), -1} {
		if _, err := MaxMinRates([]float64{bad}, subs); err == nil {
			t.Fatalf("caps[0]=%v accepted", bad)
		}
	}
	if _, err := MaxMinRates([]float64{math.NaN()}, nil); err != nil {
		t.Fatalf("empty subflow set must not validate caps it never reads: %v", err)
	}
}

func TestStaticRatesRejectsBadCaps(t *testing.T) {
	if _, err := StaticRates([]float64{-5}, oneFlow(), 0); err == nil {
		t.Fatal("negative capacity accepted")
	}
}

func TestRunRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		name string
		spec ConnSpec
		want string
	}{
		{"nan bits", ConnSpec{Paths: [][]int{{0}}, Bits: math.NaN()}, "has size"},
		{"nan weight", ConnSpec{Paths: [][]int{{0}}, Bits: 1, Weight: math.NaN()}, "has weight"},
		{"negative weight", ConnSpec{Paths: [][]int{{0}}, Bits: 1, Weight: -1}, "has weight"},
		{"nan arrival", ConnSpec{Paths: [][]int{{0}}, Bits: 1, Arrival: math.NaN()}, "has arrival"},
		{"inf arrival", ConnSpec{Paths: [][]int{{0}}, Bits: 1, Arrival: math.Inf(1)}, "has arrival"},
	}
	for _, tc := range cases {
		_, err := NewSim([]float64{10}, []ConnSpec{tc.spec}).Run()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Fatalf("%s: want %q error, got %v", tc.name, tc.want, err)
		}
	}
}

func TestMaxMinRatesRejectsNaNWeight(t *testing.T) {
	_, err := MaxMinRates([]float64{10}, []Subflow{{Links: []int{0}, Weight: math.NaN()}})
	if err == nil || !strings.Contains(err.Error(), "weight") {
		t.Fatalf("NaN subflow weight: got %v", err)
	}
}
