package flowsim

import (
	"fmt"
	"math"

	"flattree/internal/recorder"
	"flattree/internal/telemetry"
)

// RunStream executes the simulation over a stream of connections instead
// of a materialized spec slice: next is pulled lazily in arrival order
// (arrivals must be nondecreasing), and each connection's result is
// pushed to sink the moment it retires — id is the connection's position
// in the stream, counted from zero. Memory is bounded by the peak
// concurrent flow count, not the stream length, which is what lets the
// 10M-flow Facebook-mix runs fit: connection slots are recycled through
// a free list and the allocator's arenas compact when abandoned ranges
// dominate.
//
// The event loop is Run's, and on a workload both can express (specs
// pre-sorted by arrival, capacity-only events) the two produce
// byte-identical results — the differential suite pins this. Scheduled
// events may only set capacities: Reroute events address connections by
// index, which a stream cannot resolve ahead of time, so they are
// rejected. Sample is likewise unsupported (there is no full
// per-connection vector to hand out).
//
// Connections still outstanding when the simulation stops (horizon, or
// only persistent flows remain) are flushed to sink in ascending id
// order with Finish = +Inf, mirroring Run's results for unfinished
// connections.
func (s *Sim) RunStream(next func() (ConnSpec, bool), sink func(id int, res ConnResult)) error {
	if s.Sample != nil {
		return fmt.Errorf("flowsim: RunStream does not support Sample")
	}
	for _, ev := range s.events {
		if len(ev.Reroute) > 0 {
			return fmt.Errorf("flowsim: RunStream supports capacity events only (reroute at t=%v)", ev.Time)
		}
	}
	if err := validateCaps(s.caps); err != nil {
		return err
	}
	caps := append([]float64(nil), s.caps...)
	retryBase, retryMax := s.retryBounds()
	st := newAllocState(caps, 0)

	// Per-slot state, recycled with the slot. Slot count tracks the peak
	// concurrent flow count.
	var (
		res       []ConnResult
		remaining []float64
		stalled   []bool
		retrying  []bool
		backoff   []float64
		nextRetry []float64
		freeSlots []int32
	)
	newSlot := func() int32 {
		if k := len(freeSlots); k > 0 {
			slot := freeSlots[k-1]
			freeSlots = freeSlots[:k-1]
			return slot
		}
		res = append(res, ConnResult{})
		remaining = append(remaining, 0)
		stalled = append(stalled, false)
		retrying = append(retrying, false)
		backoff = append(backoff, 0)
		nextRetry = append(nextRetry, 0)
		st.growSlots(len(res))
		return int32(len(res) - 1)
	}

	// Active set sorted by ascending id: ids are assigned in pull order
	// and arrivals are nondecreasing, so appends keep the order.
	activeIDs := make([]int, 0, 64)
	activeSlots := make([]int32, 0, 64)
	runSlots := make([]int32, 0, 64)
	runIDs := make([]int, 0, 64)
	runRates := make([]float64, 0, 64)

	// One-spec lookahead over the stream.
	nextID := 0
	lastArrival := math.Inf(-1)
	pull := func() (ConnSpec, bool, error) {
		sp, ok := next()
		if !ok {
			return ConnSpec{}, false, nil
		}
		if err := validateSpec(nextID, sp, s.Graceful); err != nil {
			return ConnSpec{}, false, err
		}
		if sp.Arrival < lastArrival {
			return ConnSpec{}, false, fmt.Errorf("flowsim: stream connection %d arrives at %v, before %v — arrivals must be nondecreasing",
				nextID, sp.Arrival, lastArrival)
		}
		lastArrival = sp.Arrival
		return sp, true, nil
	}
	pend, pendOK, err := pull()
	if err != nil {
		return err
	}

	nextEvent := 0
	t := 0.0
	events := telemetry.C("flowsim_events_total")
	completed := telemetry.C("flowsim_flows_completed_total")
	fct := telemetry.H("flowsim_fct_seconds")
	stalls := telemetry.C("flowsim_stalls_total")
	disconnected := telemetry.C("flowsim_disconnected_total")
	stallHist := telemetry.H("flowsim_stall_seconds")

	// emit delivers one finished (or flushed) connection to the caller,
	// observing stall time exactly once per connection as finish() does.
	//
	//flatvet:hotpath streaming emit path, once per finished flow
	emit := func(id int, slot int32) {
		if res[slot].StallTime > 0 {
			stallHist.Observe(res[slot].StallTime)
		}
		sink(id, res[slot])
	}
	// flush drains the still-outstanding connections in ascending id
	// order; their Finish stays +Inf.
	flush := func() {
		for i, id := range activeIDs {
			emit(id, activeSlots[i])
		}
	}
	//flatvet:hotpath stall bookkeeping runs inside the event loop
	stall := func(slot int32, id int, now float64) {
		if stalled[slot] {
			return
		}
		stalled[slot] = true
		if retrying[slot] {
			backoff[slot] *= 2
			if backoff[slot] > retryMax {
				backoff[slot] = retryMax
			}
		} else {
			backoff[slot] = retryBase
			stalls.Inc()
			s.Rec.Emit(recorder.Event{T: now, Kind: recorder.FlowStall, ID: id})
		}
		retrying[slot] = false
		nextRetry[slot] = now + backoff[slot]
	}

	for {
		events.Inc()
		for nextEvent < len(s.events) && s.events[nextEvent].Time <= t+1e-12 {
			ev := s.events[nextEvent]
			nextEvent++
			//flatvet:ordered writes to distinct link slots; order-independent
			for id, cp := range ev.SetCaps {
				if id < 0 || id >= len(caps) {
					return fmt.Errorf("flowsim: event at t=%v sets capacity of link %d of %d", ev.Time, id, len(caps))
				}
				if math.IsNaN(cp) || cp < 0 {
					return fmt.Errorf("flowsim: event at t=%v sets link %d capacity %v (want >= 0)", ev.Time, id, cp)
				}
				caps[id] = cp
			}
		}
		// Admit arrivals at the current time, pulling the stream forward.
		// Pull order is arrival order, so the batch lands in ascending id
		// order — the same order Run's stable sort produces.
		for pendOK && pend.Arrival <= t+1e-12 {
			slot := newSlot()
			id := nextID
			nextID++
			if err := st.admit(int(slot), id, pend.Weight, pend.Paths); err != nil {
				return err
			}
			res[slot] = ConnResult{Start: pend.Arrival, Finish: math.Inf(1), Bits: pend.Bits}
			remaining[slot] = pend.Bits
			stalled[slot], retrying[slot] = false, false
			backoff[slot], nextRetry[slot] = 0, 0
			activeIDs = append(activeIDs, id)
			activeSlots = append(activeSlots, slot)
			s.Rec.Emit(recorder.Event{T: pend.Arrival, Kind: recorder.FlowStart, ID: id, A: int64(len(pend.Paths))})
			if pend, pendOK, err = pull(); err != nil {
				return err
			}
		}
		// Wake stalled connections whose retry timer fired.
		for _, slot := range activeSlots {
			if stalled[slot] && nextRetry[slot] <= t+1e-12 {
				stalled[slot] = false
				retrying[slot] = true
			}
		}
		if len(activeIDs) == 0 {
			if !pendOK {
				break
			}
			jump := pend.Arrival
			if nextEvent < len(s.events) && s.events[nextEvent].Time < jump {
				jump = s.events[nextEvent].Time
			}
			t = jump
			continue
		}
		// Allocate rates for the running (non-stalled) set, ascending id.
		runSlots, runIDs = runSlots[:0], runIDs[:0]
		for i, slot := range activeSlots {
			if !stalled[slot] {
				runSlots = append(runSlots, slot)
				runIDs = append(runIDs, activeIDs[i])
			}
		}
		st.allocate(runSlots)
		runRates = runRates[:0]
		for _, slot := range runSlots {
			runRates = append(runRates, st.rate(int(slot), s.LocalRate))
		}
		s.Rec.Emit(recorder.Event{T: t, Kind: recorder.AllocRound, A: int64(len(runSlots)), B: int64(len(activeIDs))})
		if s.Graceful {
			noFuture := !pendOK && nextEvent >= len(s.events)
			starved := false
			for ri, slot := range runSlots {
				if math.IsInf(remaining[slot], 1) {
					continue
				}
				if runRates[ri] <= 1e-15 {
					if noFuture {
						stalled[slot] = true
						retrying[slot] = false
						nextRetry[slot] = math.Inf(1)
						disconnected.Inc()
						s.Rec.Emit(recorder.Event{T: t, Kind: recorder.FlowDisconnect, ID: runIDs[ri]})
					} else {
						stall(slot, runIDs[ri], t)
					}
					starved = true
					continue
				}
				retrying[slot] = false
			}
			if starved {
				continue
			}
		}
		// Next event: earliest completion, arrival, topology event, or
		// stall-retry probe.
		nextT := math.Inf(1)
		if pendOK {
			nextT = pend.Arrival
		}
		if nextEvent < len(s.events) && s.events[nextEvent].Time < nextT {
			nextT = s.events[nextEvent].Time
		}
		for _, slot := range activeSlots {
			if stalled[slot] && nextRetry[slot] < nextT {
				nextT = nextRetry[slot]
			}
		}
		completing := int32(-1)
		for ri, slot := range runSlots {
			r := runRates[ri]
			if math.IsInf(remaining[slot], 1) || r <= 1e-15 {
				continue
			}
			if fin := t + remaining[slot]/r; fin < nextT {
				nextT = fin
				completing = slot
			}
		}
		if s.Horizon > 0 && nextT > s.Horizon {
			dt := s.Horizon - t
			for ri, slot := range runSlots {
				remaining[slot] -= runRates[ri] * dt
			}
			for _, slot := range activeSlots {
				if stalled[slot] {
					res[slot].StallTime += dt
				}
			}
			flush()
			return nil
		}
		if math.IsInf(nextT, 1) {
			for ri, slot := range runSlots {
				if runRates[ri] <= 1e-15 && !math.IsInf(remaining[slot], 1) {
					return fmt.Errorf("flowsim: connection %d starved (disconnected path set?)", runIDs[ri])
				}
			}
			flush()
			return nil
		}
		dt := nextT - t
		for ri, slot := range runSlots {
			remaining[slot] -= runRates[ri] * dt
		}
		for _, slot := range activeSlots {
			if stalled[slot] {
				res[slot].StallTime += dt
			}
		}
		t = nextT
		// Retire completed connections: sink the result, recycle the slot.
		anyRetired := false
		for ri, slot := range runSlots {
			if !math.IsInf(remaining[slot], 1) && (slot == completing || remaining[slot] <= 1e-6) {
				id := runIDs[ri]
				res[slot].Finish = t
				st.retire(int(slot), id)
				anyRetired = true
				completed.Inc()
				fct.Observe(res[slot].FCT())
				s.Rec.Emit(recorder.Event{T: t, Kind: recorder.FlowRetire, ID: id,
					V: res[slot].FCT(), A: int64(res[slot].Reroutes)})
				emit(id, slot)
				remaining[slot] = math.NaN() // slot is dead until reused
				freeSlots = append(freeSlots, slot)
			}
		}
		if anyRetired {
			// Compact the active lists in place; retired slots are the ones
			// just pushed to the free list.
			keptIDs, keptSlots := activeIDs[:0], activeSlots[:0]
			for i, slot := range activeSlots {
				if !math.IsNaN(remaining[slot]) {
					keptIDs = append(keptIDs, activeIDs[i])
					keptSlots = append(keptSlots, slot)
				}
			}
			activeIDs, activeSlots = keptIDs, keptSlots
			st.maybeCompact(activeIDs, activeSlots)
		}
	}
	return nil
}
