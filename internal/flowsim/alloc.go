// Package flowsim is a flow-level network simulator: the substrate this
// reproduction uses in place of the paper's MPTCP packet-level simulator.
//
// Transport connections are fluid flows over fixed path sets. Rates are
// the weighted max-min fair allocation computed by progressive filling —
// the steady state that TCP-family congestion control converges to. MPTCP
// connections hold k subflows of weight 1/k each (modeling coupled
// congestion control's one-connection-worth of aggression, §4.1); TCP/ECMP
// connections hold a single path of weight 1. An event-driven loop
// advances flow arrivals and completions to produce flow completion times
// (Figure 8) and throughput time series (Figure 10).
package flowsim

import (
	"fmt"
	"math"

	"flattree/internal/telemetry"
)

// Subflow is one path of one connection in the allocator's view.
type Subflow struct {
	// Conn indexes the owning connection.
	Conn int
	// Links lists the link IDs the subflow traverses.
	Links []int
	// Weight is the subflow's fair-share weight (1/k for MPTCP subflows,
	// 1 for plain TCP).
	Weight float64
}

// MaxMinRates computes the weighted max-min fair rate of every subflow by
// progressive filling: all subflows grow proportionally to their weights
// until a link saturates; subflows through saturated links freeze; repeat.
// caps holds per-link capacities. Subflows with no links (same-host) or
// zero weight get rate 0 from this allocator's perspective... zero-weight
// subflows are rejected.
func MaxMinRates(caps []float64, subs []Subflow) ([]float64, error) {
	rates := make([]float64, len(subs))
	if len(subs) == 0 {
		return rates, nil
	}
	remaining := append([]float64(nil), caps...)
	active := make([]bool, len(subs))
	// linkWeight[l] = total weight of active subflows crossing l;
	// linkCount[l] is the exact active-subflow count — the authoritative
	// emptiness test (accumulated floating-point residue in linkWeight
	// must never keep a link "loaded" after its subflows all froze).
	linkWeight := make([]float64, len(caps))
	linkCount := make([]int, len(caps))
	linkSubs := make([][]int, len(caps))
	nActive := 0
	for i, s := range subs {
		if s.Weight <= 0 {
			return nil, fmt.Errorf("flowsim: subflow %d has weight %v", i, s.Weight)
		}
		if len(s.Links) == 0 {
			// Loopback path: unconstrained by the fabric; the caller
			// grants these the local rate (see ConnRates).
			continue
		}
		active[i] = true
		nActive++
		for _, l := range s.Links {
			if l < 0 || l >= len(caps) {
				return nil, fmt.Errorf("flowsim: subflow %d references link %d of %d", i, l, len(caps))
			}
			linkWeight[l] += s.Weight
			linkCount[l]++
			linkSubs[l] = append(linkSubs[l], i)
		}
	}

	level := 0.0 // current water level (rate per unit weight)
	rounds := int64(0)
	for nActive > 0 {
		rounds++
		// Find the link that saturates next: smallest additional level
		// Δ = remaining[l] / linkWeight[l] over links with active load.
		bottleneck := -1
		best := math.Inf(1)
		for l := range caps {
			if linkCount[l] == 0 {
				continue
			}
			if d := remaining[l] / linkWeight[l]; d < best {
				best = d
				bottleneck = l
			}
		}
		if bottleneck < 0 {
			break
		}
		level += best
		// Drain every loaded link by the growth of this round.
		for l := range caps {
			if linkCount[l] > 0 {
				remaining[l] -= best * linkWeight[l]
				if remaining[l] < 0 {
					remaining[l] = 0
				}
			}
		}
		// Freeze subflows crossing the bottleneck (and any other link
		// that just hit zero). Freezing the bottleneck's subflows is
		// unconditional, guaranteeing progress every round.
		frozeAny := false
		for l := range caps {
			if linkCount[l] == 0 {
				continue
			}
			if l != bottleneck && remaining[l] > 1e-12 {
				continue
			}
			for _, si := range linkSubs[l] {
				if !active[si] {
					continue
				}
				active[si] = false
				nActive--
				frozeAny = true
				rates[si] = subs[si].Weight * level
				for _, sl := range subs[si].Links {
					linkWeight[sl] -= subs[si].Weight
					linkCount[sl]--
					if linkCount[sl] == 0 {
						linkWeight[sl] = 0
					}
				}
			}
		}
		if !frozeAny {
			// Defensive: cannot happen (the bottleneck always freezes),
			// but never spin.
			break
		}
	}
	telemetry.C("flowsim_allocations_total").Inc()
	telemetry.C("flowsim_alloc_rounds_total").Add(rounds)
	return rates, nil
}

// ConnRates sums subflow rates per connection. nConns is the number of
// connections; loopback subflows (no links) are granted localRate each.
func ConnRates(nConns int, subs []Subflow, rates []float64, localRate float64) []float64 {
	out := make([]float64, nConns)
	for i, s := range subs {
		if len(s.Links) == 0 {
			out[s.Conn] += localRate
			continue
		}
		out[s.Conn] += rates[i]
	}
	return out
}
