// Package flowsim is a flow-level network simulator: the substrate this
// reproduction uses in place of the paper's MPTCP packet-level simulator.
//
// Transport connections are fluid flows over fixed path sets. Rates are
// the weighted max-min fair allocation computed by progressive filling —
// the steady state that TCP-family congestion control converges to. MPTCP
// connections hold k subflows of weight 1/k each (modeling coupled
// congestion control's one-connection-worth of aggression, §4.1); TCP/ECMP
// connections hold a single path of weight 1. An event-driven loop
// advances flow arrivals and completions to produce flow completion times
// (Figure 8) and throughput time series (Figure 10).
package flowsim

import (
	"fmt"
	"math"
)

// Subflow is one path of one connection in the allocator's view.
type Subflow struct {
	// Conn indexes the owning connection.
	Conn int
	// Links lists the link IDs the subflow traverses.
	Links []int
	// Weight is the subflow's fair-share weight (1/k for MPTCP subflows,
	// 1 for plain TCP).
	Weight float64
}

// MaxMinRates computes the weighted max-min fair rate of every subflow by
// progressive filling: all subflows grow proportionally to their weights
// until a link saturates; subflows through saturated links freeze; repeat.
// caps holds per-link capacities (NaN or negative entries are rejected).
// Subflows with no links (same-host) get rate 0 from this allocator's
// perspective; zero-weight subflows are rejected.
//
// The computation runs on the struct-of-arrays core (soa.go), admitting
// each subflow as its own single-path connection; the retained seed
// allocator (maxMinRatesRef) pins its output bit-for-bit.
func MaxMinRates(caps []float64, subs []Subflow) ([]float64, error) {
	rates := make([]float64, len(subs))
	if len(subs) == 0 {
		return rates, nil
	}
	if err := validateCaps(caps); err != nil {
		return nil, err
	}
	occ := make([]int32, len(caps))
	nArena := 0
	for i, s := range subs {
		if math.IsNaN(s.Weight) || s.Weight <= 0 {
			return nil, fmt.Errorf("flowsim: subflow %d has weight %v", i, s.Weight)
		}
		for _, l := range s.Links {
			if l < 0 || l >= len(caps) {
				return nil, fmt.Errorf("flowsim: subflow %d references link %d of %d", i, l, len(caps))
			}
			occ[l]++
		}
		nArena += len(s.Links)
	}
	st := newAllocState(caps, len(subs))
	st.reserveBulk(len(subs), nArena, occ)
	run := make([]int32, len(subs))
	var path [1][]int
	for i, s := range subs {
		path[0] = s.Links
		// A single path splits the weight by 1: the per-subflow weight is
		// s.Weight exactly, as the reference uses it.
		if err := st.admit(i, i, s.Weight, path[:]); err != nil {
			return nil, err
		}
		run[i] = int32(i)
	}
	st.allocate(run)
	for i, s := range subs {
		if len(s.Links) == 0 {
			continue // loopback: rate 0 here, localRate via ConnRates
		}
		rates[i] = st.sfRate[st.subOff[i]]
	}
	return rates, nil
}

// ConnRates sums subflow rates per connection. nConns is the number of
// connections; loopback subflows (no links) are granted localRate each.
func ConnRates(nConns int, subs []Subflow, rates []float64, localRate float64) []float64 {
	out := make([]float64, nConns)
	for i, s := range subs {
		if len(s.Links) == 0 {
			out[s.Conn] += localRate
			continue
		}
		out[s.Conn] += rates[i]
	}
	return out
}
