// Package placement implements the workload-placement side of hybrid-mode
// operation (§2.1, §3.5, §5.2): "the network is organized into
// functionally separate zones each having a different topology. Clusters
// of different sizes can be placed into suitable zones to optimize their
// performance."
//
// A Plan partitions the pods into zones with modes and assigns tenants —
// clusters of servers with all-to-all internal traffic — to zones whose
// topology suits their locality: rack-sized tenants to Clos zones,
// pod-scale tenants to local zones, larger tenants to global zones.
package placement

import (
	"fmt"
	"sort"

	"flattree/internal/core"
	"flattree/internal/topo"
)

// Tenant is one workload: Size servers communicating all-to-all.
type Tenant struct {
	Name string
	Size int
}

// Zone is a run of consecutive pods sharing a mode.
type Zone struct {
	Mode core.Mode
	// Pods lists the pod indices (consecutive).
	Pods []int
}

// Capacity returns the zone's server capacity for the layout.
func (z Zone) Capacity(p topo.ClosParams) int {
	return len(z.Pods) * p.EdgesPerPod * p.ServersPerEdge
}

// Assignment places one tenant onto concrete server indices.
type Assignment struct {
	Tenant  Tenant
	Zone    int // index into the plan's zones
	Servers []int
}

// Plan is a zoned layout with tenant assignments.
type Plan struct {
	Clos        topo.ClosParams
	Zones       []Zone
	Assignments []Assignment
}

// PreferredMode returns the topology mode §2.1's analysis prefers for a
// tenant of the given size on the layout: Clos when the tenant fits in a
// rack (rack-local traffic), local mode when it fits in a pod, global mode
// otherwise.
func PreferredMode(p topo.ClosParams, size int) core.Mode {
	switch {
	case size <= p.ServersPerEdge:
		return core.ModeClos
	case size <= p.EdgesPerPod*p.ServersPerEdge:
		return core.ModeLocal
	default:
		return core.ModeGlobal
	}
}

// Place builds a zoned plan for the tenants on the given layout. Zoning is
// derived from demand: pods are apportioned per mode by the server volume
// of tenants preferring that mode (each nonempty class gets at least one
// pod), then tenants are placed into their preferred zone first-fit,
// falling back to any zone with room. Tenants larger than the network are
// rejected.
func Place(p topo.ClosParams, tenants []Tenant) (*Plan, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	perPod := p.EdgesPerPod * p.ServersPerEdge
	total := p.TotalServers()
	demand := map[core.Mode]int{}
	var totalDemand int
	for _, t := range tenants {
		if t.Size < 1 {
			return nil, fmt.Errorf("placement: tenant %q has size %d", t.Name, t.Size)
		}
		if t.Size > total {
			return nil, fmt.Errorf("placement: tenant %q (%d servers) exceeds the network (%d)",
				t.Name, t.Size, total)
		}
		demand[PreferredMode(p, t.Size)] += t.Size
		totalDemand += t.Size
	}
	if totalDemand > total {
		return nil, fmt.Errorf("placement: tenants need %d servers, network has %d", totalDemand, total)
	}

	// Apportion pods to modes by demand share (largest remainder, at
	// least one pod per nonempty class), defaulting leftovers to Clos.
	modes := []core.Mode{core.ModeClos, core.ModeLocal, core.ModeGlobal}
	podsFor := map[core.Mode]int{}
	assigned := 0
	for _, m := range modes {
		if demand[m] == 0 {
			continue
		}
		n := demand[m] * p.Pods / totalDemand
		if n < 1 {
			n = 1
		}
		// A tenant class must fit its zone.
		if need := (demand[m] + perPod - 1) / perPod; n < need {
			n = need
		}
		podsFor[m] = n
		assigned += n
	}
	if assigned > p.Pods {
		return nil, fmt.Errorf("placement: demand needs %d pods, network has %d", assigned, p.Pods)
	}
	// Leftover pods go to the largest class (or Clos when empty).
	leftover := p.Pods - assigned
	if leftover > 0 {
		best := core.ModeClos
		for _, m := range modes {
			if demand[m] > demand[best] {
				best = m
			}
		}
		podsFor[best] += leftover
	}

	plan := &Plan{Clos: p}
	pod := 0
	zoneOf := map[core.Mode]int{}
	for _, m := range modes {
		n := podsFor[m]
		if n == 0 {
			continue
		}
		var pods []int
		for i := 0; i < n; i++ {
			pods = append(pods, pod)
			pod++
		}
		zoneOf[m] = len(plan.Zones)
		plan.Zones = append(plan.Zones, Zone{Mode: m, Pods: pods})
	}

	// First-fit decreasing placement into preferred zones.
	order := make([]int, len(tenants))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return tenants[order[a]].Size > tenants[order[b]].Size })

	free := make([][]int, len(plan.Zones)) // free server indices per zone
	for zi, z := range plan.Zones {
		for _, pd := range z.Pods {
			for s := 0; s < perPod; s++ {
				free[zi] = append(free[zi], pd*perPod+s)
			}
		}
	}
	place := func(ti, zi int) bool {
		t := tenants[ti]
		if len(free[zi]) < t.Size {
			return false
		}
		plan.Assignments = append(plan.Assignments, Assignment{
			Tenant: t, Zone: zi, Servers: free[zi][:t.Size],
		})
		free[zi] = free[zi][t.Size:]
		return true
	}
	for _, ti := range order {
		pref, havePref := zoneOf[PreferredMode(p, tenants[ti].Size)]
		if havePref && place(ti, pref) {
			continue
		}
		placed := false
		for zi := range plan.Zones {
			if place(ti, zi) {
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("placement: no zone can host tenant %q (%d servers)",
				tenants[ti].Name, tenants[ti].Size)
		}
	}
	// Restore input order for stable output.
	sort.SliceStable(plan.Assignments, func(a, b int) bool {
		return tenantIndex(tenants, plan.Assignments[a].Tenant.Name) <
			tenantIndex(tenants, plan.Assignments[b].Tenant.Name)
	})
	return plan, nil
}

func tenantIndex(tenants []Tenant, name string) int {
	for i, t := range tenants {
		if t.Name == name {
			return i
		}
	}
	return len(tenants)
}

// PodModes returns the per-pod mode vector the plan requires, suitable for
// Network.ConvertPods / Controller.ConvertPods.
func (pl *Plan) PodModes() []core.Mode {
	modes := make([]core.Mode, pl.Clos.Pods)
	for i := range modes {
		modes[i] = core.ModeClos // unzoned pods default to Clos
	}
	for _, z := range pl.Zones {
		for _, p := range z.Pods {
			modes[p] = z.Mode
		}
	}
	return modes
}

// ZoneOf returns the zone index hosting a tenant, or -1.
func (pl *Plan) ZoneOf(name string) int {
	for _, a := range pl.Assignments {
		if a.Tenant.Name == name {
			return a.Zone
		}
	}
	return -1
}
