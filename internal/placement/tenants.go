package placement

import (
	"fmt"
	"math"
	"math/rand"
)

// Tenant-size sampling calibrated to the §2.1 measurement: "in a Microsoft
// data center, the mean tenant size is 79 VMs and the largest tenant has
// 1487 VMs" [15, 49]. Sizes follow a log-normal whose mean matches 79 and
// whose upper tail puts the maximum of a ~1500-tenant population near
// 1487 — heavy-tailed, mostly-small tenants with rare giants, the shape
// that motivates convertibility.

// TenantSizeMean and TenantSizeSigma are the log-normal parameters:
// exp(mu + sigma^2/2) = 79.
const (
	tenantMu    = 3.71
	tenantSigma = 1.15
)

// SampleTenants draws n tenants with log-normal sizes clamped to
// [1, maxSize]. Names are tenant-0..tenant-(n-1).
func SampleTenants(n, maxSize int, seed int64) ([]Tenant, error) {
	if n < 1 || maxSize < 1 {
		return nil, fmt.Errorf("placement: sample %d tenants with max %d", n, maxSize)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]Tenant, n)
	for i := range out {
		size := int(math.Round(math.Exp(tenantMu + tenantSigma*rng.NormFloat64())))
		if size < 1 {
			size = 1
		}
		if size > maxSize {
			size = maxSize
		}
		out[i] = Tenant{Name: fmt.Sprintf("tenant-%d", i), Size: size}
	}
	return out, nil
}

// FitTenants greedily selects a prefix of the sampled tenants that fits a
// network of the given capacity with the target utilization (0..1],
// dropping tenants that would overflow. It preserves the heavy-tailed
// mix.
func FitTenants(tenants []Tenant, capacity int, utilization float64) []Tenant {
	if utilization <= 0 || utilization > 1 {
		utilization = 0.9
	}
	budget := int(float64(capacity) * utilization)
	var out []Tenant
	used := 0
	for _, t := range tenants {
		if used+t.Size > budget {
			continue
		}
		out = append(out, t)
		used += t.Size
	}
	return out
}
