package placement

import (
	"sort"
	"testing"

	"flattree/internal/core"
	"flattree/internal/topo"
)

// layout: 4 pods, 8 servers per rack, 32 per pod, 128 total.
func layout() topo.ClosParams {
	return topo.ClosParams{Name: "pl", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4,
		ServersPerEdge: 8, EdgeUplinks: 4, AggUplinks: 4, Cores: 16}
}

func TestPreferredMode(t *testing.T) {
	p := layout()
	for _, c := range []struct {
		size int
		want core.Mode
	}{
		{1, core.ModeClos}, {8, core.ModeClos},
		{9, core.ModeLocal}, {32, core.ModeLocal},
		{33, core.ModeGlobal}, {128, core.ModeGlobal},
	} {
		if got := PreferredMode(p, c.size); got != c.want {
			t.Errorf("PreferredMode(%d) = %v, want %v", c.size, got, c.want)
		}
	}
}

func TestPlaceMixedTenants(t *testing.T) {
	p := layout()
	tenants := []Tenant{
		{Name: "web-a", Size: 6},      // rack-sized -> Clos
		{Name: "web-b", Size: 8},      // rack-sized -> Clos
		{Name: "analytics", Size: 24}, // pod-sized -> local
		{Name: "ml-train", Size: 48},  // network-scale -> global
	}
	plan, err := Place(p, tenants)
	if err != nil {
		t.Fatal(err)
	}
	// Every tenant assigned, disjointly, inside its zone's pods.
	used := map[int]string{}
	for _, a := range plan.Assignments {
		if len(a.Servers) != a.Tenant.Size {
			t.Fatalf("%s: got %d servers, want %d", a.Tenant.Name, len(a.Servers), a.Tenant.Size)
		}
		zone := plan.Zones[a.Zone]
		podSet := map[int]bool{}
		for _, pd := range zone.Pods {
			podSet[pd] = true
		}
		for _, s := range a.Servers {
			if prev, clash := used[s]; clash {
				t.Fatalf("server %d assigned to both %s and %s", s, prev, a.Tenant.Name)
			}
			used[s] = a.Tenant.Name
			if !podSet[s/32] {
				t.Fatalf("%s: server %d outside its zone pods %v", a.Tenant.Name, s, zone.Pods)
			}
		}
	}
	// Preferred zones honored.
	for _, a := range plan.Assignments {
		want := PreferredMode(p, a.Tenant.Size)
		if got := plan.Zones[a.Zone].Mode; got != want {
			t.Errorf("%s placed in %v zone, want %v", a.Tenant.Name, got, want)
		}
	}
	// Pod modes cover all pods and include all three modes here.
	modes := plan.PodModes()
	if len(modes) != 4 {
		t.Fatalf("pod modes = %v", modes)
	}
	seen := map[core.Mode]bool{}
	for _, m := range modes {
		seen[m] = true
	}
	if len(seen) != 3 {
		t.Fatalf("expected all three modes in zoning, got %v", modes)
	}
}

func TestPlaceAppliesToNetwork(t *testing.T) {
	p := layout()
	plan, err := Place(p, []Tenant{{Name: "a", Size: 8}, {Name: "b", Size: 60}})
	if err != nil {
		t.Fatal(err)
	}
	nw, err := core.New(p, core.Options{N: 1, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	for pod, m := range plan.PodModes() {
		if err := nw.SetPodMode(pod, m); err != nil {
			t.Fatal(err)
		}
	}
	r := nw.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if plan.ZoneOf("a") < 0 || plan.ZoneOf("b") < 0 || plan.ZoneOf("nope") != -1 {
		t.Fatal("ZoneOf lookup wrong")
	}
}

func TestPlaceFallsBackWhenPreferredFull(t *testing.T) {
	p := layout()
	// Clos demand of 3 rack tenants = 24 servers -> Clos zone sized ~1
	// pod (32 slots); a fourth rack tenant overflows into another zone
	// rather than failing.
	tenants := []Tenant{
		{Name: "r1", Size: 8}, {Name: "r2", Size: 8}, {Name: "r3", Size: 8}, {Name: "r4", Size: 8},
		{Name: "g", Size: 90},
	}
	plan, err := Place(p, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != 5 {
		t.Fatalf("assignments = %d", len(plan.Assignments))
	}
}

func TestPlaceValidation(t *testing.T) {
	p := layout()
	if _, err := Place(p, []Tenant{{Name: "x", Size: 0}}); err == nil {
		t.Fatal("zero-size tenant accepted")
	}
	if _, err := Place(p, []Tenant{{Name: "x", Size: 1000}}); err == nil {
		t.Fatal("oversized tenant accepted")
	}
	if _, err := Place(p, []Tenant{{Name: "a", Size: 128}, {Name: "b", Size: 1}}); err == nil {
		t.Fatal("overcommitted tenants accepted")
	}
}

func TestSampleTenantsStatistics(t *testing.T) {
	tenants, err := SampleTenants(1500, 1487, 42)
	if err != nil {
		t.Fatal(err)
	}
	var sum, max int
	sizes := make([]int, 0, len(tenants))
	for _, tn := range tenants {
		if tn.Size < 1 || tn.Size > 1487 {
			t.Fatalf("size %d out of range", tn.Size)
		}
		sum += tn.Size
		if tn.Size > max {
			max = tn.Size
		}
		sizes = append(sizes, tn.Size)
	}
	mean := float64(sum) / float64(len(tenants))
	// §2.1: mean 79 VMs, largest 1487. Allow sampling noise.
	if mean < 50 || mean > 110 {
		t.Fatalf("mean tenant size %.1f, want ~79", mean)
	}
	if max < 1000 {
		t.Fatalf("largest tenant %d, want a heavy tail near 1487", max)
	}
	// Heavy tail: the median sits well below the mean.
	sort.Ints(sizes)
	median := float64(sizes[len(sizes)/2])
	if median > mean*0.7 {
		t.Fatalf("median %.0f vs mean %.1f: not heavy-tailed", median, mean)
	}
}

func TestSampleAndPlace(t *testing.T) {
	p := layout() // 128 servers
	tenants, err := SampleTenants(40, p.EdgesPerPod*p.ServersPerEdge*2, 7)
	if err != nil {
		t.Fatal(err)
	}
	fitted := FitTenants(tenants, p.TotalServers(), 0.8)
	if len(fitted) == 0 {
		t.Fatal("no tenants fitted")
	}
	plan, err := Place(p, fitted)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Assignments) != len(fitted) {
		t.Fatalf("placed %d of %d tenants", len(plan.Assignments), len(fitted))
	}
}

func TestSampleTenantsValidation(t *testing.T) {
	if _, err := SampleTenants(0, 10, 1); err == nil {
		t.Fatal("zero tenants accepted")
	}
	if _, err := SampleTenants(5, 0, 1); err == nil {
		t.Fatal("zero max size accepted")
	}
}
