package telemetry

import "testing"

// BenchmarkCounterDisabled measures the instrumented-hot-path cost with
// telemetry off: a nil handle's Add must stay at or under ~2 ns/op (a
// single predictable branch), so simulators can keep their counters
// unconditionally.
func BenchmarkCounterDisabled(b *testing.B) {
	Disable()
	c := C("bench_disabled_total") // nil: telemetry is off
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}

// BenchmarkCounterEnabled measures the enabled fast path: one atomic add.
func BenchmarkCounterEnabled(b *testing.B) {
	Enable()
	defer Disable()
	c := C("bench_enabled_total")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
	if c.Value() != int64(b.N) {
		b.Fatalf("count = %d, want %d", c.Value(), b.N)
	}
}

// BenchmarkCounterLookupEnabled measures the by-name path (registry lock +
// map lookup) used once per solver call rather than per event.
func BenchmarkCounterLookupEnabled(b *testing.B) {
	Enable()
	defer Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		C("bench_lookup_total").Add(1)
	}
}

// BenchmarkSpan measures a full start/attr/end cycle with telemetry on.
// The registry is recycled periodically so the benchmark measures span
// cost, not the memory of b.N retained roots.
func BenchmarkSpan(b *testing.B) {
	r := NewRegistry()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%100000 == 99999 {
			b.StopTimer()
			r = NewRegistry()
			b.StartTimer()
		}
		sp := r.StartSpan("bench")
		sp.SetAttr(Int("i", i))
		sp.End()
	}
}

// BenchmarkSpanDisabled measures the nil-span no-op cycle.
func BenchmarkSpanDisabled(b *testing.B) {
	Disable()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := StartSpan("bench")
		sp.SetAttr(Int("i", i))
		sp.End()
	}
}

// BenchmarkHistogramEnabled measures one log-bucket observation.
func BenchmarkHistogramEnabled(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram("bench_seconds")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i&1023) * 1e-4)
	}
}
