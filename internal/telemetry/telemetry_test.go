package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestNilHandlesAreNoOps(t *testing.T) {
	var r *Registry
	c := r.Counter("x")
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value = %d", c.Value())
	}
	g := r.Gauge("y")
	g.Set(3)
	g.Add(1)
	if g.Value() != 0 {
		t.Fatalf("nil gauge value = %v", g.Value())
	}
	h := r.Histogram("z")
	h.Observe(1)
	if h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("nil histogram count=%d sum=%v", h.Count(), h.Sum())
	}
	sp := r.StartSpan("s")
	sp.SetAttr(Int("k", 1))
	sp.Record("child", 0.5)
	sp.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 0 || len(snap.Counters) != 0 {
		t.Fatalf("nil registry snapshot not empty: %+v", snap)
	}
	if err := r.WritePrometheus(&bytes.Buffer{}); err != nil {
		t.Fatalf("nil WritePrometheus: %v", err)
	}
}

func TestGlobalDisabledByDefault(t *testing.T) {
	Disable()
	if Default() != nil {
		t.Fatal("global registry not nil before Enable")
	}
	if C("a") != nil || G("b") != nil || H("c") != nil || StartSpan("d") != nil {
		t.Fatal("disabled accessors returned live handles")
	}
	r := Enable()
	defer Disable()
	if Default() != r {
		t.Fatal("Enable did not install the registry")
	}
	C("a").Inc()
	if r.Counter("a").Value() != 1 {
		t.Fatal("global counter did not record")
	}
}

func TestCountersGaugesHistograms(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("conv_total", "mode", "global")
	c.Add(3)
	if got := r.Counter("conv_total", "mode", "global"); got != c {
		t.Fatal("same name+labels returned a different counter")
	}
	if got := r.Counter("conv_total", "mode", "clos"); got == c {
		t.Fatal("different labels shared a counter")
	}
	g := r.Gauge("depth")
	g.Set(2.5)
	g.Add(-0.5)
	if g.Value() != 2 {
		t.Fatalf("gauge = %v, want 2", g.Value())
	}
	h := r.Histogram("lat_seconds")
	for _, v := range []float64{1e-6, 0.002, 0.002, 1.5, 1e9} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-(1e-6+0.004+1.5+1e9)) > 1e-3 {
		t.Fatalf("sum = %v", h.Sum())
	}

	snap := r.Snapshot()
	if snap.Counters[`conv_total{mode="global"}`] != 3 {
		t.Fatalf("snapshot counters: %v", snap.Counters)
	}
	hs := snap.Histograms["lat_seconds"]
	var total int64
	for _, b := range hs.Buckets {
		total += b.Count
	}
	if total != 5 {
		t.Fatalf("bucket counts sum to %d", total)
	}
	if q := hs.Quantile(0.5); q <= 0 || q > 0.01 {
		t.Fatalf("p50 = %v, want a small-latency bound", q)
	}
	if q := hs.Quantile(0.999); !math.IsInf(q, 1) {
		t.Fatalf("p99.9 = %v, want +Inf (1e9 overflows the bounds)", q)
	}
}

func TestSpanNesting(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("experiment", Str("id", "table3"))
	conv := r.StartSpan("conversion")
	conv.Record("ocs", 0.160, Int("partitions", 4))
	conv.Record("ramp", 1.2)
	conv.SetAttr(Int("rules", 42))
	conv.End()
	root.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("want 1 root span, got %d", len(snap.Spans))
	}
	rs := snap.Spans[0]
	if rs.Name != "experiment" || rs.Attrs["id"] != "table3" {
		t.Fatalf("root span: %+v", rs)
	}
	if len(rs.Children) != 1 || rs.Children[0].Name != "conversion" {
		t.Fatalf("conversion not nested under root: %+v", rs.Children)
	}
	cs := rs.Children[0]
	if len(cs.Children) != 2 || cs.Children[0].Name != "ocs" || cs.Children[1].Name != "ramp" {
		t.Fatalf("phase children: %+v", cs.Children)
	}
	if !cs.Children[0].Modeled || cs.Children[0].DurationSeconds != 0.160 {
		t.Fatalf("ocs child: %+v", cs.Children[0])
	}
	if found := rs.Find("ramp"); found == nil || found.DurationSeconds != 1.2 {
		t.Fatalf("Find(ramp) = %+v", found)
	}
	// Attribute JSON round-trip keeps ints readable.
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if len(back.Spans) != 1 {
		t.Fatalf("round-trip lost spans: %+v", back)
	}
}

func TestSpanDoubleEndAndOutOfOrder(t *testing.T) {
	r := NewRegistry()
	a := r.StartSpan("a")
	b := r.StartSpan("b")
	a.End() // out of order: a ends while b is open
	b.End()
	b.End() // double end is a no-op
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "a" {
		t.Fatalf("roots: %+v", snap.Spans)
	}
	if len(snap.Spans[0].Children) != 1 || snap.Spans[0].Children[0].Name != "b" {
		t.Fatalf("b should remain a's child: %+v", snap.Spans[0])
	}
}

// promLine matches one Prometheus text-exposition sample:
// name{labels} value.
var promLine = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? (-?[0-9][0-9.eE+-]*|[+-]Inf|NaN)$`)

func TestPrometheusExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("flowsim_events_total").Add(7)
	r.Counter("conv_total", "mode", "global", "kind", "full").Inc()
	r.Gauge("active_flows").Set(3.5)
	h := r.Histogram("fct_seconds")
	h.Observe(0.01)
	h.Observe(250)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	samples := 0
	for _, line := range lines {
		if strings.HasPrefix(line, "# TYPE ") {
			continue
		}
		if !promLine.MatchString(line) {
			t.Fatalf("line does not parse as name{labels} value: %q", line)
		}
		samples++
	}
	if samples == 0 {
		t.Fatal("no sample lines emitted")
	}
	for _, want := range []string{
		"# TYPE flowsim_events_total counter",
		"flowsim_events_total 7",
		`conv_total{kind="full",mode="global"} 1`,
		"active_flows 3.5",
		`fct_seconds_bucket{le="+Inf"} 2`,
		"fct_seconds_count 2",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in output:\n%s", want, out)
		}
	}
	// Cumulative bucket counts must be non-decreasing.
	prev := int64(-1)
	for _, line := range lines {
		if !strings.HasPrefix(line, "fct_seconds_bucket") {
			continue
		}
		n, err := strconv.ParseInt(line[strings.LastIndex(line, " ")+1:], 10, 64)
		if err != nil {
			t.Fatalf("bucket line %q: %v", line, err)
		}
		if n < prev {
			t.Fatalf("bucket counts not cumulative at %q", line)
		}
		prev = n
	}
}
