package telemetry

import "time"

// Attr is one span attribute (rule counts, modes, iteration totals).
type Attr struct {
	Key   string
	Value interface{}
}

// Int builds an integer attribute.
func Int(key string, v int) Attr { return Attr{Key: key, Value: v} }

// Float builds a float attribute.
func Float(key string, v float64) Attr { return Attr{Key: key, Value: v} }

// Str builds a string attribute.
func Str(key, v string) Attr { return Attr{Key: key, Value: v} }

// Span is one timed region of a run. Spans nest: a span started while
// another is open becomes its child, so a run forms a trace tree (an
// experiment root span over conversion spans over phase spans). Parenting
// uses a registry-wide stack of open spans — precise for the single
// orchestration goroutine that drives runs, best-effort when spans are
// started from several goroutines at once (use Record for children built
// concurrently or with modeled durations).
//
// The nil Span is a valid no-op, so instrumented code never checks whether
// telemetry is enabled.
type Span struct {
	reg    *Registry
	parent *Span
	name   string
	start  time.Time
	offset float64 // seconds since registry creation
	dur    float64 // seconds; wall time at End, or modeled (Record)
	model  bool    // duration is modeled, not measured
	attrs  []Attr
	kids   []*Span
	ended  bool
}

// StartSpan opens a span as a child of the innermost open span (or as a
// root). It returns nil — a no-op span — on a nil registry.
func (r *Registry) StartSpan(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := &Span{reg: r, name: name, start: now, offset: now.Sub(r.start).Seconds(), attrs: attrs}
	if n := len(r.stack); n > 0 {
		sp.parent = r.stack[n-1]
		sp.parent.kids = append(sp.parent.kids, sp)
	}
	r.stack = append(r.stack, sp)
	return sp
}

// StartRootSpan opens a span that is always a root, regardless of the
// open-span stack — for top-level operations that may run concurrently
// (parallel experiment batches) and whose spans must not nest under one
// another. The span still joins the stack so spans started below it
// attach as children; with several roots open at once that attribution
// is best-effort, like all cross-goroutine parenting here.
func (r *Registry) StartRootSpan(name string, attrs ...Attr) *Span {
	if r == nil {
		return nil
	}
	now := time.Now()
	r.mu.Lock()
	defer r.mu.Unlock()
	sp := &Span{reg: r, name: name, start: now, offset: now.Sub(r.start).Seconds(), attrs: attrs}
	r.stack = append(r.stack, sp)
	return sp
}

// SetAttr appends attributes to the span.
func (s *Span) SetAttr(attrs ...Attr) {
	if s == nil {
		return
	}
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	s.attrs = append(s.attrs, attrs...)
}

// Record attaches an already-finished child span with an explicit duration
// in seconds — how modeled phases (OCS reconfiguration, per-rule latency,
// transport ramp) enter a trace whose wall clock did not actually elapse.
func (s *Span) Record(name string, seconds float64, attrs ...Attr) *Span {
	if s == nil {
		return nil
	}
	now := time.Now()
	s.reg.mu.Lock()
	defer s.reg.mu.Unlock()
	child := &Span{
		reg: s.reg, parent: s, name: name, start: now,
		offset: now.Sub(s.reg.start).Seconds(),
		dur:    seconds, model: true, attrs: attrs, ended: true,
	}
	s.kids = append(s.kids, child)
	return child
}

// End closes the span, fixing its wall-clock duration, and files root
// spans into the registry for export. Ending out of order is tolerated
// (the span is removed from wherever it sits on the open stack); double
// End is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	dur := time.Since(s.start).Seconds()
	r := s.reg
	r.mu.Lock()
	defer r.mu.Unlock()
	if s.ended {
		return
	}
	s.ended = true
	s.dur = dur
	for i := len(r.stack) - 1; i >= 0; i-- {
		if r.stack[i] == s {
			r.stack = append(r.stack[:i], r.stack[i+1:]...)
			break
		}
	}
	if s.parent == nil {
		r.roots = append(r.roots, s)
		r.enforceRootLimitLocked()
	}
}
