package telemetry

import "sync/atomic"

// global is the process-wide registry; nil means telemetry is disabled and
// every handle returned by the package-level accessors is a no-op.
var global atomic.Pointer[Registry]

// Enable installs a fresh global registry and returns it. Callers that
// enable telemetry for a bounded scope (tests) should defer Disable.
func Enable() *Registry {
	r := NewRegistry()
	global.Store(r)
	return r
}

// Disable removes the global registry; instrumented code reverts to the
// nil-handle fast path.
func Disable() { global.Store(nil) }

// Default returns the global registry, or nil when telemetry is disabled.
func Default() *Registry { return global.Load() }

// C returns the named counter from the global registry (nil when
// disabled).
func C(name string, labels ...string) *Counter { return Default().Counter(name, labels...) }

// G returns the named gauge from the global registry (nil when disabled).
func G(name string, labels ...string) *Gauge { return Default().Gauge(name, labels...) }

// H returns the named histogram from the global registry (nil when
// disabled).
func H(name string, labels ...string) *Histogram { return Default().Histogram(name, labels...) }

// StartSpan opens a span on the global registry (nil when disabled).
func StartSpan(name string, attrs ...Attr) *Span { return Default().StartSpan(name, attrs...) }

// StartRootSpan opens an always-root span on the global registry (nil
// when disabled).
func StartRootSpan(name string, attrs ...Attr) *Span { return Default().StartRootSpan(name, attrs...) }
