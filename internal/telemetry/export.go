package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"time"
)

// Snapshot is a point-in-time, export-ready copy of a registry: plain maps
// and slices, safe to marshal or inspect after the run continues.
type Snapshot struct {
	TakenAt    time.Time                    `json:"taken_at"`
	UptimeSecs float64                      `json:"uptime_seconds"`
	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]float64           `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Spans      []SpanSnapshot               `json:"spans,omitempty"`
}

// HistogramSnapshot summarizes one histogram.
type HistogramSnapshot struct {
	Count   int64    `json:"count"`
	Sum     float64  `json:"sum"`
	Buckets []Bucket `json:"buckets,omitempty"` // non-empty buckets only
}

// Bucket is one non-cumulative histogram bucket; Le is +Inf for the
// overflow bucket.
type Bucket struct {
	Le    float64 `json:"le"`
	Count int64   `json:"count"`
}

// Quantile estimates the q-quantile (0 < q < 1) from the bucket counts by
// attributing each bucket's mass to its upper bound — a conservative
// log-scale estimate good to one half-decade.
func (h HistogramSnapshot) Quantile(q float64) float64 {
	if h.Count == 0 {
		return 0
	}
	rank := int64(math.Ceil(q * float64(h.Count)))
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for _, b := range h.Buckets {
		seen += b.Count
		if seen >= rank {
			return b.Le
		}
	}
	return math.Inf(1)
}

// SpanSnapshot is one span of the trace tree.
type SpanSnapshot struct {
	Name string `json:"name"`
	// Start is seconds since the registry was created.
	Start float64 `json:"start"`
	// DurationSeconds is wall time, or the modeled duration when Modeled.
	DurationSeconds float64                `json:"duration_seconds"`
	Modeled         bool                   `json:"modeled,omitempty"`
	Attrs           map[string]interface{} `json:"attrs,omitempty"`
	Children        []SpanSnapshot         `json:"children,omitempty"`
}

// Find returns the first child (depth-first, pre-order) with the given
// name, or nil.
func (s *SpanSnapshot) Find(name string) *SpanSnapshot {
	for i := range s.Children {
		c := &s.Children[i]
		if c.Name == name {
			return c
		}
		if found := c.Find(name); found != nil {
			return found
		}
	}
	return nil
}

// Snapshot copies the registry's current state. Only finished spans are
// exported; open spans (an experiment still running on another goroutine)
// are omitted. A nil registry yields an empty snapshot.
func (r *Registry) Snapshot() *Snapshot {
	snap := &Snapshot{TakenAt: time.Now()}
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	snap.UptimeSecs = time.Since(r.start).Seconds()
	if len(r.counters) > 0 || r.droppedRoots > 0 {
		snap.Counters = make(map[string]int64, len(r.counters)+1)
		for key, c := range r.counters {
			snap.Counters[key] = c.Value()
		}
		if r.droppedRoots > 0 {
			snap.Counters["telemetry_root_spans_dropped_total"] = r.droppedRoots
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]float64, len(r.gauges))
		for key, g := range r.gauges {
			snap.Gauges[key] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for key, h := range r.hists {
			hs := HistogramSnapshot{Count: h.Count(), Sum: h.Sum()}
			for i := range h.buckets {
				n := h.buckets[i].Load()
				if n == 0 {
					continue
				}
				le := math.Inf(1)
				if i < len(h.bounds) {
					le = h.bounds[i]
				}
				hs.Buckets = append(hs.Buckets, Bucket{Le: le, Count: n})
			}
			snap.Histograms[key] = hs
		}
	}
	for _, root := range r.roots {
		snap.Spans = append(snap.Spans, snapshotSpan(root))
	}
	return snap
}

func snapshotSpan(s *Span) SpanSnapshot {
	out := SpanSnapshot{
		Name: s.name, Start: s.offset,
		DurationSeconds: s.dur, Modeled: s.model,
	}
	if len(s.attrs) > 0 {
		out.Attrs = make(map[string]interface{}, len(s.attrs))
		for _, a := range s.attrs {
			out.Attrs[a.Key] = a.Value
		}
	}
	for _, k := range s.kids {
		out.Children = append(out.Children, snapshotSpan(k))
	}
	return out
}

// WriteJSON renders the snapshot as indented JSON.
func (s *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// WriteJSON snapshots the registry and renders it as indented JSON.
func (r *Registry) WriteJSON(w io.Writer) error { return r.Snapshot().WriteJSON(w) }

// WritePrometheus renders the registry in the Prometheus text exposition
// format (version 0.0.4): "# TYPE" comments followed by
// "name{labels} value" sample lines, deterministically ordered.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	typed := map[string]bool{}
	writeType := func(name, kind string) error {
		if typed[name] {
			return nil
		}
		typed[name] = true
		_, err := fmt.Fprintf(w, "# TYPE %s %s\n", name, kind)
		return err
	}

	for _, key := range sortedKeys(r.counters) {
		c := r.counters[key]
		if err := writeType(c.name, "counter"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %d\n", c.name, c.labels, c.Value()); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(r.gauges) {
		g := r.gauges[key]
		if err := writeType(g.name, "gauge"); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s%s %s\n", g.name, g.labels, formatFloat(g.Value())); err != nil {
			return err
		}
	}
	for _, key := range sortedKeys(r.hists) {
		h := r.hists[key]
		if err := writeType(h.name, "histogram"); err != nil {
			return err
		}
		var cum int64
		for i := range h.buckets {
			cum += h.buckets[i].Load()
			le := "+Inf"
			if i < len(h.bounds) {
				le = formatFloat(h.bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n",
				h.name, withLabel(h.labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.labels, formatFloat(h.Sum())); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labels, h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// sortedKeys returns a map's keys in ascending order.
func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// withLabel merges one extra label into a rendered label block.
func withLabel(labels, key, value string) string {
	extra := fmt.Sprintf("%s=%q", key, value)
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

// formatFloat renders a float the way Prometheus expects (shortest
// round-trip form; +Inf/-Inf/NaN spelled out).
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
