package telemetry

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

// The export edge cases: quantiles over empty and overflow-only
// histograms, label escaping in the Prometheus text format, and JSON
// snapshot stability while spans are still ending on other goroutines.

func TestQuantileEmptyHistogram(t *testing.T) {
	var h HistogramSnapshot
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := h.Quantile(q); got != 0 {
			t.Fatalf("empty histogram Quantile(%v) = %v, want 0", q, got)
		}
	}
}

func TestQuantileSingleObservation(t *testing.T) {
	h := HistogramSnapshot{Count: 1, Sum: 3, Buckets: []Bucket{{Le: 10, Count: 1}}}
	for _, q := range []float64{0.001, 0.5, 0.999} {
		if got := h.Quantile(q); got != 10 {
			t.Fatalf("Quantile(%v) = %v, want 10", q, got)
		}
	}
}

func TestQuantileOverflowBucket(t *testing.T) {
	// All mass beyond the largest bound: the estimate must be +Inf, not
	// a silent finite bound.
	h := HistogramSnapshot{Count: 4, Buckets: []Bucket{{Le: math.Inf(1), Count: 4}}}
	if got := h.Quantile(0.5); !math.IsInf(got, 1) {
		t.Fatalf("overflow-only Quantile(0.5) = %v, want +Inf", got)
	}
	// Mass split across a finite bucket and the overflow bucket.
	h = HistogramSnapshot{Count: 4, Buckets: []Bucket{{Le: 1, Count: 2}, {Le: math.Inf(1), Count: 2}}}
	if got := h.Quantile(0.5); got != 1 {
		t.Fatalf("Quantile(0.5) = %v, want 1", got)
	}
	if got := h.Quantile(0.99); !math.IsInf(got, 1) {
		t.Fatalf("Quantile(0.99) = %v, want +Inf", got)
	}
}

func TestWithLabelEscaping(t *testing.T) {
	// No existing labels: a fresh block is opened.
	if got := withLabel("", "le", "+Inf"); got != `{le="+Inf"}` {
		t.Fatalf("withLabel on empty block = %q", got)
	}
	// Merging into an existing block keeps prior labels intact.
	base := labelString([]string{"mode", "clos"})
	if got := withLabel(base, "le", "0.5"); got != `{mode="clos",le="0.5"}` {
		t.Fatalf("withLabel merge = %q", got)
	}
	// Values with quotes, backslashes, and newlines must stay escaped so
	// the exposition format remains one sample per line.
	for value, want := range map[string]string{
		`say "hi"`: `{le="say \"hi\""}`,
		`a\b`:      `{le="a\\b"}`,
		"a\nb":     `{le="a\nb"}`,
	} {
		if got := withLabel("", "le", value); got != want {
			t.Fatalf("withLabel(%q) = %q, want %q", value, got, want)
		}
		if strings.Count(withLabel("", "le", value), "\n") != 0 {
			t.Fatalf("withLabel(%q) contains a raw newline", value)
		}
	}
}

func TestPrometheusLabeledHistogramEscapes(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBounds("escape_seconds", []float64{1}, "note", "line1\nline\"2\"")
	h.Observe(0.5)
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range strings.Split(strings.TrimSuffix(out, "\n"), "\n") {
		if line == "" {
			t.Fatalf("empty exposition line in:\n%s", out)
		}
	}
	if !strings.Contains(out, `escape_seconds_bucket{note="line1\nline\"2\"",le="1"} 1`) {
		t.Fatalf("escaped label block missing:\n%s", out)
	}
	if !strings.Contains(out, `escape_seconds_bucket{note="line1\nline\"2\"",le="+Inf"} 1`) {
		t.Fatalf("overflow bucket line missing:\n%s", out)
	}
}

// TestWriteJSONUnderConcurrentSpanEnds pins snapshot stability: taking
// and encoding snapshots while other goroutines are still starting and
// ending spans must neither race (covered by -race in CI) nor produce
// invalid JSON.
func TestWriteJSONUnderConcurrentSpanEnds(t *testing.T) {
	r := NewRegistry()
	const spans = 200
	var wg sync.WaitGroup
	start := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		<-start
		for i := 0; i < spans; i++ {
			sp := r.StartSpan("worker")
			sp.Record("phase", 0.001)
			sp.End()
		}
	}()
	close(start)
	for i := 0; i < 20; i++ {
		var buf bytes.Buffer
		if err := r.WriteJSON(&buf); err != nil {
			t.Fatalf("WriteJSON during span ends: %v", err)
		}
		var snap Snapshot
		if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
			t.Fatalf("snapshot %d is not valid JSON: %v", i, err)
		}
		// Only finished spans export, and each finished root is complete
		// (its modeled child came with it).
		for _, sp := range snap.Spans {
			if sp.Name != "worker" {
				t.Fatalf("unexpected span %q", sp.Name)
			}
			if len(sp.Children) != 1 || sp.Children[0].Name != "phase" {
				t.Fatalf("half-built span exported: %+v", sp)
			}
		}
	}
	wg.Wait()
	var buf bytes.Buffer
	if err := r.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var snap Snapshot
	if err := json.Unmarshal(buf.Bytes(), &snap); err != nil {
		t.Fatal(err)
	}
	if len(snap.Spans) != spans {
		t.Fatalf("final snapshot has %d spans, want %d", len(snap.Spans), spans)
	}
}
