package telemetry

import "testing"

func endRoots(r *Registry, n int) {
	for i := 0; i < n; i++ {
		r.StartRootSpan("req").End()
	}
}

func TestSetRootSpanLimitBoundsHistory(t *testing.T) {
	r := NewRegistry()
	r.SetRootSpanLimit(2)
	endRoots(r, 5)
	snap := r.Snapshot()
	if len(snap.Spans) != 2 {
		t.Fatalf("kept %d root spans, want 2", len(snap.Spans))
	}
	if got := snap.Counters["telemetry_root_spans_dropped_total"]; got != 3 {
		t.Fatalf("dropped counter = %d, want 3", got)
	}
}

func TestSetRootSpanLimitAppliesRetroactively(t *testing.T) {
	r := NewRegistry()
	endRoots(r, 4)
	r.SetRootSpanLimit(1)
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("kept %d root spans after retroactive limit, want 1", len(snap.Spans))
	}
	if got := snap.Counters["telemetry_root_spans_dropped_total"]; got != 3 {
		t.Fatalf("dropped counter = %d, want 3", got)
	}
}

func TestSetRootSpanLimitZeroIsUnbounded(t *testing.T) {
	r := NewRegistry()
	r.SetRootSpanLimit(2)
	r.SetRootSpanLimit(0)
	endRoots(r, 5)
	if got := len(r.Snapshot().Spans); got != 5 {
		t.Fatalf("kept %d root spans with limit 0, want all 5", got)
	}
}

func TestSetRootSpanLimitNilRegistry(t *testing.T) {
	var r *Registry
	r.SetRootSpanLimit(3) // must not panic
}
