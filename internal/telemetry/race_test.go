package telemetry

import (
	"fmt"
	"sync"
	"testing"
)

// TestConcurrentRegistry hammers one registry from many goroutines —
// counters, gauges, histograms, spans, and snapshots all at once — so
// `go test -race ./internal/telemetry` exercises every lock and atomic.
func TestConcurrentRegistry(t *testing.T) {
	r := NewRegistry()
	const goroutines = 16
	const iters = 2000

	var wg sync.WaitGroup
	for gi := 0; gi < goroutines; gi++ {
		wg.Add(1)
		go func(gi int) {
			defer wg.Done()
			// Shared and per-goroutine handles mix lookup and fast paths.
			shared := r.Counter("shared_total")
			own := r.Counter("per_goroutine_total", "g", fmt.Sprint(gi))
			gauge := r.Gauge("level")
			hist := r.Histogram("obs_seconds")
			for i := 0; i < iters; i++ {
				shared.Inc()
				own.Inc()
				gauge.Add(1)
				hist.Observe(float64(i%100) * 1e-3)
				if i%100 == 0 {
					sp := r.StartSpan("work", Int("g", gi))
					sp.Record("phase", 0.001, Int("i", i))
					sp.End()
				}
				if i%500 == 0 {
					_ = r.Snapshot()
				}
			}
		}(gi)
	}
	wg.Wait()

	if got := r.Counter("shared_total").Value(); got != goroutines*iters {
		t.Fatalf("shared counter = %d, want %d", got, goroutines*iters)
	}
	if got := r.Gauge("level").Value(); got != goroutines*iters {
		t.Fatalf("gauge = %v, want %d", got, goroutines*iters)
	}
	if got := r.Histogram("obs_seconds").Count(); got != goroutines*iters {
		t.Fatalf("histogram count = %d, want %d", got, goroutines*iters)
	}
	snap := r.Snapshot()
	// Concurrent spans may nest under each other (best-effort parenting),
	// so count the whole tree.
	var countWork func(ss []SpanSnapshot) int
	countWork = func(ss []SpanSnapshot) int {
		n := 0
		for _, s := range ss {
			if s.Name == "work" {
				n++
			}
			n += countWork(s.Children)
		}
		return n
	}
	if got, want := countWork(snap.Spans), goroutines*(iters/100); got != want {
		t.Fatalf("work spans = %d, want %d", got, want)
	}
}
