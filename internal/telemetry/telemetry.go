// Package telemetry is the repository's observability substrate: a
// zero-external-dependency, concurrency-safe registry of counters, gauges,
// and histograms, plus lightweight nested spans that trace a run (one span
// per conversion phase, one root span per experiment). Exporters render a
// registry as Prometheus text exposition format or as a structured JSON
// snapshot (see export.go).
//
// Telemetry is off by default: the global registry is nil until Enable is
// called, and every handle obtained from a nil registry is itself nil.
// All metric and span methods are nil-receiver-safe no-ops, so an
// instrumented hot path costs a single predictable nil check when
// telemetry is off (BenchmarkCounterDisabled) and one atomic add when it
// is on (BenchmarkCounterEnabled). Handles should be fetched once per run
// or per call — not once per inner-loop iteration — because handle lookup
// takes the registry lock.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The nil Counter is a valid
// no-op, which is how disabled telemetry costs nothing on hot paths.
type Counter struct {
	name   string
	labels string
	v      atomic.Int64
}

// Add increments the counter by n.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count (0 for a nil Counter).
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a metric that can go up and down, stored as float64 bits.
type Gauge struct {
	name   string
	labels string
	bits   atomic.Uint64
}

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(math.Float64bits(v))
}

// Add shifts the gauge by d.
func (g *Gauge) Add(d float64) {
	if g == nil {
		return
	}
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current gauge value (0 for a nil Gauge).
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return math.Float64frombits(g.bits.Load())
}

// Histogram accumulates observations into fixed log-scale buckets — wide
// enough (1 µs to ~3000 s with default bounds) to hold both simulated FCTs
// and wall-clock solver times without configuration.
type Histogram struct {
	name    string
	labels  string
	bounds  []float64 // ascending upper bounds; implicit +Inf bucket after
	buckets []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// DefaultBounds returns the default log-scale bucket upper bounds: half
// decades from 1e-6 to 1e3 (1 µs … ~17 min), 19 bounds plus +Inf overflow.
func DefaultBounds() []float64 {
	bounds := make([]float64, 0, 19)
	for i := 0; i <= 18; i++ {
		bounds = append(bounds, math.Pow(10, -6+0.5*float64(i)))
	}
	return bounds
}

// Observe adds one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v) // first bound >= v; len(bounds) = +Inf
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		if h.sumBits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations (0 for a nil Histogram).
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 for a nil Histogram).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Registry holds a run's metrics and finished spans. The nil Registry is
// valid: every accessor returns a nil (no-op) handle.
type Registry struct {
	start time.Time

	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	roots    []*Span // finished root spans, in End order
	stack    []*Span // open spans; top is the implicit parent of new spans
	// rootLimit bounds the finished-root-span history (0 = unbounded);
	// droppedRoots counts spans the bound discarded.
	rootLimit    int
	droppedRoots int64
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		start:    time.Now(),
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// SetRootSpanLimit bounds the finished-root-span history to the most
// recent n spans; 0 restores the unbounded default. Batch runs keep every
// span, but a resident service (flatd) emits one root span per request
// and would grow the registry without limit — the bound turns the history
// into a ring of the latest n requests. Spans the bound discards are
// counted and surfaced in snapshots as the synthetic counter
// telemetry_root_spans_dropped_total.
func (r *Registry) SetRootSpanLimit(n int) {
	if r == nil {
		return
	}
	if n < 0 {
		n = 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rootLimit = n
	r.enforceRootLimitLocked()
}

// enforceRootLimitLocked drops the oldest finished roots past the limit;
// callers hold r.mu.
func (r *Registry) enforceRootLimitLocked() {
	if r.rootLimit <= 0 || len(r.roots) <= r.rootLimit {
		return
	}
	over := len(r.roots) - r.rootLimit
	r.droppedRoots += int64(over)
	r.roots = append(r.roots[:0:0], r.roots[over:]...)
}

// labelString renders alternating key, value pairs as a deterministic
// Prometheus label block ({k="v",...}); empty for no labels. An odd
// trailing key gets an empty value rather than being dropped silently.
func labelString(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	pairs := make([]kv, 0, (len(labels)+1)/2)
	for i := 0; i < len(labels); i += 2 {
		v := ""
		if i+1 < len(labels) {
			v = labels[i+1]
		}
		pairs = append(pairs, kv{labels[i], v})
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].k < pairs[j].k })
	out := "{"
	for i, p := range pairs {
		if i > 0 {
			out += ","
		}
		out += fmt.Sprintf("%s=%q", p.k, p.v)
	}
	return out + "}"
}

// Counter returns (creating on first use) the named counter. labels are
// alternating key, value pairs.
func (r *Registry) Counter(name string, labels ...string) *Counter {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[key]; ok {
		return c
	}
	c := &Counter{name: name, labels: ls}
	r.counters[key] = c
	return c
}

// Gauge returns (creating on first use) the named gauge.
func (r *Registry) Gauge(name string, labels ...string) *Gauge {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if g, ok := r.gauges[key]; ok {
		return g
	}
	g := &Gauge{name: name, labels: ls}
	r.gauges[key] = g
	return g
}

// Histogram returns (creating on first use) the named histogram with the
// default log-scale bounds.
func (r *Registry) Histogram(name string, labels ...string) *Histogram {
	return r.HistogramBounds(name, nil, labels...)
}

// HistogramBounds returns (creating on first use) the named histogram.
// bounds must be ascending; nil selects DefaultBounds. Bounds are fixed by
// the first creation; later calls return the existing histogram.
func (r *Registry) HistogramBounds(name string, bounds []float64, labels ...string) *Histogram {
	if r == nil {
		return nil
	}
	ls := labelString(labels)
	key := name + ls
	r.mu.Lock()
	defer r.mu.Unlock()
	if h, ok := r.hists[key]; ok {
		return h
	}
	if bounds == nil {
		bounds = DefaultBounds()
	}
	h := &Histogram{
		name: name, labels: ls,
		bounds:  append([]float64(nil), bounds...),
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
	r.hists[key] = h
	return h
}
