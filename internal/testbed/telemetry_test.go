package testbed

import (
	"math"
	"testing"

	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/telemetry"
)

// TestConversionPhaseSpans asserts that a Table 3-style conversion on the
// testbed traces as the four phases in order — OCS, rule-delete, rule-add,
// ramp — with durations and rule-count attributes matching the control
// package's delay model.
func TestConversionPhaseSpans(t *testing.T) {
	reg := telemetry.Enable()
	t.Cleanup(telemetry.Disable)

	tb, err := New()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := tb.Ctrl.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	var conv *telemetry.SpanSnapshot
	for i := range snap.Spans {
		if snap.Spans[i].Name == "conversion" {
			conv = &snap.Spans[i]
		}
	}
	if conv == nil {
		t.Fatalf("no conversion span in snapshot; roots: %+v", snap.Spans)
	}
	if got := conv.Attrs["to"]; got != core.ModeGlobal.String() {
		t.Fatalf(`conversion attr to = %v, want %q`, got, core.ModeGlobal.String())
	}

	want := []string{"ocs", "rule-delete", "rule-add", "ramp"}
	if len(conv.Children) != len(want) {
		t.Fatalf("conversion has %d phases, want %d: %+v", len(conv.Children), len(want), conv.Children)
	}
	for i, name := range want {
		if conv.Children[i].Name != name {
			t.Fatalf("phase %d = %q, want %q", i, conv.Children[i].Name, name)
		}
		if !conv.Children[i].Modeled {
			t.Fatalf("phase %q not marked as modeled", name)
		}
	}

	// Durations must reproduce the delay model exactly.
	model := control.TestbedDelayModel()
	phase := func(name string) *telemetry.SpanSnapshot {
		p := conv.Find(name)
		if p == nil {
			t.Fatalf("phase %q missing", name)
		}
		return p
	}
	checks := []struct {
		name string
		want float64
	}{
		{"ocs", model.OCSReconfig},
		{"rule-delete", float64(rep.RulesDeleted) * model.PerRuleDelete},
		{"rule-add", float64(rep.RulesAdded) * model.PerRuleAdd},
		{"ramp", model.Ramp},
	}
	for _, c := range checks {
		if got := phase(c.name).DurationSeconds; math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("phase %q duration = %v, want %v", c.name, got, c.want)
		}
	}

	// Rule-count attributes must match the report.
	if got := phase("rule-delete").Attrs["rules_deleted"]; got != rep.RulesDeleted {
		t.Fatalf("rules_deleted attr = %v, want %d", got, rep.RulesDeleted)
	}
	if got := phase("rule-add").Attrs["rules_added"]; got != rep.RulesAdded {
		t.Fatalf("rules_added attr = %v, want %d", got, rep.RulesAdded)
	}
	if rep.RampTime != model.Ramp {
		t.Fatalf("report RampTime = %v, want %v", rep.RampTime, model.Ramp)
	}
}
