// Package testbed emulates the paper's hardware testbed (§5.3, Figure 9):
// the Figure 2 example flat-tree network — 20 packet switches, 24 servers,
// one OCS hosting the converter partitions, all links 10 Gbps — together
// with the iPerf core-bandwidth experiment of Figure 10 and the conversion
// delay measurement of Table 3.
package testbed

import (
	"fmt"
	"math"

	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/graph"
	"flattree/internal/ocs"
	"flattree/internal/routing"
)

// K is the number of concurrent paths used on the testbed ("k is set to 4
// as it yields the best performance in the simulation of this network").
const K = 4

// RampDuration is how long MPTCP takes to regrow to full throughput after
// the new rules land; with the ≈1 s conversion delay this reproduces the
// observed 2–2.5 s to maximum throughput (Figure 10).
const RampDuration = 1.2

// MPTCPEfficiency discounts the fluid allocation for the overhead the
// testbed measured: "the overhead of MPTCP and k-shortest-path routing is
// within 9.38% of the bandwidth" (§5.3) — MPTCP packet processing burdens
// the CPU and k-shortest-path routing is imperfect. The fluid allocator is
// overhead-free, so reported bandwidth is scaled by 1 - 9.38%.
const MPTCPEfficiency = 1 - 0.0938

// Testbed wraps the example network, its controller, and the physical
// OCS hosting the converter partitions (Figure 9).
type Testbed struct {
	Ctrl *control.Controller
	// OCS is the 192-port optical circuit switch; Convert reprograms it.
	OCS *ocs.Switch
}

// New builds the testbed in Clos mode with its OCS programmed.
func New() (*Testbed, error) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		return nil, err
	}
	ctrl, err := control.NewController(nw, control.TestbedDelayModel(), map[core.Mode]int{
		core.ModeClos: K, core.ModeLocal: K, core.ModeGlobal: K,
	})
	if err != nil {
		return nil, err
	}
	dev, err := ocs.TestbedOCS(nw)
	if err != nil {
		return nil, err
	}
	if _, err := dev.Program(nw.Converters()); err != nil {
		return nil, err
	}
	return &Testbed{Ctrl: ctrl, OCS: dev}, nil
}

// Convert switches the whole testbed to a mode: the controller converts
// the network and the OCS is reprogrammed to the new circuit set. It
// returns the controller's report plus the number of crosspoints changed.
func (tb *Testbed) Convert(mode core.Mode) (*control.ConversionReport, int, error) {
	rep, err := tb.Ctrl.Convert(mode)
	if err != nil {
		return nil, 0, err
	}
	changed, err := tb.OCS.Program(tb.Ctrl.Network().Converters())
	if err != nil {
		return nil, 0, err
	}
	return rep, changed, nil
}

// IPerfPairs returns the Figure 10 traffic pattern: every server sends to
// the 3 servers with the same index in the other 3 pods, saturating the
// network core.
func (tb *Testbed) IPerfPairs() [][2]int {
	cp := tb.Ctrl.Network().Clos()
	perPod := cp.EdgesPerPod * cp.ServersPerEdge
	n := cp.TotalServers()
	var pairs [][2]int
	for src := 0; src < n; src++ {
		for p := 1; p < cp.Pods; p++ {
			dst := (src + p*perPod) % n
			pairs = append(pairs, [2]int{src, dst})
		}
	}
	return pairs
}

// steadyCoreBandwidth computes the total iPerf throughput in the current
// topology: persistent MPTCP connections with K subflow paths each,
// allocated by weighted max-min fairness.
func (tb *Testbed) steadyCoreBandwidth() (float64, error) {
	r := tb.Ctrl.Realization()
	table := tb.Ctrl.Table()
	caps := routing.DirectedCaps(r.Topo.G)
	var specs []flowsim.ConnSpec
	servers := r.Topo.Servers()
	for _, pr := range tb.IPerfPairs() {
		paths := table.ServerPaths(servers[pr[0]], servers[pr[1]])
		if len(paths) > K {
			paths = paths[:K]
		}
		specs = append(specs, flowsim.ConnSpec{
			Paths: directedPaths(r, paths),
			Bits:  math.Inf(1),
		})
	}
	rates, err := flowsim.StaticRates(caps, specs, 10)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, r := range rates {
		total += r
	}
	return total * MPTCPEfficiency, nil
}

// directedPaths converts paths to directed capacity-slot lists (full-duplex
// link model).
func directedPaths(r *core.Realization, paths []graph.Path) [][]int {
	out := make([][]int, len(paths))
	for i, p := range paths {
		out[i] = routing.DirectedLinkIDs(r.Topo.G, p)
	}
	return out
}

// Sample is one 0.5-second iPerf report: time and summed bidirectional
// core bandwidth in Gbps.
type Sample struct {
	T             float64
	CoreBandwidth float64
}

// ScheduleEntry converts the network to Mode at time At (seconds).
type ScheduleEntry struct {
	At   float64
	Mode core.Mode
}

// ConversionEvent records one conversion during an iPerf run.
type ConversionEvent struct {
	At        float64
	Report    *control.ConversionReport
	RecoverAt float64 // when throughput is back to maximum
}

// RunIPerf emulates the Figure 10 experiment: persistent counterpart
// traffic for duration seconds, sampled every interval, with topology
// conversions at the scheduled times. During a conversion throughput drops
// to zero for the conversion delay, then ramps linearly over RampDuration.
func (tb *Testbed) RunIPerf(schedule []ScheduleEntry, duration, interval float64) ([]Sample, []ConversionEvent, error) {
	if interval <= 0 || duration <= 0 {
		return nil, nil, fmt.Errorf("testbed: bad duration %v / interval %v", duration, interval)
	}
	steady, err := tb.steadyCoreBandwidth()
	if err != nil {
		return nil, nil, err
	}
	var events []ConversionEvent
	next := 0
	var samples []Sample
	for t := 0.0; t <= duration+1e-9; t += interval {
		// Apply any due conversions.
		for next < len(schedule) && schedule[next].At <= t {
			tb.Ctrl.SetRecordClock(schedule[next].At)
			rep, _, err := tb.Convert(schedule[next].Mode)
			if err != nil {
				return nil, nil, err
			}
			steady, err = tb.steadyCoreBandwidth()
			if err != nil {
				return nil, nil, err
			}
			events = append(events, ConversionEvent{
				At:        schedule[next].At,
				Report:    rep,
				RecoverAt: schedule[next].At + rep.Total + RampDuration,
			})
			next++
		}
		factor := 1.0
		if len(events) > 0 {
			e := events[len(events)-1]
			switch {
			case t < e.At+e.Report.Total:
				factor = 0 // rules in flux: traffic stalled
			case t < e.RecoverAt:
				factor = (t - e.At - e.Report.Total) / RampDuration
			}
		}
		samples = append(samples, Sample{T: t, CoreBandwidth: steady * factor})
	}
	return samples, events, nil
}

// SteadyBandwidth converts the network to the given mode and returns the
// steady-state core bandwidth — the plateau levels of Figure 10.
func (tb *Testbed) SteadyBandwidth(mode core.Mode) (float64, error) {
	if _, _, err := tb.Convert(mode); err != nil {
		return 0, err
	}
	return tb.steadyCoreBandwidth()
}
