package testbed

import (
	"testing"

	"flattree/internal/core"
)

func TestTestbedShape(t *testing.T) {
	tb, err := New()
	if err != nil {
		t.Fatal(err)
	}
	r := tb.Ctrl.Realization()
	// Figure 9: 20 packet switches (16 edge/agg + 4 core), 24 servers.
	switches := len(r.Topo.Edges()) + len(r.Topo.Aggs()) + len(r.Topo.Cores())
	if switches != 20 {
		t.Fatalf("switches = %d, want 20", switches)
	}
	if got := len(r.Topo.Servers()); got != 24 {
		t.Fatalf("servers = %d, want 24", got)
	}
}

func TestIPerfPairs(t *testing.T) {
	tb, _ := New()
	pairs := tb.IPerfPairs()
	// Every server sends to its counterpart in the other 3 pods: 72 flows.
	if len(pairs) != 72 {
		t.Fatalf("pairs = %d, want 72", len(pairs))
	}
	for _, p := range pairs {
		if p[0]/6 == p[1]/6 {
			t.Fatalf("pair %v stays in its pod", p)
		}
		if p[0]%6 != p[1]%6 {
			t.Fatalf("pair %v is not index counterparts", p)
		}
	}
}

func TestSteadyBandwidthPlateaus(t *testing.T) {
	tb, err := New()
	if err != nil {
		t.Fatal(err)
	}
	clos, err := tb.SteadyBandwidth(core.ModeClos)
	if err != nil {
		t.Fatal(err)
	}
	local, err := tb.SteadyBandwidth(core.ModeLocal)
	if err != nil {
		t.Fatal(err)
	}
	global, err := tb.SteadyBandwidth(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 10: Clos and local around 145 Gbps, global around 185 Gbps.
	if clos < 130 || clos > 160 {
		t.Fatalf("Clos bandwidth = %.1f, want ~145", clos)
	}
	if local < 125 || local > 160 {
		t.Fatalf("local bandwidth = %.1f, want ~145", local)
	}
	if global < 170 || global > 200 {
		t.Fatalf("global bandwidth = %.1f, want ~185", global)
	}
	// Headline: converting Clos -> global increases core bandwidth by
	// ~27.6%.
	gain := global/clos - 1
	if gain < 0.20 || gain < 0 || gain > 0.35 {
		t.Fatalf("global gain = %.1f%%, want ~27.6%%", gain*100)
	}
}

func TestRunIPerfFigure10(t *testing.T) {
	tb, err := New()
	if err != nil {
		t.Fatal(err)
	}
	schedule := []ScheduleEntry{
		{At: 20, Mode: core.ModeGlobal},
		{At: 40, Mode: core.ModeLocal},
	}
	samples, events, err := tb.RunIPerf(schedule, 60, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 121 {
		t.Fatalf("samples = %d, want 121", len(samples))
	}
	if len(events) != 2 {
		t.Fatalf("events = %d, want 2", len(events))
	}
	// Traffic reaches maximum within 2.5s of each conversion start.
	for _, e := range events {
		if dt := e.RecoverAt - e.At; dt < 1.0 || dt > 2.6 {
			t.Fatalf("recovery took %.2fs, want 1.0-2.6s (paper: 2-2.5s)", dt)
		}
	}
	// During conversion throughput dips to zero, then recovers above the
	// pre-conversion Clos plateau once in global mode.
	at := func(tt float64) float64 {
		for _, s := range samples {
			if s.T >= tt {
				return s.CoreBandwidth
			}
		}
		return -1
	}
	if v := at(20.5); v > 1 {
		t.Fatalf("bandwidth during conversion = %.1f, want ~0", v)
	}
	pre := at(19.5)
	post := at(30)
	if post <= pre*1.15 {
		t.Fatalf("global plateau %.1f not clearly above Clos plateau %.1f", post, pre)
	}
}

func TestRunIPerfValidation(t *testing.T) {
	tb, _ := New()
	if _, _, err := tb.RunIPerf(nil, 0, 0.5); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, _, err := tb.RunIPerf(nil, 10, 0); err == nil {
		t.Fatal("zero interval accepted")
	}
}

func TestConversionDelayTable3(t *testing.T) {
	// Reproduce Table 3's structure: convert to global, local, Clos in
	// turn and check each total lands near the paper's ~0.8-1.3s window.
	tb, err := New()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []core.Mode{core.ModeGlobal, core.ModeLocal, core.ModeClos} {
		rep, err := tb.Ctrl.Convert(m)
		if err != nil {
			t.Fatal(err)
		}
		if rep.OCSTime != 0.160 {
			t.Fatalf("OCS time = %v, want 0.160", rep.OCSTime)
		}
		if rep.Total < 0.2 || rep.Total > 2.0 {
			t.Fatalf("convert to %v total = %.3fs, outside testbed range", m, rep.Total)
		}
	}
}

func TestOCSProgrammedAcrossConversions(t *testing.T) {
	tb, err := New()
	if err != nil {
		t.Fatal(err)
	}
	// Clos mode at startup: 32 circuits (2 per converter).
	if got := len(tb.OCS.Circuits()); got != 32 {
		t.Fatalf("startup circuits = %d, want 32", got)
	}
	_, changed, err := tb.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if changed == 0 {
		t.Fatal("conversion changed no crosspoints")
	}
	if err := tb.OCS.Validate(); err != nil {
		t.Fatal(err)
	}
	// Global: 2 circuits per 4-port + 3 per 6-port = 40.
	if got := len(tb.OCS.Circuits()); got != 40 {
		t.Fatalf("global circuits = %d, want 40", got)
	}
	// Converting to the same mode is an OCS no-op.
	_, changed, err = tb.Convert(core.ModeGlobal)
	if err != nil {
		t.Fatal(err)
	}
	if changed != 0 {
		t.Fatalf("idempotent conversion changed %d crosspoints", changed)
	}
}

func TestGradualVsAtomicConversion(t *testing.T) {
	atomicTB, err := New()
	if err != nil {
		t.Fatal(err)
	}
	atomic, err := atomicTB.RunAtomicConversion(core.ModeGlobal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	gradualTB, err := New()
	if err != nil {
		t.Fatal(err)
	}
	gradual, err := gradualTB.RunGradualConversion(core.ModeGlobal, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// §4.3: draining incrementally avoids the full outage — the atomic
	// conversion's floor is zero, the gradual one keeps most traffic up.
	if atomic.MinBandwidth != 0 {
		t.Fatalf("atomic floor = %v, want 0", atomic.MinBandwidth)
	}
	if gradual.MinBandwidth < 60 {
		t.Fatalf("gradual floor = %.1f Gbps, want well above zero", gradual.MinBandwidth)
	}
	// The trade: gradual takes longer end to end.
	if gradual.Duration <= atomic.Duration {
		t.Fatalf("gradual (%.1fs) not slower than atomic (%.1fs)", gradual.Duration, atomic.Duration)
	}
	// Both end at the same global plateau.
	aEnd := atomic.Samples[len(atomic.Samples)-1].CoreBandwidth
	gEnd := gradual.Samples[len(gradual.Samples)-1].CoreBandwidth
	if diff := aEnd/gEnd - 1; diff > 0.01 || diff < -0.01 {
		t.Fatalf("plateaus differ: %.1f vs %.1f", aEnd, gEnd)
	}
}
