package testbed

import (
	"fmt"
	"math"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/routing"
)

// Gradual conversion on the testbed (§4.3): instead of reconfiguring every
// pod at once — which stalls all traffic for the conversion delay — pods
// convert in batches. While a batch converts, only flows touching its pods
// are drained; the rest keep flowing over the intermediate hybrid
// topology. This file measures the §4.3 claim that incremental draining
// "can be used to avoid traffic disruption".

// GradualSample is one bandwidth sample during a gradual conversion run.
type GradualSample struct {
	T             float64
	CoreBandwidth float64
	// ConvertingPod is the pod in flux at this sample, or -1.
	ConvertingPod int
}

// GradualRun summarizes one conversion strategy's timeline.
type GradualRun struct {
	Samples []GradualSample
	// MinBandwidth is the lowest core bandwidth observed from the first
	// step until full recovery.
	MinBandwidth float64
	// Duration is the time from the first step to full recovery.
	Duration float64
}

// steadyExcludingPods computes the iPerf core bandwidth with every flow
// touching the given pods drained (paused).
func (tb *Testbed) steadyExcludingPods(excluded map[int]bool) (float64, error) {
	r := tb.Ctrl.Realization()
	table := tb.Ctrl.Table()
	caps := routing.DirectedCaps(r.Topo.G)
	servers := r.Topo.Servers()
	perPod := tb.Ctrl.Network().Clos().EdgesPerPod * tb.Ctrl.Network().Clos().ServersPerEdge
	var specs []flowsim.ConnSpec
	for _, pr := range tb.IPerfPairs() {
		if excluded[pr[0]/perPod] || excluded[pr[1]/perPod] {
			continue
		}
		paths := table.ServerPaths(servers[pr[0]], servers[pr[1]])
		if len(paths) > K {
			paths = paths[:K]
		}
		specs = append(specs, flowsim.ConnSpec{Paths: directedPaths(r, paths), Bits: math.Inf(1)})
	}
	if len(specs) == 0 {
		return 0, nil
	}
	rates, err := flowsim.StaticRates(caps, specs, 10)
	if err != nil {
		return 0, err
	}
	var total float64
	for _, rt := range rates {
		total += rt
	}
	return total * MPTCPEfficiency, nil
}

// RunGradualConversion converts the testbed to the target mode one pod at
// a time, sampling core bandwidth every interval. Each step drains the
// converting pod's flows for the step's conversion delay plus the MPTCP
// ramp, while the remaining flows run on the hybrid topology.
func (tb *Testbed) RunGradualConversion(target core.Mode, interval float64) (*GradualRun, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("testbed: interval %v", interval)
	}
	pods := tb.Ctrl.Network().Clos().Pods
	run := &GradualRun{MinBandwidth: math.Inf(1)}
	t := 0.0
	record := func(bw float64, pod int) {
		run.Samples = append(run.Samples, GradualSample{T: t, CoreBandwidth: bw, ConvertingPod: pod})
		if bw < run.MinBandwidth {
			run.MinBandwidth = bw
		}
		t += interval
	}

	for pod := 0; pod < pods; pod++ {
		modes := tb.Ctrl.Network().PodModes()
		if modes[pod] == target {
			continue
		}
		modes[pod] = target
		rep, err := tb.Ctrl.ConvertPods(modes)
		if err != nil {
			return nil, err
		}
		if _, err := tb.OCS.Program(tb.Ctrl.Network().Converters()); err != nil {
			return nil, err
		}
		// During this step's outage window, the pod's flows are drained
		// and the rest run on the new hybrid state.
		partial, err := tb.steadyExcludingPods(map[int]bool{pod: true})
		if err != nil {
			return nil, err
		}
		window := rep.Total + RampDuration
		for elapsed := 0.0; elapsed < window; elapsed += interval {
			record(partial, pod)
		}
	}
	// Full recovery on the final topology.
	full, err := tb.steadyCoreBandwidth()
	if err != nil {
		return nil, err
	}
	record(full, -1)
	run.Duration = t
	return run, nil
}

// RunAtomicConversion performs the all-at-once conversion for comparison:
// every flow stalls for the conversion delay, then ramps.
func (tb *Testbed) RunAtomicConversion(target core.Mode, interval float64) (*GradualRun, error) {
	if interval <= 0 {
		return nil, fmt.Errorf("testbed: interval %v", interval)
	}
	rep, _, err := tb.Convert(target)
	if err != nil {
		return nil, err
	}
	full, err := tb.steadyCoreBandwidth()
	if err != nil {
		return nil, err
	}
	run := &GradualRun{MinBandwidth: math.Inf(1)}
	t := 0.0
	window := rep.Total + RampDuration
	for elapsed := 0.0; elapsed < window; elapsed += interval {
		factor := 0.0
		if elapsed > rep.Total {
			factor = (elapsed - rep.Total) / RampDuration
		}
		bw := full * factor
		run.Samples = append(run.Samples, GradualSample{T: t, CoreBandwidth: bw, ConvertingPod: -2})
		if bw < run.MinBandwidth {
			run.MinBandwidth = bw
		}
		t += interval
	}
	run.Samples = append(run.Samples, GradualSample{T: t, CoreBandwidth: full, ConvertingPod: -1})
	run.Duration = t + interval
	return run, nil
}
