// Package service is the resident flat-tree control plane behind cmd/flatd:
// a long-lived HTTP/JSON daemon that owns a live topology, an incremental
// route table, and the churn pricing machinery, and answers online
// questions against that state — the "system serving millions of users"
// surface the batch CLIs (flatsim/benchtables) cannot provide.
//
// Endpoints:
//
//	GET  /healthz        liveness: status, uptime, applied link events
//	GET  /topology       fingerprint, pod modes, failed links, table health
//	GET  /routes         k-shortest server-to-server lookup (?src=&dst=)
//	POST /quote/convert  what-if conversion quote, priced on a copy
//	POST /events/link    fail/repair a link through the incremental table
//	GET  /metrics        Prometheus text exposition of the telemetry registry
//
// Reads run concurrently under an RWMutex; mutations (/events/link) are
// serialized, so the state is race-clean by construction. Conversion
// quotes clone the network (control.QuotePodModes) and never touch live
// state. Every request runs under a deadline (Config.RequestTimeout) and
// is logged as a bounded telemetry root span; Run drains in-flight
// requests on context cancellation before returning.
package service

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"sync"
	"time"

	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/routing"
	"flattree/internal/telemetry"
	"flattree/internal/topo"
)

// Config assembles a Server. Network is required; everything else has a
// serviceable default.
type Config struct {
	// Network is the flat-tree network the daemon owns. The server takes
	// ownership: callers must not mutate it after New.
	Network *core.Network
	// K is the number of k-shortest paths per ingress pair in the live
	// route table (default 8, matching the churn experiment).
	K int
	// Detection is the failure-detection latency priced into every link
	// event's reaction time, in seconds (default 0.05).
	Detection float64
	// Delay prices rule updates for quotes and link events. The zero value
	// selects control.TestbedDelayModel with parallel switch configuration.
	Delay control.DelayModel
	// Registry receives request spans, counters, and /metrics output; nil
	// uses the process-global registry (which may be disabled).
	Registry *telemetry.Registry
	// RequestTimeout bounds each request's handling time (default 10s).
	RequestTimeout time.Duration
	// DrainTimeout bounds how long Run waits for in-flight requests after
	// shutdown begins (default 15s).
	DrainTimeout time.Duration
}

// Server is the daemon's state: one mutex-owned struct so concurrent
// reads and serialized mutations stay race-clean.
type Server struct {
	cfg   Config
	reg   *telemetry.Registry
	start time.Time

	mu sync.RWMutex
	// nw holds the live per-pod modes; topo is its healthy realization.
	nw   *core.Network
	topo *topo.Topology
	// fp is the healthy realization's content fingerprint, fixed at New.
	fp string
	// inc is the live route table; link events mutate it in place.
	inc *routing.IncrementalTable
	// failed maps each masked link ID to its endpoints, mirroring the
	// incremental table's banned set for /topology reporting.
	failed map[int][2]int
	// events counts applied link events (the state's mutation epoch).
	events int64

	// preHandle, when set (tests), runs inside the handler chain before
	// dispatch — the hook the shutdown drain test blocks on.
	preHandle func(*http.Request)
}

// New realizes the network, builds the live route table, and returns a
// ready-to-serve daemon.
func New(cfg Config) (*Server, error) {
	if cfg.Network == nil {
		return nil, errors.New("service: Config.Network is required")
	}
	if cfg.K == 0 {
		cfg.K = 8
	}
	if cfg.K < 1 {
		return nil, fmt.Errorf("service: k = %d", cfg.K)
	}
	if cfg.Detection == 0 {
		cfg.Detection = 0.05
	}
	if cfg.Delay == (control.DelayModel{}) {
		cfg.Delay = control.TestbedDelayModel()
		cfg.Delay.Parallel = true
	}
	if cfg.Registry == nil {
		cfg.Registry = telemetry.Default()
	}
	if cfg.RequestTimeout <= 0 {
		cfg.RequestTimeout = 10 * time.Second
	}
	if cfg.DrainTimeout <= 0 {
		cfg.DrainTimeout = 15 * time.Second
	}
	t := cfg.Network.Realize().Topo
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("service: realized topology invalid: %w", err)
	}
	table := routing.BuildKShortestCached(t, cfg.K)
	return &Server{
		cfg:    cfg,
		reg:    cfg.Registry,
		start:  time.Now(),
		nw:     cfg.Network,
		topo:   t,
		fp:     t.Fingerprint(),
		inc:    routing.NewIncremental(table),
		failed: map[int][2]int{},
	}, nil
}

// Run serves on the established listener until ctx is cancelled, then
// shuts down gracefully: the listener closes immediately, in-flight
// requests get up to Config.DrainTimeout to complete, and Run returns
// only once they have drained (or the drain deadline expired). A non-nil
// return reports either a serve failure or an incomplete drain.
func (s *Server) Run(ctx context.Context, ln net.Listener) error {
	hs := &http.Server{
		Handler:           s.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	errc := make(chan error, 1)
	go func() { errc <- hs.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
		//flatvet:ctx the drain deadline must outlive the cancelled serve context
		drainCtx, cancel := context.WithTimeout(context.Background(), s.cfg.DrainTimeout)
		defer cancel()
		err := hs.Shutdown(drainCtx)
		if serveErr := <-errc; serveErr != nil && !errors.Is(serveErr, http.ErrServerClosed) {
			return serveErr
		}
		if err != nil {
			return fmt.Errorf("service: drain incomplete: %w", err)
		}
		return nil
	}
}

// Handler returns the daemon's full handler chain: request spans and
// counters outermost, then the per-request deadline, then the routing mux.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/topology", s.handleTopology)
	mux.HandleFunc("/routes", s.handleRoutes)
	mux.HandleFunc("/quote/convert", s.handleQuoteConvert)
	mux.HandleFunc("/events/link", s.handleLinkEvent)
	mux.HandleFunc("/metrics", s.handleMetrics)

	var inner http.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if s.preHandle != nil {
			s.preHandle(r)
		}
		mux.ServeHTTP(w, r)
	})
	timed := http.TimeoutHandler(inner, s.cfg.RequestTimeout, `{"error":"request timed out"}`)
	return s.observe(timed)
}

// observe wraps the handler chain in bounded request logging: one root
// span per request (the registry's root-span limit keeps a resident
// daemon's history finite) plus path-labeled counters and a latency
// histogram.
func (s *Server) observe(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sp := s.reg.StartRootSpan("http", telemetry.Str("method", r.Method), telemetry.Str("path", r.URL.Path))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		sp.SetAttr(telemetry.Int("status", sw.status))
		sp.End()
		s.reg.Counter("flatd_requests_total", "path", r.URL.Path).Inc()
		if sw.status >= 400 {
			s.reg.Counter("flatd_request_errors_total", "path", r.URL.Path).Inc()
		}
		s.reg.Histogram("flatd_request_seconds").Observe(time.Since(start).Seconds())
	})
}

// sinceStart returns the daemon's uptime in seconds.
func sinceStart(s *Server) float64 { return time.Since(s.start).Seconds() }

// statusWriter captures the response status for the request span.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}
