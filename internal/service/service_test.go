package service

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"flattree/internal/churn"
	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/telemetry"
	"flattree/internal/topo"
)

var update = flag.Bool("update", false, "rewrite golden files with current responses")

// testParams is a 2-pod flat-tree small enough for fast table builds but
// with parallel links and converters, so link events and quotes are
// non-trivial.
var testParams = topo.ClosParams{
	Name: "svc-mini", Pods: 2, EdgesPerPod: 2, AggsPerPod: 2,
	ServersPerEdge: 2, EdgeUplinks: 2, AggUplinks: 2, Cores: 4,
}

func testNetwork(t *testing.T) *core.Network {
	t.Helper()
	nw, err := core.New(testParams, core.Options{N: 1, M: 1, Pattern: core.Pattern1})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// testDelay is the pricing model every test server uses; the differential
// tests construct their offline baselines with the same model.
func testDelay() control.DelayModel {
	d := control.TestbedDelayModel()
	d.Parallel = true
	return d
}

func newTestServer(t *testing.T) *Server {
	t.Helper()
	srv, err := New(Config{
		Network:   testNetwork(t),
		K:         4,
		Detection: 0.05,
		Delay:     testDelay(),
		Registry:  telemetry.NewRegistry(),
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

// do issues one request against the server's full handler chain and
// returns status and body.
func do(t *testing.T, srv *Server, method, target, body string) (int, []byte) {
	t.Helper()
	var rd io.Reader
	if body != "" {
		rd = strings.NewReader(body)
	}
	req := httptest.NewRequest(method, target, rd)
	rec := httptest.NewRecorder()
	srv.Handler().ServeHTTP(rec, req)
	return rec.Code, rec.Body.Bytes()
}

// checkGolden compares a response body against testdata/<name>; -update
// rewrites the file.
func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("response drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s", path, got, want)
	}
}

// switchLink finds one switch-to-switch adjacency in the realized
// topology — a failable link bundle for event tests.
func switchLink(t *testing.T, tp *topo.Topology) (int, int) {
	t.Helper()
	for _, l := range tp.G.Links() {
		if tp.Nodes[l.A].Kind != topo.Server && tp.Nodes[l.B].Kind != topo.Server {
			return l.A, l.B
		}
	}
	t.Fatal("no switch-to-switch link in test topology")
	return 0, 0
}

func TestHealthz(t *testing.T) {
	srv := newTestServer(t)
	code, body := do(t, srv, http.MethodGet, "/healthz", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var resp struct {
		Status     string `json:"status"`
		LinkEvents int64  `json:"link_events_applied"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Status != "ok" || resp.LinkEvents != 0 {
		t.Fatalf("healthz = %+v", resp)
	}
}

func TestTopologyGolden(t *testing.T) {
	srv := newTestServer(t)
	code, body := do(t, srv, http.MethodGet, "/topology", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	checkGolden(t, "topology.golden.json", body)
}

func TestQuoteConvertGolden(t *testing.T) {
	srv := newTestServer(t)
	code, body := do(t, srv, http.MethodPost, "/quote/convert", `{"modes":["local","clos"]}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	checkGolden(t, "quote_convert.golden.json", body)
}

// TestQuoteConvertDifferential pins the online quote byte-identical to
// the offline control.QuotePodModes path for the same conversion: the
// daemon must be a transport in front of the library, never a second
// implementation.
func TestQuoteConvertDifferential(t *testing.T) {
	srv := newTestServer(t)
	code, body := do(t, srv, http.MethodPost, "/quote/convert", `{"modes":["global","local"]}`)
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}

	q, err := control.QuotePodModes(testNetwork(t), testDelay(), srv.kByMode(),
		[]core.Mode{core.ModeGlobal, core.ModeLocal})
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.MarshalIndent(quoteResponse{
		From:                   modeStrings(q.Report.From),
		To:                     modeStrings(q.Report.To),
		ConvertersReconfigured: q.Report.ConvertersReconfigured,
		RulesDeleted:           q.Report.RulesDeleted,
		RulesAdded:             q.Report.RulesAdded,
		OCSSeconds:             q.Report.OCSTime,
		DeleteSeconds:          q.Report.DeleteTime,
		AddSeconds:             q.Report.AddTime,
		TotalSeconds:           q.Report.Total,
		RampSeconds:            q.Report.RampTime,
		RuleDelta:              sortedDelta(q.Delta),
	}, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	want = append(want, '\n')
	if !bytes.Equal(body, want) {
		t.Fatalf("online quote differs from offline QuotePodModes:\n--- online ---\n%s\n--- offline ---\n%s", body, want)
	}
}

// TestQuoteConvertLeavesLiveStateUntouched verifies the what-if quote is
// computed on a copy: the live topology response is identical before and
// after quoting a conversion.
func TestQuoteConvertLeavesLiveStateUntouched(t *testing.T) {
	srv := newTestServer(t)
	_, before := do(t, srv, http.MethodGet, "/topology", "")
	if code, body := do(t, srv, http.MethodPost, "/quote/convert", `{"modes":["local","global"]}`); code != http.StatusOK {
		t.Fatalf("quote status = %d, body %s", code, body)
	}
	_, after := do(t, srv, http.MethodGet, "/topology", "")
	if !bytes.Equal(before, after) {
		t.Fatalf("quote mutated live state:\n--- before ---\n%s\n--- after ---\n%s", before, after)
	}
}

// linkEventResult mirrors linkEventResponse for decoding.
type linkEventResult struct {
	Link            int           `json:"link"`
	RulesDeleted    int           `json:"rules_deleted"`
	RulesAdded      int           `json:"rules_added"`
	ReactionSeconds float64       `json:"reaction_seconds"`
	RuleDelta       []switchDelta `json:"rule_delta"`
}

// TestLinkEventDifferential pins /events/link byte-identical to the
// offline churn pipeline: the same fail+repair trace compiled by
// churn.Engine must yield the same per-switch deltas and priced
// reactions the daemon returns.
func TestLinkEventDifferential(t *testing.T) {
	srv := newTestServer(t)
	a, b := switchLink(t, srv.topo)

	eng := &churn.Engine{Topo: testNetwork(t).Realize().Topo, K: 4, Detection: 0.05, Delay: testDelay()}
	trace := churn.Trace{
		{Time: 0, A: a, B: b},
		{Time: 1, A: a, B: b, Repair: true},
	}
	plan, err := eng.Compile(trace, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Deltas) != 2 || len(plan.Reactions) != 2 {
		t.Fatalf("plan has %d deltas, %d reactions, want 2 each", len(plan.Deltas), len(plan.Reactions))
	}

	for i, action := range []string{"fail", "repair"} {
		reqBody := fmt.Sprintf(`{"action":%q,"a":%d,"b":%d}`, action, a, b)
		code, body := do(t, srv, http.MethodPost, "/events/link", reqBody)
		if code != http.StatusOK {
			t.Fatalf("%s status = %d, body %s", action, code, body)
		}
		var got linkEventResult
		if err := json.Unmarshal(body, &got); err != nil {
			t.Fatal(err)
		}
		if got.ReactionSeconds != plan.Reactions[i] {
			t.Errorf("%s reaction = %v, offline engine priced %v", action, got.ReactionSeconds, plan.Reactions[i])
		}
		if got.RulesDeleted != plan.Deltas[i].TotalDels() || got.RulesAdded != plan.Deltas[i].TotalAdds() {
			t.Errorf("%s rule totals = (%d dels, %d adds), offline (%d, %d)", action,
				got.RulesDeleted, got.RulesAdded, plan.Deltas[i].TotalDels(), plan.Deltas[i].TotalAdds())
		}
		gotDelta, err := json.Marshal(got.RuleDelta)
		if err != nil {
			t.Fatal(err)
		}
		wantDelta, err := json.Marshal(sortedDelta(plan.Deltas[i]))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotDelta, wantDelta) {
			t.Errorf("%s rule delta differs from offline engine:\n--- online ---\n%s\n--- offline ---\n%s",
				action, gotDelta, wantDelta)
		}
	}
}

func TestLinkEventErrors(t *testing.T) {
	srv := newTestServer(t)
	a, b := switchLink(t, srv.topo)
	servers := srv.topo.Servers()
	cases := []struct {
		name, body string
		status     int
	}{
		{"bad action", fmt.Sprintf(`{"action":"toggle","a":%d,"b":%d}`, a, b), http.StatusBadRequest},
		{"unknown field", `{"action":"fail","a":0,"b":1,"x":2}`, http.StatusBadRequest},
		{"not json", `fail a b`, http.StatusBadRequest},
		{"repair healthy", fmt.Sprintf(`{"action":"repair","a":%d,"b":%d}`, a, b), http.StatusUnprocessableEntity},
		{"server endpoint", fmt.Sprintf(`{"action":"fail","a":%d,"b":%d}`, servers[0], a), http.StatusUnprocessableEntity},
		{"no adjacency", fmt.Sprintf(`{"action":"fail","a":%d,"b":%d}`, a, a), http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			code, body := do(t, srv, http.MethodPost, "/events/link", tc.body)
			if code != tc.status {
				t.Fatalf("status = %d, want %d; body %s", code, tc.status, body)
			}
		})
	}
}

func TestRoutes(t *testing.T) {
	srv := newTestServer(t)
	servers := srv.topo.Servers()
	src, dst := servers[0], servers[len(servers)-1]
	code, body := do(t, srv, http.MethodGet, fmt.Sprintf("/routes?src=%d&dst=%d", src, dst), "")
	if code != http.StatusOK {
		t.Fatalf("status = %d, body %s", code, body)
	}
	var resp struct {
		Reachable bool `json:"reachable"`
		Paths     []struct {
			Nodes []int `json:"nodes"`
			Links []int `json:"links"`
		} `json:"paths"`
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if !resp.Reachable || len(resp.Paths) == 0 {
		t.Fatalf("no paths between servers %d and %d: %s", src, dst, body)
	}
	if len(resp.Paths) > 4 {
		t.Fatalf("%d paths exceed k=4", len(resp.Paths))
	}
	for _, p := range resp.Paths {
		if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst || len(p.Nodes) != len(p.Links)+1 {
			t.Fatalf("malformed path %+v", p)
		}
	}

	for _, target := range []string{
		"/routes",
		"/routes?src=0&dst=1",                       // node 0 is a switch
		fmt.Sprintf("/routes?src=%d&dst=xyz", src),  // unparsable
		fmt.Sprintf("/routes?src=%d&dst=9999", src), // out of range
	} {
		if code, _ := do(t, srv, http.MethodGet, target, ""); code != http.StatusBadRequest {
			t.Errorf("GET %s status = %d, want 400", target, code)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	srv := newTestServer(t)
	cases := []struct{ method, target string }{
		{http.MethodPost, "/topology"},
		{http.MethodGet, "/quote/convert"},
		{http.MethodGet, "/events/link"},
		{http.MethodDelete, "/healthz"},
	}
	for _, tc := range cases {
		if code, _ := do(t, srv, tc.method, tc.target, ""); code != http.StatusMethodNotAllowed {
			t.Errorf("%s %s status = %d, want 405", tc.method, tc.target, code)
		}
	}
}

func TestMetrics(t *testing.T) {
	srv := newTestServer(t)
	do(t, srv, http.MethodGet, "/healthz", "")
	code, body := do(t, srv, http.MethodGet, "/metrics", "")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	if !strings.Contains(string(body), "flatd_requests_total") {
		t.Fatalf("metrics body lacks request counter:\n%s", body)
	}
}

// TestConcurrentHammer drives every endpoint from many goroutines at
// once; run under -race it proves the mutex discipline.
func TestConcurrentHammer(t *testing.T) {
	srv := newTestServer(t)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	a, b := switchLink(t, srv.topo)
	servers := srv.topo.Servers()
	client := ts.Client()

	post := func(path, body string) int {
		resp, err := client.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Error(err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	get := func(path string) int {
		resp, err := client.Get(ts.URL + path)
		if err != nil {
			t.Error(err)
			return 0
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}

	const workers, iters = 8, 12
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0:
					if code := get("/topology"); code != http.StatusOK {
						t.Errorf("topology status %d", code)
					}
				case 1:
					target := fmt.Sprintf("/routes?src=%d&dst=%d", servers[0], servers[len(servers)-1])
					if code := get(target); code != http.StatusOK {
						t.Errorf("routes status %d", code)
					}
				case 2:
					if code := post("/quote/convert", `{"modes":["local","clos"]}`); code != http.StatusOK {
						t.Errorf("quote status %d", code)
					}
				case 3:
					// Concurrent fail/repair of one adjacency races with the
					// other worker on the same bundle: 422 (nothing left to
					// fail / nothing to repair) is a legitimate outcome.
					action := []string{"fail", "repair"}[i%2]
					body := fmt.Sprintf(`{"action":%q,"a":%d,"b":%d}`, action, a, b)
					if code := post("/events/link", body); code != http.StatusOK && code != http.StatusUnprocessableEntity {
						t.Errorf("link event status %d", code)
					}
				}
			}
		}(w)
	}
	wg.Wait()

	if code := get("/metrics"); code != http.StatusOK {
		t.Errorf("metrics status %d", code)
	}
}

// TestGracefulShutdownDrain cancels the run context while a request is
// blocked inside a handler: Run must not return until the request
// completes, and the request must still succeed.
func TestGracefulShutdownDrain(t *testing.T) {
	srv := newTestServer(t)
	srv.cfg.RequestTimeout = time.Minute
	srv.cfg.DrainTimeout = 30 * time.Second

	entered := make(chan struct{})
	release := make(chan struct{})
	var once sync.Once
	srv.preHandle = func(r *http.Request) {
		if r.URL.Path == "/topology" {
			once.Do(func() { close(entered) })
			<-release
		}
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runErr := make(chan error, 1)
	go func() { runErr <- srv.Run(ctx, ln) }()

	reqStatus := make(chan int, 1)
	go func() {
		resp, err := http.Get("http://" + ln.Addr().String() + "/topology")
		if err != nil {
			reqStatus <- -1
			return
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		reqStatus <- resp.StatusCode
	}()

	<-entered
	cancel()
	select {
	case err := <-runErr:
		t.Fatalf("Run returned (%v) while a request was still in flight", err)
	case <-time.After(150 * time.Millisecond):
	}

	close(release)
	if code := <-reqStatus; code != http.StatusOK {
		t.Fatalf("in-flight request finished with status %d, want 200", code)
	}
	if err := <-runErr; err != nil {
		t.Fatalf("Run returned %v after drain, want nil", err)
	}
}

func TestStartPprofBindFailure(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if _, err := StartPprof(ln.Addr().String(), nil); err == nil {
		t.Fatal("StartPprof bound an already-bound address without error")
	}
}

func TestStartPprofServes(t *testing.T) {
	addr, err := StartPprof("127.0.0.1:0", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + addr.String() + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof status = %d", resp.StatusCode)
	}
}
