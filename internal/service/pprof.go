package service

import (
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof on the default mux
)

// StartPprof binds addr and serves the net/http/pprof handlers on it in
// the background. The listener is established before StartPprof returns,
// so a caller that prints the endpoint address after a nil error is never
// lying about an unbound port; a bind failure surfaces here instead of in
// a detached goroutine's log line. onErr, if non-nil, receives the
// (non-nil) error when the background server later stops serving.
func StartPprof(addr string, onErr func(error)) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	go func() {
		err := http.Serve(ln, nil)
		if err != nil && onErr != nil {
			onErr(err)
		}
	}()
	return ln.Addr(), nil
}
