package service

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"

	"flattree/internal/churn"
	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// switchDelta is one switch's entry in a JSON-rendered rule delta,
// sorted by switch ID so response bodies are deterministic.
type switchDelta struct {
	Switch int `json:"switch"`
	Dels   int `json:"dels,omitempty"`
	Adds   int `json:"adds,omitempty"`
}

// sortedDelta renders a routing.RuleDelta as a deterministic slice.
func sortedDelta(d routing.RuleDelta) []switchDelta {
	order := make([]int, 0, len(d.Adds)+len(d.Dels))
	for sw := range d.Adds {
		order = append(order, sw)
	}
	for sw := range d.Dels {
		order = append(order, sw)
	}
	sort.Ints(order)
	out := make([]switchDelta, 0, len(order))
	for i, sw := range order {
		if i > 0 && sw == order[i-1] {
			continue // switch present in both maps
		}
		out = append(out, switchDelta{Switch: sw, Dels: d.Dels[sw], Adds: d.Adds[sw]})
	}
	return out
}

// failedLink is one masked link in /topology and /events/link responses.
type failedLink struct {
	Link int `json:"link"`
	A    int `json:"a"`
	B    int `json:"b"`
}

// failedLinksLocked renders the masked set sorted by link ID; callers
// hold at least a read lock.
func (s *Server) failedLinksLocked() []failedLink {
	out := make([]failedLink, 0, len(s.failed))
	for id, ab := range s.failed {
		out = append(out, failedLink{Link: id, A: ab[0], B: ab[1]})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Link < out[j].Link })
	return out
}

// modeStrings renders a mode vector for JSON.
func modeStrings(modes []core.Mode) []string {
	out := make([]string, len(modes))
	for i, m := range modes {
		out[i] = m.String()
	}
	return out
}

// writeJSON writes v as an indented JSON body with the given status.
func writeJSON(w http.ResponseWriter, status int, v interface{}) {
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		http.Error(w, `{"error":"encoding response failed"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(body, '\n'))
}

// httpError writes a JSON error body.
func httpError(w http.ResponseWriter, status int, format string, args ...interface{}) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// requireMethod enforces the endpoint's method, answering 405 otherwise.
func requireMethod(w http.ResponseWriter, r *http.Request, method string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		httpError(w, http.StatusMethodNotAllowed, "method %s not allowed; use %s", r.Method, method)
		return false
	}
	return true
}

// GET /healthz — liveness plus the state's mutation epoch.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	s.mu.RLock()
	events := s.events
	s.mu.RUnlock()
	writeJSON(w, http.StatusOK, struct {
		Status        string  `json:"status"`
		UptimeSeconds float64 `json:"uptime_seconds"`
		LinkEvents    int64   `json:"link_events_applied"`
	}{Status: "ok", UptimeSeconds: sinceStart(s), LinkEvents: events})
}

// topologyResponse is the GET /topology body.
type topologyResponse struct {
	Name          string       `json:"name"`
	Fingerprint   string       `json:"fingerprint"`
	K             int          `json:"k"`
	PodModes      []string     `json:"pod_modes"`
	Servers       int          `json:"servers"`
	Switches      int          `json:"switches"`
	Links         int          `json:"links"`
	FailedLinks   []failedLink `json:"failed_links"`
	DegradedPairs int          `json:"degraded_pairs"`
}

// GET /topology — the live state's identity and health.
func (s *Server) handleTopology(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.snapshotTopology())
}

// snapshotTopology copies the identity/health view under the read lock
// so the handler writes the response with the lock already released: a
// slow client must not hold up the daemon's write lock (lockcheck).
func (s *Server) snapshotTopology() topologyResponse {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return topologyResponse{
		Name:          s.topo.Name,
		Fingerprint:   s.fp,
		K:             s.cfg.K,
		PodModes:      modeStrings(s.nw.PodModes()),
		Servers:       len(s.topo.Servers()),
		Switches:      len(s.topo.Nodes) - len(s.topo.Servers()),
		Links:         s.topo.G.NumLinks(),
		FailedLinks:   s.failedLinksLocked(),
		DegradedPairs: s.inc.DegradedPairs(),
	}
}

// routePath is one path in a GET /routes body.
type routePath struct {
	Nodes []int `json:"nodes"`
	Links []int `json:"links"`
}

// GET /routes?src=&dst= — live k-shortest server-to-server lookup.
func (s *Server) handleRoutes(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	src, err := s.serverParam(r, "src")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	dst, err := s.serverParam(r, "dst")
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	out := s.lookupRoutes(src, dst)
	writeJSON(w, http.StatusOK, struct {
		Src       int         `json:"src"`
		Dst       int         `json:"dst"`
		K         int         `json:"k"`
		Reachable bool        `json:"reachable"`
		Paths     []routePath `json:"paths"`
	}{Src: src, Dst: dst, K: s.cfg.K, Reachable: len(out) > 0, Paths: out})
}

// lookupRoutes runs the k-shortest lookup under the read lock and
// copies the result out, so the response write happens unlocked.
func (s *Server) lookupRoutes(src, dst int) []routePath {
	s.mu.RLock()
	defer s.mu.RUnlock()
	paths := s.inc.View().ServerPaths(src, dst)
	if len(paths) > s.cfg.K {
		paths = paths[:s.cfg.K]
	}
	out := make([]routePath, len(paths))
	for i, p := range paths {
		out[i] = routePath{Nodes: p.Nodes, Links: p.Links}
	}
	return out
}

// serverParam parses a query parameter as a server node ID.
func (s *Server) serverParam(r *http.Request, name string) (int, error) {
	raw := r.URL.Query().Get(name)
	if raw == "" {
		return 0, fmt.Errorf("missing query parameter %q", name)
	}
	id, err := strconv.Atoi(raw)
	if err != nil {
		return 0, fmt.Errorf("parameter %q: %v", name, err)
	}
	if id < 0 || id >= len(s.topo.Nodes) {
		return 0, fmt.Errorf("parameter %q: node %d out of range [0, %d)", name, id, len(s.topo.Nodes))
	}
	if s.topo.Nodes[id].Kind != topo.Server {
		return 0, fmt.Errorf("parameter %q: node %d is a %v, not a server", name, id, s.topo.Nodes[id].Kind)
	}
	return id, nil
}

// quoteRequest is the POST /quote/convert body: the full target per-pod
// mode vector.
type quoteRequest struct {
	Modes []string `json:"modes"`
}

// quoteResponse is the POST /quote/convert body: the Table 3 delay
// breakdown plus the per-switch rule churn (dels = pre-conversion rule
// counts, adds = post-conversion, per control.Quote).
type quoteResponse struct {
	From                   []string      `json:"from"`
	To                     []string      `json:"to"`
	ConvertersReconfigured int           `json:"converters_reconfigured"`
	RulesDeleted           int           `json:"rules_deleted"`
	RulesAdded             int           `json:"rules_added"`
	OCSSeconds             float64       `json:"ocs_seconds"`
	DeleteSeconds          float64       `json:"delete_seconds"`
	AddSeconds             float64       `json:"add_seconds"`
	TotalSeconds           float64       `json:"total_seconds"`
	RampSeconds            float64       `json:"ramp_seconds"`
	RuleDelta              []switchDelta `json:"rule_delta"`
}

// POST /quote/convert — price a what-if pod-mode conversion on a clone
// of the live network; live routing state is untouched.
func (s *Server) handleQuoteConvert(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req quoteRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	modes := make([]core.Mode, len(req.Modes))
	for i, raw := range req.Modes {
		m, err := core.ParseMode(raw)
		if err != nil {
			httpError(w, http.StatusBadRequest, "modes[%d]: %v", i, err)
			return
		}
		modes[i] = m
	}
	s.mu.RLock()
	clone := s.nw.Clone()
	s.mu.RUnlock()
	q, err := control.QuotePodModes(clone, s.cfg.Delay, s.kByMode(), modes)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "quote: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, quoteResponse{
		From:                   modeStrings(q.Report.From),
		To:                     modeStrings(q.Report.To),
		ConvertersReconfigured: q.Report.ConvertersReconfigured,
		RulesDeleted:           q.Report.RulesDeleted,
		RulesAdded:             q.Report.RulesAdded,
		OCSSeconds:             q.Report.OCSTime,
		DeleteSeconds:          q.Report.DeleteTime,
		AddSeconds:             q.Report.AddTime,
		TotalSeconds:           q.Report.Total,
		RampSeconds:            q.Report.RampTime,
		RuleDelta:              sortedDelta(q.Delta),
	})
}

// kByMode builds the controller k-table the daemon quotes with: the
// configured k for every mode, matching the live table's depth.
func (s *Server) kByMode() map[core.Mode]int {
	return map[core.Mode]int{
		core.ModeClos:   s.cfg.K,
		core.ModeLocal:  s.cfg.K,
		core.ModeGlobal: s.cfg.K,
	}
}

// linkEventRequest is the POST /events/link body.
type linkEventRequest struct {
	// Action is "fail" or "repair".
	Action string `json:"action"`
	// A and B are the switch endpoints of the affected adjacency; the
	// daemon picks the exact parallel link by the churn engine's masking
	// rule (fail the lowest surviving ID, repair the most recent).
	A int `json:"a"`
	B int `json:"b"`
}

// linkEventResponse is the POST /events/link body: the applied event,
// the exact rule delta the incremental table installed, and its priced
// control-plane reaction.
type linkEventResponse struct {
	Action          string        `json:"action"`
	A               int           `json:"a"`
	B               int           `json:"b"`
	Link            int           `json:"link"`
	RulesDeleted    int           `json:"rules_deleted"`
	RulesAdded      int           `json:"rules_added"`
	ReactionSeconds float64       `json:"reaction_seconds"`
	RuleDelta       []switchDelta `json:"rule_delta"`
	FailedLinks     []failedLink  `json:"failed_links"`
	DegradedPairs   int           `json:"degraded_pairs"`
}

// POST /events/link — fail or repair a link through the live incremental
// table. Mutations are serialized under the write lock.
func (s *Server) handleLinkEvent(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodPost) {
		return
	}
	var req linkEventRequest
	if err := decodeBody(r, &req); err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if req.Action != "fail" && req.Action != "repair" {
		httpError(w, http.StatusBadRequest, "action %q must be \"fail\" or \"repair\"", req.Action)
		return
	}
	resp, err := s.applyLinkEvent(req)
	if err != nil {
		httpError(w, http.StatusUnprocessableEntity, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// applyLinkEvent mutates the incremental table and bookkeeping under
// the write lock and returns a fully copied response, so the handler
// writes to the client with the lock already released: a stalled
// client connection must not serialize every other request behind the
// daemon's one write lock (lockcheck).
func (s *Server) applyLinkEvent(req linkEventRequest) (linkEventResponse, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	var (
		link  int
		delta routing.RuleDelta
		err   error
	)
	if req.Action == "fail" {
		link, delta, err = s.inc.FailBetween(req.A, req.B)
	} else {
		link, delta, err = s.inc.RepairBetween(req.A, req.B)
	}
	if err != nil {
		return linkEventResponse{}, err
	}
	if req.Action == "fail" {
		s.failed[link] = [2]int{req.A, req.B}
	} else {
		delete(s.failed, link)
	}
	s.events++
	reaction := churn.ReactionTime(s.cfg.Detection, delta, s.cfg.Delay)
	s.reg.Counter("flatd_link_events_total", "action", req.Action).Inc()
	return linkEventResponse{
		Action:          req.Action,
		A:               req.A,
		B:               req.B,
		Link:            link,
		RulesDeleted:    delta.TotalDels(),
		RulesAdded:      delta.TotalAdds(),
		ReactionSeconds: reaction,
		RuleDelta:       sortedDelta(delta),
		FailedLinks:     s.failedLinksLocked(),
		DegradedPairs:   s.inc.DegradedPairs(),
	}, nil
}

// GET /metrics — Prometheus text exposition of the daemon's registry.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if !requireMethod(w, r, http.MethodGet) {
		return
	}
	if s.reg == nil {
		httpError(w, http.StatusServiceUnavailable, "telemetry registry disabled")
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	if err := s.reg.WritePrometheus(w); err != nil {
		// Headers are gone; all we can do is note it in the registry.
		s.reg.Counter("flatd_metrics_write_errors_total").Inc()
	}
}

// decodeBody parses a JSON request body strictly: unknown fields and
// trailing garbage are errors, so malformed requests fail loudly.
func decodeBody(r *http.Request, v interface{}) error {
	dec := json.NewDecoder(http.MaxBytesReader(nil, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("request body: %v", err)
	}
	if dec.More() {
		return fmt.Errorf("request body: trailing data after JSON object")
	}
	return nil
}
