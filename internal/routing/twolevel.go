package routing

import (
	"fmt"

	"flattree/internal/topo"
)

// Two-level routing (§4, citing the fat-tree paper [12]) is the classic
// Clos-mode alternative to ECMP and SDN routing: each switch forwards
// downward by destination prefix (which edge switch the destination lives
// under) and upward by destination suffix (a deterministic hash of the
// host identifier spreading traffic over the uplinks). It needs no
// per-flow state and no controller involvement, but only works on the
// hierarchical Clos topology — which is exactly why flat-tree's global and
// local modes need the k-shortest-path machinery instead.

// TwoLevel holds per-switch two-level forwarding tables for a Clos-mode
// realization.
type TwoLevel struct {
	t *topo.Topology
	// downPort[sw][edgeSwitch] = link ID toward that edge switch's
	// subtree (present only where a downward route exists).
	downPort map[int]map[int]int
	// upLinks[sw] lists uplink link IDs in deterministic order; the
	// destination suffix selects one.
	upLinks map[int][]int
	// edgeOf[server] = its edge switch; suffix[server] = host index used
	// for uplink hashing.
	edgeOf map[int]int
	suffix map[int]int
}

// BuildTwoLevel constructs the tables. The realization must be
// hierarchical: every server on an edge switch (Clos mode); it returns an
// error otherwise, mirroring why the paper cannot use two-level routing
// in the flattened modes.
func BuildTwoLevel(t *topo.Topology) (*TwoLevel, error) {
	tl := &TwoLevel{
		t:        t,
		downPort: make(map[int]map[int]int),
		upLinks:  make(map[int][]int),
		edgeOf:   make(map[int]int),
		suffix:   make(map[int]int),
	}
	for i, s := range t.Servers() {
		sw := t.AttachedSwitch(s)
		if t.Nodes[sw].Kind != topo.Edge {
			return nil, fmt.Errorf("routing: two-level routing needs a Clos-mode topology; server %d sits on a %v switch",
				s, t.Nodes[sw].Kind)
		}
		tl.edgeOf[s] = sw
		tl.suffix[s] = i
	}

	// Uplinks: edge->agg and agg->core links, in link-ID order.
	for _, l := range t.G.Links() {
		na, nb := t.Nodes[l.A], t.Nodes[l.B]
		if na.Kind == topo.Server || nb.Kind == topo.Server {
			continue
		}
		// The lower-layer endpoint (edge < agg < core) owns the uplink.
		lo := l.A
		if rank(nb.Kind) < rank(na.Kind) {
			lo = l.B
		}
		tl.upLinks[lo] = append(tl.upLinks[lo], l.ID)
	}

	// Downward prefixes, built bottom-up: an edge switch's subtree is
	// itself; aggs learn edges through their down links; cores learn
	// edges through aggs.
	for _, e := range t.Edges() {
		tl.ensureDown(e)[e] = -1 // local delivery
	}
	for _, a := range t.Aggs() {
		for _, id := range t.G.Incident(a) {
			l := t.G.Link(id)
			other := l.Other(a)
			if t.Nodes[other].Kind == topo.Edge {
				tl.ensureDown(a)[other] = id
			}
		}
	}
	for _, c := range t.Cores() {
		for _, id := range t.G.Incident(c) {
			l := t.G.Link(id)
			other := l.Other(c)
			if t.Nodes[other].Kind == topo.Agg {
				//flatvet:ordered set-if-absent per edge; the winning link is fixed by the deterministic Incident order, not by this map's order
				for e := range tl.downPort[other] {
					if _, have := tl.ensureDown(c)[e]; !have {
						tl.ensureDown(c)[e] = id
					}
				}
			}
		}
	}
	return tl, nil
}

func (tl *TwoLevel) ensureDown(sw int) map[int]int {
	m := tl.downPort[sw]
	if m == nil {
		m = make(map[int]int)
		tl.downPort[sw] = m
	}
	return m
}

func rank(k topo.Kind) int {
	switch k {
	case topo.Edge:
		return 0
	case topo.Agg:
		return 1
	default:
		return 2
	}
}

// NextHop returns the link a switch forwards on for the given destination
// server: the prefix (down) table wins; otherwise the suffix selects an
// uplink. ok=false means no route (a disconnected or non-Clos topology).
func (tl *TwoLevel) NextHop(sw, dstServer int) (linkID int, deliver bool, ok bool) {
	edge := tl.edgeOf[dstServer]
	if down, have := tl.downPort[sw]; have {
		if id, have := down[edge]; have {
			if id == -1 {
				return -1, true, true // local edge: deliver to the server port
			}
			return id, false, true
		}
	}
	ups := tl.upLinks[sw]
	if len(ups) == 0 {
		return 0, false, false
	}
	return ups[tl.suffix[dstServer]%len(ups)], false, true
}

// Route walks the tables from the source server's edge switch to the
// destination and returns the switch-level node path. maxHops guards
// against loops (which a correct Clos table set never produces).
func (tl *TwoLevel) Route(srcServer, dstServer int) ([]int, error) {
	cur := tl.edgeOf[srcServer]
	path := []int{cur}
	for hops := 0; hops < 8; hops++ {
		link, deliver, ok := tl.NextHop(cur, dstServer)
		if !ok {
			return nil, fmt.Errorf("routing: no two-level route at switch %d", cur)
		}
		if deliver {
			return path, nil
		}
		cur = tl.t.G.Link(link).Other(cur)
		path = append(path, cur)
	}
	return nil, fmt.Errorf("routing: two-level routing looped for %d->%d", srcServer, dstServer)
}

// TableSizes returns per-switch (prefix, suffix) entry counts — the
// two-level state footprint, constant per switch regardless of flow count.
func (tl *TwoLevel) TableSizes() map[int][2]int {
	out := make(map[int][2]int)
	for _, sw := range tl.t.Switches() {
		out[sw] = [2]int{len(tl.downPort[sw]), len(tl.upLinks[sw])}
	}
	return out
}
