package routing

import (
	"fmt"
	"strconv"
	"strings"
	"sync"

	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// Cross-run route-table cache: experiment cells across Table 2, Figures
// 6-8, and the ablations repeatedly realize structurally identical
// topologies and rebuild the same Yen tables. Tables are memoized by
// (topology fingerprint, k); a request for a smaller k than an already
// cached table is served as a WithK view of the larger table (Yen is
// incremental, so the first k paths of a k'-table, k' > k, equal a
// k-table — see WithK). Hits/misses/evictions flow into telemetry under
// cache="route".

var (
	tableCache = parallel.NewCache("route", 64)

	// tableMaxKMu guards tableMaxK: fingerprint -> largest k built so far,
	// used to find a superset table to derive smaller-k views from. The
	// eviction hook below keeps each record tied to a live cache entry, so
	// the index cannot grow past the cache capacity or point at an evicted
	// table.
	tableMaxKMu sync.Mutex
	tableMaxK   = map[string]int{}
)

func init() {
	tableCache.OnEvict(func(key string) {
		fp, k, ok := parseTableKey(key)
		if !ok {
			return
		}
		tableMaxKMu.Lock()
		if tableMaxK[fp] == k {
			delete(tableMaxK, fp)
		}
		tableMaxKMu.Unlock()
	})
}

func tableKey(fp string, k int) string { return fmt.Sprintf("%s|k=%d", fp, k) }

// parseTableKey inverts tableKey.
func parseTableKey(key string) (fp string, k int, ok bool) {
	i := strings.LastIndex(key, "|k=")
	if i < 0 {
		return "", 0, false
	}
	k, err := strconv.Atoi(key[i+len("|k="):])
	if err != nil {
		return "", 0, false
	}
	return key[:i], k, true
}

// BuildKShortestCached returns a route table for the realized topology,
// reusing a previously built table for any structurally identical
// topology. Identical (fingerprint, k) requests return the identical
// *Table. The cached table holds a reference to the topology it was first
// built against; topologies must not be mutated after realization (none
// of the experiment paths do — failure studies rebuild instead).
func BuildKShortestCached(t *topo.Topology, k int) *Table {
	if k < 1 {
		panic(fmt.Sprintf("routing: k = %d", k))
	}
	fp := t.Fingerprint()
	tb, _ := parallel.Get(tableCache, tableKey(fp, k), func() (*Table, error) {
		tableMaxKMu.Lock()
		maxK := tableMaxK[fp]
		tableMaxKMu.Unlock()
		if maxK > k {
			if v, ok := tableCache.Peek(tableKey(fp, maxK)); ok {
				return v.(*Table).WithK(k), nil
			}
			// The superset table is gone (evicted between the hook firing
			// and this Peek, or recorded before the hook existed): drop the
			// stale record so later requests stop peeking a dead entry.
			tableMaxKMu.Lock()
			if tableMaxK[fp] == maxK {
				delete(tableMaxK, fp)
			}
			tableMaxKMu.Unlock()
		}
		tb := BuildKShortest(t, k)
		tableMaxKMu.Lock()
		if k > tableMaxK[fp] {
			tableMaxK[fp] = k
		}
		tableMaxKMu.Unlock()
		return tb, nil
	})
	return tb
}

// PurgeCache drops every cached route table (test hook).
func PurgeCache() {
	tableCache.Purge()
	tableMaxKMu.Lock()
	tableMaxK = map[string]int{}
	tableMaxKMu.Unlock()
}
