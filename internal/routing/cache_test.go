package routing

import (
	"fmt"
	"reflect"
	"testing"

	"flattree/internal/core"
	"flattree/internal/parallel"
	"flattree/internal/topo"
)

func cacheTestTopo(t *testing.T) *topo.Topology {
	t.Helper()
	p := topo.ClosParams{
		Name: "cache-mini", Pods: 2, EdgesPerPod: 2, AggsPerPod: 2,
		ServersPerEdge: 2, EdgeUplinks: 2, AggUplinks: 2, Cores: 4,
	}
	nw, err := core.New(p, core.Options{N: 1, M: 1, Pattern: core.Pattern1})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeGlobal)
	return nw.Realize().Topo
}

func TestBuildKShortestCachedPointerEqual(t *testing.T) {
	PurgeCache()
	defer PurgeCache()
	tp := cacheTestTopo(t)
	a := BuildKShortestCached(tp, 4)
	b := BuildKShortestCached(tp, 4)
	if a != b {
		t.Fatal("identical (topology, k) built two distinct tables")
	}
}

func TestBuildKShortestCachedSharesAcrossRealizations(t *testing.T) {
	PurgeCache()
	defer PurgeCache()
	a := BuildKShortestCached(cacheTestTopo(t), 4)
	b := BuildKShortestCached(cacheTestTopo(t), 4)
	if a != b {
		t.Fatal("structurally identical realizations did not share a table")
	}
}

// TestBuildKShortestCachedDerivesSmallerK pins the superset rule: after a
// k=8 table is cached, a k=4 request is served from it and equals a table
// built directly at k=4.
func TestBuildKShortestCachedDerivesSmallerK(t *testing.T) {
	PurgeCache()
	defer PurgeCache()
	tp := cacheTestTopo(t)
	big := BuildKShortestCached(tp, 8)
	small := BuildKShortestCached(tp, 4)
	if small.K != 4 {
		t.Fatalf("derived table has K=%d", small.K)
	}
	direct := BuildKShortest(tp, 4)
	if len(small.Paths) != len(direct.Paths) {
		t.Fatalf("derived table has %d pairs, direct %d", len(small.Paths), len(direct.Paths))
	}
	for pk, want := range direct.Paths {
		got := small.Paths[pk]
		if len(got) != len(want) {
			t.Fatalf("pair %v: %d paths derived, %d direct", pk, len(got), len(want))
		}
		for i := range want {
			if !reflect.DeepEqual(got[i].Nodes, want[i].Nodes) {
				t.Fatalf("pair %v path %d: derived %v, direct %v", pk, i, got[i].Nodes, want[i].Nodes)
			}
		}
	}
	// The derived view must also be memoized: a second k=4 request returns
	// the same pointer, and the big table is untouched.
	if again := BuildKShortestCached(tp, 4); again != small {
		t.Fatal("derived view was not memoized")
	}
	if big.K != 8 {
		t.Fatal("superset table was modified")
	}
}

// TestCachedTableEvictionPurgesMaxK pins the eviction bug: once the
// max-k table is evicted by LRU pressure, its tableMaxK record must go
// with it — otherwise every smaller-k request peeks a dead entry forever
// and the index grows without bound across fingerprints.
func TestCachedTableEvictionPurgesMaxK(t *testing.T) {
	PurgeCache()
	defer PurgeCache()
	tp := cacheTestTopo(t)
	BuildKShortestCached(tp, 6)
	fp := tp.Fingerprint()
	// Flood the cache far past capacity so the route table is evicted.
	for i := 0; i < 100; i++ {
		if _, err := parallel.Get(tableCache, fmt.Sprintf("flood|%d", i), func() (*Table, error) {
			return &Table{}, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
	tableMaxKMu.Lock()
	_, stale := tableMaxK[fp]
	tableMaxKMu.Unlock()
	if stale {
		t.Fatal("tableMaxK record survived eviction of its table")
	}
	// A smaller-k request now rebuilds cleanly and re-records its k.
	got := BuildKShortestCached(tp, 3)
	want := BuildKShortest(tp, 3)
	if len(got.Paths) != len(want.Paths) || got.K != 3 {
		t.Fatalf("rebuilt table K=%d with %d pairs, want K=3 with %d", got.K, len(got.Paths), len(want.Paths))
	}
	tableMaxKMu.Lock()
	rec := tableMaxK[fp]
	tableMaxKMu.Unlock()
	if rec != 3 {
		t.Fatalf("tableMaxK[fp] = %d after rebuild, want 3", rec)
	}
}

// TestCachedTableStaleMaxKRepaired pins the Peek-miss repair: a record
// pointing at a key the cache no longer holds is dropped on first use
// instead of being consulted forever.
func TestCachedTableStaleMaxKRepaired(t *testing.T) {
	PurgeCache()
	defer PurgeCache()
	tp := cacheTestTopo(t)
	fp := tp.Fingerprint()
	tableMaxKMu.Lock()
	tableMaxK[fp] = 99 // simulate a record orphaned by eviction
	tableMaxKMu.Unlock()
	got := BuildKShortestCached(tp, 3)
	want := BuildKShortest(tp, 3)
	if got.K != 3 || len(got.Paths) != len(want.Paths) {
		t.Fatalf("table built under stale record: K=%d, %d pairs", got.K, len(got.Paths))
	}
	tableMaxKMu.Lock()
	rec := tableMaxK[fp]
	tableMaxKMu.Unlock()
	if rec != 3 {
		t.Fatalf("stale tableMaxK record = %d, want repaired to 3", rec)
	}
}
