package routing

import (
	"testing"

	"flattree/internal/core"
	"flattree/internal/topo"
)

func closRealization(t *testing.T) *core.Realization {
	t.Helper()
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeClos)
	return nw.Realize()
}

func TestTwoLevelDeliversAllPairs(t *testing.T) {
	r := closRealization(t)
	tl, err := BuildTwoLevel(r.Topo)
	if err != nil {
		t.Fatal(err)
	}
	servers := r.Topo.Servers()
	for _, src := range servers {
		for _, dst := range servers {
			if src == dst {
				continue
			}
			path, err := tl.Route(src, dst)
			if err != nil {
				t.Fatalf("%d->%d: %v", src, dst, err)
			}
			if path[len(path)-1] != r.Topo.AttachedSwitch(dst) {
				t.Fatalf("%d->%d ended at %d, want %d", src, dst,
					path[len(path)-1], r.Topo.AttachedSwitch(dst))
			}
			// Clos paths: 1 (intra-rack), 3 (intra-pod), or 5 switches.
			if n := len(path); n != 1 && n != 3 && n != 5 {
				t.Fatalf("%d->%d path %v has %d switches", src, dst, path, n)
			}
		}
	}
}

func TestTwoLevelSpreadsUplinks(t *testing.T) {
	// Different destination suffixes must use different uplinks from the
	// same edge switch (the whole point of the suffix table).
	r := closRealization(t)
	tl, err := BuildTwoLevel(r.Topo)
	if err != nil {
		t.Fatal(err)
	}
	servers := r.Topo.Servers()
	src := servers[0]
	used := map[int]bool{}
	// Destinations in a different pod: the first hop is an uplink.
	for _, dst := range servers {
		if r.Topo.PodOf(dst) == r.Topo.PodOf(src) {
			continue
		}
		link, deliver, ok := tl.NextHop(r.Topo.AttachedSwitch(src), dst)
		if !ok || deliver {
			t.Fatalf("unexpected next hop for %d", dst)
		}
		used[link] = true
	}
	if len(used) < 2 {
		t.Fatalf("suffix hashing used %d distinct uplinks, want >= 2", len(used))
	}
}

func TestTwoLevelRejectsFlattenedModes(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeGlobal)
	r := nw.Realize()
	if _, err := BuildTwoLevel(r.Topo); err == nil {
		t.Fatal("two-level routing accepted a flattened topology")
	}
}

func TestTwoLevelTableSizesConstant(t *testing.T) {
	// Table sizes depend on topology, not on traffic: an edge switch
	// holds one prefix (itself) plus its uplinks; totals stay tiny
	// compared to the per-pair state of k-shortest-path routing.
	r := closRealization(t)
	tl, err := BuildTwoLevel(r.Topo)
	if err != nil {
		t.Fatal(err)
	}
	sizes := tl.TableSizes()
	for _, e := range r.Topo.Edges() {
		if sizes[e][0] != 1 {
			t.Fatalf("edge %d prefix entries = %d, want 1", e, sizes[e][0])
		}
		if sizes[e][1] != 2 {
			t.Fatalf("edge %d uplinks = %d, want 2", e, sizes[e][1])
		}
	}
	for _, c := range r.Topo.Cores() {
		// A core switch must know a route to every edge switch.
		if sizes[c][0] != len(r.Topo.Edges()) {
			t.Fatalf("core %d prefixes = %d, want %d", c, sizes[c][0], len(r.Topo.Edges()))
		}
	}
}

func TestTwoLevelOnLargerClos(t *testing.T) {
	p, err := topo.Table2ByName("topo-2")
	if err != nil {
		t.Fatal(err)
	}
	ct, err := topo.BuildClos(p)
	if err != nil {
		t.Fatal(err)
	}
	tl, err := BuildTwoLevel(ct)
	if err != nil {
		t.Fatal(err)
	}
	servers := ct.Servers()
	// Sample pairs across pods.
	for i := 0; i < len(servers); i += 97 {
		for j := len(servers) - 1; j >= 0; j -= 101 {
			if i == j {
				continue
			}
			if _, err := tl.Route(servers[i], servers[j]); err != nil {
				t.Fatal(err)
			}
		}
	}
}
