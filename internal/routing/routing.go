// Package routing implements the path selection machinery of §4: k-shortest-
// path route tables computed at the ingress/egress switch level (Observation
// 2 of §4.2.1), server-level path expansion, ECMP with header-hash path
// choice for the Clos baseline, and network-state accounting.
package routing

import (
	"fmt"
	"sort"
	"time"

	"flattree/internal/graph"
	"flattree/internal/telemetry"
	"flattree/internal/topo"
)

// Table holds switch-level k-shortest paths between every ordered pair of
// ingress/egress switches (switches with at least one attached server).
type Table struct {
	K int
	// Ingress lists the ingress/egress switch node IDs in ascending order.
	Ingress []int
	// Paths maps each ordered ingress-switch pair to its k-shortest
	// loopless paths, shortest first.
	Paths map[graph.PairKey][]graph.Path
	topo  *topo.Topology
}

// BuildKShortest computes the table for the realized topology. Per
// Observation 1, servers reach exactly one ingress switch, so only
// switch-to-switch paths are stored; per Observation 2, those paths capture
// the selected server-pair paths.
func BuildKShortest(t *topo.Topology, k int) *Table {
	if k < 1 {
		panic(fmt.Sprintf("routing: k = %d", k))
	}
	start := time.Now()
	defer func() {
		telemetry.C("routing_tables_built_total").Inc()
		telemetry.H("routing_build_seconds").Observe(time.Since(start).Seconds())
	}()
	ingressSet := make(map[int]bool)
	for _, s := range t.Servers() {
		ingressSet[t.AttachedSwitch(s)] = true
	}
	ingress := make([]int, 0, len(ingressSet))
	for sw := range ingressSet {
		ingress = append(ingress, sw)
	}
	sort.Ints(ingress)

	var pairs []graph.PairKey
	for _, a := range ingress {
		for _, b := range ingress {
			if a != b {
				pairs = append(pairs, graph.PairKey{Src: a, Dst: b})
			}
		}
	}
	return &Table{
		K:       k,
		Ingress: ingress,
		Paths:   t.G.KShortestAllPairs(pairs, k),
		topo:    t,
	}
}

// SwitchPaths returns the k-shortest paths between two ingress switches.
// For src == dst it returns one zero-length path.
func (tb *Table) SwitchPaths(src, dst int) []graph.Path {
	if src == dst {
		return []graph.Path{{Nodes: []int{src}}}
	}
	return tb.Paths[graph.PairKey{Src: src, Dst: dst}]
}

// ServerPaths expands switch-level paths to full server-to-server paths,
// including the two server uplinks. Intra-switch pairs get the single
// two-hop path through their shared switch.
func (tb *Table) ServerPaths(srcServer, dstServer int) []graph.Path {
	t := tb.topo
	sSw, dSw := t.AttachedSwitch(srcServer), t.AttachedSwitch(dstServer)
	sUp := serverUplink(t, srcServer)
	dUp := serverUplink(t, dstServer)
	if sSw == dSw {
		return []graph.Path{{
			Nodes: []int{srcServer, sSw, dstServer},
			Links: []int{sUp, dUp},
		}}
	}
	swPaths := tb.SwitchPaths(sSw, dSw)
	out := make([]graph.Path, 0, len(swPaths))
	for _, p := range swPaths {
		nodes := make([]int, 0, len(p.Nodes)+2)
		links := make([]int, 0, len(p.Links)+2)
		nodes = append(nodes, srcServer)
		nodes = append(nodes, p.Nodes...)
		nodes = append(nodes, dstServer)
		links = append(links, sUp)
		links = append(links, p.Links...)
		links = append(links, dUp)
		out = append(out, graph.Path{Nodes: nodes, Links: links})
	}
	return out
}

// serverUplink returns the single link incident to a server.
func serverUplink(t *topo.Topology, server int) int {
	inc := t.G.Incident(server)
	if len(inc) != 1 {
		panic(fmt.Sprintf("routing: server %d has %d links", server, len(inc)))
	}
	return inc[0]
}

// EqualCostPaths returns only the minimum-length prefix of the k paths
// between two ingress switches — the path set ECMP spreads over. When
// every stored path is minimum length the true equal-cost set may extend
// past the table's k (Yen stopped, not the topology), silently biasing an
// ECMP baseline toward the first k paths; that truncation is surfaced via
// the routing_ecmp_truncated_total counter.
func (tb *Table) EqualCostPaths(src, dst int) []graph.Path {
	paths := tb.SwitchPaths(src, dst)
	if len(paths) == 0 {
		return nil
	}
	min := paths[0].Len()
	i := 0
	for i < len(paths) && paths[i].Len() == min {
		i++
	}
	if i == len(paths) && len(paths) >= tb.K {
		telemetry.C("routing_ecmp_truncated_total").Inc()
	}
	return paths[:i]
}

// ECMPServerPath picks the single path a TCP flow takes under ECMP: the
// flow's header hash selects pseudo-randomly among the equal-cost shortest
// switch paths (§5.2: "the next hop at each switch is determined
// pseudo-randomly by header field hashing, so each TCP flow traverses only
// one of the equal cost shortest paths").
func (tb *Table) ECMPServerPath(srcServer, dstServer int, flowHash uint64) (graph.Path, bool) {
	t := tb.topo
	sSw, dSw := t.AttachedSwitch(srcServer), t.AttachedSwitch(dstServer)
	if sSw == dSw {
		ps := tb.ServerPaths(srcServer, dstServer)
		return ps[0], true
	}
	eq := tb.EqualCostPaths(sSw, dSw)
	if len(eq) == 0 {
		return graph.Path{}, false
	}
	p := eq[int(flowHash%uint64(len(eq)))]
	sUp, dUp := serverUplink(t, srcServer), serverUplink(t, dstServer)
	nodes := append(append(append([]int(nil), srcServer), p.Nodes...), dstServer)
	links := append(append(append([]int(nil), sUp), p.Links...), dUp)
	return graph.Path{Nodes: nodes, Links: links}, true
}

// FlowHash is the deterministic header hash used for ECMP path selection
// (FNV-1a over the 4-tuple surrogate src/dst/salt).
func FlowHash(src, dst, salt int) uint64 {
	h := uint64(1469598103934665603)
	for _, v := range [3]int{src, dst, salt} {
		for i := 0; i < 8; i++ {
			h ^= uint64(v>>(8*i)) & 0xff
			h *= 1099511628211
		}
	}
	return h
}

// AveragePathLength returns the mean hop count of the first (shortest) path
// over all ingress pairs in the table.
func (tb *Table) AveragePathLength() float64 {
	var total, count int
	//flatvet:ordered integer sum is order-independent
	for _, paths := range tb.Paths {
		if len(paths) > 0 {
			total += paths[0].Len()
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// StateCount reports per-switch network state (forwarding rule) statistics
// for §4.2's three deployment strategies.
type StateCount struct {
	// PerFlowAvg is the average per-switch rule count when every
	// server-pair path installs per-hop rules: n^2 * k * L / N.
	PerFlowAvg float64
	// PrefixAvg is the average per-switch rule count with ingress/egress
	// prefix aggregation: S^2 * k * L / N.
	PrefixAvg float64
	// PrefixMaxPerSwitch is the maximum rules on any single switch under
	// prefix aggregation, counted exactly from the table.
	PrefixMaxPerSwitch int
	// SourceRoutedIngress is the per-ingress-switch rule count under
	// source routing: S * k.
	SourceRoutedIngress int
	// SourceRoutedTransit is the per-transit-switch rule count under
	// source routing: D * C (diameter x port count).
	SourceRoutedTransit int
}

// PrefixRulesPerSwitch counts, per switch, the forwarding rules installed
// under ingress/egress prefix aggregation: one rule per (ingress, egress,
// path) triple on every switch the path traverses — the accounting the
// testbed's OpenFlow 1.0 prefix-matching implementation uses (§5.3).
func (tb *Table) PrefixRulesPerSwitch() map[int]int {
	perSwitch := make(map[int]int)
	//flatvet:ordered integer increments into distinct keys; order-independent
	for _, paths := range tb.Paths {
		for _, p := range paths {
			for _, n := range p.Nodes {
				perSwitch[n]++
			}
		}
	}
	return perSwitch
}

// TotalPrefixRules sums PrefixRulesPerSwitch over all switches.
func (tb *Table) TotalPrefixRules() int {
	total := 0
	//flatvet:ordered integer sum is order-independent
	for _, c := range tb.PrefixRulesPerSwitch() {
		total += c
	}
	return total
}

// CountStates computes the state statistics for the table's topology.
// portCount is the switch port count C used for the transit rule bound.
func (tb *Table) CountStates(portCount int) StateCount {
	t := tb.topo
	nServers := len(t.Servers())
	nSwitches := len(t.Switches())
	S := len(tb.Ingress)

	perSwitch := tb.PrefixRulesPerSwitch()
	var totalHops int
	var totalPaths int
	//flatvet:ordered integer sum is order-independent
	for _, paths := range tb.Paths {
		for _, p := range paths {
			totalHops += len(p.Nodes)
			totalPaths++
		}
	}
	maxRules := 0
	//flatvet:ordered integer max over values is order-independent
	for _, c := range perSwitch {
		if c > maxRules {
			maxRules = c
		}
	}
	avgLen := 0.0
	if totalPaths > 0 {
		avgLen = float64(totalHops) / float64(totalPaths)
	}
	diam := t.G.Diameter(tb.Ingress)
	return StateCount{
		PerFlowAvg:          float64(nServers) * float64(nServers) * float64(tb.K) * avgLen / float64(nSwitches),
		PrefixAvg:           float64(S) * float64(S) * float64(tb.K) * avgLen / float64(nSwitches),
		PrefixMaxPerSwitch:  maxRules,
		SourceRoutedIngress: S * tb.K,
		SourceRoutedTransit: diam * portCount,
	}
}

// DirectedLinkIDs converts a path into directed capacity slot indices for
// full-duplex links: slot 2*link+0 is the A->B direction, 2*link+1 is
// B->A. Rate allocators index capacities with these slots so the two
// directions of a 10 Gbps link each carry 10 Gbps, as on real hardware.
func DirectedLinkIDs(g *graph.Graph, p graph.Path) []int {
	out := make([]int, len(p.Links))
	for i, id := range p.Links {
		l := g.Link(id)
		dir := 0
		if p.Nodes[i] != l.A {
			dir = 1
		}
		out[i] = 2*id + dir
	}
	return out
}

// DirectedCaps expands per-link capacities into the directed slot array
// DirectedLinkIDs indexes.
func DirectedCaps(g *graph.Graph) []float64 {
	links := g.Links()
	caps := make([]float64, 2*len(links))
	for i, l := range links {
		caps[2*i] = l.Capacity
		caps[2*i+1] = l.Capacity
	}
	return caps
}

// WithK returns a view of the table truncated to the first k paths per
// pair (paths are ordered shortest-first, so the view equals a table built
// with the smaller k). The view shares storage with the original.
func (tb *Table) WithK(k int) *Table {
	if k >= tb.K {
		return tb
	}
	paths := make(map[graph.PairKey][]graph.Path, len(tb.Paths))
	//flatvet:ordered per-key rebuild into a fresh map; keys do not interact
	for pk, ps := range tb.Paths {
		if len(ps) > k {
			ps = ps[:k]
		}
		paths[pk] = ps
	}
	return &Table{K: k, Ingress: tb.Ingress, Paths: paths, topo: tb.topo}
}
