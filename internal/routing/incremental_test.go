package routing

import (
	"math/rand"
	"reflect"
	"testing"

	"flattree/internal/parallel"
	"flattree/internal/topo"
)

// pruneBanned rebuilds the topology without the banned links (preserving
// node IDs and relative link order, servers re-attached last) and returns
// the pruned-link-ID -> original-link-ID map — the from-scratch reference
// the incremental table must match after every event.
func pruneBanned(t *topo.Topology, banned map[int]bool) (*topo.Topology, []int) {
	out := topo.NewTopology(t.Name + "-pruned")
	out.SetNumPods(t.NumPods())
	for _, n := range t.Nodes {
		id := out.AddNode(n.Kind, n.Pod)
		out.Nodes[id].LocalIndex = n.LocalIndex
	}
	var linkMap []int
	for id, l := range t.G.Links() {
		if t.Nodes[l.A].Kind == topo.Server || t.Nodes[l.B].Kind == topo.Server {
			continue
		}
		if banned[id] {
			continue
		}
		out.AddLink(l.A, l.B)
		linkMap = append(linkMap, id)
	}
	for _, s := range t.Servers() {
		out.AttachServer(s, t.AttachedSwitch(s))
		linkMap = append(linkMap, t.G.Incident(s)[0])
	}
	return out, linkMap
}

// requireTableEqualsRebuild asserts the incremental view is identical —
// same pairs, same paths, same order — to BuildKShortest on the pruned
// topology, with pruned link IDs translated back through linkMap.
func requireTableEqualsRebuild(t *testing.T, step int, it *IncrementalTable, tp *topo.Topology, banned map[int]bool) {
	t.Helper()
	pruned, linkMap := pruneBanned(tp, banned)
	ref := BuildKShortest(pruned, it.base.K)
	view := it.View()
	if len(ref.Paths) != len(view.Paths) {
		t.Fatalf("step %d: %d pairs incrementally, %d from scratch", step, len(view.Paths), len(ref.Paths))
	}
	for pk, refPaths := range ref.Paths {
		got := view.Paths[pk]
		if len(got) != len(refPaths) {
			t.Fatalf("step %d pair %v: %d paths incrementally, %d from scratch", step, pk, len(got), len(refPaths))
		}
		for i := range refPaths {
			if !reflect.DeepEqual(got[i].Nodes, refPaths[i].Nodes) {
				t.Fatalf("step %d pair %v path %d nodes = %v, from scratch %v", step, pk, i, got[i].Nodes, refPaths[i].Nodes)
			}
			for j, id := range refPaths[i].Links {
				if got[i].Links[j] != linkMap[id] {
					t.Fatalf("step %d pair %v path %d link %d = %d, from scratch %d", step, pk, i, j, got[i].Links[j], linkMap[id])
				}
			}
		}
	}
	if want, got := ref.PrefixRulesPerSwitch(), it.RulesPerSwitch(); !reflect.DeepEqual(want, got) {
		t.Fatalf("step %d: incremental rule counts %v, from scratch %v", step, got, want)
	}
}

// switchLinks returns the IDs of switch-switch links (server uplinks
// never fail).
func switchLinks(tp *topo.Topology) []int {
	var out []int
	for id, l := range tp.G.Links() {
		if tp.Nodes[l.A].Kind == topo.Server || tp.Nodes[l.B].Kind == topo.Server {
			continue
		}
		out = append(out, id)
	}
	return out
}

// driveTrace applies a seeded random fail/repair sequence of n events and
// checks the differential property after every one. Partitions are
// allowed and exercised.
func driveTrace(t *testing.T, tp *topo.Topology, k, n int, seed int64) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	it := NewIncremental(BuildKShortest(tp, k))
	links := switchLinks(tp)
	banned := map[int]bool{}
	var failed []int
	for step := 0; step < n; step++ {
		repair := len(failed) > 0 && (rng.Intn(3) == 0 || len(failed) == len(links))
		prevRules := it.RulesPerSwitch()
		var delta RuleDelta
		if repair {
			i := rng.Intn(len(failed))
			l := failed[i]
			failed = append(failed[:i], failed[i+1:]...)
			delete(banned, l)
			delta = it.Repair(l)
		} else {
			var alive []int
			for _, l := range links {
				if !banned[l] {
					alive = append(alive, l)
				}
			}
			l := alive[rng.Intn(len(alive))]
			banned[l] = true
			failed = append(failed, l)
			delta = it.Fail(l)
		}
		// The delta must transform the previous rule state into the new
		// one exactly.
		for sw, add := range delta.Adds {
			prevRules[sw] += add
		}
		for sw, del := range delta.Dels {
			prevRules[sw] -= del
			if prevRules[sw] == 0 {
				delete(prevRules, sw)
			}
		}
		if got := it.RulesPerSwitch(); !reflect.DeepEqual(prevRules, got) {
			t.Fatalf("step %d: delta does not reconcile rule states: applied %v, actual %v", step, prevRules, got)
		}
		requireTableEqualsRebuild(t, step, it, tp, banned)
	}
	if len(failed) == 0 && it.DegradedPairs() != 0 {
		t.Fatalf("no links masked but %d pairs degraded", it.DegradedPairs())
	}
}

// TestIncrementalDifferentialClos runs a 60-event random trace on the
// Clos-mode cache topology, checking incremental-vs-rebuild equality
// after every event.
func TestIncrementalDifferentialClos(t *testing.T) {
	tp := cacheTestTopo(t)
	driveTrace(t, tp, 4, 60, 17)
}

// parallelLinkTopo is a small fabric with parallel switch-switch links —
// the shape flat-tree converter rewiring creates — so masking one of a
// bundle leaves its twin carrying traffic.
func parallelLinkTopo() *topo.Topology {
	tp := topo.NewTopology("parallel-links")
	e0 := tp.AddNode(topo.Edge, 0)
	e1 := tp.AddNode(topo.Edge, 0)
	e2 := tp.AddNode(topo.Edge, 1)
	a0 := tp.AddNode(topo.Agg, 0)
	a1 := tp.AddNode(topo.Agg, 1)
	for _, pair := range [][2]int{{e0, a0}, {e0, a0}, {e1, a0}, {e1, a1}, {e2, a1}, {e2, a1}, {a0, a1}, {e0, a1}, {e2, a0}} {
		tp.AddLink(pair[0], pair[1])
	}
	for i := 0; i < 6; i++ {
		s := tp.AddNode(topo.Server, i/2)
		tp.AttachServer(s, []int{e0, e1, e2}[i/2])
	}
	return tp
}

// TestIncrementalDifferentialParallelLinks drives a long trace over a
// fabric with parallel links, including full partitions of an edge
// switch.
func TestIncrementalDifferentialParallelLinks(t *testing.T) {
	tp := parallelLinkTopo()
	if err := tp.Validate(); err != nil {
		t.Fatal(err)
	}
	driveTrace(t, tp, 3, 250, 5)
}

// TestIncrementalZeroAffectedFailure pins the §4.3 no-op case: masking a
// link whose switch pair no installed path traverses yields an empty
// delta and leaves the table untouched.
func TestIncrementalZeroAffectedFailure(t *testing.T) {
	tp := parallelLinkTopo()
	it := NewIncremental(BuildKShortest(tp, 1))
	// With k=1 each pair installs one shortest path; detour-only bundles
	// like a0-a1 carry no installed path.
	var unused int = -1
	for _, l := range switchLinks(tp) {
		if len(it.curUse[it.adjOf(l)]) == 0 {
			unused = l
			break
		}
	}
	if unused < 0 {
		t.Fatal("no bundle-unused link at k=1")
	}
	delta := it.Fail(unused)
	if !delta.Empty() {
		t.Fatalf("masking unused link %d produced delta %+v", unused, delta)
	}
	if it.DegradedPairs() != 0 {
		t.Fatalf("masking unused link degraded %d pairs", it.DegradedPairs())
	}
	requireTableEqualsRebuild(t, 0, it, tp, map[int]bool{unused: true})
	if d := it.Repair(unused); !d.Empty() {
		t.Fatalf("repairing unused link produced delta %+v", d)
	}
}

// TestIncrementalWorkerInvariance replays the same trace at one and at
// eight workers: every delta and the final table must be identical.
func TestIncrementalWorkerInvariance(t *testing.T) {
	tp := cacheTestTopo(t)
	run := func(workers int) ([]RuleDelta, map[int]int) {
		parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(0)
		rng := rand.New(rand.NewSource(23))
		it := NewIncremental(BuildKShortest(tp, 4))
		links := switchLinks(tp)
		banned := map[int]bool{}
		var failed, deltas = []int{}, []RuleDelta{}
		for step := 0; step < 40; step++ {
			if len(failed) > 0 && rng.Intn(3) == 0 {
				i := rng.Intn(len(failed))
				l := failed[i]
				failed = append(failed[:i], failed[i+1:]...)
				delete(banned, l)
				deltas = append(deltas, it.Repair(l))
				continue
			}
			var alive []int
			for _, l := range links {
				if !banned[l] {
					alive = append(alive, l)
				}
			}
			l := alive[rng.Intn(len(alive))]
			banned[l] = true
			failed = append(failed, l)
			deltas = append(deltas, it.Fail(l))
		}
		return deltas, it.RulesPerSwitch()
	}
	d1, r1 := run(1)
	d8, r8 := run(8)
	if !reflect.DeepEqual(d1, d8) {
		t.Fatal("deltas differ between -workers=1 and -workers=8")
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("rule state differs between -workers=1 and -workers=8")
	}
}

// TestIncrementalDoesNotMutateBaseline wraps a table, churns it, and
// verifies the wrapped baseline still equals a fresh build — cached
// tables must be safe to wrap.
func TestIncrementalDoesNotMutateBaseline(t *testing.T) {
	tp := cacheTestTopo(t)
	base := BuildKShortest(tp, 4)
	it := NewIncremental(base)
	links := switchLinks(tp)
	it.Fail(links[0])
	it.Fail(links[3])
	it.Repair(links[0])
	fresh := BuildKShortest(tp, 4)
	if len(base.Paths) != len(fresh.Paths) {
		t.Fatalf("baseline pair count changed: %d vs %d", len(base.Paths), len(fresh.Paths))
	}
	for pk, want := range fresh.Paths {
		if !reflect.DeepEqual(base.Paths[pk], want) {
			t.Fatalf("baseline pair %v mutated", pk)
		}
	}
}
