package routing

import (
	"testing"

	"flattree/internal/core"
	"flattree/internal/telemetry"
	"flattree/internal/topo"
)

func exampleGlobal(t *testing.T) (*core.Network, *core.Realization) {
	t.Helper()
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeGlobal)
	return nw, nw.Realize()
}

func TestBuildKShortestIngressSet(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 4)
	// Global mode example: every edge, agg, and core switch hosts servers
	// (1/1/2 each) => 20 ingress switches.
	if got := len(tb.Ingress); got != 20 {
		t.Fatalf("ingress switches = %d, want 20", got)
	}
	if got := len(tb.Paths); got != 20*19 {
		t.Fatalf("pairs = %d, want %d", len(tb.Paths), 20*19)
	}
}

func TestSwitchPathsAreValidAndOrdered(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 4)
	for pair, paths := range tb.Paths {
		if len(paths) == 0 || len(paths) > 4 {
			t.Fatalf("pair %v: %d paths", pair, len(paths))
		}
		last := 0
		for _, p := range paths {
			if !p.Valid(r.Topo.G) || !p.Loopless() {
				t.Fatalf("pair %v: invalid path %v", pair, p.Nodes)
			}
			if p.Len() < last {
				t.Fatalf("pair %v: unordered paths", pair)
			}
			last = p.Len()
		}
	}
}

func TestServerPaths(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 4)
	servers := r.Topo.Servers()
	src, dst := servers[0], servers[13]
	paths := tb.ServerPaths(src, dst)
	if len(paths) == 0 {
		t.Fatal("no server paths")
	}
	for _, p := range paths {
		if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
			t.Fatalf("endpoints wrong: %v", p.Nodes)
		}
		if !p.Valid(r.Topo.G) {
			t.Fatalf("invalid server path %v", p.Nodes)
		}
	}
}

func TestServerPathsSameSwitch(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeClos)
	r := nw.Realize()
	tb := BuildKShortest(r.Topo, 4)
	// Servers 0 and 1 share edge switch (pod 0, edge 0) in Clos mode.
	s0, s1 := r.ServerID[0][0][0], r.ServerID[0][0][1]
	paths := tb.ServerPaths(s0, s1)
	if len(paths) != 1 {
		t.Fatalf("intra-rack paths = %d, want 1", len(paths))
	}
	if paths[0].Len() != 2 {
		t.Fatalf("intra-rack path length = %d, want 2", paths[0].Len())
	}
}

func TestEqualCostPaths(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 4)
	for _, a := range tb.Ingress[:5] {
		for _, b := range tb.Ingress[:5] {
			if a == b {
				continue
			}
			eq := tb.EqualCostPaths(a, b)
			if len(eq) == 0 {
				t.Fatalf("no equal-cost paths %d->%d", a, b)
			}
			for _, p := range eq {
				if p.Len() != eq[0].Len() {
					t.Fatal("unequal lengths in equal-cost set")
				}
			}
		}
	}
}

func TestECMPDeterministicAndSinglePath(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 8)
	servers := r.Topo.Servers()
	src, dst := servers[2], servers[20]
	h := FlowHash(src, dst, 0)
	p1, ok1 := tb.ECMPServerPath(src, dst, h)
	p2, ok2 := tb.ECMPServerPath(src, dst, h)
	if !ok1 || !ok2 {
		t.Fatal("no ECMP path")
	}
	if len(p1.Nodes) != len(p2.Nodes) {
		t.Fatal("nondeterministic ECMP")
	}
	for i := range p1.Nodes {
		if p1.Nodes[i] != p2.Nodes[i] {
			t.Fatal("nondeterministic ECMP path")
		}
	}
	// Different salts should eventually pick different paths when the
	// equal-cost set has more than one member.
	diverse := false
	for salt := 0; salt < 32; salt++ {
		p, _ := tb.ECMPServerPath(src, dst, FlowHash(src, dst, salt))
		if len(p.Nodes) != len(p1.Nodes) {
			diverse = true
			break
		}
		for i := range p.Nodes {
			if p.Nodes[i] != p1.Nodes[i] {
				diverse = true
				break
			}
		}
	}
	eq := tb.EqualCostPaths(r.Topo.AttachedSwitch(src), r.Topo.AttachedSwitch(dst))
	if len(eq) > 1 && !diverse {
		t.Fatal("ECMP never diversified across 32 hashes despite multiple equal-cost paths")
	}
}

func TestAveragePathLengthSmallDiameter(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 4)
	apl := tb.AveragePathLength()
	// §4.2.2: flat-tree is a small-diameter network, paths traverse
	// fewer than 3 switches on average (i.e. < 3 switch-level hops).
	if apl <= 0 || apl >= 3 {
		t.Fatalf("switch-level APL = %v, want (0, 3)", apl)
	}
}

func TestCountStates(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 4)
	sc := tb.CountStates(48)
	if sc.SourceRoutedIngress != len(tb.Ingress)*4 {
		t.Fatalf("SourceRoutedIngress = %d, want %d", sc.SourceRoutedIngress, len(tb.Ingress)*4)
	}
	if sc.SourceRoutedTransit <= 0 || sc.SourceRoutedTransit > 6*48 {
		t.Fatalf("SourceRoutedTransit = %d out of expected range", sc.SourceRoutedTransit)
	}
	if sc.PrefixAvg >= sc.PerFlowAvg {
		t.Fatalf("prefix aggregation (%v) did not reduce states vs per-flow (%v)",
			sc.PrefixAvg, sc.PerFlowAvg)
	}
	if sc.PrefixMaxPerSwitch <= 0 {
		t.Fatal("no prefix rules counted")
	}
	// §4.2.1: aggregation reduces states by (servers per ToR)^2; here
	// servers/switch is ~1.2, so the factor is modest but must match the
	// n^2/S^2 ratio.
	wantFactor := float64(len(r.Topo.Servers())*len(r.Topo.Servers())) /
		float64(len(tb.Ingress)*len(tb.Ingress))
	gotFactor := sc.PerFlowAvg / sc.PrefixAvg
	if diff := gotFactor - wantFactor; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("reduction factor %v, want %v", gotFactor, wantFactor)
	}
}

func TestStateReductionFactorAtScale(t *testing.T) {
	// §4.2.1: 20-40 servers per ToR reduce states by 400-1600x. Verify
	// the formulas reproduce that ratio for a 32-servers-per-edge Clos.
	p, err := topo.Table2ByName("topo-1")
	if err != nil {
		t.Fatal(err)
	}
	n := float64(p.TotalServers())
	S := float64(p.Pods * p.EdgesPerPod) // ingress = edge switches in Clos mode
	factor := (n * n) / (S * S)
	if factor != 1024 {
		t.Fatalf("reduction factor = %v, want 1024 (32^2)", factor)
	}
}

func TestBuildKShortestPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("k=0 did not panic")
		}
	}()
	_, r := exampleGlobal(t)
	BuildKShortest(r.Topo, 0)
}

func TestWithKTruncates(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 8)
	view := tb.WithK(2)
	if view.K != 2 {
		t.Fatalf("view K = %d", view.K)
	}
	for pair, paths := range view.Paths {
		if len(paths) > 2 {
			t.Fatalf("pair %v has %d paths in k=2 view", pair, len(paths))
		}
		full := tb.Paths[pair]
		for i := range paths {
			if paths[i].Len() != full[i].Len() {
				t.Fatalf("view path %d differs from full table", i)
			}
		}
	}
	// WithK at or above K returns the same table.
	if tb.WithK(8) != tb || tb.WithK(20) != tb {
		t.Fatal("WithK did not return the original table")
	}
	// Views still expand server paths.
	servers := r.Topo.Servers()
	if got := view.ServerPaths(servers[0], servers[20]); len(got) == 0 || len(got) > 2 {
		t.Fatalf("view server paths = %d", len(got))
	}
}

func TestDirectedLinkIDs(t *testing.T) {
	_, r := exampleGlobal(t)
	tb := BuildKShortest(r.Topo, 2)
	servers := r.Topo.Servers()
	paths := tb.ServerPaths(servers[0], servers[20])
	for _, p := range paths {
		ids := DirectedLinkIDs(r.Topo.G, p)
		if len(ids) != len(p.Links) {
			t.Fatalf("directed ids = %d for %d links", len(ids), len(p.Links))
		}
		for i, id := range ids {
			link := r.Topo.G.Link(id / 2)
			if link.ID != p.Links[i] {
				t.Fatalf("hop %d: directed id %d maps to link %d, want %d", i, id, link.ID, p.Links[i])
			}
			// Direction bit must match traversal order.
			dir := id % 2
			if dir == 0 && link.A != p.Nodes[i] {
				t.Fatalf("hop %d: forward arc but tail is %d not %d", i, link.A, p.Nodes[i])
			}
			if dir == 1 && link.B != p.Nodes[i] {
				t.Fatalf("hop %d: reverse arc but tail is %d not %d", i, link.B, p.Nodes[i])
			}
		}
	}
	caps := DirectedCaps(r.Topo.G)
	if len(caps) != 2*r.Topo.G.NumLinks() {
		t.Fatalf("caps = %d slots", len(caps))
	}
	for _, c := range caps {
		if c != 10 {
			t.Fatalf("cap = %v, want 10", c)
		}
	}
}

func TestFlowHashStable(t *testing.T) {
	if FlowHash(1, 2, 3) != FlowHash(1, 2, 3) {
		t.Fatal("hash not deterministic")
	}
	if FlowHash(1, 2, 3) == FlowHash(1, 2, 4) {
		t.Fatal("salt ignored")
	}
	if FlowHash(1, 2, 3) == FlowHash(2, 1, 3) {
		t.Fatal("direction ignored")
	}
}

// TestEqualCostPathsTruncationSurfaced pins the ECMP truncation fix: on a
// fabric with more equal-cost shortest paths than the table's k, the full
// stored prefix is minimum length, and the truncation is surfaced via the
// routing_ecmp_truncated_total counter instead of passing silently.
func TestEqualCostPathsTruncationSurfaced(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	// Two edge switches joined through three aggs: three two-hop
	// equal-cost paths between the edges.
	tp := topo.NewTopology("ecmp-fan")
	e0 := tp.AddNode(topo.Edge, 0)
	e1 := tp.AddNode(topo.Edge, 1)
	for i := 0; i < 3; i++ {
		a := tp.AddNode(topo.Agg, i%2)
		tp.AddLink(e0, a)
		tp.AddLink(e1, a)
	}
	for _, sw := range []int{e0, e1} {
		s := tp.AddNode(topo.Server, tp.Nodes[sw].Pod)
		tp.AttachServer(s, sw)
	}

	// k=2 holds only two of the three equal-cost paths: the whole stored
	// set is minimum length, so the truncation must be surfaced.
	small := BuildKShortest(tp, 2)
	ctr := telemetry.C("routing_ecmp_truncated_total")
	before := ctr.Value()
	eq := small.EqualCostPaths(e0, e1)
	if len(eq) != 2 {
		t.Fatalf("k=2 equal-cost set has %d paths, want 2", len(eq))
	}
	if ctr.Value() != before+1 {
		t.Fatal("truncated equal-cost set did not increment routing_ecmp_truncated_total")
	}
	// k=4 exceeds the three available paths, so the set is provably
	// complete and the counter stays put.
	big := BuildKShortest(tp, 4)
	before = ctr.Value()
	eq = big.EqualCostPaths(e0, e1)
	if len(eq) != 3 {
		t.Fatalf("k=4 equal-cost set has %d paths, want 3", len(eq))
	}
	if ctr.Value() != before {
		t.Fatal("complete equal-cost set incremented routing_ecmp_truncated_total")
	}
}
