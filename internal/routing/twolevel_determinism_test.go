package routing

import (
	"reflect"
	"testing"
)

// TestBuildTwoLevelDeterministic pins the claim in the
// //flatvet:ordered waiver inside BuildTwoLevel: the set-if-absent loop
// over downPort ranges a map, but the winning link for every edge is
// fixed by the deterministic Incident order, so repeated builds on the
// same realization must produce byte-identical tables under any map
// iteration order.
func TestBuildTwoLevelDeterministic(t *testing.T) {
	r := closRealization(t)
	first, err := BuildTwoLevel(r.Topo)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		tl, err := BuildTwoLevel(r.Topo)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(tl.downPort, first.downPort) {
			t.Fatalf("build %d: downPort differs between identical builds", i)
		}
		if !reflect.DeepEqual(tl.upLinks, first.upLinks) {
			t.Fatalf("build %d: upLinks differs between identical builds", i)
		}
	}
}
