package routing

import (
	"fmt"
	"sort"
	"time"

	"flattree/internal/graph"
	"flattree/internal/parallel"
	"flattree/internal/recorder"
	"flattree/internal/telemetry"
	"flattree/internal/topo"
)

// Incremental route repair (§4.3): the controller touches only the
// *changed* rules on a link event, so the repair cost must be the cost of
// the affected pairs, not of a whole-table rebuild. IncrementalTable
// wraps a healthy baseline Table and tracks, per masked link, exactly the
// ordered ingress pairs whose installed paths die with it; only those are
// re-Yen'd (with the masked links banned, fanned out on the shared worker
// pool). Everything else keeps its installed paths — which is provably
// the from-scratch answer, because banning links a BFS/Yen result never
// used cannot change that result (bans only remove discovery events, so
// surviving discoveries keep their relative order).
//
// Granularity matters: the tracker indexes *bundles* — the set of
// parallel links between one switch pair — not individual links. Yen's
// spur step bans the exact link a previous path used, so a surviving
// parallel twin lets the spur BFS rediscover the same node sequence
// (discarded as seen) instead of deviating; masking that twin unblocks
// the deviation and changes the from-scratch result even though no
// installed path used the twin. A pair may keep its paths only when they
// avoid the failed link's whole bundle — the differential property test
// over parallel-link fabrics pins this.
//
// The same argument drives repair: a degraded pair whose baseline paths
// avoid every masked bundle gets the baseline restored verbatim (no
// Yen); the pairs still missing baseline bundles are recomputed, because
// a restored link can offer a better detour even to pairs whose baseline
// never used it. The result is byte-identical to BuildKShortest on the
// pruned topology after every event.

// RuleDelta is the per-switch forwarding-rule diff of one link event
// under ingress/egress prefix aggregation: how many rules each switch
// must delete and add to move from the previous table to the new one.
// Rules are content-addressed by (ingress, egress, path), so a pair's
// surviving paths contribute nothing — only the changed rules appear,
// matching §4.3's "only the changed rules are touched".
type RuleDelta struct {
	// Adds and Dels map switch node ID to the rules installed/removed
	// there. Switches with zero churn are absent.
	Adds, Dels map[int]int
}

func newRuleDelta() RuleDelta {
	return RuleDelta{Adds: map[int]int{}, Dels: map[int]int{}}
}

// Empty reports whether the event changed no rules.
func (d RuleDelta) Empty() bool { return len(d.Adds) == 0 && len(d.Dels) == 0 }

// TotalAdds sums the added rules over all switches (sequential-controller
// cost driver).
func (d RuleDelta) TotalAdds() int { return sumValues(d.Adds) }

// TotalDels sums the deleted rules over all switches.
func (d RuleDelta) TotalDels() int { return sumValues(d.Dels) }

// MaxAdds returns the added rules on the busiest switch (parallel-
// controller cost driver, control.DelayModel.Parallel).
func (d RuleDelta) MaxAdds() int { return maxValue(d.Adds) }

// MaxDels returns the deleted rules on the busiest switch.
func (d RuleDelta) MaxDels() int { return maxValue(d.Dels) }

func sumValues(m map[int]int) int {
	total := 0
	//flatvet:ordered integer sum is order-independent
	for _, v := range m {
		total += v
	}
	return total
}

func maxValue(m map[int]int) int {
	max := 0
	//flatvet:ordered integer max over values is order-independent
	for _, v := range m {
		if v > max {
			max = v
		}
	}
	return max
}

// IncrementalTable maintains the installed route table across link
// failures and repairs without whole-table rebuilds. It is built from a
// healthy baseline Table (which it never mutates — cached tables are
// safe to wrap) and mutated by Fail/Repair, each returning the exact
// per-switch rule delta of the event. Not safe for concurrent mutation;
// the churn engine drives it event by event.
type IncrementalTable struct {
	base *Table
	// banned is the set of currently masked link IDs on the original
	// graph.
	banned map[int]bool
	// cur holds the installed paths per ordered ingress pair; entries of
	// clean pairs alias the baseline's slices.
	cur map[graph.PairKey][]graph.Path
	// curUse indexes the installed paths at bundle granularity: normalized
	// switch pair -> pairs whose current paths traverse any link of that
	// bundle — the dirty-pair tracker.
	curUse map[adjKey]map[graph.PairKey]struct{}
	// baseUse indexes the baseline: bundle -> pairs (sorted) whose healthy
	// paths traverse it; immutable after construction.
	baseUse map[adjKey][]graph.PairKey
	// baseBroken counts, per pair, how many banned links have a bundle the
	// pair's baseline paths traverse (one count per banned link, so two
	// masked twins of one bundle count twice); zero (absent) means the
	// pair is clean and its installed paths are the baseline's.
	baseBroken map[graph.PairKey]int
	// rules tracks the installed per-switch rule counts, updated by each
	// event's delta.
	rules map[int]int
	// rec, when set, receives one flight-recorder event per switch the
	// event's delta touches, stamped with simTime (the caller's event
	// clock — this table has no clock of its own).
	rec     *recorder.Track
	simTime float64
}

// adjKey is a normalized (low, high) switch pair identifying one bundle
// of parallel links.
type adjKey [2]int

// adjOf returns the bundle key of a link on the original graph.
func (it *IncrementalTable) adjOf(link int) adjKey {
	l := it.base.topo.G.Link(link)
	if l.A <= l.B {
		return adjKey{l.A, l.B}
	}
	return adjKey{l.B, l.A}
}

// NewIncremental wraps a healthy baseline table for incremental repair.
func NewIncremental(base *Table) *IncrementalTable {
	it := &IncrementalTable{
		base:       base,
		banned:     map[int]bool{},
		cur:        make(map[graph.PairKey][]graph.Path, len(base.Paths)),
		curUse:     map[adjKey]map[graph.PairKey]struct{}{},
		baseUse:    map[adjKey][]graph.PairKey{},
		baseBroken: map[graph.PairKey]int{},
		rules:      base.PrefixRulesPerSwitch(),
	}
	for _, pk := range sortedPairKeys(base.Paths) {
		paths := base.Paths[pk]
		it.cur[pk] = paths
		for _, a := range it.pairAdjSet(paths) {
			it.baseUse[a] = append(it.baseUse[a], pk)
			it.addCurUse(a, pk)
		}
	}
	return it
}

// SetRecorder attaches a flight-recorder track; each Fail/Repair then
// emits its per-switch rule delta as sim-time events (see SetSimTime).
// A nil track disables emission.
func (it *IncrementalTable) SetRecorder(tr *recorder.Track) { it.rec = tr }

// SetSimTime positions the event clock used to stamp the next
// Fail/Repair's recorder events. The table is driven by callers that
// own the simulated clock (the churn engine), so the time arrives from
// outside rather than from any wall clock.
func (it *IncrementalTable) SetSimTime(t float64) { it.simTime = t }

// View returns the installed table as a *Table sharing the incremental
// state: it reflects every Fail/Repair applied so far and remains live
// through future events. Callers needing a frozen table must copy it.
func (it *IncrementalTable) View() *Table {
	return &Table{K: it.base.K, Ingress: it.base.Ingress, Paths: it.cur, topo: it.base.topo}
}

// RulesPerSwitch returns the installed per-switch rule counts, maintained
// incrementally from the event deltas; always equal to
// View().PrefixRulesPerSwitch().
func (it *IncrementalTable) RulesPerSwitch() map[int]int {
	out := make(map[int]int, len(it.rules))
	//flatvet:ordered copy into a fresh map; keys do not interact
	for sw, n := range it.rules {
		if n != 0 {
			out[sw] = n
		}
	}
	return out
}

// DegradedPairs returns how many ordered ingress pairs currently run on
// non-baseline paths.
func (it *IncrementalTable) DegradedPairs() int { return len(it.baseBroken) }

// Banned reports whether the link is currently masked.
func (it *IncrementalTable) Banned(link int) bool { return it.banned[link] }

// Fail masks a link and repairs exactly the pairs whose installed paths
// traverse its bundle, returning the per-switch rule delta. Masking a
// link whose bundle no installed path uses returns an empty delta: the
// controller has nothing to touch. Panics if the link is already masked.
func (it *IncrementalTable) Fail(link int) RuleDelta {
	if it.banned[link] {
		panic(fmt.Sprintf("routing: Fail(%d): link already masked", link))
	}
	start := time.Now()
	it.banned[link] = true
	adj := it.adjOf(link)
	for _, pk := range it.baseUse[adj] {
		it.baseBroken[pk]++
	}
	dirty := sortedPairSet(it.curUse[adj])
	delta := newRuleDelta()
	it.recompute(dirty, delta)
	it.emitDelta(delta)
	it.finishEvent(len(dirty), start)
	return delta
}

// FailBetween masks one link of the (a, b) adjacency following the
// churn-engine masking rule — the lowest-ID surviving link of the bundle
// fails first — and returns the masked link ID with the event's per-switch
// rule delta. Unlike Fail it validates its input (flatd's /events/link
// feeds it operator requests): the endpoints must be switches joined by at
// least one surviving link. As long as every event on the adjacency goes
// through FailBetween/RepairBetween the masked set is always a prefix of
// the bundle's ascending link IDs, exactly the sequence churn.Engine
// compiles, so deltas here are byte-identical to the offline path.
func (it *IncrementalTable) FailBetween(a, b int) (int, RuleDelta, error) {
	ids, err := it.bundleBetween(a, b)
	if err != nil {
		return 0, RuleDelta{}, err
	}
	for _, id := range ids {
		if !it.banned[id] {
			return id, it.Fail(id), nil
		}
	}
	return 0, RuleDelta{}, fmt.Errorf("routing: no surviving link between %d and %d", a, b)
}

// RepairBetween unmasks the most recently masked link of the (a, b)
// adjacency (the masking rule's inverse: highest masked ID first) and
// returns the restored link ID with the event's per-switch rule delta.
func (it *IncrementalTable) RepairBetween(a, b int) (int, RuleDelta, error) {
	ids, err := it.bundleBetween(a, b)
	if err != nil {
		return 0, RuleDelta{}, err
	}
	for i := len(ids) - 1; i >= 0; i-- {
		if it.banned[ids[i]] {
			return ids[i], it.Repair(ids[i]), nil
		}
	}
	return 0, RuleDelta{}, fmt.Errorf("routing: no masked link between %d and %d", a, b)
}

// bundleBetween validates an adjacency request and returns its link IDs
// ascending. Server uplinks are rejected: a dead NIC removes the server,
// which is not a network property (matching churn.GenerateTrace).
func (it *IncrementalTable) bundleBetween(a, b int) ([]int, error) {
	t := it.base.topo
	for _, nd := range [2]int{a, b} {
		if nd < 0 || nd >= len(t.Nodes) {
			return nil, fmt.Errorf("routing: node %d out of range [0, %d)", nd, len(t.Nodes))
		}
		if t.Nodes[nd].Kind == topo.Server {
			return nil, fmt.Errorf("routing: node %d is a server; server uplinks do not fail", nd)
		}
	}
	var ids []int
	for _, id := range t.G.Incident(a) {
		if t.G.Link(id).Other(a) == b {
			ids = append(ids, id)
		}
	}
	if len(ids) == 0 {
		return nil, fmt.Errorf("routing: no link between %d and %d", a, b)
	}
	sort.Ints(ids)
	return ids, nil
}

// Repair unmasks a link: pairs whose baseline paths avoid every still-
// masked bundle get the baseline restored outright (banning bundles a
// Yen result never traverses cannot change it, so no recomputation is
// needed), while pairs still missing baseline bundles are re-Yen'd — the
// restored link can offer them a better detour. Returns the per-switch
// rule delta. Panics if the link is not masked.
func (it *IncrementalTable) Repair(link int) RuleDelta {
	if !it.banned[link] {
		panic(fmt.Sprintf("routing: Repair(%d): link not masked", link))
	}
	start := time.Now()
	delete(it.banned, link)
	var restored []graph.PairKey
	for _, pk := range it.baseUse[it.adjOf(link)] {
		it.baseBroken[pk]--
		if it.baseBroken[pk] == 0 {
			delete(it.baseBroken, pk)
			restored = append(restored, pk)
		}
	}
	delta := newRuleDelta()
	for _, pk := range restored {
		it.install(pk, it.base.Paths[pk], delta)
	}
	degraded := sortedCountKeys(it.baseBroken)
	it.recompute(degraded, delta)
	it.emitDelta(delta)
	it.finishEvent(len(restored)+len(degraded), start)
	return delta
}

// emitDelta records one RuleDelta event per touched switch (ascending
// switch ID, so the track is deterministic) at the caller-set sim time.
func (it *IncrementalTable) emitDelta(delta RuleDelta) {
	if it.rec == nil || delta.Empty() {
		return
	}
	seen := make(map[int]bool, len(delta.Adds)+len(delta.Dels))
	switches := make([]int, 0, len(delta.Adds)+len(delta.Dels))
	//flatvet:ordered keys are collected then sorted
	for sw := range delta.Adds {
		if !seen[sw] {
			seen[sw] = true
			switches = append(switches, sw)
		}
	}
	//flatvet:ordered keys are collected then sorted
	for sw := range delta.Dels {
		if !seen[sw] {
			seen[sw] = true
			switches = append(switches, sw)
		}
	}
	sort.Ints(switches)
	for _, sw := range switches {
		it.rec.Emit(recorder.Event{T: it.simTime, Kind: recorder.RuleDelta, ID: sw,
			A: int64(delta.Adds[sw]), B: int64(delta.Dels[sw])})
	}
}

// recompute re-runs banned-link Yen for the pairs on the shared worker
// pool and installs the results. Pair computations are independent and
// collected by index, so the table is identical for any worker count.
func (it *IncrementalTable) recompute(pairs []graph.PairKey, delta RuleDelta) {
	if len(pairs) == 0 {
		return
	}
	g := it.base.topo.G
	k := it.base.K
	results, _ := parallel.Map(parallel.Default(), len(pairs), func(i int) ([]graph.Path, error) {
		return g.KShortestPathsBanned(pairs[i].Src, pairs[i].Dst, k, it.banned), nil
	})
	for i, pk := range pairs {
		it.install(pk, results[i], delta)
	}
}

// install replaces a pair's installed paths, folding the content-level
// rule diff into delta and keeping the use index and rule counts current.
func (it *IncrementalTable) install(pk graph.PairKey, paths []graph.Path, delta RuleDelta) {
	old := it.cur[pk]
	if pathSetsEqual(old, paths) {
		return
	}
	oldKeys := make(map[string]bool, len(old))
	for _, p := range old {
		oldKeys[nodesKey(p.Nodes)] = true
	}
	newKeys := make(map[string]bool, len(paths))
	for _, p := range paths {
		newKeys[nodesKey(p.Nodes)] = true
	}
	for _, p := range old {
		if !newKeys[nodesKey(p.Nodes)] {
			for _, n := range p.Nodes {
				delta.Dels[n]++
				it.rules[n]--
			}
		}
	}
	for _, p := range paths {
		if !oldKeys[nodesKey(p.Nodes)] {
			for _, n := range p.Nodes {
				delta.Adds[n]++
				it.rules[n]++
			}
		}
	}
	for _, a := range it.pairAdjSet(old) {
		delete(it.curUse[a], pk)
		if len(it.curUse[a]) == 0 {
			delete(it.curUse, a)
		}
	}
	it.cur[pk] = paths
	for _, a := range it.pairAdjSet(paths) {
		it.addCurUse(a, pk)
	}
}

func (it *IncrementalTable) addCurUse(a adjKey, pk graph.PairKey) {
	s, ok := it.curUse[a]
	if !ok {
		s = map[graph.PairKey]struct{}{}
		it.curUse[a] = s
	}
	s[pk] = struct{}{}
}

func (it *IncrementalTable) finishEvent(dirty int, start time.Time) {
	telemetry.C("routing_incremental_repairs_total").Inc()
	telemetry.C("routing_dirty_pairs_total").Add(int64(dirty))
	telemetry.H("routing_incremental_repair_seconds").Observe(time.Since(start).Seconds())
}

// pairAdjSet returns the distinct bundles a pair's paths traverse, in
// ascending (low, high) order.
func (it *IncrementalTable) pairAdjSet(paths []graph.Path) []adjKey {
	seen := map[adjKey]bool{}
	var out []adjKey
	for _, p := range paths {
		for _, l := range p.Links {
			a := it.adjOf(l)
			if !seen[a] {
				seen[a] = true
				out = append(out, a)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i][0] != out[j][0] {
			return out[i][0] < out[j][0]
		}
		return out[i][1] < out[j][1]
	})
	return out
}

// pathSetsEqual compares two path lists exactly (nodes and links, in
// order).
func pathSetsEqual(a, b []graph.Path) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i].Nodes) != len(b[i].Nodes) || len(a[i].Links) != len(b[i].Links) {
			return false
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				return false
			}
		}
		for j := range a[i].Links {
			if a[i].Links[j] != b[i].Links[j] {
				return false
			}
		}
	}
	return true
}

// nodesKey encodes a node sequence as a comparable string (rule content
// identity: the path a rule forwards along).
func nodesKey(nodes []int) string {
	b := make([]byte, 0, len(nodes)*4)
	for _, n := range nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

func sortedPairKeys(m map[graph.PairKey][]graph.Path) []graph.PairKey {
	keys := make([]graph.PairKey, 0, len(m))
	//flatvet:ordered keys are collected then sorted
	for pk := range m {
		keys = append(keys, pk)
	}
	sortPairKeys(keys)
	return keys
}

func sortedPairSet(m map[graph.PairKey]struct{}) []graph.PairKey {
	keys := make([]graph.PairKey, 0, len(m))
	//flatvet:ordered keys are collected then sorted
	for pk := range m {
		keys = append(keys, pk)
	}
	sortPairKeys(keys)
	return keys
}

func sortedCountKeys(m map[graph.PairKey]int) []graph.PairKey {
	keys := make([]graph.PairKey, 0, len(m))
	//flatvet:ordered keys are collected then sorted
	for pk := range m {
		keys = append(keys, pk)
	}
	sortPairKeys(keys)
	return keys
}

func sortPairKeys(keys []graph.PairKey) {
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Src != keys[j].Src {
			return keys[i].Src < keys[j].Src
		}
		return keys[i].Dst < keys[j].Dst
	})
}
