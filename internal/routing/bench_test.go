package routing

import (
	"testing"

	"flattree/internal/core"
	"flattree/internal/topo"
)

// Benchmarks for per-event route repair: the incremental table against
// the whole-table rebuild the churn engine used before. Both process one
// failure plus one repair of the same link per iteration on the churn
// experiment topology (mini-1, k=8), so ns/op is directly comparable —
// the BENCH_pr5.json CI artifact records the pair.

func benchChurnTopo(b *testing.B) *topo.Topology {
	b.Helper()
	p := topo.ClosParams{
		Name: "mini-1", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4,
		ServersPerEdge: 8, EdgeUplinks: 4, AggUplinks: 4, Cores: 16,
	}
	nw, err := core.New(p, core.Options{N: 1, M: 1, Pattern: core.Pattern1})
	if err != nil {
		b.Fatal(err)
	}
	nw.SetMode(core.ModeClos)
	return nw.Realize().Topo
}

func BenchmarkRepairIncremental(b *testing.B) {
	tp := benchChurnTopo(b)
	base := BuildKShortest(tp, 8)
	links := switchLinks(tp)
	it := NewIncremental(base)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := links[i%len(links)]
		it.Fail(l)
		it.Repair(l)
	}
}

func BenchmarkRepairFullRebuild(b *testing.B) {
	tp := benchChurnTopo(b)
	links := switchLinks(tp)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := links[i%len(links)]
		pruned, _ := pruneBanned(tp, map[int]bool{l: true})
		BuildKShortest(pruned, 8) // react to the failure
		BuildKShortest(tp, 8)     // react to the repair
	}
}
