package experiments

import (
	"time"

	"flattree/internal/parallel"
)

// Outcome is the result of one experiment inside a RunAll batch.
type Outcome struct {
	Name    string
	Result  Result
	Err     error
	Elapsed time.Duration
}

// RunAll executes the named experiments concurrently on the default
// bounded pool and returns one Outcome per name, in input order. A
// failing experiment records its error in its own slot without stopping
// the rest, so a batch report can show every failure at once. Because
// outcomes are index-collected and each experiment is internally
// deterministic, the returned slice is identical for any worker count.
func RunAll(names []string, cfg Config) []Outcome {
	out := make([]Outcome, len(names))
	parallel.Default().ForEach(len(names), func(i int) {
		start := time.Now()
		res, err := Run(names[i], cfg)
		out[i] = Outcome{Name: names[i], Result: res, Err: err, Elapsed: time.Since(start)}
	})
	return out
}
