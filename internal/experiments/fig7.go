package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

// Fig7Box is one box plot of Figure 7: the distribution of individual flow
// throughputs for one method under one traffic pattern on topo-1 global.
type Fig7Box struct {
	Pattern traffic.SyntheticPattern
	Method  Method
	Box     metrics.BoxPlot
}

// Fig7Result reproduces Figure 7's box plots (topo-1 in global mode;
// MPTCP uses 8 paths).
type Fig7Result struct {
	Topology string
	Boxes    []Fig7Box
}

// Fig7 runs the experiment at the configured scale.
func (c Config) Fig7() (*Fig7Result, error) {
	name := "mini-1"
	if c.Full {
		name = "topo-1"
	}
	nw, err := c.Network(name)
	if err != nil {
		return nil, err
	}
	nw.SetMode(core.ModeGlobal)
	r := nw.Realize()
	cp := nw.Clos()
	perPod := cp.EdgesPerPod * cp.ServersPerEdge
	res := &Fig7Result{Topology: name}
	table := routing.BuildKShortestCached(r.Topo, 8)
	type job struct {
		pattern traffic.SyntheticPattern
		pairs   []traffic.Pair
		method  Method
	}
	var jobs []job
	for _, pat := range Fig6Patterns() {
		pairs := traffic.Synthetic(pat, cp.TotalServers(), perPod, c.Seed)
		for _, m := range []Method{MPTCP8, LPAvg, LPMin} {
			jobs = append(jobs, job{pattern: pat, pairs: pairs, method: m})
		}
	}
	res.Boxes = make([]Fig7Box, len(jobs))
	err = parallel.Default().ForEachErr(context.Background(), len(jobs), func(_ context.Context, ji int) error {
		j := jobs[ji]
		flows, err := c.methodThroughputs(r.Topo, table, j.pairs, j.method)
		if err != nil {
			return fmt.Errorf("fig7 %v %v: %w", j.pattern, j.method, err)
		}
		res.Boxes[ji] = Fig7Box{Pattern: j.pattern, Method: j.method, Box: metrics.NewBoxPlot(flows)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Render tabulates the box statistics (Gbps) per pattern and method.
func (r *Fig7Result) Render() string {
	t := &metrics.Table{Header: []string{
		"pattern", "method", "p25", "median", "p75", "mean", "whisker-lo", "whisker-hi", "outliers",
	}}
	for _, b := range r.Boxes {
		t.Add(b.Pattern.String(), b.Method.String(),
			b.Box.P25, b.Box.Median, b.Box.P75, b.Box.Mean,
			b.Box.WhiskerLo, b.Box.WhiskerHi, b.Box.Outliers)
	}
	return fmt.Sprintf("-- %s global, flow throughput distribution --\n%s", r.Topology, t.String())
}
