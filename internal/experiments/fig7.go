package experiments

import (
	"fmt"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

// Fig7Box is one box plot of Figure 7: the distribution of individual flow
// throughputs for one method under one traffic pattern on topo-1 global.
type Fig7Box struct {
	Pattern traffic.SyntheticPattern
	Method  Method
	Box     metrics.BoxPlot
}

// Fig7Result reproduces Figure 7's box plots (topo-1 in global mode;
// MPTCP uses 8 paths).
type Fig7Result struct {
	Topology string
	Boxes    []Fig7Box
}

// Fig7 runs the experiment at the configured scale.
func (c Config) Fig7() (*Fig7Result, error) {
	name := "mini-1"
	if c.Full {
		name = "topo-1"
	}
	nw, err := c.Network(name)
	if err != nil {
		return nil, err
	}
	nw.SetMode(core.ModeGlobal)
	r := nw.Realize()
	cp := nw.Clos()
	perPod := cp.EdgesPerPod * cp.ServersPerEdge
	res := &Fig7Result{Topology: name}
	table := routing.BuildKShortest(r.Topo, 8)
	for _, pat := range Fig6Patterns() {
		pairs := traffic.Synthetic(pat, cp.TotalServers(), perPod, c.Seed)
		for _, m := range []Method{MPTCP8, LPAvg, LPMin} {
			flows, err := c.methodThroughputs(r.Topo, table, pairs, m)
			if err != nil {
				return nil, fmt.Errorf("fig7 %v %v: %w", pat, m, err)
			}
			res.Boxes = append(res.Boxes, Fig7Box{Pattern: pat, Method: m, Box: metrics.NewBoxPlot(flows)})
		}
	}
	return res, nil
}

// Render tabulates the box statistics (Gbps) per pattern and method.
func (r *Fig7Result) Render() string {
	t := &metrics.Table{Header: []string{
		"pattern", "method", "p25", "median", "p75", "mean", "whisker-lo", "whisker-hi", "outliers",
	}}
	for _, b := range r.Boxes {
		t.Add(b.Pattern.String(), b.Method.String(),
			b.Box.P25, b.Box.Median, b.Box.P75, b.Box.Mean,
			b.Box.WhiskerLo, b.Box.WhiskerHi, b.Box.Outliers)
	}
	return fmt.Sprintf("-- %s global, flow throughput distribution --\n%s", r.Topology, t.String())
}
