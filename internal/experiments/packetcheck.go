package experiments

import (
	"math"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/packetsim"
	"flattree/internal/routing"
	"flattree/internal/testbed"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// The packet-level cross-check validates the fluid substitution: the paper
// evaluated flat-tree with a packet-level MPTCP simulator; this repository
// substitutes a fluid max-min model for scalability. ablation-packet runs
// the Figure 10 iPerf pattern through BOTH simulators on a rate-scaled
// replica of the testbed and reports how closely the packet-level
// aggregate tracks the fluid prediction per mode — and whether the
// headline global-vs-Clos gain survives packet dynamics.

// PacketCheckRow is one mode's fluid-versus-packet comparison.
type PacketCheckRow struct {
	Mode core.Mode
	// FluidGbps is the max-min aggregate core bandwidth (at full rate).
	FluidGbps float64
	// PacketGbps is the packet-level aggregate, rescaled back to full
	// rate from the reduced-rate replica.
	PacketGbps float64
	// Ratio is PacketGbps / FluidGbps.
	Ratio float64
}

// rateScale runs the packet replica at 1% of the 10 Gbps fabric so the
// event count stays tractable; throughput scales linearly back.
const packetRateScale = 0.01

// AblationPacket cross-validates flowsim against packetsim on the testbed
// iPerf pattern for each uniform mode.
func (c Config) AblationPacket() ([]PacketCheckRow, error) {
	tb, err := testbed.New()
	if err != nil {
		return nil, err
	}
	var rows []PacketCheckRow
	for _, mode := range sortedModes() {
		if _, err := tb.Ctrl.Convert(mode); err != nil {
			return nil, err
		}
		r := tb.Ctrl.Realization()
		table := tb.Ctrl.Table()
		servers := r.Topo.Servers()

		var fluidSpecs []flowsim.ConnSpec
		var pktSpecs []packetsim.FlowSpec
		for _, pr := range tb.IPerfPairs() {
			paths := table.ServerPaths(servers[pr[0]], servers[pr[1]])
			if len(paths) > testbed.K {
				paths = paths[:testbed.K]
			}
			dp := make([][]int, len(paths))
			for i, p := range paths {
				dp[i] = routing.DirectedLinkIDs(r.Topo.G, p)
			}
			fluidSpecs = append(fluidSpecs, flowsim.ConnSpec{Paths: dp, Bits: math.Inf(1)})
			pktSpecs = append(pktSpecs, packetsim.FlowSpec{Paths: dp, Bits: math.Inf(1)})
		}

		fluidRates, err := flowsim.StaticRates(routing.DirectedCaps(r.Topo.G), fluidSpecs, topo.DefaultLinkCapacity)
		if err != nil {
			return nil, err
		}
		fluid := 0.0
		for _, fr := range fluidRates {
			fluid += fr
		}

		const horizon = 0.25
		sim, err := packetsim.New(r.Topo.G, packetsim.Config{RateScale: packetRateScale}, pktSpecs, horizon)
		if err != nil {
			return nil, err
		}
		results, err := sim.Run()
		if err != nil {
			return nil, err
		}
		// Skip the slow-start warmup by measuring delivered bits over the
		// whole window; at a 0.25 s horizon the warmup is a few percent.
		pkt := 0.0
		for _, fr := range results {
			pkt += fr.Throughput(0, horizon)
		}
		pktGbps := pkt / packetRateScale / 1e9

		rows = append(rows, PacketCheckRow{
			Mode: mode, FluidGbps: fluid, PacketGbps: pktGbps,
			Ratio: pktGbps / fluid,
		})
	}
	return rows, nil
}

// RenderAblationPacket formats the cross-check.
func RenderAblationPacket(rows []PacketCheckRow) string {
	t := &metrics.Table{Header: []string{"mode", "fluid aggregate (Gbps)", "packet-level aggregate (Gbps)", "packet/fluid"}}
	for _, r := range rows {
		t.Add(r.Mode.String(), r.FluidGbps, r.PacketGbps, r.Ratio)
	}
	return t.String()
}

// PacketFCTRow compares packet-level and fluid FCTs for one mode.
type PacketFCTRow struct {
	Mode core.Mode
	// Medians in milliseconds at full (10 Gbps) scale.
	FluidMedianMs, PacketMedianMs float64
}

// AblationPacketFCT replays a small pod-local trace through both
// simulators on the testbed in global and Clos modes, validating that the
// fluid FCT distribution tracks packet-level dynamics (not just steady
// throughput). The packet replica runs at 1% rate with 1% flow sizes, so
// FCTs match full scale directly.
func (c Config) AblationPacketFCT() ([]PacketFCTRow, error) {
	tb, err := testbed.New()
	if err != nil {
		return nil, err
	}
	cp := tb.Ctrl.Network().Clos()
	spec, err := traffic.FacebookSpec("cache", cp.TotalServers(), cp.ServersPerEdge,
		cp.EdgesPerPod, 200, c.Seed+31)
	if err != nil {
		return nil, err
	}
	spec.Duration = 1.0
	spec.SizeMedianGbit *= 100 // stress the small testbed fabric
	spec.SizeSigma = 1.0       // lighter tail so both replicas complete
	flows, err := traffic.Generate(spec)
	if err != nil {
		return nil, err
	}

	var rows []PacketFCTRow
	for _, mode := range []core.Mode{core.ModeGlobal, core.ModeClos} {
		if _, _, err := tb.Convert(mode); err != nil {
			return nil, err
		}
		r := tb.Ctrl.Realization()
		table := tb.Ctrl.Table()
		servers := r.Topo.Servers()

		var fluidSpecs []flowsim.ConnSpec
		var pktSpecs []packetsim.FlowSpec
		for _, f := range flows {
			paths := table.ServerPaths(servers[f.Src], servers[f.Dst])
			if len(paths) > testbed.K {
				paths = paths[:testbed.K]
			}
			dp := make([][]int, len(paths))
			for i, p := range paths {
				dp[i] = routing.DirectedLinkIDs(r.Topo.G, p)
			}
			fluidSpecs = append(fluidSpecs, flowsim.ConnSpec{Paths: dp, Bits: f.Bits, Arrival: f.Arrival})
			// The packet replica scales rates and sizes together, so
			// completion times are directly comparable. Traffic sizes are
			// in Gbit (the flowsim convention); packetsim takes raw bits.
			pktSpecs = append(pktSpecs, packetsim.FlowSpec{
				Paths: dp, Bits: f.Bits * 1e9 * packetRateScale, Start: f.Arrival,
			})
		}

		fluidRes, err := flowsim.NewSim(routing.DirectedCaps(r.Topo.G), fluidSpecs).Run()
		if err != nil {
			return nil, err
		}
		var fluidFCT []float64
		for _, fr := range fluidRes {
			if !math.IsInf(fr.Finish, 1) {
				fluidFCT = append(fluidFCT, fr.FCT()*1000)
			}
		}

		sim, err := packetsim.New(r.Topo.G, packetsim.Config{RateScale: packetRateScale, RTOMin: 0.2}, pktSpecs, 600)
		if err != nil {
			return nil, err
		}
		pktRes, err := sim.Run()
		if err != nil {
			return nil, err
		}
		// Compare medians over the flows that completed in BOTH replicas
		// so tail truncation cannot bias either side.
		fluidFCT = fluidFCT[:0]
		var pktFCT []float64
		for i := range flows {
			if math.IsInf(fluidRes[i].Finish, 1) || math.IsInf(pktRes[i].Finish, 1) {
				continue
			}
			fluidFCT = append(fluidFCT, fluidRes[i].FCT()*1000)
			pktFCT = append(pktFCT, (pktRes[i].Finish-pktSpecs[i].Start)*1000)
		}

		rows = append(rows, PacketFCTRow{
			Mode:           mode,
			FluidMedianMs:  metrics.Percentile(fluidFCT, 0.5),
			PacketMedianMs: metrics.Percentile(pktFCT, 0.5),
		})
	}
	return rows, nil
}

// RenderAblationPacketFCT formats the FCT validation.
func RenderAblationPacketFCT(rows []PacketFCTRow) string {
	t := &metrics.Table{Header: []string{"mode", "fluid median FCT (ms)", "packet-level median FCT (ms)"}}
	for _, r := range rows {
		t.Add(r.Mode.String(), r.FluidMedianMs, r.PacketMedianMs)
	}
	return t.String()
}
