package experiments

import (
	"fmt"
	"math"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/recorder"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

// The fbmix_large experiment is the simulator-scale study behind the
// struct-of-arrays flowsim core: the four Facebook workloads of §5.2
// replayed back to back through Sim.RunStream on flat-tree Clos mode with
// ECMP TCP, at flow counts far past what the figure experiments need
// (tens of thousands by default, tens of millions via Config.FBMixFlows
// or flatsim -fbmix-flows). Flows are drawn from the streaming trace
// generators and retired into a fixed-size log histogram, so memory
// tracks the peak concurrent flow count instead of the trace length.

// FBMixRow is one workload's outcome.
type FBMixRow struct {
	Workload string
	// Flows is the number of flows simulated; Completed and Unfinished
	// partition it (no horizon is set, so Unfinished stays zero unless a
	// workload is cut off by future extensions).
	Flows, Completed, Unfinished int
	// MeanMs is the exact mean FCT in milliseconds. P50Ms and P99Ms are
	// read from a 1024-bucket log histogram — deterministic, but
	// quantized to about 2% resolution, rendered as "~p50/~p99".
	MeanMs, P50Ms, P99Ms float64
}

// fctHist accumulates flow completion times into log-spaced buckets:
// fctBuckets buckets over [fctFloor, fctFloor*10^fctDecades) seconds,
// i.e. 100 ns to 1000 s at ~2.3% per bucket. Exact mean, approximate
// quantiles, O(1) memory — the 10M-flow runs never hold per-flow data.
type fctHist struct {
	counts [fctBuckets]int64
	n      int64
	sum    float64
}

const (
	fctBuckets = 1024
	fctFloor   = 1e-7
	fctDecades = 10
)

func (h *fctHist) add(fct float64) {
	h.n++
	h.sum += fct
	idx := 0
	if fct > fctFloor {
		idx = int(math.Log10(fct/fctFloor) * fctBuckets / fctDecades)
		if idx < 0 {
			idx = 0
		}
		if idx >= fctBuckets {
			idx = fctBuckets - 1
		}
	}
	h.counts[idx]++
}

func (h *fctHist) mean() float64 {
	if h.n == 0 {
		return 0
	}
	return h.sum / float64(h.n)
}

// quantile returns the geometric midpoint of the bucket holding the
// q-quantile observation.
func (h *fctHist) quantile(q float64) float64 {
	if h.n == 0 {
		return 0
	}
	rank := int64(q * float64(h.n-1))
	cum := int64(0)
	for idx, c := range h.counts {
		cum += c
		if cum > rank {
			return fctFloor * math.Pow(10, (float64(idx)+0.5)*fctDecades/fctBuckets)
		}
	}
	return fctFloor * math.Pow(10, fctDecades)
}

// FBMixWorkloads lists the four replayed traces in run order.
func FBMixWorkloads() []string { return []string{"hadoop-1", "hadoop-2", "web", "cache"} }

// fbmixArrivalRate is the offered load in flows per second; the trace
// duration scales with the flow count so the concurrent flow population
// (and therefore memory and per-event cost) stays roughly constant as
// the trace length grows. fbmixSizeScale shrinks the published flow
// sizes to keep the fabric below saturation at this rate: unlike the
// contention studies (fig8 scales sizes UP), this experiment measures
// simulator throughput, and an overloaded fabric grows the concurrent
// population — and with it the per-event allocation cost — without
// bound.
const (
	fbmixArrivalRate = 20_000.0
	fbmixSizeScale   = 0.25
)

// fbmixFlows resolves the per-workload flow count.
func (c Config) fbmixFlows() int {
	if c.FBMixFlows > 0 {
		return c.FBMixFlows
	}
	if c.Full {
		return 250_000
	}
	return 5_000
}

// FBMix replays the four workloads through the streaming simulator on
// flat-tree Clos mode (ECMP single-path TCP, the conventional deployment)
// and reports FCT statistics per workload.
func (c Config) FBMix() ([]FBMixRow, error) {
	base := "mini-1"
	if c.Full {
		base = "topo-1"
	}
	cp, err := c.paramsByName(base)
	if err != nil {
		return nil, err
	}
	nw, err := core.New(cp, flatTreeOptions(cp))
	if err != nil {
		return nil, err
	}
	nw.SetMode(core.ModeClos)
	t := nw.Realize().Topo
	table := routing.BuildKShortestCached(t, 4)
	caps := routing.DirectedCaps(t.G)
	servers := t.Servers()
	perRack := cp.ServersPerEdge
	racksPerPod := cp.EdgesPerPod
	rec := recorder.Default()

	nFlows := c.fbmixFlows()
	duration := float64(nFlows) / fbmixArrivalRate
	rows := make([]FBMixRow, 0, len(FBMixWorkloads()))
	for _, w := range FBMixWorkloads() {
		// Both trace generators stream flows in arrival order; hadoop-1's
		// coflow expansion emits 8 server flows per rack-to-rack transfer.
		var next func() (traffic.Flow, bool)
		planned := nFlows
		switch w {
		case "hadoop-1":
			coflows := nFlows / 8
			if coflows < 1 {
				coflows = 1
			}
			st := traffic.NewHadoop1Stream(len(servers), perRack, coflows, fbmixSizeScale*traffic.MB, duration, c.Seed+11)
			planned = st.Len()
			next = st.Next
		default:
			spec, err := traffic.FacebookSpec(w, len(servers), perRack, racksPerPod, nFlows, c.Seed+13)
			if err != nil {
				return nil, err
			}
			spec.Duration = duration
			spec.SizeMedianGbit *= fbmixSizeScale
			st, err := traffic.NewStream(spec)
			if err != nil {
				return nil, err
			}
			planned = st.Len()
			next = st.Next
		}

		fi := 0
		pull := func() (flowsim.ConnSpec, bool) {
			f, ok := next()
			if !ok {
				return flowsim.ConnSpec{}, false
			}
			p, ok := table.ECMPServerPath(servers[f.Src], servers[f.Dst], routing.FlowHash(f.Src, f.Dst, fi))
			fi++
			if !ok {
				// Clos mode always routes server pairs; an unroutable pair
				// is a construction bug, surfaced via a no-path spec which
				// Run rejects (non-graceful).
				return flowsim.ConnSpec{Bits: f.Bits, Arrival: f.Arrival}, true
			}
			return flowsim.ConnSpec{
				Paths:   [][]int{routing.DirectedLinkIDs(t.G, p)},
				Bits:    f.Bits,
				Arrival: f.Arrival,
			}, true
		}

		var hist fctHist
		unfinished := 0
		sim := flowsim.NewSim(caps, nil)
		sim.Rec = rec.Track("fbmix/" + w + "/sim")
		err = sim.RunStream(pull, func(id int, res flowsim.ConnResult) {
			if math.IsInf(res.Finish, 1) {
				unfinished++
				return
			}
			hist.add(res.FCT())
		})
		if err != nil {
			return nil, fmt.Errorf("fbmix %s: %w", w, err)
		}
		rows = append(rows, FBMixRow{
			Workload:   w,
			Flows:      planned,
			Completed:  int(hist.n),
			Unfinished: unfinished,
			MeanMs:     hist.mean() * 1000,
			P50Ms:      hist.quantile(0.5) * 1000,
			P99Ms:      hist.quantile(0.99) * 1000,
		})
	}
	return rows, nil
}

// RenderFBMix formats the streaming-scale study.
func RenderFBMix(rows []FBMixRow) string {
	t := &metrics.Table{Header: []string{
		"workload", "flows", "completed", "unfinished", "mean ms", "~p50 ms", "~p99 ms",
	}}
	for _, r := range rows {
		t.Add(r.Workload, r.Flows, r.Completed, r.Unfinished, r.MeanMs, r.P50Ms, r.P99Ms)
	}
	return t.String()
}
