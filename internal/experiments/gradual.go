package experiments

import (
	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/testbed"
)

// The gradual-conversion study quantifies §4.3's disruption-avoidance:
// converting pod by pod with per-pod draining versus the atomic
// conversion of Figure 10.

// GradualRow compares one strategy.
type GradualRow struct {
	Strategy string
	// FloorGbps is the lowest core bandwidth during the conversion.
	FloorGbps float64
	// Duration is first-step to full recovery, seconds.
	Duration float64
	// PlateauGbps is the final (global-mode) bandwidth.
	PlateauGbps float64
}

// AblationGradual runs Clos -> global both ways on the emulated testbed.
func (c Config) AblationGradual() ([]GradualRow, error) {
	var rows []GradualRow
	for _, strategy := range []string{"atomic", "gradual (1 pod/step)"} {
		tb, err := testbed.New()
		if err != nil {
			return nil, err
		}
		var run *testbed.GradualRun
		if strategy == "atomic" {
			run, err = tb.RunAtomicConversion(core.ModeGlobal, 0.5)
		} else {
			run, err = tb.RunGradualConversion(core.ModeGlobal, 0.5)
		}
		if err != nil {
			return nil, err
		}
		rows = append(rows, GradualRow{
			Strategy:    strategy,
			FloorGbps:   run.MinBandwidth,
			Duration:    run.Duration,
			PlateauGbps: run.Samples[len(run.Samples)-1].CoreBandwidth,
		})
	}
	return rows, nil
}

// RenderAblationGradual formats the comparison.
func RenderAblationGradual(rows []GradualRow) string {
	t := &metrics.Table{Header: []string{"strategy", "bandwidth floor (Gbps)", "conversion duration (s)", "final plateau (Gbps)"}}
	for _, r := range rows {
		t.Add(r.Strategy, r.FloorGbps, r.Duration, r.PlateauGbps)
	}
	return t.String()
}
