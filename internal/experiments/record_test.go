package experiments

import (
	"bytes"
	"testing"

	"flattree/internal/parallel"
	"flattree/internal/recorder"
)

// TestChurnJournalByteIdentical pins the flight recorder's central
// guarantee end to end: a seeded churn run records a journal that is
// byte-identical across repeated runs AND across worker counts. The
// small ring limit forces drops on the busiest tracks, so the
// deterministic-truncation path is covered too.
func TestChurnJournalByteIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the churn experiment three times")
	}
	run := func(workers int) []byte {
		parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(0)
		rec := recorder.Enable(256)
		defer recorder.Disable()
		if _, err := (Config{Seed: 1, Epsilon: 0.25}).Churn(); err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := recorder.WriteJournal(&buf, rec); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	serial := run(1)
	again := run(1)
	wide := run(8)
	if !bytes.Equal(serial, again) {
		t.Fatal("same seed, same workers: journals differ")
	}
	if !bytes.Equal(serial, wide) {
		t.Fatal("workers=1 vs workers=8: journals differ")
	}

	j, err := recorder.DecodeJournal(serial)
	if err != nil {
		t.Fatalf("journal does not decode: %v", err)
	}
	if len(j.Events()) == 0 {
		t.Fatal("churn run recorded no events")
	}
	// Both modes' engine and sim tracks plus the fingerprints made it in.
	tracks := map[string]bool{}
	notes := map[string]bool{}
	for _, l := range j.Lines {
		if l.Track != "" {
			tracks[l.Track] = true
		}
		if l.Note != "" {
			notes[l.Note] = true
		}
	}
	for _, want := range []string{
		"churn/clos/engine", "churn/clos/sim",
		"churn/global/engine", "churn/global/sim",
	} {
		if !tracks[want] {
			t.Fatalf("track %q missing (have %v)", want, tracks)
		}
	}
	for _, want := range []string{"topology_fingerprint/clos", "topology_fingerprint/global"} {
		if !notes[want] {
			t.Fatalf("annotation %q missing (have %v)", want, notes)
		}
	}
	// The 256-event rings must have truncated the busiest track,
	// deterministically.
	dropped := false
	for _, l := range j.Lines {
		if l.Track != "" && l.Dropped != nil && *l.Dropped > 0 {
			dropped = true
		}
	}
	if !dropped {
		t.Fatal("expected ring drops at limit 256; drop path untested")
	}
}
