package experiments

import (
	"context"
	"fmt"
	"math"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/graph"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// Fig8Network names one of the six networks compared in Figure 8.
type Fig8Network int

const (
	// FTGlobal is flat-tree in global mode (k-shortest paths + MPTCP).
	FTGlobal Fig8Network = iota
	// FTLocal is flat-tree in local mode.
	FTLocal
	// FTClosKSP is flat-tree Clos mode with k-shortest paths + MPTCP.
	FTClosKSP
	// FTClosECMP is flat-tree Clos mode with conventional ECMP + TCP.
	FTClosECMP
	// RandomGraph is the static random graph baseline.
	RandomGraph
	// TwoStageRG is the static two-stage random graph baseline.
	TwoStageRG
)

var fig8Names = [...]string{
	"flat-tree global", "flat-tree local", "flat-tree Clos (k-sp)",
	"flat-tree Clos (ECMP)", "random graph", "two-stage random graph",
}

func (n Fig8Network) String() string { return fig8Names[n] }

// Fig8Networks lists all six compared networks.
func Fig8Networks() []Fig8Network {
	return []Fig8Network{FTGlobal, FTLocal, FTClosKSP, FTClosECMP, RandomGraph, TwoStageRG}
}

// Fig8K is the concurrent path count used for MPTCP in the FCT simulations.
const Fig8K = 8

// Fig8Series is one CDF line of Figure 8: FCTs of one workload on one
// network.
type Fig8Series struct {
	Workload string
	Network  Fig8Network
	// FCTs in milliseconds, one per completed flow.
	FCTs []float64
	CDF  metrics.CDF
}

// Fig8Result holds every series of the figure.
type Fig8Result struct {
	Base   string
	Series []Fig8Series
}

// Fig8Workloads returns the four trace names.
func Fig8Workloads() []string { return []string{"hadoop-1", "hadoop-2", "web", "cache"} }

// Fig8 runs the trace-driven FCT comparison at the configured scale: the
// flat-tree base topology is topo-1 (mini-1 reduced), following §5.2's
// choice of topo-1 as the representative practical topology.
func (c Config) Fig8() (*Fig8Result, error) {
	return c.Fig8With(Fig8Workloads(), Fig8Networks())
}

// fig8Flows generates the flows of one workload on the base Clos shape.
func (c Config) fig8Flows(workload string, cp topo.ClosParams) ([]traffic.Flow, error) {
	servers := cp.TotalServers()
	perRack := cp.ServersPerEdge
	racksPerPod := cp.EdgesPerPod
	nFlows := 1500
	coflows := 150
	if c.Full {
		nFlows = 40000
		coflows = 4000
	}
	switch workload {
	case "hadoop-1":
		// Rack-level shuffle coflows, 8 server flows each at 10x volume.
		return traffic.Hadoop1Trace(servers, perRack, coflows, 40*traffic.MB, 2.0, c.Seed+11), nil
	default:
		spec, err := traffic.FacebookSpec(workload, servers, perRack, racksPerPod, nFlows, c.Seed+13)
		if err != nil {
			return nil, err
		}
		spec.Duration = 2.0
		// Scale sizes up so the fabric sees real contention at the
		// reduced server count (the paper's traces saturate 10G links).
		spec.SizeMedianGbit *= 40
		return traffic.Generate(spec)
	}
}

// fig8Topology realizes one of the compared networks from the base Clos.
func (c Config) fig8Topology(n Fig8Network, cp topo.ClosParams) (*topo.Topology, error) {
	switch n {
	case FTGlobal, FTLocal, FTClosKSP, FTClosECMP:
		nw, err := core.New(cp, flatTreeOptions(cp))
		if err != nil {
			return nil, err
		}
		switch n {
		case FTGlobal:
			nw.SetMode(core.ModeGlobal)
		case FTLocal:
			nw.SetMode(core.ModeLocal)
		default:
			nw.SetMode(core.ModeClos)
		}
		return nw.Realize().Topo, nil
	case RandomGraph:
		p := topo.FromClosEquipment(cp)
		p.Seed = c.Seed + 21
		return topo.BuildRandomGraph(p)
	case TwoStageRG:
		return topo.BuildTwoStageRandomGraph(topo.TwoStageParams{
			Name: cp.Name + "-2stage", Clos: cp, Seed: c.Seed + 22,
		})
	}
	return nil, fmt.Errorf("experiments: unknown Fig8 network %d", int(n))
}

// Fig8With runs explicit workloads and networks.
func (c Config) Fig8With(workloads []string, networks []Fig8Network) (*Fig8Result, error) {
	base := "mini-1"
	if c.Full {
		base = "topo-1"
	}
	cp, err := c.paramsByName(base)
	if err != nil {
		return nil, err
	}
	res := &Fig8Result{Base: base}

	// Realize each compared network serially (conversion itself is cheap
	// and its telemetry spans stay ordered), then fan the (network,
	// workload) simulations out on the bounded pool. Series keep the
	// networks-outer / workloads-inner order via their job index.
	type netState struct {
		topo    *topo.Topology
		table   *routing.Table
		caps    []float64
		servers []int
	}
	states := make([]netState, len(networks))
	for ni, n := range networks {
		t, err := c.fig8Topology(n, cp)
		if err != nil {
			return nil, err
		}
		states[ni] = netState{
			topo:    t,
			table:   routing.BuildKShortestCached(t, Fig8K),
			caps:    routing.DirectedCaps(t.G),
			servers: t.Servers(),
		}
	}

	res.Series = make([]Fig8Series, len(networks)*len(workloads))
	err = parallel.Default().ForEachErr(context.Background(), len(res.Series), func(_ context.Context, ji int) error {
		ni, wi := ji/len(workloads), ji%len(workloads)
		n, w, st := networks[ni], workloads[wi], states[ni]
		flows, err := c.fig8Flows(w, cp)
		if err != nil {
			return err
		}
		specs := make([]flowsim.ConnSpec, 0, len(flows))
		for fi, f := range flows {
			var paths []graph.Path
			if n == FTClosECMP {
				p, ok := st.table.ECMPServerPath(st.servers[f.Src], st.servers[f.Dst],
					routing.FlowHash(f.Src, f.Dst, fi))
				if !ok {
					return fmt.Errorf("fig8: no ECMP path for flow %d", fi)
				}
				paths = []graph.Path{p}
			} else {
				paths = st.table.ServerPaths(st.servers[f.Src], st.servers[f.Dst])
				if len(paths) > Fig8K {
					paths = paths[:Fig8K]
				}
			}
			dp := make([][]int, len(paths))
			for i, p := range paths {
				dp[i] = routing.DirectedLinkIDs(st.topo.G, p)
			}
			specs = append(specs, flowsim.ConnSpec{Paths: dp, Bits: f.Bits, Arrival: f.Arrival})
		}
		sim := flowsim.NewSim(st.caps, specs)
		results, err := sim.Run()
		if err != nil {
			return fmt.Errorf("fig8 %v %s: %w", n, w, err)
		}
		fcts := make([]float64, 0, len(results))
		for _, r := range results {
			if !math.IsInf(r.Finish, 1) {
				fcts = append(fcts, r.FCT()*1000) // ms
			}
		}
		res.Series[ji] = Fig8Series{Workload: w, Network: n, FCTs: fcts, CDF: metrics.NewCDF(fcts)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// Median returns the median FCT (ms) of a series.
func (s Fig8Series) Median() float64 { return metrics.Percentile(s.FCTs, 0.5) }

// P99 returns the 99th percentile FCT (ms).
func (s Fig8Series) P99() float64 { return metrics.Percentile(s.FCTs, 0.99) }

// Render tabulates median / p90 / p99 FCT per workload and network —
// the summary statistics of the Figure 8 CDFs.
func (r *Fig8Result) Render() string {
	t := &metrics.Table{Header: []string{"workload", "network", "median ms", "p90 ms", "p99 ms", "mean ms"}}
	for _, s := range r.Series {
		t.Add(s.Workload, s.Network.String(),
			metrics.Percentile(s.FCTs, 0.5), metrics.Percentile(s.FCTs, 0.9),
			metrics.Percentile(s.FCTs, 0.99), metrics.Mean(s.FCTs))
	}
	return fmt.Sprintf("-- FCT distributions on %s --\n%s", r.Base, t.String())
}
