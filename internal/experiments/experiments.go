// Package experiments regenerates every table and figure of the paper's
// evaluation (§2.1 and §5). Each experiment returns structured rows plus a
// rendered text table, and runs at two scales: the default reduced scale
// (minutes of CPU, preserving every qualitative comparison) and the
// paper's full scale via Config.Full.
//
// The per-experiment index lives in DESIGN.md; paper-versus-measured
// numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"hash/fnv"
	"math"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/mcf"
	"flattree/internal/parallel"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// Config controls experiment scale and determinism.
type Config struct {
	// Full runs the paper-scale topologies (topo-1..6, k=16 fat-tree).
	// The default reduced scale shrinks each topology proportionally.
	Full bool
	// Seed drives every stochastic component.
	Seed int64
	// Epsilon is the LP approximation accuracy (default 0.1).
	Epsilon float64
	// FBMixFlows overrides the per-workload flow count of the fbmix_large
	// streaming study (0 keeps the scale defaults: 5k reduced, 250k full).
	// Set to 2_500_000 for the 10M-flow run across the four workloads.
	FBMixFlows int
}

func (c Config) epsilon() float64 {
	if c.Epsilon <= 0 {
		return 0.1
	}
	return c.Epsilon
}

// MiniTable2 returns proportionally reduced versions of the Table 2
// topologies used at the default scale. Shapes preserve each topology's
// distinguishing feature: mini-2 is a uniform down-scale of mini-1, mini-3
// doubles edge oversubscription, mini-4 has fewer, larger aggregation and
// core switches (r=2), mini-5 moves half the oversubscription to the
// aggregation layer, mini-6 combines mini-4 and mini-5.
func MiniTable2() []topo.ClosParams {
	return []topo.ClosParams{
		{Name: "mini-1", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4, ServersPerEdge: 8, EdgeUplinks: 4, AggUplinks: 4, Cores: 16},
		{Name: "mini-2", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4, ServersPerEdge: 4, EdgeUplinks: 4, AggUplinks: 4, Cores: 16},
		{Name: "mini-3", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4, ServersPerEdge: 16, EdgeUplinks: 4, AggUplinks: 4, Cores: 16},
		{Name: "mini-4", Pods: 4, EdgesPerPod: 8, AggsPerPod: 4, ServersPerEdge: 8, EdgeUplinks: 4, AggUplinks: 8, Cores: 16},
		{Name: "mini-5", Pods: 4, EdgesPerPod: 4, AggsPerPod: 4, ServersPerEdge: 8, EdgeUplinks: 8, AggUplinks: 4, Cores: 16},
		{Name: "mini-6", Pods: 4, EdgesPerPod: 8, AggsPerPod: 4, ServersPerEdge: 8, EdgeUplinks: 8, AggUplinks: 8, Cores: 16},
	}
}

// baseParams returns the evaluation topology set for the configured scale.
func (c Config) baseParams() []topo.ClosParams {
	if c.Full {
		return topo.Table2()
	}
	return MiniTable2()
}

// paramsByName resolves one topology of the configured scale; names accept
// both "topo-N" and "mini-N".
func (c Config) paramsByName(name string) (topo.ClosParams, error) {
	for _, p := range c.baseParams() {
		if p.Name == name {
			return p, nil
		}
	}
	return topo.ClosParams{}, fmt.Errorf("experiments: unknown topology %q at this scale", name)
}

// flatTreeOptions picks (n, m) for a base topology by running the §3.4
// server-distribution profiling: sweep feasible combinations and keep the
// one with the shortest global-mode average path length. The sweep
// matters: maximizing relocation (m = g-1) actually LENGTHENS paths at
// scale, because core switches then host many servers behind almost no
// switch-level links. Results are cached per parameter set; sources are
// stride-sampled on large networks to bound the BFS cost.
func flatTreeOptions(p topo.ClosParams) core.Options {
	opt, _ := parallel.Get(profileCache, fmt.Sprintf("%+v", p), func() (core.Options, error) {
		opt := core.Options{N: 1, M: 1, Pattern: core.Pattern1} // safe fallback
		stride := p.TotalServers() / 128
		if stride < 1 {
			stride = 1
		}
		if best, _, err := core.ProfileMN(p, core.Pattern1, stride); err == nil {
			opt = core.Options{N: best.N, M: best.M, Pattern: core.Pattern1}
		}
		return opt, nil
	})
	return opt
}

// profileCache memoizes §3.4 (n, m) profiling per parameter set with
// single-flight semantics, so concurrent experiments in a RunAll batch
// never profile the same topology twice.
var profileCache = parallel.NewCache("profile", 0)

// flatTreeOptionsFor picks a feasible (n, m) for an explicit wiring
// pattern, backing off m until core.New accepts the combination (pattern 2
// rejects m = g-1 when g divides m+1 — the partition hazard documented in
// core.New).
func flatTreeOptionsFor(p topo.ClosParams, patterns ...core.Pattern) (core.Options, error) {
	g := p.AggUplinks / p.R()
	for m := g - 1; m >= 1; m-- {
		n := 1
		if n+m > g {
			n = 0
		}
		if n+m > p.ServersPerEdge {
			continue
		}
		ok := true
		for _, pattern := range patterns {
			if _, err := core.New(p, core.Options{N: n, M: m, Pattern: pattern}); err != nil {
				ok = false
				break
			}
		}
		if ok {
			return core.Options{N: n, M: m, Pattern: patterns[0]}, nil
		}
	}
	return core.Options{}, fmt.Errorf("experiments: no (n, m) feasible for %s under all requested patterns", p.Name)
}

// Network instantiates the flat-tree network for a named base topology at
// the configured scale.
func (c Config) Network(name string) (*core.Network, error) {
	p, err := c.paramsByName(name)
	if err != nil {
		return nil, err
	}
	return core.New(p, flatTreeOptions(p))
}

// Method identifies a routing/transport scheme compared in §5.
type Method int

const (
	// LPMin is the "LP minimum" bound: maximize the minimum flow
	// throughput (maximum concurrent flow).
	LPMin Method = iota
	// LPAvg is the "LP average" bound: maximize total throughput.
	LPAvg
	// MPTCP4, MPTCP8, MPTCP12 are k-shortest-path routing with MPTCP
	// using 4, 8, and 12 concurrent paths.
	MPTCP4
	MPTCP8
	MPTCP12
	// ECMPTCP is single-path TCP with ECMP hashing — the conventional
	// Clos deployment.
	ECMPTCP
)

var methodNames = map[Method]string{
	LPMin: "LP minimum", LPAvg: "LP average",
	MPTCP4: "4-way MPTCP", MPTCP8: "8-way MPTCP", MPTCP12: "12-way MPTCP",
	ECMPTCP: "ECMP TCP",
}

func (m Method) String() string { return methodNames[m] }

// K returns the concurrent-path count of an MPTCP method (0 otherwise).
func (m Method) K() int {
	switch m {
	case MPTCP4:
		return 4
	case MPTCP8:
		return 8
	case MPTCP12:
		return 12
	}
	return 0
}

// commoditiesFor converts server-index pairs to MCF commodities on a
// realized topology.
func commoditiesFor(t *topo.Topology, pairs []traffic.Pair) []mcf.Commodity {
	servers := t.Servers()
	out := make([]mcf.Commodity, len(pairs))
	for i, p := range pairs {
		out[i] = mcf.Commodity{Src: servers[p.Src], Dst: servers[p.Dst], Demand: 1}
	}
	return out
}

// mptcpSpecs builds MPTCP connection specs (k paths, directed links) for
// server-index pairs. Persistent connections are used for throughput
// experiments (bits = +Inf).
func mptcpSpecs(t *topo.Topology, table *routing.Table, pairs []traffic.Pair, k int) []flowsim.ConnSpec {
	servers := t.Servers()
	specs := make([]flowsim.ConnSpec, 0, len(pairs))
	for _, pr := range pairs {
		paths := table.ServerPaths(servers[pr.Src], servers[pr.Dst])
		if len(paths) > k {
			paths = paths[:k]
		}
		dp := make([][]int, len(paths))
		for i, p := range paths {
			dp[i] = routing.DirectedLinkIDs(t.G, p)
		}
		specs = append(specs, flowsim.ConnSpec{Paths: dp, Bits: math.Inf(1)})
	}
	return specs
}

// lpCache memoizes Garg-Könemann LP solutions across experiment cells:
// Figure 7 re-solves exactly the LP instances Figure 6's first panel
// already solved, and ablations re-visit Table 2 topologies. Keys cover
// every input of a solve — topology fingerprint (which fixes the arc
// numbering), objective, epsilon, and the commodity list.
var lpCache = parallel.NewCache("lp", 128)

// commsKey hashes a commodity list for the LP cache key.
func commsKey(comms []mcf.Commodity) string {
	h := fnv.New64a()
	var buf [8]byte
	wi := func(v uint64) {
		for i := range buf {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	for _, c := range comms {
		wi(uint64(int64(c.Src)))
		wi(uint64(int64(c.Dst)))
		wi(math.Float64bits(c.Demand))
	}
	return fmt.Sprintf("%d-%016x", len(comms), h.Sum64())
}

// lpSolve runs (or reuses) one LP solve. The cached result is shared
// between cells, so callers receive a private copy of PerFlow.
func (c Config) lpSolve(t *topo.Topology, pairs []traffic.Pair, objective string) ([]float64, error) {
	comms := commoditiesFor(t, pairs)
	key := fmt.Sprintf("%s|%s|eps=%g|%s", t.Fingerprint(), objective, c.epsilon(), commsKey(comms))
	res, err := parallel.Get(lpCache, key, func() (*mcf.Result, error) {
		var r mcf.Result
		var err error
		if objective == "concurrent" {
			r, err = mcf.MaxConcurrent(t.G, comms, mcf.Options{Epsilon: c.epsilon()})
		} else {
			r, err = mcf.MaxTotal(t.G, comms, mcf.Options{Epsilon: c.epsilon()})
		}
		if err != nil {
			return nil, err
		}
		return &r, nil
	})
	if err != nil {
		return nil, err
	}
	return append([]float64(nil), res.PerFlow...), nil
}

// methodThroughputs returns the per-flow throughput of every pair under
// the given method on a realized topology. table may be nil (one is built
// on demand for path-based methods); when provided it must hold at least
// the method's k paths per pair. Route tables and LP solutions are served
// from the cross-run caches when a structurally identical cell ran before.
func (c Config) methodThroughputs(t *topo.Topology, table *routing.Table, pairs []traffic.Pair, m Method) ([]float64, error) {
	needK := m.K()
	if m == ECMPTCP {
		needK = 4
	}
	if table == nil && needK > 0 {
		table = routing.BuildKShortestCached(t, needK)
	}
	switch m {
	case LPMin:
		return c.lpSolve(t, pairs, "concurrent")
	case LPAvg:
		return c.lpSolve(t, pairs, "total")
	case MPTCP4, MPTCP8, MPTCP12:
		specs := mptcpSpecs(t, table.WithK(m.K()), pairs, m.K())
		return flowsim.StaticRates(routing.DirectedCaps(t.G), specs, topo.DefaultLinkCapacity)
	case ECMPTCP:
		servers := t.Servers()
		specs := make([]flowsim.ConnSpec, 0, len(pairs))
		for i, pr := range pairs {
			p, ok := table.ECMPServerPath(servers[pr.Src], servers[pr.Dst], routing.FlowHash(pr.Src, pr.Dst, i))
			if !ok {
				return nil, fmt.Errorf("experiments: no ECMP path for pair %v", pr)
			}
			specs = append(specs, flowsim.ConnSpec{
				Paths: [][]int{routing.DirectedLinkIDs(t.G, p)},
				Bits:  math.Inf(1),
			})
		}
		return flowsim.StaticRates(routing.DirectedCaps(t.G), specs, topo.DefaultLinkCapacity)
	}
	return nil, fmt.Errorf("experiments: unknown method %v", m)
}

// maxK returns the largest k any of the methods needs from a route table.
func maxK(methods []Method) int {
	k := 0
	for _, m := range methods {
		mk := m.K()
		if m == ECMPTCP {
			mk = 4
		}
		if mk > k {
			k = mk
		}
	}
	return k
}

// sortedModes lists the three uniform modes in presentation order.
func sortedModes() []core.Mode {
	return []core.Mode{core.ModeGlobal, core.ModeLocal, core.ModeClos}
}

// Result bundles an experiment's rendered table and its identifier.
type Result struct {
	Name  string
	Table string
}

func (r Result) String() string {
	return fmt.Sprintf("== %s ==\n%s", r.Name, r.Table)
}
