package experiments

import (
	"fmt"

	"flattree/internal/mcf"
	"flattree/internal/metrics"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// Table1Params parameterizes the §2.1 motivating experiment.
type Table1Params struct {
	// Clos is the equipment the three architectures are built from.
	//
	// Substitution note (recorded in EXPERIMENTS.md): the paper builds a
	// k=16 fat-tree. Under a full-duplex LP with NIC capacity caps a
	// non-blocking fat-tree ties every architecture at the NIC bound, so
	// the three locality regimes of Table 1 only separate when the fabric
	// is the binding resource. We therefore use the edge-oversubscribed
	// Clos equipment of the flat-tree evaluation (topo-1 shape), which
	// exposes the same regimes: Clos wins rack-local clusters, the
	// two-stage random graph wins pod-scale clusters, and the random
	// graph wins network-wide clusters.
	Clos topo.ClosParams
	// ClusterSizes are the all-to-all cluster sizes (one table row each).
	ClusterSizes []int
}

// Table1Row is one cluster-size row of Table 1: throughput of clustered
// all-to-all traffic on the three fixed architectures, normalized against
// the row minimum.
type Table1Row struct {
	ClusterSize int
	// Clos, RandomGraph, TwoStage are normalized throughputs.
	Clos, RandomGraph, TwoStage float64
	// Raw per-architecture optimally-balanced per-flow throughput
	// (maximum concurrent flow λ).
	RawClos, RawRandomGraph, RawTwoStage float64
}

// Table1Result is the full Table 1 reproduction.
type Table1Result struct {
	Equipment string
	Rows      []Table1Row
}

// DefaultTable1Params returns the experiment parameters for the configured
// scale: topo-1 with clusters {8, 30, 100} at full scale (the paper's
// cluster sizes), or a 4-pod reduction with proportionally smaller
// clusters {8, 32, 128} spanning the same three locality regimes.
func (c Config) DefaultTable1Params() Table1Params {
	if c.Full {
		p, _ := topo.Table2ByName("topo-1")
		return Table1Params{Clos: p, ClusterSizes: []int{8, 30, 100}}
	}
	// mini-1 (128 servers, 8 per rack, 32 per pod) with clusters that fit
	// a rack (4), span several racks of one pod (24), and cover most of
	// the network (96) — the paper's three locality regimes.
	return Table1Params{
		Clos:         MiniTable2()[0],
		ClusterSizes: []int{4, 24, 96},
	}
}

// Table1 reproduces §2.1's motivating experiment at the configured scale.
func (c Config) Table1() (*Table1Result, error) {
	return c.Table1With(c.DefaultTable1Params())
}

// Table1With runs the experiment with explicit parameters: all-to-all
// traffic inside clusters of consecutive servers on the Clos network, a
// random graph, and a two-stage random graph built from the same devices,
// with throughput measured as the optimally balanced per-flow rate
// (maximum concurrent flow).
func (c Config) Table1With(p Table1Params) (*Table1Result, error) {
	cl, err := topo.BuildClos(p.Clos)
	if err != nil {
		return nil, err
	}
	rgp := topo.FromClosEquipment(p.Clos)
	rgp.Seed = c.Seed + 1
	rg, err := topo.BuildRandomGraph(rgp)
	if err != nil {
		return nil, err
	}
	ts, err := topo.BuildTwoStageRandomGraph(topo.TwoStageParams{
		Name: p.Clos.Name + "-2stage", Clos: p.Clos, Seed: c.Seed + 2,
	})
	if err != nil {
		return nil, err
	}

	res := &Table1Result{Equipment: p.Clos.Name}
	for _, size := range p.ClusterSizes {
		pairs := traffic.ClusteredAllToAll(p.Clos.TotalServers(), size)
		row := Table1Row{ClusterSize: size}
		for i, t := range []*topo.Topology{cl, rg, ts} {
			sol, err := mcf.MaxConcurrent(t.G, commoditiesFor(t, pairs), mcf.Options{Epsilon: c.epsilon()})
			if err != nil {
				return nil, fmt.Errorf("table1 %s size %d: %w", t.Name, size, err)
			}
			v := sol.Lambda
			switch i {
			case 0:
				row.RawClos = v
			case 1:
				row.RawRandomGraph = v
			case 2:
				row.RawTwoStage = v
			}
		}
		min := row.RawClos
		if row.RawRandomGraph < min {
			min = row.RawRandomGraph
		}
		if row.RawTwoStage < min {
			min = row.RawTwoStage
		}
		row.Clos = row.RawClos / min
		row.RandomGraph = row.RawRandomGraph / min
		row.TwoStage = row.RawTwoStage / min
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// Render formats the result like the paper's Table 1.
func (r *Table1Result) Render() string {
	t := &metrics.Table{Header: []string{"Cluster Size", "Clos (fat-tree role)", "Random Graph", "Two-stage Random Graph"}}
	for _, row := range r.Rows {
		t.Add(row.ClusterSize, row.Clos, row.RandomGraph, row.TwoStage)
	}
	return t.String()
}
