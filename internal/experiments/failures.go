package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// The failure-resilience study extends the paper's footnote 2: "it has
// been established that throughput degrades more gracefully in random
// graph networks than in fat-tree under failure. Because flat-tree
// approximates random graph networks, we expect flat-tree to be resilient
// to failure as well, although more thorough evaluations are left to
// future work." This experiment performs that evaluation: it fails a
// fraction of switch-to-switch links and measures the surviving
// permutation throughput in Clos versus global mode.

// FailureRow is one (mode, failure fraction) measurement.
type FailureRow struct {
	Mode core.Mode
	// FailFraction is the fraction of switch-switch links removed.
	FailFraction float64
	// Throughput is the mean MPTCP(8) flow rate over surviving routes.
	Throughput float64
	// Disconnected counts flows with no surviving path.
	Disconnected int
}

// AblationFailures measures throughput degradation under random link
// failures for Clos and global modes of the reduced topo-1.
func (c Config) AblationFailures() ([]FailureRow, error) {
	name := "mini-1"
	if c.Full {
		name = "topo-1"
	}
	p, err := c.paramsByName(name)
	if err != nil {
		return nil, err
	}
	fractions := []float64{0, 0.05, 0.10, 0.20}
	var rows []FailureRow
	for _, mode := range []core.Mode{core.ModeClos, core.ModeGlobal} {
		nw, err := core.New(p, flatTreeOptions(p))
		if err != nil {
			return nil, err
		}
		nw.SetMode(mode)
		r := nw.Realize()
		pairs := traffic.Permutation(p.TotalServers(), c.Seed)
		for _, frac := range fractions {
			t, err := failLinks(r.Topo, frac, c.Seed+int64(frac*1000))
			if err != nil {
				return nil, err
			}
			row := FailureRow{Mode: mode, FailFraction: frac}
			table := routing.BuildKShortest(t, 8)
			servers := t.Servers()
			var specs []flowsim.ConnSpec
			for _, pr := range pairs {
				paths := table.ServerPaths(servers[pr.Src], servers[pr.Dst])
				if len(paths) > 8 {
					paths = paths[:8]
				}
				if len(paths) == 0 {
					row.Disconnected++
					continue
				}
				dp := make([][]int, len(paths))
				for i, pp := range paths {
					dp[i] = routing.DirectedLinkIDs(t.G, pp)
				}
				specs = append(specs, flowsim.ConnSpec{Paths: dp, Bits: math.Inf(1)})
			}
			rates, err := flowsim.StaticRates(routing.DirectedCaps(t.G), specs, topo.DefaultLinkCapacity)
			if err != nil {
				return nil, err
			}
			row.Throughput = metrics.Mean(rates)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// failLinks rebuilds the topology with a random fraction of switch-switch
// links removed (server uplinks never fail: a failed NIC removes the
// server, which is not a network property). It retries seeds until the
// switch fabric stays connected, mirroring operators' practice of
// evaluating non-partitioning failures.
func failLinks(t *topo.Topology, fraction float64, seed int64) (*topo.Topology, error) {
	if fraction == 0 {
		return t, nil
	}
	for attempt := int64(0); attempt < 50; attempt++ {
		rng := rand.New(rand.NewSource(seed + attempt))
		out := topo.NewTopology(fmt.Sprintf("%s-fail%.0f%%", t.Name, fraction*100))
		out.SetNumPods(t.NumPods())
		idMap := make([]int, len(t.Nodes))
		for _, n := range t.Nodes {
			idMap[n.ID] = out.AddNode(n.Kind, n.Pod)
		}
		ok := true
		for _, l := range t.G.Links() {
			na, nb := t.Nodes[l.A], t.Nodes[l.B]
			if na.Kind == topo.Server || nb.Kind == topo.Server {
				continue // re-add below via AttachServer
			}
			if rng.Float64() < fraction {
				continue // failed link
			}
			out.AddLink(idMap[l.A], idMap[l.B])
		}
		for _, s := range t.Servers() {
			out.AttachServer(idMap[s], idMap[t.AttachedSwitch(s)])
		}
		if err := out.Validate(); err != nil {
			ok = false
		}
		if ok {
			return out, nil
		}
	}
	return nil, fmt.Errorf("experiments: could not draw a non-partitioning %.0f%% failure", fraction*100)
}

// RenderAblationFailures formats the failure study.
func RenderAblationFailures(rows []FailureRow) string {
	t := &metrics.Table{Header: []string{"mode", "links failed", "permutation avg (Gbps)", "disconnected flows"}}
	for _, r := range rows {
		t.Add(r.Mode.String(), fmt.Sprintf("%.0f%%", r.FailFraction*100), r.Throughput, r.Disconnected)
	}
	return t.String()
}
