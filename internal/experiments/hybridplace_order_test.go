package experiments

import (
	"fmt"
	"strings"
	"testing"
)

// TestRenderHybridPlacementDeterministic pins the flatvet maporder fix
// in RenderHybridPlacement: tenant columns come from ranging over a
// map, so without the sort the column order (and therefore the rendered
// table) varied run to run. Rebuilding the rows repeatedly exercises
// many map iteration orders within one process.
func TestRenderHybridPlacementDeterministic(t *testing.T) {
	build := func() []HybridPlaceRow {
		per := map[string]float64{}
		// Enough keys that Go's randomized iteration order would be
		// overwhelmingly likely to differ between builds.
		for i := 0; i < 12; i++ {
			per[fmt.Sprintf("tenant-%02d", i)] = float64(i) * 1.25
		}
		return []HybridPlaceRow{{Config: "hybrid", PerTenant: per, Aggregate: 99}}
	}
	want := RenderHybridPlacement(build())
	for i := 0; i < 50; i++ {
		if got := RenderHybridPlacement(build()); got != want {
			t.Fatalf("render differs between identical builds (iteration %d):\n%s\nvs\n%s", i, got, want)
		}
	}
	// Columns must be in sorted tenant order.
	header := strings.SplitN(want, "\n", 2)[0]
	if !strings.Contains(header, "tenant-00") {
		t.Fatalf("unexpected header: %q", header)
	}
	last := -1
	for i := 0; i < 12; i++ {
		idx := strings.Index(header, fmt.Sprintf("tenant-%02d", i))
		if idx < 0 || idx < last {
			t.Fatalf("tenant columns not in sorted order: %q", header)
		}
		last = idx
	}
}
