package experiments

import (
	"fmt"

	"flattree/internal/addressing"
	"flattree/internal/apps"
	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/recorder"
	"flattree/internal/sdn"
	"flattree/internal/testbed"
	"flattree/internal/traffic"
)

// Fig5 reproduces the addressing example of Figure 5c: the IP addresses of
// a server attached to switch 3 / 8 / 5 under global / local / Clos modes
// with k = 16 / 8 / 4.
func (c Config) Fig5() (string, error) {
	t := &metrics.Table{Header: []string{"Topology ID", "Switch ID", "Server ID", "k", "IP addresses"}}
	for _, row := range []struct {
		topoID, switchID, serverID, k int
	}{
		{0, 3, 2, 16},
		{1, 8, 1, 8},
		{2, 5, 0, 4},
	} {
		addrs, err := addressing.AddressesFor(row.switchID, row.serverID, row.topoID, row.k)
		if err != nil {
			return "", err
		}
		list := ""
		for i, a := range addrs {
			if i > 0 {
				list += " "
			}
			list += a.String()
		}
		t.Add(row.topoID, row.switchID, row.serverID, row.k, list)
	}
	return t.String(), nil
}

// Fig10Result is the testbed iPerf experiment output.
type Fig10Result struct {
	Samples []testbed.Sample
	Events  []testbed.ConversionEvent
	// Plateaus records the steady bandwidth per mode.
	Plateaus map[core.Mode]float64
}

// Fig10 reproduces the Figure 10 experiment: a 5-minute iPerf run on the
// emulated testbed with conversions Clos -> global -> local -> Clos ->
// global, sampled every 0.5 s.
func (c Config) Fig10() (*Fig10Result, error) {
	tb, err := testbed.New()
	if err != nil {
		return nil, err
	}
	tb.Ctrl.SetRecorder(recorder.T("fig10/conversions"))
	schedule := []testbed.ScheduleEntry{
		{At: 60, Mode: core.ModeGlobal},
		{At: 120, Mode: core.ModeLocal},
		{At: 180, Mode: core.ModeClos},
		{At: 240, Mode: core.ModeGlobal},
	}
	samples, events, err := tb.RunIPerf(schedule, 300, 0.5)
	if err != nil {
		return nil, err
	}
	res := &Fig10Result{Samples: samples, Events: events, Plateaus: map[core.Mode]float64{}}
	tb2, err := testbed.New()
	if err != nil {
		return nil, err
	}
	for _, m := range sortedModes() {
		bw, err := tb2.SteadyBandwidth(m)
		if err != nil {
			return nil, err
		}
		res.Plateaus[m] = bw
	}
	return res, nil
}

// Render summarizes plateaus, recovery times, and the headline gain.
func (r *Fig10Result) Render() string {
	t := &metrics.Table{Header: []string{"mode", "steady core bandwidth (Gbps)"}}
	for _, m := range sortedModes() {
		t.Add(m.String(), r.Plateaus[m])
	}
	out := t.String()
	gain := r.Plateaus[core.ModeGlobal]/r.Plateaus[core.ModeClos] - 1
	out += fmt.Sprintf("\nglobal vs Clos core bandwidth gain: %.1f%% (paper: 27.6%%)\n", gain*100)
	et := &metrics.Table{Header: []string{"conversion at (s)", "to", "conversion delay (s)", "traffic recovered by (s)"}}
	for _, e := range r.Events {
		to := core.ModeClos
		if len(e.Report.To) > 0 {
			to = e.Report.To[0]
		}
		et.Add(e.At, to.String(), e.Report.Total, e.RecoverAt)
	}
	return out + et.String()
}

// Table3Row is one conversion delay measurement.
type Table3Row struct {
	Target                                 core.Mode
	OCS, DeleteRules, AddRules, Total      float64
	RulesDeleted, RulesAdded, MaxPerSwitch int
}

// Table3 reproduces the conversion delay breakdown: starting from the
// Figure 10 cycle, converting to global, local, and Clos in turn.
func (c Config) Table3() ([]Table3Row, error) {
	tb, err := testbed.New()
	if err != nil {
		return nil, err
	}
	tb.Ctrl.SetRecorder(recorder.T("table3/conversions"))
	var rows []Table3Row
	for _, m := range []core.Mode{core.ModeGlobal, core.ModeLocal, core.ModeClos} {
		rep, err := tb.Ctrl.Convert(m)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table3Row{
			Target: m, OCS: rep.OCSTime, DeleteRules: rep.DeleteTime,
			AddRules: rep.AddTime, Total: rep.Total,
			RulesDeleted: rep.RulesDeleted, RulesAdded: rep.RulesAdded,
			MaxPerSwitch: tb.Ctrl.MaxRulesPerSwitch(),
		})
	}
	return rows, nil
}

// RenderTable3 formats the rows like the paper's Table 3.
func RenderTable3(rows []Table3Row) string {
	t := &metrics.Table{Header: []string{"Topology", "Configure OCS", "Delete rule", "Add rule", "Total", "max rules/switch"}}
	for _, r := range rows {
		t.Add(r.Target.String(),
			fmt.Sprintf("%.0fms", r.OCS*1000), fmt.Sprintf("%.0fms", r.DeleteRules*1000),
			fmt.Sprintf("%.0fms", r.AddRules*1000), fmt.Sprintf("%.0fms", r.Total*1000),
			r.MaxPerSwitch)
	}
	return t.String()
}

// Fig11Result compares the Spark broadcast and Hadoop shuffle applications
// across modes.
type Fig11Result struct {
	Spark  map[core.Mode]apps.Result
	Hadoop map[core.Mode]apps.Result
}

// Fig11 reproduces §5.4: Word2Vec broadcast (torrent) and Tez Sort shuffle
// on the emulated testbed under the three modes.
func (c Config) Fig11() (*Fig11Result, error) {
	tb, err := testbed.New()
	if err != nil {
		return nil, err
	}
	spark, err := apps.CompareModes(func(m core.Mode) (apps.Result, error) {
		return apps.SparkBroadcast(tb, m, 2*traffic.GB, 1)
	})
	if err != nil {
		return nil, err
	}
	hadoop, err := apps.CompareModes(func(m core.Mode) (apps.Result, error) {
		return apps.HadoopShuffle(tb, m, 4*traffic.GB, 16)
	})
	if err != nil {
		return nil, err
	}
	return &Fig11Result{Spark: spark, Hadoop: hadoop}, nil
}

// Render formats both applications.
func (r *Fig11Result) Render() string {
	t := &metrics.Table{Header: []string{"app", "mode", "data read (s)", "phase duration (s)"}}
	for _, m := range sortedModes() {
		t.Add("Spark broadcast", m.String(), r.Spark[m].ReadDuration, r.Spark[m].PhaseDuration)
	}
	for _, m := range sortedModes() {
		t.Add("Hadoop shuffle", m.String(), r.Hadoop[m].ReadDuration, r.Hadoop[m].PhaseDuration)
	}
	out := t.String()
	sparkGain := 1 - r.Spark[core.ModeGlobal].ReadDuration/r.Spark[core.ModeClos].ReadDuration
	hadoopGain := 1 - r.Hadoop[core.ModeGlobal].ReadDuration/r.Hadoop[core.ModeClos].ReadDuration
	out += fmt.Sprintf("\nread-time reduction global vs Clos: Spark %.1f%% (paper 10%%), Hadoop %.1f%% (paper 10.5%%)\n",
		sparkGain*100, hadoopGain*100)
	return out
}

// RulesResult reports the §4.2/§5.3 network-state accounting per mode.
type RulesResult struct {
	Rows []RulesRow
}

// RulesRow is one mode's state accounting on the testbed.
type RulesRow struct {
	Mode                core.Mode
	Ingress             int
	MaxPrefixRules      int
	TotalPrefixRules    int
	SourceRoutedIngress int
	SourceRoutedTransit int
	// CompiledMax/CompiledTotal count the rules an actual sdn.Compile of
	// the mode's fabric installs; Naive is the per-flow explosion §4.2
	// warns about.
	CompiledMax, CompiledTotal, Naive int
}

// Rules measures the rule counts the testbed reports in §5.3 (prefix
// matching: 242/180/76 max rules per switch) and the source-routing
// alternative of §4.2.2.
func (c Config) Rules() (*RulesResult, error) {
	tb, err := testbed.New()
	if err != nil {
		return nil, err
	}
	res := &RulesResult{}
	for _, m := range sortedModes() {
		if _, err := tb.Ctrl.Convert(m); err != nil {
			return nil, err
		}
		table := tb.Ctrl.Table()
		sc := table.CountStates(48) // 48-port packet switches (Figure 9)
		total := table.TotalPrefixRules()
		realized := tb.Ctrl.Realization().Topo
		assign, err := addressing.Assign(realized, int(m), testbed.K)
		if err != nil {
			return nil, err
		}
		fabric, err := sdn.Compile(realized, table, assign, 0)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, RulesRow{
			Mode: m, Ingress: len(table.Ingress),
			MaxPrefixRules: sc.PrefixMaxPerSwitch, TotalPrefixRules: total,
			SourceRoutedIngress: sc.SourceRoutedIngress,
			SourceRoutedTransit: sc.SourceRoutedTransit,
			CompiledMax:         fabric.MaxRules(),
			CompiledTotal:       fabric.TotalRules(),
			Naive:               sdn.NaiveRuleCount(realized, table),
		})
	}
	return res, nil
}

// Render formats the rule accounting.
func (r *RulesResult) Render() string {
	t := &metrics.Table{Header: []string{
		"mode", "ingress switches", "max prefix rules/switch (paper 242/180/76)",
		"total prefix rules", "compiled max/switch", "compiled total",
		"naive per-flow total", "source-routed ingress (S*k)", "transit (D*C)",
	}}
	for _, row := range r.Rows {
		t.Add(row.Mode.String(), row.Ingress, row.MaxPrefixRules, row.TotalPrefixRules,
			row.CompiledMax, row.CompiledTotal, row.Naive,
			row.SourceRoutedIngress, row.SourceRoutedTransit)
	}
	return t.String()
}

// PropsResult reports the Property 1/2 spreads for every base topology.
type PropsResult struct {
	Rows []PropsRow
}

// PropsRow is the per-core-switch uniformity of one topology and pattern.
type PropsRow struct {
	Topology     string
	Pattern      core.Pattern
	ServerSpread int
	EdgeSpread   int
	AggSpread    int
}

// Props verifies the §3.2 wiring properties on every base topology in
// global mode for both wiring patterns, reporting the max-min spread of
// per-core servers and link types (0 = perfectly uniform).
func (c Config) Props() (*PropsResult, error) {
	res := &PropsResult{}
	for _, p := range c.baseParams() {
		for _, pat := range []core.Pattern{core.Pattern1, core.Pattern2} {
			// One (n, m) feasible under BOTH patterns keeps the
			// comparison fair.
			opt, err := flatTreeOptionsFor(p, pat, core.Pattern1, core.Pattern2)
			if err != nil {
				return nil, err
			}
			opt.Pattern = pat
			nw, err := core.New(p, opt)
			if err != nil {
				return nil, err
			}
			nw.SetMode(core.ModeGlobal)
			r := nw.Realize()
			census := core.CensusCores(r)
			row := PropsRow{Topology: p.Name, Pattern: pat}
			minS, maxS := census[0].Servers, census[0].Servers
			minE, maxE := census[0].ToEdge, census[0].ToEdge
			minA, maxA := census[0].ToAgg, census[0].ToAgg
			for _, cs := range census[1:] {
				minS, maxS = minInt(minS, cs.Servers), maxInt(maxS, cs.Servers)
				minE, maxE = minInt(minE, cs.ToEdge), maxInt(maxE, cs.ToEdge)
				minA, maxA = minInt(minA, cs.ToAgg), maxInt(maxA, cs.ToAgg)
			}
			row.ServerSpread = maxS - minS
			row.EdgeSpread = maxE - minE
			row.AggSpread = maxA - minA
			res.Rows = append(res.Rows, row)
		}
	}
	return res, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Render formats the property spreads.
func (r *PropsResult) Render() string {
	t := &metrics.Table{Header: []string{"topology", "pattern", "server spread", "edge-link spread", "agg-link spread"}}
	for _, row := range r.Rows {
		t.Add(row.Topology, int(row.Pattern), row.ServerSpread, row.EdgeSpread, row.AggSpread)
	}
	return t.String()
}
