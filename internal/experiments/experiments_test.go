package experiments

import (
	"os"
	"strings"
	"testing"

	"flattree/internal/core"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// testConfig keeps experiment tests fast: coarse LP accuracy.
func testConfig() Config { return Config{Seed: 7, Epsilon: 0.35} }

func TestMiniTable2Valid(t *testing.T) {
	for _, p := range MiniTable2() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
		if _, err := core.New(p, flatTreeOptions(p)); err != nil {
			t.Errorf("%s: flat-tree options infeasible: %v", p.Name, err)
		}
	}
}

func TestTable1SmallShape(t *testing.T) {
	// The default reduced instance: mini-1 (128 servers, 8 per rack,
	// 2:1 oversubscribed at the edge) with rack-fit / pod-span /
	// network-wide clusters. Oversubscription matters: with a
	// non-blocking fabric every architecture ties at the NIC bound and
	// the regimes cannot separate (see Table1Params).
	c := testConfig()
	res, err := c.Table1With(c.DefaultTable1Params())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows = %d", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.RawClos <= 0 || row.RawRandomGraph <= 0 || row.RawTwoStage <= 0 {
			t.Fatalf("nonpositive throughput in %+v", row)
		}
		// Normalized minimum must be exactly 1.
		min := row.Clos
		if row.RandomGraph < min {
			min = row.RandomGraph
		}
		if row.TwoStage < min {
			min = row.TwoStage
		}
		if min < 0.999 || min > 1.001 {
			t.Fatalf("row min = %v, want 1", min)
		}
	}
	// Regime check at the extremes: Clos-family wins rack-fit clusters,
	// random graph wins network-wide clusters.
	first, last := res.Rows[0], res.Rows[len(res.Rows)-1]
	if first.Clos < first.RandomGraph {
		t.Fatalf("rack-fit clusters: Clos (%v) below random graph (%v)", first.Clos, first.RandomGraph)
	}
	if last.RandomGraph <= 1 {
		t.Fatalf("network-wide clusters: random graph did not win (%v)", last.RandomGraph)
	}
	if !strings.Contains(res.Render(), "Cluster Size") {
		t.Fatal("render missing header")
	}
}

func TestTable2BuildsBothScales(t *testing.T) {
	c := testConfig()
	res, err := c.Table2()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.GlobalAPL <= 0 || row.ClosAPL <= 0 {
			t.Fatalf("%s: zero APL", row.Name)
		}
		// Flattening the tree shortens average switch-level paths.
		if row.GlobalAPL >= row.ClosAPL {
			t.Errorf("%s: global APL %v not below Clos APL %v", row.Name, row.GlobalAPL, row.ClosAPL)
		}
	}
}

func TestFig6SmallShape(t *testing.T) {
	c := testConfig()
	res, err := c.Fig6With(
		[]Fig6Case{{Topology: "mini-2", Mode: core.ModeGlobal}},
		[]Method{LPMin, LPAvg, MPTCP4, MPTCP8},
		[]traffic.SyntheticPattern{traffic.PatternPermutation},
	)
	if err != nil {
		t.Fatal(err)
	}
	cells := map[Method]float64{}
	for _, cell := range res.Panels[0].Cells {
		cells[cell.Method] = cell.Normalized
	}
	if cells[LPMin] != 1 {
		t.Fatalf("LP minimum normalized to %v, want 1", cells[LPMin])
	}
	// LP average upper-bounds the others on average throughput; MPTCP
	// sits between the LP bounds (Figure 6's qualitative claim).
	if cells[LPAvg] < cells[MPTCP8]*0.95 {
		t.Fatalf("LP average (%v) below MPTCP8 (%v)", cells[LPAvg], cells[MPTCP8])
	}
	if cells[MPTCP8] < cells[MPTCP4]*0.9 {
		t.Fatalf("MPTCP8 (%v) clearly below MPTCP4 (%v)", cells[MPTCP8], cells[MPTCP4])
	}
	if !strings.Contains(res.Render(), "mini-2") {
		t.Fatal("render missing panel name")
	}
}

func TestFig8SmallShape(t *testing.T) {
	c := testConfig()
	res, err := c.Fig8With([]string{"cache"}, []Fig8Network{FTGlobal, FTClosECMP})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Series) != 2 {
		t.Fatalf("series = %d", len(res.Series))
	}
	byNet := map[Fig8Network]Fig8Series{}
	for _, s := range res.Series {
		if len(s.FCTs) == 0 {
			t.Fatalf("%v: no FCTs", s.Network)
		}
		byNet[s.Network] = s
	}
	// §5.2: Clos mode with ECMP/TCP is remarkably worse than flat-tree
	// global with k-shortest-path MPTCP for pod-local cache traffic.
	if byNet[FTGlobal].Median() > byNet[FTClosECMP].Median() {
		t.Fatalf("global median %.3f ms above Clos-ECMP %.3f ms",
			byNet[FTGlobal].Median(), byNet[FTClosECMP].Median())
	}
}

func TestFig5RendersPaperAddresses(t *testing.T) {
	out, err := testConfig().Fig5()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"10.0.24.2", "10.0.27.2", "10.0.64.65", "10.0.40.128"} {
		if !strings.Contains(out, want) {
			t.Fatalf("fig5 output missing %s:\n%s", want, out)
		}
	}
}

func TestTable3AndRules(t *testing.T) {
	c := testConfig()
	rows, err := c.Table3()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Total < r.OCS {
			t.Fatalf("total below OCS: %+v", r)
		}
	}
	rr, err := c.Rules()
	if err != nil {
		t.Fatal(err)
	}
	var maxByMode = map[core.Mode]int{}
	for _, row := range rr.Rows {
		maxByMode[row.Mode] = row.MaxPrefixRules
		if row.SourceRoutedIngress != row.Ingress*4 {
			t.Fatalf("source-routed ingress rules %d != S*k %d", row.SourceRoutedIngress, row.Ingress*4)
		}
		if row.SourceRoutedIngress >= row.MaxPrefixRules*row.Ingress {
			// sanity only; no strict relation
			_ = row
		}
	}
	// Paper's ordering: global(242) > local(180) > Clos(76).
	if !(maxByMode[core.ModeGlobal] > maxByMode[core.ModeLocal] && maxByMode[core.ModeLocal] > maxByMode[core.ModeClos]) {
		t.Fatalf("rule ordering violated: %v", maxByMode)
	}
}

func TestPropsUniform(t *testing.T) {
	c := testConfig()
	res, err := c.Props()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 12 {
		t.Fatalf("rows = %d, want 12 (6 topologies x 2 patterns)", len(res.Rows))
	}
	for _, row := range res.Rows {
		// Property 1 (uniform servers) must hold exactly for both
		// patterns on the minis.
		if row.ServerSpread > 1 {
			t.Errorf("%s pattern %d: server spread %d violates Property 1",
				row.Topology, row.Pattern, row.ServerSpread)
		}
		// Property 2 (link types): the minis use m=2 with g=4, the exact
		// case §3.2 flags — "when h/r is a multiple of m, different pods
		// are likely to repeat the same pattern, thus reducing the
		// wiring diversity. In this case pattern 2 is more favorable."
		// So pattern 2 must be perfectly uniform, while pattern 1 shows
		// a bounded repetition spread.
		if row.Pattern == core.Pattern2 {
			if row.EdgeSpread > 0 || row.AggSpread > 0 {
				t.Errorf("%s pattern 2: link spreads %d/%d, want uniform",
					row.Topology, row.EdgeSpread, row.AggSpread)
			}
		} else if row.EdgeSpread > 4 || row.AggSpread > 4 {
			t.Errorf("%s pattern 1: link spreads %d/%d beyond repetition bound",
				row.Topology, row.EdgeSpread, row.AggSpread)
		}
	}
}

func TestAblationK(t *testing.T) {
	rows, err := testConfig().AblationK()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	// §5.1's claims: small k under-exploits path diversity, and beyond
	// the knee more paths stop helping ("larger k cannot improve the
	// throughput further"). On the profiled reduced topology the knee
	// lands at k=4; the invariants are that diversity helps initially
	// and that k past 8 gains nothing.
	byK := map[int]float64{}
	for _, r := range rows {
		byK[r.K] = r.Throughput
	}
	if byK[4] <= byK[1] {
		t.Fatalf("k=4 (%v) not above k=1 (%v): path diversity gained nothing", byK[4], byK[1])
	}
	if byK[16] > byK[8]*1.05 {
		t.Fatalf("k=16 (%v) still improving over k=8 (%v): saturation claim fails", byK[16], byK[8])
	}
	if byK[8] < byK[4]*0.85 {
		t.Fatalf("k=8 (%v) collapsed versus k=4 (%v)", byK[8], byK[4])
	}
}

func TestAblationSideWiring(t *testing.T) {
	rows, err := testConfig().AblationSideWiring()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	ring, linear := rows[0], rows[1]
	if ring.Linear || !linear.Linear {
		t.Fatal("row order wrong")
	}
	if ring.SideLinks <= linear.SideLinks {
		t.Fatalf("ring side links %d not above linear %d", ring.SideLinks, linear.SideLinks)
	}
	// No strict APL ordering exists: linear wiring degrades its boundary
	// converters to `local`, which adds direct edge-core links that can
	// shorten paths even as side connectivity is lost. The two shapes
	// must stay close.
	if diff := ring.APL/linear.APL - 1; diff > 0.15 || diff < -0.15 {
		t.Fatalf("ring APL %v and linear APL %v diverge beyond 15%%", ring.APL, linear.APL)
	}
}

func TestRunRegistry(t *testing.T) {
	res, err := Run("fig5", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "fig5" || !strings.Contains(res.String(), "10.0.24.2") {
		t.Fatalf("unexpected result %+v", res)
	}
	if _, err := Run("nope", testConfig()); err == nil {
		t.Fatal("unknown experiment accepted")
	}
	if len(Names()) < 14 {
		t.Fatalf("registry has %d experiments", len(Names()))
	}
}

func TestParamsByName(t *testing.T) {
	c := testConfig()
	if _, err := c.paramsByName("mini-3"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.paramsByName("topo-1"); err == nil {
		t.Fatal("full-scale name resolved at reduced scale")
	}
	full := Config{Full: true}
	if _, err := full.paramsByName("topo-4"); err != nil {
		t.Fatal(err)
	}
}

func TestFlatTreeOptionsFeasibleForTable2(t *testing.T) {
	for _, p := range append(MiniTable2(), topo.Table2()...) {
		opt := flatTreeOptions(p)
		if _, err := core.New(p, opt); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestAblationPacketAgreesWithFluid(t *testing.T) {
	rows, err := testConfig().AblationPacket()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[core.Mode]PacketCheckRow{}
	for _, r := range rows {
		byMode[r.Mode] = r
		// Packet-level must track the fluid model within 25% per mode.
		if r.Ratio < 0.75 || r.Ratio > 1.25 {
			t.Errorf("%v: packet/fluid = %.2f outside [0.75, 1.25]", r.Mode, r.Ratio)
		}
	}
	// The headline ordering must survive packet dynamics.
	if byMode[core.ModeGlobal].PacketGbps <= byMode[core.ModeClos].PacketGbps {
		t.Fatalf("packet-level global (%.0f) not above Clos (%.0f)",
			byMode[core.ModeGlobal].PacketGbps, byMode[core.ModeClos].PacketGbps)
	}
}

func TestHybridPlacementWins(t *testing.T) {
	rows, err := testConfig().HybridPlacement()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	hybrid := rows[0]
	if hybrid.Config != "hybrid (planned zones)" {
		t.Fatalf("first row = %s", hybrid.Config)
	}
	bestUniform := 0.0
	for _, r := range rows[1:] {
		if r.Aggregate > bestUniform {
			bestUniform = r.Aggregate
		}
	}
	// §2.1's pitch: matching each tenant's zone beats every one-size
	// topology on aggregate throughput.
	if hybrid.Aggregate <= bestUniform {
		t.Fatalf("hybrid aggregate %.0f not above best uniform %.0f", hybrid.Aggregate, bestUniform)
	}
	// Rack-sized tenants in their Clos zone run at line rate.
	if hybrid.PerTenant["web-1"] < 9.5 {
		t.Fatalf("web-1 in Clos zone at %.2f Gbps, want ~10", hybrid.PerTenant["web-1"])
	}
}

func TestFig8CSVExport(t *testing.T) {
	dir := t.TempDir()
	c := testConfig()
	r, err := c.Fig8With([]string{"web"}, []Fig8Network{FTClosKSP})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.WriteCSV(dir); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(dir + "/fig8_web_flat-tree-clos--k-sp.csv")
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if lines[0] != "fct_ms,cdf" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) < 10 {
		t.Fatalf("only %d CDF points", len(lines))
	}
	// Monotone CDF column ending at 1.
	if !strings.HasSuffix(lines[len(lines)-1], ",1") {
		t.Fatalf("last point %q does not reach cdf=1", lines[len(lines)-1])
	}
}

func TestRunWithCSVFallsBack(t *testing.T) {
	res, err := RunWithCSV("fig5", testConfig(), t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Table, "10.0.24.2") {
		t.Fatal("fallback run lost output")
	}
}

func TestAblationGradualFloor(t *testing.T) {
	rows, err := testConfig().AblationGradual()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	atomic, gradual := rows[0], rows[1]
	if atomic.FloorGbps != 0 {
		t.Fatalf("atomic floor = %v", atomic.FloorGbps)
	}
	if gradual.FloorGbps < 60 {
		t.Fatalf("gradual floor = %v, want well above zero", gradual.FloorGbps)
	}
	if gradual.Duration <= atomic.Duration {
		t.Fatal("gradual not slower than atomic")
	}
}

func TestAblationPacketFCTOrdering(t *testing.T) {
	rows, err := testConfig().AblationPacketFCT()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	byMode := map[core.Mode]PacketFCTRow{}
	for _, r := range rows {
		if r.FluidMedianMs <= 0 || r.PacketMedianMs <= 0 {
			t.Fatalf("%v: empty medians %+v", r.Mode, r)
		}
		byMode[r.Mode] = r
	}
	// The topology ordering must agree across fidelity levels: global
	// beats Clos in both simulators.
	if byMode[core.ModeGlobal].FluidMedianMs >= byMode[core.ModeClos].FluidMedianMs {
		t.Fatal("fluid ordering wrong")
	}
	if byMode[core.ModeGlobal].PacketMedianMs >= byMode[core.ModeClos].PacketMedianMs {
		t.Fatal("packet-level ordering diverged from fluid")
	}
	// And the mode ratio should be in the same ballpark (the absolute
	// FCTs differ: packets pay slow start and losses).
	fluidRatio := byMode[core.ModeClos].FluidMedianMs / byMode[core.ModeGlobal].FluidMedianMs
	pktRatio := byMode[core.ModeClos].PacketMedianMs / byMode[core.ModeGlobal].PacketMedianMs
	if rel := pktRatio / fluidRatio; rel < 0.5 || rel > 2.0 {
		t.Fatalf("mode ratios diverged: fluid %.2f vs packet %.2f", fluidRatio, pktRatio)
	}
}

// TestRegistrySweep executes every registered experiment except the
// slowest (fig6, which TestFig6SmallShape covers via its components) and
// sanity-checks the rendered output. This keeps every runner and renderer
// exercised end to end.
func TestRegistrySweep(t *testing.T) {
	skip := map[string]bool{"fig6": true}
	marker := map[string]string{
		"table1":              "Cluster Size",
		"table2":              "APL global",
		"table3":              "Configure OCS",
		"fig5":                "10.0.24.2",
		"fig7":                "median",
		"fig8":                "flat-tree global",
		"fig10":               "27.6%",
		"fig11":               "Spark broadcast",
		"rules":               "242/180/76",
		"props":               "server spread",
		"cost":                "amplifier-free",
		"hybrid-placement":    "hybrid (planned zones)",
		"ablation-wiring":     "pattern",
		"ablation-profile":    "chosen",
		"ablation-sidewiring": "ring",
		"ablation-k":          "concurrent paths",
		"ablation-failures":   "links failed",
		"churn":               "mean FCT churn",
		"ablation-packet":     "packet/fluid",
		"ablation-packet-fct": "median FCT",
		"ablation-gradual":    "bandwidth floor",
		"fbmix_large":         "~p99 ms",
	}
	for _, name := range Names() {
		if skip[name] {
			continue
		}
		name := name
		t.Run(name, func(t *testing.T) {
			res, err := Run(name, testConfig())
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			want, known := marker[name]
			if !known {
				t.Fatalf("experiment %s has no output marker; add one", name)
			}
			if !strings.Contains(res.Table, want) {
				t.Fatalf("%s output missing %q:\n%s", name, want, res.Table)
			}
		})
	}
}
