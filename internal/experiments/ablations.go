package experiments

import (
	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// The ablations quantify the design choices §3 calls out: pod-core wiring
// pattern 1 vs 2 (§3.2), the (m, n) server-distribution profile (§3.4),
// ring vs linear inter-pod side wiring (§3.3), and the sensitivity of
// MPTCP throughput to k (§5.1).

// AblationWiringRow compares the two pod-core wiring patterns on one base
// topology in global mode.
type AblationWiringRow struct {
	Topology string
	Pattern  core.Pattern
	// APL is the average switch-level path length between ingress
	// switches.
	APL float64
	// PermutationThroughput is the mean MPTCP(8) flow throughput under
	// permutation traffic.
	PermutationThroughput float64
}

// AblationWiring measures both wiring patterns on the base topologies.
func (c Config) AblationWiring() ([]AblationWiringRow, error) {
	var rows []AblationWiringRow
	for _, p := range c.baseParams() {
		for _, pat := range []core.Pattern{core.Pattern1, core.Pattern2} {
			// One (n, m) feasible under BOTH patterns keeps the
			// comparison fair.
			opt, err := flatTreeOptionsFor(p, pat, core.Pattern1, core.Pattern2)
			if err != nil {
				return nil, err
			}
			opt.Pattern = pat
			nw, err := core.New(p, opt)
			if err != nil {
				return nil, err
			}
			nw.SetMode(core.ModeGlobal)
			r := nw.Realize()
			table := routing.BuildKShortest(r.Topo, 8)
			pairs := traffic.Permutation(p.TotalServers(), c.Seed)
			flows, err := c.methodThroughputs(r.Topo, table, pairs, MPTCP8)
			if err != nil {
				return nil, err
			}
			rows = append(rows, AblationWiringRow{
				Topology: p.Name, Pattern: pat,
				APL:                   table.AveragePathLength(),
				PermutationThroughput: metrics.Mean(flows),
			})
		}
	}
	return rows, nil
}

// RenderAblationWiring formats the wiring comparison.
func RenderAblationWiring(rows []AblationWiringRow) string {
	t := &metrics.Table{Header: []string{"topology", "pattern", "APL (switch hops)", "permutation MPTCP8 avg (Gbps)"}}
	for _, r := range rows {
		t.Add(r.Topology, int(r.Pattern), r.APL, r.PermutationThroughput)
	}
	return t.String()
}

// AblationProfileRow is one (n, m) candidate of the §3.4 profiling sweep.
type AblationProfileRow struct {
	N, M int
	APL  float64
	Best bool
}

// AblationProfile sweeps (n, m) for the reduced topo-1 shape and reports
// the average path length of each candidate.
func (c Config) AblationProfile() ([]AblationProfileRow, error) {
	name := "mini-1"
	if c.Full {
		name = "topo-1"
	}
	p, err := c.paramsByName(name)
	if err != nil {
		return nil, err
	}
	stride := 1
	if c.Full {
		stride = 16 // sample servers to bound BFS cost at 4096 servers
	}
	best, all, err := core.ProfileMN(p, core.Pattern1, stride)
	if err != nil {
		return nil, err
	}
	var rows []AblationProfileRow
	for _, cand := range all {
		rows = append(rows, AblationProfileRow{
			N: cand.N, M: cand.M, APL: cand.AvgPathLength,
			Best: cand.N == best.N && cand.M == best.M,
		})
	}
	return rows, nil
}

// RenderAblationProfile formats the profiling sweep.
func RenderAblationProfile(rows []AblationProfileRow) string {
	t := &metrics.Table{Header: []string{"n (4-port)", "m (6-port)", "server-pair APL", "best"}}
	for _, r := range rows {
		mark := ""
		if r.Best {
			mark = "<== chosen"
		}
		t.Add(r.N, r.M, r.APL, mark)
	}
	return t.String()
}

// AblationSideWiringRow compares ring vs linear inter-pod side wiring.
type AblationSideWiringRow struct {
	Topology string
	Linear   bool
	APL      float64
	// SideLinks counts realized inter-pod side links in global mode.
	SideLinks int
}

// AblationSideWiring measures the effect of closing the pod ring (§3.3).
// Ring wiring maximizes inter-pod side links; linear wiring degrades the
// outermost 6-port converters to the local configuration, trading side
// connectivity for direct edge-core links — the experiment quantifies the
// trade.
func (c Config) AblationSideWiring() ([]AblationSideWiringRow, error) {
	name := "mini-1"
	if c.Full {
		name = "topo-1"
	}
	p, err := c.paramsByName(name)
	if err != nil {
		return nil, err
	}
	var rows []AblationSideWiringRow
	for _, linear := range []bool{false, true} {
		opt := flatTreeOptions(p)
		opt.LinearPods = linear
		nw, err := core.New(p, opt)
		if err != nil {
			return nil, err
		}
		nw.SetMode(core.ModeGlobal)
		r := nw.Realize()
		table := routing.BuildKShortest(r.Topo, 4)
		side := 0
		for _, l := range r.Topo.G.Links() {
			na, nb := r.Topo.Nodes[l.A], r.Topo.Nodes[l.B]
			if na.Kind != topo.Server && nb.Kind != topo.Server && na.Pod >= 0 && nb.Pod >= 0 && na.Pod != nb.Pod {
				side++
			}
		}
		rows = append(rows, AblationSideWiringRow{
			Topology: p.Name, Linear: linear,
			APL: table.AveragePathLength(), SideLinks: side,
		})
	}
	return rows, nil
}

// RenderAblationSideWiring formats the side-wiring comparison.
func RenderAblationSideWiring(rows []AblationSideWiringRow) string {
	t := &metrics.Table{Header: []string{"topology", "inter-pod wiring", "APL", "side links"}}
	for _, r := range rows {
		w := "ring"
		if r.Linear {
			w = "linear"
		}
		t.Add(r.Topology, w, r.APL, r.SideLinks)
	}
	return t.String()
}

// AblationKRow is the MPTCP throughput at one path count (§5.1's k
// sensitivity: beyond 8 paths more k does not help).
type AblationKRow struct {
	K          int
	Throughput float64
}

// AblationK sweeps k for permutation traffic on the reduced topo-1 global.
func (c Config) AblationK() ([]AblationKRow, error) {
	name := "mini-1"
	if c.Full {
		name = "topo-1"
	}
	nw, err := c.Network(name)
	if err != nil {
		return nil, err
	}
	nw.SetMode(core.ModeGlobal)
	r := nw.Realize()
	cp := nw.Clos()
	ks := []int{1, 2, 4, 8, 12, 16}
	table := routing.BuildKShortest(r.Topo, ks[len(ks)-1])
	pairs := traffic.Permutation(cp.TotalServers(), c.Seed)
	var rows []AblationKRow
	for _, k := range ks {
		specs := mptcpSpecs(r.Topo, table.WithK(k), pairs, k)
		rates, err := flowsimStatic(r, specs)
		if err != nil {
			return nil, err
		}
		rows = append(rows, AblationKRow{K: k, Throughput: metrics.Mean(rates)})
	}
	return rows, nil
}

// RenderAblationK formats the k sweep.
func RenderAblationK(rows []AblationKRow) string {
	t := &metrics.Table{Header: []string{"k (concurrent paths)", "permutation avg throughput (Gbps)"}}
	for _, r := range rows {
		t.Add(r.K, r.Throughput)
	}
	return t.String()
}

func flowsimStatic(r *core.Realization, specs []flowsim.ConnSpec) ([]float64, error) {
	return flowsim.StaticRates(routing.DirectedCaps(r.Topo.G), specs, topo.DefaultLinkCapacity)
}
