package experiments

import (
	"fmt"
	"sort"

	"flattree/internal/core"
	"flattree/internal/cost"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/telemetry"
	"flattree/internal/topo"
)

// Table2Result reports the constructed evaluation topologies with derived
// quantities and flat-tree augmentation, verifying each builds and
// validates.
type Table2Result struct {
	Rows []Table2Row
}

// Table2Row is one topology's construction report.
type Table2Row struct {
	Name               string
	EdgeSwitches       int
	AggSwitches        int
	CoreSwitches       int
	Servers            int
	ORAtEdge           float64
	N, M               int
	Converters         int
	GlobalAPL, ClosAPL float64
}

// Table2 builds every base topology at the configured scale, augments it
// with converters, and reports shape plus the average path length in Clos
// and global modes — the structural side of Table 2.
func (c Config) Table2() (*Table2Result, error) {
	res := &Table2Result{}
	for _, p := range c.baseParams() {
		nw, err := core.New(p, flatTreeOptions(p))
		if err != nil {
			return nil, err
		}
		nw.SetMode(core.ModeClos)
		rc := nw.Realize()
		if err := rc.Topo.Validate(); err != nil {
			return nil, fmt.Errorf("table2 %s clos: %w", p.Name, err)
		}
		closAPL := routing.BuildKShortest(rc.Topo, 1).AveragePathLength()
		nw.SetMode(core.ModeGlobal)
		rg := nw.Realize()
		if err := rg.Topo.Validate(); err != nil {
			return nil, fmt.Errorf("table2 %s global: %w", p.Name, err)
		}
		globalAPL := routing.BuildKShortest(rg.Topo, 1).AveragePathLength()
		opt := nw.Options()
		res.Rows = append(res.Rows, Table2Row{
			Name:         p.Name,
			EdgeSwitches: p.Pods * p.EdgesPerPod,
			AggSwitches:  p.Pods * p.AggsPerPod,
			CoreSwitches: p.Cores,
			Servers:      p.TotalServers(),
			ORAtEdge:     float64(p.ServersPerEdge) / float64(p.EdgeUplinks),
			N:            opt.N, M: opt.M,
			Converters: nw.NumConverters(),
			GlobalAPL:  globalAPL, ClosAPL: closAPL,
		})
	}
	return res, nil
}

// Render formats the construction report.
func (r *Table2Result) Render() string {
	t := &metrics.Table{Header: []string{
		"topology", "#ES", "#AS", "#CS", "#servers", "OR@ES", "n", "m",
		"#converters", "APL global", "APL clos",
	}}
	for _, row := range r.Rows {
		t.Add(row.Name, row.EdgeSwitches, row.AggSwitches, row.CoreSwitches,
			row.Servers, row.ORAtEdge, row.N, row.M, row.Converters,
			row.GlobalAPL, row.ClosAPL)
	}
	return t.String()
}

// Names lists the registered experiment identifiers.
func Names() []string {
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// registry maps experiment IDs (DESIGN.md's per-experiment index) to
// runners.
var registry = map[string]func(Config) (string, error){
	"table1": func(c Config) (string, error) {
		r, err := c.Table1()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table2": func(c Config) (string, error) {
		r, err := c.Table2()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"table3": func(c Config) (string, error) {
		rows, err := c.Table3()
		if err != nil {
			return "", err
		}
		return RenderTable3(rows), nil
	},
	"fig5": func(c Config) (string, error) { return c.Fig5() },
	"fig6": func(c Config) (string, error) {
		r, err := c.Fig6()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig7": func(c Config) (string, error) {
		r, err := c.Fig7()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig8": func(c Config) (string, error) {
		r, err := c.Fig8()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig10": func(c Config) (string, error) {
		r, err := c.Fig10()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"fig11": func(c Config) (string, error) {
		r, err := c.Fig11()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"rules": func(c Config) (string, error) {
		r, err := c.Rules()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"props": func(c Config) (string, error) {
		r, err := c.Props()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	},
	"ablation-wiring": func(c Config) (string, error) {
		rows, err := c.AblationWiring()
		if err != nil {
			return "", err
		}
		return RenderAblationWiring(rows), nil
	},
	"ablation-profile": func(c Config) (string, error) {
		rows, err := c.AblationProfile()
		if err != nil {
			return "", err
		}
		return RenderAblationProfile(rows), nil
	},
	"ablation-sidewiring": func(c Config) (string, error) {
		rows, err := c.AblationSideWiring()
		if err != nil {
			return "", err
		}
		return RenderAblationSideWiring(rows), nil
	},
	"ablation-k": func(c Config) (string, error) {
		rows, err := c.AblationK()
		if err != nil {
			return "", err
		}
		return RenderAblationK(rows), nil
	},
	"ablation-failures": func(c Config) (string, error) {
		rows, err := c.AblationFailures()
		if err != nil {
			return "", err
		}
		return RenderAblationFailures(rows), nil
	},
	"churn": func(c Config) (string, error) {
		rows, err := c.Churn()
		if err != nil {
			return "", err
		}
		return RenderChurn(rows), nil
	},
	"fbmix_large": func(c Config) (string, error) {
		rows, err := c.FBMix()
		if err != nil {
			return "", err
		}
		return RenderFBMix(rows), nil
	},
	"cost": func(c Config) (string, error) {
		params := c.baseParams()
		return cost.Table(params, cost.DefaultModel(), func(p topo.ClosParams) (*core.Network, error) {
			return core.New(p, flatTreeOptions(p))
		})
	},
	"hybrid-placement": func(c Config) (string, error) {
		rows, err := c.HybridPlacement()
		if err != nil {
			return "", err
		}
		return RenderHybridPlacement(rows), nil
	},
	"ablation-packet-fct": func(c Config) (string, error) {
		rows, err := c.AblationPacketFCT()
		if err != nil {
			return "", err
		}
		return RenderAblationPacketFCT(rows), nil
	},
	"ablation-gradual": func(c Config) (string, error) {
		rows, err := c.AblationGradual()
		if err != nil {
			return "", err
		}
		return RenderAblationGradual(rows), nil
	},
	"ablation-packet": func(c Config) (string, error) {
		rows, err := c.AblationPacket()
		if err != nil {
			return "", err
		}
		return RenderAblationPacket(rows), nil
	},
}

// Run executes a registered experiment by ID and returns the rendered
// result. Every run is wrapped in a root telemetry span named
// "experiment:<id>", so nested conversion and solver spans trace back to
// the experiment that triggered them.
func Run(name string, cfg Config) (Result, error) {
	f, ok := registry[name]
	if !ok {
		return Result{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", name, Names())
	}
	sp := telemetry.StartRootSpan("experiment:"+name, telemetry.Str("id", name))
	defer sp.End()
	table, err := f(cfg)
	if err != nil {
		sp.SetAttr(telemetry.Str("error", err.Error()))
		return Result{}, err
	}
	return Result{Name: name, Table: table}, nil
}
