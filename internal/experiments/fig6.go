package experiments

import (
	"context"
	"fmt"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// Fig6Case identifies one topology/mode panel of Figure 6.
type Fig6Case struct {
	Topology string // base topology name ("topo-1"/"mini-1", ...)
	Mode     core.Mode
}

// Fig6Cell is the average flow throughput of one method on one traffic
// pattern, normalized against LP minimum.
type Fig6Cell struct {
	Pattern    traffic.SyntheticPattern
	Method     Method
	Normalized float64
	RawAvg     float64
}

// Fig6Panel is one subfigure: a topology/mode with all pattern x method
// cells.
type Fig6Panel struct {
	Case  Fig6Case
	Cells []Fig6Cell
}

// Fig6Result reproduces Figure 6: average flow throughput of k-shortest-
// path routing with MPTCP (4/8/12 paths) against the LP bounds, on
// selected flat-tree topologies under the four synthetic patterns.
type Fig6Result struct {
	Panels []Fig6Panel
}

// DefaultFig6Cases returns the panels the paper shows: topo-1 global,
// topo-1 local, topo-2 global, topo-5 global (reduced names at default
// scale).
func (c Config) DefaultFig6Cases() []Fig6Case {
	pfx := "mini"
	if c.Full {
		pfx = "topo"
	}
	return []Fig6Case{
		{pfx + "-1", core.ModeGlobal},
		{pfx + "-1", core.ModeLocal},
		{pfx + "-2", core.ModeGlobal},
		{pfx + "-5", core.ModeGlobal},
	}
}

// Fig6Methods are the schemes compared in Figure 6.
func Fig6Methods() []Method {
	return []Method{LPMin, LPAvg, MPTCP4, MPTCP8, MPTCP12}
}

// Fig6Patterns are the four synthetic workloads of §5.1.
func Fig6Patterns() []traffic.SyntheticPattern {
	return []traffic.SyntheticPattern{
		traffic.PatternPermutation, traffic.PatternPodStride,
		traffic.PatternHotSpot, traffic.PatternManyToMany,
	}
}

// Fig6 runs the default panels.
func (c Config) Fig6() (*Fig6Result, error) {
	return c.Fig6With(c.DefaultFig6Cases(), Fig6Methods(), Fig6Patterns())
}

// Fig6With runs explicit panels, methods, and patterns. Cells are
// independent and run in parallel across CPUs; the k-shortest-path table
// of each panel is built once and shared by every MPTCP/ECMP cell.
func (c Config) Fig6With(cases []Fig6Case, methods []Method, patterns []traffic.SyntheticPattern) (*Fig6Result, error) {
	res := &Fig6Result{Panels: make([]Fig6Panel, len(cases))}
	type job struct {
		panel, cell int
		pairs       []traffic.Pair
		method      Method
		topo        *topo.Topology
		table       *routing.Table
	}
	var jobs []job
	for pi, cs := range cases {
		nw, err := c.Network(cs.Topology)
		if err != nil {
			return nil, err
		}
		nw.SetMode(cs.Mode)
		r := nw.Realize()
		cp := nw.Clos()
		perPod := cp.EdgesPerPod * cp.ServersPerEdge
		var table *routing.Table
		if k := maxK(methods); k > 0 {
			table = routing.BuildKShortestCached(r.Topo, k)
		}
		res.Panels[pi].Case = cs
		for _, pat := range patterns {
			pairs := traffic.Synthetic(pat, cp.TotalServers(), perPod, c.Seed)
			for _, m := range methods {
				res.Panels[pi].Cells = append(res.Panels[pi].Cells, Fig6Cell{Pattern: pat, Method: m})
				jobs = append(jobs, job{
					panel: pi, cell: len(res.Panels[pi].Cells) - 1,
					pairs: pairs, method: m, topo: r.Topo, table: table,
				})
			}
		}
	}

	// Cells are independent; run them on the bounded pool. Each result
	// lands in its preassigned (panel, cell) slot, so the table is
	// byte-identical for any worker count.
	err := parallel.Default().ForEachErr(context.Background(), len(jobs), func(_ context.Context, ji int) error {
		j := jobs[ji]
		flows, err := c.methodThroughputs(j.topo, j.table, j.pairs, j.method)
		if err != nil {
			return fmt.Errorf("fig6 %s/%v %v %v: %w",
				cases[j.panel].Topology, cases[j.panel].Mode, j.pairs[0], j.method, err)
		}
		res.Panels[j.panel].Cells[j.cell].RawAvg = metrics.Mean(flows)
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Normalize each (panel, pattern) group against its LP minimum.
	for pi := range res.Panels {
		lpMin := map[traffic.SyntheticPattern]float64{}
		for _, cell := range res.Panels[pi].Cells {
			if cell.Method == LPMin {
				lpMin[cell.Pattern] = cell.RawAvg
			}
		}
		for ci := range res.Panels[pi].Cells {
			cell := &res.Panels[pi].Cells[ci]
			base := lpMin[cell.Pattern]
			if base <= 0 {
				return nil, fmt.Errorf("fig6 %s: LP minimum average is %v for %v",
					res.Panels[pi].Case.Topology, base, cell.Pattern)
			}
			cell.Normalized = cell.RawAvg / base
		}
	}
	return res, nil
}

// Render formats one table per panel, patterns as rows and methods as
// columns, matching Figure 6's normalization against LP minimum.
func (r *Fig6Result) Render() string {
	out := ""
	for _, p := range r.Panels {
		out += fmt.Sprintf("-- %s %s --\n", p.Case.Topology, p.Case.Mode)
		// Column order from the cell stream.
		var methods []Method
		seen := map[Method]bool{}
		for _, c := range p.Cells {
			if !seen[c.Method] {
				seen[c.Method] = true
				methods = append(methods, c.Method)
			}
		}
		header := []string{"pattern"}
		for _, m := range methods {
			header = append(header, m.String())
		}
		t := &metrics.Table{Header: header}
		byPattern := map[traffic.SyntheticPattern]map[Method]float64{}
		var patterns []traffic.SyntheticPattern
		for _, c := range p.Cells {
			if byPattern[c.Pattern] == nil {
				byPattern[c.Pattern] = map[Method]float64{}
				patterns = append(patterns, c.Pattern)
			}
			byPattern[c.Pattern][c.Method] = c.Normalized
		}
		for _, pat := range patterns {
			row := []interface{}{pat.String()}
			for _, m := range methods {
				row = append(row, byPattern[pat][m])
			}
			t.Add(row...)
		}
		out += t.String()
	}
	return out
}
