package experiments

import (
	"flag"
	"os"
	"path/filepath"
	"testing"

	"flattree/internal/core"
	"flattree/internal/parallel"
	"flattree/internal/traffic"
)

var update = flag.Bool("update", false, "rewrite golden files with current output")

// goldenCompare renders the experiment at one and at eight workers,
// asserts the outputs are byte-identical (the engine's hard determinism
// requirement), and diffs them against the committed golden file. Run
// with -update to regenerate goldens after an intentional output change.
func goldenCompare(t *testing.T, name string, render func() (string, error)) {
	t.Helper()
	byWorkers := map[int]string{}
	for _, workers := range []int{1, 8} {
		parallel.SetDefaultWorkers(workers)
		got, err := render()
		parallel.SetDefaultWorkers(0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		byWorkers[workers] = got
	}
	if byWorkers[1] != byWorkers[8] {
		t.Fatalf("output differs between -workers=1 and -workers=8:\n--- workers=1 ---\n%s\n--- workers=8 ---\n%s",
			byWorkers[1], byWorkers[8])
	}
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(byWorkers[1]), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if byWorkers[1] != string(want) {
		t.Fatalf("%s output drifted from golden file %s:\n--- got ---\n%s\n--- want ---\n%s",
			name, path, byWorkers[1], want)
	}
}

func TestGoldenTable2Mini(t *testing.T) {
	cfg := Config{Seed: 1, Epsilon: 0.25}
	goldenCompare(t, "table2_mini", func() (string, error) {
		r, err := cfg.Table2()
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}

func TestGoldenFig6Small(t *testing.T) {
	cfg := Config{Seed: 1, Epsilon: 0.25}
	cases := []Fig6Case{{"mini-1", core.ModeGlobal}}
	methods := []Method{LPMin, MPTCP4}
	patterns := []traffic.SyntheticPattern{traffic.PatternPermutation, traffic.PatternHotSpot}
	goldenCompare(t, "fig6_small", func() (string, error) {
		r, err := cfg.Fig6With(cases, methods, patterns)
		if err != nil {
			return "", err
		}
		return r.Render(), nil
	})
}

func TestGoldenChurnSmall(t *testing.T) {
	cfg := Config{Seed: 1, Epsilon: 0.25}
	goldenCompare(t, "churn_small", func() (string, error) {
		rows, err := cfg.Churn()
		if err != nil {
			return "", err
		}
		return RenderChurn(rows), nil
	})
}
