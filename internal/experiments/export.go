package experiments

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
)

// CSV export for the figure-shaped experiments: each series becomes one
// file of plot-ready points, so the paper's figures can be regenerated
// with any plotting tool.

// WriteCSV writes one file per (workload, network) series with the FCT CDF
// points: "fct_ms,cdf" rows — the axes of Figure 8.
func (r *Fig8Result) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, s := range r.Series {
		name := fmt.Sprintf("fig8_%s_%s.csv", slug(s.Workload), slug(s.Network.String()))
		f, err := os.Create(filepath.Join(dir, name))
		if err != nil {
			return err
		}
		if err := writeCDF(f, s); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

func writeCDF(w io.Writer, s Fig8Series) error {
	if _, err := fmt.Fprintln(w, "fct_ms,cdf"); err != nil {
		return err
	}
	n := len(s.CDF.X)
	for i, x := range s.CDF.X {
		if _, err := fmt.Fprintf(w, "%g,%g\n", x, float64(i+1)/float64(n)); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSV writes the Figure 10 time series: "t_s,core_bandwidth_gbps".
func (r *Fig10Result) WriteCSV(dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "fig10_core_bandwidth.csv"))
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := fmt.Fprintln(f, "t_s,core_bandwidth_gbps"); err != nil {
		return err
	}
	for _, s := range r.Samples {
		if _, err := fmt.Fprintf(f, "%g,%g\n", s.T, s.CoreBandwidth); err != nil {
			return err
		}
	}
	return f.Close()
}

func slug(s string) string {
	s = strings.ToLower(s)
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= '0' && r <= '9':
			b.WriteRune(r)
		default:
			b.WriteByte('-')
		}
	}
	return strings.Trim(b.String(), "-")
}

// RunWithCSV runs an experiment and, for the figure-shaped ones, also
// writes CSV series into dir. Experiments without series data run
// normally.
func RunWithCSV(name string, cfg Config, dir string) (Result, error) {
	switch name {
	case "fig8":
		r, err := cfg.Fig8()
		if err != nil {
			return Result{}, err
		}
		if err := r.WriteCSV(dir); err != nil {
			return Result{}, err
		}
		return Result{Name: name, Table: r.Render()}, nil
	case "fig10":
		r, err := cfg.Fig10()
		if err != nil {
			return Result{}, err
		}
		if err := r.WriteCSV(dir); err != nil {
			return Result{}, err
		}
		return Result{Name: name, Table: r.Render()}, nil
	}
	return Run(name, cfg)
}
