package experiments

import (
	"fmt"
	"math"
	"sort"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/placement"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// The hybrid-placement experiment demonstrates §3.5/§5.2's operating
// model: a multi-tenant network where each tenant's cluster is placed in
// a zone whose topology suits its size, compared against running the
// whole network in each uniform mode with the same tenants packed
// consecutively. All tenants are active concurrently with intra-tenant
// permutation traffic (every server one full-rate flow to another tenant
// member, MPTCP k=8) — the fabric-stressing pattern of §5.1 confined to
// each tenant — so zones compete for fabric like real neighbors.

// HybridPlaceRow reports one configuration's per-tenant and aggregate
// throughput.
type HybridPlaceRow struct {
	Config string
	// PerTenant maps tenant name to mean flow throughput (Gbps).
	PerTenant map[string]float64
	// Aggregate is the total throughput across all tenant flows.
	Aggregate float64
}

// HybridPlacement runs the comparison on the reduced topo-1 layout.
func (c Config) HybridPlacement() ([]HybridPlaceRow, error) {
	// mini-3 (4:1 oversubscribed at the edge, like topo-3) makes the
	// fabric the binding resource, so zone choice visibly matters; the
	// full scale uses topo-3 for the same reason.
	name := "mini-3"
	if c.Full {
		name = "topo-3"
	}
	p, err := c.paramsByName(name)
	if err != nil {
		return nil, err
	}
	perPod := p.EdgesPerPod * p.ServersPerEdge
	// Mixed tenants: two rack-sized, one pod-sized, one network-scale,
	// sized to ~85% occupancy.
	tenants := []placement.Tenant{
		{Name: "web-1", Size: p.ServersPerEdge},
		{Name: "web-2", Size: p.ServersPerEdge},
		{Name: "analytics", Size: perPod * 3 / 4},
		{Name: "ml-train", Size: perPod * 2},
	}

	plan, err := placement.Place(p, tenants)
	if err != nil {
		return nil, err
	}

	var rows []HybridPlaceRow

	// Hybrid: zones per the plan, tenants at their planned servers.
	hybridServers := map[string][]int{}
	for _, a := range plan.Assignments {
		hybridServers[a.Tenant.Name] = a.Servers
	}
	row, err := c.hybridMeasure(p, "hybrid (planned zones)", plan.PodModes(), tenants, hybridServers)
	if err != nil {
		return nil, err
	}
	rows = append(rows, *row)

	// Uniform baselines: tenants packed consecutively from server 0.
	packed := map[string][]int{}
	next := 0
	for _, t := range tenants {
		var sv []int
		for i := 0; i < t.Size; i++ {
			sv = append(sv, next)
			next++
		}
		packed[t.Name] = sv
	}
	for _, m := range []core.Mode{core.ModeClos, core.ModeLocal, core.ModeGlobal} {
		modes := make([]core.Mode, p.Pods)
		for i := range modes {
			modes[i] = m
		}
		row, err := c.hybridMeasure(p, "uniform "+m.String(), modes, tenants, packed)
		if err != nil {
			return nil, err
		}
		rows = append(rows, *row)
	}
	return rows, nil
}

// hybridMeasure realizes the pod modes and measures concurrent all-to-all
// throughput per tenant.
func (c Config) hybridMeasure(p topo.ClosParams, label string, modes []core.Mode,
	tenants []placement.Tenant, serversOf map[string][]int) (*HybridPlaceRow, error) {
	nw, err := core.New(p, flatTreeOptions(p))
	if err != nil {
		return nil, err
	}
	for pod, m := range modes {
		if err := nw.SetPodMode(pod, m); err != nil {
			return nil, err
		}
	}
	r := nw.Realize()
	table := routing.BuildKShortest(r.Topo, 8)
	servers := r.Topo.Servers()

	var specs []flowsim.ConnSpec
	owner := make([]string, 0) // tenant of each conn
	for _, t := range tenants {
		ids := serversOf[t.Name]
		if len(ids) != t.Size {
			return nil, fmt.Errorf("experiments: tenant %s has %d servers, want %d", t.Name, len(ids), t.Size)
		}
		// Intra-tenant permutation: server i sends to the tenant member
		// halfway around its cluster (a stride derangement).
		stride := len(ids) / 2
		if stride == 0 {
			stride = 1
		}
		for i := range ids {
			j := (i + stride) % len(ids)
			if j == i {
				continue
			}
			paths := table.ServerPaths(servers[ids[i]], servers[ids[j]])
			if len(paths) > 8 {
				paths = paths[:8]
			}
			dp := make([][]int, len(paths))
			for k, pp := range paths {
				dp[k] = routing.DirectedLinkIDs(r.Topo.G, pp)
			}
			specs = append(specs, flowsim.ConnSpec{Paths: dp, Bits: math.Inf(1)})
			owner = append(owner, t.Name)
		}
	}
	rates, err := flowsim.StaticRates(routing.DirectedCaps(r.Topo.G), specs, topo.DefaultLinkCapacity)
	if err != nil {
		return nil, err
	}
	row := &HybridPlaceRow{Config: label, PerTenant: map[string]float64{}}
	count := map[string]int{}
	for i, rate := range rates {
		row.PerTenant[owner[i]] += rate
		count[owner[i]]++
		row.Aggregate += rate
	}
	//flatvet:ordered in-place per-key normalization; keys do not interact
	for name, sum := range row.PerTenant {
		row.PerTenant[name] = sum / float64(count[name])
	}
	return row, nil
}

// RenderHybridPlacement formats the comparison.
func RenderHybridPlacement(rows []HybridPlaceRow) string {
	if len(rows) == 0 {
		return ""
	}
	var names []string
	for n := range rows[0].PerTenant {
		names = append(names, n)
	}
	// Stable order: by name.
	sort.Strings(names)
	header := []string{"configuration"}
	for _, n := range names {
		header = append(header, n+" avg (Gbps)")
	}
	header = append(header, "aggregate (Gbps)")
	t := &metrics.Table{Header: header}
	for _, r := range rows {
		cells := []interface{}{r.Config}
		for _, n := range names {
			cells = append(cells, r.PerTenant[n])
		}
		cells = append(cells, r.Aggregate)
		t.Add(cells...)
	}
	return t.String()
}
