package experiments

import (
	"context"
	"fmt"
	"math"

	"flattree/internal/churn"
	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/parallel"
	"flattree/internal/recorder"
	"flattree/internal/routing"
	"flattree/internal/traffic"
)

// The churn study extends AblationFailures from static failure fractions
// to failures arriving over time while traffic is in flight. A seeded
// trace of link failures and repairs is compiled into simulator events
// with a modeled control-plane reaction (detection + §4.3 rule-update
// latency); flows keep stale paths until the reaction lands, then move to
// surviving k-shortest paths, and disconnected flows stall with bounded
// retry instead of aborting the run. Reported per mode: flow-completion
// time degradation against a churn-free baseline, reroute and stall
// counts, and flows left unfinished at the horizon.

// ChurnRow is one mode's churn-versus-baseline measurement.
type ChurnRow struct {
	Mode core.Mode
	// BaselineMeanFCT and BaselineP99FCT are flow-completion times of the
	// same workload with no failures, in seconds.
	BaselineMeanFCT, BaselineP99FCT float64
	// ChurnMeanFCT and ChurnP99FCT cover flows that finish under churn.
	ChurnMeanFCT, ChurnP99FCT float64
	// Reroutes is the total number of path installations taken by flows
	// after their initial routes.
	Reroutes int
	// Stalled counts flows that spent any time with no usable path.
	Stalled int
	// MeanStall is the mean stall time over stalled flows, in seconds.
	MeanStall float64
	// Unfinished counts flows still incomplete at the horizon.
	Unfinished int
	// MeanReaction is the mean control-plane reaction delay over trace
	// events, in seconds: detection plus the rule-diff update time of the
	// pairs the event actually touched (§4.3).
	MeanReaction float64
}

// Churn runs the failure-over-time study on the reduced topo-1 for Clos
// and global modes: the identical seeded trace and permutation workload,
// so the FCT degradation isolates how each topology absorbs churn.
func (c Config) Churn() ([]ChurnRow, error) {
	name := "mini-1"
	if c.Full {
		name = "topo-1"
	}
	p, err := c.paramsByName(name)
	if err != nil {
		return nil, err
	}
	nFail, horizon := 6, 60.0
	if c.Full {
		nFail = 12
	}
	delay := control.TestbedDelayModel()
	delay.Parallel = true
	modes := []core.Mode{core.ModeClos, core.ModeGlobal}
	rows := make([]ChurnRow, len(modes))
	err = parallel.Default().ForEachErr(context.Background(), len(modes), func(_ context.Context, mi int) error {
		mode := modes[mi]
		nw, err := core.New(p, flatTreeOptions(p))
		if err != nil {
			return err
		}
		nw.SetMode(mode)
		t := nw.Realize().Topo
		rec := recorder.Default()
		rec.Annotate("topology_fingerprint/"+mode.String(), t.Fingerprint())
		servers := t.Servers()
		var conns []churn.Conn
		for _, pr := range traffic.Permutation(len(servers), c.Seed) {
			conns = append(conns, churn.Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 20})
		}
		eng := &churn.Engine{Topo: t, K: 8, Detection: 0.05, Delay: delay,
			Rec: rec.Track("churn/" + mode.String() + "/engine")}
		trace, err := churn.GenerateTraceChecked(t, nFail, 1.0, 0.5, c.Seed+31)
		if err != nil {
			return fmt.Errorf("churn %v: %w", mode, err)
		}
		plan, err := eng.Compile(trace, conns)
		if err != nil {
			return fmt.Errorf("churn %v: %w", mode, err)
		}
		caps := routing.DirectedCaps(t.G)

		base, err := flowsim.NewSim(caps, plan.Specs).Run()
		if err != nil {
			return fmt.Errorf("churn %v baseline: %w", mode, err)
		}
		sim := flowsim.NewSim(caps, plan.Specs)
		sim.Rec = rec.Track("churn/" + mode.String() + "/sim")
		sim.Schedule(plan.Events)
		sim.Horizon = horizon
		res, err := sim.Run()
		if err != nil {
			return fmt.Errorf("churn %v: %w", mode, err)
		}

		row := ChurnRow{Mode: mode}
		var baseFCT, churnFCT, stalls []float64
		for i, r := range base {
			baseFCT = append(baseFCT, r.Finish-plan.Specs[i].Arrival)
		}
		for i, r := range res {
			row.Reroutes += r.Reroutes
			if r.StallTime > 0 {
				row.Stalled++
				stalls = append(stalls, r.StallTime)
			}
			if math.IsInf(r.Finish, 1) {
				row.Unfinished++
				continue
			}
			churnFCT = append(churnFCT, r.Finish-plan.Specs[i].Arrival)
		}
		row.BaselineMeanFCT = metrics.Mean(baseFCT)
		row.BaselineP99FCT = metrics.Percentile(baseFCT, 0.99)
		row.ChurnMeanFCT = metrics.Mean(churnFCT)
		row.ChurnP99FCT = metrics.Percentile(churnFCT, 0.99)
		if len(stalls) > 0 {
			row.MeanStall = metrics.Mean(stalls)
		}
		row.MeanReaction = metrics.Mean(plan.Reactions)
		rows[mi] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// RenderChurn formats the churn study.
func RenderChurn(rows []ChurnRow) string {
	t := &metrics.Table{Header: []string{
		"mode", "mean FCT (s)", "mean FCT churn", "p99 FCT", "p99 FCT churn",
		"reroutes", "stalled", "mean stall (s)", "unfinished", "mean reaction (s)",
	}}
	for _, r := range rows {
		t.Add(r.Mode.String(), r.BaselineMeanFCT, r.ChurnMeanFCT,
			r.BaselineP99FCT, r.ChurnP99FCT,
			r.Reroutes, r.Stalled, r.MeanStall, r.Unfinished, r.MeanReaction)
	}
	return t.String()
}
