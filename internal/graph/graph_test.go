package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// ring returns a cycle graph of n nodes.
func ring(n int) *Graph {
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddLink(i, (i+1)%n, 1)
	}
	return g
}

// grid returns an r x c grid graph; node id = row*c + col.
func grid(r, c int) *Graph {
	g := New(r * c)
	for i := 0; i < r; i++ {
		for j := 0; j < c; j++ {
			if j+1 < c {
				g.AddLink(i*c+j, i*c+j+1, 1)
			}
			if i+1 < r {
				g.AddLink(i*c+j, (i+1)*c+j, 1)
			}
		}
	}
	return g
}

func TestAddLinkAndAccessors(t *testing.T) {
	g := New(3)
	id := g.AddLink(0, 1, 10)
	if got := g.Link(id); got.A != 0 || got.B != 1 || got.Capacity != 10 {
		t.Fatalf("Link(%d) = %+v", id, got)
	}
	if g.NumNodes() != 3 || g.NumLinks() != 1 {
		t.Fatalf("NumNodes=%d NumLinks=%d", g.NumNodes(), g.NumLinks())
	}
	if g.Degree(0) != 1 || g.Degree(2) != 0 {
		t.Fatalf("degrees wrong: %d %d", g.Degree(0), g.Degree(2))
	}
	n := g.AddNode()
	if n != 3 || g.NumNodes() != 4 {
		t.Fatalf("AddNode = %d, NumNodes = %d", n, g.NumNodes())
	}
}

func TestParallelLinks(t *testing.T) {
	g := New(2)
	g.AddLink(0, 1, 1)
	g.AddLink(0, 1, 1)
	if g.NumLinks() != 2 {
		t.Fatalf("want 2 parallel links, got %d", g.NumLinks())
	}
	if got := g.Neighbors(0); len(got) != 1 || got[0] != 1 {
		t.Fatalf("Neighbors(0) = %v", got)
	}
	if g.Degree(0) != 2 {
		t.Fatalf("Degree(0) = %d, want 2 (parallel links count)", g.Degree(0))
	}
}

func TestLinkOtherPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Other on non-endpoint did not panic")
		}
	}()
	l := Link{ID: 0, A: 1, B: 2}
	l.Other(3)
}

func TestAddLinkValidation(t *testing.T) {
	g := New(2)
	for _, bad := range [][2]int{{0, 0}, {0, 5}, {-1, 1}} {
		func() {
			defer func() { recover() }()
			g.AddLink(bad[0], bad[1], 1)
			t.Errorf("AddLink(%d, %d) did not panic", bad[0], bad[1])
		}()
	}
}

func TestBFSDistancesRing(t *testing.T) {
	g := ring(6)
	d := g.BFSDistances(0)
	want := []int{0, 1, 2, 3, 2, 1}
	for i := range want {
		if d[i] != want[i] {
			t.Fatalf("dist[%d] = %d, want %d", i, d[i], want[i])
		}
	}
}

func TestBFSUnreachable(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 1)
	d := g.BFSDistances(0)
	if d[2] != -1 {
		t.Fatalf("dist to isolated node = %d, want -1", d[2])
	}
	if g.Connected() {
		t.Fatal("disconnected graph reported connected")
	}
}

func TestConnected(t *testing.T) {
	if !New(0).Connected() {
		t.Fatal("empty graph should be connected")
	}
	if !ring(5).Connected() {
		t.Fatal("ring should be connected")
	}
}

func TestShortestPath(t *testing.T) {
	g := grid(3, 3)
	p, ok := g.ShortestPath(0, 8)
	if !ok {
		t.Fatal("no path found in grid")
	}
	if p.Len() != 4 {
		t.Fatalf("path length %d, want 4", p.Len())
	}
	if !p.Valid(g) || !p.Loopless() {
		t.Fatalf("invalid path %+v", p)
	}
	if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 8 {
		t.Fatalf("wrong endpoints %v", p.Nodes)
	}
}

func TestShortestPathSelf(t *testing.T) {
	g := ring(4)
	p, ok := g.ShortestPath(2, 2)
	if !ok || p.Len() != 0 || len(p.Nodes) != 1 {
		t.Fatalf("self path = %+v ok=%v", p, ok)
	}
}

func TestKShortestPathsRing(t *testing.T) {
	g := ring(6)
	paths := g.KShortestPaths(0, 3, 4)
	// A 6-ring has exactly two loopless 0->3 paths, both length 3.
	if len(paths) != 2 {
		t.Fatalf("got %d paths, want 2", len(paths))
	}
	for _, p := range paths {
		if p.Len() != 3 || !p.Valid(g) || !p.Loopless() {
			t.Fatalf("bad path %+v", p)
		}
	}
	if equalNodes(paths[0].Nodes, paths[1].Nodes) {
		t.Fatal("duplicate paths returned")
	}
}

func TestKShortestPathsOrderedAndDistinct(t *testing.T) {
	g := grid(4, 4)
	paths := g.KShortestPaths(0, 15, 12)
	if len(paths) == 0 {
		t.Fatal("no paths")
	}
	seen := map[string]bool{}
	last := 0
	for i, p := range paths {
		if !p.Valid(g) {
			t.Fatalf("path %d invalid", i)
		}
		if !p.Loopless() {
			t.Fatalf("path %d has a loop: %v", i, p.Nodes)
		}
		if p.Len() < last {
			t.Fatalf("paths not ordered by length at %d", i)
		}
		last = p.Len()
		k := pathKey(p.Nodes)
		if seen[k] {
			t.Fatalf("duplicate path %v", p.Nodes)
		}
		seen[k] = true
		if p.Nodes[0] != 0 || p.Nodes[len(p.Nodes)-1] != 15 {
			t.Fatalf("path %d endpoints wrong: %v", i, p.Nodes)
		}
	}
	// 4x4 grid: first several shortest paths all have 6 hops; the count of
	// 6-hop paths is C(6,3)=20 >= 12, so all requested must be length 6.
	for i, p := range paths {
		if p.Len() != 6 {
			t.Fatalf("path %d length %d, want 6", i, p.Len())
		}
	}
	if len(paths) != 12 {
		t.Fatalf("got %d paths, want 12", len(paths))
	}
}

func TestKShortestDeterministic(t *testing.T) {
	g := grid(4, 5)
	a := g.KShortestPaths(0, 19, 8)
	b := g.KShortestPaths(0, 19, 8)
	if len(a) != len(b) {
		t.Fatal("nondeterministic path count")
	}
	for i := range a {
		if !equalNodes(a[i].Nodes, b[i].Nodes) {
			t.Fatalf("nondeterministic path %d: %v vs %v", i, a[i].Nodes, b[i].Nodes)
		}
	}
}

func TestKShortestUnreachableAndZero(t *testing.T) {
	g := New(3)
	g.AddLink(0, 1, 1)
	if p := g.KShortestPaths(0, 2, 4); p != nil {
		t.Fatalf("paths to unreachable node: %v", p)
	}
	if p := g.KShortestPaths(0, 1, 0); p != nil {
		t.Fatalf("k=0 returned paths: %v", p)
	}
}

func TestKShortestAllPairs(t *testing.T) {
	g := grid(3, 4)
	pairs := []PairKey{{0, 11}, {11, 0}, {1, 10}, {5, 6}}
	got := g.KShortestAllPairs(pairs, 3)
	if len(got) != len(pairs) {
		t.Fatalf("got %d entries, want %d", len(got), len(pairs))
	}
	for _, pk := range pairs {
		seq := g.KShortestPaths(pk.Src, pk.Dst, 3)
		par := got[pk]
		if len(seq) != len(par) {
			t.Fatalf("pair %v: %d vs %d paths", pk, len(par), len(seq))
		}
		for i := range seq {
			if !equalNodes(seq[i].Nodes, par[i].Nodes) {
				t.Fatalf("pair %v path %d differs", pk, i)
			}
		}
	}
}

func TestAveragePathLength(t *testing.T) {
	g := ring(4)
	nodes := []int{0, 1, 2, 3}
	// Distances: 8 pairs at distance 1, 4 at distance 2 => avg = 16/12.
	got := g.AveragePathLength(nodes)
	want := 16.0 / 12.0
	if diff := got - want; diff > 1e-12 || diff < -1e-12 {
		t.Fatalf("APL = %v, want %v", got, want)
	}
}

func TestDiameter(t *testing.T) {
	g := grid(3, 3)
	all := make([]int, 9)
	for i := range all {
		all[i] = i
	}
	if d := g.Diameter(all); d != 4 {
		t.Fatalf("diameter = %d, want 4", d)
	}
}

func TestClone(t *testing.T) {
	g := ring(4)
	c := g.Clone()
	c.AddLink(0, 2, 1)
	if g.NumLinks() != 4 || c.NumLinks() != 5 {
		t.Fatalf("clone not independent: %d, %d", g.NumLinks(), c.NumLinks())
	}
}

func TestPathValidRejectsGarbage(t *testing.T) {
	g := ring(4)
	bad := Path{Nodes: []int{0, 2}, Links: []int{0}}
	if bad.Valid(g) {
		t.Fatal("path with wrong link accepted")
	}
	empty := Path{}
	if empty.Valid(g) {
		t.Fatal("empty path accepted")
	}
}

// Property: on random connected graphs, KShortestPaths returns loopless,
// valid, distinct paths in nondecreasing length order, and the first has
// BFS-optimal length.
func TestKShortestProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(12)
		g := New(n)
		// Random spanning tree for connectivity, then extra links.
		for i := 1; i < n; i++ {
			g.AddLink(i, rng.Intn(i), 1)
		}
		extra := rng.Intn(2 * n)
		for e := 0; e < extra; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddLink(a, b, 1)
			}
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		k := 1 + rng.Intn(6)
		paths := g.KShortestPaths(src, dst, k)
		if len(paths) == 0 || len(paths) > k {
			return false
		}
		bfs := g.BFSDistances(src)
		if paths[0].Len() != bfs[dst] {
			return false
		}
		seen := map[string]bool{}
		last := 0
		for _, p := range paths {
			if !p.Valid(g) || !p.Loopless() || p.Len() < last {
				return false
			}
			last = p.Len()
			key := pathKey(p.Nodes)
			if seen[key] {
				return false
			}
			seen[key] = true
			if p.Nodes[0] != src || p.Nodes[len(p.Nodes)-1] != dst {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestKShortestPathsBannedAvoidsBans checks the incremental-repair entry
// point: banned links never appear in any returned path, a nil ban set
// reproduces KShortestPaths exactly, and banning a cut disconnects.
func TestKShortestPathsBannedAvoidsBans(t *testing.T) {
	g := grid(3, 4)
	src, dst := 0, 11
	plain := g.KShortestPaths(src, dst, 4)
	nilBanned := g.KShortestPathsBanned(src, dst, 4, nil)
	if len(plain) != len(nilBanned) {
		t.Fatalf("nil ban set: %d paths, want %d", len(nilBanned), len(plain))
	}
	for i := range plain {
		if !equalNodes(plain[i].Nodes, nilBanned[i].Nodes) {
			t.Fatalf("nil ban set path %d = %v, want %v", i, nilBanned[i].Nodes, plain[i].Nodes)
		}
	}

	banned := map[int]bool{plain[0].Links[0]: true, plain[0].Links[1]: true}
	for _, p := range g.KShortestPathsBanned(src, dst, 4, banned) {
		if !p.Valid(g) || !p.Loopless() {
			t.Fatalf("invalid banned-Yen path %v", p)
		}
		for _, id := range p.Links {
			if banned[id] {
				t.Fatalf("path %v uses banned link %d", p.Nodes, id)
			}
		}
	}

	// Banning every link incident to src disconnects it.
	cut := map[int]bool{}
	for _, id := range g.Incident(src) {
		cut[id] = true
	}
	if got := g.KShortestPathsBanned(src, dst, 4, cut); got != nil {
		t.Fatalf("cut source still yields paths: %v", got)
	}
}

// TestKShortestPathsBannedMatchesRebuild pins the equivalence the
// incremental route table relies on: Yen with a banned-link set equals
// Yen on a graph rebuilt without those links (same node sequences, same
// order), across random graphs, ban sets, and parallel links.
func TestKShortestPathsBannedMatchesRebuild(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(10)
		g := New(n)
		for i := 1; i < n; i++ {
			g.AddLink(i, rng.Intn(i), 1)
		}
		extra := rng.Intn(3 * n)
		for e := 0; e < extra; e++ {
			a, b := rng.Intn(n), rng.Intn(n)
			if a != b {
				g.AddLink(a, b, 1) // may create parallel links
			}
		}
		banned := map[int]bool{}
		for _, id := range rng.Perm(g.NumLinks())[:rng.Intn(g.NumLinks())] {
			if rng.Intn(2) == 0 {
				banned[id] = true
			}
		}
		// Rebuild without the banned links, preserving relative link order,
		// and remember each rebuilt link's original ID.
		rb := New(n)
		var origID []int
		for _, l := range g.Links() {
			if banned[l.ID] {
				continue
			}
			rb.AddLink(l.A, l.B, l.Capacity)
			origID = append(origID, l.ID)
		}
		src, dst := rng.Intn(n), rng.Intn(n)
		if src == dst {
			dst = (dst + 1) % n
		}
		k := 1 + rng.Intn(6)
		got := g.KShortestPathsBanned(src, dst, k, banned)
		want := rb.KShortestPaths(src, dst, k)
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if !equalNodes(got[i].Nodes, want[i].Nodes) {
				return false
			}
			for j, id := range want[i].Links {
				if got[i].Links[j] != origID[id] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}
