package graph

import (
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"flattree/internal/parallel"
)

// TestKShortestAllPairsGoroutineBound is the regression test for the
// unbounded fan-out KShortestAllPairs once had (one goroutine per pair —
// thousands of goroutines on a k=16 fabric). All-pairs Yen now runs on the
// bounded pool, so peak goroutine count during a many-pair computation
// must stay within pool size + slack of the pre-call baseline, however
// many pairs are requested.
func TestKShortestAllPairsGoroutineBound(t *testing.T) {
	const workers = 4
	parallel.SetDefaultWorkers(workers)
	defer parallel.SetDefaultWorkers(0)

	// A ring with chords: enough nodes and path diversity that Yen does
	// real work for every one of the ~1.6k ordered pairs.
	const n = 40
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddLink(i, (i+1)%n, 1)
		g.AddLink(i, (i+7)%n, 1)
	}
	var pairs []PairKey
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				pairs = append(pairs, PairKey{Src: a, Dst: b})
			}
		}
	}

	base := runtime.NumGoroutine()
	stop := make(chan struct{})
	sampled := make(chan struct{})
	var peak atomic.Int64
	go func() {
		defer close(sampled)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
			time.Sleep(20 * time.Microsecond)
		}
	}()

	out := g.KShortestAllPairs(pairs, 4)
	close(stop)
	<-sampled

	if len(out) != len(pairs) {
		t.Fatalf("got %d pair entries, want %d", len(out), len(pairs))
	}
	// Slack: the sampler goroutine plus whatever the test harness runs.
	if got, limit := peak.Load(), int64(base+workers+4); got > limit {
		t.Fatalf("peak goroutine count %d exceeds baseline %d + pool size %d + slack (unbounded fan-out regression)",
			got, base, workers)
	}
}

// TestKShortestAllPairsDeterministicAcrossWorkerCounts pins the hard
// determinism requirement: the same input yields an identical table with
// 1 worker and with many.
func TestKShortestAllPairsDeterministicAcrossWorkerCounts(t *testing.T) {
	const n = 16
	g := New(n)
	for i := 0; i < n; i++ {
		g.AddLink(i, (i+1)%n, 1)
		g.AddLink(i, (i+5)%n, 1)
	}
	var pairs []PairKey
	for a := 0; a < n; a++ {
		for b := 0; b < n; b++ {
			if a != b {
				pairs = append(pairs, PairKey{Src: a, Dst: b})
			}
		}
	}

	run := func(workers int) map[PairKey][]Path {
		parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(0)
		return g.KShortestAllPairs(pairs, 3)
	}
	serial := run(1)
	wide := run(8)
	if len(serial) != len(wide) {
		t.Fatalf("table sizes differ: %d vs %d", len(serial), len(wide))
	}
	for pk, want := range serial {
		got := wide[pk]
		if len(got) != len(want) {
			t.Fatalf("pair %v: %d paths vs %d", pk, len(got), len(want))
		}
		for i := range want {
			if !equalNodes(got[i].Nodes, want[i].Nodes) {
				t.Fatalf("pair %v path %d differs: %v vs %v", pk, i, got[i].Nodes, want[i].Nodes)
			}
		}
	}
}
