package graph

import "testing"

// Benchmarks for the routing-critical path algorithms.

func benchGraph() *Graph {
	// A mini-1-shaped switch graph: 48 switches, dense pod meshes.
	g := New(48)
	for pod := 0; pod < 4; pod++ {
		for e := 0; e < 4; e++ {
			for a := 0; a < 4; a++ {
				g.AddLink(pod*8+e, pod*8+4+a, 10)
			}
		}
	}
	for c := 0; c < 16; c++ {
		core := 32 + c
		for pod := 0; pod < 4; pod++ {
			g.AddLink(pod*8+4+(c%4), core, 10)
		}
	}
	return g
}

func BenchmarkBFSDistances(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.BFSDistances(i % g.NumNodes())
	}
}

func BenchmarkShortestPath(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.ShortestPath(0, 47)
	}
}

func BenchmarkKShortestPaths8(b *testing.B) {
	g := benchGraph()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		g.KShortestPaths(0, 47, 8)
	}
}
