// Package graph provides the undirected capacitated multigraph that all
// flat-tree topologies are realized on, together with the path algorithms
// the routing and evaluation layers need: breadth-first shortest paths,
// Dijkstra over weighted links, and Yen's k-shortest loopless paths.
//
// Nodes are dense integer IDs. Links are explicit objects so that parallel
// links (which flat-tree's converter rewiring can create between the same
// switch pair) keep distinct identities and capacities.
package graph

import (
	"fmt"
	"sort"
)

// Link is one undirected edge of the multigraph. A and B are node IDs;
// Capacity is in abstract bandwidth units (the simulator uses Gbps).
type Link struct {
	ID       int
	A, B     int
	Capacity float64
}

// Other returns the endpoint of l that is not n. It panics if n is not an
// endpoint, because that always indicates a wiring bug.
func (l Link) Other(n int) int {
	switch n {
	case l.A:
		return l.B
	case l.B:
		return l.A
	}
	panic(fmt.Sprintf("graph: node %d is not an endpoint of link %d (%d-%d)", n, l.ID, l.A, l.B))
}

// Graph is an undirected multigraph. The zero value is an empty graph ready
// for use.
type Graph struct {
	n     int
	links []Link
	adj   [][]int // node -> incident link IDs
}

// New returns a graph with n nodes and no links.
func New(n int) *Graph {
	return &Graph{n: n, adj: make([][]int, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// NumLinks returns the number of links.
func (g *Graph) NumLinks() int { return len(g.links) }

// AddNode appends a new node and returns its ID.
func (g *Graph) AddNode() int {
	g.adj = append(g.adj, nil)
	g.n++
	return g.n - 1
}

// AddLink connects a and b with the given capacity and returns the link ID.
func (g *Graph) AddLink(a, b int, capacity float64) int {
	if a < 0 || a >= g.n || b < 0 || b >= g.n {
		panic(fmt.Sprintf("graph: AddLink(%d, %d) out of range [0, %d)", a, b, g.n))
	}
	if a == b {
		panic(fmt.Sprintf("graph: self loop on node %d", a))
	}
	id := len(g.links)
	g.links = append(g.links, Link{ID: id, A: a, B: b, Capacity: capacity})
	g.adj[a] = append(g.adj[a], id)
	g.adj[b] = append(g.adj[b], id)
	return id
}

// Link returns the link with the given ID.
func (g *Graph) Link(id int) Link { return g.links[id] }

// Links returns all links. The slice is owned by the graph; callers must not
// modify it.
func (g *Graph) Links() []Link { return g.links }

// Incident returns the IDs of links incident to node n. The slice is owned
// by the graph; callers must not modify it.
func (g *Graph) Incident(n int) []int { return g.adj[n] }

// Degree returns the number of links incident to n.
func (g *Graph) Degree(n int) int { return len(g.adj[n]) }

// Neighbors returns the distinct neighbor node IDs of n in ascending order.
func (g *Graph) Neighbors(n int) []int {
	seen := make(map[int]bool, len(g.adj[n]))
	var out []int
	for _, id := range g.adj[n] {
		m := g.links[id].Other(n)
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	sort.Ints(out)
	return out
}

// HasLinkBetween reports whether at least one link directly connects a and b.
func (g *Graph) HasLinkBetween(a, b int) bool {
	for _, id := range g.adj[a] {
		if g.links[id].Other(a) == b {
			return true
		}
	}
	return false
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{n: g.n, links: make([]Link, len(g.links)), adj: make([][]int, len(g.adj))}
	copy(c.links, g.links)
	for i, a := range g.adj {
		c.adj[i] = append([]int(nil), a...)
	}
	return c
}

// Path is a walk through the graph: Nodes has one more element than Links,
// and Links[i] connects Nodes[i] to Nodes[i+1].
type Path struct {
	Nodes []int
	Links []int
}

// Len returns the hop count of the path (number of links).
func (p Path) Len() int { return len(p.Links) }

// Valid reports whether the path is structurally consistent with g.
func (p Path) Valid(g *Graph) bool {
	if len(p.Nodes) != len(p.Links)+1 || len(p.Nodes) == 0 {
		return false
	}
	for i, id := range p.Links {
		if id < 0 || id >= g.NumLinks() {
			return false
		}
		l := g.Link(id)
		if !(l.A == p.Nodes[i] && l.B == p.Nodes[i+1]) && !(l.B == p.Nodes[i] && l.A == p.Nodes[i+1]) {
			return false
		}
	}
	return true
}

// Loopless reports whether the path visits each node at most once.
func (p Path) Loopless() bool {
	seen := make(map[int]bool, len(p.Nodes))
	for _, n := range p.Nodes {
		if seen[n] {
			return false
		}
		seen[n] = true
	}
	return true
}

// equalNodes reports whether two paths visit the same node sequence.
func equalNodes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// BFSDistances returns the hop distance from src to every node, with -1 for
// unreachable nodes.
func (g *Graph) BFSDistances(src int) []int {
	dist := make([]int, g.n)
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[u] {
			v := g.links[id].Other(u)
			if dist[v] < 0 {
				dist[v] = dist[u] + 1
				queue = append(queue, v)
			}
		}
	}
	return dist
}

// Connected reports whether every node is reachable from node 0. The empty
// graph is connected.
func (g *Graph) Connected() bool {
	if g.n == 0 {
		return true
	}
	dist := g.BFSDistances(0)
	for _, d := range dist {
		if d < 0 {
			return false
		}
	}
	return true
}

// ShortestPath returns a minimum-hop path from src to dst, or ok=false when
// dst is unreachable. Ties are broken deterministically by link insertion
// order.
func (g *Graph) ShortestPath(src, dst int) (Path, bool) {
	return g.shortestPathFiltered(src, dst, nil, nil)
}

// shortestPathFiltered is BFS that ignores banned links and banned nodes
// (both optional). src itself is never banned.
func (g *Graph) shortestPathFiltered(src, dst int, bannedLinks map[int]bool, bannedNodes map[int]bool) (Path, bool) {
	if src == dst {
		return Path{Nodes: []int{src}}, true
	}
	prevLink := make([]int, g.n)
	for i := range prevLink {
		prevLink[i] = -1
	}
	visited := make([]bool, g.n)
	visited[src] = true
	queue := []int{src}
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		for _, id := range g.adj[u] {
			if bannedLinks[id] {
				continue
			}
			v := g.links[id].Other(u)
			if visited[v] || bannedNodes[v] {
				continue
			}
			visited[v] = true
			prevLink[v] = id
			if v == dst {
				return g.tracePath(src, dst, prevLink), true
			}
			queue = append(queue, v)
		}
	}
	return Path{}, false
}

func (g *Graph) tracePath(src, dst int, prevLink []int) Path {
	var nodes, links []int
	for at := dst; at != src; {
		id := prevLink[at]
		links = append(links, id)
		nodes = append(nodes, at)
		at = g.links[id].Other(at)
	}
	nodes = append(nodes, src)
	reverseInts(nodes)
	reverseInts(links)
	return Path{Nodes: nodes, Links: links}
}

func reverseInts(s []int) {
	for i, j := 0, len(s)-1; i < j; i, j = i+1, j-1 {
		s[i], s[j] = s[j], s[i]
	}
}

// AveragePathLength returns the mean BFS hop distance over all ordered pairs
// drawn from nodes. Unreachable pairs are ignored; it returns 0 when there
// are no reachable pairs.
func (g *Graph) AveragePathLength(nodes []int) float64 {
	inSet := make(map[int]bool, len(nodes))
	for _, n := range nodes {
		inSet[n] = true
	}
	var total, count int64
	for _, s := range nodes {
		dist := g.BFSDistances(s)
		for _, t := range nodes {
			if t == s || dist[t] < 0 {
				continue
			}
			total += int64(dist[t])
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return float64(total) / float64(count)
}

// Diameter returns the maximum finite BFS distance between any pair of the
// given nodes.
func (g *Graph) Diameter(nodes []int) int {
	max := 0
	for _, s := range nodes {
		dist := g.BFSDistances(s)
		for _, t := range nodes {
			if dist[t] > max {
				max = dist[t]
			}
		}
	}
	return max
}
