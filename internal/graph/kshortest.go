package graph

import (
	"container/heap"
	"maps"

	"flattree/internal/parallel"
	"flattree/internal/telemetry"
)

// KShortestPaths returns up to k loopless minimum-hop paths from src to dst
// using Yen's algorithm (Yen 1971), the algorithm the paper adopts for
// k-shortest-path routing. Paths are ordered by increasing hop count; ties
// are broken by deterministic BFS order so results are reproducible.
func (g *Graph) KShortestPaths(src, dst, k int) []Path {
	return g.KShortestPathsBanned(src, dst, k, nil)
}

// KShortestPathsBanned is KShortestPaths on the subgraph that excludes the
// banned links — the entry point incremental route repair uses to re-route
// around masked (failed) links without rebuilding a pruned graph. The
// banned set is read-only; nil means no links are banned. Determinism
// matches KShortestPaths: for any banned set, the same graph yields the
// same paths in the same order.
func (g *Graph) KShortestPathsBanned(src, dst, k int, banned map[int]bool) []Path {
	if k <= 0 {
		return nil
	}
	first, ok := g.shortestPathFiltered(src, dst, banned, nil)
	if !ok {
		return nil
	}
	paths := []Path{first}
	// Candidate heap of deviation paths, ordered by length then by
	// discovery sequence for determinism.
	cands := &pathHeap{}
	seen := map[string]bool{pathKey(first.Nodes): true}
	seq := 0

	for len(paths) < k {
		prev := paths[len(paths)-1]
		// Spur from every node of the previous path except the last.
		for i := 0; i < len(prev.Nodes)-1; i++ {
			spurNode := prev.Nodes[i]
			rootNodes := prev.Nodes[:i+1]

			bannedLinks := make(map[int]bool, len(banned)+2)
			maps.Copy(bannedLinks, banned)
			for _, p := range paths {
				if len(p.Nodes) > i && equalNodes(p.Nodes[:i+1], rootNodes) && len(p.Links) > i {
					bannedLinks[p.Links[i]] = true
				}
			}
			bannedNodes := make(map[int]bool, i)
			for _, n := range rootNodes[:i] {
				bannedNodes[n] = true
			}

			spur, ok := g.shortestPathFiltered(spurNode, dst, bannedLinks, bannedNodes)
			if !ok {
				continue
			}
			total := Path{
				Nodes: append(append([]int(nil), rootNodes...), spur.Nodes[1:]...),
				Links: append(append([]int(nil), prev.Links[:i]...), spur.Links...),
			}
			key := pathKey(total.Nodes)
			if seen[key] {
				continue
			}
			seen[key] = true
			heap.Push(cands, candPath{path: total, seq: seq})
			seq++
		}
		if cands.Len() == 0 {
			break
		}
		next := heap.Pop(cands).(candPath)
		paths = append(paths, next.path)
	}
	return paths
}

func pathKey(nodes []int) string {
	// Compact byte encoding; node IDs fit in 4 bytes each.
	b := make([]byte, 0, len(nodes)*4)
	for _, n := range nodes {
		b = append(b, byte(n), byte(n>>8), byte(n>>16), byte(n>>24))
	}
	return string(b)
}

type candPath struct {
	path Path
	seq  int
}

type pathHeap []candPath

func (h pathHeap) Len() int { return len(h) }
func (h pathHeap) Less(i, j int) bool {
	if h[i].path.Len() != h[j].path.Len() {
		return h[i].path.Len() < h[j].path.Len()
	}
	return h[i].seq < h[j].seq
}
func (h pathHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *pathHeap) Push(x interface{}) { *h = append(*h, x.(candPath)) }
func (h *pathHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}

// PairKey identifies an ordered (src, dst) node pair in path tables.
type PairKey struct{ Src, Dst int }

// KShortestAllPairs computes k-shortest paths for every ordered pair in
// pairs on the shared bounded worker pool (at most parallel.DefaultWorkers
// goroutines, whatever the pair count). The result maps each pair to its
// path list. Pair computations are independent, mirroring the paper's note
// that k-shortest-path routing parallelizes trivially (§4.3); results are
// collected by index, so the table is identical for any worker count.
func (g *Graph) KShortestAllPairs(pairs []PairKey, k int) map[PairKey][]Path {
	results, _ := parallel.Map(parallel.Default(), len(pairs), func(i int) ([]Path, error) {
		return g.KShortestPaths(pairs[i].Src, pairs[i].Dst, k), nil
	})
	out := make(map[PairKey][]Path, len(pairs))
	var nPaths int64
	for i, p := range pairs {
		out[p] = results[i]
		nPaths += int64(len(results[i]))
	}
	telemetry.C("graph_yen_pairs_total").Add(int64(len(pairs)))
	telemetry.C("graph_yen_paths_total").Add(nPaths)
	return out
}
