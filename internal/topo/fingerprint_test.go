package topo

import "testing"

func fpClos(t *testing.T, name string) *Topology {
	t.Helper()
	tp, err := BuildClos(ClosParams{
		Name: name, Pods: 2, EdgesPerPod: 2, AggsPerPod: 2,
		ServersPerEdge: 2, EdgeUplinks: 2, AggUplinks: 2, Cores: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tp
}

func TestFingerprintStableAcrossRebuilds(t *testing.T) {
	a := fpClos(t, "fp-a")
	b := fpClos(t, "fp-a")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("identical builds produced different fingerprints")
	}
	if a.Fingerprint() != a.Fingerprint() {
		t.Fatal("fingerprint is not deterministic")
	}
}

func TestFingerprintIgnoresName(t *testing.T) {
	a := fpClos(t, "one")
	b := fpClos(t, "two")
	if a.Fingerprint() != b.Fingerprint() {
		t.Fatal("name changed the fingerprint")
	}
}

func TestFingerprintSeesStructure(t *testing.T) {
	a := fpClos(t, "fp")
	b := fpClos(t, "fp")
	sw := b.Switches()
	b.G.AddLink(sw[0], sw[len(sw)-1], DefaultLinkCapacity)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("extra link did not change the fingerprint")
	}

	c := fpClos(t, "fp")
	links := c.G.Links()
	links[0].Capacity = 40
	if a.Fingerprint() == c.Fingerprint() {
		t.Fatal("capacity change did not change the fingerprint")
	}
}
