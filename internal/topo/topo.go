// Package topo defines the data center topology model shared by every
// network architecture in this repository, and provides builders for the
// architectures the paper compares flat-tree against: generic Clos networks
// (Table 2 parameterization), k-ary fat-trees, Jellyfish-style random
// regular graphs, and two-stage (regional) random graphs.
//
// A Topology wraps a graph.Graph with node roles (server / edge / agg /
// core) and locality structure (pod and rack membership), which the traffic
// generators and the flat-tree conversion machinery both need.
package topo

import (
	"fmt"

	"flattree/internal/graph"
)

// Kind classifies a topology node.
type Kind int

const (
	// Server is an end host with a single uplink.
	Server Kind = iota
	// Edge is a top-of-rack (ingress/egress) switch.
	Edge
	// Agg is a pod aggregation switch.
	Agg
	// Core is a network-core switch.
	Core
)

var kindNames = [...]string{"server", "edge", "agg", "core"}

func (k Kind) String() string {
	if k < 0 || int(k) >= len(kindNames) {
		return fmt.Sprintf("Kind(%d)", int(k))
	}
	return kindNames[k]
}

// Node describes one element of the network.
type Node struct {
	ID   int
	Kind Kind
	// Pod is the pod index for edge/agg switches and servers; -1 for core
	// switches (and for switches of unstructured topologies).
	Pod int
	// Index is the node's rank within its kind (e.g. edge switch 3 of the
	// network, or server 17).
	Index int
	// LocalIndex is the node's rank within its kind inside its pod; -1
	// when not applicable.
	LocalIndex int
}

// DefaultLinkCapacity is the link bandwidth used by all builders, in Gbps.
// The paper's simulations and testbed use 10 Gbps links throughout.
const DefaultLinkCapacity = 10.0

// Topology is a data center network: a capacitated multigraph plus node
// roles and structure.
type Topology struct {
	Name  string
	G     *graph.Graph
	Nodes []Node

	servers []int
	edges   []int
	aggs    []int
	cores   []int
	// attach[serverID] = switch the server is wired to (servers have
	// exactly one uplink in every architecture in the paper).
	attach map[int]int
	// pods is the number of pods, 0 for unstructured topologies.
	pods int
}

// NewTopology returns an empty named topology.
func NewTopology(name string) *Topology {
	return &Topology{Name: name, G: graph.New(0), attach: map[int]int{}}
}

// AddNode appends a node of the given kind and returns its ID.
func (t *Topology) AddNode(kind Kind, pod int) int {
	id := t.G.AddNode()
	n := Node{ID: id, Kind: kind, Pod: pod, LocalIndex: -1}
	switch kind {
	case Server:
		n.Index = len(t.servers)
		t.servers = append(t.servers, id)
	case Edge:
		n.Index = len(t.edges)
		t.edges = append(t.edges, id)
	case Agg:
		n.Index = len(t.aggs)
		t.aggs = append(t.aggs, id)
	case Core:
		n.Index = len(t.cores)
		t.cores = append(t.cores, id)
	}
	t.Nodes = append(t.Nodes, n)
	return id
}

// AddLink wires two nodes at DefaultLinkCapacity and returns the link ID.
func (t *Topology) AddLink(a, b int) int {
	return t.G.AddLink(a, b, DefaultLinkCapacity)
}

// AttachServer wires server s to switch sw and records the attachment.
func (t *Topology) AttachServer(s, sw int) {
	if t.Nodes[s].Kind != Server {
		panic(fmt.Sprintf("topo: AttachServer: node %d is %v, not a server", s, t.Nodes[s].Kind))
	}
	if t.Nodes[sw].Kind == Server {
		panic(fmt.Sprintf("topo: AttachServer: target %d is a server", sw))
	}
	if _, dup := t.attach[s]; dup {
		panic(fmt.Sprintf("topo: server %d attached twice", s))
	}
	t.AddLink(s, sw)
	t.attach[s] = sw
}

// Servers returns the server node IDs in index order.
func (t *Topology) Servers() []int { return t.servers }

// Edges returns the edge switch node IDs in index order.
func (t *Topology) Edges() []int { return t.edges }

// Aggs returns the aggregation switch node IDs in index order.
func (t *Topology) Aggs() []int { return t.aggs }

// Cores returns the core switch node IDs in index order.
func (t *Topology) Cores() []int { return t.cores }

// Switches returns all switch node IDs (edge, agg, core) in that order.
func (t *Topology) Switches() []int {
	out := make([]int, 0, len(t.edges)+len(t.aggs)+len(t.cores))
	out = append(out, t.edges...)
	out = append(out, t.aggs...)
	out = append(out, t.cores...)
	return out
}

// NumPods returns the number of pods (0 for unstructured topologies).
func (t *Topology) NumPods() int { return t.pods }

// SetNumPods records the pod count.
func (t *Topology) SetNumPods(p int) { t.pods = p }

// AttachedSwitch returns the switch a server is wired to.
func (t *Topology) AttachedSwitch(server int) int {
	sw, ok := t.attach[server]
	if !ok {
		panic(fmt.Sprintf("topo: server %d has no attachment", server))
	}
	return sw
}

// ServersOn returns the servers attached to switch sw, in server-index order.
func (t *Topology) ServersOn(sw int) []int {
	var out []int
	for _, s := range t.servers {
		if t.attach[s] == sw {
			out = append(out, s)
		}
	}
	return out
}

// RackOf returns the rack identity of a server: the switch it attaches to.
// Two servers are rack-local when they share an edge (or, after relocation
// in flat-tree, any) switch.
func (t *Topology) RackOf(server int) int { return t.AttachedSwitch(server) }

// PodOf returns the pod of a server, defined as the pod of its attached
// switch; -1 when the switch is a core switch or the topology is
// unstructured.
func (t *Topology) PodOf(server int) int { return t.Nodes[t.AttachedSwitch(server)].Pod }

// Validate checks structural invariants: every server has exactly one link
// (its uplink), the graph is connected, and node bookkeeping is consistent.
func (t *Topology) Validate() error {
	if !t.G.Connected() {
		return fmt.Errorf("topo %q: graph not connected", t.Name)
	}
	for _, s := range t.servers {
		if d := t.G.Degree(s); d != 1 {
			return fmt.Errorf("topo %q: server %d has degree %d, want 1", t.Name, s, d)
		}
		if _, ok := t.attach[s]; !ok {
			return fmt.Errorf("topo %q: server %d unattached", t.Name, s)
		}
	}
	for id, n := range t.Nodes {
		if n.ID != id {
			return fmt.Errorf("topo %q: node %d has ID %d", t.Name, id, n.ID)
		}
	}
	return nil
}

// SwitchDegrees returns, for each switch ID, its total link degree
// (including server links). Useful for port-budget assertions.
func (t *Topology) SwitchDegrees() map[int]int {
	out := make(map[int]int)
	for _, sw := range t.Switches() {
		out[sw] = t.G.Degree(sw)
	}
	return out
}
