package topo

import (
	"fmt"
	"math/rand"
)

// RandomGraphParams describes a Jellyfish-style random graph network built
// from the same equipment as a Clos network: the same switches (with their
// total port counts) and the same servers, with servers distributed
// uniformly across all switches and the remaining ports wired into a random
// graph (Singla et al., NSDI'12).
type RandomGraphParams struct {
	Name     string
	Switches []int // port count of each switch
	Servers  int
	Seed     int64
}

// FromClosEquipment derives the random-graph equipment list from a Clos
// parameterization: every edge, aggregation, and core switch contributes its
// total port count.
func FromClosEquipment(p ClosParams) RandomGraphParams {
	var ports []int
	for i := 0; i < p.Pods*p.EdgesPerPod; i++ {
		ports = append(ports, p.ServersPerEdge+p.EdgeUplinks)
	}
	for i := 0; i < p.Pods*p.AggsPerPod; i++ {
		ports = append(ports, p.aggDownlinks()+p.AggUplinks)
	}
	for i := 0; i < p.Cores; i++ {
		ports = append(ports, p.CoreDownlinks())
	}
	return RandomGraphParams{
		Name:     p.Name + "-rg",
		Switches: ports,
		Servers:  p.TotalServers(),
	}
}

// pairing matches port stubs into switch-index pairs, avoiding self-links
// and parallel links where possible, with Jellyfish-style swap fixups for
// stranded stubs. It operates purely on indices; callers materialize links.
type pairing struct {
	rng   *rand.Rand
	pairs [][2]int
	used  map[[2]int]bool
}

func newPairing(rng *rand.Rand) *pairing {
	return &pairing{rng: rng, used: make(map[[2]int]bool)}
}

func canonPair(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}

func (pm *pairing) add(a, b int) {
	pm.pairs = append(pm.pairs, [2]int{a, b})
	pm.used[canonPair(a, b)] = true
}

// run pairs the given stubs (switch indices, one entry per free port).
// okPair reports whether two stubs may be joined (beyond the built-in
// self-link and parallel-link checks).
func (pm *pairing) run(stubs []int, okPair func(a, b int) bool) {
	pm.rng.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
	var leftover []int
	for len(stubs) >= 2 {
		a := stubs[len(stubs)-1]
		stubs = stubs[:len(stubs)-1]
		found := -1
		for i := len(stubs) - 1; i >= 0; i-- {
			b := stubs[i]
			if b != a && !pm.used[canonPair(a, b)] && (okPair == nil || okPair(a, b)) {
				found = i
				break
			}
		}
		if found < 0 {
			leftover = append(leftover, a)
			continue
		}
		b := stubs[found]
		stubs = append(stubs[:found], stubs[found+1:]...)
		pm.add(a, b)
	}
	leftover = append(leftover, stubs...)

	// Fixup: for each leftover stub pair (x, y), break an existing pair
	// (u, v) disjoint from {x, y} and rewire as (x, u) and (y, v).
	for len(leftover) >= 2 {
		x := leftover[len(leftover)-1]
		y := leftover[len(leftover)-2]
		leftover = leftover[:len(leftover)-2]
		if len(pm.pairs) == 0 {
			break
		}
		for attempt := 0; attempt < 500; attempt++ {
			i := pm.rng.Intn(len(pm.pairs))
			u, v := pm.pairs[i][0], pm.pairs[i][1]
			if u == x || u == y || v == x || v == y {
				continue
			}
			if pm.used[canonPair(x, u)] || pm.used[canonPair(y, v)] {
				continue
			}
			if okPair != nil && (!okPair(x, u) || !okPair(y, v)) {
				continue
			}
			// Remove (u, v), add (x, u) and (y, v).
			delete(pm.used, canonPair(u, v))
			pm.pairs[i] = pm.pairs[len(pm.pairs)-1]
			pm.pairs = pm.pairs[:len(pm.pairs)-1]
			pm.add(x, u)
			pm.add(y, v)
			break
		}
		// If no fixup was found the stubs stay open; random graphs
		// tolerate a few unused ports.
	}
}

// BuildRandomGraph constructs the random graph network. Servers are spread
// uniformly (the first servers%switches switches get one extra); leftover
// switch ports are paired uniformly at random into switch-to-switch links.
func BuildRandomGraph(p RandomGraphParams) (*Topology, error) {
	n := len(p.Switches)
	if n == 0 {
		return nil, fmt.Errorf("randomgraph %q: no switches", p.Name)
	}
	t := NewTopology(p.Name)
	rng := rand.New(rand.NewSource(p.Seed))

	sw := make([]int, n)
	for i := range sw {
		sw[i] = t.AddNode(Edge, -1) // all switches are equal in a random graph
		t.Nodes[sw[i]].LocalIndex = i
	}
	base, extra := p.Servers/n, p.Servers%n
	var stubs []int
	for i := range sw {
		cnt := base
		if i < extra {
			cnt++
		}
		if cnt > p.Switches[i] {
			return nil, fmt.Errorf("randomgraph %q: switch %d has %d ports < %d servers",
				p.Name, i, p.Switches[i], cnt)
		}
		for s := 0; s < cnt; s++ {
			sv := t.AddNode(Server, -1)
			t.AttachServer(sv, sw[i])
		}
		for k := 0; k < p.Switches[i]-cnt; k++ {
			stubs = append(stubs, i)
		}
	}
	pm := newPairing(rng)
	pm.run(stubs, nil)
	for _, pr := range pm.pairs {
		t.AddLink(sw[pr[0]], sw[pr[1]])
	}
	return t, nil
}

// TwoStageParams describes the two-stage (regional) random graph of the
// paper's §2.1: a random graph inside each pod, and a second random graph
// connecting pods (as super nodes) and core switches.
type TwoStageParams struct {
	Name string
	Clos ClosParams // source equipment
	Seed int64
}

// BuildTwoStageRandomGraph constructs the two-stage random graph from Clos
// equipment. Per pod: the pod's edge and aggregation switches each host an
// equal share of the pod's servers (core switches take no servers, §2.1);
// each pod keeps as many uplink stubs toward the global layer as its Clos
// counterpart had, spread evenly over its switches; the remaining ports
// form an intra-pod random graph. The global layer pairs pod uplink stubs
// with core stubs (and other pods' stubs) uniformly at random, never
// joining two stubs of the same pod.
func BuildTwoStageRandomGraph(p TwoStageParams) (*Topology, error) {
	cp := p.Clos
	if err := cp.Validate(); err != nil {
		return nil, err
	}
	t := NewTopology(p.Name)
	t.SetNumPods(cp.Pods)
	rng := rand.New(rand.NewSource(p.Seed))

	perPodSwitches := cp.EdgesPerPod + cp.AggsPerPod
	podUplinksTotal := cp.AggsPerPod * cp.AggUplinks
	serversPerPod := cp.EdgesPerPod * cp.ServersPerEdge

	// Global stubs are encoded as node IDs with a pod tag for the
	// same-pod exclusion rule.
	type gnode struct {
		id  int
		pod int
	}
	var gnodes []gnode // distinct endpoints in the global pairing
	var gstubs []int   // indices into gnodes, one per port
	addGlobal := func(id, pod, count int) {
		gi := len(gnodes)
		gnodes = append(gnodes, gnode{id, pod})
		for k := 0; k < count; k++ {
			gstubs = append(gstubs, gi)
		}
	}

	for c := 0; c < cp.Cores; c++ {
		id := t.AddNode(Core, -1)
		addGlobal(id, -1, cp.CoreDownlinks())
	}

	for pod := 0; pod < cp.Pods; pod++ {
		var swIDs []int
		var ports []int
		for j := 0; j < cp.EdgesPerPod; j++ {
			id := t.AddNode(Edge, pod)
			t.Nodes[id].LocalIndex = j
			swIDs = append(swIDs, id)
			ports = append(ports, cp.ServersPerEdge+cp.EdgeUplinks)
		}
		for i := 0; i < cp.AggsPerPod; i++ {
			id := t.AddNode(Agg, pod)
			t.Nodes[id].LocalIndex = i
			swIDs = append(swIDs, id)
			ports = append(ports, cp.aggDownlinks()+cp.AggUplinks)
		}
		base, extra := serversPerPod/perPodSwitches, serversPerPod%perPodSwitches
		for i, id := range swIDs {
			cnt := base
			if i < extra {
				cnt++
			}
			for s := 0; s < cnt; s++ {
				sv := t.AddNode(Server, pod)
				t.AttachServer(sv, id)
			}
			ports[i] -= cnt
		}
		upBase, upExtra := podUplinksTotal/perPodSwitches, podUplinksTotal%perPodSwitches
		for i, id := range swIDs {
			cnt := upBase
			if i < upExtra {
				cnt++
			}
			if cnt > ports[i] {
				return nil, fmt.Errorf("twostage %q: pod %d switch %d lacks uplink ports", p.Name, pod, i)
			}
			addGlobal(id, pod, cnt)
			ports[i] -= cnt
		}
		// Intra-pod random graph over remaining ports.
		var stubs []int
		for i, f := range ports {
			for k := 0; k < f; k++ {
				stubs = append(stubs, i)
			}
		}
		pm := newPairing(rng)
		pm.run(stubs, nil)
		for _, pr := range pm.pairs {
			t.AddLink(swIDs[pr[0]], swIDs[pr[1]])
		}
	}

	gp := newPairing(rng)
	gp.run(gstubs, func(a, b int) bool {
		pa, pb := gnodes[a].pod, gnodes[b].pod
		return pa < 0 || pb < 0 || pa != pb
	})
	for _, pr := range gp.pairs {
		t.AddLink(gnodes[pr[0]].id, gnodes[pr[1]].id)
	}
	return t, nil
}
