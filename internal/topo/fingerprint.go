package topo

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"math"
)

// Fingerprint returns a stable content hash of the topology's structure:
// node kinds with pod/rack placement, server attachments, and the full
// link list in insertion order. Two Realize() calls that produce the same
// wiring produce the same fingerprint, which is what lets route tables and
// LP solutions be reused across experiment cells (internal/parallel's
// caches key on it). The name is deliberately excluded — identical fabrics
// under different labels share cached work.
//
// Link order is part of the hash because downstream consumers (arc
// numbering in mcf, link IDs in route tables) depend on it: equal
// fingerprints guarantee bit-identical solver behavior, not just graph
// isomorphism.
func (t *Topology) Fingerprint() string {
	h := sha256.New()
	var buf [8]byte
	wi := func(v int) {
		binary.LittleEndian.PutUint64(buf[:], uint64(int64(v)))
		h.Write(buf[:])
	}
	wf := func(v float64) {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
		h.Write(buf[:])
	}
	wi(len(t.Nodes))
	for _, n := range t.Nodes {
		wi(int(n.Kind))
		wi(n.Pod)
		wi(n.LocalIndex)
	}
	wi(t.pods)
	wi(len(t.servers))
	for _, s := range t.servers {
		wi(s)
		wi(t.attach[s])
	}
	links := t.G.Links()
	wi(len(links))
	for _, l := range links {
		wi(l.A)
		wi(l.B)
		wf(l.Capacity)
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}
