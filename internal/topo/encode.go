package topo

import (
	"encoding/json"
	"fmt"
	"io"
)

// Serialization: topologies export to JSON (for external analysis
// pipelines) and Graphviz DOT (for visual inspection of small networks),
// and re-import from JSON round-trip losslessly.

// jsonTopology is the wire form.
type jsonTopology struct {
	Name  string     `json:"name"`
	Pods  int        `json:"pods"`
	Nodes []jsonNode `json:"nodes"`
	Links []jsonLink `json:"links"`
}

type jsonNode struct {
	ID         int    `json:"id"`
	Kind       string `json:"kind"`
	Pod        int    `json:"pod"`
	LocalIndex int    `json:"localIndex"`
	// AttachedTo is the uplink switch for servers, -1 otherwise.
	AttachedTo int `json:"attachedTo"`
}

type jsonLink struct {
	A        int     `json:"a"`
	B        int     `json:"b"`
	Capacity float64 `json:"capacityGbps"`
}

// WriteJSON serializes the topology.
func (t *Topology) WriteJSON(w io.Writer) error {
	jt := jsonTopology{Name: t.Name, Pods: t.NumPods()}
	for _, n := range t.Nodes {
		jn := jsonNode{ID: n.ID, Kind: n.Kind.String(), Pod: n.Pod,
			LocalIndex: n.LocalIndex, AttachedTo: -1}
		if n.Kind == Server {
			jn.AttachedTo = t.AttachedSwitch(n.ID)
		}
		jt.Nodes = append(jt.Nodes, jn)
	}
	for _, l := range t.G.Links() {
		na, nb := t.Nodes[l.A], t.Nodes[l.B]
		if na.Kind == Server || nb.Kind == Server {
			continue // server uplinks are encoded via AttachedTo
		}
		jt.Links = append(jt.Links, jsonLink{A: l.A, B: l.B, Capacity: l.Capacity})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(jt)
}

// ReadJSON reconstructs a topology written by WriteJSON.
func ReadJSON(r io.Reader) (*Topology, error) {
	var jt jsonTopology
	if err := json.NewDecoder(r).Decode(&jt); err != nil {
		return nil, fmt.Errorf("topo: decoding: %w", err)
	}
	t := NewTopology(jt.Name)
	t.SetNumPods(jt.Pods)
	kinds := map[string]Kind{"server": Server, "edge": Edge, "agg": Agg, "core": Core}
	type pending struct{ server, sw int }
	var attachments []pending
	for i, jn := range jt.Nodes {
		k, ok := kinds[jn.Kind]
		if !ok {
			return nil, fmt.Errorf("topo: node %d has unknown kind %q", jn.ID, jn.Kind)
		}
		id := t.AddNode(k, jn.Pod)
		if id != jn.ID || id != i {
			return nil, fmt.Errorf("topo: node IDs must be dense and ordered (got %d at %d)", jn.ID, i)
		}
		t.Nodes[id].LocalIndex = jn.LocalIndex
		if k == Server {
			attachments = append(attachments, pending{server: id, sw: jn.AttachedTo})
		}
	}
	for _, l := range jt.Links {
		if l.A < 0 || l.A >= len(t.Nodes) || l.B < 0 || l.B >= len(t.Nodes) {
			return nil, fmt.Errorf("topo: link %d-%d out of range", l.A, l.B)
		}
		t.G.AddLink(l.A, l.B, l.Capacity)
	}
	for _, a := range attachments {
		if a.sw < 0 || a.sw >= len(t.Nodes) {
			return nil, fmt.Errorf("topo: server %d attached to missing switch %d", a.server, a.sw)
		}
		t.AttachServer(a.server, a.sw)
	}
	return t, nil
}

// WriteDOT emits a Graphviz representation: switches as boxes colored by
// role, servers as small circles, pods as clusters.
func (t *Topology) WriteDOT(w io.Writer) error {
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("graph %q {\n  graph [overlap=false];\n", t.Name)
	style := map[Kind]string{
		Server: `shape=circle, width=0.2, label="", style=filled, fillcolor=gray70`,
		Edge:   `shape=box, style=filled, fillcolor="#cfe8ff"`,
		Agg:    `shape=box, style=filled, fillcolor="#ffe7b3"`,
		Core:   `shape=box, style=filled, fillcolor="#d8f0d0"`,
	}
	// Group pod members into clusters.
	byPod := map[int][]Node{}
	for _, n := range t.Nodes {
		byPod[n.Pod] = append(byPod[n.Pod], n)
	}
	for pod := 0; pod < t.NumPods(); pod++ {
		p("  subgraph cluster_pod%d {\n    label=\"pod %d\";\n", pod, pod)
		for _, n := range byPod[pod] {
			p("    n%d [%s];\n", n.ID, style[n.Kind])
		}
		p("  }\n")
	}
	for _, n := range byPod[-1] {
		p("  n%d [%s];\n", n.ID, style[n.Kind])
	}
	for _, l := range t.G.Links() {
		p("  n%d -- n%d;\n", l.A, l.B)
	}
	p("}\n")
	return err
}
