package topo

import "fmt"

// ClosParams parameterizes a generic 3-layer Clos network as in Table 2 of
// the paper. All counts are per the roles they name; derived quantities are
// validated by Build.
type ClosParams struct {
	Name           string
	Pods           int // number of pods
	EdgesPerPod    int // d in the paper
	AggsPerPod     int // d/r in the paper
	ServersPerEdge int // edge downlinks
	EdgeUplinks    int // edge uplink ports (to aggs in the pod)
	AggUplinks     int // h in the paper: agg uplink ports (to core)
	Cores          int // number of core switches
}

// R returns r, the number of edge switches per aggregation switch.
func (p ClosParams) R() int { return p.EdgesPerPod / p.AggsPerPod }

// CoreDownlinks returns the number of downlinks per core switch.
func (p ClosParams) CoreDownlinks() int {
	return p.Pods * p.AggsPerPod * p.AggUplinks / p.Cores
}

// EdgeAggMultiplicity returns how many parallel links connect each
// edge-agg pair within a pod.
func (p ClosParams) EdgeAggMultiplicity() int { return p.EdgeUplinks / p.AggsPerPod }

// TotalServers returns the server count.
func (p ClosParams) TotalServers() int { return p.Pods * p.EdgesPerPod * p.ServersPerEdge }

// Validate checks that the parameters describe a consistent Clos network.
func (p ClosParams) Validate() error {
	if p.Pods <= 0 || p.EdgesPerPod <= 0 || p.AggsPerPod <= 0 || p.Cores <= 0 {
		return fmt.Errorf("clos %q: nonpositive counts", p.Name)
	}
	if p.EdgesPerPod%p.AggsPerPod != 0 {
		return fmt.Errorf("clos %q: edges per pod %d not a multiple of aggs per pod %d",
			p.Name, p.EdgesPerPod, p.AggsPerPod)
	}
	if p.EdgeUplinks%p.AggsPerPod != 0 {
		return fmt.Errorf("clos %q: edge uplinks %d not divisible by aggs per pod %d",
			p.Name, p.EdgeUplinks, p.AggsPerPod)
	}
	if p.EdgeUplinks*p.EdgesPerPod != p.AggsPerPod*p.aggDownlinks() {
		return fmt.Errorf("clos %q: pod-internal port mismatch", p.Name)
	}
	if (p.Pods*p.AggsPerPod*p.AggUplinks)%p.Cores != 0 {
		return fmt.Errorf("clos %q: agg uplinks %d not divisible by cores %d",
			p.Name, p.Pods*p.AggsPerPod*p.AggUplinks, p.Cores)
	}
	return nil
}

func (p ClosParams) aggDownlinks() int { return p.EdgesPerPod * p.EdgeAggMultiplicity() }

// BuildClos constructs the Clos network described by p. The pod-core wiring
// follows Figure 4a: aggregation switch i in every pod connects its h
// uplinks consecutively to core switches starting at (i*h) mod Cores.
func BuildClos(p ClosParams) (*Topology, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	t := NewTopology(p.Name)
	t.SetNumPods(p.Pods)

	edges := make([][]int, p.Pods) // [pod][localIndex] -> node ID
	aggs := make([][]int, p.Pods)
	cores := make([]int, p.Cores)
	for c := 0; c < p.Cores; c++ {
		cores[c] = t.AddNode(Core, -1)
	}
	for pod := 0; pod < p.Pods; pod++ {
		edges[pod] = make([]int, p.EdgesPerPod)
		aggs[pod] = make([]int, p.AggsPerPod)
		for j := 0; j < p.EdgesPerPod; j++ {
			id := t.AddNode(Edge, pod)
			t.Nodes[id].LocalIndex = j
			edges[pod][j] = id
		}
		for i := 0; i < p.AggsPerPod; i++ {
			id := t.AddNode(Agg, pod)
			t.Nodes[id].LocalIndex = i
			aggs[pod][i] = id
		}
		// Servers.
		for j := 0; j < p.EdgesPerPod; j++ {
			for s := 0; s < p.ServersPerEdge; s++ {
				sv := t.AddNode(Server, pod)
				t.AttachServer(sv, edges[pod][j])
			}
		}
		// Pod-internal edge-agg full mesh with multiplicity.
		mult := p.EdgeAggMultiplicity()
		for j := 0; j < p.EdgesPerPod; j++ {
			for i := 0; i < p.AggsPerPod; i++ {
				for m := 0; m < mult; m++ {
					t.AddLink(edges[pod][j], aggs[pod][i])
				}
			}
		}
		// Pod-core wiring (Figure 4a).
		for i := 0; i < p.AggsPerPod; i++ {
			for u := 0; u < p.AggUplinks; u++ {
				c := (i*p.AggUplinks + u) % p.Cores
				t.AddLink(aggs[pod][i], cores[c])
			}
		}
	}
	return t, nil
}

// FatTree returns the ClosParams of a k-ary fat-tree (Al-Fares et al.).
func FatTree(k int) ClosParams {
	return ClosParams{
		Name:           fmt.Sprintf("fat-tree-k%d", k),
		Pods:           k,
		EdgesPerPod:    k / 2,
		AggsPerPod:     k / 2,
		ServersPerEdge: k / 2,
		EdgeUplinks:    k / 2,
		AggUplinks:     k / 2,
		Cores:          (k / 2) * (k / 2),
	}
}

// Table2 returns the six flat-tree base Clos topologies evaluated in the
// paper (Table 2), keyed topo-1 .. topo-6.
//
// The pod decomposition is derived from the port counts: topo-1/2/3/5 have
// equal edge and agg counts per pod; topo-4/6 have r=2 (two edge switches
// per agg switch). Note: Table 2 prints topo-6's aggregation tuple as
// (32,16); consistency with "OR at AS = 2" and with the stated derivation
// from topo-5 requires (16,32), which is what we build.
func Table2() []ClosParams {
	return []ClosParams{
		{Name: "topo-1", Pods: 16, EdgesPerPod: 8, AggsPerPod: 8, ServersPerEdge: 32, EdgeUplinks: 8, AggUplinks: 8, Cores: 64},
		{Name: "topo-2", Pods: 12, EdgesPerPod: 6, AggsPerPod: 6, ServersPerEdge: 24, EdgeUplinks: 6, AggUplinks: 6, Cores: 36},
		{Name: "topo-3", Pods: 16, EdgesPerPod: 8, AggsPerPod: 8, ServersPerEdge: 64, EdgeUplinks: 8, AggUplinks: 8, Cores: 64},
		{Name: "topo-4", Pods: 8, EdgesPerPod: 16, AggsPerPod: 8, ServersPerEdge: 32, EdgeUplinks: 8, AggUplinks: 16, Cores: 32},
		{Name: "topo-5", Pods: 16, EdgesPerPod: 8, AggsPerPod: 8, ServersPerEdge: 32, EdgeUplinks: 16, AggUplinks: 8, Cores: 64},
		{Name: "topo-6", Pods: 8, EdgesPerPod: 16, AggsPerPod: 8, ServersPerEdge: 32, EdgeUplinks: 16, AggUplinks: 16, Cores: 32},
	}
}

// Table2ByName returns the named Table 2 topology parameters.
func Table2ByName(name string) (ClosParams, error) {
	for _, p := range Table2() {
		if p.Name == name {
			return p, nil
		}
	}
	return ClosParams{}, fmt.Errorf("topo: unknown Table 2 topology %q", name)
}
