package topo

import (
	"bytes"
	"strings"
	"testing"
)

func TestJSONRoundTrip(t *testing.T) {
	orig, err := BuildClos(FatTree(4))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := orig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != orig.Name || back.NumPods() != orig.NumPods() {
		t.Fatalf("metadata lost: %s/%d", back.Name, back.NumPods())
	}
	if back.G.NumNodes() != orig.G.NumNodes() {
		t.Fatalf("nodes %d, want %d", back.G.NumNodes(), orig.G.NumNodes())
	}
	if back.G.NumLinks() != orig.G.NumLinks() {
		t.Fatalf("links %d, want %d", back.G.NumLinks(), orig.G.NumLinks())
	}
	for _, s := range orig.Servers() {
		if back.AttachedSwitch(s) != orig.AttachedSwitch(s) {
			t.Fatalf("server %d attachment changed", s)
		}
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	// Node roles preserved.
	for i, n := range orig.Nodes {
		if back.Nodes[i].Kind != n.Kind || back.Nodes[i].Pod != n.Pod {
			t.Fatalf("node %d role changed", i)
		}
	}
}

func TestReadJSONRejectsGarbage(t *testing.T) {
	cases := []string{
		`{`,
		`{"name":"x","nodes":[{"id":0,"kind":"alien","pod":0}]}`,
		`{"name":"x","nodes":[{"id":5,"kind":"edge","pod":0}]}`,
		`{"name":"x","nodes":[{"id":0,"kind":"edge","pod":0}],"links":[{"a":0,"b":9}]}`,
		`{"name":"x","nodes":[{"id":0,"kind":"server","pod":0,"attachedTo":7}]}`,
	}
	for _, c := range cases {
		if _, err := ReadJSON(strings.NewReader(c)); err == nil {
			t.Errorf("accepted %q", c)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	ft, _ := BuildClos(FatTree(4))
	var buf bytes.Buffer
	if err := ft.WriteDOT(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"graph", "cluster_pod0", "cluster_pod3", " -- "} {
		if !strings.Contains(out, want) {
			t.Fatalf("DOT output missing %q", want)
		}
	}
	// One node statement per node, one edge per link.
	if got := strings.Count(out, " -- "); got != ft.G.NumLinks() {
		t.Fatalf("edges = %d, want %d", got, ft.G.NumLinks())
	}
}
