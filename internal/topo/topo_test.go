package topo

import (
	"testing"
	"testing/quick"
)

func TestFatTreeK4(t *testing.T) {
	ft, err := BuildClos(FatTree(4))
	if err != nil {
		t.Fatal(err)
	}
	if err := ft.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(ft.Servers()); got != 16 {
		t.Fatalf("servers = %d, want 16", got)
	}
	if got := len(ft.Edges()); got != 8 {
		t.Fatalf("edges = %d, want 8", got)
	}
	if got := len(ft.Aggs()); got != 8 {
		t.Fatalf("aggs = %d, want 8", got)
	}
	if got := len(ft.Cores()); got != 4 {
		t.Fatalf("cores = %d, want 4", got)
	}
	// Every switch in a k=4 fat-tree has degree 4.
	for sw, d := range ft.SwitchDegrees() {
		if d != 4 {
			t.Fatalf("switch %d degree %d, want 4", sw, d)
		}
	}
}

func TestFatTreeK16MatchesPaper(t *testing.T) {
	// §2.1: k=16 fat-tree, each edge switch connected to 8 servers,
	// 64 servers per pod.
	p := FatTree(16)
	ft, err := BuildClos(p)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ft.Servers()); got != 1024 {
		t.Fatalf("servers = %d, want 1024", got)
	}
	if p.ServersPerEdge != 8 {
		t.Fatalf("servers per edge = %d, want 8", p.ServersPerEdge)
	}
	if got := p.EdgesPerPod * p.ServersPerEdge; got != 64 {
		t.Fatalf("servers per pod = %d, want 64", got)
	}
}

func TestTable2Shapes(t *testing.T) {
	// Expected totals straight from Table 2 of the paper.
	want := map[string]struct {
		es, as, cs, servers  int
		esUp, esDown         int
		asUp, asDown, csDown int
	}{
		"topo-1": {128, 128, 64, 4096, 8, 32, 8, 8, 16},
		"topo-2": {72, 72, 36, 1728, 6, 24, 6, 6, 12},
		"topo-3": {128, 128, 64, 8192, 8, 64, 8, 8, 16},
		"topo-4": {128, 64, 32, 4096, 8, 32, 16, 16, 32},
		"topo-5": {128, 128, 64, 4096, 16, 32, 8, 16, 16},
		"topo-6": {128, 64, 32, 4096, 16, 32, 16, 32, 32},
	}
	for _, p := range Table2() {
		w, ok := want[p.Name]
		if !ok {
			t.Fatalf("unexpected topology %s", p.Name)
		}
		if got := p.Pods * p.EdgesPerPod; got != w.es {
			t.Errorf("%s: edge switches = %d, want %d", p.Name, got, w.es)
		}
		if got := p.Pods * p.AggsPerPod; got != w.as {
			t.Errorf("%s: agg switches = %d, want %d", p.Name, got, w.as)
		}
		if p.Cores != w.cs {
			t.Errorf("%s: cores = %d, want %d", p.Name, p.Cores, w.cs)
		}
		if got := p.TotalServers(); got != w.servers {
			t.Errorf("%s: servers = %d, want %d", p.Name, got, w.servers)
		}
		if p.EdgeUplinks != w.esUp || p.ServersPerEdge != w.esDown {
			t.Errorf("%s: ES ports (%d,%d), want (%d,%d)", p.Name, p.EdgeUplinks, p.ServersPerEdge, w.esUp, w.esDown)
		}
		if p.AggUplinks != w.asUp || p.aggDownlinks() != w.asDown {
			t.Errorf("%s: AS ports (%d,%d), want (%d,%d)", p.Name, p.AggUplinks, p.aggDownlinks(), w.asUp, w.asDown)
		}
		if got := p.CoreDownlinks(); got != w.csDown {
			t.Errorf("%s: CS downlinks = %d, want %d", p.Name, got, w.csDown)
		}
	}
}

func TestTable2BuildsAndValidates(t *testing.T) {
	for _, p := range Table2() {
		p := p
		t.Run(p.Name, func(t *testing.T) {
			tp, err := BuildClos(p)
			if err != nil {
				t.Fatal(err)
			}
			if err := tp.Validate(); err != nil {
				t.Fatal(err)
			}
			// Port budget: each switch's degree must equal its port count.
			for _, e := range tp.Edges() {
				if d := tp.G.Degree(e); d != p.ServersPerEdge+p.EdgeUplinks {
					t.Fatalf("edge %d degree %d, want %d", e, d, p.ServersPerEdge+p.EdgeUplinks)
				}
			}
			for _, a := range tp.Aggs() {
				if d := tp.G.Degree(a); d != p.aggDownlinks()+p.AggUplinks {
					t.Fatalf("agg %d degree %d, want %d", a, d, p.aggDownlinks()+p.AggUplinks)
				}
			}
			for _, c := range tp.Cores() {
				if d := tp.G.Degree(c); d != p.CoreDownlinks() {
					t.Fatalf("core %d degree %d, want %d", c, d, p.CoreDownlinks())
				}
			}
		})
	}
}

func TestTable2ByName(t *testing.T) {
	p, err := Table2ByName("topo-3")
	if err != nil || p.Name != "topo-3" {
		t.Fatalf("Table2ByName(topo-3) = %v, %v", p, err)
	}
	if _, err := Table2ByName("topo-9"); err == nil {
		t.Fatal("unknown name did not error")
	}
}

func TestClosValidation(t *testing.T) {
	bad := ClosParams{Name: "bad", Pods: 2, EdgesPerPod: 3, AggsPerPod: 2,
		ServersPerEdge: 2, EdgeUplinks: 2, AggUplinks: 2, Cores: 4}
	if _, err := BuildClos(bad); err == nil {
		t.Fatal("inconsistent Clos accepted")
	}
}

func TestServerAttachment(t *testing.T) {
	ft, _ := BuildClos(FatTree(4))
	for _, s := range ft.Servers() {
		sw := ft.AttachedSwitch(s)
		if ft.Nodes[sw].Kind != Edge {
			t.Fatalf("server %d attached to %v", s, ft.Nodes[sw].Kind)
		}
		if ft.PodOf(s) != ft.Nodes[sw].Pod {
			t.Fatalf("pod mismatch for server %d", s)
		}
	}
	// Each edge switch hosts exactly k/2 = 2 servers.
	for _, e := range ft.Edges() {
		if got := len(ft.ServersOn(e)); got != 2 {
			t.Fatalf("edge %d hosts %d servers, want 2", e, got)
		}
	}
}

func TestRandomGraphFromFatTree(t *testing.T) {
	p := FromClosEquipment(FatTree(8))
	p.Seed = 42
	rg, err := BuildRandomGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := rg.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(rg.Servers()); got != 128 {
		t.Fatalf("servers = %d, want 128", got)
	}
	// 64 pod switches with 8 ports + 16 cores with 8 ports = 80 switches.
	if got := len(rg.Edges()); got != 80 {
		t.Fatalf("switches = %d, want 80", got)
	}
	// Port budgets must never be exceeded.
	for i, e := range rg.Edges() {
		if d := rg.G.Degree(e); d > p.Switches[i] {
			t.Fatalf("switch %d degree %d exceeds %d ports", e, d, p.Switches[i])
		}
	}
	// Servers uniform: 128/96 => each switch has 1 or 2 servers.
	for _, e := range rg.Edges() {
		n := len(rg.ServersOn(e))
		if n < 1 || n > 2 {
			t.Fatalf("switch %d has %d servers, want 1..2", e, n)
		}
	}
}

func TestRandomGraphDeterministic(t *testing.T) {
	p := FromClosEquipment(FatTree(4))
	p.Seed = 7
	a, err := BuildRandomGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRandomGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.G.NumLinks() != b.G.NumLinks() {
		t.Fatal("seeded builds differ in link count")
	}
	for i := 0; i < a.G.NumLinks(); i++ {
		la, lb := a.G.Link(i), b.G.Link(i)
		if la.A != lb.A || la.B != lb.B {
			t.Fatalf("link %d differs: %v vs %v", i, la, lb)
		}
	}
}

func TestRandomGraphRejectsOverfull(t *testing.T) {
	_, err := BuildRandomGraph(RandomGraphParams{Name: "x", Switches: []int{2, 2}, Servers: 10})
	if err == nil {
		t.Fatal("overfull random graph accepted")
	}
}

func TestTwoStageRandomGraph(t *testing.T) {
	p := TwoStageParams{Name: "ts", Clos: FatTree(8), Seed: 3}
	ts, err := BuildTwoStageRandomGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := len(ts.Servers()); got != 128 {
		t.Fatalf("servers = %d, want 128", got)
	}
	// Core switches take no servers (§2.1).
	for _, c := range ts.Cores() {
		if n := len(ts.ServersOn(c)); n != 0 {
			t.Fatalf("core %d hosts %d servers, want 0", c, n)
		}
	}
	// Servers uniform within each pod: 16 servers over 8 switches = 2 each.
	for pod := 0; pod < 8; pod++ {
		for _, n := range ts.Nodes {
			if n.Pod == pod && (n.Kind == Edge || n.Kind == Agg) {
				if got := len(ts.ServersOn(n.ID)); got != 2 {
					t.Fatalf("pod %d switch %d hosts %d servers, want 2", pod, n.ID, got)
				}
			}
		}
	}
}

func TestTwoStageNoIntraPodGlobalLinks(t *testing.T) {
	// The global pairing must never join two switches of the same pod:
	// such a link would be an intra-pod link smuggled into the core layer.
	// We detect violations indirectly: every inter-switch link must be
	// either intra-pod (both endpoints same pod, placed by the pod stage
	// plus its port budget) or have endpoints in different pods / core.
	p := TwoStageParams{Name: "ts", Clos: FatTree(4), Seed: 11}
	ts, err := BuildTwoStageRandomGraph(p)
	if err != nil {
		t.Fatal(err)
	}
	// Count pod-internal links per pod; each pod's internal ports after
	// servers and uplinks are (ports-servers-uplinks) summed / 2.
	cp := p.Clos
	perPod := cp.EdgesPerPod*(cp.ServersPerEdge+cp.EdgeUplinks) +
		cp.AggsPerPod*(cp.EdgesPerPod*cp.EdgeAggMultiplicity()+cp.AggUplinks)
	serversPerPod := cp.EdgesPerPod * cp.ServersPerEdge
	uplinks := cp.AggsPerPod * cp.AggUplinks
	maxIntra := (perPod - serversPerPod - uplinks) / 2
	intra := make(map[int]int)
	for _, l := range ts.G.Links() {
		na, nb := ts.Nodes[l.A], ts.Nodes[l.B]
		if na.Kind == Server || nb.Kind == Server {
			continue
		}
		if na.Pod >= 0 && na.Pod == nb.Pod {
			intra[na.Pod]++
		}
	}
	for pod, n := range intra {
		if n > maxIntra {
			t.Fatalf("pod %d has %d intra-pod links, max %d: global stage leaked same-pod links",
				pod, n, maxIntra)
		}
	}
}

func TestKindString(t *testing.T) {
	if Server.String() != "server" || Core.String() != "core" {
		t.Fatal("Kind.String wrong")
	}
	if Kind(99).String() == "" {
		t.Fatal("out-of-range Kind.String empty")
	}
}

// Property: every fat-tree has uniform switch degree k and its server count
// is k^3/4.
func TestFatTreeProperty(t *testing.T) {
	f := func(raw uint8) bool {
		k := 4 + int(raw%5)*2 // 4, 6, 8, 10, 12
		ft, err := BuildClos(FatTree(k))
		if err != nil {
			return false
		}
		if len(ft.Servers()) != k*k*k/4 {
			return false
		}
		for _, d := range ft.SwitchDegrees() {
			if d != k {
				return false
			}
		}
		return ft.Validate() == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
