package metrics

import (
	"math"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestPercentile(t *testing.T) {
	xs := []float64{4, 1, 3, 2}
	if got := Percentile(xs, 0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if got := Percentile(xs, 1); got != 4 {
		t.Fatalf("p100 = %v", got)
	}
	if got := Percentile(xs, 0.5); got != 2.5 {
		t.Fatalf("median = %v, want 2.5", got)
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Fatal("empty percentile not NaN")
	}
	// Input must not be mutated.
	if xs[0] != 4 {
		t.Fatal("Percentile mutated input")
	}
}

func TestMeanMinMax(t *testing.T) {
	xs := []float64{2, 8, 5}
	if Mean(xs) != 5 || Min(xs) != 2 || Max(xs) != 8 {
		t.Fatalf("mean/min/max = %v/%v/%v", Mean(xs), Min(xs), Max(xs))
	}
	if !math.IsNaN(Mean(nil)) || !math.IsNaN(Min(nil)) || !math.IsNaN(Max(nil)) {
		t.Fatal("empty stats not NaN")
	}
}

func TestBoxPlot(t *testing.T) {
	// Uniform 1..100 plus one extreme outlier.
	var xs []float64
	for i := 1; i <= 100; i++ {
		xs = append(xs, float64(i))
	}
	xs = append(xs, 1e6)
	b := NewBoxPlot(xs)
	if b.P25 >= b.Median || b.Median >= b.P75 {
		t.Fatalf("quartiles out of order: %+v", b)
	}
	if b.Outliers != 1 {
		t.Fatalf("outliers = %d, want 1", b.Outliers)
	}
	if b.WhiskerHi > 1000 {
		t.Fatalf("whisker includes the outlier: %v", b.WhiskerHi)
	}
	if b.N != 101 {
		t.Fatalf("N = %d", b.N)
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0); got != 0 {
		t.Fatalf("At(0) = %v", got)
	}
	if got := c.At(10); got != 1 {
		t.Fatalf("At(10) = %v", got)
	}
	if got := c.Quantile(1); got != 4 {
		t.Fatalf("Quantile(1) = %v", got)
	}
	pts := c.Points(5)
	if len(pts) != 5 || pts[0][1] != 0 || pts[4][1] != 1 {
		t.Fatalf("Points = %v", pts)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i][0] < pts[i-1][0] {
			t.Fatal("CDF points not monotone")
		}
	}
}

func TestNormalize(t *testing.T) {
	got := Normalize([]float64{2, 4}, 2)
	if got[0] != 1 || got[1] != 2 {
		t.Fatalf("Normalize = %v", got)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.Add("alpha", 1.5)
	tb.Add("b", 100)
	s := tb.String()
	if !strings.Contains(s, "alpha") || !strings.Contains(s, "1.5") || !strings.Contains(s, "100") {
		t.Fatalf("table missing cells:\n%s", s)
	}
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4", len(lines))
	}
}

// Property: percentiles are monotone in p and bounded by min/max.
func TestPercentileProperty(t *testing.T) {
	f := func(raw []float64) bool {
		var xs []float64
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				xs = append(xs, v)
			}
		}
		if len(xs) == 0 {
			return true
		}
		ps := []float64{0, 0.1, 0.25, 0.5, 0.75, 0.9, 1}
		var prev = math.Inf(-1)
		for _, p := range ps {
			q := Percentile(xs, p)
			if q < prev-1e-9 {
				return false
			}
			prev = q
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		return Percentile(xs, 0) == sorted[0] && Percentile(xs, 1) == sorted[len(sorted)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
