// Package metrics provides the statistics and rendering helpers the
// experiment harness uses: percentiles, CDFs, box-plot summaries matching
// Figure 7's definition, normalization, and plain-text tables.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Percentile returns the p-quantile (0..1) of xs by linear interpolation.
// It copies and sorts the input.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if p <= 0 {
		return s[0]
	}
	if p >= 1 {
		return s[len(s)-1]
	}
	pos := p * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Mean returns the arithmetic mean, NaN for empty input.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Min returns the minimum, NaN for empty input.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum, NaN for empty input.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// BoxPlot summarizes a sample the way Figure 7 draws it: quartiles, median,
// mean, and whiskers covering data within 3 box-heights of the box;
// anything beyond is an outlier.
type BoxPlot struct {
	P25, Median, P75     float64
	Mean                 float64
	WhiskerLo, WhiskerHi float64
	Outliers             int
	N                    int
}

// NewBoxPlot computes the Figure 7 box-plot summary.
func NewBoxPlot(xs []float64) BoxPlot {
	b := BoxPlot{
		P25:    Percentile(xs, 0.25),
		Median: Percentile(xs, 0.50),
		P75:    Percentile(xs, 0.75),
		Mean:   Mean(xs),
		N:      len(xs),
	}
	boxRange := b.P75 - b.P25
	lo := b.P25 - 3*boxRange
	hi := b.P75 + 3*boxRange
	b.WhiskerLo, b.WhiskerHi = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < lo || x > hi {
			b.Outliers++
			continue
		}
		if x < b.WhiskerLo {
			b.WhiskerLo = x
		}
		if x > b.WhiskerHi {
			b.WhiskerHi = x
		}
	}
	if b.N == 0 {
		b.WhiskerLo, b.WhiskerHi = math.NaN(), math.NaN()
	}
	return b
}

// CDF is an empirical distribution: sorted values with cumulative
// probability positions.
type CDF struct {
	X []float64 // sorted sample
}

// NewCDF builds the empirical CDF of xs.
func NewCDF(xs []float64) CDF {
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	return CDF{X: s}
}

// At returns P(X <= x).
func (c CDF) At(x float64) float64 {
	if len(c.X) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.X, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.X))
}

// Quantile returns the value at cumulative probability p.
func (c CDF) Quantile(p float64) float64 { return Percentile(c.X, p) }

// Points samples the CDF at n evenly spaced probabilities, returning
// (value, probability) rows for plotting or tabulation.
func (c CDF) Points(n int) [][2]float64 {
	if n < 2 || len(c.X) == 0 {
		return nil
	}
	out := make([][2]float64, 0, n)
	for i := 0; i < n; i++ {
		p := float64(i) / float64(n-1)
		out = append(out, [2]float64{c.Quantile(p), p})
	}
	return out
}

// Normalize divides every value by base, reproducing the paper's
// "normalized against X" presentation.
func Normalize(xs []float64, base float64) []float64 {
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = x / base
	}
	return out
}

// Table renders rows as an aligned plain-text table with a header.
type Table struct {
	Header []string
	Rows   [][]string
}

// Add appends a row, formatting each cell with %v.
func (t *Table) Add(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, r := range t.Rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(c)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Header)
	var rule []string
	for _, w := range widths {
		rule = append(rule, strings.Repeat("-", w))
	}
	writeRow(rule)
	for _, r := range t.Rows {
		writeRow(r)
	}
	return sb.String()
}
