// Package lockcheck enforces the service daemon's lock discipline.
//
// flatd's entire live state sits behind one RWMutex, and the daemon's
// latency contract is that the lock is held only for in-memory work: a
// network write or a sleep under the lock stalls every other request,
// and a write to guarded state outside the lock is a data race the race
// detector only catches when two requests actually collide. The
// analyzer mechanizes three rules inside its scope packages:
//
//  1. No potentially-blocking operation — network I/O, time.Sleep,
//     bare channel operations, selects without default — may appear in
//     a lock region, directly or through an intra-package call chain
//     (the loader's per-function summary provides callee facts).
//  2. No function that (transitively) re-acquires the same mutex may be
//     called in one of its lock regions — the self-deadlock shape,
//     which for an RWMutex includes RLock under RLock.
//  3. Fields declared below a sync.Mutex/sync.RWMutex field in a struct
//     are guarded by it (the standard Go convention); writes to them
//     must happen in a write-lock region of that mutex.
//
// A lock region is lexical: from an acquire call to the first matching
// release below it, or to the end of the function for deferred
// releases. Early-unlock-and-return branches confuse a lexical model,
// so code that needs them should move the locked section into a helper
// that defers the release — the shape rule 1 pushes handlers toward
// anyway. Findings are waivable with //flatvet:locked <reason>.
package lockcheck

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"

	"flattree/internal/analysis"
	"flattree/internal/analysis/load"
)

// Packages is the final-segment scope: the resident daemon's state and
// entry point.
var Packages = []string{"service", "flatd"}

var Analyzer = &analysis.Analyzer{
	Name:      "lockcheck",
	Doc:       "forbids blocking calls and re-acquisition under the service RWMutex, and guarded-field writes outside it",
	Directive: "locked",
	Scope:     analysis.SegmentScope(Packages...),
	Run:       run,
}

// region is one lexical lock region of a function body.
type region struct {
	mu    *types.Var
	write bool
	from  token.Pos
	to    token.Pos // function end for deferred releases
}

func (r region) contains(p token.Pos) bool { return r.from <= p && p < r.to }

func run(pass *analysis.Pass) error {
	sum := pass.Loaded.Summary()
	guards := guardedFields(pass)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			checkBody(pass, sum, guards, body)
			return true
		})
	}
	return nil
}

// checkBody applies the three rules to one function or literal body.
// Nested literals are skipped here (each gets its own checkBody visit)
// because a closure's body does not execute at its build site.
func checkBody(pass *analysis.Pass, sum *load.Summary, guards map[*types.Var]*types.Var, body *ast.BlockStmt) {
	regions := lockRegions(pass.TypesInfo, body)

	under := func(p token.Pos) *region {
		for i := range regions {
			if regions[i].contains(p) {
				return &regions[i]
			}
		}
		return nil
	}
	underWrite := func(p token.Pos, mu *types.Var) bool {
		for i := range regions {
			if regions[i].write && regions[i].mu == mu && regions[i].contains(p) {
				return true
			}
		}
		return false
	}

	// Rule 1, direct operations.
	for _, op := range load.BlockingOps(pass.TypesInfo, body) {
		if r := under(op.Pos); r != nil {
			pass.Reportf(op.Pos, "%s while %s is held; release the lock first (or waive //flatvet:locked <reason>)",
				op.What, mutexName(r.mu))
		}
	}

	// Rules 1 (transitive) and 2: intra-package calls made in a region.
	walkSkipFuncLits(body, func(n ast.Node) {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return
		}
		r := under(call.Pos())
		if r == nil {
			return
		}
		callee := load.StaticCallee(pass.TypesInfo, call)
		if callee == nil || callee.Pkg() != pass.Pkg {
			return
		}
		if sum.AcquiresVia(callee, r.mu) {
			pass.Reportf(call.Pos(), "call to %s re-acquires %s already held here: deadlock", callee.Name(), mutexName(r.mu))
			return
		}
		if chain, op, ok := sum.BlocksVia(callee); ok {
			pass.Reportf(call.Pos(), "call to %s blocks (%s%s) while %s is held; release the lock first (or waive //flatvet:locked <reason>)",
				callee.Name(), op.What, chainSuffix(chain), mutexName(r.mu))
		}
	})

	// Rule 3: guarded-field writes need the write lock.
	if len(guards) > 0 {
		walkSkipFuncLits(body, func(n ast.Node) {
			for _, lhs := range writeTargets(n) {
				fld := fieldVar(pass.TypesInfo, lhs)
				if fld == nil {
					continue
				}
				mu, guarded := guards[fld]
				if !guarded {
					continue
				}
				if underWrite(lhs.Pos(), mu) {
					continue
				}
				if under(lhs.Pos()) != nil {
					pass.Reportf(lhs.Pos(), "write to %s-guarded field %s while holding only the read lock", mutexName(mu), fld.Name())
				} else {
					pass.Reportf(lhs.Pos(), "write to %s-guarded field %s outside any lock region; hold %s.Lock (or waive //flatvet:locked <reason>)",
						mutexName(mu), fld.Name(), mutexName(mu))
				}
			}
		})
	}
}

// lockRegions builds the body's lexical lock regions from its mutex
// operations: each acquire opens a region closed by the first matching
// (same mutex, same read/write class) release after it, or by the end
// of the body when the release is deferred or missing.
func lockRegions(info *types.Info, body *ast.BlockStmt) []region {
	ops := load.MutexOps(info, body)
	var regions []region
	for i, op := range ops {
		if !op.Acquire {
			continue
		}
		to := body.End()
		for _, rel := range ops[i+1:] {
			if rel.Acquire || rel.Mutex != op.Mutex || rel.Write != op.Write {
				continue
			}
			if rel.Deferred {
				break // runs at return: region spans to the end
			}
			to = rel.Pos
			break
		}
		regions = append(regions, region{mu: op.Mutex, write: op.Write, from: op.Pos, to: to})
	}
	return regions
}

// guardedFields maps each struct field declared below a mutex field to
// that mutex, for every struct type declared in the package.
func guardedFields(pass *analysis.Pass) map[*types.Var]*types.Var {
	guards := map[*types.Var]*types.Var{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			var mu *types.Var
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					if isMutexType(v.Type()) {
						mu = v
						continue
					}
					if mu != nil {
						guards[v] = mu
					}
				}
			}
			return true
		})
	}
	return guards
}

func isMutexType(t types.Type) bool {
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// writeTargets returns the expressions n writes to: assignment LHS
// (plain and op-assign) and inc/dec operands.
func writeTargets(n ast.Node) []ast.Expr {
	switch n := n.(type) {
	case *ast.AssignStmt:
		return n.Lhs
	case *ast.IncDecStmt:
		return []ast.Expr{n.X}
	}
	return nil
}

// fieldVar resolves expr to the struct field it names (s.events), or nil
// for locals, indexes, and dereferences of other shapes.
func fieldVar(info *types.Info, expr ast.Expr) *types.Var {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	s, ok := info.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	v, _ := s.Obj().(*types.Var)
	return v
}

func mutexName(mu *types.Var) string {
	return mu.Name()
}

// chainSuffix renders the call chain beyond its first hop, so a
// transitive finding names the path to the blocking operation.
func chainSuffix(chain []*types.Func) string {
	if len(chain) <= 1 {
		return ""
	}
	s := ""
	for _, f := range chain[1:] {
		s += " -> " + f.Name()
	}
	return fmt.Sprintf(" via%s", s)
}

// walkSkipFuncLits visits body's nodes without descending into nested
// function literals.
func walkSkipFuncLits(body *ast.BlockStmt, fn func(ast.Node)) {
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		fn(n)
		return true
	})
}
