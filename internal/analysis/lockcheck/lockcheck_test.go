package lockcheck_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/lockcheck"
)

func TestLockcheck(t *testing.T) {
	anatest.Run(t, "testdata", lockcheck.Analyzer)
}
