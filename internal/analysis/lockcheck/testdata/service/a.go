package service

import (
	"net/http"
	"sync"
	"time"
)

type server struct {
	cfg int // declared above the mutex: unguarded

	mu     sync.RWMutex
	state  int
	events int64
}

func (s *server) blockUnderRead(w http.ResponseWriter) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	w.Write(nil) // want `net/http Write while mu is held`
}

func (s *server) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(time.Millisecond) // want `time.Sleep while mu is held`
	s.mu.Unlock()
	time.Sleep(time.Millisecond) // ok: after the release
}

func (s *server) chanUnderLock(c chan int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	<-c      // want `channel receive while mu is held`
	select { // want `select without default while mu is held`
	case v := <-c:
		s.state = v
	}
	select {
	case v := <-c:
		s.state = v
	default:
	}
}

func (s *server) writeResp(w http.ResponseWriter) {
	w.Write(nil) // ok: no lock held in this function
}

func (s *server) transitive(w http.ResponseWriter) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.writeResp(w) // want `call to writeResp blocks \(net/http Write\) while mu is held`
}

func (s *server) locked() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.state
}

func (s *server) deadlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.events = int64(s.locked()) // want `call to locked re-acquires mu already held here: deadlock`
}

func (s *server) writeUnlocked() {
	s.state = 1 // want `write to mu-guarded field state outside any lock region`
}

func (s *server) writeUnderRead() {
	s.mu.RLock()
	defer s.mu.RUnlock()
	s.events++ // want `write to mu-guarded field events while holding only the read lock`
}

func (s *server) writeLocked() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.state = 2 // ok: write lock held
	s.events++
}

func (s *server) setCfg() {
	s.cfg = 1 // ok: cfg is declared above the mutex
}

func (s *server) waived() {
	s.mu.Lock()
	defer s.mu.Unlock()
	//flatvet:locked testdata: exercising the waiver path
	time.Sleep(time.Millisecond)
}
