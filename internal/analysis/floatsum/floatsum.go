// Package floatsum flags floating-point (or complex) accumulation
// inside the body of a range over a map.
//
// This is the sharp end of the maporder invariant: float addition is
// not associative, so even a loop that looks order-independent ("just
// summing") produces run-to-run different low bits under Go's
// randomized map order — the exact bug PR 3 fixed by hand in flowsim's
// rate accumulator. Because no iteration order makes the body safe
// short of sorting, this analyzer has no waiver directive: a
// //flatvet:ordered waiver on the loop does not silence it, and the
// only fix is to iterate sorted keys.
package floatsum

import (
	"go/ast"
	"go/token"
	"go/types"

	"flattree/internal/analysis"
	"flattree/internal/analysis/maporder"
)

var Analyzer = &analysis.Analyzer{
	Name:  "floatsum",
	Doc:   "flags float/complex accumulation (+=, sum = sum + x) inside map-range bodies; unwaivable — sort the keys",
	Scope: analysis.SegmentScope(maporder.DeterministicPackages...),
	Run:   run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			ast.Inspect(rs.Body, func(bn ast.Node) bool {
				if asg, ok := bn.(*ast.AssignStmt); ok {
					checkAssign(pass, asg)
				}
				return true
			})
			return true
		})
	}
	return nil
}

// checkAssign reports asg when it accumulates a float/complex value:
// either `x += e` / `x -= e`, or `x = x + e` / `x = e + x` (and the -
// forms) where both sides name the same x.
func checkAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	switch asg.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		if isFloat(pass.TypesInfo.TypeOf(asg.Lhs[0])) {
			pass.Reportf(asg.TokPos, "float accumulation %s inside map-range body is order-dependent; iterate sorted keys (not waivable)", asg.Tok)
		}
	case token.ASSIGN:
		for i, lhs := range asg.Lhs {
			if i >= len(asg.Rhs) {
				break
			}
			bin, ok := asg.Rhs[i].(*ast.BinaryExpr)
			if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
				continue
			}
			if !isFloat(pass.TypesInfo.TypeOf(lhs)) {
				continue
			}
			l := types.ExprString(lhs)
			if types.ExprString(bin.X) == l || (bin.Op == token.ADD && types.ExprString(bin.Y) == l) {
				pass.Reportf(asg.TokPos, "float accumulation %s = %s inside map-range body is order-dependent; iterate sorted keys (not waivable)", l, types.ExprString(asg.Rhs[i]))
			}
		}
	}
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
