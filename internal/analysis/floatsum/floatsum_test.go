package floatsum_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/floatsum"
)

func TestFloatSum(t *testing.T) {
	anatest.Run(t, "testdata", floatsum.Analyzer)
}
