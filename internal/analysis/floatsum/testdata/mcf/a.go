package mcf

// SumRates is the PR-3 bug shape: += on a float inside a map range.
// Note the //flatvet:ordered waiver does NOT silence floatsum.
func SumRates(m map[int]float64) float64 {
	sum := 0.0
	//flatvet:ordered waived for maporder, but floatsum still fires
	for _, v := range m {
		sum += v // want `float accumulation \+= inside map-range body`
	}
	return sum
}

// SumExplicit is the spelled-out form.
func SumExplicit(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = sum + v // want `float accumulation sum = sum \+ v inside map-range body`
	}
	return sum
}

// SumCommuted accumulates with the variable on the right of +.
func SumCommuted(m map[int]float64) float64 {
	sum := 0.0
	for _, v := range m {
		sum = v + sum // want `float accumulation sum = v \+ sum inside map-range body`
	}
	return sum
}

// SubAccum subtracts; subtraction is just as non-associative.
func SubAccum(m map[int]float64) float64 {
	left := 100.0
	for _, v := range m {
		left -= v // want `float accumulation -= inside map-range body`
	}
	return left
}

// NestedLoop accumulates in a slice loop nested inside the map range:
// still order-dependent through the outer map.
func NestedLoop(m map[int][]float64) float64 {
	sum := 0.0
	for _, vs := range m {
		for _, v := range vs {
			sum += v // want `float accumulation \+= inside map-range body`
		}
	}
	return sum
}

// IntCount accumulates integers: order-independent, not reported.
func IntCount(m map[int]float64) int {
	n := 0
	for range m {
		n += 1
	}
	return n
}

// SliceSum accumulates over a slice: deterministic order, allowed.
func SliceSum(vs []float64) float64 {
	sum := 0.0
	for _, v := range vs {
		sum += v
	}
	return sum
}

// FreshAssign overwrites rather than accumulates: allowed (maporder
// handles whether the loop as a whole is ordered).
func FreshAssign(m map[int]float64) float64 {
	last := 0.0
	for _, v := range m {
		last = v * 2
	}
	return last
}
