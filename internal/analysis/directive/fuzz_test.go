package directive

import (
	"strings"
	"testing"
)

// FuzzParse drives the waiver-comment parser with arbitrary comment
// text: it must never panic, a successfully parsed directive must have
// a lowercase-letter rule name and a non-empty trimmed reason, and
// rendering it back through String must reparse to the same value.
func FuzzParse(f *testing.F) {
	f.Add("//flatvet:ordered integer counts are order-independent")
	f.Add("//flatvet:rand topology generation is seeded upstream")
	f.Add("//flatvet:ordered")
	f.Add("//flatvet:")
	f.Add("//flatvet")
	f.Add("// flatvet:ordered reason")
	f.Add("//flatvet:clock \t wall time feeds telemetry only")
	f.Add("//flatvet:ORDERED shouting")
	f.Add("//flatvet:ordered nbsp reason")
	f.Add("/* block */")
	f.Add("//")
	f.Add("")
	f.Add("//flatvet:ordered \"quoted\\reason\"")
	f.Fuzz(func(t *testing.T, comment string) {
		d, ok, errText := Parse(comment)
		if !ok {
			if errText != "" {
				t.Fatalf("Parse(%q): not-a-directive but err %q", comment, errText)
			}
			if d != (Directive{}) {
				t.Fatalf("Parse(%q): not-a-directive but nonzero result %+v", comment, d)
			}
			return
		}
		if errText != "" {
			// Malformed: must not leak a partially parsed directive.
			if d != (Directive{}) {
				t.Fatalf("Parse(%q): malformed but nonzero result %+v", comment, d)
			}
			return
		}
		if d.Name == "" || d.Reason == "" {
			t.Fatalf("Parse(%q): ok directive with empty field: %+v", comment, d)
		}
		for _, r := range d.Name {
			if r < 'a' || r > 'z' {
				t.Fatalf("Parse(%q): rule name %q has non-lowercase rune", comment, d.Name)
			}
		}
		if strings.TrimSpace(d.Reason) != d.Reason {
			t.Fatalf("Parse(%q): reason %q not trimmed", comment, d.Reason)
		}
		// Canonical form must round-trip — unless the reason itself
		// contains characters that re-tokenize differently (a reason
		// with interior newlines cannot appear in a real line comment,
		// so only assert round-trip for single-line reasons).
		if !strings.ContainsFunc(d.Reason, func(r rune) bool { return r == '\n' || r == '\r' }) {
			d2, ok2, err2 := Parse(d.String())
			if !ok2 || err2 != "" || d2 != d {
				t.Fatalf("round trip: Parse(%q) -> %+v, ok=%v, err=%q; want %+v", d.String(), d2, ok2, err2, d)
			}
		}
	})
}
