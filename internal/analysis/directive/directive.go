// Package directive parses flatvet waiver comments.
//
// A waiver is a line comment of the form
//
//	//flatvet:<name> <reason>
//
// attached to the line it waives (same line as the flagged statement,
// or the line immediately above it). <name> identifies the analyzer
// rule being waived (e.g. "ordered" for maporder) and <reason> is a
// mandatory free-text justification — a waiver without a reason is
// itself a diagnostic, so "silently turned off" never type-checks past
// review.
//
// The syntax deliberately mirrors //go:build-style directives: no space
// after //, a single lowercase tool prefix, and a colon-separated rule
// name. //flatvet: followed by anything that does not parse is reported
// by the suite runner as a malformed directive rather than ignored, so
// typos fail CI instead of silently waiving nothing.
package directive

import (
	"go/ast"
	"go/token"
	"strings"
	"unicode"
)

// Prefix is the comment prefix that marks a flatvet directive.
const Prefix = "//flatvet:"

// Directive is one parsed waiver.
type Directive struct {
	Name   string // rule name, e.g. "ordered"
	Reason string // mandatory justification, trimmed
}

// String renders the directive back to its canonical comment form.
func (d Directive) String() string {
	return Prefix + d.Name + " " + d.Reason
}

// Parse parses a single comment's text (including the leading //). It
// returns ok=false if the comment is not a flatvet directive at all.
// It returns ok=true with err != "" when the comment claims to be a
// directive but is malformed; err is a human-readable explanation.
func Parse(comment string) (d Directive, ok bool, err string) {
	if !strings.HasPrefix(comment, Prefix) {
		// "// flatvet:ordered" (space after //) is a classic typo that
		// would otherwise silently not waive; treat it as malformed.
		if strings.HasPrefix(comment, "//") {
			trimmed := strings.TrimSpace(comment[2:])
			if strings.HasPrefix(trimmed, "flatvet:") {
				return Directive{}, true, "flatvet directive must start exactly with //flatvet: (no space after //)"
			}
		}
		return Directive{}, false, ""
	}
	rest := comment[len(Prefix):]
	name := rest
	reason := ""
	if i := strings.IndexFunc(rest, unicode.IsSpace); i >= 0 {
		name, reason = rest[:i], strings.TrimSpace(rest[i:])
	}
	if name == "" {
		return Directive{}, true, "missing rule name after //flatvet:"
	}
	for _, r := range name {
		if r < 'a' || r > 'z' {
			return Directive{}, true, "rule name must be lowercase letters, got " + strconvQuote(name)
		}
	}
	if reason == "" {
		return Directive{}, true, "//flatvet:" + name + " requires a reason (//flatvet:" + name + " <why this is safe>)"
	}
	return Directive{Name: name, Reason: reason}, true, ""
}

// strconvQuote is a minimal strconv.Quote to keep the dependency
// surface of the fuzzed parser to strings+unicode only.
func strconvQuote(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for _, r := range s {
		if r == '"' || r == '\\' {
			b.WriteByte('\\')
		}
		if unicode.IsPrint(r) {
			b.WriteRune(r)
		} else {
			b.WriteString("\\u")
			const hex = "0123456789abcdef"
			for shift := 12; shift >= 0; shift -= 4 {
				b.WriteByte(hex[(r>>uint(shift))&0xf])
			}
		}
	}
	b.WriteByte('"')
	return b.String()
}

// Malformed is one syntactically invalid directive found in a file.
type Malformed struct {
	Pos token.Pos
	Err string
}

// Entry is one well-formed directive and where it appeared.
type Entry struct {
	Pos token.Pos
	D   Directive
}

// Index holds the parsed directives of one package, queryable by the
// line a diagnostic lands on.
type Index struct {
	fset *token.FileSet
	// byLine maps file -> line -> directives attached to that line.
	byLine    map[string]map[int][]Directive
	entries   []Entry
	malformed []Malformed
}

// NewIndex parses every comment in files into an Index. A directive
// waives its own line and the line below it (so it can sit on the
// flagged statement or immediately above it).
func NewIndex(fset *token.FileSet, files []*ast.File) *Index {
	ix := &Index{fset: fset, byLine: make(map[string]map[int][]Directive)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, isDirective, errText := Parse(c.Text)
				if !isDirective {
					continue
				}
				if errText != "" {
					ix.malformed = append(ix.malformed, Malformed{Pos: c.Pos(), Err: errText})
					continue
				}
				ix.entries = append(ix.entries, Entry{Pos: c.Pos(), D: d})
				pos := fset.Position(c.Pos())
				lines := ix.byLine[pos.Filename]
				if lines == nil {
					lines = make(map[int][]Directive)
					ix.byLine[pos.Filename] = lines
				}
				// Attach to the comment's own line and the next line.
				lines[pos.Line] = append(lines[pos.Line], d)
				lines[pos.Line+1] = append(lines[pos.Line+1], d)
			}
		}
	}
	return ix
}

// Waived reports whether a diagnostic of rule name at pos is covered by
// a directive, returning its reason when it is.
func (ix *Index) Waived(name string, pos token.Pos) (reason string, ok bool) {
	p := ix.fset.Position(pos)
	for _, d := range ix.byLine[p.Filename][p.Line] {
		if d.Name == name {
			return d.Reason, true
		}
	}
	return "", false
}

// Malformed returns the malformed directives found during indexing, in
// file order.
func (ix *Index) Malformed() []Malformed { return ix.malformed }

// Entries returns every well-formed directive found during indexing,
// in file order. The suite uses this to reject waivers naming rules no
// analyzer owns (a typo like //flatvet:order would otherwise silently
// waive nothing).
func (ix *Index) Entries() []Entry { return ix.entries }
