package directive

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

func TestParse(t *testing.T) {
	cases := []struct {
		in         string
		wantOK     bool // is it a flatvet directive at all
		wantErr    bool // malformed
		wantName   string
		wantReason string
	}{
		{"//flatvet:ordered integer counts are order-independent", true, false, "ordered", "integer counts are order-independent"},
		{"//flatvet:rand jitter outside the seeded experiment path", true, false, "rand", "jitter outside the seeded experiment path"},
		{"//flatvet:clock   wall time feeds telemetry only  ", true, false, "clock", "wall time feeds telemetry only"},
		{"//flatvet:ordered\tkeys copied then sorted", true, false, "ordered", "keys copied then sorted"},
		{"// plain comment", false, false, "", ""},
		{"//go:generate stringer", false, false, "", ""},
		{"//flatvet:", true, true, "", ""},
		{"//flatvet:ordered", true, true, "", ""},          // missing reason
		{"//flatvet:ordered    ", true, true, "", ""},      // whitespace-only reason
		{"//flatvet:Ordered because", true, true, "", ""},  // uppercase rule
		{"//flatvet:ord-ered because", true, true, "", ""}, // non-letter rule
		{"// flatvet:ordered because", true, true, "", ""}, // space after //
		{"//  flatvet:ordered because", true, true, "", ""},
		{"//flatvet", false, false, "", ""}, // no colon: not a directive
	}
	for _, c := range cases {
		d, ok, errText := Parse(c.in)
		if ok != c.wantOK {
			t.Errorf("Parse(%q) ok = %v, want %v", c.in, ok, c.wantOK)
			continue
		}
		if (errText != "") != c.wantErr {
			t.Errorf("Parse(%q) err = %q, want malformed=%v", c.in, errText, c.wantErr)
			continue
		}
		if !c.wantErr && ok {
			if d.Name != c.wantName || d.Reason != c.wantReason {
				t.Errorf("Parse(%q) = {%q %q}, want {%q %q}", c.in, d.Name, d.Reason, c.wantName, c.wantReason)
			}
		}
	}
}

func TestRoundTrip(t *testing.T) {
	d := Directive{Name: "ordered", Reason: "sorted downstream"}
	d2, ok, errText := Parse(d.String())
	if !ok || errText != "" || d2 != d {
		t.Errorf("round trip failed: %v %v %q", d2, ok, errText)
	}
}

func TestIndexWaivesOwnAndNextLine(t *testing.T) {
	src := `package p

func f(m map[int]int) int {
	n := 0
	//flatvet:ordered integer sum is order-independent
	for range m { // line 6
		n++
	}
	for range m { //flatvet:ordered same-line waiver
		n++
	}
	for range m { // line 12: not waived
		n++
	}
	//flatvet:bogus-name!!
	return n
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	ix := NewIndex(fset, []*ast.File{f})

	posAtLine := func(line int) token.Pos {
		tf := fset.File(f.Pos())
		return tf.LineStart(line)
	}
	if _, ok := ix.Waived("ordered", posAtLine(6)); !ok {
		t.Error("line 6 should be waived by the directive on line 5")
	}
	if _, ok := ix.Waived("ordered", posAtLine(9)); !ok {
		t.Error("line 9 should be waived by its same-line directive")
	}
	if _, ok := ix.Waived("ordered", posAtLine(12)); ok {
		t.Error("line 12 should not be waived")
	}
	if _, ok := ix.Waived("rand", posAtLine(6)); ok {
		t.Error("waiver names must match the rule being waived")
	}
	if got := len(ix.Malformed()); got != 1 {
		t.Errorf("got %d malformed directives, want 1 (the bogus-name one)", got)
	}
	if reason, ok := ix.Waived("ordered", posAtLine(6)); !ok || reason != "integer sum is order-independent" {
		t.Errorf("reason = %q, ok = %v", reason, ok)
	}
}
