// Package seededrand enforces that simulation and experiment packages
// draw randomness only from an injected, seeded *rand.Rand.
//
// Two shapes are reported:
//
//   - any use of math/rand's (or math/rand/v2's) package-level state —
//     rand.Intn, rand.Float64, rand.Shuffle, rand.Seed, ... — because
//     the global source is shared across goroutines and seeded outside
//     the experiment's control, and
//   - rand.New(rand.NewSource(...)) whose seed expression reads the
//     wall clock (time.Now), which launders nondeterminism through an
//     apparently-seeded source.
//
// Constructing sources is fine: rand.New, rand.NewSource, rand.NewZipf,
// and the v2 constructors are allowed when the seed comes from config.
// A //flatvet:rand <reason> waiver covers call sites that genuinely
// want ambient randomness (none exist in the tree today).
package seededrand

import (
	"go/ast"
	"go/types"

	"flattree/internal/analysis"
)

// Packages is the final-segment scope in which randomness must be
// injected: everything whose output feeds seeded experiments.
var Packages = []string{
	"flowsim", "packetsim", "mcf", "routing", "control", "churn",
	"experiments", "graph", "topo", "traffic", "placement", "service",
}

// constructors may be called on the package (they build an explicit
// source rather than using the global one).
var constructors = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true,
}

var Analyzer = &analysis.Analyzer{
	Name:      "seededrand",
	Doc:       "forbids global math/rand functions and wall-clock-seeded sources in simulation/experiment packages; inject a seeded *rand.Rand",
	Directive: "rand",
	Scope:     analysis.SegmentScope(Packages...),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				if pkg, ok := randPkgSel(pass, n); ok && !constructors[n.Sel.Name] {
					// Referring to rand.Rand / rand.Source types is how
					// injection is spelled; only functions and variables
					// touch the global source.
					if _, isType := pass.TypesInfo.Uses[n.Sel].(*types.TypeName); !isType {
						pass.Reportf(n.Pos(), "global %s.%s in seeded package; inject a *rand.Rand (or //flatvet:rand <reason>)", pkg, n.Sel.Name)
					}
				}
			case *ast.CallExpr:
				checkWallClockSeed(pass, n)
			}
			return true
		})
	}
	return nil
}

// randPkgSel reports whether sel selects a member of math/rand or
// math/rand/v2 through the package name, returning the import path.
func randPkgSel(pass *analysis.Pass, sel *ast.SelectorExpr) (string, bool) {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok {
		return "", false
	}
	path := pn.Imported().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return "", false
	}
	return path, true
}

// seedTaking are the constructors whose arguments are seed values; a
// wall-clock read anywhere in those arguments defeats reproducibility.
var seedTaking = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

func checkWallClockSeed(pass *analysis.Pass, call *ast.CallExpr) {
	pkg, name, ok := analysis.PkgFuncCall(pass.TypesInfo, call)
	if !ok || (pkg != "math/rand" && pkg != "math/rand/v2") || !seedTaking[name] {
		return
	}
	for _, arg := range call.Args {
		ast.Inspect(arg, func(n ast.Node) bool {
			c, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if p, fn, ok := analysis.PkgFuncCall(pass.TypesInfo, c); ok && p == "time" && fn == "Now" {
				pass.Reportf(call.Pos(), "wall-clock seed in %s.%s; derive the seed from experiment config so runs are reproducible", pkg, name)
				return false
			}
			return true
		})
	}
}
