package traffic

import (
	"math/rand"
	"time"
)

// GlobalDraw uses the shared global source: reported.
func GlobalDraw() int {
	return rand.Intn(10) // want `global math/rand.Intn in seeded package`
}

// GlobalShuffle likewise.
func GlobalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand.Shuffle in seeded package`
}

// FuncValue passes the global function as a value: still a use of the
// global source, reported.
func FuncValue() func() float64 {
	return rand.Float64 // want `global math/rand.Float64 in seeded package`
}

// SeedFromConfig builds an explicit seeded source: allowed.
func SeedFromConfig(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Injected draws from an injected source: allowed.
func Injected(rng *rand.Rand) int {
	return rng.Intn(10)
}

// WallClockSeed launders time.Now through NewSource: reported.
func WallClockSeed() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `wall-clock seed in math/rand.NewSource`
}

// Waived ambient randomness with a reason: allowed.
func Waived() int {
	//flatvet:rand jitter for a log line, not on any experiment path
	return rand.Intn(3)
}
