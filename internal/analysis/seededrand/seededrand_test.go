package seededrand_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	anatest.Run(t, "testdata", seededrand.Analyzer)
}
