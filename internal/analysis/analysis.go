// Package analysis is flatvet's analyzer framework.
//
// It deliberately mirrors the golang.org/x/tools/go/analysis API shape
// (Analyzer with a Run(*Pass), Pass carrying Fset/Files/Pkg/TypesInfo,
// diagnostics reported by position) so each checker could be ported to
// the upstream framework by swapping imports. The upstream module is
// not vendored here — the loader in internal/analysis/load and this
// package together stand in for go/packages + go/analysis using only
// the standard library and the go command.
//
// Two deltas from upstream, both in flatvet's favor:
//
//   - Analyzers declare a Scope over import paths, because the repo's
//     determinism invariants are per-package policy (flowsim must be
//     reproducible; cmd/topobuild printing a table need not be).
//   - Reportf consults the //flatvet:<name> waiver index (see package
//     directive) before recording, so waiver semantics are uniform
//     across analyzers and unwaivable analyzers simply leave Directive
//     empty.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"flattree/internal/analysis/directive"
	"flattree/internal/analysis/load"
)

// Analyzer is one flatvet check.
type Analyzer struct {
	Name string // short lowercase identifier, used in diagnostics
	Doc  string // one-paragraph description

	// Directive is the //flatvet:<Directive> waiver rule name. Empty
	// means diagnostics from this analyzer cannot be waived.
	Directive string

	// Scope reports whether the analyzer applies to a package import
	// path. Nil means all packages.
	Scope func(importPath string) bool

	Run func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Waivers   *directive.Index
	// Loaded is the underlying loader package, giving analyzers access
	// to the per-function summary pass (Loaded.Summary()).
	Loaded *load.Package

	diags []Diagnostic
}

// Reportf records a diagnostic unless a matching waiver directive
// covers its line.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	if p.Analyzer.Directive != "" && p.Waivers != nil {
		if _, ok := p.Waivers.Waived(p.Analyzer.Directive, pos); ok {
			return
		}
	}
	p.diags = append(p.diags, Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Run applies one analyzer to one loaded package and returns its
// diagnostics. Packages outside the analyzer's scope yield nil.
func Run(a *Analyzer, pkg *load.Package) ([]Diagnostic, error) {
	if a.Scope != nil && !a.Scope(pkg.ImportPath) {
		return nil, nil
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Waivers:   directive.NewIndex(pkg.Fset, pkg.Files),
		Loaded:    pkg,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %v", a.Name, pkg.ImportPath, err)
	}
	return pass.diags, nil
}

// SegmentScope returns a Scope matching packages whose final import
// path segment is one of names. Matching on the final segment keeps the
// same policy working for the real tree (flattree/internal/flowsim) and
// for testdata modules (violations/flowsim).
func SegmentScope(names ...string) func(string) bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return func(importPath string) bool {
		return set[LastSegment(importPath)]
	}
}

// LastSegment returns the final slash-separated segment of a path.
func LastSegment(path string) string {
	if i := strings.LastIndexByte(path, '/'); i >= 0 {
		return path[i+1:]
	}
	return path
}

// WalkStack walks the tree rooted at root in depth-first order, calling
// fn with each node and the stack of its ancestors (outermost first,
// not including n itself).
func WalkStack(root ast.Node, fn func(n ast.Node, stack []ast.Node)) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		fn(n, stack)
		stack = append(stack, n)
		return true
	})
}

// PkgFuncCall resolves call to a package-level function of an imported
// package, returning the package path and function name.
func PkgFuncCall(info *types.Info, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, okSel := call.Fun.(*ast.SelectorExpr)
	if !okSel {
		return "", "", false
	}
	id, okID := sel.X.(*ast.Ident)
	if !okID {
		return "", "", false
	}
	pn, okPkg := info.Uses[id].(*types.PkgName)
	if !okPkg {
		return "", "", false
	}
	return pn.Imported().Path(), sel.Sel.Name, true
}

// EnclosingFunc returns the innermost function declaration or literal
// in stack (the body the node executes in), or nil.
func EnclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// FuncBody returns the body of a node returned by EnclosingFunc.
func FuncBody(fn ast.Node) *ast.BlockStmt {
	switch f := fn.(type) {
	case *ast.FuncDecl:
		return f.Body
	case *ast.FuncLit:
		return f.Body
	}
	return nil
}

// SelPkgPath resolves the package that provides sel's member: for
// pkg.Func selectors the imported package, for method selectors the
// package that declares the method.
func SelPkgPath(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
	}
	if s, ok := info.Selections[sel]; ok {
		if obj := s.Obj(); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path(), true
		}
	}
	return "", false
}
