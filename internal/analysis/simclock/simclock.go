// Package simclock forbids wall-clock reads in packages that run on
// simulated event time.
//
// flowsim, packetsim, and churn advance a virtual clock, and recorder
// stamps its events with that clock's values; a time.Now or time.Since
// in their event paths silently couples simulation results (or the
// byte-deterministic journal) to host scheduling. Telemetry is the one
// legitimate consumer of wall time in these packages, so a clock read
// is whitelisted when it
// appears inside the arguments of a call into the telemetry package,
// or when it is assigned to a variable whose every use feeds such a
// call (the `start := time.Now(); defer func(){ span.ObserveSince(start) }()`
// shape). Anything else needs a //flatvet:clock <reason> waiver.
package simclock

import (
	"go/ast"
	"go/token"

	"flattree/internal/analysis"
)

// Packages is the final-segment scope running on simulated time.
// recorder is included because its exports must stay deterministic:
// the one place a trace file records export wall time carries a
// reasoned //flatvet:clock waiver.
var Packages = []string{"flowsim", "packetsim", "churn", "recorder"}

// clockFuncs are the forbidden wall-clock reads.
var clockFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

var Analyzer = &analysis.Analyzer{
	Name:      "simclock",
	Doc:       "forbids time.Now/Since/Until in simulated-time packages except when the value feeds telemetry",
	Directive: "clock",
	Scope:     analysis.SegmentScope(Packages...),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		// First collect the source ranges of calls into telemetry; a
		// clock read inside any of them is instrumentation, not logic.
		var telemetryRanges [][2]token.Pos
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if path, ok := analysis.SelPkgPath(pass.TypesInfo, sel); ok && analysis.LastSegment(path) == "telemetry" {
					telemetryRanges = append(telemetryRanges, [2]token.Pos{call.Pos(), call.End()})
				}
			}
			return true
		})
		inTelemetry := func(pos token.Pos) bool {
			for _, r := range telemetryRanges {
				if r[0] <= pos && pos < r[1] {
					return true
				}
			}
			return false
		}

		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			pkg, name, ok := analysis.PkgFuncCall(pass.TypesInfo, call)
			if !ok || pkg != "time" || !clockFuncs[name] {
				return
			}
			if inTelemetry(call.Pos()) {
				return
			}
			if assignedOnlyToTelemetry(pass, call, stack, inTelemetry) {
				return
			}
			pass.Reportf(call.Pos(), "wall-clock time.%s in simulated-time package; use the event clock, route it through telemetry, or add //flatvet:clock <reason>", name)
		})
	}
	return nil
}

// assignedOnlyToTelemetry reports whether call is the RHS of a
// single-variable definition whose every subsequent use sits inside a
// telemetry call (directly, or as the argument of a time.Since that is
// itself inside one).
func assignedOnlyToTelemetry(pass *analysis.Pass, call *ast.CallExpr, stack []ast.Node, inTelemetry func(token.Pos) bool) bool {
	if len(stack) == 0 {
		return false
	}
	asg, ok := stack[len(stack)-1].(*ast.AssignStmt)
	if !ok || asg.Tok != token.DEFINE || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) {
		return false
	}
	id, ok := asg.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return false
	}
	obj := pass.TypesInfo.Defs[id]
	if obj == nil {
		return false
	}
	enclosing := analysis.EnclosingFunc(stack)
	if enclosing == nil {
		return false
	}
	used, allTelemetry := false, true
	analysis.WalkStack(analysis.FuncBody(enclosing), func(n ast.Node, istack []ast.Node) {
		use, ok := n.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[use] != obj {
			return
		}
		used = true
		if inTelemetry(use.Pos()) {
			return
		}
		// time.Since(v) / t.Sub(v) feeding telemetry one level up is
		// already covered by inTelemetry on the use position; anything
		// else is a simulation-logic use.
		allTelemetry = false
	})
	return used && allTelemetry
}
