package simclock_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/simclock"
)

func TestSimClock(t *testing.T) {
	anatest.Run(t, "testdata", simclock.Analyzer)
}
