package flowsim

import (
	"time"

	"scope/telemetry"
)

// EventTimestamp stamps simulation events with wall time: reported.
func EventTimestamp() int64 {
	return time.Now().UnixNano() // want `wall-clock time.Now in simulated-time package`
}

// Deadline couples sim logic to the host clock: reported.
func Deadline(start time.Time) bool {
	return time.Since(start) > time.Second // want `wall-clock time.Since in simulated-time package`
}

// DirectTelemetry reads the clock inside a telemetry call: allowed.
func DirectTelemetry() {
	telemetry.ObserveAt("tick", time.Now())
}

// SpanSince feeds a method on a telemetry type: allowed.
func SpanSince(start time.Time) {
	s := telemetry.StartSpan("phase")
	defer s.End()
	s.ObserveSince(start)
}

// TimedPhase is the start/Since instrumentation shape: the variable's
// only use is inside a telemetry call, so both reads are allowed.
func TimedPhase() {
	start := time.Now()
	work()
	telemetry.ObserveDuration("phase", time.Since(start))
}

// MixedUse also branches on the clock value, so it is sim logic:
// reported.
func MixedUse() bool {
	start := time.Now() // want `wall-clock time.Now in simulated-time package`
	work()
	telemetry.ObserveDuration("phase", time.Since(start))
	return time.Since(start) > time.Second // want `wall-clock time.Since in simulated-time package`
}

// Waived keeps an explicit escape hatch: allowed.
func Waived() time.Time {
	//flatvet:clock boot banner only, never enters event processing
	return time.Now()
}

func work() {}
