// Package telemetry is a stub of the real telemetry package: simclock
// whitelists wall-clock reads that feed calls into a package whose
// final import-path segment is "telemetry".
package telemetry

import "time"

func ObserveDuration(name string, d time.Duration) {}

func ObserveAt(name string, t time.Time) {}

type Span struct{}

func (s *Span) End()                         {}
func (s *Span) ObserveSince(start time.Time) {}
func StartSpan(name string) *Span            { return &Span{} }
