package recorder

import "time"

// EventStamp would stamp a recorded event with wall time, destroying
// journal byte-determinism: reported.
func EventStamp() float64 {
	return float64(time.Now().UnixNano()) / 1e9 // want `wall-clock time.Now in simulated-time package`
}

// ExportedAt is the trace exporter's provenance shape — wall time about
// the export itself, never simulation state — and needs the reasoned
// waiver: allowed.
func ExportedAt() string {
	//flatvet:clock trace metadata records export wall time, never sim state
	return time.Now().UTC().Format(time.RFC3339)
}
