package sarif

import (
	"bytes"
	"testing"
)

// FuzzRoundTrip pins the canonical-form property the CI artifact relies
// on: any input Decode accepts re-encodes to a canonical byte string
// that decodes again and re-encodes to the SAME bytes — decode∘encode
// is a fixpoint after one normalization pass, exactly like the recorder
// journal. Arbitrary field order, whitespace, and unknown properties in
// the input are allowed to normalize away; the normal form itself is
// not allowed to drift.
func FuzzRoundTrip(f *testing.F) {
	if enc, err := Encode(sample()); err == nil {
		f.Add(enc)
	}
	f.Add([]byte(`{"$schema":"s","version":"2.1.0","runs":[]}`))
	f.Add([]byte(`{"version":"2.1.0","runs":[{"tool":{"driver":{"name":"flatvet","rules":[]}},"results":[{"ruleId":"r","level":"warning","message":{"text":"m"},"locations":[{"physicalLocation":{"artifactLocation":{"uri":"a.go"},"region":{"startLine":1}}}]}]}],"unknown":true}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := Decode(data)
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		enc1, err := Encode(l)
		if err != nil {
			t.Fatalf("decoded log failed to encode: %v", err)
		}
		l2, err := Decode(enc1)
		if err != nil {
			t.Fatalf("canonical form rejected by decoder: %v\n%q", err, enc1)
		}
		enc2, err := Encode(l2)
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical form is not a fixpoint:\nenc1: %q\nenc2: %q", enc1, enc2)
		}
	})
}
