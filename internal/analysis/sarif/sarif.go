// Package sarif encodes flatvet findings as a minimal SARIF 2.1.0 log,
// the interchange format CI code-scanning UIs ingest.
//
// The encoder is canonical: field order is fixed by the struct
// definitions, output is two-space indented, and Encode(Decode(b)) == b
// for any b Encode produced. Foreign SARIF (different field order,
// extra whitespace, unknown properties) is normalized by one
// decode/encode pass, after which the bytes are a fixpoint — the same
// contract the recorder journal keeps, pinned by a fuzz target.
package sarif

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// Version and Schema identify the SARIF dialect emitted.
const (
	Version = "2.1.0"
	Schema  = "https://json.schemastore.org/sarif-2.1.0.json"
)

// Log is the document root.
type Log struct {
	Schema  string `json:"$schema"`
	Version string `json:"version"`
	Runs    []Run  `json:"runs"`
}

// Run is one invocation of one tool.
type Run struct {
	Tool    Tool     `json:"tool"`
	Results []Result `json:"results"`
}

// Tool wraps the driver description.
type Tool struct {
	Driver Driver `json:"driver"`
}

// Driver describes the tool and declares its rules.
type Driver struct {
	Name           string `json:"name"`
	InformationURI string `json:"informationUri,omitempty"`
	Rules          []Rule `json:"rules"`
}

// Rule is one analyzer, declared once per run and referenced by
// results via RuleID.
type Rule struct {
	ID               string  `json:"id"`
	ShortDescription Message `json:"shortDescription"`
}

// Message is SARIF's string wrapper.
type Message struct {
	Text string `json:"text"`
}

// Result is one finding.
type Result struct {
	RuleID    string     `json:"ruleId"`
	Level     string     `json:"level"`
	Message   Message    `json:"message"`
	Locations []Location `json:"locations"`
}

// Location wraps the physical location of a finding.
type Location struct {
	PhysicalLocation PhysicalLocation `json:"physicalLocation"`
}

// PhysicalLocation is a file plus a region within it.
type PhysicalLocation struct {
	ArtifactLocation ArtifactLocation `json:"artifactLocation"`
	Region           Region           `json:"region"`
}

// ArtifactLocation is a (slash-separated, usually relative) file path.
type ArtifactLocation struct {
	URI string `json:"uri"`
}

// Region is a 1-based source position.
type Region struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn,omitempty"`
}

// New assembles a single-run log for one tool.
func New(driver Driver, results []Result) Log {
	if results == nil {
		results = []Result{}
	}
	if driver.Rules == nil {
		driver.Rules = []Rule{}
	}
	return Log{
		Schema:  Schema,
		Version: Version,
		Runs:    []Run{{Tool: Tool{Driver: driver}, Results: results}},
	}
}

// Encode renders l in canonical form: two-space indent, fixed field
// order, trailing newline. Encode(Decode(Encode(l))) == Encode(l).
func Encode(l Log) ([]byte, error) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	enc.SetEscapeHTML(false)
	if err := enc.Encode(l); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// Decode parses a SARIF log, rejecting trailing garbage and version
// mismatches. Unknown properties are dropped, which is what makes one
// decode/encode pass normalizing.
func Decode(data []byte) (Log, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	var l Log
	if err := dec.Decode(&l); err != nil {
		return Log{}, fmt.Errorf("sarif: decode: %w", err)
	}
	var extra json.RawMessage
	if err := dec.Decode(&extra); err != io.EOF {
		return Log{}, fmt.Errorf("sarif: trailing data after log")
	}
	if l.Version != Version {
		return Log{}, fmt.Errorf("sarif: unsupported version %q (want %q)", l.Version, Version)
	}
	for i := range l.Runs {
		if l.Runs[i].Results == nil {
			l.Runs[i].Results = []Result{}
		}
		if l.Runs[i].Tool.Driver.Rules == nil {
			l.Runs[i].Tool.Driver.Rules = []Rule{}
		}
	}
	return l, nil
}
