package sarif

import (
	"bytes"
	"strings"
	"testing"
)

func sample() Log {
	return New(
		Driver{
			Name:           "flatvet",
			InformationURI: "https://example.invalid/flatvet",
			Rules: []Rule{
				{ID: "lockcheck", ShortDescription: Message{Text: "blocking calls under the service mutex"}},
				{ID: "maporder", ShortDescription: Message{Text: "range over map in deterministic code"}},
			},
		},
		[]Result{
			{
				RuleID:  "maporder",
				Level:   "warning",
				Message: Message{Text: "range over map m is nondeterministic"},
				Locations: []Location{{PhysicalLocation: PhysicalLocation{
					ArtifactLocation: ArtifactLocation{URI: "internal/flowsim/sim.go"},
					Region:           Region{StartLine: 47, StartColumn: 2},
				}}},
			},
		},
	)
}

func TestEncodeDecodeByteIdentical(t *testing.T) {
	enc1, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	dec, err := Decode(enc1)
	if err != nil {
		t.Fatalf("decoding own output: %v\n%s", err, enc1)
	}
	enc2, err := Encode(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("decode->encode is not byte-identical:\nfirst:  %q\nsecond: %q", enc1, enc2)
	}
}

func TestEncodeShape(t *testing.T) {
	enc, err := Encode(sample())
	if err != nil {
		t.Fatal(err)
	}
	s := string(enc)
	for _, want := range []string{
		`"$schema": "` + Schema + `"`,
		`"version": "2.1.0"`,
		`"name": "flatvet"`,
		`"ruleId": "maporder"`,
		`"startLine": 47`,
		`"startColumn": 2`,
		`"uri": "internal/flowsim/sim.go"`,
	} {
		if !strings.Contains(s, want) {
			t.Errorf("encoded log missing %s:\n%s", want, s)
		}
	}
	if !strings.HasSuffix(s, "\n") {
		t.Error("encoded log must end with a newline")
	}
}

func TestDecodeRejects(t *testing.T) {
	cases := map[string]string{
		"trailing garbage": `{"$schema":"x","version":"2.1.0","runs":[]} {"more":1}`,
		"wrong version":    `{"$schema":"x","version":"1.0.0","runs":[]}`,
		"not json":         `]]]`,
	}
	for name, in := range cases {
		if _, err := Decode([]byte(in)); err == nil {
			t.Errorf("%s: Decode accepted %q", name, in)
		}
	}
}

func TestDecodeNormalizesNils(t *testing.T) {
	l, err := Decode([]byte(`{"$schema":"x","version":"2.1.0","runs":[{"tool":{"driver":{"name":"flatvet"}}}]}`))
	if err != nil {
		t.Fatal(err)
	}
	if l.Runs[0].Results == nil || l.Runs[0].Tool.Driver.Rules == nil {
		t.Fatalf("nil results/rules not normalized to empty slices: %+v", l.Runs[0])
	}
	enc1, err := Encode(l)
	if err != nil {
		t.Fatal(err)
	}
	l2, err := Decode(enc1)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := Encode(l2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc1, enc2) {
		t.Fatalf("normalized form is not a fixpoint:\n%q\n%q", enc1, enc2)
	}
}
