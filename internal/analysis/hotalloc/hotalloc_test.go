package hotalloc_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/hotalloc"
)

func TestHotalloc(t *testing.T) {
	anatest.Run(t, "testdata", hotalloc.Analyzer)
}
