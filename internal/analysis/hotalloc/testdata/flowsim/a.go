package flowsim

import (
	"fmt"
	"sort"
)

type state struct {
	scratch []int32
}

//flatvet:hotpath testdata: allocation-round stand-in
func (s *state) hot(n int) []int32 {
	out := s.scratch[:0]
	for i := 0; i < n; i++ {
		out = append(out, int32(i)) // ok: pooled backing via reslice
	}
	buf := make([]int, 0, n)
	buf = append(buf, n) // ok: presized make
	var grow []int
	grow = append(grow, len(buf)) // want `append grows un-presized slice grow in hot path`
	m := map[int]int{}            // want `map literal allocates in hot path`
	lit := []int{1, 2}            // want `slice literal allocates in hot path`
	msg := fmt.Sprintf("%d", n)   // want `fmt.Sprintf allocates in hot path`
	_, _, _ = m, lit, msg
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] }) // want `argument boxes \[\]int32 into interface any in hot path`
	for i := 0; i < n; i++ {
		f := func() int { return i } // want `closure inside a loop allocates per iteration in hot path`
		grow[0] = f()
	}
	return out
}

func cold(n int) string {
	return fmt.Sprintf("%d", n) // ok: unmarked function
}

//flatvet:hotpath testdata: waiver case
func waivedHot(n int) string {
	//flatvet:alloc testdata: error-path formatting, cold in practice
	return fmt.Sprintf("%d", n)
}

func maker() func() {
	//flatvet:hotpath testdata: marked function literal
	emit := func(n int) string {
		return fmt.Sprint(n) // want `fmt.Sprint allocates in hot path`
	}
	emit(1)
	return func() {}
}
