// Package hotalloc gates allocation in functions marked
// //flatvet:hotpath.
//
// The SoA allocator's contract (PR 7) is that steady-state allocation
// rounds do not allocate: scratch is pooled, growth is amortized, and
// the 10M-flow runs stay flat. That contract is invisible to the type
// checker and decays one convenient fmt.Sprintf at a time, so functions
// on the contract carry a //flatvet:hotpath <why> marker and the
// analyzer flags the allocation shapes that break it:
//
//   - any call into package fmt (formatting allocates; error paths that
//     genuinely want fmt carry a //flatvet:alloc waiver),
//   - map and slice composite literals,
//   - append growth into a slice declared without capacity in the same
//     function (`var s []T`, `make([]T, 0)`, `[]T{}`) — pooled backing
//     (`x[:0]`) and capacity-sized make are the accepted shapes,
//   - function literals inside loops (a closure that captures loop
//     state allocates per iteration), and
//   - call arguments boxed into interface parameters.
//
// The marker syntax is the ordinary directive grammar, so a reasonless
// //flatvet:hotpath is reported as malformed by the suite, and the
// mandatory reason documents why the function is hot. Findings are
// waivable with //flatvet:alloc <reason>.
package hotalloc

import (
	"go/ast"
	"go/types"

	"flattree/internal/analysis"
)

// Marker is the directive rule name that puts a function under this
// analyzer's contract.
const Marker = "hotpath"

var Analyzer = &analysis.Analyzer{
	Name:      "hotalloc",
	Doc:       "flags allocation (fmt, literals, un-presized append, per-iteration closures, interface boxing) in //flatvet:hotpath functions",
	Directive: "alloc",
	Scope:     nil, // any package may mark a hot path
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var pos = n
			switch n := n.(type) {
			case *ast.FuncDecl:
				body = n.Body
			case *ast.FuncLit:
				body = n.Body
			default:
				return true
			}
			if body == nil {
				return true
			}
			if _, hot := pass.Waivers.Waived(Marker, pos.Pos()); !hot {
				return true
			}
			checkHot(pass, body)
			return false // the whole literal/declaration is covered
		})
	}
	return nil
}

func checkHot(pass *analysis.Pass, body *ast.BlockStmt) {
	unpresized := unpresizedSlices(pass, body)

	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if pkg, name, ok := analysis.PkgFuncCall(pass.TypesInfo, n); ok && pkg == "fmt" {
				pass.Reportf(n.Pos(), "fmt.%s allocates in hot path; move formatting off the hot path or add //flatvet:alloc <reason>", name)
				return
			}
			checkAppendGrowth(pass, n, unpresized)
			checkBoxing(pass, n)
		case *ast.CompositeLit:
			t := pass.TypesInfo.TypeOf(n)
			if t == nil {
				return
			}
			switch t.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hot path; hoist it to setup or pooled state (or add //flatvet:alloc <reason>)")
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hot path; hoist it to setup or pooled state (or add //flatvet:alloc <reason>)")
			}
		case *ast.FuncLit:
			if loopDepth(stack) > 0 {
				pass.Reportf(n.Pos(), "closure inside a loop allocates per iteration in hot path; hoist it (or add //flatvet:alloc <reason>)")
			}
		}
	})
}

// unpresizedSlices collects the local slice variables declared without
// any capacity: `var s []T`, `s := make([]T, 0)` (no capacity
// argument), and `s := []T{}`. Reslices of pooled arrays (`x[:0]`) and
// make-with-capacity do not qualify.
func unpresizedSlices(pass *analysis.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	out := map[*types.Var]bool{}
	mark := func(name *ast.Ident, isSlice, presized bool) {
		if !isSlice || presized || name.Name == "_" {
			return
		}
		if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
			out[v] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok.String() != ":=" {
				return true
			}
			if len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				id, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				t := pass.TypesInfo.TypeOf(n.Rhs[i])
				if t == nil {
					continue
				}
				_, isSlice := t.Underlying().(*types.Slice)
				mark(id, isSlice, presizedExpr(pass, n.Rhs[i]))
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) > 0 {
					continue
				}
				for _, name := range vs.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						if _, isSlice := v.Type().Underlying().(*types.Slice); isSlice {
							out[v] = true
						}
					}
				}
			}
		}
		return true
	})
	return out
}

// presizedExpr reports whether the declaring expression carries
// capacity: a reslice, a make with an explicit capacity, or anything
// opaque (a call result, an index into pooled state) that the analyzer
// gives the benefit of the doubt.
func presizedExpr(pass *analysis.Pass, e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.SliceExpr:
		return true
	case *ast.CompositeLit:
		return false
	case *ast.CallExpr:
		if id, ok := e.Fun.(*ast.Ident); ok {
			if b, ok := pass.TypesInfo.Uses[id].(*types.Builtin); ok && b.Name() == "make" {
				return len(e.Args) >= 3
			}
		}
		return true
	}
	return true
}

// checkAppendGrowth flags `s = append(s, ...)` when s is a local slice
// declared without capacity.
func checkAppendGrowth(pass *analysis.Pass, call *ast.CallExpr, unpresized map[*types.Var]bool) {
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	dst, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := pass.TypesInfo.Uses[dst].(*types.Var)
	if !ok || !unpresized[v] {
		return
	}
	pass.Reportf(call.Pos(), "append grows un-presized slice %s in hot path; presize it (make with capacity) or reuse pooled backing (or add //flatvet:alloc <reason>)", dst.Name)
}

// checkBoxing flags call arguments converted to interface parameter
// types: the conversion heap-allocates the boxed value.
func checkBoxing(pass *analysis.Pass, call *ast.CallExpr) {
	if pkg, _, ok := analysis.PkgFuncCall(pass.TypesInfo, call); ok && pkg == "fmt" {
		return // already flagged wholesale
	}
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // slice passed through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		default:
			continue
		}
		if !types.IsInterface(pt) {
			continue
		}
		at := pass.TypesInfo.TypeOf(arg)
		if at == nil || types.IsInterface(at) {
			continue
		}
		if bt, ok := at.(*types.Basic); ok && bt.Kind() == types.UntypedNil {
			continue
		}
		pass.Reportf(arg.Pos(), "argument boxes %s into interface %s in hot path; avoid the conversion (or add //flatvet:alloc <reason>)", at.String(), pt.String())
	}
}

// loopDepth counts the for/range statements in stack.
func loopDepth(stack []ast.Node) int {
	d := 0
	for _, n := range stack {
		switch n.(type) {
		case *ast.ForStmt, *ast.RangeStmt:
			d++
		}
	}
	return d
}
