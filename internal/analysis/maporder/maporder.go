// Package maporder flags `for range` over a map in the repo's
// deterministic packages.
//
// Go randomizes map iteration order, so any map range whose body
// observes order — appending to output, accumulating floats, picking
// "the first" anything — is a reproducibility bug of exactly the kind
// PR 3 fixed by hand in flowsim. The analyzer allows two escapes:
//
//   - the collect-then-sort idiom: a loop whose body is a single append
//     of the key (or value) into a slice that the same function later
//     passes to sort.* or slices.Sort*, and
//   - an explicit //flatvet:ordered <reason> waiver for bodies that are
//     genuinely order-independent (integer counting, set insertion).
//
// Everything else must iterate sorted keys.
package maporder

import (
	"go/ast"
	"go/types"

	"flattree/internal/analysis"
)

// DeterministicPackages is the final-segment scope in which map
// iteration order must not be observable. Shared with floatsum.
var DeterministicPackages = []string{
	"flowsim", "mcf", "routing", "control", "churn", "experiments", "graph", "topo",
	"service",
}

var Analyzer = &analysis.Analyzer{
	Name:      "maporder",
	Doc:       "flags range-over-map in deterministic packages unless keys are collected for sorting or the loop carries a //flatvet:ordered waiver",
	Directive: "ordered",
	Scope:     analysis.SegmentScope(DeterministicPackages...),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return
			}
			if collectsForSort(pass, rs, stack) {
				return
			}
			pass.Reportf(rs.For, "range over map %s has nondeterministic order; iterate sorted keys or add //flatvet:ordered <reason>", types.ExprString(rs.X))
		})
	}
	return nil
}

// collectsForSort reports whether rs is the benign collect-then-sort
// idiom: the body is exactly `s = append(s, ...)` and s is later handed
// to a sort/slices call in the same function.
func collectsForSort(pass *analysis.Pass, rs *ast.RangeStmt, stack []ast.Node) bool {
	if len(rs.Body.List) != 1 {
		return false
	}
	asg, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(asg.Lhs) != 1 || len(asg.Rhs) != 1 {
		return false
	}
	dst, ok := asg.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return false
	}
	if b, ok := pass.TypesInfo.Uses[fn].(*types.Builtin); !ok || b.Name() != "append" {
		return false
	}
	obj := pass.TypesInfo.Uses[dst]
	if obj == nil {
		return false
	}
	enclosing := analysis.EnclosingFunc(stack)
	if enclosing == nil {
		return false
	}
	sorted := false
	ast.Inspect(analysis.FuncBody(enclosing), func(n ast.Node) bool {
		if sorted {
			return false
		}
		c, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		pkgPath, _, ok := analysis.PkgFuncCall(pass.TypesInfo, c)
		if !ok || (pkgPath != "sort" && pkgPath != "slices") {
			return true
		}
		for _, arg := range c.Args {
			ast.Inspect(arg, func(an ast.Node) bool {
				if id, ok := an.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
					sorted = true
				}
				return !sorted
			})
		}
		return true
	})
	return sorted
}
