// Package web is outside maporder's deterministic scope: raw map
// ranges here are fine and must produce no diagnostics.
package web

func Handlers(m map[string]func()) int {
	n := 0
	for _, h := range m {
		h()
		n++
	}
	return n
}
