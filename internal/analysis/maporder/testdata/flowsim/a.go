package flowsim

import (
	"slices"
	"sort"
)

type Flow struct{ Rate float64 }

// FlowMap exercises named map types: Underlying() must be consulted.
type FlowMap map[int]*Flow

// CollectRates observes map order directly: reported.
func CollectRates(m map[int]*Flow) []float64 {
	var out []float64
	for _, f := range m { // want `range over map m has nondeterministic order`
		out = append(out, f.Rate)
	}
	return out
}

// SortedKeys is the collect-then-sort idiom: allowed.
func SortedKeys(m map[int]*Flow) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// SortedKeysSlices uses the slices package for the sort: allowed.
func SortedKeysSlices(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	return keys
}

// Count carries a valid waiver: allowed.
func Count(m map[int]*Flow) int {
	n := 0
	//flatvet:ordered integer counting is order-independent
	for range m {
		n++
	}
	return n
}

// WrongWaiver waives a different rule, so maporder still fires.
func WrongWaiver(m map[int]*Flow) int {
	n := 0
	//flatvet:rand wrong rule name
	for range m { // want `range over map m has nondeterministic order`
		n++
	}
	return n
}

// CollectNoSort collects keys but never sorts them: reported.
func CollectNoSort(m map[int]*Flow) []int {
	var keys []int
	for k := range m { // want `range over map m has nondeterministic order`
		keys = append(keys, k)
	}
	return keys
}

// NamedMap ranges over a named map type: reported.
func NamedMap(m FlowMap) []float64 {
	var out []float64
	for _, f := range m { // want `range over map m has nondeterministic order`
		out = append(out, f.Rate)
	}
	return out
}

// SliceRange is not a map range: allowed.
func SliceRange(s []int) int {
	t := 0
	for _, v := range s {
		t += v
	}
	return t
}

// SortOtherSlice sorts a different slice than the one collected into:
// reported.
func SortOtherSlice(m map[int]*Flow) []int {
	var keys []int
	other := []int{3, 1}
	for k := range m { // want `range over map m has nondeterministic order`
		keys = append(keys, k)
	}
	sort.Ints(other)
	return keys
}
