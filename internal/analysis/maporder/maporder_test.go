package maporder_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/maporder"
)

func TestMapOrder(t *testing.T) {
	anatest.Run(t, "testdata", maporder.Analyzer)
}
