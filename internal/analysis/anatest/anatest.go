// Package anatest is flatvet's analogue of
// golang.org/x/tools/go/analysis/analysistest: it runs one analyzer
// over a testdata module and checks the produced diagnostics against
// `// want` comments in the sources.
//
// A want comment holds one or more quoted regular expressions and sits
// on the line where the diagnostics are expected:
//
//	for range m { // want `range over map`
//
// Every diagnostic must match an expectation on its line and every
// expectation must be matched by exactly one diagnostic; anything else
// fails the test. Backquoted and double-quoted strings are both
// accepted.
package anatest

import (
	"regexp"
	"strconv"
	"strings"
	"testing"

	"flattree/internal/analysis"
	"flattree/internal/analysis/load"
)

type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	raw     string
	matched bool
}

// Run loads patterns (default ./...) rooted at dir — which must contain
// a go.mod so the go command can list it — and applies a to every
// loaded package, checking diagnostics against // want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer, patterns ...string) {
	t.Helper()
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		t.Fatalf("loading %s: %v", dir, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("no packages loaded from %s", dir)
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: testdata must type-check: %v", pkg.ImportPath, terr)
		}
	}

	var expects []*expectation
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					pos := pkg.Fset.Position(c.Pos())
					for _, raw := range parseWants(t, pos.String(), c.Text) {
						re, err := regexp.Compile(raw)
						if err != nil {
							t.Fatalf("%s: bad want regexp %q: %v", pos, raw, err)
						}
						expects = append(expects, &expectation{file: pos.Filename, line: pos.Line, re: re, raw: raw})
					}
				}
			}
		}
	}

	for _, pkg := range pkgs {
		diags, err := analysis.Run(a, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", a.Name, pkg.ImportPath, err)
		}
		for _, d := range diags {
			pos := pkg.Fset.Position(d.Pos)
			if !claim(expects, pos.Filename, pos.Line, d.Message) {
				t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
			}
		}
	}
	for _, e := range expects {
		if !e.matched {
			t.Errorf("%s:%d: no diagnostic matching %q", e.file, e.line, e.raw)
		}
	}
}

// claim marks the first unmatched expectation at (file, line) whose
// regexp matches msg.
func claim(expects []*expectation, file string, line int, msg string) bool {
	for _, e := range expects {
		if !e.matched && e.file == file && e.line == line && e.re.MatchString(msg) {
			e.matched = true
			return true
		}
	}
	return false
}

// parseWants extracts the quoted expectation strings from a comment, or
// nil if the comment carries no want clause.
func parseWants(t *testing.T, pos, comment string) []string {
	t.Helper()
	text := strings.TrimPrefix(strings.TrimPrefix(comment, "//"), "/*")
	i := strings.Index(text, "want ")
	if i < 0 {
		return nil
	}
	rest := strings.TrimSpace(text[i+len("want "):])
	rest = strings.TrimSuffix(rest, "*/")
	var wants []string
	for rest != "" {
		rest = strings.TrimSpace(rest)
		if rest == "" {
			break
		}
		switch rest[0] {
		case '`':
			end := strings.IndexByte(rest[1:], '`')
			if end < 0 {
				t.Fatalf("%s: unterminated backquoted want in %q", pos, comment)
			}
			wants = append(wants, rest[1:1+end])
			rest = rest[end+2:]
		case '"':
			s, err := strconv.QuotedPrefix(rest)
			if err != nil {
				t.Fatalf("%s: bad quoted want in %q: %v", pos, comment, err)
			}
			unq, err := strconv.Unquote(s)
			if err != nil {
				t.Fatalf("%s: bad quoted want in %q: %v", pos, comment, err)
			}
			wants = append(wants, unq)
			rest = rest[len(s):]
		default:
			t.Fatalf("%s: want expectations must be quoted, got %q", pos, rest)
		}
	}
	if len(wants) == 0 {
		t.Fatalf("%s: want clause with no expectations in %q", pos, comment)
	}
	return wants
}
