package load

// This file is the loader's per-function summary pass: one cheap walk
// per declared function recording the facts the concurrency analyzers
// (lockcheck, ctxflow) need to reason across intra-package call chains
// without whole-program analysis — does the function take (and use) a
// context.Context, does it look like a request-path root (*http.Request
// parameter), which mutexes does it acquire or release, which
// potentially-blocking operations does it perform directly, and which
// package-local functions does it call. The facts are syntactic and
// deliberately conservative: operations inside nested function literals
// are excluded from the blocking/lock facts (a closure runs when it is
// called, not when it is built), while call edges and identifier uses do
// include literal bodies, because a closure built in a request path
// usually runs in that request path.

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Blocking is one potentially-blocking operation: a wall-clock sleep, a
// network I/O call, a bare channel operation, or a select with no
// default clause.
type Blocking struct {
	Pos  token.Pos
	What string // human-readable, e.g. "time.Sleep", "net/http Write"
}

// LockOp is one mutex acquire or release on a sync.Mutex or
// sync.RWMutex value, resolved to the variable (usually a struct field)
// that holds the mutex.
type LockOp struct {
	Pos      token.Pos
	Mutex    *types.Var // the mutex field or variable operated on
	Acquire  bool       // Lock/RLock vs Unlock/RUnlock
	Write    bool       // Lock/Unlock vs RLock/RUnlock
	Deferred bool       // the op is the call of a defer statement
}

// FuncFact is the summary of one declared function.
type FuncFact struct {
	Decl *ast.FuncDecl
	Obj  *types.Func

	// HasCtx reports a context.Context parameter; CtxUsed whether that
	// parameter is referenced anywhere in the body (literals included).
	HasCtx  bool
	CtxUsed bool
	// HasRequest reports a *net/http.Request parameter — the shape of a
	// request-path root.
	HasRequest bool

	// Blocking and Locks are the function's direct operations, nested
	// function literals excluded.
	Blocking []Blocking
	Locks    []LockOp

	// Calls lists the package-local functions and methods this function
	// calls (literal bodies included), in source order, deduplicated.
	Calls []*types.Func
}

// Summary holds the per-function facts of one package.
type Summary struct {
	Funcs map[*types.Func]*FuncFact
}

// Summary computes (once) and returns the package's per-function facts.
func (p *Package) Summary() *Summary {
	p.summaryOnce.Do(func() { p.summary = computeSummary(p) })
	return p.summary
}

// Fact returns the summary of the function declaring obj, or nil.
func (s *Summary) Fact(obj *types.Func) *FuncFact {
	if s == nil {
		return nil
	}
	return s.Funcs[obj]
}

// BlocksVia reports whether calling f can reach a blocking operation
// through package-local calls, returning the first such operation and
// the call chain (f first) that reaches it. Direct operations win over
// transitive ones; ties break in source order, so the answer does not
// depend on map iteration.
func (s *Summary) BlocksVia(f *types.Func) (chain []*types.Func, op Blocking, ok bool) {
	return s.blocksVia(f, map[*types.Func]bool{})
}

func (s *Summary) blocksVia(f *types.Func, seen map[*types.Func]bool) ([]*types.Func, Blocking, bool) {
	if seen[f] {
		return nil, Blocking{}, false
	}
	seen[f] = true
	fact := s.Fact(f)
	if fact == nil {
		return nil, Blocking{}, false
	}
	if len(fact.Blocking) > 0 {
		return []*types.Func{f}, fact.Blocking[0], true
	}
	for _, callee := range fact.Calls {
		if chain, op, ok := s.blocksVia(callee, seen); ok {
			return append([]*types.Func{f}, chain...), op, true
		}
	}
	return nil, Blocking{}, false
}

// AcquiresVia reports whether calling f can acquire mu (the same mutex
// variable) through package-local calls — the self-deadlock shape when
// f is invoked with mu already held.
func (s *Summary) AcquiresVia(f *types.Func, mu *types.Var) bool {
	return s.acquiresVia(f, mu, map[*types.Func]bool{})
}

func (s *Summary) acquiresVia(f *types.Func, mu *types.Var, seen map[*types.Func]bool) bool {
	if seen[f] {
		return false
	}
	seen[f] = true
	fact := s.Fact(f)
	if fact == nil {
		return false
	}
	for _, op := range fact.Locks {
		if op.Acquire && op.Mutex == mu {
			return true
		}
	}
	for _, callee := range fact.Calls {
		if s.acquiresVia(callee, mu, seen) {
			return true
		}
	}
	return false
}

func computeSummary(p *Package) *Summary {
	s := &Summary{Funcs: make(map[*types.Func]*FuncFact)}
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fact := &FuncFact{
				Decl:     fd,
				Obj:      obj,
				Blocking: BlockingOps(p.Info, fd.Body),
				Locks:    MutexOps(p.Info, fd.Body),
			}
			sig := obj.Type().(*types.Signature)
			var ctxParam *types.Var
			for i := 0; i < sig.Params().Len(); i++ {
				prm := sig.Params().At(i)
				if IsContextType(prm.Type()) {
					fact.HasCtx = true
					ctxParam = prm
				}
				if IsRequestType(prm.Type()) {
					fact.HasRequest = true
				}
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.Ident:
					if ctxParam != nil && p.Info.Uses[n] == ctxParam {
						fact.CtxUsed = true
					}
				case *ast.CallExpr:
					if callee := StaticCallee(p.Info, n); callee != nil && callee.Pkg() == p.Types {
						fact.Calls = append(fact.Calls, callee)
					}
				}
				return true
			})
			fact.Calls = dedupFuncs(fact.Calls)
			s.Funcs[obj] = fact
		}
	}
	return s
}

func dedupFuncs(in []*types.Func) []*types.Func {
	seen := make(map[*types.Func]bool, len(in))
	out := in[:0]
	for _, f := range in {
		if !seen[f] {
			seen[f] = true
			out = append(out, f)
		}
	}
	return out
}

// IsContextType reports whether t is context.Context.
func IsContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// IsRequestType reports whether t is *net/http.Request.
func IsRequestType(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// StaticCallee resolves the function or method a call statically invokes
// (plain identifier or selector), or nil for builtins, type conversions,
// and calls through function values.
func StaticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}

// netBlocking and httpBlocking name the calls in packages net and
// net/http treated as network I/O. The name filter keeps pure helpers
// (net.JoinHostPort, http.StatusText, r.Context) out of the blocking
// set.
var netBlocking = map[string]bool{
	"Dial": true, "DialTimeout": true, "DialContext": true, "Listen": true,
	"ListenPacket": true, "Accept": true, "Read": true, "ReadFrom": true,
	"Write": true, "WriteTo": true, "Close": true,
}

var httpBlocking = map[string]bool{
	"Get": true, "Head": true, "Post": true, "PostForm": true, "Do": true,
	"Serve": true, "ListenAndServe": true, "ListenAndServeTLS": true,
	"Shutdown": true, "Write": true, "WriteHeader": true, "Flush": true,
}

var execBlocking = map[string]bool{
	"Run": true, "Output": true, "CombinedOutput": true, "Wait": true,
}

// BlockingOps returns the potentially-blocking operations performed
// directly by body: time.Sleep, name-filtered calls into net, net/http,
// and os/exec, sync.WaitGroup.Wait / sync.Cond.Wait, channel sends and
// receives outside a select, and selects with no default clause.
// Operations inside nested function literals are the literal's, not the
// body's, and are skipped.
func BlockingOps(info *types.Info, body ast.Node) []Blocking {
	var ops []Blocking
	inspectSkipFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.CallExpr:
			if b, ok := blockingCall(info, n); ok {
				ops = append(ops, b)
			}
		case *ast.SendStmt:
			ops = append(ops, Blocking{Pos: n.Arrow, What: "channel send"})
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ops = append(ops, Blocking{Pos: n.OpPos, What: "channel receive"})
			}
		case *ast.SelectStmt:
			hasDefault := false
			for _, c := range n.Body.List {
				if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
					hasDefault = true
				}
			}
			if !hasDefault {
				ops = append(ops, Blocking{Pos: n.Select, What: "select without default"})
			}
		}
	})
	// Channel operations that are the communication of a select clause
	// are the select's, not their own; drop them.
	selects := selectCommPositions(body)
	kept := ops[:0]
	for _, op := range ops {
		if (op.What == "channel send" || op.What == "channel receive") && selects[op.Pos] {
			continue
		}
		kept = append(kept, op)
	}
	return kept
}

// selectCommPositions collects the positions of channel operators that
// appear inside a select communication clause.
func selectCommPositions(body ast.Node) map[token.Pos]bool {
	pos := map[token.Pos]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		for _, c := range sel.Body.List {
			cc, ok := c.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				switch m := m.(type) {
				case *ast.SendStmt:
					pos[m.Arrow] = true
				case *ast.UnaryExpr:
					if m.Op == token.ARROW {
						pos[m.OpPos] = true
					}
				}
				return true
			})
		}
		return true
	})
	return pos
}

func blockingCall(info *types.Info, call *ast.CallExpr) (Blocking, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return Blocking{}, false
	}
	path, ok := selPkgPath(info, sel)
	if !ok {
		return Blocking{}, false
	}
	name := sel.Sel.Name
	switch path {
	case "time":
		if name == "Sleep" {
			return Blocking{Pos: call.Pos(), What: "time.Sleep"}, true
		}
	case "net":
		if netBlocking[name] {
			return Blocking{Pos: call.Pos(), What: "net " + name}, true
		}
	case "net/http":
		if httpBlocking[name] {
			return Blocking{Pos: call.Pos(), What: "net/http " + name}, true
		}
	case "os/exec":
		if execBlocking[name] {
			return Blocking{Pos: call.Pos(), What: "os/exec " + name}, true
		}
	case "sync":
		if name == "Wait" {
			return Blocking{Pos: call.Pos(), What: "sync Wait"}, true
		}
	}
	return Blocking{}, false
}

// MutexOps returns body's direct Lock/RLock/Unlock/RUnlock calls on
// sync.Mutex / sync.RWMutex values, nested function literals skipped.
func MutexOps(info *types.Info, body ast.Node) []LockOp {
	var ops []LockOp
	deferredCalls := map[*ast.CallExpr]bool{}
	collect := func(call *ast.CallExpr, deferred bool) {
		if op, ok := mutexOp(info, call, deferred); ok {
			ops = append(ops, op)
		}
	}
	inspectSkipFuncLits(body, func(n ast.Node) {
		switch n := n.(type) {
		case *ast.DeferStmt:
			deferredCalls[n.Call] = true
			collect(n.Call, true)
		case *ast.CallExpr:
			if !deferredCalls[n] {
				collect(n, false)
			}
		}
	})
	return ops
}

func mutexOp(info *types.Info, call *ast.CallExpr, deferred bool) (LockOp, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return LockOp{}, false
	}
	name := sel.Sel.Name
	if name != "Lock" && name != "RLock" && name != "Unlock" && name != "RUnlock" {
		return LockOp{}, false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return LockOp{}, false
	}
	recv := s.Recv()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return LockOp{}, false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" || (obj.Name() != "Mutex" && obj.Name() != "RWMutex") {
		return LockOp{}, false
	}
	mu := mutexVar(info, sel.X)
	if mu == nil {
		return LockOp{}, false
	}
	return LockOp{
		Pos:      call.Pos(),
		Mutex:    mu,
		Acquire:  name == "Lock" || name == "RLock",
		Write:    name == "Lock" || name == "Unlock",
		Deferred: deferred,
	}, true
}

// mutexVar resolves the variable holding the mutex: the field of a
// selector (s.mu), or a plain identifier (package-level or local mutex).
func mutexVar(info *types.Info, x ast.Expr) *types.Var {
	switch x := ast.Unparen(x).(type) {
	case *ast.SelectorExpr:
		if s, ok := info.Selections[x]; ok {
			if v, ok := s.Obj().(*types.Var); ok {
				return v
			}
		}
		if v, ok := info.Uses[x.Sel].(*types.Var); ok {
			return v
		}
	case *ast.Ident:
		if v, ok := info.Uses[x].(*types.Var); ok {
			return v
		}
	}
	return nil
}

// inspectSkipFuncLits walks root like ast.Inspect but does not descend
// into function literals (other than root itself, when root is one).
func inspectSkipFuncLits(root ast.Node, fn func(ast.Node)) {
	var body ast.Node = root
	if fl, ok := root.(*ast.FuncLit); ok {
		body = fl.Body
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return true
		}
		if _, ok := n.(*ast.FuncLit); ok && n != root {
			return false
		}
		fn(n)
		return true
	})
}

// selPkgPath mirrors analysis.SelPkgPath without importing it (the
// analysis package imports load).
func selPkgPath(info *types.Info, sel *ast.SelectorExpr) (string, bool) {
	if id, ok := sel.X.(*ast.Ident); ok {
		if pn, ok := info.Uses[id].(*types.PkgName); ok {
			return pn.Imported().Path(), true
		}
	}
	if s, ok := info.Selections[sel]; ok {
		if obj := s.Obj(); obj != nil && obj.Pkg() != nil {
			return obj.Pkg().Path(), true
		}
	}
	return "", false
}
