package load

import (
	"go/types"
	"testing"
)

// TestSummaryServiceFacts computes the per-function summary over the
// real internal/service package and checks the facts the concurrency
// analyzers consume: context parameters and their use, request-path
// roots, lock operations resolved to the mutex variable, and blocking
// reachability through intra-package call chains.
func TestSummaryServiceFacts(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/service")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("got %d packages, want 1", len(pkgs))
	}
	p := pkgs[0]
	sum := p.Summary()
	if sum == nil || len(sum.Funcs) == 0 {
		t.Fatal("empty summary")
	}
	if p.Summary() != sum {
		t.Error("Summary() not cached: second call returned a different value")
	}

	find := func(name string) (*types.Func, *FuncFact) {
		t.Helper()
		for obj, f := range sum.Funcs {
			if obj.Name() == name {
				return obj, f
			}
		}
		t.Fatalf("no summary fact for %s", name)
		return nil, nil
	}

	// Run(ctx, ln) threads its context into the shutdown path.
	if _, f := find("Run"); !f.HasCtx || !f.CtxUsed {
		t.Errorf("Run: HasCtx=%v CtxUsed=%v, want both true", f.HasCtx, f.CtxUsed)
	}

	// handleTopology is a request-path root whose own body holds no lock.
	if _, f := find("handleTopology"); !f.HasRequest || len(f.Locks) != 0 {
		t.Errorf("handleTopology: HasRequest=%v Locks=%v, want request root with no direct lock ops", f.HasRequest, f.Locks)
	}

	// snapshotTopology acquires the read lock and releases it deferred.
	var mu *types.Var
	if _, f := find("snapshotTopology"); true {
		var acquired, released bool
		for _, op := range f.Locks {
			if op.Acquire && !op.Write {
				acquired = true
				mu = op.Mutex
			}
			if !op.Acquire && op.Deferred {
				released = true
			}
		}
		if !acquired || !released {
			t.Errorf("snapshotTopology: lock ops %+v, want RLock + deferred RUnlock", f.Locks)
		}
	}
	if mu == nil || mu.Name() != "mu" {
		t.Fatalf("snapshotTopology mutex = %v, want field mu", mu)
	}

	// applyLinkEvent takes the write lock on the same mutex variable, so
	// calling it with mu held is the self-deadlock AcquiresVia reports.
	apply, af := find("applyLinkEvent")
	var writeAcquire bool
	for _, op := range af.Locks {
		if op.Acquire && op.Write && op.Mutex == mu {
			writeAcquire = true
		}
	}
	if !writeAcquire {
		t.Errorf("applyLinkEvent: lock ops %+v, want write acquire of mu", af.Locks)
	}
	if !sum.AcquiresVia(apply, mu) {
		t.Error("AcquiresVia(applyLinkEvent, mu) = false, want true")
	}

	// writeJSON blocks directly (response write); handleTopology reaches
	// it through one call edge, and BlocksVia reports the chain.
	wj, wf := find("writeJSON")
	if len(wf.Blocking) == 0 {
		t.Fatalf("writeJSON: no blocking ops recorded")
	}
	ht, _ := find("handleTopology")
	chain, op, ok := sum.BlocksVia(ht)
	if !ok {
		t.Fatal("BlocksVia(handleTopology) found nothing; it calls writeJSON")
	}
	if len(chain) == 0 || chain[0] != ht {
		t.Errorf("BlocksVia chain %v does not start at handleTopology", chain)
	}
	if op.What == "" {
		t.Error("BlocksVia returned an empty operation")
	}
	if sum.AcquiresVia(wj, mu) {
		t.Error("AcquiresVia(writeJSON, mu) = true; writeJSON takes no locks")
	}
}
