package load

import (
	"go/types"
	"path/filepath"
	"runtime"
	"testing"
)

func repoRoot(t *testing.T) string {
	t.Helper()
	_, file, _, ok := runtime.Caller(0)
	if !ok {
		t.Fatal("runtime.Caller failed")
	}
	return filepath.Dir(filepath.Dir(filepath.Dir(filepath.Dir(file))))
}

func TestLoadTypeChecksAgainstExportData(t *testing.T) {
	pkgs, err := Load(repoRoot(t), "./internal/topo", "./internal/graph")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 2 {
		t.Fatalf("got %d packages, want 2", len(pkgs))
	}
	for _, p := range pkgs {
		if len(p.TypeErrors) > 0 {
			t.Errorf("%s: unexpected type errors: %v", p.ImportPath, p.TypeErrors)
		}
		if len(p.Files) == 0 || p.Types == nil {
			t.Errorf("%s: missing syntax or type info", p.ImportPath)
		}
		if len(p.Info.Types) == 0 {
			t.Errorf("%s: empty types.Info", p.ImportPath)
		}
	}
	// Deterministic ordering by import path.
	if pkgs[0].ImportPath > pkgs[1].ImportPath {
		t.Errorf("packages not sorted: %s before %s", pkgs[0].ImportPath, pkgs[1].ImportPath)
	}
	// Spot-check that cross-package types resolved through export data:
	// internal/topo imports internal/graph, and the imported scope must
	// be populated (an empty scope would mean export data was not read).
	for _, p := range pkgs {
		if p.Name != "topo" {
			continue
		}
		var g *types.Package
		for _, im := range p.Types.Imports() {
			if im.Name() == "graph" {
				g = im
			}
		}
		if g == nil {
			t.Fatal("topo: import of internal/graph not recorded")
		}
		if g.Scope().Lookup("Graph") == nil {
			t.Error("graph export data missing Graph type")
		}
	}
}

func TestLoadBadPatternErrors(t *testing.T) {
	if _, err := Load(repoRoot(t), "./does/not/exist"); err == nil {
		t.Fatal("expected error for nonexistent pattern")
	}
}
