// Package load turns `go list -export` output into type-checked syntax
// trees for the flatvet analyzers.
//
// The upstream golang.org/x/tools/go/packages loader is not vendored in
// this module, so load reimplements the narrow slice flatvet needs: it
// shells out to the go command (which is always present — it built the
// tree being analyzed), asks for compiled export data for every
// dependency, and type-checks only the target packages from source.
// Dependencies are resolved through their export files via
// go/importer's lookup hook, so a whole-tree run never type-checks the
// standard library from source.
package load

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"sync"

	"flattree/internal/parallel"
)

// Package is one type-checked target package.
type Package struct {
	ImportPath string
	Name       string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // parsed GoFiles, with comments
	Types      *types.Package
	Info       *types.Info
	TypeErrors []error // soft type errors (empty on a healthy tree)

	summaryOnce sync.Once
	summary     *Summary // lazy per-function facts, see summary.go
}

// listPkg is the subset of `go list -json` output load consumes.
type listPkg struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Standard   bool
	ImportMap  map[string]string
	Error      *struct{ Err string }
}

// Load lists patterns in dir, compiles export data for the dependency
// graph, and returns the non-dependency packages type-checked from
// source. Hard failures (the go command erroring, unparseable files)
// return an error; per-package type errors are collected in
// Package.TypeErrors so callers can decide how strict to be.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly {
			q := p
			targets = append(targets, &q)
		}
	}

	fset := token.NewFileSet()
	// The module has no vendor directory, so source import paths equal
	// canonical paths and per-package ImportMaps are only consulted as an
	// override. The combined map is built up front (read-only afterwards)
	// so the lookup hook is safe to share across importers.
	importMaps := make([]map[string]string, 0, len(targets))
	for _, t := range targets {
		if len(t.ImportMap) > 0 {
			importMaps = append(importMaps, t.ImportMap)
		}
	}
	lookup := func(path string) (io.ReadCloser, error) {
		for _, m := range importMaps {
			if mapped, ok := m[path]; ok {
				path = mapped
				break
			}
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	}

	// Parse and type-check the targets on the shared worker pool. The
	// FileSet synchronizes internally; type-checker instances do not, so
	// each concurrent task borrows a whole importer (with its private
	// export-data cache) from a pool sized to the worker count. Results
	// land by index and are sorted by import path afterwards, so output
	// order is identical for any worker count, and a failure reports the
	// lowest-index error exactly as the serial loop did.
	pool := parallel.Default()
	imps := make(chan types.Importer, pool.Workers())
	for i := 0; i < pool.Workers(); i++ {
		imps <- importer.ForCompiler(fset, "gc", lookup)
	}
	checked, err := parallel.Map(pool, len(targets), func(i int) (*Package, error) {
		if len(targets[i].GoFiles) == 0 {
			return nil, nil
		}
		imp := <-imps
		defer func() { imps <- imp }()
		return check(fset, imp, targets[i])
	})
	if err != nil {
		return nil, err
	}
	var pkgs []*Package
	for _, pkg := range checked {
		if pkg != nil {
			pkgs = append(pkgs, pkg)
		}
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].ImportPath < pkgs[j].ImportPath })
	return pkgs, nil
}

func check(fset *token.FileSet, imp types.Importer, t *listPkg) (*Package, error) {
	var files []*ast.File
	for _, name := range t.GoFiles {
		path := filepath.Join(t.Dir, name)
		f, err := parser.ParseFile(fset, path, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("parsing %s: %v", path, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	var soft []error
	conf := types.Config{
		Importer: imp,
		Error:    func(err error) { soft = append(soft, err) },
	}
	tpkg, err := conf.Check(t.ImportPath, fset, files, info)
	if err != nil && tpkg == nil {
		return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
	}
	return &Package{
		ImportPath: t.ImportPath,
		Name:       t.Name,
		Dir:        t.Dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
		TypeErrors: soft,
	}, nil
}
