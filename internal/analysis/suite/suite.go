// Package suite assembles the flatvet analyzers into one run over a
// package tree, the way golang.org/x/tools's multichecker assembles
// go/analysis analyzers into a vet-style binary.
//
// Beyond fanning out the analyzers, the suite owns the two whole-tree
// directive checks that no single analyzer can do: malformed
// //flatvet: comments (reported instead of silently waiving nothing)
// and well-formed waivers naming a rule no analyzer owns.
package suite

import (
	"fmt"
	"go/token"
	"io"
	"path/filepath"
	"sort"

	"flattree/internal/analysis"
	"flattree/internal/analysis/directive"
	"flattree/internal/analysis/floatsum"
	"flattree/internal/analysis/load"
	"flattree/internal/analysis/maporder"
	"flattree/internal/analysis/seededrand"
	"flattree/internal/analysis/simclock"
	"flattree/internal/analysis/spanend"
)

// Analyzers returns the full flatvet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		floatsum.Analyzer,
		seededrand.Analyzer,
		simclock.Analyzer,
		spanend.Analyzer,
	}
}

// Diag is one finding, attributed to the analyzer that produced it.
// Directive-syntax findings carry Analyzer "flatvet".
type Diag struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Run loads patterns (default ./...) rooted at dir and applies every
// analyzer, returning findings sorted by position. Type errors in the
// tree are a hard error: analysis over a broken tree reports nonsense.
func Run(dir string, patterns ...string) ([]Diag, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	known := make(map[string]bool)
	for _, a := range Analyzers() {
		if a.Directive != "" {
			known[a.Directive] = true
		}
	}
	var diags []Diag
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s does not type-check: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		ix := directive.NewIndex(pkg.Fset, pkg.Files)
		for _, m := range ix.Malformed() {
			diags = append(diags, Diag{Position: pkg.Fset.Position(m.Pos), Analyzer: "flatvet", Message: m.Err})
		}
		for _, e := range ix.Entries() {
			if !known[e.D.Name] {
				diags = append(diags, Diag{
					Position: pkg.Fset.Position(e.Pos),
					Analyzer: "flatvet",
					Message:  fmt.Sprintf("unknown waiver rule %q (known: ordered, rand, clock, span)", e.D.Name),
				})
			}
		}
		for _, a := range Analyzers() {
			ds, err := analysis.Run(a, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				diags = append(diags, Diag{Position: pkg.Fset.Position(d.Pos), Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// Format writes diags one per line as "path:line:col: analyzer:
// message", with paths relative to base when possible.
func Format(w io.Writer, base string, diags []Diag) {
	for _, d := range diags {
		name := d.Position.Filename
		if rel, err := filepath.Rel(base, name); err == nil && !filepath.IsAbs(rel) {
			name = filepath.ToSlash(rel)
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", name, d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
	}
}
