// Package suite assembles the flatvet analyzers into one run over a
// package tree, the way golang.org/x/tools's multichecker assembles
// go/analysis analyzers into a vet-style binary.
//
// Beyond fanning out the analyzers, the suite owns the two whole-tree
// directive checks that no single analyzer can do: malformed
// //flatvet: comments (reported instead of silently waiving nothing)
// and well-formed waivers naming a rule no analyzer owns.
package suite

import (
	"fmt"
	"go/token"
	"io"
	"path"
	"path/filepath"
	"sort"
	"strings"

	"flattree/internal/analysis"
	"flattree/internal/analysis/ctxflow"
	"flattree/internal/analysis/directive"
	"flattree/internal/analysis/errdrop"
	"flattree/internal/analysis/floatsum"
	"flattree/internal/analysis/hotalloc"
	"flattree/internal/analysis/load"
	"flattree/internal/analysis/lockcheck"
	"flattree/internal/analysis/maporder"
	"flattree/internal/analysis/sarif"
	"flattree/internal/analysis/seededrand"
	"flattree/internal/analysis/simclock"
	"flattree/internal/analysis/spanend"
)

// Analyzers returns the full flatvet suite in stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		maporder.Analyzer,
		floatsum.Analyzer,
		seededrand.Analyzer,
		simclock.Analyzer,
		spanend.Analyzer,
		lockcheck.Analyzer,
		ctxflow.Analyzer,
		errdrop.Analyzer,
		hotalloc.Analyzer,
	}
}

// KnownRules returns, sorted, every directive rule name the suite
// accepts: each analyzer's waiver rule plus hotalloc's hotpath marker,
// which waives nothing but puts a function under contract.
func KnownRules() []string {
	var rules []string
	for _, a := range Analyzers() {
		if a.Directive != "" {
			rules = append(rules, a.Directive)
		}
	}
	rules = append(rules, hotalloc.Marker)
	sort.Strings(rules)
	return rules
}

// Diag is one finding, attributed to the analyzer that produced it.
// Directive-syntax findings carry Analyzer "flatvet".
type Diag struct {
	Position token.Position
	Analyzer string
	Message  string
}

// Options narrows a Run.
type Options struct {
	// Only, when non-empty, restricts analysis to packages whose final
	// import-path segment is listed (the same matching rule analyzer
	// scopes use). Loading still covers the full pattern set so
	// cross-package facts stay complete.
	Only []string
}

// Run loads patterns (default ./...) rooted at dir and applies every
// analyzer, returning findings sorted by position. Type errors in the
// tree are a hard error: analysis over a broken tree reports nonsense.
func Run(dir string, patterns ...string) ([]Diag, error) {
	return RunOpts(dir, Options{}, patterns...)
}

// RunOpts is Run with an Options filter.
func RunOpts(dir string, opts Options, patterns ...string) ([]Diag, error) {
	pkgs, err := load.Load(dir, patterns...)
	if err != nil {
		return nil, err
	}
	only := make(map[string]bool, len(opts.Only))
	for _, p := range opts.Only {
		only[p] = true
	}
	known := make(map[string]bool)
	for _, r := range KnownRules() {
		known[r] = true
	}
	knownList := strings.Join(KnownRules(), ", ")
	var diags []Diag
	for _, pkg := range pkgs {
		if len(pkg.TypeErrors) > 0 {
			return nil, fmt.Errorf("%s does not type-check: %v", pkg.ImportPath, pkg.TypeErrors[0])
		}
		if len(only) > 0 && !only[path.Base(pkg.ImportPath)] {
			continue
		}
		ix := directive.NewIndex(pkg.Fset, pkg.Files)
		for _, m := range ix.Malformed() {
			diags = append(diags, Diag{Position: pkg.Fset.Position(m.Pos), Analyzer: "flatvet", Message: m.Err})
		}
		for _, e := range ix.Entries() {
			if !known[e.D.Name] {
				diags = append(diags, Diag{
					Position: pkg.Fset.Position(e.Pos),
					Analyzer: "flatvet",
					Message:  fmt.Sprintf("unknown waiver rule %q (known: %s)", e.D.Name, knownList),
				})
			}
		}
		for _, a := range Analyzers() {
			ds, err := analysis.Run(a, pkg)
			if err != nil {
				return nil, err
			}
			for _, d := range ds {
				diags = append(diags, Diag{Position: pkg.Fset.Position(d.Pos), Analyzer: a.Name, Message: d.Message})
			}
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Position.Filename != b.Position.Filename {
			return a.Position.Filename < b.Position.Filename
		}
		if a.Position.Line != b.Position.Line {
			return a.Position.Line < b.Position.Line
		}
		if a.Position.Column != b.Position.Column {
			return a.Position.Column < b.Position.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// Format writes diags one per line as "path:line:col: analyzer:
// message", with paths relative to base when possible.
func Format(w io.Writer, base string, diags []Diag) {
	for _, d := range diags {
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", relPath(base, d.Position.Filename), d.Position.Line, d.Position.Column, d.Analyzer, d.Message)
	}
}

// ToSARIF converts diags into a single-run SARIF log whose driver
// declares every suite analyzer (plus the directive-syntax pseudo-rule
// "flatvet") and whose artifact URIs are relative to base when
// possible. The output is deterministic: rules sorted by ID, results
// in the order Run produced them (already position-sorted).
func ToSARIF(base string, diags []Diag) sarif.Log {
	rules := []sarif.Rule{{
		ID:               "flatvet",
		ShortDescription: sarif.Message{Text: "//flatvet:<rule> <reason> waiver-directive syntax"},
	}}
	for _, a := range Analyzers() {
		rules = append(rules, sarif.Rule{ID: a.Name, ShortDescription: sarif.Message{Text: a.Doc}})
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	results := make([]sarif.Result, 0, len(diags))
	for _, d := range diags {
		results = append(results, sarif.Result{
			RuleID:  d.Analyzer,
			Level:   "warning",
			Message: sarif.Message{Text: d.Message},
			Locations: []sarif.Location{{PhysicalLocation: sarif.PhysicalLocation{
				ArtifactLocation: sarif.ArtifactLocation{URI: relPath(base, d.Position.Filename)},
				Region:           sarif.Region{StartLine: d.Position.Line, StartColumn: d.Position.Column},
			}}},
		})
	}
	return sarif.New(sarif.Driver{Name: "flatvet", Rules: rules}, results)
}

// relPath renders name relative to base (slash-separated) when that
// stays inside base, and verbatim otherwise.
func relPath(base, name string) string {
	if rel, err := filepath.Rel(base, name); err == nil && !filepath.IsAbs(rel) {
		return filepath.ToSlash(rel)
	}
	return name
}
