// Package errdrop flags silently discarded error returns in the
// simulation and control packages.
//
// A dropped error in flowsim or control is not a style problem: it is a
// conversion that half-applied or a bookkeeping rollback that failed
// while the run kept going, producing numbers that look valid and are
// not. The analyzer flags, in its scope packages:
//
//   - assignments that discard every result of an error-returning call
//     (`_ = f()`, `_, _ = f()`), and
//   - expression and defer statements calling a function whose results
//     include an error.
//
// Never-fail writers are exempt: methods on bytes.Buffer, strings.Builder
// and hash.Hash satisfy io interfaces with errors that are always nil,
// and fmt.Fprint* into one of those destinations inherits the exemption.
// Everything else either handles the error or carries an explicit
// //flatvet:errok <reason> waiver, so the decision to ignore survives
// review instead of hiding in a blank identifier.
package errdrop

import (
	"go/ast"
	"go/types"

	"flattree/internal/analysis"
)

// Packages is the final-segment scope: the packages whose dropped
// errors corrupt results rather than UX.
var Packages = []string{"flowsim", "routing", "churn", "control", "core"}

var Analyzer = &analysis.Analyzer{
	Name:      "errdrop",
	Doc:       "flags discarded error returns (blank assignment, bare or deferred calls) in simulation/control packages",
	Directive: "errok",
	Scope:     analysis.SegmentScope(Packages...),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				checkAssign(pass, n)
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					checkBareCall(pass, call, "")
				}
			case *ast.DeferStmt:
				checkBareCall(pass, n.Call, "deferred ")
			case *ast.GoStmt:
				// The goroutine's function runs elsewhere; its own body is
				// walked independently. Nothing to check at the go site.
			}
			return true
		})
	}
	return nil
}

// checkAssign flags `_ = f()` shapes: every LHS blank and at least one
// discarded value of type error.
func checkAssign(pass *analysis.Pass, asg *ast.AssignStmt) {
	for _, lhs := range asg.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return
		}
	}
	if len(asg.Rhs) != 1 {
		return
	}
	call, ok := asg.Rhs[0].(*ast.CallExpr)
	if !ok || !returnsError(pass.TypesInfo, call) || exempt(pass.TypesInfo, call) {
		return
	}
	pass.Reportf(asg.Pos(), "error from %s discarded with _; handle it or add //flatvet:errok <reason>", callName(call))
}

// checkBareCall flags statement calls whose results include an error.
func checkBareCall(pass *analysis.Pass, call *ast.CallExpr, kind string) {
	if !returnsError(pass.TypesInfo, call) || exempt(pass.TypesInfo, call) {
		return
	}
	pass.Reportf(call.Pos(), "error from %scall to %s dropped; handle it or add //flatvet:errok <reason>", kind, callName(call))
}

// returnsError reports whether any of call's results is exactly type
// error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(tv.Type)
	}
}

func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// exempt reports whether call is a never-fail writer: a method on
// bytes.Buffer / strings.Builder / a hash.Hash implementation, or
// fmt.Fprint* writing into one of those.
func exempt(info *types.Info, call *ast.CallExpr) bool {
	if pkg, name, ok := analysis.PkgFuncCall(info, call); ok && pkg == "fmt" {
		switch name {
		case "Fprint", "Fprintf", "Fprintln":
			if len(call.Args) > 0 {
				return neverFailWriter(info.TypeOf(call.Args[0]))
			}
		case "Print", "Printf", "Println":
			// Stdout diagnostics: losing the write error loses nothing a
			// simulation result depends on.
			return true
		}
		return false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	s, ok := info.Selections[sel]
	if !ok {
		return false
	}
	return neverFailWriter(s.Recv())
}

// neverFailWriter reports whether t is one of the always-nil-error
// writer types.
func neverFailWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch obj.Pkg().Path() {
	case "bytes":
		return obj.Name() == "Buffer"
	case "strings":
		return obj.Name() == "Builder"
	case "hash":
		return true
	}
	return false
}

// callName renders the called expression for the diagnostic.
func callName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		if id, ok := fun.X.(*ast.Ident); ok {
			return id.Name + "." + fun.Sel.Name
		}
		return fun.Sel.Name
	}
	return "function"
}
