package errdrop_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/errdrop"
)

func TestErrdrop(t *testing.T) {
	anatest.Run(t, "testdata", errdrop.Analyzer)
}
