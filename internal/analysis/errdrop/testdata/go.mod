module scope

go 1.22
