package churn

import (
	"bytes"
	"fmt"
	"strings"
)

func fallible() error { return nil }

func pair() (int, error) { return 0, nil }

func value() int { return 3 }

func drops() int {
	_ = fallible()   // want `error from fallible discarded with _`
	fallible()       // want `error from call to fallible dropped`
	defer fallible() // want `error from deferred call to fallible dropped`
	_, _ = pair()    // want `error from pair discarded with _`
	value()          // ok: no error result
	_ = value()      // ok: no error result
	v, err := pair() // ok: error bound to a name
	if err != nil {
		return 0
	}
	return v
}

func handled() error {
	if err := fallible(); err != nil { // ok: error inspected
		return err
	}
	return nil
}

func writers() string {
	var b bytes.Buffer
	b.WriteString("x") // ok: bytes.Buffer never fails
	var sb strings.Builder
	fmt.Fprintf(&sb, "x%d", 1) // ok: fmt into a never-fail writer
	fmt.Println("x")           // ok: stdout diagnostics
	return b.String() + sb.String()
}

func waived() {
	//flatvet:errok testdata: best-effort rollback
	_ = fallible()
	fallible() //flatvet:errok testdata: same-line waiver
}
