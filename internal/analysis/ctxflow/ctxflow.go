// Package ctxflow enforces context threading on the daemon's request
// paths.
//
// Every request into flatd carries a context (deadline, cancellation);
// work done on behalf of that request must observe it, or a cancelled
// client keeps consuming the daemon's one write lock and CPU. Inside
// its scope packages the analyzer flags:
//
//  1. context.Background() / context.TODO() in any function that
//     already has a context in scope — a context.Context parameter or a
//     *http.Request parameter (r.Context()) — severing the caller's
//     deadline from the work below it.
//  2. The same calls in functions reachable from a request-path root (a
//     function with a *http.Request parameter) through intra-package
//     calls, using the loader's per-function summary: a helper three
//     calls below a handler cannot quietly restart the context chain.
//  3. A context.Context parameter that the function never reads
//     (including one named _): the signature promises flow the body
//     drops.
//
// Process roots (main, daemon bootstrap) legitimately create contexts;
// they have neither a context parameter nor a request parameter and are
// unreachable from handlers, so they never match. Findings are
// waivable with //flatvet:ctx <reason> — the canonical residual is a
// shutdown drain that must outlive the cancelled serve context.
package ctxflow

import (
	"go/ast"
	"go/types"

	"flattree/internal/analysis"
	"flattree/internal/analysis/load"
)

// Packages is the final-segment scope: the daemon's service layer and
// binary.
var Packages = []string{"service", "flatd"}

var Analyzer = &analysis.Analyzer{
	Name:      "ctxflow",
	Doc:       "requires request-path functions to thread context.Context instead of minting context.Background/TODO or dropping the parameter",
	Directive: "ctx",
	Scope:     analysis.SegmentScope(Packages...),
	Run:       run,
}

func run(pass *analysis.Pass) error {
	sum := pass.Loaded.Summary()
	reachable := requestReachable(sum)

	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			fact := sum.Fact(obj)
			if fact == nil {
				continue
			}

			// Rule 3: a context parameter the body never reads.
			if fact.HasCtx && !fact.CtxUsed {
				pass.Reportf(fd.Name.Pos(), "%s takes a context.Context it never uses; thread it to callees or drop the parameter (or waive //flatvet:ctx <reason>)", fd.Name.Name)
			}

			// Rules 1 and 2: minting a fresh root context below the flow.
			hasScope := fact.HasCtx || fact.HasRequest
			inRequestPath := reachable[obj]
			if !hasScope && !inRequestPath {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				pkg, name, ok := analysis.PkgFuncCall(pass.TypesInfo, call)
				if !ok || pkg != "context" || (name != "Background" && name != "TODO") {
					return true
				}
				switch {
				case hasScope:
					pass.Reportf(call.Pos(), "context.%s() severs the in-scope context; thread the caller's ctx (or waive //flatvet:ctx <reason>)", name)
				case inRequestPath:
					pass.Reportf(call.Pos(), "context.%s() in a function reachable from a request handler; accept and thread a ctx (or waive //flatvet:ctx <reason>)", name)
				}
				return true
			})
		}
	}
	return nil
}

// requestReachable returns the functions reachable from any
// request-path root (*http.Request parameter) through intra-package
// calls, roots excluded unless they are themselves called from another
// root.
func requestReachable(sum *load.Summary) map[*types.Func]bool {
	reach := map[*types.Func]bool{}
	var visit func(f *types.Func)
	visit = func(f *types.Func) {
		fact := sum.Fact(f)
		if fact == nil {
			return
		}
		for _, callee := range fact.Calls {
			if !reach[callee] {
				reach[callee] = true
				visit(callee)
			}
		}
	}
	for obj, fact := range sum.Funcs {
		if fact.HasRequest {
			visit(obj)
		}
	}
	return reach
}
