package ctxflow_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	anatest.Run(t, "testdata", ctxflow.Analyzer)
}
