package service

import (
	"context"
	"net/http"
)

func handler(w http.ResponseWriter, r *http.Request) {
	ctx := context.Background() // want `context.Background\(\) severs the in-scope context`
	process(ctx)
	helper()
	process(r.Context()) // ok: threads the request context
}

func helper() {
	ctx := context.TODO() // want `context.TODO\(\) in a function reachable from a request handler`
	process(ctx)
}

func process(ctx context.Context) {
	<-ctx.Done() // ok: context is observed
}

func dropped(ctx context.Context, n int) int { // want `dropped takes a context.Context it never uses`
	return n
}

func blankCtx(_ context.Context, n int) int { // want `blankCtx takes a context.Context it never uses`
	return n
}

func bootstrap() context.Context {
	return context.Background() // ok: process root, not a request path
}

func waived(ctx context.Context) {
	//flatvet:ctx testdata: drain must outlive the request context
	c := context.Background()
	process(c)
	process(ctx)
}
