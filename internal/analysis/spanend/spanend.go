// Package spanend flags telemetry spans that are started but never
// ended.
//
// A StartSpan/StartRootSpan result whose End is never called leaves the
// span open forever: child spans attach to a phase that never closes
// and exported durations are garbage. The analyzer reports a start call
// when (a) its result is discarded outright, or (b) the variable it is
// assigned to neither has .End invoked nor escapes the function (as an
// argument, return value, struct field, or reassignment) anywhere in
// the enclosing function body. The escape condition keeps the check
// conservative: a span handed to another function is that function's
// responsibility, and path-sensitive leaks (ended on one branch only)
// are out of scope.
//
// The //flatvet:span <reason> waiver covers intentionally process-long
// spans.
package spanend

import (
	"go/ast"
	"go/types"

	"flattree/internal/analysis"
)

var startFuncs = map[string]bool{"StartSpan": true, "StartRootSpan": true}

var Analyzer = &analysis.Analyzer{
	Name:      "spanend",
	Doc:       "flags telemetry StartSpan/StartRootSpan results that are discarded or never reach End in the enclosing function",
	Directive: "span",
	Scope: func(importPath string) bool {
		// The telemetry package itself implements Start*/End.
		return analysis.LastSegment(importPath) != "telemetry"
	},
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		analysis.WalkStack(f, func(n ast.Node, stack []ast.Node) {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || !startFuncs[sel.Sel.Name] {
				return
			}
			path, ok := analysis.SelPkgPath(pass.TypesInfo, sel)
			if !ok || analysis.LastSegment(path) != "telemetry" {
				return
			}
			check(pass, call, sel.Sel.Name, stack)
		})
	}
	return nil
}

func check(pass *analysis.Pass, call *ast.CallExpr, name string, stack []ast.Node) {
	if len(stack) == 0 {
		return
	}
	switch parent := stack[len(stack)-1].(type) {
	case *ast.ExprStmt:
		pass.Reportf(call.Pos(), "result of %s discarded; the span can never be ended", name)
	case *ast.AssignStmt:
		// Only handle `v := Start...` / `v = Start...` with the call as
		// the matching single RHS; anything fancier (multi-assign,
		// struct field destination) counts as an escape.
		idx := -1
		for i, r := range parent.Rhs {
			if r == ast.Expr(call) {
				idx = i
			}
		}
		if idx < 0 || len(parent.Lhs) != len(parent.Rhs) {
			return
		}
		id, ok := parent.Lhs[idx].(*ast.Ident)
		if !ok {
			return // span stored into a field/index: escapes
		}
		if id.Name == "_" {
			pass.Reportf(call.Pos(), "result of %s assigned to _; the span can never be ended", name)
			return
		}
		obj := pass.TypesInfo.Defs[id]
		if obj == nil {
			obj = pass.TypesInfo.Uses[id]
		}
		if obj == nil {
			return
		}
		enclosing := analysis.EnclosingFunc(stack)
		if enclosing == nil {
			return
		}
		if !endsOrEscapes(pass, obj, id, analysis.FuncBody(enclosing)) {
			pass.Reportf(call.Pos(), "span from %s never reaches End in this function", name)
		}
	}
	// Any other parent (call argument, return, composite literal, ...)
	// passes the span along: the receiver owns ending it.
}

// endsOrEscapes reports whether the span object obj, defined at def,
// has .End selected on it (including `defer v.End()`) or escapes —
// any use of the variable other than selecting a method/field on it.
func endsOrEscapes(pass *analysis.Pass, obj types.Object, def *ast.Ident, body *ast.BlockStmt) bool {
	found := false
	analysis.WalkStack(body, func(n ast.Node, stack []ast.Node) {
		if found {
			return
		}
		use, ok := n.(*ast.Ident)
		if !ok || use == def || pass.TypesInfo.Uses[use] != obj {
			return
		}
		if len(stack) > 0 {
			if sel, ok := stack[len(stack)-1].(*ast.SelectorExpr); ok && sel.X == ast.Expr(use) {
				if sel.Sel.Name == "End" {
					found = true // v.End call (or method value): ended
				}
				// Other selections (v.SetAttr(...), v.Name) neither end
				// the span nor let it escape; keep scanning.
				return
			}
		}
		// Argument, return value, assignment, composite literal, send,
		// ...: the span escapes, its new owner is responsible.
		found = true
	})
	return found
}
