package control

import "scope/telemetry"

// DeferEnd is the canonical correct shape: allowed.
func DeferEnd() {
	span := telemetry.StartSpan("convert")
	defer span.End()
	work()
}

// ExplicitEnd ends without defer: allowed.
func ExplicitEnd() {
	span := telemetry.StartRootSpan("experiment")
	work()
	span.End()
}

// Discarded never binds the span: reported.
func Discarded() {
	telemetry.StartSpan("oops") // want `result of StartSpan discarded`
	work()
}

// Blank assigns to _: reported.
func Blank() {
	_ = telemetry.StartRootSpan("oops") // want `result of StartRootSpan assigned to _`
	work()
}

// Leaked binds the span but never ends it: reported.
func Leaked() {
	span := telemetry.StartSpan("leak") // want `span from StartSpan never reaches End in this function`
	span.SetAttr("k", "v")
	work()
}

// MethodStart leaks a span started via a registry method: reported.
func MethodStart(r *telemetry.Registry) {
	span := r.StartSpan("leak") // want `span from StartSpan never reaches End in this function`
	work()
	_ = span.Name
}

// Escapes hands the span to a helper: that helper owns it, allowed.
func Escapes() {
	span := telemetry.StartSpan("handoff")
	finish(span)
}

// Returned gives the span to the caller: allowed.
func Returned() *telemetry.Span {
	return telemetry.StartSpan("caller-owned")
}

// Stored escapes into a struct: allowed (conservative).
type holder struct{ s *telemetry.Span }

func Stored(h *holder) {
	span := telemetry.StartSpan("stored")
	h.s = span
}

// InClosure starts and ends within a function literal: allowed.
func InClosure() func() {
	return func() {
		span := telemetry.StartSpan("inner")
		defer span.End()
		work()
	}
}

// ClosureLeak leaks within the function literal: reported there.
func ClosureLeak() func() {
	return func() {
		span := telemetry.StartSpan("inner-leak") // want `span from StartSpan never reaches End in this function`
		work()
		span.SetAttr("k", "v")
	}
}

// Waived long-lived span: allowed.
func Waived() {
	//flatvet:span process-lifetime span, ended by the exporter on shutdown
	span := telemetry.StartRootSpan("process")
	span.SetAttr("k", "v")
	work()
}

func finish(s *telemetry.Span) { s.End() }

func work() {}
