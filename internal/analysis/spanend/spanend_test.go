package spanend_test

import (
	"testing"

	"flattree/internal/analysis/anatest"
	"flattree/internal/analysis/spanend"
)

func TestSpanEnd(t *testing.T) {
	anatest.Run(t, "testdata", spanend.Analyzer)
}
