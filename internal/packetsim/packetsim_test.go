package packetsim

import (
	"math"
	"testing"

	"flattree/internal/graph"
)

// lowRateLine builds a 3-node line with per-link capacity in Gbps; low
// rates keep packet counts tractable.
func lowRateLine(capacity float64) *graph.Graph {
	g := graph.New(3)
	g.AddLink(0, 1, capacity)
	g.AddLink(1, 2, capacity)
	return g
}

// fwd returns the forward (A->B) arc IDs of links 0..n-1.
func fwd(links ...int) []int {
	out := make([]int, len(links))
	for i, l := range links {
		out[i] = 2 * l
	}
	return out
}

func TestSingleFlowApproachesLineRate(t *testing.T) {
	// 0.1 Gbps path; a persistent flow should reach most of line rate
	// within the window.
	g := lowRateLine(0.1)
	flows := []FlowSpec{{Paths: [][]int{fwd(0, 1)}, Bits: math.Inf(1)}}
	sim, err := New(g, Config{}, flows, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	tput := res[0].Throughput(0, 0.5)
	if tput < 0.7*0.1e9 || tput > 0.1e9*1.01 {
		t.Fatalf("throughput = %.1f Mbps, want ~100 Mbps", tput/1e6)
	}
}

func TestFiniteFlowCompletes(t *testing.T) {
	g := lowRateLine(0.1)
	bits := 1e6 // 1 Mbit over 100 Mbps ~ 10 ms + slow start
	flows := []FlowSpec{{Paths: [][]int{fwd(0, 1)}, Bits: bits}}
	sim, err := New(g, Config{}, flows, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(res[0].Finish, 1) {
		t.Fatal("finite flow did not complete")
	}
	if res[0].DeliveredBits < bits {
		t.Fatalf("delivered %.0f of %.0f bits", res[0].DeliveredBits, bits)
	}
	if res[0].Finish < bits/0.1e9 {
		t.Fatalf("finished faster than line rate: %v", res[0].Finish)
	}
}

func TestTwoFlowsShareFairly(t *testing.T) {
	// Two TCP flows over the same 0.1 Gbps path converge to ~half each.
	g := lowRateLine(0.1)
	flows := []FlowSpec{
		{Paths: [][]int{fwd(0, 1)}, Bits: math.Inf(1)},
		{Paths: [][]int{fwd(0, 1)}, Bits: math.Inf(1)},
	}
	sim, err := New(g, Config{}, flows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	t0 := res[0].Throughput(0, 1)
	t1 := res[1].Throughput(0, 1)
	sum := t0 + t1
	if sum < 0.7*0.1e9 {
		t.Fatalf("aggregate %.1f Mbps too low", sum/1e6)
	}
	if ratio := t0 / t1; ratio < 0.5 || ratio > 2.0 {
		t.Fatalf("unfair split: %.1f vs %.1f Mbps", t0/1e6, t1/1e6)
	}
}

func TestMPTCPUsesBothPaths(t *testing.T) {
	// Diamond: two disjoint 0.05 Gbps paths; an MPTCP connection should
	// clearly exceed one path's rate.
	g := graph.New(4)
	g.AddLink(0, 1, 0.05)
	g.AddLink(1, 3, 0.05)
	g.AddLink(0, 2, 0.05)
	g.AddLink(2, 3, 0.05)
	flows := []FlowSpec{{
		Paths: [][]int{fwd(0, 1), fwd(2, 3)},
		Bits:  math.Inf(1),
	}}
	sim, err := New(g, Config{}, flows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	tput := res[0].Throughput(0, 1)
	if tput < 1.3*0.05e9 {
		t.Fatalf("MPTCP throughput %.1f Mbps did not exceed one path (~50)", tput/1e6)
	}
}

func TestLIACouplingIsFairToTCP(t *testing.T) {
	// An MPTCP connection with two subflows over ONE shared 0.1 Gbps
	// bottleneck competes with a single TCP flow. Uncoupled windows would
	// grab ~2/3; LIA should keep the MPTCP share close to half.
	g := lowRateLine(0.1)
	flows := []FlowSpec{
		{Paths: [][]int{fwd(0, 1), fwd(0, 1)}, Bits: math.Inf(1)}, // MPTCP, same path twice
		{Paths: [][]int{fwd(0, 1)}, Bits: math.Inf(1)},            // plain TCP
	}
	sim, err := New(g, Config{}, flows, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	mp := res[0].Throughput(0, 2)
	tcp := res[1].Throughput(0, 2)
	share := mp / (mp + tcp)
	if share > 0.72 {
		t.Fatalf("MPTCP grabbed %.0f%% of the bottleneck; LIA coupling failed", share*100)
	}
	if share < 0.3 {
		t.Fatalf("MPTCP starved at %.0f%%", share*100)
	}
}

func TestDropsAndRetransmitsUnderOverload(t *testing.T) {
	// Tiny queue + aggressive window forces drops; the flow must still
	// make progress through recovery.
	g := lowRateLine(0.05)
	cfg := Config{QueuePackets: 4}
	flows := []FlowSpec{
		{Paths: [][]int{fwd(0, 1)}, Bits: math.Inf(1)},
		{Paths: [][]int{fwd(0, 1)}, Bits: math.Inf(1)},
	}
	sim, err := New(g, cfg, flows, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	totalDrops := res[0].Drops + res[1].Drops
	if totalDrops == 0 {
		t.Fatal("no drops despite 4-packet queue and two competing flows")
	}
	if res[0].DeliveredBits == 0 || res[1].DeliveredBits == 0 {
		t.Fatal("a flow starved completely under loss")
	}
}

func TestValidation(t *testing.T) {
	g := lowRateLine(0.1)
	if _, err := New(g, Config{}, []FlowSpec{{Paths: nil, Bits: 1}}, 1); err == nil {
		t.Fatal("pathless flow accepted")
	}
	if _, err := New(g, Config{}, []FlowSpec{{Paths: [][]int{{99}}, Bits: 1}}, 1); err == nil {
		t.Fatal("bad arc accepted")
	}
	if _, err := New(g, Config{}, nil, 0); err == nil {
		t.Fatal("zero horizon accepted")
	}
}

// TestCrossValidateWithFluidModel compares packet-level steady throughput
// against the fluid max-min allocation on a shared-bottleneck scenario:
// three flows, one of which is rate-limited elsewhere.
func TestCrossValidateWithFluidModel(t *testing.T) {
	// Topology: 0-1 (0.1), 1-2 (0.05). Flow A: 0->1. Flow B: 0->2.
	// Fluid max-min: B limited by link2 to 0.05; A gets 0.1-... on link1
	// A and B share link 0-1: fair share 0.05 each; B also fits link2.
	// => A 0.05+residual 0 = 0.05? Progressive filling: both rise to
	// 0.05, link1 (0.1) saturates exactly; A = B = 0.05.
	g := graph.New(3)
	g.AddLink(0, 1, 0.1)
	g.AddLink(1, 2, 0.05)
	flows := []FlowSpec{
		{Paths: [][]int{fwd(0)}, Bits: math.Inf(1)},
		{Paths: [][]int{fwd(0, 1)}, Bits: math.Inf(1)},
	}
	sim, err := New(g, Config{}, flows, 2.0)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	a := res[0].Throughput(0, 2)
	b := res[1].Throughput(0, 2)
	// The fluid max-min point is 50/50; packet-level TCP deviates by its
	// RTT bias (the 1-hop flow wins share), but three invariants must
	// hold: the shared link is well utilized but never overdriven, flow B
	// respects its 0.05 bottleneck, and neither flow starves.
	if sum := a + b; sum > 0.1e9*1.01 || sum < 0.7*0.1e9 {
		t.Fatalf("shared-link usage %.1f Mbps outside (70, 101)", sum/1e6)
	}
	if b > 0.05e9*1.05 {
		t.Fatalf("flow B %.1f Mbps exceeds its 50 Mbps bottleneck", b/1e6)
	}
	if a < 0.02e9 || b < 0.015e9 {
		t.Fatalf("a flow starved: %.1f / %.1f Mbps", a/1e6, b/1e6)
	}
}
