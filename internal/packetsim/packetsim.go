// Package packetsim is a discrete-event packet-level network simulator —
// the same methodology as the MPTCP packet simulator the paper drives its
// §5.1–5.2 evaluations with. It complements the fluid model in
// internal/flowsim: flowsim computes the max-min fixed point directly,
// packetsim derives throughput from per-packet TCP/MPTCP congestion
// control dynamics over store-and-forward links with finite drop-tail
// queues. The two are cross-validated in the experiments package.
//
// Model:
//
//   - links are directed arcs with a serialization rate, a fixed
//     propagation delay, and a drop-tail queue of bounded size;
//   - TCP senders run NewReno-style control: slow start, congestion
//     avoidance, fast retransmit on three duplicate ACKs, and retransmit
//     timeouts;
//   - MPTCP connections run one window per subflow, coupled by the LIA
//     increase rule (RFC 6356), so a connection is roughly as aggressive
//     as one TCP flow on its best path;
//   - ACKs return on the reverse path with propagation delay only (ACK
//     queueing is not modeled; ACK traffic is a negligible fraction of
//     the forward bytes at MTU-sized packets).
//
// Packet-level simulation costs an event per packet per hop, so it is
// used for validation windows (tens of milliseconds) and reduced rates,
// not for the full traces — exactly how the paper's own simulator was
// used relative to its testbed.
package packetsim

import (
	"container/heap"
	"fmt"
	"math"

	"flattree/internal/graph"
	"flattree/internal/telemetry"
)

// Config sets the data-plane constants.
type Config struct {
	// PacketBits is the MTU in bits (default 12000 = 1500 B).
	PacketBits float64
	// LinkDelay is per-arc propagation delay in seconds (default 1 µs).
	LinkDelay float64
	// QueuePackets is the per-arc buffer in packets (default 64).
	QueuePackets int
	// RTOMin is the minimum retransmission timeout (default 10 ms).
	RTOMin float64
	// InitialCwnd in packets (default 10, RFC 6928).
	InitialCwnd float64
	// RateScale multiplies every link rate (default 1). Packet-level
	// cost grows with rate; validations run reduced-rate replicas of the
	// 10 Gbps fabrics.
	RateScale float64
}

func (c *Config) setDefaults() {
	if c.PacketBits <= 0 {
		c.PacketBits = 12000
	}
	if c.LinkDelay <= 0 {
		c.LinkDelay = 1e-6
	}
	if c.QueuePackets <= 0 {
		c.QueuePackets = 64
	}
	if c.RTOMin <= 0 {
		c.RTOMin = 10e-3
	}
	if c.InitialCwnd <= 0 {
		c.InitialCwnd = 10
	}
	if c.RateScale <= 0 {
		c.RateScale = 1
	}
}

// FlowSpec is one transport connection.
type FlowSpec struct {
	// Paths are directed arc-index sequences (see routing.DirectedLinkIDs);
	// one path = plain TCP, several = MPTCP subflows.
	Paths [][]int
	// Bits to transfer; +Inf for persistent sources.
	Bits float64
	// Start time in seconds.
	Start float64
}

// FlowResult reports one connection's outcome.
type FlowResult struct {
	// DeliveredBits counts payload delivered to the receiver.
	DeliveredBits float64
	// Finish is the delivery time of the last bit (+Inf if unfinished
	// at the horizon).
	Finish float64
	// Retransmits counts retransmitted packets across subflows.
	Retransmits int
	// Drops counts packets lost in queues.
	Drops int
}

// Throughput returns the average goodput in bits/s over the window
// [start, until].
func (r FlowResult) Throughput(start, until float64) float64 {
	if until <= start {
		return 0
	}
	return r.DeliveredBits / (until - start)
}

// arc is the directed-link state.
type arc struct {
	rate     float64 // bits/s
	busyTill float64 // when the transmitter frees up
	queued   int     // packets queued or in transmission
}

// packet is one MTU-sized segment in flight.
type packet struct {
	flow, sub int
	seq       int64
	hop       int // index into the subflow's arc path
}

// subflow holds per-path TCP state.
type subflow struct {
	path []int
	// Congestion control.
	cwnd     float64
	ssthresh float64
	inflight int
	// outstanding maps in-flight seqs to their send time; dupAcks counts
	// ACKs observed beyond the missing head.
	outstanding map[int64]float64
	dupAcks     int
	recoverSeq  int64 // fast-recovery epoch guard
	// srtt is the smoothed RTT estimate; RTO = 2*SRTT clamped by RTOMin.
	srtt float64
	// retxQueue holds seqs detected lost, resent ahead of new data.
	retxQueue []int64
}

// conn is one connection.
type conn struct {
	spec     FlowSpec
	subs     []*subflow
	sendSeq  int64 // next payload seq across the connection
	received map[int64]bool
	res      FlowResult
	packets  int64 // total payload packets to deliver (or MaxInt64)
	done     bool
}

// Sim is a packet-level simulation run.
type Sim struct {
	cfg   Config
	arcs  []arc
	conns []*conn
	// Event queue.
	pq eventHeap
	// Horizon ends the run.
	horizon float64
	now     float64
}

// New builds a simulation over the directed-arc capacities (Gbps, as from
// routing.DirectedCaps) with the given flows.
func New(g *graph.Graph, cfg Config, flows []FlowSpec, horizon float64) (*Sim, error) {
	cfg.setDefaults()
	if horizon <= 0 {
		return nil, fmt.Errorf("packetsim: horizon %v", horizon)
	}
	nArcs := 2 * g.NumLinks()
	s := &Sim{cfg: cfg, arcs: make([]arc, nArcs), horizon: horizon}
	for _, l := range g.Links() {
		s.arcs[2*l.ID].rate = l.Capacity * 1e9 * cfg.RateScale
		s.arcs[2*l.ID+1].rate = l.Capacity * 1e9 * cfg.RateScale
	}
	for fi, f := range flows {
		if len(f.Paths) == 0 {
			return nil, fmt.Errorf("packetsim: flow %d has no paths", fi)
		}
		c := &conn{spec: f, received: make(map[int64]bool)}
		if math.IsInf(f.Bits, 1) {
			c.packets = math.MaxInt64
		} else {
			c.packets = int64(math.Ceil(f.Bits / cfg.PacketBits))
			if c.packets == 0 {
				c.packets = 1
			}
		}
		for _, p := range f.Paths {
			rtt0 := 2 * float64(len(p)) * cfg.LinkDelay
			for _, a := range p {
				if a < 0 || a >= nArcs {
					return nil, fmt.Errorf("packetsim: flow %d references arc %d of %d", fi, a, nArcs)
				}
			}
			c.subs = append(c.subs, &subflow{
				path:        p,
				cwnd:        cfg.InitialCwnd,
				ssthresh:    math.Inf(1),
				outstanding: make(map[int64]float64),
				srtt:        rtt0 + 4*cfg.PacketBits/1e10,
			})
		}
		s.conns = append(s.conns, c)
	}
	return s, nil
}

// Run executes the simulation until the horizon or until all finite flows
// complete, and returns per-flow results.
func (s *Sim) Run() ([]FlowResult, error) {
	for fi, c := range s.conns {
		heap.Push(&s.pq, event{at: c.spec.Start, kind: evPump, flow: fi})
	}
	// Events are tallied locally and flushed once: the loop body is the
	// hottest path in the repo (one event per packet per hop).
	var nEvents int64
	for s.pq.Len() > 0 {
		ev := heap.Pop(&s.pq).(event)
		if ev.at > s.horizon {
			break
		}
		nEvents++
		s.now = ev.at
		switch ev.kind {
		case evPump:
			s.pump(ev.flow)
		case evHop:
			s.hop(ev.pkt)
		case evAck:
			s.ack(ev.pkt)
		case evTimeout:
			s.timeout(ev.flow, ev.sub, ev.seq)
		}
		if s.allDone() {
			break
		}
	}
	out := make([]FlowResult, len(s.conns))
	fct := telemetry.H("packetsim_fct_seconds")
	var completed, drops, retx int64
	for i, c := range s.conns {
		if !c.done {
			c.res.Finish = math.Inf(1)
		} else {
			completed++
			fct.Observe(c.res.Finish - c.spec.Start)
		}
		drops += int64(c.res.Drops)
		retx += int64(c.res.Retransmits)
		out[i] = c.res
	}
	telemetry.C("packetsim_events_total").Add(nEvents)
	telemetry.C("packetsim_flows_completed_total").Add(completed)
	telemetry.C("packetsim_drops_total").Add(drops)
	telemetry.C("packetsim_retransmits_total").Add(retx)
	return out, nil
}

// allDone reports whether every finite flow has completed.
func (s *Sim) allDone() bool {
	for _, c := range s.conns {
		if !c.done && c.packets != math.MaxInt64 {
			return false
		}
		if c.packets == math.MaxInt64 {
			return false // persistent flows run to the horizon
		}
	}
	return true
}

// pump fills every subflow's window of a connection.
func (s *Sim) pump(fi int) {
	c := s.conns[fi]
	if c.done {
		return
	}
	for si, sf := range c.subs {
		for sf.inflight < int(sf.cwnd) {
			var seq int64
			if len(sf.retxQueue) > 0 {
				seq = sf.retxQueue[0]
				sf.retxQueue = sf.retxQueue[1:]
			} else {
				if c.sendSeq >= c.packets {
					break
				}
				seq = c.sendSeq
				c.sendSeq++
			}
			sf.inflight++
			sf.outstanding[seq] = s.now
			s.transmit(packet{flow: fi, sub: si, seq: seq, hop: 0})
			// Arm a timeout for this segment.
			heap.Push(&s.pq, event{at: s.now + s.rto(sf), kind: evTimeout, flow: fi, sub: si, seq: seq})
		}
	}
}

// rto returns the current retransmission timeout of a subflow.
func (s *Sim) rto(sf *subflow) float64 {
	rto := 2 * sf.srtt
	if rto < s.cfg.RTOMin {
		rto = s.cfg.RTOMin
	}
	return rto
}

// transmit enqueues a packet on the next arc of its path, dropping it if
// the queue is full.
func (s *Sim) transmit(p packet) {
	c := s.conns[p.flow]
	sf := c.subs[p.sub]
	a := &s.arcs[sf.path[p.hop]]
	if a.queued >= s.cfg.QueuePackets {
		// Drop-tail loss: the segment vanishes; recovery comes from
		// dupACKs or the timeout.
		c.res.Drops++
		return
	}
	a.queued++
	start := s.now
	if a.busyTill > start {
		start = a.busyTill
	}
	tx := s.cfg.PacketBits / a.rate
	a.busyTill = start + tx
	arrive := a.busyTill + s.cfg.LinkDelay
	heap.Push(&s.pq, event{at: arrive, kind: evHop, pkt: p})
}

// hop moves a packet off its current arc and onto the next, or delivers it.
func (s *Sim) hop(p packet) {
	c := s.conns[p.flow]
	sf := c.subs[p.sub]
	s.arcs[sf.path[p.hop]].queued--
	if p.hop+1 < len(sf.path) {
		p.hop++
		s.transmit(p)
		return
	}
	// Delivered: the ACK returns after the reverse propagation delay.
	heap.Push(&s.pq, event{at: s.now + float64(len(sf.path))*s.cfg.LinkDelay, kind: evAck, pkt: p})
}

// ack processes a returning ACK at the sender.
func (s *Sim) ack(p packet) {
	c := s.conns[p.flow]
	sf := c.subs[p.sub]
	sendTime, wasOutstanding := sf.outstanding[p.seq]
	if wasOutstanding {
		delete(sf.outstanding, p.seq)
		if sf.inflight > 0 {
			sf.inflight--
		}
		// SRTT EWMA.
		sample := s.now - sendTime
		sf.srtt = 0.875*sf.srtt + 0.125*sample
	}
	// Deliver payload once per seq (a retransmit can duplicate).
	if !c.received[p.seq] {
		c.received[p.seq] = true
		c.res.DeliveredBits += s.cfg.PacketBits
		if int64(len(c.received)) >= c.packets && !c.done {
			c.done = true
			c.res.Finish = s.now
		}
	}

	// Duplicate-ACK accounting: an ACK for a seq above the lowest
	// outstanding one signals reordering/loss at the head.
	head := sf.lowestOutstanding()
	if head >= 0 && p.seq > head {
		sf.dupAcks++
		if sf.dupAcks >= 3 && head > sf.recoverSeq {
			// Fast retransmit + multiplicative decrease.
			sf.dupAcks = 0
			sf.recoverSeq = head
			sf.ssthresh = sf.cwnd / 2
			if sf.ssthresh < 2 {
				sf.ssthresh = 2
			}
			sf.cwnd = sf.ssthresh
			delete(sf.outstanding, head)
			if sf.inflight > 0 {
				sf.inflight--
			}
			c.res.Retransmits++
			sf.retxQueue = append(sf.retxQueue, head)
		}
	} else {
		sf.dupAcks = 0
	}

	// Window growth.
	if wasOutstanding {
		if sf.cwnd < sf.ssthresh {
			sf.cwnd++ // slow start
		} else {
			sf.cwnd += c.liaIncrease(p.sub) // coupled congestion avoidance
		}
	}
	s.pump(p.flow)
}

// lowestOutstanding returns the smallest in-flight seq, or -1.
func (sf *subflow) lowestOutstanding() int64 {
	low := int64(-1)
	for seq := range sf.outstanding {
		if low < 0 || seq < low {
			low = seq
		}
	}
	return low
}

// liaIncrease is the per-ACK congestion-avoidance increment of subflow si
// under MPTCP's Linked Increases Algorithm (RFC 6356): for a single
// subflow it reduces to TCP's 1/cwnd; across subflows the aggregate gains
// at most one best-path TCP's worth per RTT.
func (c *conn) liaIncrease(si int) float64 {
	sf := c.subs[si]
	if len(c.subs) == 1 {
		return 1 / sf.cwnd
	}
	var totalCwnd, sumRate float64
	bestRate := 0.0
	for _, s2 := range c.subs {
		rtt := s2.srtt
		if rtt <= 0 {
			rtt = 1e-6
		}
		totalCwnd += s2.cwnd
		sumRate += s2.cwnd / rtt
		if r := s2.cwnd / (rtt * rtt); r > bestRate {
			bestRate = r
		}
	}
	if totalCwnd <= 0 || sumRate <= 0 {
		return 1 / sf.cwnd
	}
	alpha := totalCwnd * bestRate / (sumRate * sumRate)
	inc := alpha / totalCwnd
	if cap := 1 / sf.cwnd; inc > cap {
		inc = cap
	}
	return inc
}

// timeout fires the RTO for one segment.
func (s *Sim) timeout(fi, si int, seq int64) {
	c := s.conns[fi]
	if c.done {
		return
	}
	sf := c.subs[si]
	if _, still := sf.outstanding[seq]; !still {
		return // already acked or fast-retransmitted
	}
	delete(sf.outstanding, seq)
	if sf.inflight > 0 {
		sf.inflight--
	}
	sf.ssthresh = sf.cwnd / 2
	if sf.ssthresh < 2 {
		sf.ssthresh = 2
	}
	sf.cwnd = 1
	c.res.Retransmits++
	sf.retxQueue = append(sf.retxQueue, seq)
	s.pump(fi)
}

// Event machinery.

type evKind int

const (
	evPump evKind = iota
	evHop
	evAck
	evTimeout
)

type event struct {
	at   float64
	kind evKind
	flow int
	sub  int
	seq  int64
	pkt  packet
}

type eventHeap []event

func (h eventHeap) Len() int            { return len(h) }
func (h eventHeap) Less(i, j int) bool  { return h[i].at < h[j].at }
func (h eventHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x interface{}) { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
