// Package apps models the two data center applications of §5.4 on the
// emulated testbed: the Spark Word2Vec broadcast (torrent-style model
// distribution) and the Hadoop/Tez Sort shuffle. Their communication
// phases run as MPTCP flows on the flow-level simulator; serialization /
// deserialization overhead is a mode-independent constant, so any
// improvement between modes comes from the network alone — the question
// §5.4 asks.
package apps

import (
	"fmt"
	"math"
	"sort"

	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/metrics"
	"flattree/internal/routing"
	"flattree/internal/testbed"
)

// SerdeOverhead is the per-read serialization + deserialization cost in
// seconds, added to every data flow read (§5.4: "the end-to-end data read
// time includes the time for data serialization and deserialization").
const SerdeOverhead = 0.45

// Result reports one application phase under one topology mode.
type Result struct {
	Mode core.Mode
	// ReadDuration is the average end-to-end data flow read time in
	// seconds (Figure 11's left axis).
	ReadDuration float64
	// PhaseDuration is the whole communication phase in seconds
	// (Figure 11's right axis).
	PhaseDuration float64
}

// connsFor builds MPTCP connection specs for the given flows on the
// current testbed topology.
func connsFor(tb *testbed.Testbed, flows [][3]float64) ([]flowsim.ConnSpec, []float64) {
	r := tb.Ctrl.Realization()
	table := tb.Ctrl.Table()
	servers := r.Topo.Servers()
	caps := routing.DirectedCaps(r.Topo.G)
	specs := make([]flowsim.ConnSpec, 0, len(flows))
	for _, f := range flows {
		src, dst, bits := int(f[0]), int(f[1]), f[2]
		paths := table.ServerPaths(servers[src], servers[dst])
		if len(paths) > testbed.K {
			paths = paths[:testbed.K]
		}
		dp := make([][]int, len(paths))
		for i, p := range paths {
			dp[i] = routing.DirectedLinkIDs(r.Topo.G, p)
		}
		specs = append(specs, flowsim.ConnSpec{Paths: dp, Bits: bits})
	}
	return specs, caps
}

// runPhase simulates one batch of simultaneous flows and returns per-flow
// completion times. The MPTCP efficiency discount of the testbed applies.
func runPhase(tb *testbed.Testbed, flows [][3]float64) ([]float64, error) {
	specs, caps := connsFor(tb, flows)
	// Discount capacities for MPTCP/CPU overhead instead of scaling each
	// result, keeping completion-time semantics exact.
	for i := range caps {
		caps[i] *= testbed.MPTCPEfficiency
	}
	res, err := flowsim.NewSim(caps, specs).Run()
	if err != nil {
		return nil, err
	}
	fcts := make([]float64, len(res))
	for i, r := range res {
		if math.IsInf(r.Finish, 1) {
			return nil, fmt.Errorf("apps: flow %d never completed", i)
		}
		fcts[i] = r.FCT()
	}
	return fcts, nil
}

// SparkBroadcast models the Word2Vec iterative broadcast: per iteration
// the master's updated model spreads to all workers in torrent fashion —
// in each round, every server holding the model sends it to one server
// that lacks it, doubling the holder set until all nServers have it.
//
// modelBits is the serialized model size; iterations is the number of
// training iterations (each repeats the broadcast).
func SparkBroadcast(tb *testbed.Testbed, mode core.Mode, modelBits float64, iterations int) (Result, error) {
	if iterations < 1 || modelBits <= 0 {
		return Result{}, fmt.Errorf("apps: bad broadcast parameters")
	}
	if _, err := tb.Ctrl.Convert(mode); err != nil {
		return Result{}, err
	}
	n := len(tb.Ctrl.Realization().Topo.Servers())
	var reads []float64
	var phase float64
	for it := 0; it < iterations; it++ {
		have := []int{0} // master
		lack := make([]int, 0, n-1)
		for s := 1; s < n; s++ {
			lack = append(lack, s)
		}
		for len(lack) > 0 {
			// Pair each holder with one receiver this round.
			nPairs := len(have)
			if nPairs > len(lack) {
				nPairs = len(lack)
			}
			var flows [][3]float64
			for i := 0; i < nPairs; i++ {
				flows = append(flows, [3]float64{float64(have[i]), float64(lack[i]), modelBits})
			}
			fcts, err := runPhase(tb, flows)
			if err != nil {
				return Result{}, err
			}
			round := 0.0
			for _, f := range fcts {
				reads = append(reads, f+SerdeOverhead)
				if f > round {
					round = f
				}
			}
			have = append(have, lack[:nPairs]...)
			lack = lack[nPairs:]
			sort.Ints(have)
			phase += round + SerdeOverhead
		}
	}
	return Result{Mode: mode, ReadDuration: metrics.Mean(reads), PhaseDuration: phase}, nil
}

// HadoopShuffle models the Tez Sort shuffle: all worker nodes as mappers
// send their partitioned output to a subset of nodes acting as reducers
// (§5.4), all flows concurrent. bitsPerMapper is each mapper's total
// shuffle output, split evenly across reducers.
func HadoopShuffle(tb *testbed.Testbed, mode core.Mode, bitsPerMapper float64, reducers int) (Result, error) {
	if reducers < 1 || bitsPerMapper <= 0 {
		return Result{}, fmt.Errorf("apps: bad shuffle parameters")
	}
	if _, err := tb.Ctrl.Convert(mode); err != nil {
		return Result{}, err
	}
	n := len(tb.Ctrl.Realization().Topo.Servers())
	if reducers >= n {
		return Result{}, fmt.Errorf("apps: %d reducers for %d servers", reducers, n)
	}
	// Node 0 is the master; nodes 1..n-1 are workers. Reducers are spread
	// across the worker set (every (n-1)/reducers-th worker).
	var reducerIDs []int
	stride := (n - 1) / reducers
	if stride < 1 {
		stride = 1
	}
	for i := 1; i < n && len(reducerIDs) < reducers; i += stride {
		reducerIDs = append(reducerIDs, i)
	}
	perFlow := bitsPerMapper / float64(len(reducerIDs))
	var flows [][3]float64
	for m := 1; m < n; m++ {
		for _, r := range reducerIDs {
			if r == m {
				continue
			}
			flows = append(flows, [3]float64{float64(m), float64(r), perFlow})
		}
	}
	fcts, err := runPhase(tb, flows)
	if err != nil {
		return Result{}, err
	}
	reads := make([]float64, len(fcts))
	phase := 0.0
	for i, f := range fcts {
		reads[i] = f + SerdeOverhead
		if f > phase {
			phase = f
		}
	}
	return Result{Mode: mode, ReadDuration: metrics.Mean(reads), PhaseDuration: phase + SerdeOverhead}, nil
}

// CompareModes runs an application function across the three uniform
// topology modes, returning results keyed by mode.
func CompareModes(run func(core.Mode) (Result, error)) (map[core.Mode]Result, error) {
	out := make(map[core.Mode]Result, 3)
	for _, m := range []core.Mode{core.ModeGlobal, core.ModeLocal, core.ModeClos} {
		res, err := run(m)
		if err != nil {
			return nil, err
		}
		out[m] = res
	}
	return out, nil
}
