package apps

import (
	"testing"

	"flattree/internal/core"
	"flattree/internal/testbed"
	"flattree/internal/traffic"
)

func newTB(t *testing.T) *testbed.Testbed {
	t.Helper()
	tb, err := testbed.New()
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestSparkBroadcastGlobalBeatsClos(t *testing.T) {
	tb := newTB(t)
	run := func(m core.Mode) (Result, error) {
		return SparkBroadcast(tb, m, 2*traffic.GB, 1)
	}
	results, err := CompareModes(run)
	if err != nil {
		t.Fatal(err)
	}
	clos := results[core.ModeClos]
	global := results[core.ModeGlobal]
	local := results[core.ModeLocal]
	if clos.PhaseDuration <= 0 || global.PhaseDuration <= 0 {
		t.Fatal("zero phase durations")
	}
	// Figure 11a: global reduces the broadcast phase duration vs Clos
	// (paper: 16%), and the read duration as well (paper: 10%).
	if global.PhaseDuration >= clos.PhaseDuration {
		t.Fatalf("global phase %.2f not below Clos %.2f", global.PhaseDuration, clos.PhaseDuration)
	}
	if global.ReadDuration >= clos.ReadDuration {
		t.Fatalf("global read %.2f not below Clos %.2f", global.ReadDuration, clos.ReadDuration)
	}
	// "The global mode only slightly outperforms the local mode" — local
	// sits between (or near) the other two; allow a generous envelope.
	if local.PhaseDuration > clos.PhaseDuration*1.25 {
		t.Fatalf("local phase %.2f far above Clos %.2f", local.PhaseDuration, clos.PhaseDuration)
	}
}

func TestHadoopShuffleGlobalBeatsClos(t *testing.T) {
	tb := newTB(t)
	run := func(m core.Mode) (Result, error) {
		return HadoopShuffle(tb, m, 4*traffic.GB, 16)
	}
	results, err := CompareModes(run)
	if err != nil {
		t.Fatal(err)
	}
	clos := results[core.ModeClos]
	global := results[core.ModeGlobal]
	// Figure 11b: shuffle phase reduced ~8%, read time ~10.5%.
	if global.PhaseDuration >= clos.PhaseDuration {
		t.Fatalf("global shuffle %.2f not below Clos %.2f", global.PhaseDuration, clos.PhaseDuration)
	}
	if global.ReadDuration >= clos.ReadDuration {
		t.Fatalf("global read %.2f not below Clos %.2f", global.ReadDuration, clos.ReadDuration)
	}
}

func TestBroadcastRoundsDouble(t *testing.T) {
	// A torrent broadcast over 24 nodes needs ceil(log2(24)) = 5 rounds;
	// the phase duration must be at least 5 serde overheads plus 5
	// transfer rounds, and all 23 workers must record a read.
	tb := newTB(t)
	res, err := SparkBroadcast(tb, core.ModeClos, 1*traffic.GB, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.PhaseDuration < 5*SerdeOverhead {
		t.Fatalf("phase %.2f too short for 5 rounds", res.PhaseDuration)
	}
	if res.ReadDuration <= SerdeOverhead {
		t.Fatalf("read duration %.2f not above serde floor", res.ReadDuration)
	}
}

func TestAppValidation(t *testing.T) {
	tb := newTB(t)
	if _, err := SparkBroadcast(tb, core.ModeClos, 0, 1); err == nil {
		t.Fatal("zero model size accepted")
	}
	if _, err := SparkBroadcast(tb, core.ModeClos, 1, 0); err == nil {
		t.Fatal("zero iterations accepted")
	}
	if _, err := HadoopShuffle(tb, core.ModeClos, 0, 4); err == nil {
		t.Fatal("zero shuffle size accepted")
	}
	if _, err := HadoopShuffle(tb, core.ModeClos, 1, 0); err == nil {
		t.Fatal("zero reducers accepted")
	}
	if _, err := HadoopShuffle(tb, core.ModeClos, 1, 99); err == nil {
		t.Fatal("too many reducers accepted")
	}
}
