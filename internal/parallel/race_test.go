package parallel

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

// The race-hammer tests exist to run under -race in CI: many goroutines
// submitting batches, cancelling contexts, and hitting one cache with
// overlapping keys concurrently.

func TestPoolRaceHammer(t *testing.T) {
	p := New(Config{Workers: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 20; round++ {
				ctx, cancel := context.WithCancel(context.Background())
				var hits atomic.Int64
				err := p.ForEachErr(ctx, 200, func(ctx context.Context, i int) error {
					if hits.Add(1) == int64(50+g) {
						cancel() // exercise cancel racing live workers
					}
					return nil
				})
				cancel()
				if err != nil && err != context.Canceled {
					t.Errorf("goroutine %d round %d: %v", g, round, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestCacheRaceHammer(t *testing.T) {
	c := NewCache("hammer", 8) // small capacity so eviction races lookups
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 300; i++ {
				key := fmt.Sprintf("k%d", i%24)
				v, err := Get(c, key, func() (*blob, error) {
					return &blob{payload: []int{i}}, nil
				})
				if err != nil || v == nil {
					t.Errorf("goroutine %d: %v %v", g, v, err)
					return
				}
				if i%37 == 0 {
					c.Peek(key)
				}
			}
		}(g)
	}
	wg.Wait()
	if c.Len() > 8 {
		t.Fatalf("cache exceeded capacity: %d entries", c.Len())
	}
}

// TestNestedPools pins that a task running on one pool may itself fan out
// on another pool without deadlock (pools spawn their own workers; they
// do not share a token pool).
func TestNestedPools(t *testing.T) {
	outer := New(Config{Workers: 3})
	inner := New(Config{Workers: 2})
	total := atomic.Int64{}
	outer.ForEach(6, func(i int) {
		inner.ForEach(5, func(j int) {
			total.Add(1)
		})
	})
	if got := total.Load(); got != 30 {
		t.Fatalf("nested batches ran %d tasks, want 30", got)
	}
}
