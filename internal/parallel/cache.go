package parallel

import (
	"container/list"
	"sync"

	"flattree/internal/telemetry"
)

// Cache is a bounded, content-keyed memoization cache with single-flight
// semantics: concurrent Do calls for the same key compute the value once
// and every caller receives the same (pointer-equal) result. Keys must
// fully describe the computation's inputs — the experiment layer keys
// route tables by (topology fingerprint, k) and LP solutions by (topology
// fingerprint, objective, epsilon, commodity hash), so repeated cells
// across Table 2, Figure 6/7/8, and the ablations reuse work across runs
// within one process.
//
// Eviction is LRU by entry count. Hits, misses, and evictions flow into
// the telemetry registry labeled with the cache's name.
type Cache struct {
	name string
	max  int

	mu      sync.Mutex
	entries map[string]*list.Element
	lru     list.List // front = most recently used; values are *cacheEntry
	onEvict func(key string)
}

type cacheEntry struct {
	key   string
	ready chan struct{}
	val   interface{}
	err   error
}

// NewCache returns an empty cache holding at most maxEntries values;
// maxEntries <= 0 means unbounded. The name labels the cache's telemetry
// counters.
func NewCache(name string, maxEntries int) *Cache {
	return &Cache{name: name, max: maxEntries, entries: map[string]*list.Element{}}
}

// OnEvict registers fn to be called with each key the cache evicts for
// capacity, after the cache lock is released — callers keeping derived
// records keyed by cache entries (e.g. the route table's max-k index)
// use it to drop records that would otherwise dangle. Purge does not
// invoke the hook: purging callers reset their records themselves.
func (c *Cache) OnEvict(fn func(key string)) {
	c.mu.Lock()
	c.onEvict = fn
	c.mu.Unlock()
}

// Do returns the value for key, computing it with fn on a miss. Errors are
// not cached: a failed computation is forgotten so a later Do retries.
// In-flight waiters of a failing computation receive its error.
func (c *Cache) Do(key string, fn func() (interface{}, error)) (interface{}, error) {
	c.mu.Lock()
	if el, ok := c.entries[key]; ok {
		c.lru.MoveToFront(el)
		e := el.Value.(*cacheEntry)
		c.mu.Unlock()
		<-e.ready
		if e.err == nil {
			telemetry.C("parallel_cache_hits_total", "cache", c.name).Inc()
		}
		return e.val, e.err
	}
	e := &cacheEntry{key: key, ready: make(chan struct{})}
	c.entries[key] = c.lru.PushFront(e)
	evicted := c.evictLocked()
	hook := c.onEvict
	c.mu.Unlock()
	telemetry.C("parallel_cache_misses_total", "cache", c.name).Inc()
	if hook != nil {
		for _, k := range evicted {
			hook(k)
		}
	}

	e.val, e.err = fn()
	close(e.ready)
	if e.err != nil {
		c.mu.Lock()
		if el, ok := c.entries[key]; ok && el.Value.(*cacheEntry) == e {
			c.lru.Remove(el)
			delete(c.entries, key)
		}
		c.mu.Unlock()
	}
	return e.val, e.err
}

// Peek returns the completed cached value for key without computing it.
// It never blocks: an in-flight entry reports absent.
func (c *Cache) Peek(key string) (interface{}, bool) {
	c.mu.Lock()
	el, ok := c.entries[key]
	if ok {
		c.lru.MoveToFront(el)
	}
	c.mu.Unlock()
	if !ok {
		return nil, false
	}
	e := el.Value.(*cacheEntry)
	select {
	case <-e.ready:
		if e.err != nil {
			return nil, false
		}
		return e.val, true
	default:
		return nil, false
	}
}

// Len returns the number of cached (including in-flight) entries.
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.entries)
}

// Purge drops every entry (test hook; in-flight computations finish but
// are no longer findable).
func (c *Cache) Purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = map[string]*list.Element{}
	c.lru.Init()
}

// evictLocked drops least-recently-used entries beyond the capacity and
// returns their keys for the eviction hook. Evicting an in-flight entry
// is safe: its waiters hold the entry pointer and still receive the
// computed value; the cache just forgets it.
func (c *Cache) evictLocked() []string {
	if c.max <= 0 {
		return nil
	}
	var evicted []string
	for len(c.entries) > c.max {
		el := c.lru.Back()
		if el == nil {
			break
		}
		e := el.Value.(*cacheEntry)
		c.lru.Remove(el)
		delete(c.entries, e.key)
		evicted = append(evicted, e.key)
		telemetry.C("parallel_cache_evictions_total", "cache", c.name).Inc()
	}
	return evicted
}

// Get is the typed wrapper around Cache.Do: identical keys return the
// identical (pointer-equal, for pointer types) cached value.
func Get[T any](c *Cache, key string, fn func() (T, error)) (T, error) {
	v, err := c.Do(key, func() (interface{}, error) { return fn() })
	if err != nil {
		var zero T
		return zero, err
	}
	return v.(T), nil
}
