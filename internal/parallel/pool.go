// Package parallel is the repository's shared execution engine: a bounded,
// deterministic worker pool that every fan-out (Yen all-pairs route
// computation, experiment cell loops, MCF per-commodity work, whole-registry
// runs) is routed through, plus a content-keyed memoization cache (cache.go)
// that lets repeated experiment cells reuse route tables and LP solutions
// instead of recomputing them.
//
// Determinism is the design constraint: results are collected by index, the
// error reported by a batch is always the one at the lowest failing index,
// and panics re-surface with their original value — so the same seed and
// the same worker count (indeed, ANY worker count) produce byte-identical
// experiment output. The pool size defaults to GOMAXPROCS and is overridden
// process-wide by the -workers CLI flag via SetDefaultWorkers.
package parallel

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"flattree/internal/telemetry"
)

// Config tunes a Pool.
type Config struct {
	// Workers bounds the number of concurrently running tasks. Zero or
	// negative selects DefaultWorkers().
	Workers int
}

// Pool executes batches of indexed tasks on a bounded number of
// goroutines. A Pool is stateless between batches and safe for concurrent
// use; goroutines exist only while a batch is running, so an idle Pool
// costs nothing.
type Pool struct {
	workers int
}

// New returns a pool of the configured size.
func New(cfg Config) *Pool {
	w := cfg.Workers
	if w <= 0 {
		w = DefaultWorkers()
	}
	return &Pool{workers: w}
}

// Default returns a pool sized to the current process-wide default.
func Default() *Pool { return New(Config{}) }

// Workers returns the pool's concurrency bound.
func (p *Pool) Workers() int { return p.workers }

var defaultWorkers atomic.Int64

// SetDefaultWorkers overrides the process-wide default pool size (wired to
// the flatsim/benchtables -workers flag). n <= 0 restores the GOMAXPROCS
// default.
func SetDefaultWorkers(n int) {
	if n < 0 {
		n = 0
	}
	defaultWorkers.Store(int64(n))
}

// DefaultWorkers returns the process-wide default pool size: the value of
// the last SetDefaultWorkers call, or GOMAXPROCS.
func DefaultWorkers() int {
	if v := defaultWorkers.Load(); v > 0 {
		return int(v)
	}
	return runtime.GOMAXPROCS(0)
}

// TaskPanic is the value re-panicked by a batch when a task panicked: it
// preserves the original panic value and the panicking task's stack.
type TaskPanic struct {
	Index int
	Value interface{}
	Stack []byte
}

func (t TaskPanic) String() string {
	return fmt.Sprintf("parallel: task %d panicked: %v\n%s", t.Index, t.Value, t.Stack)
}

// failure records the outcome of one failed task; the batch reports the
// failure with the lowest index so error identity never depends on
// goroutine scheduling.
type failure struct {
	err      error
	panicked bool
	panicVal interface{}
	stack    []byte
}

// ForEach runs fn(i) for every i in [0, n) on at most Workers goroutines
// and returns when all tasks finished. A task panic is re-raised in the
// caller as a TaskPanic (lowest panicking index).
func (p *Pool) ForEach(n int, fn func(i int)) {
	// fn cannot error, so run can only fail by panic, which it re-raises.
	_ = p.run(context.Background(), n, func(_ context.Context, i int) error {
		fn(i)
		return nil
	})
}

// ForEachErr runs fn for every index, stopping early when ctx is
// cancelled. When one or more tasks fail, every task with a smaller index
// still runs and the returned error is the lowest-index one — the same
// error a serial loop would report — so error output is deterministic for
// any worker count.
func (p *Pool) ForEachErr(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	return p.run(ctx, n, fn)
}

// Map runs fn for every index and returns the results in index order, so
// output never depends on completion order. On error the lowest-index
// failure is returned and the results are discarded.
func Map[T any](p *Pool, n int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	err := p.run(context.Background(), n, func(_ context.Context, i int) error {
		v, err := fn(i)
		if err != nil {
			return err
		}
		out[i] = v
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// ForEach runs fn on the default pool.
func ForEach(n int, fn func(i int)) { Default().ForEach(n, fn) }

// run is the batch engine. Tasks are claimed from an atomic counter in
// ascending index order; a recorded failure at index f suppresses tasks
// with larger indexes (they can only be claimed after f was), so the
// minimum failing index — the reported one — is schedule-independent.
func (p *Pool) run(ctx context.Context, n int, fn func(ctx context.Context, i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := p.workers
	if workers > n {
		workers = n
	}
	telemetry.C("parallel_batches_total").Inc()
	telemetry.C("parallel_tasks_total").Add(int64(n))

	var (
		next     atomic.Int64
		failMu   sync.Mutex
		failIdx  = n // lowest failing index seen so far
		failInfo failure
	)
	recordFailure := func(i int, f failure) {
		failMu.Lock()
		if i < failIdx {
			failIdx, failInfo = i, f
		}
		failMu.Unlock()
	}
	minFailIdx := func() int {
		failMu.Lock()
		defer failMu.Unlock()
		return failIdx
	}
	runTask := func(i int) {
		defer func() {
			if r := recover(); r != nil {
				buf := make([]byte, 8192)
				buf = buf[:runtime.Stack(buf, false)]
				recordFailure(i, failure{panicked: true, panicVal: r, stack: buf})
			}
		}()
		if err := fn(ctx, i); err != nil {
			recordFailure(i, failure{err: err})
		}
	}
	worker := func() {
		for {
			i := int(next.Add(1) - 1)
			if i >= n {
				return
			}
			if ctx.Err() != nil {
				return
			}
			if i > minFailIdx() {
				continue
			}
			runTask(i)
		}
	}

	if workers == 1 {
		// Inline fast path: no goroutines, identical failure semantics.
		worker()
	} else {
		var wg sync.WaitGroup
		wg.Add(workers)
		for w := 0; w < workers; w++ {
			go func() {
				defer wg.Done()
				worker()
			}()
		}
		wg.Wait()
	}

	if failIdx < n {
		if failInfo.panicked {
			panic(TaskPanic{Index: failIdx, Value: failInfo.panicVal, Stack: failInfo.stack})
		}
		return failInfo.err
	}
	return ctx.Err()
}
