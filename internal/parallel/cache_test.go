package parallel

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

type blob struct{ payload []int }

func TestCachePointerEqualForIdenticalKeys(t *testing.T) {
	c := NewCache("test", 16)
	build := func() (*blob, error) { return &blob{payload: []int{1, 2, 3}}, nil }
	a, err := Get(c, "k", build)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Get(c, "k", build)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("identical keys returned distinct pointers %p %p", a, b)
	}
	other, err := Get(c, "k2", build)
	if err != nil {
		t.Fatal(err)
	}
	if other == a {
		t.Fatal("distinct keys returned the same pointer")
	}
}

func TestCacheSingleFlight(t *testing.T) {
	c := NewCache("test", 16)
	var computed atomic.Int64
	var wg sync.WaitGroup
	results := make([]*blob, 32)
	start := make(chan struct{})
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			<-start
			v, err := Get(c, "shared", func() (*blob, error) {
				computed.Add(1)
				return &blob{}, nil
			})
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = v
		}(i)
	}
	close(start)
	wg.Wait()
	if n := computed.Load(); n != 1 {
		t.Fatalf("value computed %d times, want 1", n)
	}
	for i, v := range results {
		if v != results[0] {
			t.Fatalf("caller %d got a different pointer", i)
		}
	}
}

func TestCacheLRUEviction(t *testing.T) {
	c := NewCache("test", 2)
	mk := func(i int) func() (*blob, error) {
		return func() (*blob, error) { return &blob{payload: []int{i}}, nil }
	}
	a1, _ := Get(c, "a", mk(1))
	Get(c, "b", mk(2))
	// Touch "a" so "b" is the LRU entry, then insert "c" to evict "b".
	Get(c, "a", mk(0))
	Get(c, "c", mk(3))
	if c.Len() != 2 {
		t.Fatalf("cache holds %d entries, want 2", c.Len())
	}
	if _, ok := c.Peek("b"); ok {
		t.Fatal("evicted key still present")
	}
	a2, _ := Get(c, "a", mk(99))
	if a1 != a2 {
		t.Fatal("retained key was recomputed")
	}
	b2, _ := Get(c, "b", mk(4))
	if b2.payload[0] != 4 {
		t.Fatal("evicted key was not recomputed")
	}
}

func TestCacheErrorsNotCached(t *testing.T) {
	c := NewCache("test", 16)
	calls := 0
	fail := errors.New("transient")
	_, err := Get(c, "k", func() (*blob, error) { calls++; return nil, fail })
	if !errors.Is(err, fail) {
		t.Fatalf("err = %v", err)
	}
	v, err := Get(c, "k", func() (*blob, error) { calls++; return &blob{}, nil })
	if err != nil || v == nil {
		t.Fatalf("retry after error failed: %v %v", v, err)
	}
	if calls != 2 {
		t.Fatalf("fn called %d times, want 2 (error must not be cached)", calls)
	}
	if c.Len() != 1 {
		t.Fatalf("cache holds %d entries, want 1", c.Len())
	}
}

func TestCachePeek(t *testing.T) {
	c := NewCache("test", 16)
	if _, ok := c.Peek("missing"); ok {
		t.Fatal("Peek found a missing key")
	}
	want, _ := Get(c, "k", func() (*blob, error) { return &blob{}, nil })
	got, ok := c.Peek("k")
	if !ok || got.(*blob) != want {
		t.Fatalf("Peek = %v %v, want the cached value", got, ok)
	}
}

func TestCachePurge(t *testing.T) {
	c := NewCache("test", 16)
	Get(c, "k", func() (*blob, error) { return &blob{}, nil })
	c.Purge()
	if c.Len() != 0 {
		t.Fatalf("cache holds %d entries after Purge", c.Len())
	}
}

func TestCacheUnboundedWhenMaxNonPositive(t *testing.T) {
	c := NewCache("test", 0)
	for i := 0; i < 100; i++ {
		Get(c, fmt.Sprintf("k%d", i), func() (*blob, error) { return &blob{}, nil })
	}
	if c.Len() != 100 {
		t.Fatalf("unbounded cache holds %d entries, want 100", c.Len())
	}
}

// TestCacheEvictionHook verifies OnEvict fires with exactly the keys
// dropped for capacity, in LRU order, and not on Purge.
func TestCacheEvictionHook(t *testing.T) {
	c := NewCache("test", 2)
	var evicted []string
	c.OnEvict(func(key string) { evicted = append(evicted, key) })
	build := func() (*blob, error) { return &blob{}, nil }
	for _, k := range []string{"a", "b", "c", "d"} {
		if _, err := Get(c, k, build); err != nil {
			t.Fatal(err)
		}
	}
	if want := []string{"a", "b"}; !slicesEqual(evicted, want) {
		t.Fatalf("evicted keys %v, want %v", evicted, want)
	}
	// Re-using a key keeps it hot: "c" is refreshed, so "d" goes next.
	if _, err := Get(c, "c", build); err != nil {
		t.Fatal(err)
	}
	if _, err := Get(c, "e", build); err != nil {
		t.Fatal(err)
	}
	if want := []string{"a", "b", "d"}; !slicesEqual(evicted, want) {
		t.Fatalf("evicted keys %v, want %v", evicted, want)
	}
	c.Purge()
	if want := []string{"a", "b", "d"}; !slicesEqual(evicted, want) {
		t.Fatalf("Purge invoked the eviction hook: %v", evicted)
	}
}

func slicesEqual(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
