package parallel

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

func TestMapOrderedResults(t *testing.T) {
	for _, workers := range []int{1, 2, 8, 33} {
		p := New(Config{Workers: workers})
		n := 500
		got, err := Map(p, n, func(i int) (int, error) { return i * i, nil })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(got) != n {
			t.Fatalf("workers=%d: got %d results", workers, len(got))
		}
		for i, v := range got {
			if v != i*i {
				t.Fatalf("workers=%d: result[%d] = %d, want %d", workers, i, v, i*i)
			}
		}
	}
}

func TestForEachRunsEveryIndexOnce(t *testing.T) {
	p := New(Config{Workers: 7})
	n := 1000
	counts := make([]atomic.Int64, n)
	p.ForEach(n, func(i int) { counts[i].Add(1) })
	for i := range counts {
		if c := counts[i].Load(); c != 1 {
			t.Fatalf("index %d ran %d times", i, c)
		}
	}
}

// TestLowestIndexErrorDeterminism pins the determinism contract: whichever
// worker count and schedule, a batch with several failing tasks always
// reports the lowest failing index, exactly as a serial loop would.
func TestLowestIndexErrorDeterminism(t *testing.T) {
	failAt := map[int]bool{13: true, 200: true, 399: true}
	for _, workers := range []int{1, 2, 4, 16} {
		p := New(Config{Workers: workers})
		for trial := 0; trial < 10; trial++ {
			err := p.ForEachErr(context.Background(), 400, func(_ context.Context, i int) error {
				if failAt[i] {
					return fmt.Errorf("task %d failed", i)
				}
				return nil
			})
			if err == nil || err.Error() != "task 13 failed" {
				t.Fatalf("workers=%d trial %d: err = %v, want task 13", workers, trial, err)
			}
		}
	}
}

func TestTasksBelowFailingIndexAlwaysRun(t *testing.T) {
	p := New(Config{Workers: 8})
	n := 300
	fail := 250
	counts := make([]atomic.Int64, n)
	err := p.ForEachErr(context.Background(), n, func(_ context.Context, i int) error {
		counts[i].Add(1)
		if i == fail {
			return errors.New("boom")
		}
		return nil
	})
	if err == nil {
		t.Fatal("no error")
	}
	for i := 0; i < fail; i++ {
		if counts[i].Load() != 1 {
			t.Fatalf("task %d below the failing index did not run", i)
		}
	}
}

func TestPanicCapture(t *testing.T) {
	p := New(Config{Workers: 4})
	defer func() {
		r := recover()
		tp, ok := r.(TaskPanic)
		if !ok {
			t.Fatalf("recovered %T (%v), want TaskPanic", r, r)
		}
		if tp.Index != 7 || tp.Value != "kaboom" {
			t.Fatalf("TaskPanic = {%d %v}, want {7 kaboom}", tp.Index, tp.Value)
		}
		if len(tp.Stack) == 0 {
			t.Fatal("TaskPanic has no stack")
		}
	}()
	p.ForEach(100, func(i int) {
		if i == 7 || i == 55 {
			panic("kaboom")
		}
	})
	t.Fatal("ForEach did not re-panic")
}

func TestContextCancellation(t *testing.T) {
	p := New(Config{Workers: 3})
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := p.ForEachErr(ctx, 10000, func(ctx context.Context, i int) error {
		if ran.Add(1) == 20 {
			cancel()
		}
		return nil
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10000 {
		t.Fatalf("cancellation did not stop the batch (%d tasks ran)", n)
	}
}

// TestGoroutineBound asserts the pool never runs more than Workers
// goroutines per batch: peak goroutine count during a large batch stays
// within pool size + slack of the pre-batch baseline.
func TestGoroutineBound(t *testing.T) {
	const workers = 4
	p := New(Config{Workers: workers})
	base := runtime.NumGoroutine()

	done := make(chan struct{})
	var peak atomic.Int64
	go func() {
		defer close(done)
		for {
			select {
			case <-done:
				return
			default:
			}
			if g := int64(runtime.NumGoroutine()); g > peak.Load() {
				peak.Store(g)
			}
			time.Sleep(50 * time.Microsecond)
		}
	}()

	p.ForEach(5000, func(i int) {
		s := 0
		for j := 0; j < 2000; j++ {
			s += j
		}
		_ = s
	})
	done <- struct{}{}
	<-done

	// Slack: the sampler itself plus test-harness goroutines.
	if got, limit := peak.Load(), int64(base+workers+4); got > limit {
		t.Fatalf("peak goroutines %d exceeds baseline %d + workers %d + slack", got, base, workers)
	}
}

func TestDefaultWorkersOverride(t *testing.T) {
	defer SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() = %d, want GOMAXPROCS %d", got, runtime.GOMAXPROCS(0))
	}
	SetDefaultWorkers(3)
	if got := DefaultWorkers(); got != 3 {
		t.Fatalf("DefaultWorkers() = %d after SetDefaultWorkers(3)", got)
	}
	if got := Default().Workers(); got != 3 {
		t.Fatalf("Default().Workers() = %d, want 3", got)
	}
	SetDefaultWorkers(0)
	if got := DefaultWorkers(); got != runtime.GOMAXPROCS(0) {
		t.Fatalf("DefaultWorkers() = %d after reset", got)
	}
}

func TestEmptyAndSingleBatches(t *testing.T) {
	p := New(Config{Workers: 4})
	if err := p.ForEachErr(context.Background(), 0, nil); err != nil {
		t.Fatalf("empty batch: %v", err)
	}
	got, err := Map(p, 1, func(i int) (string, error) { return "x", nil })
	if err != nil || len(got) != 1 || got[0] != "x" {
		t.Fatalf("single batch: %v %v", got, err)
	}
}
