package churn

import (
	"math"
	"reflect"
	"testing"

	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

func exampleTopo(t *testing.T, mode core.Mode) *topo.Topology {
	t.Helper()
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(mode)
	return nw.Realize().Topo
}

func exampleEngine(tp *topo.Topology) *Engine {
	d := control.TestbedDelayModel()
	d.Parallel = true
	return &Engine{Topo: tp, K: 4, Detection: 0.01, Delay: d}
}

func TestGenerateTraceDeterministic(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	a := GenerateTrace(tp, 5, 2.0, 0.5, 7)
	b := GenerateTrace(tp, 5, 2.0, 0.5, 7)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different traces")
	}
	if len(a) != 10 {
		t.Fatalf("trace length = %d, want 10 (5 failures + 5 repairs)", len(a))
	}
	for i := 1; i < len(a); i++ {
		if a[i].Time < a[i-1].Time {
			t.Fatal("trace not time-ordered")
		}
	}
	fails := map[[2]int]float64{}
	for _, ev := range a {
		if tp.Nodes[ev.A].Kind == topo.Server || tp.Nodes[ev.B].Kind == topo.Server {
			t.Fatalf("trace touches a server uplink: %+v", ev)
		}
		k := pairKey(ev.A, ev.B)
		if !ev.Repair {
			fails[k] = ev.Time
			continue
		}
		ft, ok := fails[k]
		if !ok {
			t.Fatalf("repair without failure: %+v", ev)
		}
		if math.Abs(ev.Time-ft-0.5) > 1e-9 {
			t.Fatalf("repair at %v for failure at %v, want MTTR 0.5", ev.Time, ft)
		}
	}
	if c := GenerateTrace(tp, 5, 2.0, 0.5, 8); reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical traces")
	}
}

// TestCompileReactionDelay verifies the §4.3 reaction model: the capacity
// drop lands at the failure instant, while the reroute trails it by
// detection + rule-update latency — never instantaneous.
func TestCompileReactionDelay(t *testing.T) {
	tp := exampleTopo(t, core.ModeGlobal)
	e := exampleEngine(tp)

	servers := tp.Servers()
	var conns []Conn
	for _, pr := range traffic.Permutation(len(servers), 3) {
		conns = append(conns, Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 1})
	}
	// Fail a link that some installed path uses, so at least one
	// connection must be rerouted.
	table := routing.BuildKShortestCached(tp, e.K)
	p := table.ServerPaths(conns[0].Src, conns[0].Dst)[0]
	li := p.Links[1] // a switch-switch hop (0 is the server uplink)
	l := tp.G.Link(li)
	trace := Trace{{Time: 0.5, A: l.A, B: l.B}}

	plan, err := e.Compile(trace, conns)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reactions) != 1 || plan.Reactions[0] <= e.Detection {
		t.Fatalf("reaction delay %v, want > detection %v", plan.Reactions, e.Detection)
	}
	var capEv, rerouteEv *flowsim.TopoEvent
	for i := range plan.Events {
		ev := &plan.Events[i]
		if len(ev.SetCaps) > 0 {
			capEv = ev
		}
		if len(ev.Reroute) > 0 {
			rerouteEv = ev
		}
	}
	if capEv == nil || capEv.Time != 0.5 {
		t.Fatalf("capacity event = %+v, want at t=0.5", capEv)
	}
	for slot, c := range capEv.SetCaps {
		if c != 0 || slot/2 != li {
			t.Fatalf("capacity event masks slot %d to %v, want link %d to 0", slot, c, li)
		}
	}
	if rerouteEv == nil {
		t.Fatal("no reroute event for an affected connection")
	}
	if got, want := rerouteEv.Time, 0.5+plan.Reactions[0]; math.Abs(got-want) > 1e-12 {
		t.Fatalf("reroute at %v, want failure + reaction = %v", got, want)
	}
	// Rerouted paths avoid the dead link's slots.
	for c, paths := range rerouteEv.Reroute {
		for _, dp := range paths {
			for _, slot := range dp {
				if slot/2 == li {
					t.Fatalf("connection %d rerouted onto the dead link", c)
				}
			}
		}
	}
}

// TestChurnEndToEnd compiles a generated trace and runs the simulation:
// the run completes without error, at least one flow reroutes, and two
// identical runs produce identical results.
func TestChurnEndToEnd(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	e := exampleEngine(tp)
	servers := tp.Servers()
	var conns []Conn
	for _, pr := range traffic.Permutation(len(servers), 3) {
		conns = append(conns, Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 20})
	}
	run := func() []flowsim.ConnResult {
		t.Helper()
		trace := GenerateTrace(tp, 4, 1.0, 0.4, 11)
		plan, err := e.Compile(trace, conns)
		if err != nil {
			t.Fatal(err)
		}
		sim := flowsim.NewSim(routing.DirectedCaps(tp.G), plan.Specs)
		sim.Schedule(plan.Events)
		sim.Horizon = 60
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	reroutes, done := 0, 0
	for _, r := range a {
		reroutes += r.Reroutes
		if !math.IsInf(r.Finish, 1) {
			done++
		}
	}
	if reroutes == 0 {
		t.Fatal("no connection rerouted under a 4-failure trace")
	}
	if done == 0 {
		t.Fatal("no connection completed")
	}
	if b := run(); !reflect.DeepEqual(a, b) {
		t.Fatal("two identical churn runs differ")
	}
}

// TestChurnDisconnection cuts every switch link of one edge switch with no
// repair: its servers' flows must stall (reported, not fatal) while the
// rest of the fabric completes.
func TestChurnDisconnection(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	e := exampleEngine(tp)
	edge := tp.Edges()[0]
	var trace Trace
	for _, id := range tp.G.Incident(edge) {
		other := tp.G.Link(id).Other(edge)
		if tp.Nodes[other].Kind == topo.Server {
			continue
		}
		trace = append(trace, Event{Time: 0.2, A: edge, B: other})
	}
	trace.Sort()
	if len(trace) == 0 {
		t.Fatal("edge switch has no switch links")
	}

	servers := tp.Servers()
	var conns []Conn
	for _, pr := range traffic.Permutation(len(servers), 3) {
		conns = append(conns, Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 5})
	}
	plan, err := e.Compile(trace, conns)
	if err != nil {
		t.Fatal(err)
	}
	sim := flowsim.NewSim(routing.DirectedCaps(tp.G), plan.Specs)
	sim.Schedule(plan.Events)
	sim.Horizon = 30
	res, err := sim.Run()
	if err != nil {
		t.Fatal(err)
	}
	stalledUnfinished, done := 0, 0
	for i, r := range res {
		onEdge := tp.AttachedSwitch(conns[i].Src) == edge || tp.AttachedSwitch(conns[i].Dst) == edge
		if onEdge {
			if math.IsInf(r.Finish, 1) {
				if r.StallTime <= 0 {
					t.Fatalf("conn %d disconnected but no stall time: %+v", i, r)
				}
				stalledUnfinished++
			}
			continue
		}
		if !math.IsInf(r.Finish, 1) {
			done++
		}
	}
	if stalledUnfinished == 0 {
		t.Fatal("no flow on the severed edge switch stalled")
	}
	if done == 0 {
		t.Fatal("no flow outside the severed edge switch completed")
	}
}

// TestCompileErrors covers the engine's validation paths.
func TestCompileErrors(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	e := exampleEngine(tp)
	if _, err := e.Compile(nil, []Conn{{Src: 0, Dst: 1, Bits: 1}}); err == nil {
		t.Fatal("non-server endpoints accepted")
	}
	servers := tp.Servers()
	conns := []Conn{{Src: servers[0], Dst: servers[1], Bits: 1}}
	if _, err := e.Compile(Trace{{Time: 0, A: tp.Edges()[0], B: tp.Aggs()[0], Repair: true}}, conns); err == nil {
		t.Fatal("repair of healthy link accepted")
	}
	if _, err := e.Compile(Trace{{Time: 0, A: servers[0], B: servers[1]}}, conns); err == nil {
		t.Fatal("failing a nonexistent adjacency accepted")
	}
}
