// Package churn is a time-driven fault-injection engine: it schedules
// link failure and recovery events against a running flowsim simulation.
//
// The paper's footnote 2 defers fault-tolerance evaluation of flat-tree
// to future work; the static failure-fraction ablation
// (experiments.AblationFailures) measures surviving throughput but never
// exercises failures arriving while traffic is in flight. Churn closes
// that gap with the regime reconfigurable-topology work actually cares
// about: a seeded trace of failures-over-time, a control plane that
// reacts after a modeled detection + rule-update latency (reusing
// control.DelayModel's §4.3 timing — flows keep their stale paths until
// the new rules land, then move onto surviving k-shortest paths), and
// graceful degradation in the simulator (disconnected flows stall and
// retry with bounded backoff instead of aborting the run).
package churn

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"flattree/internal/topo"
)

// Event is one scheduled fault or repair of the link between nodes A and
// B. With parallel links, each fail event masks one more link of the
// adjacency (lowest link ID first, matching control's masking rule) and
// each repair restores the most recently masked one.
type Event struct {
	// Time is the event time in simulation seconds.
	Time float64
	// A and B are the link's endpoint node IDs on the realized topology.
	A, B int
	// Repair marks recovery of a previously failed link.
	Repair bool
}

// Trace is a time-ordered schedule of failure and recovery events.
type Trace []Event

// Sort orders the trace by time; ties keep (A, B, fail-before-repair)
// order so traces are deterministic regardless of construction order.
func (tr Trace) Sort() {
	sort.SliceStable(tr, func(i, j int) bool {
		a, b := tr[i], tr[j]
		if a.Time != b.Time {
			return a.Time < b.Time
		}
		if a.A != b.A {
			return a.A < b.A
		}
		if a.B != b.B {
			return a.B < b.B
		}
		return !a.Repair && b.Repair
	})
}

// GenerateTrace draws a seeded failure schedule on the realized topology:
// n distinct switch-switch adjacencies fail at uniform times in
// [0, window) and, when mttr > 0, recover mttr seconds later. Server
// uplinks never fail (a dead NIC removes the server, which is not a
// network property). Partitioning failures are allowed — graceful
// degradation is exactly what the engine evaluates. The same (topology,
// n, window, mttr, seed) always yields the same trace.
//
// GenerateTrace does not validate its parameters; callers with untrusted
// or computed inputs should use GenerateTraceChecked, which rejects the
// degenerate schedules this function silently produces (window <= 0
// collapses every failure onto t=0, negative mttr schedules repairs
// before their failures, NaN times poison the event sort).
func GenerateTrace(t *topo.Topology, n int, window, mttr float64, seed int64) Trace {
	seen := make(map[[2]int]bool)
	var pairs [][2]int
	for _, l := range t.G.Links() {
		if t.Nodes[l.A].Kind == topo.Server || t.Nodes[l.B].Kind == topo.Server {
			continue
		}
		k := pairKey(l.A, l.B)
		if !seen[k] {
			seen[k] = true
			pairs = append(pairs, k)
		}
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(pairs), func(i, j int) { pairs[i], pairs[j] = pairs[j], pairs[i] })
	if n > len(pairs) {
		n = len(pairs)
	}
	var tr Trace
	for i := 0; i < n; i++ {
		at := rng.Float64() * window
		tr = append(tr, Event{Time: at, A: pairs[i][0], B: pairs[i][1]})
		if mttr > 0 {
			tr = append(tr, Event{Time: at + mttr, A: pairs[i][0], B: pairs[i][1], Repair: true})
		}
	}
	tr.Sort()
	return tr
}

// GenerateTraceChecked validates the schedule parameters before drawing,
// mirroring flowsim's NaN/negative-capacity validation: n must be
// non-negative, window positive and finite, and mttr non-negative and
// finite. GenerateTrace accepts all of these silently and produces
// degenerate schedules (every failure at t=0, repairs before failures, a
// NaN-poisoned sort); experiments and services route through this
// entry point instead.
func GenerateTraceChecked(t *topo.Topology, n int, window, mttr float64, seed int64) (Trace, error) {
	if n < 0 {
		return nil, fmt.Errorf("churn: negative failure count n = %d", n)
	}
	if math.IsNaN(window) || math.IsInf(window, 0) || window <= 0 {
		return nil, fmt.Errorf("churn: failure window %v must be positive and finite", window)
	}
	if math.IsNaN(mttr) || math.IsInf(mttr, 0) || mttr < 0 {
		return nil, fmt.Errorf("churn: mttr %v must be non-negative and finite", mttr)
	}
	return GenerateTrace(t, n, window, mttr, seed), nil
}

// pairKey normalizes an adjacency to ascending endpoint order.
func pairKey(a, b int) [2]int {
	if a > b {
		a, b = b, a
	}
	return [2]int{a, b}
}
