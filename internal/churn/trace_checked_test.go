package churn

import (
	"math"
	"reflect"
	"testing"

	"flattree/internal/core"
)

func TestGenerateTraceCheckedRejectsDegenerateInputs(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	cases := []struct {
		name         string
		n            int
		window, mttr float64
	}{
		{"negative n", -1, 1.0, 0.5},
		{"zero window", 5, 0, 0.5},
		{"negative window", 5, -1.0, 0.5},
		{"nan window", 5, math.NaN(), 0.5},
		{"inf window", 5, math.Inf(1), 0.5},
		{"negative mttr", 5, 1.0, -0.5},
		{"nan mttr", 5, 1.0, math.NaN()},
		{"inf mttr", 5, 1.0, math.Inf(1)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := GenerateTraceChecked(tp, tc.n, tc.window, tc.mttr, 3)
			if err == nil {
				t.Fatalf("GenerateTraceChecked(n=%d, window=%v, mttr=%v) accepted degenerate input, trace len %d",
					tc.n, tc.window, tc.mttr, len(tr))
			}
		})
	}
}

func TestGenerateTraceCheckedMatchesUnchecked(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	got, err := GenerateTraceChecked(tp, 5, 2.0, 0.5, 7)
	if err != nil {
		t.Fatal(err)
	}
	want := GenerateTrace(tp, 5, 2.0, 0.5, 7)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("checked trace differs from unchecked trace for identical valid inputs")
	}
}

func TestGenerateTraceCheckedAllowsBoundaryInputs(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	// mttr = 0 (instant repair) and n = 0 (empty trace) are degenerate but
	// well-defined, not errors.
	if _, err := GenerateTraceChecked(tp, 5, 1.0, 0, 3); err != nil {
		t.Fatalf("mttr=0: %v", err)
	}
	tr, err := GenerateTraceChecked(tp, 0, 1.0, 0.5, 3)
	if err != nil {
		t.Fatalf("n=0: %v", err)
	}
	if len(tr) != 0 {
		t.Fatalf("n=0 trace has %d events, want 0", len(tr))
	}
}
