package churn

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"flattree/internal/control"
	"flattree/internal/core"
	"flattree/internal/flowsim"
	"flattree/internal/parallel"
	"flattree/internal/routing"
	"flattree/internal/topo"
	"flattree/internal/traffic"
)

// parallelChurnTopo mirrors the routing package's parallel-link fabric:
// three edge switches, two aggs, parallel bundles e0-a0 and e2-a1, and a
// detour-only a0-a1 trunk no shortest path uses at k=1.
func parallelChurnTopo() *topo.Topology {
	tp := topo.NewTopology("parallel-churn")
	e0 := tp.AddNode(topo.Edge, 0)
	e1 := tp.AddNode(topo.Edge, 0)
	e2 := tp.AddNode(topo.Edge, 1)
	a0 := tp.AddNode(topo.Agg, 0)
	a1 := tp.AddNode(topo.Agg, 1)
	for _, pair := range [][2]int{{e0, a0}, {e0, a0}, {e1, a0}, {e1, a1}, {e2, a1}, {e2, a1}, {a0, a1}, {e0, a1}, {e2, a0}} {
		tp.AddLink(pair[0], pair[1])
	}
	for i := 0; i < 6; i++ {
		s := tp.AddNode(topo.Server, i/2)
		tp.AttachServer(s, []int{e0, e1, e2}[i/2])
	}
	return tp
}

// TestZeroAffectedFailureCostsDetection pins the corrected ruleTime: a
// failure that breaks zero installed paths (its whole switch adjacency is
// unused by the table) must cost exactly Detection — no whole-table
// delete+add — and trigger no reroute.
func TestZeroAffectedFailureCostsDetection(t *testing.T) {
	tp := parallelChurnTopo()
	d := control.TestbedDelayModel()
	d.Parallel = true
	e := &Engine{Topo: tp, K: 1, Detection: 0.05, Delay: d}

	servers := tp.Servers()
	var conns []Conn
	for _, pr := range traffic.Permutation(len(servers), 3) {
		conns = append(conns, Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 1})
	}
	// At k=1 no shortest path between edge switches crosses the a0-a1
	// trunk (nodes 3-4): every pair routes through a single agg.
	trace := Trace{{Time: 0.2, A: 3, B: 4}}
	plan, err := e.Compile(trace, conns)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Reactions) != 1 || plan.Reactions[0] != e.Detection {
		t.Fatalf("zero-affected failure reaction = %v, want exactly detection %v", plan.Reactions, e.Detection)
	}
	for _, ev := range plan.Events {
		if len(ev.Reroute) > 0 {
			t.Fatalf("zero-affected failure produced a reroute event: %+v", ev)
		}
	}
}

// TestDeltaPricingBelowFullTable verifies the bugfix direction: every
// event's delta-priced reaction is at most the old whole-table
// delete+add price, and at least one event is strictly cheaper.
func TestDeltaPricingBelowFullTable(t *testing.T) {
	tp := exampleTopo(t, core.ModeGlobal)
	e := exampleEngine(tp)
	servers := tp.Servers()
	var conns []Conn
	for _, pr := range traffic.Permutation(len(servers), 3) {
		conns = append(conns, Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 1})
	}
	trace := GenerateTrace(tp, 5, 1.0, 0.4, 13)
	plan, err := e.Compile(trace, conns)
	if err != nil {
		t.Fatal(err)
	}

	// Old pricing reference: whole-table delete of the previous rules plus
	// whole-table add of the new ones, bounded by the busiest switch.
	fullPrice := func(old, new map[int]int) float64 {
		var del, add int
		for _, n := range old {
			if n > del {
				del = n
			}
		}
		for _, n := range new {
			if n > add {
				add = n
			}
		}
		return float64(del)*e.Delay.PerRuleDelete + float64(add)*e.Delay.PerRuleAdd
	}
	failed := make(map[[2]int]int)
	prev := routing.BuildKShortest(tp, e.K).PrefixRulesPerSwitch()
	strictly := 0
	for i, ev := range trace {
		applyTraceEvent(failed, ev)
		pruned, _ := pruneWithMap(tp, failed)
		rules := routing.BuildKShortest(pruned, e.K).PrefixRulesPerSwitch()
		full := e.Detection + fullPrice(prev, rules)
		prev = rules
		if plan.Reactions[i] > full+1e-12 {
			t.Fatalf("event %d: delta-priced reaction %v exceeds whole-table price %v", i, plan.Reactions[i], full)
		}
		if plan.Reactions[i] < full-1e-12 {
			strictly++
		}
	}
	if strictly == 0 {
		t.Fatal("no event priced strictly below the whole-table reference")
	}
}

// applyTraceEvent updates the per-adjacency masked-link counter the way
// Compile does.
func applyTraceEvent(failed map[[2]int]int, ev Event) {
	key := pairKey(ev.A, ev.B)
	if ev.Repair {
		failed[key]--
		if failed[key] == 0 {
			delete(failed, key)
		}
		return
	}
	failed[key]++
}

// TestCompileMatchesFullRebuild is the engine-level differential: a
// reference compile that rebuilds the pruned table from scratch on every
// event must produce exactly the same simulator events as the
// incremental engine (same capacity drops, same reroute paths, same
// times), hence identical flowsim output.
func TestCompileMatchesFullRebuild(t *testing.T) {
	tp := exampleTopo(t, core.ModeClos)
	e := exampleEngine(tp)
	servers := tp.Servers()
	var conns []Conn
	for _, pr := range traffic.Permutation(len(servers), 3) {
		conns = append(conns, Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 10})
	}
	trace := GenerateTrace(tp, 6, 1.0, 0.4, 29)
	plan, err := e.Compile(trace, conns)
	if err != nil {
		t.Fatal(err)
	}

	// Reference: the pre-incremental engine body — full pruned rebuild and
	// linkMap translation per event — reusing the plan's reaction delays
	// (pricing is covered by the dedicated pricing tests).
	base := routing.BuildKShortest(tp, e.K)
	installed := make([][][]int, len(conns))
	for i, c := range conns {
		installed[i] = directedServerPaths(base, tp.G, nil, c.Src, c.Dst, e.K)
	}
	failed := make(map[[2]int]int)
	deadSlots := make(map[int]bool)
	linksByPair := make(map[[2]int][]int)
	for id, l := range tp.G.Links() {
		if tp.Nodes[l.A].Kind == topo.Server || tp.Nodes[l.B].Kind == topo.Server {
			continue
		}
		linksByPair[pairKey(l.A, l.B)] = append(linksByPair[pairKey(l.A, l.B)], id)
	}
	var refEvents []flowsim.TopoEvent
	for i, ev := range trace {
		key := pairKey(ev.A, ev.B)
		ids := linksByPair[key]
		var link int
		cap := 0.0
		if ev.Repair {
			failed[key]--
			if failed[key] == 0 {
				delete(failed, key)
			}
			link = ids[failed[key]]
			cap = tp.G.Link(link).Capacity
			delete(deadSlots, 2*link)
			delete(deadSlots, 2*link+1)
		} else {
			link = ids[failed[key]]
			failed[key]++
			deadSlots[2*link] = true
			deadSlots[2*link+1] = true
		}
		refEvents = append(refEvents, flowsim.TopoEvent{
			Time:    ev.Time,
			SetCaps: map[int]float64{2 * link: cap, 2*link + 1: cap},
		})
		pruned, linkMap := pruneWithMap(tp, failed)
		ref := routing.BuildKShortest(pruned, e.K)
		reroute := make(map[int][][]int)
		for ci, c := range conns {
			cur := installed[ci]
			if len(cur) > 0 && !crossesDead(cur, deadSlots) {
				continue
			}
			np := directedServerPaths(ref, pruned.G, linkMap, c.Src, c.Dst, e.K)
			if pathsEqual(cur, np) {
				continue
			}
			installed[ci] = np
			reroute[ci] = np
		}
		if len(reroute) > 0 {
			refEvents = append(refEvents, flowsim.TopoEvent{Time: ev.Time + plan.Reactions[i], Reroute: reroute})
		}
	}
	sort.SliceStable(refEvents, func(a, b int) bool { return refEvents[a].Time < refEvents[b].Time })
	if !reflect.DeepEqual(plan.Events, refEvents) {
		t.Fatal("incremental compile and full-rebuild reference produced different simulator events")
	}
}

// TestCompileWorkerInvariance runs the full compile + simulation at one
// and at eight workers: plans and flowsim results must be identical.
func TestCompileWorkerInvariance(t *testing.T) {
	tp := exampleTopo(t, core.ModeGlobal)
	e := exampleEngine(tp)
	servers := tp.Servers()
	var conns []Conn
	for _, pr := range traffic.Permutation(len(servers), 3) {
		conns = append(conns, Conn{Src: servers[pr.Src], Dst: servers[pr.Dst], Bits: 15})
	}
	run := func(workers int) (*Plan, []flowsim.ConnResult) {
		t.Helper()
		parallel.SetDefaultWorkers(workers)
		defer parallel.SetDefaultWorkers(0)
		routing.PurgeCache()
		trace := GenerateTrace(tp, 5, 1.0, 0.5, 41)
		plan, err := e.Compile(trace, conns)
		if err != nil {
			t.Fatal(err)
		}
		sim := flowsim.NewSim(routing.DirectedCaps(tp.G), plan.Specs)
		sim.Schedule(plan.Events)
		sim.Horizon = 60
		res, err := sim.Run()
		if err != nil {
			t.Fatal(err)
		}
		return plan, res
	}
	p1, r1 := run(1)
	p8, r8 := run(8)
	if !reflect.DeepEqual(p1, p8) {
		t.Fatal("plans differ between -workers=1 and -workers=8")
	}
	if !reflect.DeepEqual(r1, r8) {
		t.Fatal("simulation results differ between -workers=1 and -workers=8")
	}
	for _, r := range r1 {
		if math.IsNaN(r.Finish) {
			t.Fatal("NaN finish time")
		}
	}
}
