package churn

import (
	"fmt"
	"maps"
	"sort"

	"flattree/internal/control"
	"flattree/internal/flowsim"
	"flattree/internal/graph"
	"flattree/internal/recorder"
	"flattree/internal/routing"
	"flattree/internal/telemetry"
	"flattree/internal/topo"
)

// Conn is one connection the engine routes and tracks across failures.
type Conn struct {
	// Src and Dst are server node IDs on the engine's topology.
	Src, Dst int
	// Bits, Arrival, Weight follow flowsim.ConnSpec.
	Bits, Arrival, Weight float64
}

// Engine compiles a churn trace against a healthy realized topology into
// the simulator's topology events: data-plane capacity drops at the
// failure instant, and a control-plane reroute after the modeled reaction
// delay.
type Engine struct {
	// Topo is the healthy realized topology; the simulation runs on its
	// directed link slots (routing.DirectedCaps order).
	Topo *topo.Topology
	// K is the number of surviving k-shortest paths installed per
	// connection at each reroute; zero defaults to 8.
	K int
	// Detection is the failure-detection latency before the controller
	// starts updating rules, in seconds.
	Detection float64
	// Delay prices the rule updates with §4.3's conversion constants: the
	// reaction to an event costs Detection plus the rule-delete and
	// rule-add time of the table diff (driven by the busiest switch when
	// Delay.Parallel, by the total otherwise). No OCS term applies —
	// failure handling never reconfigures converters.
	Delay control.DelayModel

	// Rec, when set, receives the compilation's flight-recorder events:
	// one link_fail/link_repair per trace event at its sim time, the
	// control-plane reaction window, and the per-switch rule deltas the
	// incremental table installs. Concurrent engines must use distinct
	// tracks.
	Rec *recorder.Track
}

// Plan is a compiled churn schedule.
type Plan struct {
	// Specs are the connections routed on the healthy topology, ready for
	// flowsim.NewSim with routing.DirectedCaps of the engine's topology.
	Specs []flowsim.ConnSpec
	// Events are the capacity and reroute events for flowsim.Schedule.
	Events []flowsim.TopoEvent
	// Reactions records the modeled control-plane latency of each trace
	// event, in trace order.
	Reactions []float64
	// Deltas records the per-switch rule delta the incremental table
	// installed for each trace event, in trace order — the rule churn that
	// priced the matching Reactions entry.
	Deltas []routing.RuleDelta
}

func (e *Engine) k() int {
	if e.K < 1 {
		return 8
	}
	return e.K
}

// Compile routes the connections on the healthy topology and turns the
// trace into simulator events. Each trace event yields (1) an immediate
// capacity event masking or restoring the physical link, and (2) when any
// connection is affected, a reroute event at Time + reaction delay moving
// every connection whose installed paths are broken — stale paths are
// kept until then, modeling §4.3's controller. A connection whose
// endpoints are disconnected by the surviving fabric receives an empty
// path set and stalls in the simulator until a repair restores
// reachability. Reroutes reflect the failure state at their triggering
// event; a reaction landing after a later trace event is a deliberate
// approximation of a controller acting on slightly stale state.
func (e *Engine) Compile(trace Trace, conns []Conn) (*Plan, error) {
	t := e.Topo
	k := e.k()
	for i, c := range conns {
		for _, nd := range []int{c.Src, c.Dst} {
			if nd < 0 || nd >= len(t.Nodes) || t.Nodes[nd].Kind != topo.Server {
				return nil, fmt.Errorf("churn: connection %d endpoint %d is not a server", i, nd)
			}
		}
	}
	// Parallel-link inventory: original link IDs per switch adjacency,
	// ascending — the masking rule fails the lowest surviving ID first,
	// matching control.pruneFailures.
	linksByPair := make(map[[2]int][]int)
	for id, l := range t.G.Links() {
		if t.Nodes[l.A].Kind == topo.Server || t.Nodes[l.B].Kind == topo.Server {
			continue
		}
		key := pairKey(l.A, l.B)
		linksByPair[key] = append(linksByPair[key], id)
	}

	table := routing.BuildKShortestCached(t, k)
	inc := routing.NewIncremental(table)
	inc.SetRecorder(e.Rec)
	view := inc.View()
	specs := make([]flowsim.ConnSpec, len(conns))
	installed := make([][][]int, len(conns))
	for i, c := range conns {
		dp := directedServerPaths(view, t.G, nil, c.Src, c.Dst, k)
		if len(dp) == 0 {
			return nil, fmt.Errorf("churn: no path between servers %d and %d on the healthy topology", c.Src, c.Dst)
		}
		specs[i] = flowsim.ConnSpec{Paths: dp, Bits: c.Bits, Arrival: c.Arrival, Weight: c.Weight}
		installed[i] = dp
	}

	failed := make(map[[2]int]int)
	deadSlots := make(map[int]bool)
	var events []flowsim.TopoEvent
	reactions := make([]float64, 0, len(trace))
	deltas := make([]routing.RuleDelta, 0, len(trace))
	for _, ev := range trace {
		key := pairKey(ev.A, ev.B)
		ids := linksByPair[key]
		var link int
		if ev.Repair {
			if failed[key] == 0 {
				return nil, fmt.Errorf("churn: repair of healthy link %d-%d at t=%v", ev.A, ev.B, ev.Time)
			}
			failed[key]--
			if failed[key] == 0 {
				delete(failed, key)
			}
			link = ids[failed[key]] // the most recently masked parallel link
		} else {
			if failed[key] >= len(ids) {
				return nil, fmt.Errorf("churn: no surviving link between %d and %d at t=%v", ev.A, ev.B, ev.Time)
			}
			link = ids[failed[key]]
			failed[key]++
		}
		cap := 0.0
		if ev.Repair {
			cap = t.G.Link(link).Capacity
			delete(deadSlots, 2*link)
			delete(deadSlots, 2*link+1)
			e.Rec.Emit(recorder.Event{T: ev.Time, Kind: recorder.LinkRepair, ID: link, A: int64(ev.A), B: int64(ev.B)})
		} else {
			deadSlots[2*link] = true
			deadSlots[2*link+1] = true
			e.Rec.Emit(recorder.Event{T: ev.Time, Kind: recorder.LinkFail, ID: link, A: int64(ev.A), B: int64(ev.B)})
		}
		events = append(events, flowsim.TopoEvent{
			Time:    ev.Time,
			SetCaps: map[int]float64{2 * link: cap, 2*link + 1: cap},
		})

		// Control-plane reaction: the incremental layer repairs only the
		// pairs the event touches and reports the exact per-switch rule
		// delta, which prices the reaction — §4.3's "only the changed
		// rules are touched".
		var delta routing.RuleDelta
		inc.SetSimTime(ev.Time)
		if ev.Repair {
			delta = inc.Repair(link)
		} else {
			delta = inc.Fail(link)
		}
		delay := ReactionTime(e.Detection, delta, e.Delay)
		reactions = append(reactions, delay)
		deltas = append(deltas, delta)
		e.Rec.Emit(recorder.Event{T: ev.Time, Kind: recorder.Reaction, V: delay,
			A: int64(delta.TotalDels()), B: int64(delta.TotalAdds())})

		reroute := make(map[int][][]int)
		for i, c := range conns {
			cur := installed[i]
			if len(cur) > 0 && !crossesDead(cur, deadSlots) {
				continue // stale but intact: flows keep working paths
			}
			np := directedServerPaths(view, t.G, nil, c.Src, c.Dst, k)
			if pathsEqual(cur, np) {
				continue
			}
			installed[i] = np
			reroute[i] = np
		}
		if len(reroute) > 0 {
			events = append(events, flowsim.TopoEvent{Time: ev.Time + delay, Reroute: reroute})
		}
		telemetry.C("churn_trace_events_total").Inc()
		telemetry.H("churn_reaction_seconds").Observe(delay)
	}
	sort.SliceStable(events, func(a, b int) bool { return events[a].Time < events[b].Time })
	return &Plan{Specs: specs, Events: events, Reactions: reactions, Deltas: deltas}, nil
}

// pruneWithMap rebuilds the topology without the masked links, returning
// it with a pruned-link-ID → original-link-ID map so paths computed on
// the surviving fabric translate back to the simulator's directed slots.
// Node IDs are preserved; unlike control's prune, a partitioned survivor
// is allowed — disconnected flows are the engine's subject, not an error.
func pruneWithMap(t *topo.Topology, failed map[[2]int]int) (*topo.Topology, []int) {
	remaining := make(map[[2]int]int, len(failed))
	maps.Copy(remaining, failed)
	out := topo.NewTopology(t.Name + "-churn")
	out.SetNumPods(t.NumPods())
	for _, n := range t.Nodes {
		id := out.AddNode(n.Kind, n.Pod)
		out.Nodes[id].LocalIndex = n.LocalIndex
	}
	var linkMap []int
	for id, l := range t.G.Links() {
		if t.Nodes[l.A].Kind == topo.Server || t.Nodes[l.B].Kind == topo.Server {
			continue // re-added below via AttachServer
		}
		key := pairKey(l.A, l.B)
		if remaining[key] > 0 {
			remaining[key]--
			continue // masked
		}
		out.AddLink(l.A, l.B)
		linkMap = append(linkMap, id)
	}
	for _, s := range t.Servers() {
		out.AttachServer(s, t.AttachedSwitch(s))
		linkMap = append(linkMap, t.G.Incident(s)[0])
	}
	return out, linkMap
}

// directedServerPaths returns up to k server-to-server paths as directed
// slot lists in the ORIGINAL graph's numbering. linkMap translates the
// table's graph to the original; nil means the table is already on it.
func directedServerPaths(table *routing.Table, g *graph.Graph, linkMap []int, src, dst, k int) [][]int {
	paths := table.ServerPaths(src, dst)
	if len(paths) > k {
		paths = paths[:k]
	}
	out := make([][]int, 0, len(paths))
	for _, p := range paths {
		dp := make([]int, len(p.Links))
		for i, id := range p.Links {
			l := g.Link(id)
			dir := 0
			if p.Nodes[i] != l.A {
				dir = 1
			}
			orig := id
			if linkMap != nil {
				orig = linkMap[id]
			}
			dp[i] = 2*orig + dir
		}
		out = append(out, dp)
	}
	return out
}

// ReactionTime prices one link event's control-plane reaction: detection
// latency plus the rule-diff update time under the delay model, following
// control.ConvertPods semantics — only the rules the event deletes and
// adds are charged; parallel configuration is bounded by the busiest
// switch, sequential by the totals. An event that changes no rules costs
// nothing beyond detection. This is the quantity Engine.Compile records
// per event and flatd's /events/link returns, so the online and offline
// paths price identically by construction.
func ReactionTime(detection float64, delta routing.RuleDelta, d control.DelayModel) float64 {
	if d.Parallel {
		return detection + float64(delta.MaxDels())*d.PerRuleDelete + float64(delta.MaxAdds())*d.PerRuleAdd
	}
	return detection + float64(delta.TotalDels())*d.PerRuleDelete + float64(delta.TotalAdds())*d.PerRuleAdd
}

// crossesDead reports whether any path uses a masked directed slot.
func crossesDead(paths [][]int, dead map[int]bool) bool {
	for _, p := range paths {
		for _, s := range p {
			if dead[s] {
				return true
			}
		}
	}
	return false
}

// pathsEqual compares two directed path sets exactly.
func pathsEqual(a, b [][]int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				return false
			}
		}
	}
	return true
}
