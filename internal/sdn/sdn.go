// Package sdn models the OpenFlow data plane of §4.2: per-switch flow
// tables with bounded capacity, the prefix-matching rule compilation the
// testbed used (§5.3), and packet forwarding over the compiled tables.
//
// It makes the paper's control-plane argument executable: naive per-flow
// rules overflow commercial table capacities even on the 24-server
// testbed, prefix aggregation divides the count by (servers per switch)²,
// and a packet addressed by the Figure 5 scheme — source and destination
// addresses selecting one of the k paths — actually traverses exactly the
// k-shortest path the controller computed.
package sdn

import (
	"fmt"

	"flattree/internal/addressing"
	"flattree/internal/routing"
	"flattree/internal/topo"
)

// Packet is the header state the flow tables match on.
type Packet struct {
	Src, Dst addressing.Address
}

// Action is what a matching rule does with a packet.
type Action struct {
	// Deliver hands the packet to the destination server.
	Deliver bool
	// OutLink is the link ID to forward on when not delivering.
	OutLink int
}

// Rule matches the /24-style prefixes of source and destination addresses
// (switch ID + path ID live in the first three octets, Figure 5a).
type Rule struct {
	SrcPrefix, DstPrefix addressing.Address
	Action               Action
}

// FlowTable is one switch's rule table with a hardware capacity.
type FlowTable struct {
	Capacity int
	rules    map[[2]addressing.Address]Action
}

// ErrTableFull reports a rule installation beyond capacity — the overflow
// §4 warns about ("the number of Openflow rules easily exceeds the
// capacity of commercial SDN switches").
var ErrTableFull = fmt.Errorf("sdn: flow table full")

// NewFlowTable returns an empty table; capacity <= 0 means unbounded.
func NewFlowTable(capacity int) *FlowTable {
	return &FlowTable{Capacity: capacity, rules: map[[2]addressing.Address]Action{}}
}

// Install adds a rule; reinstalling an identical match overwrites.
func (ft *FlowTable) Install(r Rule) error {
	key := [2]addressing.Address{r.SrcPrefix.Prefix24(), r.DstPrefix.Prefix24()}
	if _, exists := ft.rules[key]; !exists && ft.Capacity > 0 && len(ft.rules) >= ft.Capacity {
		return ErrTableFull
	}
	ft.rules[key] = r.Action
	return nil
}

// Len returns the installed rule count.
func (ft *FlowTable) Len() int { return len(ft.rules) }

// Lookup matches a packet by its address prefixes.
func (ft *FlowTable) Lookup(p Packet) (Action, bool) {
	a, ok := ft.rules[[2]addressing.Address{p.Src.Prefix24(), p.Dst.Prefix24()}]
	return a, ok
}

// Fabric is the compiled data plane: a flow table per switch.
type Fabric struct {
	t      *topo.Topology
	tables map[int]*FlowTable
	assign *addressing.Assignment
	k      int
	// serverByAddr resolves a destination address to its server node.
	serverByAddr map[addressing.Address]int
}

// Compile builds the prefix-matching data plane for a realized topology:
// for every ordered ingress-switch pair and every routed subflow (address
// pair), one rule per transit switch forwarding toward the next hop, plus
// a delivery rule at the egress switch. capacity bounds each switch's
// table (0 = unbounded).
func Compile(t *topo.Topology, table *routing.Table, assign *addressing.Assignment, capacity int) (*Fabric, error) {
	f := &Fabric{
		t: t, tables: map[int]*FlowTable{}, assign: assign, k: table.K,
		serverByAddr: map[addressing.Address]int{},
	}
	for _, sw := range t.Switches() {
		f.tables[sw] = NewFlowTable(capacity)
	}
	for server, addrs := range assign.Addrs {
		for _, a := range addrs {
			f.serverByAddr[a] = server
		}
	}

	// Representative servers per ingress switch (prefixes are shared, so
	// one server per (switch, pathID) suffices to enumerate prefixes;
	// use server ID 0's addresses as the prefix carriers).
	bySwitch := map[int][]addressing.Address{}
	for server, addrs := range assign.Addrs {
		sw := t.AttachedSwitch(server)
		if len(bySwitch[sw]) == 0 || assignServerID(addrs) < assignServerID(bySwitch[sw]) {
			bySwitch[sw] = addrs
		}
	}

	for _, src := range table.Ingress {
		for _, dst := range table.Ingress {
			if src == dst {
				continue
			}
			paths := table.SwitchPaths(src, dst)
			srcAddrs, dstAddrs := bySwitch[src], bySwitch[dst]
			subs := addressing.Subflows(srcAddrs, dstAddrs, table.K)
			for si, sub := range subs {
				if si >= len(paths) {
					break // fewer distinct paths than routable subflows
				}
				p := paths[si]
				for hop, linkID := range p.Links {
					sw := p.Nodes[hop]
					err := f.tables[sw].Install(Rule{
						SrcPrefix: sub.Src, DstPrefix: sub.Dst,
						Action: Action{OutLink: linkID},
					})
					if err != nil {
						return nil, fmt.Errorf("sdn: switch %d: %w", sw, err)
					}
				}
				// Egress delivery rule.
				err := f.tables[dst].Install(Rule{
					SrcPrefix: sub.Src, DstPrefix: sub.Dst,
					Action: Action{Deliver: true},
				})
				if err != nil {
					return nil, fmt.Errorf("sdn: egress %d: %w", dst, err)
				}
			}
		}
	}
	return f, nil
}

func assignServerID(addrs []addressing.Address) int {
	if len(addrs) == 0 {
		return 1 << 30
	}
	return addrs[0].ServerID()
}

// Table returns one switch's flow table.
func (f *Fabric) Table(sw int) *FlowTable { return f.tables[sw] }

// TotalRules sums rules across switches.
func (f *Fabric) TotalRules() int {
	total := 0
	for _, ft := range f.tables {
		total += ft.Len()
	}
	return total
}

// MaxRules returns the largest per-switch table.
func (f *Fabric) MaxRules() int {
	max := 0
	for _, ft := range f.tables {
		if ft.Len() > max {
			max = ft.Len()
		}
	}
	return max
}

// Forward walks a packet from the source server's switch through the flow
// tables until delivery, returning the switch-level path. It errors on a
// table miss or a loop.
func (f *Fabric) Forward(p Packet) ([]int, error) {
	srcServer, ok := f.serverByAddr[p.Src]
	if !ok {
		return nil, fmt.Errorf("sdn: unknown source address %v", p.Src)
	}
	dstServer, ok := f.serverByAddr[p.Dst]
	if !ok {
		return nil, fmt.Errorf("sdn: unknown destination address %v", p.Dst)
	}
	cur := f.t.AttachedSwitch(srcServer)
	path := []int{cur}
	for hops := 0; hops < 16; hops++ {
		act, ok := f.tables[cur].Lookup(p)
		if !ok {
			return nil, fmt.Errorf("sdn: table miss at switch %d for %v->%v", cur, p.Src, p.Dst)
		}
		if act.Deliver {
			if cur != f.t.AttachedSwitch(dstServer) {
				return nil, fmt.Errorf("sdn: delivered at %d but server %d lives on %d",
					cur, dstServer, f.t.AttachedSwitch(dstServer))
			}
			return path, nil
		}
		cur = f.t.G.Link(act.OutLink).Other(cur)
		path = append(path, cur)
	}
	return nil, fmt.Errorf("sdn: forwarding loop for %v->%v", p.Src, p.Dst)
}

// SubflowPacket builds the packet for one routed subflow between two
// servers.
func (f *Fabric) SubflowPacket(srcServer, dstServer, subflow int) (Packet, error) {
	subs := addressing.Subflows(f.assign.Addrs[srcServer], f.assign.Addrs[dstServer], f.k)
	if subflow < 0 || subflow >= len(subs) {
		return Packet{}, fmt.Errorf("sdn: subflow %d of %d", subflow, len(subs))
	}
	return Packet{Src: subs[subflow].Src, Dst: subs[subflow].Dst}, nil
}

// NaiveRuleCount computes the per-flow (no aggregation) state a switch
// set would need: one rule per server pair per path per transit hop —
// the §4.2 explosion, reported without materializing the rules.
func NaiveRuleCount(t *topo.Topology, table *routing.Table) int {
	// Per ingress pair: (#paths x hops) transit entries; every server
	// pair under the pair multiplies it.
	perServer := map[int]int{}
	for _, s := range t.Servers() {
		perServer[t.AttachedSwitch(s)]++
	}
	total := 0
	for pair, paths := range table.Paths {
		nPairs := perServer[pair.Src] * perServer[pair.Dst]
		hops := 0
		for _, p := range paths {
			hops += len(p.Nodes)
		}
		total += nPairs * hops
	}
	return total
}
