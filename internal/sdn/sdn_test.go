package sdn

import (
	"errors"
	"testing"

	"flattree/internal/addressing"
	"flattree/internal/core"
	"flattree/internal/routing"
)

// fabricFor compiles the data plane for the example network in one mode.
func fabricFor(t *testing.T, mode core.Mode, k, capacity int) (*core.Realization, *routing.Table, *Fabric) {
	t.Helper()
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(mode)
	r := nw.Realize()
	table := routing.BuildKShortest(r.Topo, k)
	assign, err := addressing.Assign(r.Topo, int(mode), k)
	if err != nil {
		t.Fatal(err)
	}
	f, err := Compile(r.Topo, table, assign, capacity)
	if err != nil {
		t.Fatal(err)
	}
	return r, table, f
}

func TestForwardFollowsKShortestPaths(t *testing.T) {
	r, table, f := fabricFor(t, core.ModeGlobal, 4, 0)
	servers := r.Topo.Servers()
	checked := 0
	for _, src := range servers[:6] {
		for _, dst := range servers[18:] {
			sSw, dSw := r.Topo.AttachedSwitch(src), r.Topo.AttachedSwitch(dst)
			if sSw == dSw {
				continue
			}
			paths := table.SwitchPaths(sSw, dSw)
			for si := range paths {
				if si >= 4 {
					break
				}
				pkt, err := f.SubflowPacket(src, dst, si)
				if err != nil {
					t.Fatal(err)
				}
				got, err := f.Forward(pkt)
				if err != nil {
					t.Fatalf("%d->%d subflow %d: %v", src, dst, si, err)
				}
				want := paths[si].Nodes
				if len(got) != len(want) {
					t.Fatalf("subflow %d path length %d, want %d", si, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("subflow %d diverged at hop %d: %v vs %v", si, i, got, want)
					}
				}
				checked++
			}
		}
	}
	if checked == 0 {
		t.Fatal("no packets forwarded")
	}
}

func TestDifferentSubflowsTakeDifferentPaths(t *testing.T) {
	r, table, f := fabricFor(t, core.ModeGlobal, 4, 0)
	servers := r.Topo.Servers()
	// Find a pair with >= 2 distinct paths and confirm the packet paths
	// differ between subflows.
	for _, src := range servers {
		for _, dst := range servers {
			sSw, dSw := r.Topo.AttachedSwitch(src), r.Topo.AttachedSwitch(dst)
			if sSw == dSw {
				continue
			}
			paths := table.SwitchPaths(sSw, dSw)
			if len(paths) < 2 {
				continue
			}
			p0, err := f.SubflowPacket(src, dst, 0)
			if err != nil {
				t.Fatal(err)
			}
			p1, err := f.SubflowPacket(src, dst, 1)
			if err != nil {
				t.Fatal(err)
			}
			w0, err := f.Forward(p0)
			if err != nil {
				t.Fatal(err)
			}
			w1, err := f.Forward(p1)
			if err != nil {
				t.Fatal(err)
			}
			same := len(w0) == len(w1)
			if same {
				for i := range w0 {
					if w0[i] != w1[i] {
						same = false
						break
					}
				}
			}
			if same {
				t.Fatalf("subflows 0 and 1 took identical paths %v", w0)
			}
			return
		}
	}
	t.Fatal("no multi-path pair found")
}

func TestRuleCountsMatchRoutingAccounting(t *testing.T) {
	// The compiled fabric's max table must track the routing layer's
	// prefix-rule accounting (same counting, §5.3).
	r, table, f := fabricFor(t, core.ModeClos, 4, 0)
	perSwitch := table.PrefixRulesPerSwitch()
	for sw, want := range perSwitch {
		// Compile adds one delivery rule per (ingress pair, subflow)
		// terminating at sw, and skips subflows beyond the distinct path
		// count, so the table is bounded by the accounting value plus
		// its delivery rules.
		got := f.Table(sw).Len()
		if got > want+len(table.Ingress)*table.K {
			t.Fatalf("switch %d: %d rules exceeds accounting bound %d", sw, got, want)
		}
	}
	_ = r
}

func TestCapacityOverflow(t *testing.T) {
	// A 16-rule TCAM cannot hold the testbed's Clos-mode tables — the
	// §4 overflow made concrete.
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeClos)
	r := nw.Realize()
	table := routing.BuildKShortest(r.Topo, 4)
	assign, err := addressing.Assign(r.Topo, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Compile(r.Topo, table, assign, 16)
	if !errors.Is(err, ErrTableFull) {
		t.Fatalf("expected ErrTableFull, got %v", err)
	}
}

func TestNaiveExplosion(t *testing.T) {
	// Naive per-flow state must exceed prefix-aggregated state by about
	// (servers per ingress switch)^2; on the Clos-mode testbed that is 9x.
	r, table, f := fabricFor(t, core.ModeClos, 4, 0)
	naive := NaiveRuleCount(r.Topo, table)
	prefix := f.TotalRules()
	if naive <= prefix*4 {
		t.Fatalf("naive %d not clearly above prefix %d", naive, prefix)
	}
}

func TestFlowTableBasics(t *testing.T) {
	ft := NewFlowTable(1)
	a1, _ := addressing.MakeAddress(1, 0, 0, 0)
	a2, _ := addressing.MakeAddress(2, 0, 0, 0)
	a3, _ := addressing.MakeAddress(3, 0, 0, 0)
	if err := ft.Install(Rule{SrcPrefix: a1, DstPrefix: a2, Action: Action{OutLink: 7}}); err != nil {
		t.Fatal(err)
	}
	// Overwrite in place is allowed at capacity.
	if err := ft.Install(Rule{SrcPrefix: a1, DstPrefix: a2, Action: Action{OutLink: 9}}); err != nil {
		t.Fatal(err)
	}
	if err := ft.Install(Rule{SrcPrefix: a1, DstPrefix: a3}); !errors.Is(err, ErrTableFull) {
		t.Fatalf("expected ErrTableFull, got %v", err)
	}
	act, ok := ft.Lookup(Packet{Src: a1, Dst: a2})
	if !ok || act.OutLink != 9 {
		t.Fatalf("lookup = %+v ok=%v", act, ok)
	}
	if _, ok := ft.Lookup(Packet{Src: a2, Dst: a1}); ok {
		t.Fatal("reverse direction matched")
	}
}
