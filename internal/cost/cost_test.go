package cost

import (
	"strings"
	"testing"

	"flattree/internal/core"
	"flattree/internal/topo"
)

func TestForNetworkExample(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	e := ForNetwork(nw, DefaultModel())
	// Example: 8 pairs x (1 four-port + 1 six-port).
	if e.Converters4 != 8 || e.Converters6 != 8 {
		t.Fatalf("converters = %d/%d, want 8/8", e.Converters4, e.Converters6)
	}
	if e.ConverterPorts != 8*4+8*6 {
		t.Fatalf("ports = %d, want 80", e.ConverterPorts)
	}
	if e.CopperUSD != 240 {
		t.Fatalf("copper cost = %v, want 240 (80 ports x $3)", e.CopperUSD)
	}
	if e.PerServerCopperUSD != 10 {
		t.Fatalf("per-server = %v, want 10", e.PerServerCopperUSD)
	}
	// §3.6: the 8 dB budget covers the insertion loss without amplifiers.
	if !e.OpticalFeasible || e.WorstCaseLossDB != 6 {
		t.Fatalf("optical: feasible=%v loss=%v", e.OpticalFeasible, e.WorstCaseLossDB)
	}
}

func TestOpticalInfeasibleWhenLossy(t *testing.T) {
	nw, _ := core.ExampleNetwork()
	m := DefaultModel()
	m.InsertionLossDB = 5 // 2 x 5 > 8 dB budget
	e := ForNetwork(nw, m)
	if e.OpticalFeasible {
		t.Fatal("10 dB of loss within an 8 dB budget accepted")
	}
}

func TestTableRendersAllTopologies(t *testing.T) {
	out, err := Table(topo.Table2(), DefaultModel(), func(p topo.ClosParams) (*core.Network, error) {
		return core.New(p, core.Options{N: 1, M: 2})
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"topo-1", "topo-6", "$/server", "amplifier-free"} {
		if !strings.Contains(out, want) {
			t.Fatalf("cost table missing %q:\n%s", want, out)
		}
	}
}
