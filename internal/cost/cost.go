// Package cost implements the §3.6 cost analysis: what converting a Clos
// network to flat-tree adds in hardware, under the two realization
// technologies the paper discusses — copper crosspoint switches (per-port
// cost "as low as $3") and small optical circuit switches (2D MEMS /
// Mach-Zehnder), whose feasibility rests on the optical power budget: "the
// difference between transmit power and receive sensitivity of commercial
// optical transceivers can be over 8dB, which easily overcomes the
// insertion loss of most optical switches. Amplifiers are thus not
// needed."
package cost

import (
	"fmt"

	"flattree/internal/core"
	"flattree/internal/metrics"
	"flattree/internal/topo"
)

// Model holds the technology constants.
type Model struct {
	// CrosspointPortUSD is the copper crosspoint per-port cost (§3.6
	// cites $3 [31]).
	CrosspointPortUSD float64
	// OpticalPortUSD is the small optical circuit switch per-port cost;
	// §3.6 expects it to become "reasonably cheap" with packaging volume.
	OpticalPortUSD float64
	// InsertionLossDB is the optical loss a converter inserts in a path.
	InsertionLossDB float64
	// LinkBudgetDB is the transceiver TX-power minus RX-sensitivity
	// margin (§3.6: "can be over 8dB" [7]).
	LinkBudgetDB float64
}

// DefaultModel returns constants drawn from §3.6's citations.
func DefaultModel() Model {
	return Model{
		CrosspointPortUSD: 3,
		OpticalPortUSD:    30, // moderate-volume 2D MEMS estimate
		InsertionLossDB:   3,  // typical small optical switch
		LinkBudgetDB:      8,
	}
}

// Estimate is the added hardware of one flat-tree build.
type Estimate struct {
	Topology       string
	Converters4    int
	Converters6    int
	ConverterPorts int
	Servers        int
	// CopperUSD and OpticalUSD price the converter layer per technology.
	CopperUSD, OpticalUSD float64
	// PerServerCopperUSD amortizes the copper cost per server.
	PerServerCopperUSD float64
	// OpticalFeasible reports whether a path through the worst-case
	// number of converters stays within the link budget without
	// amplifiers.
	OpticalFeasible bool
	// WorstCaseLossDB is the loss of a path crossing the maximum number
	// of converters (one at each end after relocation).
	WorstCaseLossDB float64
}

// ForNetwork prices a flat-tree network's converter layer.
func ForNetwork(nw *core.Network, m Model) Estimate {
	cp := nw.Clos()
	perPair4 := nw.Options().N
	perPair6 := nw.Options().M
	pairs := cp.Pods * cp.EdgesPerPod
	e := Estimate{
		Topology:    cp.Name,
		Converters4: pairs * perPair4,
		Converters6: pairs * perPair6,
		Servers:     cp.TotalServers(),
	}
	e.ConverterPorts = e.Converters4*4 + e.Converters6*6
	e.CopperUSD = float64(e.ConverterPorts) * m.CrosspointPortUSD
	e.OpticalUSD = float64(e.ConverterPorts) * m.OpticalPortUSD
	if e.Servers > 0 {
		e.PerServerCopperUSD = e.CopperUSD / float64(e.Servers)
	}
	// Worst case: a packet enters through the source's converter and
	// leaves through the destination's — two insertions per path. (A
	// converter pipes a circuit straight through; transit switches add
	// no optical hops because packet switches regenerate the signal.)
	e.WorstCaseLossDB = 2 * m.InsertionLossDB
	e.OpticalFeasible = e.WorstCaseLossDB <= m.LinkBudgetDB
	return e
}

// Table prices every given topology with the §3.4-profiled converter
// counts chosen by newNetwork, rendering a §3.6-style summary.
func Table(params []topo.ClosParams, m Model, newNetwork func(topo.ClosParams) (*core.Network, error)) (string, error) {
	t := &metrics.Table{Header: []string{
		"topology", "#4-port", "#6-port", "converter ports",
		"copper cost ($)", "$/server", "optical cost ($)",
		"worst-case loss (dB)", "amplifier-free",
	}}
	for _, p := range params {
		nw, err := newNetwork(p)
		if err != nil {
			return "", fmt.Errorf("cost: %s: %w", p.Name, err)
		}
		e := ForNetwork(nw, m)
		t.Add(e.Topology, e.Converters4, e.Converters6, e.ConverterPorts,
			e.CopperUSD, e.PerServerCopperUSD, e.OpticalUSD,
			e.WorstCaseLossDB, e.OpticalFeasible)
	}
	return t.String(), nil
}
