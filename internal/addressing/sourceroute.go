package addressing

import (
	"fmt"

	"flattree/internal/graph"
	"flattree/internal/topo"
)

// Source routing per §4.2.2: the ingress switch encodes a path — the list
// of next-hop output ports — into the 48-bit source MAC address, and
// transit switches select the byte to match via the packet TTL. A 48-bit
// MAC holds 6 hops of 8-bit port numbers (switches with up to 256 ports).

// MaxHops is the number of hops a MAC-encoded source route can carry.
const MaxHops = 6

// MAC is a 48-bit source-route label stored in the low bits of a uint64.
type MAC uint64

// EncodeRoute packs up to MaxHops output port numbers into a MAC. Hop 0
// occupies the most significant byte, matching the testbed convention that
// TTL 255 - hopIndex selects byte hopIndex.
func EncodeRoute(ports []int) (MAC, error) {
	if len(ports) > MaxHops {
		return 0, fmt.Errorf("addressing: route of %d hops exceeds %d", len(ports), MaxHops)
	}
	var m MAC
	for i, p := range ports {
		if p < 0 || p > 255 {
			return 0, fmt.Errorf("addressing: port %d out of 8-bit range at hop %d", p, i)
		}
		m |= MAC(p) << uint(8*(MaxHops-1-i))
	}
	return m, nil
}

// PortAt extracts the output port for the given hop index.
func (m MAC) PortAt(hop int) int {
	if hop < 0 || hop >= MaxHops {
		panic(fmt.Sprintf("addressing: hop %d out of range", hop))
	}
	return int(m>>uint(8*(MaxHops-1-hop))) & 0xff
}

// String renders the conventional colon-separated MAC form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x",
		byte(m>>40), byte(m>>32), byte(m>>24), byte(m>>16), byte(m>>8), byte(m))
}

// InitialTTL is the TTL a source-routed packet starts with; hop h of the
// route is matched when TTL = InitialTTL - h, so the first transit switch
// sees TTL 255 and matches byte 0.
const InitialTTL = 255

// HopForTTL returns the route hop index a transit switch matches for the
// given TTL (e.g. "if TTL equals 253 (third hop)" in §4.2.2).
func HopForTTL(ttl int) int { return InitialTTL - ttl }

// MaskForTTL returns the 48-bit mask a transit switch applies to the source
// MAC for the given TTL, e.g. TTL 253 -> 0x0000ff000000.
func MaskForTTL(ttl int) (MAC, error) {
	hop := HopForTTL(ttl)
	if hop < 0 || hop >= MaxHops {
		return 0, fmt.Errorf("addressing: TTL %d outside the %d-hop window", ttl, MaxHops)
	}
	return MAC(0xff) << uint(8*(MaxHops-1-hop)), nil
}

// PortNumber returns the output port a switch uses for a given link: the
// link's position within the switch's incident link list. This gives every
// switch a dense, stable port numbering.
func PortNumber(t *topo.Topology, sw, linkID int) (int, error) {
	for i, id := range t.G.Incident(sw) {
		if id == linkID {
			return i, nil
		}
	}
	return 0, fmt.Errorf("addressing: link %d not incident to switch %d", linkID, sw)
}

// RouteForPath converts a switch-level path into the output-port list its
// ingress switch encodes: for each node except the last, the port leading
// to the next link.
func RouteForPath(t *topo.Topology, p graph.Path) ([]int, error) {
	ports := make([]int, 0, len(p.Links))
	for i, linkID := range p.Links {
		port, err := PortNumber(t, p.Nodes[i], linkID)
		if err != nil {
			return nil, err
		}
		ports = append(ports, port)
	}
	return ports, nil
}

// TransitRule is one statically preconfigured OpenFlow rule on a transit
// switch: match (TTL, masked MAC byte) and forward to OutPort. The rule
// set is topology independent: it never changes across conversions.
type TransitRule struct {
	TTL     int
	Mask    MAC
	Value   MAC // expected masked byte value: port << position
	OutPort int
}

// TransitRules synthesizes the full static rule set for one switch with the
// given port count and network diameter: one rule per (TTL within the
// diameter window, output port) — the D x C bound of §4.2.2.
func TransitRules(diameter, portCount int) ([]TransitRule, error) {
	if diameter > MaxHops {
		return nil, fmt.Errorf("addressing: diameter %d exceeds %d encodable hops", diameter, MaxHops)
	}
	if portCount > 256 {
		return nil, fmt.Errorf("addressing: %d ports exceed 8-bit port numbers", portCount)
	}
	rules := make([]TransitRule, 0, diameter*portCount)
	for h := 0; h < diameter; h++ {
		ttl := InitialTTL - h
		mask, err := MaskForTTL(ttl)
		if err != nil {
			return nil, err
		}
		for port := 0; port < portCount; port++ {
			rules = append(rules, TransitRule{
				TTL:     ttl,
				Mask:    mask,
				Value:   MAC(port) << uint(8*(MaxHops-1-h)),
				OutPort: port,
			})
		}
	}
	return rules, nil
}

// LookupTransit simulates a transit switch's forwarding decision: apply the
// TTL-selected mask to the MAC and return the output port.
func LookupTransit(rules []TransitRule, mac MAC, ttl int) (int, bool) {
	for _, r := range rules {
		if r.TTL == ttl && mac&r.Mask == r.Value {
			return r.OutPort, true
		}
	}
	return 0, false
}

// Walk follows a source-routed MAC through the topology from the ingress
// switch, decrementing TTL per hop, and returns the switch-level node
// sequence visited. It verifies that MAC source routing reproduces the
// intended path on the actual topology.
func Walk(t *topo.Topology, ingress int, mac MAC, hops int) ([]int, error) {
	nodes := []int{ingress}
	cur := ingress
	for h := 0; h < hops; h++ {
		port := mac.PortAt(h)
		inc := t.G.Incident(cur)
		if port >= len(inc) {
			return nil, fmt.Errorf("addressing: switch %d has no port %d", cur, port)
		}
		next := t.G.Link(inc[port]).Other(cur)
		nodes = append(nodes, next)
		cur = next
	}
	return nodes, nil
}
