package addressing

import (
	"fmt"
	"sort"

	"flattree/internal/topo"
)

// Assignment maps every server of one realized topology to its address
// list under one topology mode. Servers are keyed by node ID.
type Assignment struct {
	TopoID int
	K      int
	// Addrs[server] lists the server's addresses (path IDs ascending).
	Addrs map[int][]Address
	// SwitchID[switchNode] is the 13-bit switch ID used in addresses.
	SwitchID map[int]int
}

// Assign computes the address assignment for a realized topology: the
// ingress switch of a server is its attached switch; switch IDs are the
// switch's ordinal in Switches() order (stable across conversions because
// realizations enumerate switches identically in every mode); server IDs
// order the servers under the same ingress switch by global server index
// ("ordered from left to right", Figure 5b).
func Assign(t *topo.Topology, topoID, k int) (*Assignment, error) {
	a := &Assignment{TopoID: topoID, K: k,
		Addrs: make(map[int][]Address), SwitchID: make(map[int]int)}
	for i, sw := range t.Switches() {
		a.SwitchID[sw] = i
	}
	// Group servers by ingress switch.
	bySwitch := make(map[int][]int)
	for _, s := range t.Servers() {
		sw := t.AttachedSwitch(s)
		bySwitch[sw] = append(bySwitch[sw], s)
	}
	for sw, servers := range bySwitch {
		sort.Ints(servers)
		if len(servers) > MaxServerID+1 {
			return nil, fmt.Errorf("addressing: switch %d hosts %d servers, max %d",
				sw, len(servers), MaxServerID+1)
		}
		swID, ok := a.SwitchID[sw]
		if !ok {
			return nil, fmt.Errorf("addressing: server attached to unknown switch %d", sw)
		}
		if swID > MaxSwitchID {
			return nil, fmt.Errorf("addressing: switch ID %d exceeds 13 bits", swID)
		}
		for serverID, s := range servers {
			addrs, err := AddressesFor(swID, serverID, topoID, k)
			if err != nil {
				return nil, err
			}
			a.Addrs[s] = addrs
		}
	}
	return a, nil
}

// SubflowsBetween returns the routed MPTCP subflow address pairs between
// two servers under this assignment.
func (a *Assignment) SubflowsBetween(src, dst int) []SubflowPair {
	return Subflows(a.Addrs[src], a.Addrs[dst], a.K)
}

// TotalAddresses returns how many addresses the assignment preconfigures.
func (a *Assignment) TotalAddresses() int {
	total := 0
	for _, addrs := range a.Addrs {
		total += len(addrs)
	}
	return total
}
