package addressing

import (
	"testing"

	"flattree/internal/core"
	"flattree/internal/routing"
)

func TestLabelStackPushPop(t *testing.T) {
	ls, err := PushRoute([]int{3, 0, 7})
	if err != nil {
		t.Fatal(err)
	}
	if ls.Depth() != 3 {
		t.Fatalf("depth = %d", ls.Depth())
	}
	want := []Label{3, 0, 7}
	for _, w := range want {
		var l Label
		l, ls, err = ls.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if l != w {
			t.Fatalf("popped %d, want %d", l, w)
		}
	}
	if _, _, err := ls.Pop(); err == nil {
		t.Fatal("pop on empty stack succeeded")
	}
}

func TestPushRouteValidation(t *testing.T) {
	if _, err := PushRoute(make([]int, MaxLabelDepth+1)); err == nil {
		t.Fatal("overdeep route accepted")
	}
	if _, err := PushRoute([]int{-1}); err == nil {
		t.Fatal("negative port accepted")
	}
}

// TestSegmentWalkMatchesPaths verifies that PCE label stacks reproduce the
// k-shortest paths on the realized flat-tree example network, and that the
// MPLS and MAC/TTL encodings agree hop for hop.
func TestSegmentWalkMatchesPaths(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeGlobal)
	r := nw.Realize()
	tb := routing.BuildKShortest(r.Topo, 4)
	checked := 0
	for pair, paths := range tb.Paths {
		for _, p := range paths {
			ls, err := SegmentsForPath(r.Topo, p)
			if err != nil {
				t.Fatal(err)
			}
			nodes, err := WalkSegments(r.Topo, pair.Src, ls)
			if err != nil {
				t.Fatal(err)
			}
			for i := range nodes {
				if nodes[i] != p.Nodes[i] {
					t.Fatalf("segment walk diverged: %v vs %v", nodes, p.Nodes)
				}
			}
			// Cross-check against the MAC/TTL encoding.
			ports, err := RouteForPath(r.Topo, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(ports) <= MaxHops {
				mac, err := EncodeRoute(ports)
				if err != nil {
					t.Fatal(err)
				}
				macNodes, err := Walk(r.Topo, pair.Src, mac, len(ports))
				if err != nil {
					t.Fatal(err)
				}
				for i := range macNodes {
					if macNodes[i] != nodes[i] {
						t.Fatal("MPLS and MAC encodings disagree")
					}
				}
			}
			checked++
		}
		if checked > 150 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestIngressStateCount(t *testing.T) {
	if got := IngressStateCount(20, 4); got != 80 {
		t.Fatalf("state count = %d, want 80", got)
	}
}
