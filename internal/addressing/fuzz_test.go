package addressing

import (
	"testing"
)

// FuzzAddressRoundTrip drives MakeAddress with arbitrary field values: any
// in-range quadruple must round-trip exactly through the extractors with
// the fixed heading octet, and any out-of-range field must be rejected —
// the pack/unpack pair may never silently truncate a field into a valid-
// looking address.
func FuzzAddressRoundTrip(f *testing.F) {
	f.Add(0, 0, 0, 0)
	f.Add(MaxSwitchID, MaxPathID, MaxTopoID, MaxServerID)
	f.Add(137, 3, 2, 41)
	f.Add(-1, 0, 0, 0)
	f.Add(0, MaxPathID+1, 0, 0)
	f.Add(1<<20, 1<<20, 1<<20, 1<<20)
	f.Fuzz(func(t *testing.T, switchID, pathID, topoID, serverID int) {
		a, err := MakeAddress(switchID, pathID, topoID, serverID)
		inRange := switchID >= 0 && switchID <= MaxSwitchID &&
			pathID >= 0 && pathID <= MaxPathID &&
			topoID >= 0 && topoID <= MaxTopoID &&
			serverID >= 0 && serverID <= MaxServerID
		if !inRange {
			if err == nil {
				t.Fatalf("MakeAddress(%d,%d,%d,%d) accepted out-of-range fields -> %v",
					switchID, pathID, topoID, serverID, a)
			}
			return
		}
		if err != nil {
			t.Fatalf("MakeAddress(%d,%d,%d,%d): %v", switchID, pathID, topoID, serverID, err)
		}
		if int(a>>24) != HeadingOctet {
			t.Fatalf("address %v heading octet is %d", a, a>>24)
		}
		if a.SwitchID() != switchID || a.PathID() != pathID || a.TopoID() != topoID || a.ServerID() != serverID {
			t.Fatalf("round trip (%d,%d,%d,%d) -> %v -> (%d,%d,%d,%d)",
				switchID, pathID, topoID, serverID, a,
				a.SwitchID(), a.PathID(), a.TopoID(), a.ServerID())
		}
		if p := a.Prefix24(); p.SwitchID() != switchID || p.PathID() != pathID {
			t.Fatalf("Prefix24 of %v lost switch/path bits", a)
		}
	})
}

// FuzzSegmentStack drives PushRoute/Pop with arbitrary port lists: a
// valid route must pop back in hop order down to an empty stack, and an
// invalid one (too deep, negative port) must be rejected up front.
func FuzzSegmentStack(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 1, 2, 3})
	f.Add([]byte{255, 254, 0, 0, 7, 9})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}) // deeper than MaxLabelDepth
	f.Fuzz(func(t *testing.T, raw []byte) {
		// Map fuzz bytes onto a port list; odd-indexed high bytes become
		// negative ports so rejection paths are exercised too.
		ports := make([]int, len(raw))
		for i, b := range raw {
			ports[i] = int(b)
			if i%2 == 1 && b >= 128 {
				ports[i] = -int(b)
			}
		}
		ls, err := PushRoute(ports)
		wantErr := len(ports) > MaxLabelDepth
		for _, p := range ports {
			if p < 0 {
				wantErr = true
			}
		}
		if wantErr {
			if err == nil {
				t.Fatalf("PushRoute(%v) accepted an invalid route", ports)
			}
			return
		}
		if err != nil {
			t.Fatalf("PushRoute(%v): %v", ports, err)
		}
		if ls.Depth() != len(ports) {
			t.Fatalf("stack depth %d for %d hops", ls.Depth(), len(ports))
		}
		for i := 0; i < len(ports); i++ {
			var label Label
			label, ls, err = ls.Pop()
			if err != nil {
				t.Fatalf("pop %d: %v", i, err)
			}
			if int(label) != ports[i] {
				t.Fatalf("pop %d = %d, want %d", i, label, ports[i])
			}
		}
		if ls.Depth() != 0 {
			t.Fatalf("stack not empty after route: depth %d", ls.Depth())
		}
		if _, _, err := ls.Pop(); err == nil {
			t.Fatal("pop on empty stack succeeded")
		}
	})
}
