package addressing

import (
	"testing"
	"testing/quick"

	"flattree/internal/core"
	"flattree/internal/routing"
)

// TestFigure5Addresses reproduces the paper's Figure 5c bit-for-bit: the
// striped server connects to switch 3 (global, k=16), switch 8 (local,
// k=8), and switch 5 (Clos, k=4), with server IDs 2, 1, 0.
func TestFigure5Addresses(t *testing.T) {
	cases := []struct {
		topoID, switchID, serverID, k int
		want                          []string
	}{
		{0, 3, 2, 16, []string{"10.0.24.2", "10.0.25.2", "10.0.26.2", "10.0.27.2"}},
		{1, 8, 1, 8, []string{"10.0.64.65", "10.0.65.65", "10.0.66.65"}},
		{2, 5, 0, 4, []string{"10.0.40.128", "10.0.41.128"}},
	}
	for _, c := range cases {
		addrs, err := AddressesFor(c.switchID, c.serverID, c.topoID, c.k)
		if err != nil {
			t.Fatal(err)
		}
		if len(addrs) != len(c.want) {
			t.Fatalf("topo %d: %d addresses, want %d", c.topoID, len(addrs), len(c.want))
		}
		for i, a := range addrs {
			if a.String() != c.want[i] {
				t.Errorf("topo %d addr %d = %s, want %s", c.topoID, i, a, c.want[i])
			}
		}
	}
}

func TestAddressRoundTrip(t *testing.T) {
	f := func(sw, path, topoID, srv uint16) bool {
		s, p, tp, sv := int(sw)&MaxSwitchID, int(path)&MaxPathID, int(topoID)&MaxTopoID, int(srv)&MaxServerID
		a, err := MakeAddress(s, p, tp, sv)
		if err != nil {
			return false
		}
		return a.SwitchID() == s && a.PathID() == p && a.TopoID() == tp && a.ServerID() == sv &&
			byte(a>>24) == HeadingOctet
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMakeAddressValidation(t *testing.T) {
	for _, bad := range [][4]int{
		{MaxSwitchID + 1, 0, 0, 0},
		{0, MaxPathID + 1, 0, 0},
		{0, 0, MaxTopoID + 1, 0},
		{0, 0, 0, MaxServerID + 1},
		{-1, 0, 0, 0},
	} {
		if _, err := MakeAddress(bad[0], bad[1], bad[2], bad[3]); err == nil {
			t.Errorf("MakeAddress%v accepted", bad)
		}
	}
}

func TestPrefix24SharedPerSwitch(t *testing.T) {
	// All servers under one switch with the same path ID share a /24-style
	// prefix — the aggregation §4.2.1 relies on.
	a1, _ := MakeAddress(7, 2, 0, 0)
	a2, _ := MakeAddress(7, 2, 0, 63)
	if a1.Prefix24() != a2.Prefix24() {
		t.Fatalf("prefixes differ: %s vs %s", a1.Prefix24(), a2.Prefix24())
	}
	b, _ := MakeAddress(8, 2, 0, 0)
	if a1.Prefix24() == b.Prefix24() {
		t.Fatal("different switches share a prefix")
	}
}

func TestAddressesPerServer(t *testing.T) {
	for _, c := range []struct{ k, want int }{
		{1, 1}, {2, 2}, {4, 2}, {8, 3}, {9, 3}, {12, 4}, {16, 4}, {64, 8}, {100, 8}, {0, 0},
	} {
		if got := AddressesPerServer(c.k); got != c.want {
			t.Errorf("AddressesPerServer(%d) = %d, want %d", c.k, got, c.want)
		}
	}
}

func TestSubflows(t *testing.T) {
	src, _ := AddressesFor(1, 0, 0, 8) // 3 addresses
	dst, _ := AddressesFor(2, 0, 0, 8)
	subs := Subflows(src, dst, 8)
	if len(subs) != 8 {
		t.Fatalf("subflows = %d, want 8 (full mesh 9 truncated to k)", len(subs))
	}
	seen := map[SubflowPair]bool{}
	for _, s := range subs {
		if seen[s] {
			t.Fatal("duplicate subflow")
		}
		seen[s] = true
	}
}

func TestMACEncodeDecode(t *testing.T) {
	ports := []int{3, 255, 0, 17}
	m, err := EncodeRoute(ports)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range ports {
		if got := m.PortAt(i); got != p {
			t.Fatalf("PortAt(%d) = %d, want %d", i, got, p)
		}
	}
	if _, err := EncodeRoute(make([]int, 7)); err == nil {
		t.Fatal("7-hop route accepted")
	}
	if _, err := EncodeRoute([]int{256}); err == nil {
		t.Fatal("port 256 accepted")
	}
	if m.String() != "03:ff:00:11:00:00" {
		t.Fatalf("MAC string = %s", m)
	}
}

func TestMaskForTTL(t *testing.T) {
	// §4.2.2's example: TTL 253 is the third hop; mask selects byte 2.
	mask, err := MaskForTTL(253)
	if err != nil {
		t.Fatal(err)
	}
	if mask != MAC(0xff)<<24 {
		t.Fatalf("mask = %012x, want 0000ff000000", uint64(mask))
	}
	if HopForTTL(253) != 2 {
		t.Fatalf("HopForTTL(253) = %d, want 2", HopForTTL(253))
	}
	if _, err := MaskForTTL(100); err == nil {
		t.Fatal("TTL outside window accepted")
	}
}

func TestTransitRulesBoundAndLookup(t *testing.T) {
	rules, err := TransitRules(3, 48)
	if err != nil {
		t.Fatal(err)
	}
	// D x C rules (§4.2.2).
	if len(rules) != 3*48 {
		t.Fatalf("rules = %d, want %d", len(rules), 3*48)
	}
	mac, _ := EncodeRoute([]int{5, 47, 12})
	for hop, want := range []int{5, 47, 12} {
		port, ok := LookupTransit(rules, mac, InitialTTL-hop)
		if !ok || port != want {
			t.Fatalf("hop %d: port %d ok=%v, want %d", hop, port, ok, want)
		}
	}
	if _, err := TransitRules(7, 48); err == nil {
		t.Fatal("diameter beyond MAC capacity accepted")
	}
	if _, err := TransitRules(3, 512); err == nil {
		t.Fatal("512 ports accepted")
	}
}

// TestSourceRouteWalk verifies end-to-end that encoding a k-shortest path
// as a MAC and walking the TTL-masked hops reproduces the path on the
// realized flat-tree example network.
func TestSourceRouteWalk(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(core.ModeGlobal)
	r := nw.Realize()
	tb := routing.BuildKShortest(r.Topo, 4)
	checked := 0
	for pair, paths := range tb.Paths {
		for _, p := range paths {
			ports, err := RouteForPath(r.Topo, p)
			if err != nil {
				t.Fatal(err)
			}
			if len(ports) > MaxHops {
				continue
			}
			mac, err := EncodeRoute(ports)
			if err != nil {
				t.Fatal(err)
			}
			nodes, err := Walk(r.Topo, pair.Src, mac, len(ports))
			if err != nil {
				t.Fatal(err)
			}
			for i := range nodes {
				if nodes[i] != p.Nodes[i] {
					t.Fatalf("walk diverged at hop %d: %v vs %v", i, nodes, p.Nodes)
				}
			}
			checked++
		}
		if checked > 200 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no paths checked")
	}
}

func TestAssign(t *testing.T) {
	nw, err := core.ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	for topoID, mode := range []core.Mode{core.ModeGlobal, core.ModeLocal, core.ModeClos} {
		nw.SetMode(mode)
		r := nw.Realize()
		k := []int{4, 4, 4}[topoID]
		a, err := Assign(r.Topo, topoID, k)
		if err != nil {
			t.Fatal(err)
		}
		// Every server gets ceil(sqrt(4)) = 2 addresses.
		for _, s := range r.Topo.Servers() {
			addrs := a.Addrs[s]
			if len(addrs) != 2 {
				t.Fatalf("mode %v: server %d has %d addresses, want 2", mode, s, len(addrs))
			}
			// Address switch ID must match the attached switch's ordinal.
			sw := r.Topo.AttachedSwitch(s)
			if addrs[0].SwitchID() != a.SwitchID[sw] {
				t.Fatalf("mode %v: address switch ID %d != %d", mode, addrs[0].SwitchID(), a.SwitchID[sw])
			}
			if addrs[0].TopoID() != topoID {
				t.Fatalf("mode %v: topo ID %d", mode, addrs[0].TopoID())
			}
		}
		// Addresses are unique network-wide.
		seen := map[Address]bool{}
		for _, addrs := range a.Addrs {
			for _, ad := range addrs {
				if seen[ad] {
					t.Fatalf("mode %v: duplicate address %s", mode, ad)
				}
				seen[ad] = true
			}
		}
		subs := a.SubflowsBetween(r.Topo.Servers()[0], r.Topo.Servers()[23])
		if len(subs) != 4 {
			t.Fatalf("subflows = %d, want 4", len(subs))
		}
		if got := a.TotalAddresses(); got != 48 {
			t.Fatalf("total addresses = %d, want 48", got)
		}
	}
}

// The naive assignment (§5.3): 2 addresses per server for k=4 with no
// unnecessary addresses; our scheme preconfigures 6 per server (2 per
// topology mode).
func TestAddressOverheadMatchesTestbed(t *testing.T) {
	perMode := AddressesPerServer(4)
	if perMode != 2 {
		t.Fatalf("addresses per mode = %d, want 2", perMode)
	}
	if total := perMode * 3; total != 6 {
		t.Fatalf("preconfigured addresses per server = %d, want 6", total)
	}
}
