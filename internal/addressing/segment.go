package addressing

import (
	"fmt"

	"flattree/internal/graph"
	"flattree/internal/topo"
)

// Segment routing (§4.2.2, first option): where the fabric supports MPLS,
// the Path Computation Element encodes a route as a label stack pushed at
// the ingress switch. Transit switches pop the top label and forward on
// the port it names — per-route state exists only at the ingress. This
// file models that data plane; the MAC/TTL encoding in sourceroute.go is
// the OpenFlow fallback for fabrics without MPLS.

// Label is one MPLS label: the output port at the switch that pops it.
type Label uint32

// MaxLabelDepth bounds the stack depth; flat-tree paths are short (the
// network diameter is small), and real MPLS hardware typically supports
// at least this many pushed labels.
const MaxLabelDepth = 8

// LabelStack is a route encoded as labels, top (first hop) first.
type LabelStack struct {
	labels []Label
}

// PushRoute builds the stack for an output-port list (hop order).
func PushRoute(ports []int) (LabelStack, error) {
	if len(ports) > MaxLabelDepth {
		return LabelStack{}, fmt.Errorf("addressing: route of %d hops exceeds label depth %d",
			len(ports), MaxLabelDepth)
	}
	ls := LabelStack{labels: make([]Label, 0, len(ports))}
	for i, p := range ports {
		if p < 0 {
			return LabelStack{}, fmt.Errorf("addressing: negative port at hop %d", i)
		}
		ls.labels = append(ls.labels, Label(p))
	}
	return ls, nil
}

// Depth returns the remaining label count.
func (ls LabelStack) Depth() int { return len(ls.labels) }

// Pop removes and returns the top label, as a transit switch does.
func (ls LabelStack) Pop() (Label, LabelStack, error) {
	if len(ls.labels) == 0 {
		return 0, ls, fmt.Errorf("addressing: pop on empty label stack")
	}
	return ls.labels[0], LabelStack{labels: ls.labels[1:]}, nil
}

// WalkSegments forwards a label stack through the topology from the
// ingress switch, popping one label per hop, and returns the visited
// switch-level nodes. It verifies the PCE encoding against the fabric.
func WalkSegments(t *topo.Topology, ingress int, ls LabelStack) ([]int, error) {
	nodes := []int{ingress}
	cur := ingress
	for ls.Depth() > 0 {
		var label Label
		var err error
		label, ls, err = ls.Pop()
		if err != nil {
			return nil, err
		}
		inc := t.G.Incident(cur)
		if int(label) >= len(inc) {
			return nil, fmt.Errorf("addressing: switch %d has no port %d", cur, label)
		}
		next := t.G.Link(inc[int(label)]).Other(cur)
		nodes = append(nodes, next)
		cur = next
	}
	return nodes, nil
}

// SegmentsForPath encodes a switch-level path as a label stack via the
// dense port numbering.
func SegmentsForPath(t *topo.Topology, p graph.Path) (LabelStack, error) {
	ports, err := RouteForPath(t, p)
	if err != nil {
		return LabelStack{}, err
	}
	return PushRoute(ports)
}

// IngressStateCount returns the per-ingress-switch state under segment
// routing: one stack per (egress switch, path) — S*k routes, identical to
// the OpenFlow source-routing count, with zero transit state (labels are
// processed by the forwarding ASIC, not matched from a rule table).
func IngressStateCount(numIngress, k int) int { return numIngress * k }
