// Package addressing implements the flat-tree control plane's state
// aggregation machinery (§4): the architecture-specific IPv4 address space
// of Figure 5, per-mode server address assignment, MPTCP full-mesh subflow
// enumeration, and OpenFlow-compatible source routing that encodes paths
// into the source MAC address with TTL-indexed masks (§4.2.2).
package addressing

import (
	"fmt"
	"math"
)

// Field widths of the flat-tree address space (Figure 5a): a fixed
// 10.0.0.0/8 heading octet, then 13 bits of ingress/egress switch ID,
// 3 bits of path ID, 2 bits of topology mode, and 6 bits of server ID.
const (
	SwitchBits = 13
	PathBits   = 3
	TopoBits   = 2
	ServerBits = 6

	MaxSwitchID = 1<<SwitchBits - 1 // 8191 switches ("8196" in the paper's prose)
	MaxPathID   = 1<<PathBits - 1   // 8 addresses => up to 64 concurrent paths
	MaxTopoID   = 1<<TopoBits - 1
	MaxServerID = 1<<ServerBits - 1 // 64 servers per ingress switch
)

// HeadingOctet is the fixed first octet (10 = 0x0A).
const HeadingOctet = 10

// Address is a flat-tree IPv4 address.
type Address uint32

// MakeAddress packs the four fields into an address. Topology IDs follow
// the paper's example: 0 = global, 1 = local, 2 = Clos.
func MakeAddress(switchID, pathID, topoID, serverID int) (Address, error) {
	if switchID < 0 || switchID > MaxSwitchID {
		return 0, fmt.Errorf("addressing: switch ID %d out of 13-bit range", switchID)
	}
	if pathID < 0 || pathID > MaxPathID {
		return 0, fmt.Errorf("addressing: path ID %d out of 3-bit range", pathID)
	}
	if topoID < 0 || topoID > MaxTopoID {
		return 0, fmt.Errorf("addressing: topology ID %d out of 2-bit range", topoID)
	}
	if serverID < 0 || serverID > MaxServerID {
		return 0, fmt.Errorf("addressing: server ID %d out of 6-bit range", serverID)
	}
	return Address(HeadingOctet<<24 |
		uint32(switchID)<<(PathBits+TopoBits+ServerBits) |
		uint32(pathID)<<(TopoBits+ServerBits) |
		uint32(topoID)<<ServerBits |
		uint32(serverID)), nil
}

// SwitchID extracts the 13-bit ingress/egress switch ID.
func (a Address) SwitchID() int {
	return int(a>>(PathBits+TopoBits+ServerBits)) & MaxSwitchID
}

// PathID extracts the 3-bit path ID.
func (a Address) PathID() int { return int(a>>(TopoBits+ServerBits)) & MaxPathID }

// TopoID extracts the 2-bit topology mode ID.
func (a Address) TopoID() int { return int(a>>ServerBits) & MaxTopoID }

// ServerID extracts the 6-bit server ID.
func (a Address) ServerID() int { return int(a) & MaxServerID }

// String renders the dotted-quad form.
func (a Address) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", byte(a>>24), byte(a>>16), byte(a>>8), byte(a))
}

// Prefix24 returns the address with the last octet cleared — the /24-style
// prefix matched at ingress/egress switches. With the Figure 5a layout the
// switch ID and path ID land entirely in the first three octets.
func (a Address) Prefix24() Address { return a &^ 0xff }

// AddressesPerServer returns how many IP addresses each server needs for k
// concurrent paths: MPTCP's full-mesh subflows give (#addresses)^2 paths,
// so the count is ceil(sqrt(k)) (§4.1).
func AddressesPerServer(k int) int {
	if k < 1 {
		return 0
	}
	n := int(math.Ceil(math.Sqrt(float64(k))))
	if n > MaxPathID+1 {
		n = MaxPathID + 1
	}
	return n
}

// AddressesFor returns the address list of one server under one topology
// mode, with path IDs 0..AddressesPerServer(k)-1 (Figure 5c).
func AddressesFor(switchID, serverID, topoID, k int) ([]Address, error) {
	n := AddressesPerServer(k)
	out := make([]Address, 0, n)
	for p := 0; p < n; p++ {
		a, err := MakeAddress(switchID, p, topoID, serverID)
		if err != nil {
			return nil, err
		}
		out = append(out, a)
	}
	return out, nil
}

// SubflowPair is one MPTCP subflow's source/destination address pair.
type SubflowPair struct{ Src, Dst Address }

// Subflows enumerates the full-mesh subflow pairs between two address
// lists, truncated to at most k subflows in deterministic (src-major)
// order. MPTCP allocates no traffic to subflows beyond the routed set, so
// the routing logic is limited to the first k combinations (§4.1).
func Subflows(src, dst []Address, k int) []SubflowPair {
	var out []SubflowPair
	for _, s := range src {
		for _, d := range dst {
			if len(out) == k {
				return out
			}
			out = append(out, SubflowPair{s, d})
		}
	}
	return out
}
