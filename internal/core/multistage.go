package core

import (
	"fmt"

	"flattree/internal/topo"
)

// Multi-stage flat-tree — the extension §2.2 sketches and leaves to future
// work: "the lower-layer Pods consider the edge switches in the upper-layer
// Pods as core switches; intermediate switch-only Pods take relocated
// servers from lower-layer Pods as their own servers."
//
// A MultiStage composes two flat-tree networks. Every lower-layer core
// connector is a cable whose lower end the lower network's converters
// steer (aggregation switch in default, edge switch in local, server in
// side/cross) and whose upper end is an upper-layer edge switch's "server
// port". The upper network's converters steer that upper end in turn: to
// the upper edge switch (default), the upper aggregation switch (local),
// or straight to a true core switch (side/cross) — so with both layers in
// global mode, relocated servers surface at every level of the hierarchy,
// including the true core.
type MultiStage struct {
	lower, upper *Network
}

// NewMultiStage validates the composition: the upper network's edge
// switches stand in one-for-one for the lower network's core switches,
// and each upper edge's server ports carry exactly the cables that land
// on its lower-core role.
func NewMultiStage(lower, upper *Network) (*MultiStage, error) {
	lc, uc := lower.Clos(), upper.Clos()
	if got, want := uc.Pods*uc.EdgesPerPod, lc.Cores; got != want {
		return nil, fmt.Errorf("core: upper layer has %d edge switches for %d lower cores", got, want)
	}
	if got, want := uc.ServersPerEdge, lc.CoreDownlinks(); got != want {
		return nil, fmt.Errorf("core: upper edges take %d server ports but %d cables arrive per lower core",
			got, want)
	}
	return &MultiStage{lower: lower, upper: upper}, nil
}

// Lower returns the lower-layer network (its modes are set as usual).
func (ms *MultiStage) Lower() *Network { return ms.lower }

// Upper returns the upper-layer network.
func (ms *MultiStage) Upper() *Network { return ms.upper }

// MultiStageRealization is the combined two-stage topology.
type MultiStageRealization struct {
	Topo *topo.Topology
	// Lower-layer node tables (as in Realization).
	EdgeID, AggID [][]int
	ServerID      [][][]int
	// UpperEdgeID[c] is the node standing in for lower core switch c;
	// UpperAggID[p2][i] are upper aggregation switches; TrueCoreID are
	// the top-level core switches.
	UpperEdgeID []int
	UpperAggID  [][]int
	TrueCoreID  []int
}

// cable tracks one lower-core connector: its steered lower endpoint and
// the upper edge switch it lands on.
type cable struct {
	lowerEnd int // node ID: lower agg, lower edge, or server
	upperC   int // lower-core index = flattened upper-edge index
}

// Realize builds the combined topology for the current converter
// configurations of both layers.
func (ms *MultiStage) Realize() *MultiStageRealization {
	lc, uc := ms.lower.Clos(), ms.upper.Clos()
	t := topo.NewTopology(fmt.Sprintf("flat-tree-2stage(%s+%s)", lc.Name, uc.Name))
	t.SetNumPods(lc.Pods)
	r := &MultiStageRealization{Topo: t}

	// True cores, then upper pods, then lower pods, then servers — all
	// upper-layer switches are "core" from the lower layer's viewpoint.
	r.TrueCoreID = make([]int, uc.Cores)
	for i := range r.TrueCoreID {
		r.TrueCoreID[i] = t.AddNode(topo.Core, -1)
	}
	r.UpperEdgeID = make([]int, lc.Cores)
	r.UpperAggID = make([][]int, uc.Pods)
	for p2 := 0; p2 < uc.Pods; p2++ {
		for j := 0; j < uc.EdgesPerPod; j++ {
			r.UpperEdgeID[p2*uc.EdgesPerPod+j] = t.AddNode(topo.Core, -1)
		}
		r.UpperAggID[p2] = make([]int, uc.AggsPerPod)
		for i := 0; i < uc.AggsPerPod; i++ {
			r.UpperAggID[p2][i] = t.AddNode(topo.Core, -1)
		}
	}
	r.EdgeID = make([][]int, lc.Pods)
	r.AggID = make([][]int, lc.Pods)
	for pod := 0; pod < lc.Pods; pod++ {
		r.EdgeID[pod] = make([]int, lc.EdgesPerPod)
		for j := 0; j < lc.EdgesPerPod; j++ {
			id := t.AddNode(topo.Edge, pod)
			t.Nodes[id].LocalIndex = j
			r.EdgeID[pod][j] = id
		}
		r.AggID[pod] = make([]int, lc.AggsPerPod)
		for i := 0; i < lc.AggsPerPod; i++ {
			id := t.AddNode(topo.Agg, pod)
			t.Nodes[id].LocalIndex = i
			r.AggID[pod][i] = id
		}
	}
	r.ServerID = make([][][]int, lc.Pods)
	for pod := 0; pod < lc.Pods; pod++ {
		r.ServerID[pod] = make([][]int, lc.EdgesPerPod)
		for j := 0; j < lc.EdgesPerPod; j++ {
			r.ServerID[pod][j] = make([]int, lc.ServersPerEdge)
			for s := 0; s < lc.ServersPerEdge; s++ {
				r.ServerID[pod][j][s] = t.AddNode(topo.Server, pod)
			}
		}
	}

	// Lower pod-internal Clos mesh (never broken).
	for pod := 0; pod < lc.Pods; pod++ {
		for j := 0; j < lc.EdgesPerPod; j++ {
			for i := 0; i < lc.AggsPerPod; i++ {
				for k := 0; k < lc.EdgeAggMultiplicity(); k++ {
					t.AddLink(r.EdgeID[pod][j], r.AggID[pod][i])
				}
			}
		}
	}
	// Upper pod-internal mesh.
	for p2 := 0; p2 < uc.Pods; p2++ {
		for j := 0; j < uc.EdgesPerPod; j++ {
			for i := 0; i < uc.AggsPerPod; i++ {
				for k := 0; k < uc.EdgeAggMultiplicity(); k++ {
					t.AddLink(r.UpperEdgeID[p2*uc.EdgesPerPod+j], r.UpperAggID[p2][i])
				}
			}
		}
	}

	// Lower layer: steer each cable's lower end per lower configs, and
	// attach directly-kept servers / agg connectors. Cables are collected
	// per lower-core (= upper-edge) index, in deterministic order.
	cables := make([][]cable, lc.Cores)
	lowerRealizeInto(ms.lower, r, cables)

	// Lower inter-pod side links (lower global mode).
	ms.lowerSideLinks(r)

	// Upper layer: each upper edge's "server slots" are its cables in
	// arrival order; upper converters steer slots 0..n2+m2-1.
	ms.upperRealizeInto(r, cables)

	return r
}

// lowerRealizeInto applies the lower network's converter configs. Instead
// of linking agg/edge/server to a core switch directly (as Realize does),
// the steered endpoint is recorded as a cable toward the upper layer.
func lowerRealizeInto(nw *Network, r *MultiStageRealization, cables [][]cable) {
	lc := nw.Clos()
	t := r.Topo
	g := nw.CoreGroupSize()
	n, m := nw.opt.N, nw.opt.M
	for pod := 0; pod < lc.Pods; pod++ {
		for j := 0; j < lc.EdgesPerPod; j++ {
			edge := r.EdgeID[pod][j]
			agg := r.AggID[pod][j/lc.R()]
			addCable := func(idx, lowerEnd int) {
				c := nw.CoreFor(pod, j, idx)
				cables[c] = append(cables[c], cable{lowerEnd: lowerEnd, upperC: c})
			}
			for i := 0; i < n; i++ {
				server := r.ServerID[pod][j][i]
				switch nw.configOf(FourPort, pod, j, i) {
				case ConfigDefault:
					t.AttachServer(server, edge)
					addCable(m+i, agg)
				case ConfigLocal:
					t.AttachServer(server, agg)
					addCable(m+i, edge)
				}
			}
			for i := 0; i < m; i++ {
				server := r.ServerID[pod][j][n+i]
				switch nw.configOf(SixPort, pod, j, i) {
				case ConfigDefault:
					t.AttachServer(server, edge)
					addCable(i, agg)
				case ConfigLocal:
					t.AttachServer(server, agg)
					addCable(i, edge)
				case ConfigSide, ConfigCross:
					// The server IS the cable's lower end; its inter-pod
					// side links are emitted by lowerSideLinks.
					addCable(i, server)
				}
			}
			for s := n + m; s < lc.ServersPerEdge; s++ {
				t.AttachServer(r.ServerID[pod][j][s], edge)
			}
			for idx := n + m; idx < g; idx++ {
				addCable(idx, agg)
			}
		}
	}
}

// lowerSideLinks emits the lower layer's inter-pod links for side/cross
// 6-port converters (same pairing as Network.addSideLinks).
func (ms *MultiStage) lowerSideLinks(r *MultiStageRealization) {
	nw := ms.lower
	lc := nw.Clos()
	half := lc.EdgesPerPod / 2
	for pod := 0; pod < lc.Pods; pod++ {
		for j := 0; j < half; j++ { // left blades emit
			for i := 0; i < nw.opt.M; i++ {
				cfg := nw.configOf(SixPort, pod, j, i)
				if cfg != ConfigSide && cfg != ConfigCross {
					continue
				}
				ppod, pj, _, ok := nw.SidePartner(pod, j, i)
				if !ok {
					continue
				}
				e := r.EdgeID[pod][j]
				a := r.AggID[pod][j/lc.R()]
				pe := r.EdgeID[ppod][pj]
				pa := r.AggID[ppod][pj/lc.R()]
				if cfg == ConfigSide {
					r.Topo.AddLink(e, pe)
					r.Topo.AddLink(a, pa)
				} else {
					r.Topo.AddLink(e, pa)
					r.Topo.AddLink(a, pe)
				}
			}
		}
	}
}

// upperRealizeInto wires the cables through the upper network's pods.
func (ms *MultiStage) upperRealizeInto(r *MultiStageRealization, cables [][]cable) {
	nw := ms.upper
	uc := nw.Clos()
	t := r.Topo
	g := nw.CoreGroupSize()
	n, m := nw.opt.N, nw.opt.M

	attach := func(lowerEnd, upperEnd int) {
		if t.Nodes[lowerEnd].Kind == topo.Server {
			t.AttachServer(lowerEnd, upperEnd)
			return
		}
		t.AddLink(lowerEnd, upperEnd)
	}

	for p2 := 0; p2 < uc.Pods; p2++ {
		for j := 0; j < uc.EdgesPerPod; j++ {
			cIdx := p2*uc.EdgesPerPod + j
			upperEdge := r.UpperEdgeID[cIdx]
			upperAgg := r.UpperAggID[p2][j/uc.R()]
			slots := cables[cIdx]
			if len(slots) != uc.ServersPerEdge {
				panic(fmt.Sprintf("core: upper edge %d received %d cables, want %d",
					cIdx, len(slots), uc.ServersPerEdge))
			}
			slot := func(i int) int { return slots[i].lowerEnd }

			for i := 0; i < n; i++ {
				coreSw := r.TrueCoreID[nw.CoreFor(p2, j, m+i)]
				switch nw.configOf(FourPort, p2, j, i) {
				case ConfigDefault:
					attach(slot(i), upperEdge)
					t.AddLink(upperAgg, coreSw)
				case ConfigLocal:
					attach(slot(i), upperAgg)
					t.AddLink(upperEdge, coreSw)
				}
			}
			for i := 0; i < m; i++ {
				coreSw := r.TrueCoreID[nw.CoreFor(p2, j, i)]
				switch nw.configOf(SixPort, p2, j, i) {
				case ConfigDefault:
					attach(slot(n+i), upperEdge)
					t.AddLink(upperAgg, coreSw)
				case ConfigLocal:
					attach(slot(n+i), upperAgg)
					t.AddLink(upperEdge, coreSw)
				case ConfigSide, ConfigCross:
					// The cable's lower end reaches the true core
					// directly; upper edge/agg cross to the neighbor pod.
					attach(slot(n+i), coreSw)
					ms.upperSideLinks(r, p2, j, i)
				}
			}
			for s := n + m; s < uc.ServersPerEdge; s++ {
				attach(slot(s), upperEdge)
			}
			for idx := n + m; idx < g; idx++ {
				t.AddLink(upperAgg, r.TrueCoreID[nw.CoreFor(p2, j, idx)])
			}
		}
	}
}

// upperSideLinks emits the upper layer's inter-pod side links once per
// pair (left blade emits, mirroring addSideLinks).
func (ms *MultiStage) upperSideLinks(r *MultiStageRealization, pod, edgeCol, row int) {
	nw := ms.upper
	uc := nw.Clos()
	half := uc.EdgesPerPod / 2
	if edgeCol >= half {
		return
	}
	cfg := nw.configOf(SixPort, pod, edgeCol, row)
	ppod, pj, _, ok := nw.SidePartner(pod, edgeCol, row)
	if !ok {
		return
	}
	e := r.UpperEdgeID[pod*uc.EdgesPerPod+edgeCol]
	a := r.UpperAggID[pod][edgeCol/uc.R()]
	pe := r.UpperEdgeID[ppod*uc.EdgesPerPod+pj]
	pa := r.UpperAggID[ppod][pj/uc.R()]
	if cfg == ConfigSide {
		r.Topo.AddLink(e, pe)
		r.Topo.AddLink(a, pa)
	} else {
		r.Topo.AddLink(e, pa)
		r.Topo.AddLink(a, pe)
	}
}

// ExampleMultiStage returns a two-stage composition of the Figure 2
// example: the 4-core example network under an upper layer of 2 pods
// whose 4 edge switches play the lower cores' role, topped by 4 true
// core switches.
func ExampleMultiStage() (*MultiStage, error) {
	lower, err := ExampleNetwork()
	if err != nil {
		return nil, err
	}
	upper, err := New(topo.ClosParams{
		Name:           "upper",
		Pods:           2,
		EdgesPerPod:    2,
		AggsPerPod:     2,
		ServersPerEdge: 4, // = lower CoreDownlinks
		EdgeUplinks:    2,
		AggUplinks:     2,
		Cores:          4,
	}, Options{N: 1, M: 1})
	if err != nil {
		return nil, err
	}
	return NewMultiStage(lower, upper)
}
