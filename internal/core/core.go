// Package core implements the flat-tree convertible data center network
// architecture, the primary contribution of the paper.
//
// A flat-tree network starts from a generic Clos layout (topo.ClosParams)
// and augments every pod with converter switches (§3.1): each pair of edge
// switch E_j and aggregation switch A_{j/r} is wired through n 4-port and
// m 6-port converter switches. By reconfiguring the converters the network
// converts at run time between a Clos topology, approximate local (two-
// stage) random graphs, and an approximate global random graph — without
// any physical rewiring.
//
// The package models:
//
//   - converter switches and their valid configurations (Figure 1);
//   - the flat-tree pod with blade A (4-port) and blade B (6-port)
//     converter matrices (Figure 3);
//   - pod-core wiring patterns 1 and 2 (§3.2, Figure 4);
//   - inter-pod side wiring with the shifted column pattern (§3.3);
//   - server distribution profiling over (m, n) (§3.4);
//   - operation modes Clos, local, global, and hybrid (§3.5).
//
// Realize produces the concrete topo.Topology for the current converter
// configuration; server node indices are stable across modes, mirroring the
// fact that topology conversion moves cables, not machines.
package core

import (
	"fmt"

	"flattree/internal/topo"
)

// Mode is a flat-tree operation mode (§3.5).
type Mode int

const (
	// ModeClos makes the network function as the original Clos topology:
	// every converter takes the "default" configuration.
	ModeClos Mode = iota
	// ModeLocal approximates a two-stage (regional) random graph: half of
	// each edge switch's servers are relocated to its aggregation switch.
	ModeLocal
	// ModeGlobal approximates a network-wide random graph: 4-port
	// converters relocate servers to aggregation switches and 6-port
	// converters relocate servers to core switches while cross-wiring
	// adjacent pods through their side ports.
	ModeGlobal
)

var modeNames = [...]string{"clos", "local", "global"}

func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return fmt.Sprintf("Mode(%d)", int(m))
	}
	return modeNames[m]
}

// ParseMode converts a mode name to a Mode.
func ParseMode(s string) (Mode, error) {
	for i, n := range modeNames {
		if n == s {
			return Mode(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown mode %q", s)
}

// Pattern selects the pod-core wiring pattern of §3.2.
type Pattern int

const (
	// Pattern1 packs blade B connectors continuously pod by pod through
	// each core group (better side-link utilization).
	Pattern1 Pattern = 1
	// Pattern2 advances blade B connectors by one extra core switch per
	// pod (better diversity when h/r is a multiple of m).
	Pattern2 Pattern = 2
)

// Config is a converter switch configuration (Figure 1).
type Config int

const (
	// ConfigDefault restores the original Clos connections:
	// server-edge and agg-core.
	ConfigDefault Config = iota
	// ConfigLocal relocates the server to the aggregation switch and
	// connects the core and edge switches directly.
	ConfigLocal
	// ConfigSide (6-port only) relocates the server to the core switch
	// and wires edge and agg to their peers in the adjacent pod
	// (peer-wise: E-E', A-A').
	ConfigSide
	// ConfigCross (6-port only) relocates the server to the core switch
	// and cross-wires edge and agg to the adjacent pod (E-A', A-E').
	ConfigCross
)

var configNames = [...]string{"default", "local", "side", "cross"}

func (c Config) String() string {
	if c < 0 || int(c) >= len(configNames) {
		return fmt.Sprintf("Config(%d)", int(c))
	}
	return configNames[c]
}

// ConverterKind distinguishes blade A (4-port) from blade B (6-port).
type ConverterKind int

const (
	// FourPort converters (blade A) can relocate a server to the
	// aggregation switch.
	FourPort ConverterKind = 4
	// SixPort converters (blade B) can additionally relocate a server to
	// the core switch via their side ports.
	SixPort ConverterKind = 6
)

func (k ConverterKind) String() string {
	if k == FourPort {
		return "4-port"
	}
	return "6-port"
}

// Converter identifies one converter switch and its current configuration.
type Converter struct {
	Kind ConverterKind
	Pod  int
	// EdgeCol is the pod-local edge switch index j in [0, d); columns
	// j < d/2 sit on the left blade, the rest on the right blade.
	EdgeCol int
	// Row is the row within the blade matrix: [0, n) for blade A,
	// [0, m) for blade B.
	Row    int
	Config Config
}

// Options configure the flat-tree augmentation of a Clos network.
type Options struct {
	// N is the number of 4-port converters per edge-agg pair (blade A
	// rows); servers relocatable to aggregation switches.
	N int
	// M is the number of 6-port converters per edge-agg pair (blade B
	// rows); servers relocatable to core switches.
	M int
	// Pattern is the pod-core wiring pattern; defaults to Pattern1.
	Pattern Pattern
	// LinearPods disables the wrap-around ring of inter-pod side wiring,
	// reproducing the paper's linear pod row where the outermost side
	// connectors are unused. The default (false) closes the ring so every
	// pod has two neighbors.
	LinearPods bool
}

// Network is a flat-tree network: a Clos layout plus converter blades and
// a per-pod operation mode.
type Network struct {
	clos     topo.ClosParams
	opt      Options
	podModes []Mode
}

// New validates the layout and returns a flat-tree network in Clos mode.
func New(clos topo.ClosParams, opt Options) (*Network, error) {
	if err := clos.Validate(); err != nil {
		return nil, err
	}
	if opt.Pattern == 0 {
		opt.Pattern = Pattern1
	}
	if opt.Pattern != Pattern1 && opt.Pattern != Pattern2 {
		return nil, fmt.Errorf("core: invalid wiring pattern %d", opt.Pattern)
	}
	if opt.N < 0 || opt.M < 0 || opt.N+opt.M == 0 {
		return nil, fmt.Errorf("core: need at least one converter per pair (n=%d, m=%d)", opt.N, opt.M)
	}
	if clos.EdgesPerPod%2 != 0 {
		return nil, fmt.Errorf("core: edges per pod %d must be even to split blades", clos.EdgesPerPod)
	}
	g := clos.AggUplinks / clos.R()
	if opt.N+opt.M > g {
		return nil, fmt.Errorf("core: n+m = %d exceeds per-edge core connectors h/r = %d", opt.N+opt.M, g)
	}
	if opt.M >= g {
		// In global mode every blade B connector carries a server-core
		// link; if all g connectors of a group were blade B, core
		// switches would keep no switch-level links and the network
		// would partition. At least one blade A or aggregation connector
		// must remain per group.
		return nil, fmt.Errorf("core: m = %d must be below h/r = %d so core switches keep switch links in global mode", opt.M, g)
	}
	if opt.N+opt.M > clos.ServersPerEdge {
		return nil, fmt.Errorf("core: n+m = %d exceeds servers per edge %d", opt.N+opt.M, clos.ServersPerEdge)
	}
	if clos.AggUplinks%clos.R() != 0 {
		return nil, fmt.Errorf("core: agg uplinks %d not divisible by r=%d", clos.AggUplinks, clos.R())
	}
	if clos.Pods < 2 && !opt.LinearPods {
		opt.LinearPods = true // a single pod has no neighbor
	}
	nw := &Network{clos: clos, opt: opt, podModes: make([]Mode, clos.Pods)}
	if err := nw.validateGlobalConnectivity(); err != nil {
		return nil, err
	}
	return nw, nil
}

// validateGlobalConnectivity rejects (pattern, m, n) combinations that
// would partition the network in global mode: every core group position
// must receive at least one blade A or aggregation connector from some
// pod; a position fed exclusively by blade B connectors carries only
// server links in global mode, stranding its core switches. The hazard is
// real: with pattern 2 and g | (m+1), every pod's rotation offset is zero
// and the first m positions of every group see only blade B connectors.
func (nw *Network) validateGlobalConnectivity() error {
	g := nw.CoreGroupSize()
	covered := make([]bool, g)
	for pod := 0; pod < nw.clos.Pods; pod++ {
		var offset int
		switch nw.opt.Pattern {
		case Pattern1:
			offset = (pod * nw.opt.M) % g
		case Pattern2:
			offset = (pod * (nw.opt.M + 1)) % g
		}
		// Connector indices m..g-1 are blade A and aggregation
		// connectors — switch-level links in every mode.
		for idx := nw.opt.M; idx < g; idx++ {
			covered[(offset+idx)%g] = true
		}
	}
	for q, ok := range covered {
		if !ok {
			return fmt.Errorf("core: pattern %d with n=%d, m=%d leaves core group position %d with only server links in global mode (partition hazard); choose a different m or wiring pattern",
				int(nw.opt.Pattern), nw.opt.N, nw.opt.M, q)
		}
	}
	return nil
}

// Clone returns an independent copy of the network: same Clos layout and
// converter options, private per-pod mode vector. What-if machinery
// (control.QuotePodModes, flatd's conversion quotes) converts the clone
// freely without disturbing the live network.
func (nw *Network) Clone() *Network {
	return &Network{clos: nw.clos, opt: nw.opt, podModes: append([]Mode(nil), nw.podModes...)}
}

// Clos returns the underlying Clos parameterization.
func (nw *Network) Clos() topo.ClosParams { return nw.clos }

// Options returns the flat-tree options.
func (nw *Network) Options() Options { return nw.opt }

// CoreGroupSize returns g = h/r, the number of core switches each edge
// switch's connectors reach.
func (nw *Network) CoreGroupSize() int { return nw.clos.AggUplinks / nw.clos.R() }

// SetMode puts every pod in the given mode.
func (nw *Network) SetMode(m Mode) {
	for i := range nw.podModes {
		nw.podModes[i] = m
	}
}

// SetPodMode sets one pod's mode (hybrid operation, §3.5).
func (nw *Network) SetPodMode(pod int, m Mode) error {
	if pod < 0 || pod >= len(nw.podModes) {
		return fmt.Errorf("core: pod %d out of range [0, %d)", pod, len(nw.podModes))
	}
	nw.podModes[pod] = m
	return nil
}

// PodModes returns a copy of the per-pod mode assignment.
func (nw *Network) PodModes() []Mode {
	return append([]Mode(nil), nw.podModes...)
}

// Mode returns the network-wide mode if uniform, or ok=false in hybrid
// operation.
func (nw *Network) Mode() (Mode, bool) {
	m := nw.podModes[0]
	for _, pm := range nw.podModes[1:] {
		if pm != m {
			return 0, false
		}
	}
	return m, true
}

// leftPartnerPod returns the pod whose right blade faces pod p's left
// blade, or -1 at a linear boundary.
func (nw *Network) leftPartnerPod(p int) int {
	if p > 0 {
		return p - 1
	}
	if nw.opt.LinearPods {
		return -1
	}
	return nw.clos.Pods - 1
}

// rightPartnerPod returns the pod whose left blade faces pod p's right
// blade, or -1 at a linear boundary.
func (nw *Network) rightPartnerPod(p int) int {
	if p < nw.clos.Pods-1 {
		return p + 1
	}
	if nw.opt.LinearPods {
		return -1
	}
	return 0
}

// SidePartner returns the converter paired with the given 6-port converter
// through the inter-pod side wiring (§3.3), or ok=false at a linear
// boundary. The pairing is the paper's shifted pattern: converter (i, j) on
// the left blade of pod p+1 connects to converter (i, (d/2-1-j+i) mod
// (d/2)) on the right blade of pod p.
func (nw *Network) SidePartner(pod, edgeCol, row int) (ppod, pedgeCol, prow int, ok bool) {
	half := nw.clos.EdgesPerPod / 2
	if edgeCol < half {
		// Left blade: partner is on the right blade of the previous pod.
		p := nw.leftPartnerPod(pod)
		if p < 0 {
			return 0, 0, 0, false
		}
		j := edgeCol
		pj := mod(half-1-j+row, half)
		return p, half + pj, row, true
	}
	// Right blade: partner is on the left blade of the next pod. Invert
	// the left-blade formula: j = (d/2-1+i-j') mod (d/2).
	p := nw.rightPartnerPod(pod)
	if p < 0 {
		return 0, 0, 0, false
	}
	jr := edgeCol - half
	j := mod(half-1+row-jr, half)
	return p, j, row, true
}

func mod(a, b int) int {
	m := a % b
	if m < 0 {
		m += b
	}
	return m
}

// localRelocations returns how many 4-port and how many 6-port converters
// of each edge-agg pair take the "local" configuration in local mode: half
// of the edge's servers move to the aggregation switch, 4-port converters
// first (§3.5).
func (nw *Network) localRelocations() (local4, local6 int) {
	target := nw.clos.ServersPerEdge / 2
	if target > nw.opt.N+nw.opt.M {
		target = nw.opt.N + nw.opt.M
	}
	local4 = nw.opt.N
	if local4 > target {
		local4 = target
	}
	local6 = target - local4
	return local4, local6
}

// configOf computes the configuration of one converter under the current
// per-pod modes.
func (nw *Network) configOf(kind ConverterKind, pod, edgeCol, row int) Config {
	mode := nw.podModes[pod]
	switch mode {
	case ModeClos:
		return ConfigDefault
	case ModeLocal:
		local4, local6 := nw.localRelocations()
		if kind == FourPort {
			if row < local4 {
				return ConfigLocal
			}
			return ConfigDefault
		}
		if row < local6 {
			return ConfigLocal
		}
		return ConfigDefault
	case ModeGlobal:
		if kind == FourPort {
			return ConfigLocal
		}
		// 6-port: side/cross if the partner pod is also global;
		// otherwise degrade to local so no port dangles.
		ppod, _, _, ok := nw.SidePartner(pod, edgeCol, row)
		if !ok || nw.podModes[ppod] != ModeGlobal {
			return ConfigLocal
		}
		if row%2 == 0 {
			return ConfigSide
		}
		return ConfigCross
	}
	panic(fmt.Sprintf("core: invalid mode %v for pod %d", mode, pod))
}

// Converters enumerates every converter switch with its configuration under
// the current modes, in deterministic order: pods ascending, edge columns
// ascending, blade A rows then blade B rows.
func (nw *Network) Converters() []Converter {
	var out []Converter
	for pod := 0; pod < nw.clos.Pods; pod++ {
		for j := 0; j < nw.clos.EdgesPerPod; j++ {
			for i := 0; i < nw.opt.N; i++ {
				out = append(out, Converter{Kind: FourPort, Pod: pod, EdgeCol: j, Row: i,
					Config: nw.configOf(FourPort, pod, j, i)})
			}
			for i := 0; i < nw.opt.M; i++ {
				out = append(out, Converter{Kind: SixPort, Pod: pod, EdgeCol: j, Row: i,
					Config: nw.configOf(SixPort, pod, j, i)})
			}
		}
	}
	return out
}

// NumConverters returns the total number of converter switches.
func (nw *Network) NumConverters() int {
	return nw.clos.Pods * nw.clos.EdgesPerPod * (nw.opt.N + nw.opt.M)
}

// CoreFor returns the core switch index that the connector with in-group
// index idx of edge column j in pod p reaches, under the configured wiring
// pattern (§3.2). In-group connector order is blade B rows (m), blade A
// rows (n), then direct aggregation connectors.
func (nw *Network) CoreFor(pod, edgeCol, idx int) int {
	g := nw.CoreGroupSize()
	if idx < 0 || idx >= g {
		panic(fmt.Sprintf("core: connector index %d out of range [0, %d)", idx, g))
	}
	var offset int
	switch nw.opt.Pattern {
	case Pattern1:
		offset = (pod * nw.opt.M) % g
	case Pattern2:
		offset = (pod * (nw.opt.M + 1)) % g
	}
	return (edgeCol*g + (offset+idx)%g) % nw.clos.Cores
}
