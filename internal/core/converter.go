package core

import "fmt"

// This file models converter switches at the circuit level (§3.6): a
// converter is a passive crosspoint (or optical circuit) switch, and a
// configuration is a set of two-port cross-connects — a perfect matching
// over the ports in use. The control plane programs these matchings; the
// realization logic in realize.go consumes the induced endpoint links.

// Port names the external connectors of a converter switch.
type Port int

const (
	// PortServer faces the (relocatable) server.
	PortServer Port = iota
	// PortEdge faces the edge switch's freed server port.
	PortEdge
	// PortAgg faces the aggregation switch's freed uplink.
	PortAgg
	// PortCore faces the core connector.
	PortCore
	// PortSide1 and PortSide2 face the paired converter in the adjacent
	// pod (6-port converters only).
	PortSide1
	PortSide2
)

var portNames = [...]string{"server", "edge", "agg", "core", "side1", "side2"}

func (p Port) String() string {
	if p < 0 || int(p) >= len(portNames) {
		return fmt.Sprintf("Port(%d)", int(p))
	}
	return portNames[p]
}

// CrossConnect is one internal circuit between two ports.
type CrossConnect struct{ A, B Port }

// CrossConnects returns the circuit matching a converter kind establishes
// under a configuration (Figure 1). The side ports connect toward the
// §3.3-paired converter; in the "side" configuration edge and aggregation
// exit straight (side1 carries edge, side2 carries agg), and in "cross"
// they are swapped, which — with the bundle joining side1-to-side1 and
// side2-to-side2 — yields the peer-wise (E-E', A-A') and crossed (E-A',
// A-E') inter-pod links respectively.
func CrossConnects(kind ConverterKind, cfg Config) ([]CrossConnect, error) {
	switch kind {
	case FourPort:
		switch cfg {
		case ConfigDefault:
			return []CrossConnect{{PortServer, PortEdge}, {PortAgg, PortCore}}, nil
		case ConfigLocal:
			return []CrossConnect{{PortServer, PortAgg}, {PortEdge, PortCore}}, nil
		}
		return nil, fmt.Errorf("core: 4-port converter cannot take %v", cfg)
	case SixPort:
		switch cfg {
		case ConfigDefault:
			return []CrossConnect{{PortServer, PortEdge}, {PortAgg, PortCore}}, nil
		case ConfigLocal:
			return []CrossConnect{{PortServer, PortAgg}, {PortEdge, PortCore}}, nil
		case ConfigSide:
			return []CrossConnect{{PortServer, PortCore}, {PortEdge, PortSide1}, {PortAgg, PortSide2}}, nil
		case ConfigCross:
			return []CrossConnect{{PortServer, PortCore}, {PortEdge, PortSide2}, {PortAgg, PortSide1}}, nil
		}
		return nil, fmt.Errorf("core: 6-port converter cannot take %v", cfg)
	}
	return nil, fmt.Errorf("core: unknown converter kind %v", kind)
}

// ValidateMatching checks that a cross-connect set is a matching over the
// kind's port set: every port appears at most once, no self-circuits, and
// no port outside the kind's range.
func ValidateMatching(kind ConverterKind, xcs []CrossConnect) error {
	maxPort := PortCore
	if kind == SixPort {
		maxPort = PortSide2
	}
	used := make(map[Port]bool)
	for _, xc := range xcs {
		if xc.A == xc.B {
			return fmt.Errorf("core: self-circuit on port %v", xc.A)
		}
		for _, p := range [2]Port{xc.A, xc.B} {
			if p < PortServer || p > maxPort {
				return fmt.Errorf("core: port %v outside a %v converter", p, kind)
			}
			if used[p] {
				return fmt.Errorf("core: port %v used by two circuits", p)
			}
			used[p] = true
		}
	}
	return nil
}

// EndpointLinks translates a converter's circuit matching into the
// endpoint pairs it realizes, given the physical attachments of its ports.
// attach maps each port to a node ID (use -1 for unattached side ports at
// linear boundaries); circuits touching an unattached port realize no
// link.
func EndpointLinks(xcs []CrossConnect, attach map[Port]int) [][2]int {
	var out [][2]int
	for _, xc := range xcs {
		a, okA := attach[xc.A]
		b, okB := attach[xc.B]
		if !okA || !okB || a < 0 || b < 0 {
			continue
		}
		out = append(out, [2]int{a, b})
	}
	return out
}
