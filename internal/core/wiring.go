package core

import (
	"fmt"
	"sort"
)

// Wiring manifests (§3.2–3.3): the deployment-time cable schedule.
// "Physically, we suggest wiring Pod 0 first, by linking every m blade B
// connectors, n blade A connectors, and h/r−m−n aggregation connectors in
// turn to core switches consecutively ... For the following Pods,
// connectors corresponding to each edge switch are connected to the marked
// h/r core switches according to the rotating patterns."
//
// The manifest enumerates every permanent cable of the flat-tree build —
// the wiring an installer would actually pull. Converter-internal circuits
// are excluded: those are programmed, not cabled.

// CableClass distinguishes the permanent cable types of a flat-tree build.
type CableClass int

const (
	// CableEdgeAgg is a pod-internal edge-to-aggregation cable.
	CableEdgeAgg CableClass = iota
	// CableServer connects a server NIC to its converter's server port
	// (or directly to the edge switch for non-relocatable slots).
	CableServer
	// CableBladeACore runs from a blade A (4-port) converter's core port
	// to a core switch.
	CableBladeACore
	// CableBladeBCore runs from a blade B (6-port) converter's core port
	// to a core switch.
	CableBladeBCore
	// CableAggCore is a direct aggregation-to-core cable (the connectors
	// converters do not intercept).
	CableAggCore
	// CableSideBundle is one multi-link side bundle between adjacent
	// pods' blade B columns (§3.3: "the side connectors on the same side
	// of a Pod are bundled as a multi-link connector").
	CableSideBundle
)

var cableNames = [...]string{
	"edge-agg", "server", "bladeA-core", "bladeB-core", "agg-core", "side-bundle",
}

func (c CableClass) String() string {
	if c < 0 || int(c) >= len(cableNames) {
		return fmt.Sprintf("CableClass(%d)", int(c))
	}
	return cableNames[c]
}

// Cable is one physical cable (or bundle) of the build.
type Cable struct {
	Class CableClass
	// Pod is the owning pod (the lower-indexed pod for side bundles).
	Pod int
	// A and B describe the endpoints for humans/installers.
	A, B string
}

// WiringManifest enumerates every permanent cable of the flat-tree build,
// in installation order: pod internals first (pod by pod), then pod-core
// trunks, then inter-pod side bundles.
func (nw *Network) WiringManifest() []Cable {
	cp := nw.clos
	g := nw.CoreGroupSize()
	n, m := nw.opt.N, nw.opt.M
	var cables []Cable

	for pod := 0; pod < cp.Pods; pod++ {
		// Pod-internal edge-agg mesh.
		for j := 0; j < cp.EdgesPerPod; j++ {
			for i := 0; i < cp.AggsPerPod; i++ {
				for k := 0; k < cp.EdgeAggMultiplicity(); k++ {
					cables = append(cables, Cable{
						Class: CableEdgeAgg, Pod: pod,
						A: fmt.Sprintf("pod%d/E%d", pod, j),
						B: fmt.Sprintf("pod%d/A%d", pod, i),
					})
				}
			}
		}
		// Server cables: converter-attached first, then direct.
		for j := 0; j < cp.EdgesPerPod; j++ {
			for s := 0; s < cp.ServersPerEdge; s++ {
				var to string
				switch {
				case s < n:
					to = fmt.Sprintf("pod%d/bladeA[%d,%d]/server-port", pod, s, j)
				case s < n+m:
					to = fmt.Sprintf("pod%d/bladeB[%d,%d]/server-port", pod, s-n, j)
				default:
					to = fmt.Sprintf("pod%d/E%d", pod, j)
				}
				cables = append(cables, Cable{
					Class: CableServer, Pod: pod,
					A: fmt.Sprintf("pod%d/server[%d,%d]", pod, j, s),
					B: to,
				})
			}
		}
	}

	// Pod-core trunks, in the §3.2 installation order: for each pod, each
	// edge column, blade B connectors, blade A connectors, then direct
	// aggregation connectors, each to its pattern-determined core switch.
	for pod := 0; pod < cp.Pods; pod++ {
		for j := 0; j < cp.EdgesPerPod; j++ {
			for idx := 0; idx < g; idx++ {
				coreSw := nw.CoreFor(pod, j, idx)
				var from string
				var class CableClass
				switch {
				case idx < m:
					from = fmt.Sprintf("pod%d/bladeB[%d,%d]/core-port", pod, idx, j)
					class = CableBladeBCore
				case idx < m+n:
					from = fmt.Sprintf("pod%d/bladeA[%d,%d]/core-port", pod, idx-m, j)
					class = CableBladeACore
				default:
					from = fmt.Sprintf("pod%d/A%d/uplink%d", pod, j/cp.R(), idx)
					class = CableAggCore
				}
				cables = append(cables, Cable{
					Class: class, Pod: pod,
					A: from, B: fmt.Sprintf("core/C%d", coreSw),
				})
			}
		}
	}

	// Inter-pod side bundles: one bundle per adjacent pod pair and blade
	// side, carrying m x d/2 x 2 fibers each, integrating the §3.3
	// shifted pairing internally.
	if m > 0 {
		for pod := 0; pod < cp.Pods; pod++ {
			next := nw.rightPartnerPod(pod)
			if next < 0 {
				continue
			}
			cables = append(cables, Cable{
				Class: CableSideBundle, Pod: pod,
				A: fmt.Sprintf("pod%d/right-blade-B/bundle", pod),
				B: fmt.Sprintf("pod%d/left-blade-B/bundle", next),
			})
		}
	}
	return cables
}

// CableCounts tallies the manifest by class.
func CableCounts(cables []Cable) map[CableClass]int {
	out := map[CableClass]int{}
	for _, c := range cables {
		out[c.Class]++
	}
	return out
}

// ExternalConnectorParity verifies the §2.2/§3.1 packaging claim:
// "Converter switches and the additional wiring are packaged in the Pod,
// keeping the same core connectors as a Clos Pod" — the number of
// pod-to-core cables and server cables must equal the Clos counterpart's.
func (nw *Network) ExternalConnectorParity() error {
	cp := nw.clos
	counts := CableCounts(nw.WiringManifest())
	coreCables := counts[CableBladeACore] + counts[CableBladeBCore] + counts[CableAggCore]
	wantCore := cp.Pods * cp.AggsPerPod * cp.AggUplinks
	if coreCables != wantCore {
		return fmt.Errorf("core: %d pod-core cables, Clos counterpart has %d", coreCables, wantCore)
	}
	if counts[CableServer] != cp.TotalServers() {
		return fmt.Errorf("core: %d server cables for %d servers", counts[CableServer], cp.TotalServers())
	}
	if counts[CableEdgeAgg] != cp.Pods*cp.EdgesPerPod*cp.AggsPerPod*cp.EdgeAggMultiplicity() {
		return fmt.Errorf("core: edge-agg cable count mismatch")
	}
	return nil
}

// CoreGroupFor returns the sorted core switches edge column j's connectors
// reach (the "marked" group of §3.2's installation procedure).
func (nw *Network) CoreGroupFor(edgeCol int) []int {
	g := nw.CoreGroupSize()
	seen := map[int]bool{}
	for pod := 0; pod < nw.clos.Pods; pod++ {
		for idx := 0; idx < g; idx++ {
			seen[nw.CoreFor(pod, edgeCol, idx)] = true
		}
	}
	out := make([]int, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Ints(out)
	return out
}
