package core

import (
	"testing"

	"flattree/internal/topo"
)

func TestWiringManifestParity(t *testing.T) {
	// The packaging claim (§2.2/§3.1): flat-tree pods expose the same
	// external connectors as their Clos counterparts.
	nw, err := ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.ExternalConnectorParity(); err != nil {
		t.Fatal(err)
	}
	for _, p := range topo.Table2() {
		nw, err := New(p, Options{N: 1, M: 2})
		if err != nil {
			t.Fatalf("%s: %v", p.Name, err)
		}
		if err := nw.ExternalConnectorParity(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestWiringManifestCounts(t *testing.T) {
	nw, err := ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	counts := CableCounts(nw.WiringManifest())
	// Example: 4 pods x 2 edges x 2 aggs x mult 1 = 16 edge-agg cables.
	if counts[CableEdgeAgg] != 16 {
		t.Fatalf("edge-agg cables = %d, want 16", counts[CableEdgeAgg])
	}
	if counts[CableServer] != 24 {
		t.Fatalf("server cables = %d, want 24", counts[CableServer])
	}
	// Per pod: 2 edges x g=2 connectors = 4 core cables; m=1 blade B and
	// n=1 blade A per column, no direct agg connectors (g-m-n = 0).
	if counts[CableBladeBCore] != 8 || counts[CableBladeACore] != 8 {
		t.Fatalf("blade core cables = %d/%d, want 8/8",
			counts[CableBladeBCore], counts[CableBladeACore])
	}
	if counts[CableAggCore] != 0 {
		t.Fatalf("agg-core cables = %d, want 0", counts[CableAggCore])
	}
	// Ring of 4 pods: one side bundle per adjacency.
	if counts[CableSideBundle] != 4 {
		t.Fatalf("side bundles = %d, want 4", counts[CableSideBundle])
	}
}

func TestWiringManifestMatchesCoreFor(t *testing.T) {
	// Every pod-core cable in the manifest must name the core switch
	// CoreFor computes; cross-check a topo-1-shaped build.
	p, err := topo.Table2ByName("topo-2")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(p, Options{N: 1, M: 2})
	if err != nil {
		t.Fatal(err)
	}
	groups := map[int][]int{}
	for j := 0; j < p.EdgesPerPod; j++ {
		groups[j] = nw.CoreGroupFor(j)
		// Each edge column reaches exactly g distinct cores (groups do
		// not wrap for topo-2: d*g == Cores).
		if len(groups[j]) != nw.CoreGroupSize() {
			t.Fatalf("edge %d group size %d, want %d", j, len(groups[j]), nw.CoreGroupSize())
		}
	}
	// Groups are disjoint and cover all cores when d*g == Cores.
	seen := map[int]bool{}
	for _, grp := range groups {
		for _, c := range grp {
			if seen[c] {
				t.Fatalf("core %d in two groups", c)
			}
			seen[c] = true
		}
	}
	if len(seen) != p.Cores {
		t.Fatalf("groups cover %d cores, want %d", len(seen), p.Cores)
	}
}

func TestCableClassString(t *testing.T) {
	if CableSideBundle.String() != "side-bundle" || CableServer.String() != "server" {
		t.Fatal("cable class names wrong")
	}
	if CableClass(99).String() == "" {
		t.Fatal("out-of-range class name empty")
	}
}
