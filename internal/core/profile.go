package core

import (
	"math"

	"flattree/internal/topo"
)

// ProfileResult is one (n, m) candidate evaluated by ProfileMN.
type ProfileResult struct {
	N, M int
	// AvgPathLength is the mean switch-level hop distance between the
	// attachment switches of sampled server pairs in global mode.
	AvgPathLength float64
}

// ProfileMN implements the server-distribution profiling of §3.4: under the
// given wiring pattern, it sweeps feasible (n, m) combinations and measures
// the average path length over server pairs in global mode, returning every
// candidate and the best one (shortest average path; ties prefer more
// relocation capacity, then larger m). sampleStride > 1 samples every
// sampleStride-th server as a BFS source to bound cost on large networks.
func ProfileMN(clos topo.ClosParams, pattern Pattern, sampleStride int) (best ProfileResult, all []ProfileResult, err error) {
	if sampleStride < 1 {
		sampleStride = 1
	}
	g := clos.AggUplinks / clos.R()
	max := g
	if clos.ServersPerEdge < max {
		max = clos.ServersPerEdge
	}
	best.AvgPathLength = math.Inf(1)
	for total := 1; total <= max; total++ {
		for m := 0; m <= total; m++ {
			n := total - m
			nw, nerr := New(clos, Options{N: n, M: m, Pattern: pattern})
			if nerr != nil {
				continue
			}
			nw.SetMode(ModeGlobal)
			r := nw.Realize()
			apl := serverAPL(r, sampleStride)
			res := ProfileResult{N: n, M: m, AvgPathLength: apl}
			all = append(all, res)
			if apl < best.AvgPathLength-1e-12 ||
				(math.Abs(apl-best.AvgPathLength) <= 1e-12 && (n+m > best.N+best.M ||
					(n+m == best.N+best.M && m > best.M))) {
				best = res
			}
		}
	}
	if math.IsInf(best.AvgPathLength, 1) {
		return best, all, errNoFeasible(clos)
	}
	return best, all, nil
}

func errNoFeasible(clos topo.ClosParams) error {
	return &noFeasibleError{name: clos.Name}
}

type noFeasibleError struct{ name string }

func (e *noFeasibleError) Error() string {
	return "core: no feasible (n, m) for " + e.name
}

// serverAPL measures the average path length between server attachment
// switches, sampling every strideth server as a source.
func serverAPL(r *Realization, stride int) float64 {
	t := r.Topo
	servers := t.Servers()
	// Attachment switches, deduplicated per source for BFS reuse.
	var total float64
	var count int64
	for i := 0; i < len(servers); i += stride {
		src := t.AttachedSwitch(servers[i])
		dist := t.G.BFSDistances(src)
		for j, s := range servers {
			if j == i {
				continue
			}
			d := dist[t.AttachedSwitch(s)]
			if d < 0 {
				continue
			}
			total += float64(d)
			count++
		}
	}
	if count == 0 {
		return 0
	}
	return total / float64(count)
}
