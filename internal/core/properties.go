package core

import (
	"fmt"

	"flattree/internal/topo"
)

// CoreLinkCensus counts, for one core switch, its attached servers and its
// links toward edge and aggregation switches. Properties 1 and 2 of §3.2
// state that in global mode both wiring patterns spread these uniformly
// across the core switches.
type CoreLinkCensus struct {
	Servers int
	ToEdge  int
	ToAgg   int
}

// CensusCores tallies per-core link types of a realization.
func CensusCores(r *Realization) []CoreLinkCensus {
	t := r.Topo
	out := make([]CoreLinkCensus, len(r.CoreID))
	idx := make(map[int]int, len(r.CoreID))
	for i, id := range r.CoreID {
		idx[id] = i
	}
	for _, l := range t.G.Links() {
		for _, pair := range [2][2]int{{l.A, l.B}, {l.B, l.A}} {
			ci, ok := idx[pair[0]]
			if !ok {
				continue
			}
			switch t.Nodes[pair[1]].Kind {
			case topo.Server:
				out[ci].Servers++
			case topo.Edge:
				out[ci].ToEdge++
			case topo.Agg:
				out[ci].ToAgg++
			}
		}
	}
	return out
}

// spread returns max-min of the given per-core counts.
func spread(census []CoreLinkCensus, field func(CoreLinkCensus) int) int {
	if len(census) == 0 {
		return 0
	}
	min, max := field(census[0]), field(census[0])
	for _, c := range census[1:] {
		v := field(c)
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	return max - min
}

// CheckProperty1 verifies that servers are distributed uniformly across
// core switches (Property 1, §3.2): the per-core server count varies by at
// most tolerance.
func CheckProperty1(r *Realization, tolerance int) error {
	census := CensusCores(r)
	if s := spread(census, func(c CoreLinkCensus) int { return c.Servers }); s > tolerance {
		return fmt.Errorf("core: Property 1 violated: per-core server spread %d > %d", s, tolerance)
	}
	return nil
}

// CheckProperty2 verifies that core switches carry an equal number of links
// of each type (Property 2, §3.2), within the given tolerance.
func CheckProperty2(r *Realization, tolerance int) error {
	census := CensusCores(r)
	if s := spread(census, func(c CoreLinkCensus) int { return c.ToEdge }); s > tolerance {
		return fmt.Errorf("core: Property 2 violated: per-core edge-link spread %d > %d", s, tolerance)
	}
	if s := spread(census, func(c CoreLinkCensus) int { return c.ToAgg }); s > tolerance {
		return fmt.Errorf("core: Property 2 violated: per-core agg-link spread %d > %d", s, tolerance)
	}
	return nil
}
