package core

import "testing"

func TestCrossConnectsAreValidMatchings(t *testing.T) {
	cases := []struct {
		kind ConverterKind
		cfgs []Config
	}{
		{FourPort, []Config{ConfigDefault, ConfigLocal}},
		{SixPort, []Config{ConfigDefault, ConfigLocal, ConfigSide, ConfigCross}},
	}
	for _, c := range cases {
		for _, cfg := range c.cfgs {
			xcs, err := CrossConnects(c.kind, cfg)
			if err != nil {
				t.Fatalf("%v %v: %v", c.kind, cfg, err)
			}
			if err := ValidateMatching(c.kind, xcs); err != nil {
				t.Errorf("%v %v: %v", c.kind, cfg, err)
			}
		}
	}
}

func TestCrossConnectsRejectInvalid(t *testing.T) {
	if _, err := CrossConnects(FourPort, ConfigSide); err == nil {
		t.Fatal("4-port side configuration accepted")
	}
	if _, err := CrossConnects(FourPort, ConfigCross); err == nil {
		t.Fatal("4-port cross configuration accepted")
	}
	if _, err := CrossConnects(ConverterKind(9), ConfigDefault); err == nil {
		t.Fatal("unknown kind accepted")
	}
}

func TestValidateMatchingRejections(t *testing.T) {
	if err := ValidateMatching(FourPort, []CrossConnect{{PortSide1, PortServer}}); err == nil {
		t.Fatal("side port on 4-port converter accepted")
	}
	if err := ValidateMatching(SixPort, []CrossConnect{{PortServer, PortServer}}); err == nil {
		t.Fatal("self-circuit accepted")
	}
	if err := ValidateMatching(SixPort, []CrossConnect{
		{PortServer, PortEdge}, {PortServer, PortCore},
	}); err == nil {
		t.Fatal("double-used port accepted")
	}
}

// TestMatchingMatchesRealization verifies the crosspoint model against the
// realization logic: the endpoint links a default/local matching implies
// are exactly the links Realize emits for the same configuration.
func TestMatchingMatchesRealization(t *testing.T) {
	nw, err := ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []Mode{ModeClos, ModeLocal} {
		nw.SetMode(mode)
		r := nw.Realize()
		for _, cv := range nw.Converters() {
			xcs, err := CrossConnects(cv.Kind, cv.Config)
			if err != nil {
				t.Fatal(err)
			}
			// Attachments of this converter's ports.
			edge := r.EdgeID[cv.Pod][cv.EdgeCol]
			agg := r.AggID[cv.Pod][cv.EdgeCol/nw.Clos().R()]
			slot := cv.Row
			coreIdx := nw.Options().M + cv.Row
			if cv.Kind == SixPort {
				slot = nw.Options().N + cv.Row
				coreIdx = cv.Row
			}
			server := r.ServerID[cv.Pod][cv.EdgeCol][slot]
			coreSw := r.CoreID[nw.CoreFor(cv.Pod, cv.EdgeCol, coreIdx)]
			attach := map[Port]int{
				PortServer: server, PortEdge: edge, PortAgg: agg, PortCore: coreSw,
			}
			for _, ep := range EndpointLinks(xcs, attach) {
				// The server-side circuit must match the recorded
				// attachment; the switch-side circuit must exist as a link.
				if ep[0] == server || ep[1] == server {
					other := ep[0] + ep[1] - server
					if got := r.Topo.AttachedSwitch(server); got != other {
						t.Fatalf("converter %+v: matching says server on %d, realization says %d",
							cv, other, got)
					}
					continue
				}
				if !r.Topo.G.HasLinkBetween(ep[0], ep[1]) {
					t.Fatalf("converter %+v: matching link %v absent from realization", cv, ep)
				}
			}
		}
	}
}

func TestEndpointLinksSkipsUnattached(t *testing.T) {
	xcs, _ := CrossConnects(SixPort, ConfigSide)
	attach := map[Port]int{PortServer: 1, PortCore: 2} // side/edge/agg unattached
	links := EndpointLinks(xcs, attach)
	if len(links) != 1 || links[0] != [2]int{1, 2} {
		t.Fatalf("links = %v, want [[1 2]]", links)
	}
}

func TestPortString(t *testing.T) {
	if PortServer.String() != "server" || PortSide2.String() != "side2" {
		t.Fatal("port names wrong")
	}
	if Port(99).String() == "" {
		t.Fatal("out-of-range port name empty")
	}
}
