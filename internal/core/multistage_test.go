package core

import (
	"testing"

	"flattree/internal/topo"
)

func exampleMS(t *testing.T) *MultiStage {
	t.Helper()
	ms, err := ExampleMultiStage()
	if err != nil {
		t.Fatal(err)
	}
	return ms
}

// msBudgets verifies port conservation at every layer of a multi-stage
// realization.
func msBudgets(t *testing.T, ms *MultiStage, r *MultiStageRealization) {
	t.Helper()
	lc, uc := ms.Lower().Clos(), ms.Upper().Clos()
	tp := r.Topo
	for pod := range r.EdgeID {
		for _, e := range r.EdgeID[pod] {
			if d := tp.G.Degree(e); d != lc.ServersPerEdge+lc.EdgeUplinks {
				t.Fatalf("lower edge %d degree %d, want %d", e, d, lc.ServersPerEdge+lc.EdgeUplinks)
			}
		}
		for _, a := range r.AggID[pod] {
			want := lc.EdgesPerPod*lc.EdgeAggMultiplicity() + lc.AggUplinks
			if d := tp.G.Degree(a); d != want {
				t.Fatalf("lower agg %d degree %d, want %d", a, d, want)
			}
		}
	}
	for _, ue := range r.UpperEdgeID {
		if d := tp.G.Degree(ue); d != uc.ServersPerEdge+uc.EdgeUplinks {
			t.Fatalf("upper edge %d degree %d, want %d", ue, d, uc.ServersPerEdge+uc.EdgeUplinks)
		}
	}
	for _, row := range r.UpperAggID {
		for _, ua := range row {
			want := uc.EdgesPerPod*uc.EdgeAggMultiplicity() + uc.AggUplinks
			if d := tp.G.Degree(ua); d != want {
				t.Fatalf("upper agg %d degree %d, want %d", ua, d, want)
			}
		}
	}
	for _, c := range r.TrueCoreID {
		if d := tp.G.Degree(c); d != uc.CoreDownlinks() {
			t.Fatalf("true core %d degree %d, want %d", c, d, uc.CoreDownlinks())
		}
	}
}

func TestMultiStageValidation(t *testing.T) {
	lower, _ := ExampleNetwork()
	badUpper, err := New(topo.ClosParams{
		Name: "bad", Pods: 2, EdgesPerPod: 4, AggsPerPod: 2,
		ServersPerEdge: 4, EdgeUplinks: 2, AggUplinks: 4, Cores: 8,
	}, Options{N: 1, M: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewMultiStage(lower, badUpper); err == nil {
		t.Fatal("mismatched upper edge count accepted")
	}
}

func TestMultiStageClosClos(t *testing.T) {
	ms := exampleMS(t)
	ms.Lower().SetMode(ModeClos)
	ms.Upper().SetMode(ModeClos)
	r := ms.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	msBudgets(t, ms, r)
	// All servers on lower edges.
	for _, s := range r.Topo.Servers() {
		if k := r.Topo.Nodes[r.Topo.AttachedSwitch(s)].Kind; k != topo.Edge {
			t.Fatalf("Clos/Clos: server %d on %v", s, k)
		}
	}
	// Node count: 4 true cores + 4 upper edges + 4 upper aggs + 8 lower
	// edges + 8 lower aggs + 24 servers.
	if got := r.Topo.G.NumNodes(); got != 4+4+4+8+8+24 {
		t.Fatalf("nodes = %d", got)
	}
}

func TestMultiStageGlobalGlobal(t *testing.T) {
	ms := exampleMS(t)
	ms.Lower().SetMode(ModeGlobal)
	ms.Upper().SetMode(ModeGlobal)
	r := ms.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	msBudgets(t, ms, r)
	// Servers surface at every layer: lower edges keep 1 per column,
	// lower aggs take the 4-port relocations, and the 6-port cables put
	// servers on upper switches — with upper global, some reach the true
	// core.
	locs := map[string]int{}
	trueCore := map[int]bool{}
	for _, c := range r.TrueCoreID {
		trueCore[c] = true
	}
	upperEdge := map[int]bool{}
	for _, c := range r.UpperEdgeID {
		upperEdge[c] = true
	}
	for _, s := range r.Topo.Servers() {
		sw := r.Topo.AttachedSwitch(s)
		switch {
		case trueCore[sw]:
			locs["truecore"]++
		case upperEdge[sw]:
			locs["upperedge"]++
		case r.Topo.Nodes[sw].Kind == topo.Edge:
			locs["loweredge"]++
		case r.Topo.Nodes[sw].Kind == topo.Agg:
			locs["loweragg"]++
		default:
			locs["upperagg"]++
		}
	}
	if locs["loweredge"] != 8 || locs["loweragg"] != 8 {
		t.Fatalf("lower layer placement wrong: %v", locs)
	}
	if locs["truecore"] == 0 {
		t.Fatalf("no servers reached the true core in global/global: %v", locs)
	}
	if locs["truecore"]+locs["upperedge"]+locs["upperagg"] != 8 {
		t.Fatalf("relocated-to-upper count wrong: %v", locs)
	}
}

func TestMultiStageMixedModes(t *testing.T) {
	ms := exampleMS(t)
	// Lower Clos, upper global: cables carry lower-agg endpoints, and
	// the upper side/cross configs connect some lower aggs DIRECTLY to
	// the true core — topology flattening across the hierarchy without
	// touching the lower pods.
	ms.Lower().SetMode(ModeClos)
	ms.Upper().SetMode(ModeGlobal)
	r := ms.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	msBudgets(t, ms, r)
	for _, s := range r.Topo.Servers() {
		if k := r.Topo.Nodes[r.Topo.AttachedSwitch(s)].Kind; k != topo.Edge {
			t.Fatalf("lower Clos: server %d left its edge switch (%v)", s, k)
		}
	}
	trueCore := map[int]bool{}
	for _, c := range r.TrueCoreID {
		trueCore[c] = true
	}
	direct := 0
	for _, l := range r.Topo.G.Links() {
		na, nb := r.Topo.Nodes[l.A], r.Topo.Nodes[l.B]
		if (trueCore[l.A] && nb.Kind == topo.Agg) || (trueCore[l.B] && na.Kind == topo.Agg) {
			direct++
		}
	}
	if direct == 0 {
		t.Fatal("upper global mode created no direct lower-agg to true-core links")
	}
}

func TestMultiStagePathsShortenWhenFlattened(t *testing.T) {
	ms := exampleMS(t)
	ms.Lower().SetMode(ModeClos)
	ms.Upper().SetMode(ModeClos)
	closAPL := msServerAPL(ms.Realize())
	ms.Lower().SetMode(ModeGlobal)
	ms.Upper().SetMode(ModeGlobal)
	globalAPL := msServerAPL(ms.Realize())
	if globalAPL >= closAPL {
		t.Fatalf("two-stage flattening did not shorten paths: %v vs %v", globalAPL, closAPL)
	}
}

func msServerAPL(r *MultiStageRealization) float64 {
	t := r.Topo
	var total float64
	var count int
	servers := t.Servers()
	for _, a := range servers {
		dist := t.G.BFSDistances(t.AttachedSwitch(a))
		for _, b := range servers {
			if a == b {
				continue
			}
			total += float64(dist[t.AttachedSwitch(b)])
			count++
		}
	}
	return total / float64(count)
}
