package core

import "flattree/internal/topo"

// ExampleClos returns the Clos parameterization of the paper's running
// example (Figure 2) and testbed (Figure 9): 4 pods of 2 edge and 2
// aggregation switches, 4 core switches, 3 servers per edge switch —
// 20 packet switches and 24 servers in total, 1.5:1 oversubscribed.
func ExampleClos() topo.ClosParams {
	return topo.ClosParams{
		Name:           "example",
		Pods:           4,
		EdgesPerPod:    2,
		AggsPerPod:     2,
		ServersPerEdge: 3,
		EdgeUplinks:    2,
		AggUplinks:     2,
		Cores:          4,
	}
}

// ExampleNetwork returns the flat-tree network of Figure 2: each edge-agg
// pair has one 4-port and one 6-port converter switch.
func ExampleNetwork() (*Network, error) {
	return New(ExampleClos(), Options{N: 1, M: 1, Pattern: Pattern1})
}
