package core

import (
	"fmt"

	"flattree/internal/topo"
)

// Realization is the concrete topology produced by a converter
// configuration, plus lookup tables the routing and control layers need.
type Realization struct {
	// Topo is the realized network. Node order is deterministic: core
	// switches, then per pod edge switches and aggregation switches, then
	// all servers (pod by pod, edge by edge, slot by slot). Server order
	// is identical in every mode: conversion moves cables, not machines.
	Topo *topo.Topology
	// EdgeID[pod][j] is the node ID of edge switch j of the pod.
	EdgeID [][]int
	// AggID[pod][i] is the node ID of aggregation switch i of the pod.
	AggID [][]int
	// CoreID[c] is the node ID of core switch c.
	CoreID []int
	// ServerID[pod][j][s] is the node ID of server slot s of edge column
	// j (slot numbering: blade A rows, then blade B rows, then directly
	// attached servers).
	ServerID [][][]int
	// Modes is the pod-mode assignment the realization was built from.
	Modes []Mode
}

// Realize builds the physical topology for the network's current converter
// configuration.
//
// Construction rules (one per architecture element):
//
//   - pod-internal edge-agg Clos links are always present: converters
//     intercept only edge-server and agg-core links (§2.2);
//   - each 4-port converter of pair (E_j, A_{j/r}) owns server slot
//     row (blade A) and core connector index m+row;
//   - each 6-port converter owns server slot n+row and core connector
//     index row (blade B connectors come first in the group, §3.2);
//   - remaining core connectors (indices m+n .. g-1) wire A_{j/r} to the
//     core directly; remaining server slots attach to E_j directly;
//   - 6-port converters in side/cross configuration contribute inter-pod
//     links following the §3.3 shifted pairing; each pair is realized
//     once (by the left-blade converter of the higher pod).
func (nw *Network) Realize() *Realization {
	cp := nw.clos
	t := topo.NewTopology(fmt.Sprintf("flat-tree(%s)", cp.Name))
	t.SetNumPods(cp.Pods)
	g := nw.CoreGroupSize()
	n, m := nw.opt.N, nw.opt.M

	r := &Realization{Topo: t, Modes: nw.PodModes()}
	r.CoreID = make([]int, cp.Cores)
	for c := range r.CoreID {
		r.CoreID[c] = t.AddNode(topo.Core, -1)
	}
	r.EdgeID = make([][]int, cp.Pods)
	r.AggID = make([][]int, cp.Pods)
	for pod := 0; pod < cp.Pods; pod++ {
		r.EdgeID[pod] = make([]int, cp.EdgesPerPod)
		r.AggID[pod] = make([]int, cp.AggsPerPod)
		for j := 0; j < cp.EdgesPerPod; j++ {
			id := t.AddNode(topo.Edge, pod)
			t.Nodes[id].LocalIndex = j
			r.EdgeID[pod][j] = id
		}
		for i := 0; i < cp.AggsPerPod; i++ {
			id := t.AddNode(topo.Agg, pod)
			t.Nodes[id].LocalIndex = i
			r.AggID[pod][i] = id
		}
	}
	// Servers in globally stable order.
	r.ServerID = make([][][]int, cp.Pods)
	for pod := 0; pod < cp.Pods; pod++ {
		r.ServerID[pod] = make([][]int, cp.EdgesPerPod)
		for j := 0; j < cp.EdgesPerPod; j++ {
			r.ServerID[pod][j] = make([]int, cp.ServersPerEdge)
			for s := 0; s < cp.ServersPerEdge; s++ {
				r.ServerID[pod][j][s] = t.AddNode(topo.Server, pod)
			}
		}
	}

	// Pod-internal Clos mesh.
	mult := cp.EdgeAggMultiplicity()
	for pod := 0; pod < cp.Pods; pod++ {
		for j := 0; j < cp.EdgesPerPod; j++ {
			for i := 0; i < cp.AggsPerPod; i++ {
				for k := 0; k < mult; k++ {
					t.AddLink(r.EdgeID[pod][j], r.AggID[pod][i])
				}
			}
		}
	}

	// Converter-mediated and direct links.
	for pod := 0; pod < cp.Pods; pod++ {
		for j := 0; j < cp.EdgesPerPod; j++ {
			edge := r.EdgeID[pod][j]
			agg := r.AggID[pod][j/cp.R()]

			// Blade A: 4-port converters, rows 0..n-1.
			for i := 0; i < n; i++ {
				server := r.ServerID[pod][j][i]
				coreSw := r.CoreID[nw.CoreFor(pod, j, m+i)]
				switch cfg := nw.configOf(FourPort, pod, j, i); cfg {
				case ConfigDefault:
					t.AttachServer(server, edge)
					t.AddLink(agg, coreSw)
				case ConfigLocal:
					t.AttachServer(server, agg)
					t.AddLink(edge, coreSw)
				default:
					panic(fmt.Sprintf("core: invalid 4-port config %v", cfg))
				}
			}

			// Blade B: 6-port converters, rows 0..m-1.
			for i := 0; i < m; i++ {
				server := r.ServerID[pod][j][n+i]
				coreSw := r.CoreID[nw.CoreFor(pod, j, i)]
				switch cfg := nw.configOf(SixPort, pod, j, i); cfg {
				case ConfigDefault:
					t.AttachServer(server, edge)
					t.AddLink(agg, coreSw)
				case ConfigLocal:
					t.AttachServer(server, agg)
					t.AddLink(edge, coreSw)
				case ConfigSide, ConfigCross:
					t.AttachServer(server, coreSw)
					nw.addSideLinks(r, pod, j, i, cfg)
				}
			}

			// Direct servers (slots n+m..) and direct agg-core connectors.
			for s := n + m; s < cp.ServersPerEdge; s++ {
				t.AttachServer(r.ServerID[pod][j][s], edge)
			}
			for idx := n + m; idx < g; idx++ {
				t.AddLink(agg, r.CoreID[nw.CoreFor(pod, j, idx)])
			}
		}
	}
	return r
}

// addSideLinks realizes the two inter-pod links of a 6-port converter pair
// in side or cross configuration. To add each physical pair exactly once,
// only the left-blade converter of each pair emits links (its partner is
// the right blade of the neighboring pod).
func (nw *Network) addSideLinks(r *Realization, pod, edgeCol, row int, cfg Config) {
	half := nw.clos.EdgesPerPod / 2
	if edgeCol >= half {
		return // right-blade converter: its left-blade partner emits the links
	}
	ppod, pEdgeCol, pRow, ok := nw.SidePartner(pod, edgeCol, row)
	if !ok {
		return
	}
	// Consistency: the partner must be in the same side/cross config
	// (configOf guarantees this when both pods are global).
	pcfg := nw.configOf(SixPort, ppod, pEdgeCol, pRow)
	if pcfg != cfg {
		panic(fmt.Sprintf("core: side pair config mismatch %v vs %v", cfg, pcfg))
	}
	e := r.EdgeID[pod][edgeCol]
	a := r.AggID[pod][edgeCol/nw.clos.R()]
	pe := r.EdgeID[ppod][pEdgeCol]
	pa := r.AggID[ppod][pEdgeCol/nw.clos.R()]
	if cfg == ConfigSide {
		// Peer-wise: E-E', A-A'.
		r.Topo.AddLink(e, pe)
		r.Topo.AddLink(a, pa)
	} else {
		// Crossed: E-A', A-E'.
		r.Topo.AddLink(e, pa)
		r.Topo.AddLink(a, pe)
	}
}

// ServerIndex returns the stable global index of server slot s on edge
// column j of the pod: pod*d*sd + j*sd + s. It matches the server node
// order in Realize.
func (nw *Network) ServerIndex(pod, edgeCol, slot int) int {
	return (pod*nw.clos.EdgesPerPod+edgeCol)*nw.clos.ServersPerEdge + slot
}
