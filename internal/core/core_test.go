package core

import (
	"testing"
	"testing/quick"

	"flattree/internal/topo"
)

func topo1Network(t *testing.T, pattern Pattern) *Network {
	t.Helper()
	p, err := topo.Table2ByName("topo-1")
	if err != nil {
		t.Fatal(err)
	}
	nw, err := New(p, Options{N: 2, M: 2, Pattern: pattern})
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

// checkPortBudgets asserts that every switch keeps exactly its Clos port
// count in the realized topology: conversion rewires ports, never adds or
// removes them.
func checkPortBudgets(t *testing.T, nw *Network, r *Realization) {
	t.Helper()
	cp := nw.Clos()
	tp := r.Topo
	wantEdge := cp.ServersPerEdge + cp.EdgeUplinks
	wantAgg := cp.EdgesPerPod*cp.EdgeAggMultiplicity() + cp.AggUplinks
	wantCore := cp.CoreDownlinks()
	for _, e := range tp.Edges() {
		if d := tp.G.Degree(e); d != wantEdge {
			t.Fatalf("edge %d degree %d, want %d", e, d, wantEdge)
		}
	}
	for _, a := range tp.Aggs() {
		if d := tp.G.Degree(a); d != wantAgg {
			t.Fatalf("agg %d degree %d, want %d", a, d, wantAgg)
		}
	}
	for _, c := range tp.Cores() {
		if d := tp.G.Degree(c); d != wantCore {
			t.Fatalf("core %d degree %d, want %d", c, d, wantCore)
		}
	}
	for _, s := range tp.Servers() {
		if d := tp.G.Degree(s); d != 1 {
			t.Fatalf("server %d degree %d, want 1", s, d)
		}
	}
}

func TestNewValidation(t *testing.T) {
	p := ExampleClos()
	cases := []Options{
		{N: 0, M: 0},  // no converters
		{N: -1, M: 2}, // negative
		{N: 2, M: 1},  // n+m > g=2
		{N: 1, M: 3},  // n+m > servers per edge and > g
	}
	for _, opt := range cases {
		if _, err := New(p, opt); err == nil {
			t.Errorf("Options %+v accepted, want error", opt)
		}
	}
	if _, err := New(p, Options{N: 1, M: 1, Pattern: Pattern(9)}); err == nil {
		t.Error("invalid pattern accepted")
	}
	odd := p
	odd.EdgesPerPod = 3
	odd.AggsPerPod = 3
	odd.EdgeUplinks = 3
	if _, err := New(odd, Options{N: 1, M: 1}); err == nil {
		t.Error("odd edge count accepted")
	}
}

func TestClosModeMatchesClosStructure(t *testing.T) {
	nw, err := ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(ModeClos)
	r := nw.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPortBudgets(t, nw, r)
	// In Clos mode every server attaches to an edge switch.
	for _, s := range r.Topo.Servers() {
		sw := r.Topo.AttachedSwitch(s)
		if k := r.Topo.Nodes[sw].Kind; k != topo.Edge {
			t.Fatalf("Clos mode: server %d on %v", s, k)
		}
	}
	// No inter-pod switch links except via core.
	for _, l := range r.Topo.G.Links() {
		na, nb := r.Topo.Nodes[l.A], r.Topo.Nodes[l.B]
		if na.Kind == topo.Server || nb.Kind == topo.Server {
			continue
		}
		if na.Pod >= 0 && nb.Pod >= 0 && na.Pod != nb.Pod {
			t.Fatalf("Clos mode has direct inter-pod link %d-%d", l.A, l.B)
		}
	}
}

func TestGlobalModeExample(t *testing.T) {
	nw, err := ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(ModeGlobal)
	r := nw.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPortBudgets(t, nw, r)
	// Figure 2c: each edge keeps 1 server, each agg gains 1, each core 2.
	counts := map[topo.Kind]map[int]int{topo.Edge: {}, topo.Agg: {}, topo.Core: {}}
	for _, s := range r.Topo.Servers() {
		sw := r.Topo.AttachedSwitch(s)
		counts[r.Topo.Nodes[sw].Kind][sw]++
	}
	for _, e := range r.Topo.Edges() {
		if counts[topo.Edge][e] != 1 {
			t.Fatalf("edge %d hosts %d servers, want 1", e, counts[topo.Edge][e])
		}
	}
	for _, a := range r.Topo.Aggs() {
		if counts[topo.Agg][a] != 1 {
			t.Fatalf("agg %d hosts %d servers, want 1", a, counts[topo.Agg][a])
		}
	}
	for _, c := range r.Topo.Cores() {
		if counts[topo.Core][c] != 2 {
			t.Fatalf("core %d hosts %d servers, want 2", c, counts[topo.Core][c])
		}
	}
	// Inter-pod side links exist: ring of 4 pods, m=1 row, d/2=1 column
	// per pair, 2 links per pair => 8 side links.
	side := 0
	for _, l := range r.Topo.G.Links() {
		na, nb := r.Topo.Nodes[l.A], r.Topo.Nodes[l.B]
		if na.Kind == topo.Server || nb.Kind == topo.Server {
			continue
		}
		if na.Pod >= 0 && nb.Pod >= 0 && na.Pod != nb.Pod {
			side++
		}
	}
	if side != 8 {
		t.Fatalf("side links = %d, want 8", side)
	}
}

func TestLocalModeExample(t *testing.T) {
	nw, err := ExampleNetwork()
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(ModeLocal)
	r := nw.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPortBudgets(t, nw, r)
	// sd=3 => target = 1 relocation per pair, via the 4-port converter.
	for _, s := range r.Topo.Servers() {
		k := r.Topo.Nodes[r.Topo.AttachedSwitch(s)].Kind
		if k == topo.Core {
			t.Fatalf("local mode relocated server %d to core", s)
		}
	}
	agg, edge := 0, 0
	for _, s := range r.Topo.Servers() {
		switch r.Topo.Nodes[r.Topo.AttachedSwitch(s)].Kind {
		case topo.Agg:
			agg++
		case topo.Edge:
			edge++
		}
	}
	if agg != 8 || edge != 16 {
		t.Fatalf("local mode: %d on agg, %d on edge; want 8, 16", agg, edge)
	}
	// No inter-pod side links in local mode.
	for _, l := range r.Topo.G.Links() {
		na, nb := r.Topo.Nodes[l.A], r.Topo.Nodes[l.B]
		if na.Kind != topo.Server && nb.Kind != topo.Server &&
			na.Pod >= 0 && nb.Pod >= 0 && na.Pod != nb.Pod {
			t.Fatalf("local mode has side link %d-%d", l.A, l.B)
		}
	}
}

func TestServerOrderStableAcrossModes(t *testing.T) {
	nw, _ := ExampleNetwork()
	nw.SetMode(ModeClos)
	a := nw.Realize()
	nw.SetMode(ModeGlobal)
	b := nw.Realize()
	sa, sb := a.Topo.Servers(), b.Topo.Servers()
	if len(sa) != len(sb) {
		t.Fatal("server count changed across modes")
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("server %d node ID changed: %d vs %d", i, sa[i], sb[i])
		}
	}
}

func TestTopo1AllModes(t *testing.T) {
	for _, pattern := range []Pattern{Pattern1, Pattern2} {
		nw := topo1Network(t, pattern)
		for _, mode := range []Mode{ModeClos, ModeLocal, ModeGlobal} {
			nw.SetMode(mode)
			r := nw.Realize()
			if err := r.Topo.Validate(); err != nil {
				t.Fatalf("pattern %d mode %v: %v", pattern, mode, err)
			}
			checkPortBudgets(t, nw, r)
		}
	}
}

func TestWiringProperty1(t *testing.T) {
	// Property 1 (§3.2): servers uniform across core switches in global
	// mode, for both wiring patterns. topo-1 with m=2, n=2 satisfies the
	// divisibility conditions exactly.
	for _, pattern := range []Pattern{Pattern1, Pattern2} {
		nw := topo1Network(t, pattern)
		nw.SetMode(ModeGlobal)
		r := nw.Realize()
		if err := CheckProperty1(r, 0); err != nil {
			t.Errorf("pattern %d: %v", pattern, err)
		}
	}
}

func TestWiringProperty2(t *testing.T) {
	// Property 2 (§3.2): equal per-core link counts of each type.
	for _, pattern := range []Pattern{Pattern1, Pattern2} {
		nw := topo1Network(t, pattern)
		nw.SetMode(ModeGlobal)
		r := nw.Realize()
		if err := CheckProperty2(r, 0); err != nil {
			t.Errorf("pattern %d: %v", pattern, err)
		}
	}
}

func TestCoreForPatterns(t *testing.T) {
	nw := topo1Network(t, Pattern1)
	g := nw.CoreGroupSize()
	if g != 8 {
		t.Fatalf("group size = %d, want 8", g)
	}
	// Pod 0: connector idx maps straight into the group.
	for idx := 0; idx < g; idx++ {
		if got := nw.CoreFor(0, 3, idx); got != 3*g+idx {
			t.Fatalf("CoreFor(0,3,%d) = %d, want %d", idx, got, 3*g+idx)
		}
	}
	// Pattern 1: pod p shifts by p*m within the group.
	if got, want := nw.CoreFor(1, 0, 0), (0*g + (1*2+0)%g); got != want {
		t.Fatalf("pattern1 pod1 = %d, want %d", got, want)
	}
	nw2 := topo1Network(t, Pattern2)
	// Pattern 2: pod p shifts by p*(m+1).
	if got, want := nw2.CoreFor(1, 0, 0), (0*g + (1*3+0)%g); got != want {
		t.Fatalf("pattern2 pod1 = %d, want %d", got, want)
	}
}

func TestSidePartnerInvolution(t *testing.T) {
	nw := topo1Network(t, Pattern1)
	cp := nw.Clos()
	for pod := 0; pod < cp.Pods; pod++ {
		for j := 0; j < cp.EdgesPerPod; j++ {
			for row := 0; row < nw.Options().M; row++ {
				ppod, pj, prow, ok := nw.SidePartner(pod, j, row)
				if !ok {
					t.Fatalf("ring network: no partner for (%d,%d,%d)", pod, j, row)
				}
				qpod, qj, qrow, ok := nw.SidePartner(ppod, pj, prow)
				if !ok || qpod != pod || qj != j || qrow != row {
					t.Fatalf("partner not involutive: (%d,%d,%d) -> (%d,%d,%d) -> (%d,%d,%d)",
						pod, j, row, ppod, pj, prow, qpod, qj, qrow)
				}
			}
		}
	}
}

func TestSidePartnerShiftPattern(t *testing.T) {
	// §3.3: left (i, j) of pod p+1 pairs with right (i, (d/2-1-j+i) mod
	// (d/2)) of pod p.
	nw := topo1Network(t, Pattern1) // d=8, half=4
	for _, tc := range []struct{ j, i, wantCol int }{
		{0, 0, 3}, // mirrored column 3, shift 0
		{1, 0, 2},
		{0, 1, 0}, // (4-1-0+1)%4 = 0
		{3, 1, 1}, // (4-1-3+1)%4 = 1
	} {
		ppod, pj, _, ok := nw.SidePartner(1, tc.j, tc.i)
		if !ok || ppod != 0 {
			t.Fatalf("partner pod = %d, want 0", ppod)
		}
		if got := pj - 4; got != tc.wantCol {
			t.Errorf("left (%d,%d): partner right col %d, want %d", tc.i, tc.j, got, tc.wantCol)
		}
	}
}

func TestLinearPodsBoundary(t *testing.T) {
	p := ExampleClos()
	nw, err := New(p, Options{N: 1, M: 1, LinearPods: true})
	if err != nil {
		t.Fatal(err)
	}
	nw.SetMode(ModeGlobal)
	// Pod 0's left blade has no partner.
	if _, _, _, ok := nw.SidePartner(0, 0, 0); ok {
		t.Fatal("pod 0 left blade found a partner in linear wiring")
	}
	// Its 6-port converters must degrade to local, keeping budgets.
	for _, c := range nw.Converters() {
		if c.Kind == SixPort && c.Pod == 0 && c.EdgeCol == 0 {
			if c.Config != ConfigLocal {
				t.Fatalf("boundary converter config = %v, want local", c.Config)
			}
		}
	}
	r := nw.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPortBudgets(t, nw, r)
}

func TestHybridMode(t *testing.T) {
	nw := topo1Network(t, Pattern1)
	// Zones: pods 0-5 global, 6-10 local, 11-15 Clos.
	for pod := 0; pod < 16; pod++ {
		var m Mode
		switch {
		case pod < 6:
			m = ModeGlobal
		case pod < 11:
			m = ModeLocal
		default:
			m = ModeClos
		}
		if err := nw.SetPodMode(pod, m); err != nil {
			t.Fatal(err)
		}
	}
	if _, uniform := nw.Mode(); uniform {
		t.Fatal("hybrid network reported uniform mode")
	}
	r := nw.Realize()
	if err := r.Topo.Validate(); err != nil {
		t.Fatal(err)
	}
	checkPortBudgets(t, nw, r)
	// Pod 5 (global) borders pod 6 (local): its right-facing 6-port
	// converters must degrade to local; pod 4/5 boundary stays side/cross.
	for _, c := range nw.Converters() {
		if c.Kind != SixPort || c.Pod != 5 {
			continue
		}
		if c.EdgeCol >= 4 { // right blade faces pod 6
			if c.Config != ConfigLocal {
				t.Fatalf("pod 5 right blade col %d config %v, want local", c.EdgeCol, c.Config)
			}
		} else { // left blade faces pod 4 (global)
			want := ConfigSide
			if c.Row%2 == 1 {
				want = ConfigCross
			}
			if c.Config != want {
				t.Fatalf("pod 5 left blade row %d config %v, want %v", c.Row, c.Config, want)
			}
		}
	}
	// Clos pods keep all servers on edges.
	for _, s := range r.Topo.Servers() {
		if r.Topo.Nodes[s].Pod >= 11 {
			sw := r.Topo.AttachedSwitch(s)
			if k := r.Topo.Nodes[sw].Kind; k != topo.Edge {
				t.Fatalf("Clos-zone server %d on %v", s, k)
			}
		}
	}
	if err := nw.SetPodMode(99, ModeClos); err == nil {
		t.Fatal("out-of-range pod accepted")
	}
}

func TestConvertersEnumeration(t *testing.T) {
	nw, _ := ExampleNetwork()
	nw.SetMode(ModeGlobal)
	convs := nw.Converters()
	if len(convs) != nw.NumConverters() {
		t.Fatalf("Converters() = %d entries, want %d", len(convs), nw.NumConverters())
	}
	// Example: 4 pods x 2 edges x (1+1) = 16 converters.
	if nw.NumConverters() != 16 {
		t.Fatalf("NumConverters = %d, want 16", nw.NumConverters())
	}
	for _, c := range convs {
		if c.Kind == FourPort && (c.Config == ConfigSide || c.Config == ConfigCross) {
			t.Fatalf("4-port converter in %v config", c.Config)
		}
	}
}

func TestModeAndConfigStrings(t *testing.T) {
	if ModeGlobal.String() != "global" || ConfigCross.String() != "cross" {
		t.Fatal("string names wrong")
	}
	if FourPort.String() != "4-port" || SixPort.String() != "6-port" {
		t.Fatal("kind names wrong")
	}
	m, err := ParseMode("local")
	if err != nil || m != ModeLocal {
		t.Fatalf("ParseMode(local) = %v, %v", m, err)
	}
	if _, err := ParseMode("bogus"); err == nil {
		t.Fatal("ParseMode accepted bogus")
	}
}

func TestProfileMNExample(t *testing.T) {
	best, all, err := ProfileMN(ExampleClos(), Pattern1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) == 0 {
		t.Fatal("no candidates profiled")
	}
	if best.N+best.M < 1 || best.N+best.M > 2 {
		t.Fatalf("best (n,m) = (%d,%d) infeasible", best.N, best.M)
	}
	if best.AvgPathLength <= 0 {
		t.Fatalf("best APL = %v", best.AvgPathLength)
	}
	// More relocation capacity should never make APL worse among the
	// profiled candidates' minimum.
	for _, c := range all {
		if c.AvgPathLength < best.AvgPathLength-1e-12 {
			t.Fatalf("candidate %+v beats reported best %+v", c, best)
		}
	}
}

func TestServerIndexStable(t *testing.T) {
	nw, _ := ExampleNetwork()
	r := nw.Realize()
	cp := nw.Clos()
	for pod := 0; pod < cp.Pods; pod++ {
		for j := 0; j < cp.EdgesPerPod; j++ {
			for s := 0; s < cp.ServersPerEdge; s++ {
				idx := nw.ServerIndex(pod, j, s)
				if got := r.Topo.Servers()[idx]; got != r.ServerID[pod][j][s] {
					t.Fatalf("ServerIndex(%d,%d,%d) = %d maps to node %d, want %d",
						pod, j, s, idx, got, r.ServerID[pod][j][s])
				}
			}
		}
	}
}

// Property: for random feasible layouts and any mode assignment, the
// realization is connected and port budgets hold.
func TestRealizationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := seed
		next := func(n int) int {
			rng = rng*6364136223846793005 + 1442695040888963407
			v := int((rng >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		pods := 2 + next(4)             // 2..5
		edges := 2 * (1 + next(3))      // 2, 4, 6
		aggs := edges / (1 + next(2)*0) // keep r=1 for simplicity of valid layouts
		sd := 2 + next(4)
		h := 2 + next(3)
		cores := edges * h // group size g=h, d groups
		p := topo.ClosParams{Name: "prop", Pods: pods, EdgesPerPod: edges,
			AggsPerPod: aggs, ServersPerEdge: sd, EdgeUplinks: aggs,
			AggUplinks: h, Cores: cores}
		if p.Validate() != nil {
			return true // skip invalid draws
		}
		maxNM := h
		if sd < maxNM {
			maxNM = sd
		}
		m := 1 + next(maxNM)
		n := maxNM - m
		nw, err := New(p, Options{N: n, M: m})
		if err != nil {
			return true
		}
		for pod := 0; pod < pods; pod++ {
			nw.SetPodMode(pod, Mode(next(3)))
		}
		r := nw.Realize()
		if err := r.Topo.Validate(); err != nil {
			t.Logf("seed %d: %v", seed, err)
			return false
		}
		cp := nw.Clos()
		wantEdge := cp.ServersPerEdge + cp.EdgeUplinks
		for _, e := range r.Topo.Edges() {
			if r.Topo.G.Degree(e) != wantEdge {
				t.Logf("seed %d: edge degree %d != %d", seed, r.Topo.G.Degree(e), wantEdge)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
