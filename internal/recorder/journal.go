package recorder

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// The JSONL journal is the recorder's replay-diff format: one JSON
// object per line, in a canonical field order, emitted deterministically
// (header, annotations sorted by key, then tracks sorted by name — a
// meta line with totals followed by the retained events in sequence
// order). Two runs with the same seed produce byte-identical journals
// at any worker count, so `diff a.jsonl b.jsonl` is a correctness
// check, not a formatting exercise.
//
// Decoding reverses the encoding exactly: DecodeJournal(EncodeJournal(x))
// round-trips, and re-encoding a decoded journal reproduces the input
// byte for byte (the fuzz target pins this fixpoint).

// JournalVersion identifies the line schema.
const JournalVersion = 1

// journalMagic is the header line's self-identification.
const journalMagic = "flattree/recorder"

// JournalLine is the decoded form of one journal line. Exactly one of
// the three shapes is populated:
//
//   - header: Journal != "" (Version, Limit)
//   - annotation: Note != "" (Value)
//   - track meta: Track != "" with Total/Dropped set and Kind == ""
//   - event: Track != "" with Kind != "" (Seq, T, ID, A, B, V, Label)
//
// Pointer fields distinguish "absent" from zero so a decoded line
// re-encodes to the exact bytes it came from.
type JournalLine struct {
	Journal string `json:"journal,omitempty"`
	Version int    `json:"version,omitempty"`
	Limit   int    `json:"limit,omitempty"`

	Note  string `json:"note,omitempty"`
	Value string `json:"value,omitempty"`

	Track   string  `json:"track,omitempty"`
	Total   *uint64 `json:"total,omitempty"`
	Dropped *uint64 `json:"dropped,omitempty"`

	Seq   *uint64 `json:"seq,omitempty"`
	T     float64 `json:"t,omitempty"`
	Kind  string  `json:"kind,omitempty"`
	ID    int     `json:"id,omitempty"`
	A     int64   `json:"a,omitempty"`
	B     int64   `json:"b,omitempty"`
	V     float64 `json:"v,omitempty"`
	Label string  `json:"label,omitempty"`
}

// EncodeLine renders one line in canonical form (no trailing newline).
func EncodeLine(l JournalLine) ([]byte, error) { return json.Marshal(l) }

// DecodeLine parses one canonical line.
func DecodeLine(data []byte) (JournalLine, error) {
	var l JournalLine
	err := json.Unmarshal(data, &l)
	return l, err
}

// WriteJournal renders the recorder's full state as JSONL. A nil
// recorder writes only the header line.
func WriteJournal(w io.Writer, r *Recorder) error {
	bw := bufio.NewWriter(w)
	writeLine := func(l JournalLine) error {
		b, err := EncodeLine(l)
		if err != nil {
			return err
		}
		if _, err := bw.Write(b); err != nil {
			return err
		}
		return bw.WriteByte('\n')
	}
	if err := writeLine(JournalLine{Journal: journalMagic, Version: JournalVersion, Limit: r.Limit()}); err != nil {
		return err
	}
	notes := r.Annotations()
	for _, k := range sortedNoteKeys(notes) {
		if err := writeLine(JournalLine{Note: k, Value: notes[k]}); err != nil {
			return err
		}
	}
	for _, ts := range r.Snapshot() {
		total, dropped := ts.Total, ts.Dropped()
		if err := writeLine(JournalLine{Track: ts.Name, Total: &total, Dropped: &dropped}); err != nil {
			return err
		}
		for i, ev := range ts.Events {
			seq := ts.First + uint64(i)
			if err := writeLine(JournalLine{
				Track: ts.Name, Seq: &seq, T: ev.T, Kind: ev.Kind.String(),
				ID: ev.ID, A: ev.A, B: ev.B, V: ev.V, Label: ev.Label,
			}); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Journal is a decoded journal: the run header plus every line in file
// order.
type Journal struct {
	Version int
	Limit   int
	Lines   []JournalLine
}

// DecodeJournal parses a journal written by WriteJournal. The first
// line must be the header; every subsequent line must parse. Lines
// retain file order, so re-encoding reproduces the input.
func DecodeJournal(data []byte) (*Journal, error) {
	sc := bufio.NewScanner(bytes.NewReader(data))
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	j := &Journal{}
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if len(bytes.TrimSpace(line)) == 0 {
			continue
		}
		l, err := DecodeLine(line)
		if err != nil {
			return nil, fmt.Errorf("recorder: journal line %d: %w", len(j.Lines)+1, err)
		}
		if first {
			if l.Journal != journalMagic {
				return nil, fmt.Errorf("recorder: not a journal (header %q)", l.Journal)
			}
			j.Version = l.Version
			j.Limit = l.Limit
			first = false
		}
		j.Lines = append(j.Lines, l)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if first {
		return nil, fmt.Errorf("recorder: empty journal")
	}
	return j, nil
}

// Encode re-renders a decoded journal in canonical form; for a journal
// produced by WriteJournal this reproduces the original bytes.
func (j *Journal) Encode() ([]byte, error) {
	var buf bytes.Buffer
	for _, l := range j.Lines {
		b, err := EncodeLine(l)
		if err != nil {
			return nil, err
		}
		buf.Write(b)
		buf.WriteByte('\n')
	}
	return buf.Bytes(), nil
}

// Events returns the journal's event lines (Kind != "") in file order.
func (j *Journal) Events() []JournalLine {
	var out []JournalLine
	for _, l := range j.Lines {
		if l.Track != "" && l.Kind != "" {
			out = append(out, l)
		}
	}
	return out
}

// sortedNoteKeys returns the annotation keys in ascending order.
func sortedNoteKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	//flatvet:ordered keys are collected then sorted
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
