package recorder

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"runtime"
	"runtime/debug"
	"sort"

	"flattree/internal/telemetry"
)

// RunInfo is a run's provenance manifest: everything needed to decide
// whether two recorded runs are comparable — the seed, the worker
// count, the toolchain, the source revision, the full flag set, the
// recorder's per-track totals, run annotations (topology fingerprints),
// and a digest of the telemetry counters. The manifest is itself
// deterministic for a fixed seed and toolchain, so runinfo files diff
// cleanly alongside journals.
type RunInfo struct {
	Tool      string `json:"tool"`
	GoVersion string `json:"go_version"`
	GitRev    string `json:"git_rev"`
	Seed      int64  `json:"seed"`
	Workers   int    `json:"workers"`
	// Flags is the complete flag set of the run (including defaults),
	// the exact knob state needed to reproduce it.
	Flags map[string]string `json:"flags,omitempty"`
	// Annotations carries Recorder.Annotate entries — topology
	// fingerprints and other identity the experiments registered.
	Annotations map[string]string `json:"annotations,omitempty"`
	// RecordLimit is the per-track ring capacity (0 when recording was
	// disabled).
	RecordLimit int `json:"record_limit,omitempty"`
	// Tracks reports each track's retained/dropped/total event counts.
	Tracks map[string]TrackStats `json:"tracks,omitempty"`
	// CounterDigest is a SHA-256 over the sorted telemetry counters —
	// a cheap equality check between runs that skips comparing full
	// snapshots.
	CounterDigest string `json:"counter_digest"`
}

// TrackStats summarizes one track for the manifest.
type TrackStats struct {
	Events  int    `json:"events"`
	Dropped uint64 `json:"dropped"`
	Total   uint64 `json:"total"`
}

// CollectRunInfo assembles the manifest from the run's configuration,
// the recorder (nil when recording is disabled), and the telemetry
// snapshot (nil when telemetry is disabled).
func CollectRunInfo(tool string, seed int64, workers int, flags map[string]string, r *Recorder, snap *telemetry.Snapshot) RunInfo {
	ri := RunInfo{
		Tool:          tool,
		GoVersion:     runtime.Version(),
		GitRev:        gitRev(),
		Seed:          seed,
		Workers:       workers,
		Flags:         flags,
		Annotations:   r.Annotations(),
		RecordLimit:   r.Limit(),
		CounterDigest: CounterDigest(snap),
	}
	if tracks := r.Snapshot(); len(tracks) > 0 {
		ri.Tracks = make(map[string]TrackStats, len(tracks))
		for _, ts := range tracks {
			ri.Tracks[ts.Name] = TrackStats{Events: len(ts.Events), Dropped: ts.Dropped(), Total: ts.Total}
		}
	}
	return ri
}

// WriteJSON renders the manifest as indented JSON; map keys are sorted
// by the encoder, so the output is deterministic.
func (ri RunInfo) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ri)
}

// FlagMap captures a flag set's complete state — every flag with its
// current value, defaults included — as the manifest's Flags field.
func FlagMap(fs *flag.FlagSet) map[string]string {
	out := map[string]string{}
	fs.VisitAll(func(f *flag.Flag) {
		out[f.Name] = f.Value.String()
	})
	return out
}

// CounterDigest hashes the snapshot's counters as sorted "name value"
// lines. Two runs with equal digests executed the same event volume;
// an empty or nil snapshot yields the digest of zero counters.
func CounterDigest(snap *telemetry.Snapshot) string {
	h := sha256.New()
	if snap != nil {
		keys := make([]string, 0, len(snap.Counters))
		//flatvet:ordered keys are collected then sorted
		for k := range snap.Counters {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(h, "%s %d\n", k, snap.Counters[k])
		}
	}
	sum := h.Sum(nil)
	return hex.EncodeToString(sum[:16])
}

// gitRev reads the VCS revision stamped into the build, with a ".dirty"
// suffix when the working tree was modified; "unknown" when the binary
// carries no VCS info (go test binaries, plain `go run` without VCS).
func gitRev() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "unknown"
	}
	rev, dirty := "", false
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			dirty = s.Value == "true"
		}
	}
	if rev == "" {
		return "unknown"
	}
	if dirty {
		return rev + ".dirty"
	}
	return rev
}
