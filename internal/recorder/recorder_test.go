package recorder

import (
	"fmt"
	"sync"
	"testing"
)

func TestKindStringRoundTrip(t *testing.T) {
	for k := FlowStart; k <= ConversionPhase; k++ {
		s := k.String()
		if s == "" {
			t.Fatalf("kind %d has no spelling", k)
		}
		got, ok := KindFromString(s)
		if !ok || got != k {
			t.Fatalf("KindFromString(%q) = %v, %v; want %v", s, got, ok, k)
		}
	}
	if Kind(0).String() != "" || Kind(200).String() != "" {
		t.Fatal("invalid kinds must render empty")
	}
	if _, ok := KindFromString("no_such_kind"); ok {
		t.Fatal("unknown spelling resolved")
	}
}

func TestTrackRingKeepsMostRecent(t *testing.T) {
	r := New(4)
	tr := r.Track("x")
	for i := 0; i < 10; i++ {
		tr.Emit(Event{T: float64(i), Kind: FlowStart, ID: i})
	}
	snaps := r.Snapshot()
	if len(snaps) != 1 {
		t.Fatalf("tracks = %d", len(snaps))
	}
	s := snaps[0]
	if s.Total != 10 || s.Dropped() != 6 || s.First != 6 {
		t.Fatalf("total/dropped/first = %d/%d/%d, want 10/6/6", s.Total, s.Dropped(), s.First)
	}
	if len(s.Events) != 4 {
		t.Fatalf("retained %d events, want 4", len(s.Events))
	}
	// Oldest-first, the last 4 emitted.
	for i, ev := range s.Events {
		if ev.ID != 6+i {
			t.Fatalf("event %d has ID %d, want %d", i, ev.ID, 6+i)
		}
	}
	if tr.Dropped() != 6 || tr.Len() != 4 {
		t.Fatalf("Dropped/Len = %d/%d", tr.Dropped(), tr.Len())
	}
}

func TestTrackNoDropUnderLimit(t *testing.T) {
	r := New(8)
	tr := r.Track("x")
	for i := 0; i < 5; i++ {
		tr.Emit(Event{ID: i})
	}
	s := r.Snapshot()[0]
	if s.Dropped() != 0 || s.First != 0 || len(s.Events) != 5 {
		t.Fatalf("dropped/first/events = %d/%d/%d", s.Dropped(), s.First, len(s.Events))
	}
}

func TestNilSafety(t *testing.T) {
	var r *Recorder
	tr := r.Track("anything")
	if tr != nil {
		t.Fatal("nil recorder returned a live track")
	}
	tr.Emit(Event{Kind: FlowStart}) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Name() != "" {
		t.Fatal("nil track not a no-op")
	}
	r.Annotate("k", "v")
	if r.Annotations() != nil || r.Snapshot() != nil || r.Limit() != 0 {
		t.Fatal("nil recorder accessors not zero")
	}
}

func TestGlobalEnableDisable(t *testing.T) {
	defer Disable()
	if Default() != nil {
		t.Fatal("recording enabled before Enable")
	}
	T("x").Emit(Event{Kind: FlowStart}) // disabled: no-op
	r := Enable(16)
	if Default() != r || r.Limit() != 16 {
		t.Fatal("Enable did not install the recorder")
	}
	T("x").Emit(Event{Kind: FlowStart})
	if got := r.Snapshot(); len(got) != 1 || got[0].Total != 1 {
		t.Fatalf("global track missed the event: %+v", got)
	}
	Disable()
	if Default() != nil {
		t.Fatal("Disable did not clear the recorder")
	}
}

func TestSnapshotSortedAndAnnotations(t *testing.T) {
	r := New(0)
	if r.Limit() != DefaultLimit {
		t.Fatalf("default limit = %d", r.Limit())
	}
	for _, name := range []string{"z", "a", "m"} {
		r.Track(name).Emit(Event{Kind: FlowStart})
	}
	var got []string
	for _, s := range r.Snapshot() {
		got = append(got, s.Name)
	}
	if fmt.Sprint(got) != "[a m z]" {
		t.Fatalf("tracks not sorted: %v", got)
	}
	r.Annotate("fp", "1")
	r.Annotate("fp", "2") // last write wins
	if n := r.Annotations(); n["fp"] != "2" {
		t.Fatalf("annotations = %v", n)
	}
}

func TestTrackHandleStable(t *testing.T) {
	r := New(8)
	if r.Track("a") != r.Track("a") {
		t.Fatal("same name returned distinct tracks")
	}
}

// TestConcurrentDistinctTracks exercises the documented concurrency
// contract: goroutines on distinct tracks never interleave events
// within a track, so each track's sequence stays deterministic.
func TestConcurrentDistinctTracks(t *testing.T) {
	r := New(1 << 10)
	const n, per = 8, 500
	var wg sync.WaitGroup
	for g := 0; g < n; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			tr := r.Track(fmt.Sprintf("track-%d", g))
			for i := 0; i < per; i++ {
				tr.Emit(Event{T: float64(i), Kind: AllocRound, ID: i})
			}
		}(g)
	}
	wg.Wait()
	for _, s := range r.Snapshot() {
		if s.Total != per || len(s.Events) != per {
			t.Fatalf("track %s: total=%d kept=%d", s.Name, s.Total, len(s.Events))
		}
		for i, ev := range s.Events {
			if ev.ID != i {
				t.Fatalf("track %s out of order at %d: %d", s.Name, i, ev.ID)
			}
		}
	}
}

// BenchmarkEmitDisabled pins the acceptance bound: with recording off,
// an instrumented call site costs one nil check (~1 ns or less).
func BenchmarkEmitDisabled(b *testing.B) {
	var tr *Track
	ev := Event{T: 1, Kind: FlowStart, ID: 7}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}

// BenchmarkEmitEnabled measures the live path: one mutex round trip and
// a ring write, no allocation after the ring fills.
func BenchmarkEmitEnabled(b *testing.B) {
	r := New(1 << 12)
	tr := r.Track("bench")
	ev := Event{T: 1, Kind: FlowStart, ID: 7}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Emit(ev)
	}
}
