package recorder

import (
	"bytes"
	"encoding/json"
	"flag"
	"strings"
	"testing"

	"flattree/internal/telemetry"
)

func TestCollectRunInfo(t *testing.T) {
	reg := telemetry.Enable()
	defer telemetry.Disable()
	telemetry.C("flowsim_events_total").Add(42)
	snap := reg.Snapshot()

	r := populated()
	ri := CollectRunInfo("flatsim", 7, 4, map[string]string{"exp": "churn"}, r, snap)
	if ri.Tool != "flatsim" || ri.Seed != 7 || ri.Workers != 4 {
		t.Fatalf("identity fields: %+v", ri)
	}
	if ri.GoVersion == "" || ri.GitRev == "" {
		t.Fatalf("toolchain fields empty: %+v", ri)
	}
	if ri.RecordLimit != 4 {
		t.Fatalf("record limit = %d", ri.RecordLimit)
	}
	if ri.Annotations["workload"] != "permutation" {
		t.Fatalf("annotations = %v", ri.Annotations)
	}
	eng := ri.Tracks["churn/clos/engine"]
	if eng.Total != 7 || eng.Dropped != 3 || eng.Events != 4 {
		t.Fatalf("engine track stats = %+v", eng)
	}
	if ri.CounterDigest == "" || ri.CounterDigest == CounterDigest(nil) {
		t.Fatalf("digest ignores counters: %q", ri.CounterDigest)
	}
}

func TestCollectRunInfoDisabled(t *testing.T) {
	// Both subsystems off: the manifest still identifies the run.
	ri := CollectRunInfo("benchtables", 1, 0, nil, nil, nil)
	if ri.RecordLimit != 0 || ri.Tracks != nil || ri.Annotations != nil {
		t.Fatalf("disabled recorder leaked state: %+v", ri)
	}
	if ri.CounterDigest != CounterDigest(nil) {
		t.Fatal("nil snapshot digest not canonical")
	}
}

func TestRunInfoJSONDeterministic(t *testing.T) {
	r := populated()
	ri := CollectRunInfo("flatsim", 1, 0, map[string]string{"b": "2", "a": "1"}, r, nil)
	var x, y bytes.Buffer
	if err := ri.WriteJSON(&x); err != nil {
		t.Fatal(err)
	}
	if err := ri.WriteJSON(&y); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(x.Bytes(), y.Bytes()) {
		t.Fatal("manifest encoding not stable")
	}
	var decoded RunInfo
	if err := json.Unmarshal(x.Bytes(), &decoded); err != nil {
		t.Fatalf("manifest not valid JSON: %v", err)
	}
	if decoded.Flags["a"] != "1" || decoded.Flags["b"] != "2" {
		t.Fatalf("flags round-trip: %v", decoded.Flags)
	}
}

func TestCounterDigestSensitivity(t *testing.T) {
	a := &telemetry.Snapshot{Counters: map[string]int64{"x": 1, "y": 2}}
	b := &telemetry.Snapshot{Counters: map[string]int64{"y": 2, "x": 1}}
	c := &telemetry.Snapshot{Counters: map[string]int64{"x": 1, "y": 3}}
	if CounterDigest(a) != CounterDigest(b) {
		t.Fatal("digest depends on map order")
	}
	if CounterDigest(a) == CounterDigest(c) {
		t.Fatal("digest blind to counter values")
	}
	if CounterDigest(nil) != CounterDigest(&telemetry.Snapshot{}) {
		t.Fatal("nil and empty snapshots must digest alike")
	}
}

func TestFlagMap(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	fs.String("exp", "", "")
	fs.Int64("seed", 1, "")
	if err := fs.Parse([]string{"-exp", "churn"}); err != nil {
		t.Fatal(err)
	}
	m := FlagMap(fs)
	if m["exp"] != "churn" {
		t.Fatalf("set flag missing: %v", m)
	}
	if m["seed"] != "1" {
		t.Fatalf("default flag missing: %v", m)
	}
	if strings.Contains(strings.Join([]string{m["exp"], m["seed"]}, ","), "\n") {
		t.Fatal("flag values must be single-line")
	}
}
