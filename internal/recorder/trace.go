package recorder

import (
	"encoding/json"
	"fmt"
	"io"
	"time"

	"flattree/internal/telemetry"
)

// The trace exporter renders a run as Chrome trace-viewer JSON (the
// catapult trace_event format), loadable in chrome://tracing and
// Perfetto. Two processes separate the two clocks the repo runs on:
//
//   - pid 1 "sim time": one named thread per recorder track, with
//     sim-time events — instants for point events, duration slices for
//     windows (reaction delays, conversion phases, completed flows).
//   - pid 2 "wall clock": the telemetry span tree (experiment roots,
//     conversion phases, solver spans) as duration slices.
//
// Both clocks are rendered in microseconds from their own zero, so the
// tracks sit side by side without pretending the clocks are aligned.

const (
	simPid  = 1
	wallPid = 2
)

// traceEvent is one catapult trace_event object.
type traceEvent struct {
	Name string                 `json:"name"`
	Ph   string                 `json:"ph"`
	Ts   float64                `json:"ts"`
	Dur  float64                `json:"dur,omitempty"`
	Pid  int                    `json:"pid"`
	Tid  int                    `json:"tid"`
	S    string                 `json:"s,omitempty"`
	Args map[string]interface{} `json:"args,omitempty"`
}

// traceFile is the top-level JSON object format.
type traceFile struct {
	DisplayTimeUnit string            `json:"displayTimeUnit"`
	OtherData       map[string]string `json:"otherData,omitempty"`
	TraceEvents     []traceEvent      `json:"traceEvents"`
}

const usec = 1e6 // seconds -> trace microseconds

// WriteTrace renders the recorder's tracks (and, when snap is non-nil,
// the telemetry span tree) as trace-viewer JSON. A nil recorder renders
// only the wall-clock process.
func WriteTrace(w io.Writer, r *Recorder, snap *telemetry.Snapshot) error {
	tf := traceFile{
		DisplayTimeUnit: "ms",
		OtherData:       map[string]string{"format": journalMagic},
	}
	// The export timestamp is provenance about the trace file itself,
	// not simulation logic — the journal (the replay-diff format) stays
	// byte-deterministic; the trace viewer file is for humans.
	//flatvet:clock trace metadata records export wall time, never sim state
	tf.OtherData["exported_at"] = time.Now().UTC().Format(time.RFC3339)
	for k, v := range r.Annotations() {
		tf.OtherData["note:"+k] = v
	}

	tf.TraceEvents = append(tf.TraceEvents, metaEvent("process_name", simPid, 0, "sim time"))
	for i, ts := range r.Snapshot() {
		tid := i + 1
		tf.TraceEvents = append(tf.TraceEvents, metaEvent("thread_name", simPid, tid, ts.Name))
		for j, ev := range ts.Events {
			tf.TraceEvents = append(tf.TraceEvents, simEvent(ev, tid, ts.First+uint64(j)))
		}
		if d := ts.Dropped(); d > 0 {
			tf.TraceEvents = append(tf.TraceEvents, traceEvent{
				Name: "dropped", Ph: "i", Ts: 0, Pid: simPid, Tid: tid, S: "t",
				Args: map[string]interface{}{"events_dropped": d},
			})
		}
	}

	if snap != nil {
		tf.TraceEvents = append(tf.TraceEvents, metaEvent("process_name", wallPid, 0, "wall clock"))
		tf.TraceEvents = append(tf.TraceEvents, metaEvent("thread_name", wallPid, 1, "telemetry spans"))
		tf.TraceEvents = append(tf.TraceEvents, metaEvent("thread_name", wallPid, 2, "modeled phases"))
		for i := range snap.Spans {
			appendSpan(&tf.TraceEvents, &snap.Spans[i])
		}
	}

	enc := json.NewEncoder(w)
	return enc.Encode(tf)
}

// simEvent maps one recorder event to a trace event. Windowed kinds
// become duration slices; flow retirements render the whole flow as a
// slice ending at the retire instant; everything else is an instant.
func simEvent(ev Event, tid int, seq uint64) traceEvent {
	out := traceEvent{Pid: simPid, Tid: tid, Args: map[string]interface{}{"seq": seq}}
	name := ev.Kind.String()
	switch ev.Kind {
	case Reaction:
		out.Ph, out.Ts, out.Dur = "X", ev.T*usec, ev.V*usec
		out.Args["rules_deleted"], out.Args["rules_added"] = ev.A, ev.B
	case ConversionPhase:
		out.Ph, out.Ts, out.Dur = "X", ev.T*usec, ev.V*usec
		if ev.Label != "" {
			name = ev.Label
		}
		out.Args["count"] = ev.A
	case FlowRetire:
		out.Ph, out.Ts, out.Dur = "X", (ev.T-ev.V)*usec, ev.V*usec
		name = fmt.Sprintf("flow %d", ev.ID)
		out.Args["fct_seconds"], out.Args["reroutes"] = ev.V, ev.A
	default:
		out.Ph, out.Ts, out.S = "i", ev.T*usec, "t"
		out.Args["id"] = ev.ID
		if ev.A != 0 {
			out.Args["a"] = ev.A
		}
		if ev.B != 0 {
			out.Args["b"] = ev.B
		}
		if ev.V != 0 {
			out.Args["v"] = ev.V
		}
		if ev.Label != "" {
			out.Args["label"] = ev.Label
		}
	}
	out.Name = name
	return out
}

// appendSpan renders a telemetry span and its children as wall-clock
// duration slices. Measured spans nest by wall time on one thread;
// modeled spans (Record'ed durations that never elapsed) go on their
// own thread, because a modeled duration can exceed its measured
// parent and would break slice nesting.
func appendSpan(out *[]traceEvent, s *telemetry.SpanSnapshot) {
	tid := 1
	if s.Modeled {
		tid = 2
	}
	ev := traceEvent{
		Name: s.Name, Ph: "X", Ts: s.Start * usec, Dur: s.DurationSeconds * usec,
		Pid: wallPid, Tid: tid,
	}
	if len(s.Attrs) > 0 || s.Modeled {
		ev.Args = make(map[string]interface{}, len(s.Attrs)+1)
		for k, v := range s.Attrs {
			ev.Args[k] = v
		}
		if s.Modeled {
			ev.Args["modeled"] = true
		}
	}
	*out = append(*out, ev)
	for i := range s.Children {
		appendSpan(out, &s.Children[i])
	}
}

// metaEvent builds a catapult "M" metadata record naming a process or
// thread.
func metaEvent(kind string, pid, tid int, name string) traceEvent {
	return traceEvent{
		Name: kind, Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]interface{}{"name": name},
	}
}
