package recorder

import (
	"bytes"
	"testing"
)

// FuzzJournalRoundTrip pins the journal's canonical-form property: any
// input DecodeJournal accepts re-encodes to a canonical byte string that
// decodes again and re-encodes to the SAME bytes — decode∘encode is a
// fixpoint after one normalization pass. Arbitrary field order and
// whitespace in the input are allowed to normalize; the normal form is
// not allowed to drift.
func FuzzJournalRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJournal(&buf, populated()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"journal":"flattree/recorder","version":1,"limit":4}` + "\n"))
	f.Add([]byte(`{"journal":"flattree/recorder","version":1,"limit":2}
{"note":"k","value":"v"}
{"track":"t","total":1,"dropped":0}
{"track":"t","seq":0,"t":1.5,"kind":"flow_start","id":3,"a":1,"b":2,"v":0.25,"label":"x"}
`))
	f.Fuzz(func(t *testing.T, data []byte) {
		j, err := DecodeJournal(data)
		if err != nil {
			return // rejected input is fine; crashing is not
		}
		enc1, err := j.Encode()
		if err != nil {
			t.Fatalf("decoded journal failed to encode: %v", err)
		}
		j2, err := DecodeJournal(enc1)
		if err != nil {
			t.Fatalf("canonical form rejected by decoder: %v\n%q", err, enc1)
		}
		enc2, err := j2.Encode()
		if err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		if !bytes.Equal(enc1, enc2) {
			t.Fatalf("canonical form is not a fixpoint:\nenc1: %q\nenc2: %q", enc1, enc2)
		}
	})
}
